module rmp

go 1.22
