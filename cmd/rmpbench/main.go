// Command rmpbench regenerates the paper's evaluation: every figure
// of Markatos & Dramitinos, "Implementation of a Reliable Remote
// Memory Pager" (USENIX 1996), plus the live-system experiments.
//
// Usage:
//
//	rmpbench                  # run everything
//	rmpbench -fig 2           # one figure (1-5)
//	rmpbench -exp latency     # one experiment: latency, busy,
//	                          # loadednet, decomp, recovery,
//	                          # wtablation, pipeline, ...
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"rmp/internal/experiments"
)

var asCSV bool

func main() {
	experiments.MaybeSpin() // child role for the busy-server experiment
	fig := flag.Int("fig", 0, "regenerate one figure (1-5); 0 = all")
	exp := flag.String("exp", "", "run one experiment: latency|busy|loadednet|multiclient|decomp|recovery|wtablation|swidth|overflow|avail|pipeline|tier|rs|hotpath|scale")
	flag.BoolVar(&asCSV, "csv", false, "emit CSV instead of aligned text")
	flag.Parse()

	start := time.Now()
	switch {
	case *fig != 0:
		runFig(*fig)
	case *exp != "":
		runExp(*exp)
	default:
		for f := 1; f <= 5; f++ {
			runFig(f)
		}
		for _, e := range []string{"decomp", "latency", "busy", "loadednet", "multiclient",
			"recovery", "wtablation", "swidth", "overflow", "avail", "pipeline", "tier", "rs"} {
			runExp(e)
		}
	}
	fmt.Fprintf(os.Stderr, "total: %v\n", time.Since(start).Round(time.Millisecond))
}

func runFig(n int) {
	var t *experiments.Table
	switch n {
	case 1:
		t = experiments.Fig1()
	case 2:
		t = experiments.Fig2()
	case 3:
		t = experiments.Fig3()
	case 4:
		t = experiments.Fig4()
	case 5:
		t = experiments.Fig5()
	default:
		log.Fatalf("rmpbench: no figure %d (the paper has 1-5)", n)
	}
	emit(t)
}

func emit(t *experiments.Table) {
	if asCSV {
		fmt.Print(t.CSV())
		return
	}
	fmt.Println(t)
}

func runExp(name string) {
	var (
		t   *experiments.Table
		err error
	)
	switch name {
	case "latency":
		t, err = experiments.Latency()
	case "busy":
		t, err = experiments.Busy()
	case "recovery":
		t, err = experiments.Recovery()
	case "loadednet":
		t = experiments.LoadedNet()
	case "decomp":
		t = experiments.Decomp()
	case "wtablation":
		t = experiments.WTAblation()
	case "swidth":
		t, err = experiments.GroupWidthAblation()
	case "overflow":
		t, err = experiments.OverflowAblation()
	case "avail":
		t = experiments.Availability()
	case "multiclient":
		t = experiments.MultiClient()
	case "pipeline":
		t, err = experiments.Pipeline()
	case "tier":
		t, err = experiments.Tier()
	case "rs":
		t, err = experiments.RS()
	case "hotpath":
		t, err = experiments.Hotpath()
	case "scale":
		t, err = experiments.Scale()
	default:
		log.Fatalf("rmpbench: unknown experiment %q", name)
	}
	if err != nil {
		log.Fatalf("rmpbench: %s: %v", name, err)
	}
	emit(t)
}
