// Command rmpvet runs the repository's project-specific static
// analyzers over Go package patterns and exits non-zero when any
// invariant is violated. It is the mechanical enforcement of the
// pager's concurrency and protocol rules:
//
//	lockcheck  — "guarded by" fields only touched under their mutex;
//	             no undeadlined network I/O while a lock is held
//	wireswitch — switches over wire.Type are exhaustive or defaulted
//	errwrap    — errors cross boundaries with %w, never %v/%s
//	lifecycle  — looping goroutines always have a cancellation path
//	lockgraph  — no lock-order cycles across the whole program; no
//	             unbounded blocking reachable while a lock is held
//	goleak     — every goroutine is tied to an owner that Close/Stop
//	             provably cancels; no mixed atomic/plain field access
//	escapegate — //rmpvet:hotpath functions do not heap-allocate
//	             (compiler-verified; see -escapes)
//
// Usage:
//
//	rmpvet [-strict-lifecycle] [-json] [packages]
//	rmpvet -escapes [-baseline file] [-json] [packages]
//
// Patterns default to ./... relative to the current directory. The
// first form runs the seven syntax/type-driven analyzers (lockgraph
// and goleak see the whole program at once). The second form compiles
// the packages with -gcflags='-m -m' and fails if any function marked
// //rmpvet:hotpath heap-allocates, modulo the committed baseline.
//
// Diagnostics print in the go vet file:line:col style so editors and
// CI annotate them directly; -json switches to one JSON object per
// line ({"file","line","col","analyzer","message"}) for tooling.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"rmp/internal/analysis"
	"rmp/internal/analysis/errwrap"
	"rmp/internal/analysis/escapegate"
	"rmp/internal/analysis/goleak"
	"rmp/internal/analysis/lifecycle"
	"rmp/internal/analysis/load"
	"rmp/internal/analysis/lockcheck"
	"rmp/internal/analysis/lockgraph"
	"rmp/internal/analysis/wireswitch"
)

func main() {
	strictLifecycle := flag.Bool("strict-lifecycle", false,
		"additionally require a deferred recover handler in every goroutine")
	list := flag.Bool("list", false, "list the analyzers and exit")
	jsonOut := flag.Bool("json", false,
		"emit one JSON diagnostic per line instead of file:line:col text")
	escapes := flag.Bool("escapes", false,
		"run the escapegate: compile with -gcflags='-m -m' and reject heap allocations in //rmpvet:hotpath functions")
	baseline := flag.String("baseline", escapegate.DefaultBaseline,
		"committed allow-list of reviewed hotpath escapes (with -escapes)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: rmpvet [flags] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := []*analysis.Analyzer{
		lockcheck.Analyzer,
		wireswitch.Analyzer,
		errwrap.Analyzer,
		lifecycle.NewAnalyzer(*strictLifecycle),
	}
	programAnalyzers := []*analysis.ProgramAnalyzer{
		lockgraph.Analyzer,
		goleak.Analyzer,
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		for _, a := range programAnalyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		fmt.Printf("%-12s %s\n", "escapegate", escapegate.Doc)
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fatal(err)
	}

	emit := func(d analysis.Diagnostic) {
		if *jsonOut {
			out, err := json.Marshal(struct {
				File     string `json:"file"`
				Line     int    `json:"line"`
				Col      int    `json:"col"`
				Analyzer string `json:"analyzer"`
				Message  string `json:"message"`
			}{d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message})
			if err != nil {
				fatal(err)
			}
			fmt.Println(string(out))
			return
		}
		fmt.Println(d)
	}

	if *escapes {
		diags, err := escapegate.Check(dir, patterns, *baseline)
		if err != nil {
			fatal(err)
		}
		for _, d := range diags {
			emit(d)
		}
		if len(diags) > 0 {
			os.Exit(1)
		}
		return
	}

	pkgs, fset, err := load.Packages(dir, patterns)
	if err != nil {
		fatal(err)
	}
	if len(pkgs) == 0 {
		fatal(fmt.Errorf("no packages matched %v", patterns))
	}

	exit := 0
	for _, pkg := range pkgs {
		diags, err := analysis.Run(analyzers, fset, pkg.Files, pkg.Pkg, pkg.Info)
		if err != nil {
			fatal(err)
		}
		for _, d := range diags {
			emit(d)
			exit = 1
		}
	}

	units := make([]*analysis.Unit, len(pkgs))
	for i, pkg := range pkgs {
		units[i] = &analysis.Unit{ImportPath: pkg.ImportPath, Files: pkg.Files, Pkg: pkg.Pkg, Info: pkg.Info}
	}
	diags, err := analysis.RunProgram(programAnalyzers, fset, units)
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		emit(d)
		exit = 1
	}
	os.Exit(exit)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rmpvet:", err)
	os.Exit(2)
}
