// Command rmpvet runs the repository's project-specific static
// analyzers over Go package patterns and exits non-zero when any
// invariant is violated. It is the mechanical enforcement of the
// pager's concurrency and protocol rules:
//
//	lockcheck  — "guarded by" fields only touched under their mutex;
//	             no undeadlined network I/O while a lock is held
//	wireswitch — switches over wire.Type are exhaustive or defaulted
//	errwrap    — errors cross boundaries with %w, never %v/%s
//	lifecycle  — looping goroutines always have a cancellation path
//
// Usage:
//
//	rmpvet [-strict-lifecycle] [packages]
//
// Patterns default to ./... relative to the current directory.
// Diagnostics print in the go vet file:line:col style so editors and
// CI annotate them directly.
package main

import (
	"flag"
	"fmt"
	"os"

	"rmp/internal/analysis"
	"rmp/internal/analysis/errwrap"
	"rmp/internal/analysis/lifecycle"
	"rmp/internal/analysis/load"
	"rmp/internal/analysis/lockcheck"
	"rmp/internal/analysis/wireswitch"
)

func main() {
	strictLifecycle := flag.Bool("strict-lifecycle", false,
		"additionally require a deferred recover handler in every goroutine")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: rmpvet [flags] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := []*analysis.Analyzer{
		lockcheck.Analyzer,
		wireswitch.Analyzer,
		errwrap.Analyzer,
		lifecycle.NewAnalyzer(*strictLifecycle),
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rmpvet:", err)
		os.Exit(2)
	}

	pkgs, fset, err := load.Packages(dir, patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rmpvet:", err)
		os.Exit(2)
	}
	if len(pkgs) == 0 {
		fmt.Fprintln(os.Stderr, "rmpvet: no packages matched", patterns)
		os.Exit(2)
	}

	exit := 0
	for _, pkg := range pkgs {
		diags, err := analysis.Run(analyzers, fset, pkg.Files, pkg.Pkg, pkg.Info)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rmpvet:", err)
			os.Exit(2)
		}
		for _, d := range diags {
			fmt.Println(d)
			exit = 1
		}
	}
	os.Exit(exit)
}
