// Command rmemd is the remote memory server daemon: a user-level
// program that donates part of its host's main memory as paging
// space for RMP clients (paper §3.2).
//
// Usage:
//
//	rmemd -listen :7077 -capacity-mb 256 -overflow 0.10
//	rmemd -listen :7078 -advertise host2:7078 -join host1:7077
//
// The daemon serves until interrupted. SIGUSR1 toggles the memory-
// pressure advisory, emulating native memory-demanding processes
// starting on the host (§2.1): while set, new swap-space allocations
// are denied and clients are advised to migrate their pages away.
//
// SIGUSR2 starts a graceful drain: the daemon stops accepting new
// allocations, advises every client to migrate its pages elsewhere,
// and exits once the last page has been evacuated.
//
// With -join, the daemon announces its advertised address to existing
// cluster members at startup; their heartbeat replies gossip it to
// every live pager, which joins it without a restart.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"rmp/internal/client"
	"rmp/internal/page"
	"rmp/internal/server"
)

func main() {
	var (
		listen     = flag.String("listen", ":7077", "listen address")
		capacityMB = flag.Int("capacity-mb", 256, "donated memory in MB")
		overflow   = flag.Float64("overflow", 0.10, "overflow fraction kept for parity logging")
		token      = flag.String("token", "", "auth token clients must present (empty = open)")
		name       = flag.String("name", "", "server name for logs (default: listen address)")
		spill      = flag.Bool("spill", true, "under memory pressure, swap donated pages to local disk (paper §2.1)")
		coldMB     = flag.Int("cold-mb", 0, "bound on the compressed cold tier in MB (0 = unbounded; bound it so pressure reaches the disk tier)")
		spillPath  = flag.String("spill-path", "", "durable disk-spill file; spilled pages survive a daemon restart (empty = temp file)")
		join       = flag.String("join", "", "comma-separated existing members to announce this server to")
		advertise  = flag.String("advertise", "", "address peers should gossip for this server (default: the bound address; set it when listening on all interfaces)")
	)
	flag.Parse()

	n := *name
	if n == "" {
		n = "rmemd" + *listen
	}
	srv := server.New(server.Config{
		Name:          n,
		CapacityPages: *capacityMB << 20 / page.Size,
		OverflowFrac:  *overflow,
		AuthToken:     *token,
		Spill:         *spill,
		ColdPages:     *coldMB << 20 / page.Size,
		SpillPath:     *spillPath,
		Logger:        log.New(os.Stderr, "", log.LstdFlags),
	})
	if err := srv.ListenAndServe(*listen); err != nil {
		log.Fatalf("rmemd: %v", err)
	}
	log.Printf("rmemd: serving %d MB (%d pages) on %v", *capacityMB,
		*capacityMB<<20/page.Size, srv.Addr())

	if *join != "" {
		self := *advertise
		if self == "" {
			self = srv.Addr().String()
		}
		announce(self, strings.Split(*join, ","), n, *token)
	}
	// Watch for a drain from either trigger — SIGUSR2 or a wire-level
	// DRAIN (rmpctl drain) — and exit once the store is empty.
	go waitDrained(srv)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM, syscall.SIGUSR1, syscall.SIGUSR2)
	for s := range sig {
		switch s {
		case syscall.SIGUSR1:
			srv.SetPressure(!srv.Pressure())
			log.Printf("rmemd: memory pressure advisory now %v", srv.Pressure())
		case syscall.SIGUSR2:
			if !srv.Draining() {
				log.Printf("rmemd: draining — advising clients to migrate, exiting when empty")
				srv.SetDraining(true)
			}
		default:
			log.Printf("rmemd: shutting down (%v)", s)
			srv.Close()
			return
		}
	}
}

// announce tells each existing member about this server; their PONGs
// gossip it to every pager.
func announce(self string, peers []string, name, token string) {
	for _, peer := range peers {
		peer = strings.TrimSpace(peer)
		if peer == "" {
			continue
		}
		c, err := client.Dial(peer, name, token)
		if err != nil {
			log.Printf("rmemd: announcing to %s: %v", peer, err)
			continue
		}
		if _, err := c.Join(self); err != nil {
			log.Printf("rmemd: announcing to %s: %v", peer, err)
		} else {
			log.Printf("rmemd: announced %s to %s", self, peer)
		}
		c.Bye()
	}
}

// waitDrained exits the daemon once a drain has begun and every
// client has evacuated its pages. Clients see the drain advisory on
// the next heartbeat and migrate; a draining daemon with no stored
// pages exits right away.
func waitDrained(srv *server.Server) {
	for {
		time.Sleep(500 * time.Millisecond)
		if srv.Draining() && srv.Store().Len() == 0 {
			break
		}
	}
	log.Printf("rmemd: drain complete, all pages evacuated; exiting")
	srv.Close()
	os.Exit(0)
}
