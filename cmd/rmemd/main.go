// Command rmemd is the remote memory server daemon: a user-level
// program that donates part of its host's main memory as paging
// space for RMP clients (paper §3.2).
//
// Usage:
//
//	rmemd -listen :7077 -capacity-mb 256 -overflow 0.10
//
// The daemon serves until interrupted. SIGUSR1 toggles the memory-
// pressure advisory, emulating native memory-demanding processes
// starting on the host (§2.1): while set, new swap-space allocations
// are denied and clients are advised to migrate their pages away.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"rmp/internal/page"
	"rmp/internal/server"
)

func main() {
	var (
		listen     = flag.String("listen", ":7077", "listen address")
		capacityMB = flag.Int("capacity-mb", 256, "donated memory in MB")
		overflow   = flag.Float64("overflow", 0.10, "overflow fraction kept for parity logging")
		token      = flag.String("token", "", "auth token clients must present (empty = open)")
		name       = flag.String("name", "", "server name for logs (default: listen address)")
		spill      = flag.Bool("spill", true, "under memory pressure, swap donated pages to local disk (paper §2.1)")
	)
	flag.Parse()

	n := *name
	if n == "" {
		n = "rmemd" + *listen
	}
	srv := server.New(server.Config{
		Name:          n,
		CapacityPages: *capacityMB << 20 / page.Size,
		OverflowFrac:  *overflow,
		AuthToken:     *token,
		Spill:         *spill,
		Logger:        log.New(os.Stderr, "", log.LstdFlags),
	})
	if err := srv.ListenAndServe(*listen); err != nil {
		log.Fatalf("rmemd: %v", err)
	}
	log.Printf("rmemd: serving %d MB (%d pages) on %v", *capacityMB,
		*capacityMB<<20/page.Size, srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM, syscall.SIGUSR1)
	for s := range sig {
		if s == syscall.SIGUSR1 {
			srv.SetPressure(!srv.Pressure())
			log.Printf("rmemd: memory pressure advisory now %v", srv.Pressure())
			continue
		}
		log.Printf("rmemd: shutting down (%v)", s)
		srv.Close()
		return
	}
}
