// Command rmpctl is a diagnostic client for remote memory servers:
// it speaks the RMP wire protocol from the command line so an
// operator can probe servers, move pages by hand, and rehearse
// failure drills.
//
// Usage:
//
//	rmpctl -server host:7077 load
//	rmpctl -server host:7077 stats
//	rmpctl -server host:7077 alloc 64
//	rmpctl -server host:7077 put 7 < page.bin     (exactly 8192 bytes)
//	rmpctl -server host:7077 get 7 > page.bin
//	rmpctl -server host:7077 free 7 8 9
//	rmpctl -server host:7077 ping                  (heartbeat: rtt, load, drain, peers)
//	rmpctl -server host:7077 join host2:7077       (announce a new member)
//	rmpctl -server host:7077 drain                 (ask the server to leave gracefully)
//	rmpctl -registry servers.conf survey           (load of every server)
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"time"

	"rmp/internal/client"
	"rmp/internal/page"
)

func main() {
	var (
		serverAddr = flag.String("server", "", "server address (host:port)")
		registry   = flag.String("registry", "", "registry file for the survey command")
		name       = flag.String("name", "rmpctl", "client name (namespace on the server)")
		token      = flag.String("token", "", "auth token")
		reqTimeout = flag.Duration("req-timeout", 0, "per-request deadline ceiling (0 = client default)")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		log.Fatal("rmpctl: need a command: load | stats | alloc N | put KEY | get KEY | free KEY... | ping | join ADDR | drain | survey")
	}

	cmd := args[0]
	if cmd == "survey" {
		survey(*registry, *name, *token, *reqTimeout)
		return
	}
	if *serverAddr == "" {
		log.Fatal("rmpctl: -server required")
	}
	c, err := client.DialWithDeadlines(*serverAddr, *name, *token,
		client.DialTimeout, client.Deadlines{Ceil: *reqTimeout})
	if err != nil {
		log.Fatalf("rmpctl: %v", err)
	}
	defer c.Bye()

	switch cmd {
	case "load":
		free, err := c.Load()
		check(err)
		fmt.Printf("%s: %d free pages (%d MB), pressure=%v\n",
			*serverAddr, free, free*page.Size>>20, c.PressureAdvised())

	case "alloc":
		need(args, 2)
		n, err := strconv.Atoi(args[1])
		check(err)
		granted, err := c.Alloc(n)
		check(err)
		fmt.Printf("granted %d of %d pages\n", granted, n)

	case "put":
		need(args, 2)
		key := parseKey(args[1])
		buf := page.NewBuf()
		if _, err := io.ReadFull(os.Stdin, buf); err != nil {
			log.Fatalf("rmpctl: reading page from stdin: %v (need exactly %d bytes)", err, page.Size)
		}
		check(c.PageOut(key, buf))
		fmt.Printf("stored page %d (crc %08x)\n", key, buf.Checksum())

	case "get":
		need(args, 2)
		key := parseKey(args[1])
		data, err := c.PageIn(key)
		check(err)
		if _, err := os.Stdout.Write(data); err != nil {
			log.Fatal(err)
		}

	case "free":
		need(args, 2)
		keys := make([]uint64, 0, len(args)-1)
		for _, a := range args[1:] {
			keys = append(keys, parseKey(a))
		}
		check(c.Free(keys...))
		fmt.Printf("freed %d pages\n", len(keys))

	case "stats":
		info, err := c.Stat()
		check(err)
		fmt.Printf("server %s\n", info.Name)
		fmt.Printf("  stored pages    %d (%d MB)%s\n", info.StoredPages,
			info.StoredPages*page.Size>>20, overflowTag(info.InOverflow))
		fmt.Printf("  free pages      %d (%d MB)\n", info.FreePages, info.FreePages*page.Size>>20)
		fmt.Printf("  clients         %d\n", info.Clients)
		fmt.Printf("  pressure        %v\n", info.Pressure)
		fmt.Printf("  puts/gets       %d / %d\n", info.Puts, info.Gets)
		fmt.Printf("  deletes         %d\n", info.Deletes)
		fmt.Printf("  xor writes      %d\n", info.XorWrites)
		fmt.Printf("  misses          %d\n", info.Misses)
		fmt.Printf("  denied allocs   %d\n", info.DeniedAllocs)
		fmt.Printf("  tiers           hot %d / cold %d / disk %d (cold %d KB, hot target %d)\n",
			info.HotPages, info.ColdPages, info.DiskPages, info.ColdBytes>>10, info.HotTarget)
		fmt.Printf("  tier hits       hot %d / cold %d / disk %d\n",
			info.HotHits, info.ColdHits, info.DiskHits)
		fmt.Printf("  tier moves      %d demoted, %d spilled, %d promoted\n",
			info.Demotions, info.Spills, info.Promotions)
		if info.LostPages > 0 {
			fmt.Printf("  LOST PAGES      %d (disk-tier verification failures)\n", info.LostPages)
		}

	case "ping":
		start := time.Now()
		free, draining, peers, err := c.Ping(5 * time.Second)
		check(err)
		state := "ok"
		if draining {
			state = "DRAINING"
		}
		fmt.Printf("%s: %s (%v), %d free pages\n", *serverAddr, state,
			time.Since(start).Round(time.Microsecond), free)
		// The adaptive-deadline view: srtt/rttvar are seeded by the
		// HELLO round trip, the deadline is what a page-sized request
		// would be granted right now.
		fmt.Printf("  srtt %v  rttvar %v  deadline(page) %v\n",
			c.RTT().Round(time.Microsecond), c.RTTVar().Round(time.Microsecond),
			c.RequestDeadline(page.Size).Round(time.Millisecond))
		for _, peer := range peers {
			fmt.Printf("  peer %s\n", peer)
		}

	case "join":
		need(args, 2)
		count, err := c.Join(args[1])
		check(err)
		fmt.Printf("announced %s; server now knows %d peer(s)\n", args[1], count)

	case "drain":
		check(c.Drain())
		fmt.Printf("%s: draining — clients will migrate pages away; the daemon exits when empty\n", *serverAddr)

	default:
		log.Fatalf("rmpctl: unknown command %q", cmd)
	}
}

// survey polls every registered server through a throwaway pager, so
// the report shows exactly what the data path would see: liveness,
// load, the adaptive request deadline, and circuit-breaker state.
func survey(registry, name, token string, reqTimeout time.Duration) {
	if registry == "" {
		log.Fatal("rmpctl: survey needs -registry")
	}
	servers, err := client.LoadRegistry(registry)
	if err != nil {
		log.Fatal(err)
	}
	p, err := client.New(client.Config{
		ClientName: name,
		Servers:    servers,
		Policy:     client.PolicyNone,
		AuthToken:  token,
		ReqTimeout: reqTimeout,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()
	for _, info := range p.Survey() {
		if !info.Alive {
			cause := info.DiedCause
			if cause == "" {
				cause = "unreachable"
			}
			fmt.Printf("%-24s DOWN (%s)\n", info.Addr, cause)
			continue
		}
		state := "ok"
		if info.Pressured {
			state = "PRESSURED"
		}
		if info.Suspect {
			state = "SUSPECT"
		}
		if info.Draining {
			state = "DRAINING"
		}
		free := info.Stat.FreePages
		fmt.Printf("%-24s %-9s %6d free pages (%d MB)  tiers %d/%d/%d  srtt %-8v deadline %-8v breaker %s\n",
			info.Addr, state, free, free*page.Size>>20,
			info.Stat.HotPages, info.Stat.ColdPages, info.Stat.DiskPages,
			info.RTT.Round(time.Microsecond), info.ReqDeadline.Round(time.Millisecond),
			breakerTag(info))
	}
}

// breakerTag renders the circuit-breaker column: the state, plus the
// consecutive-timeout count while it is accumulating failures.
func breakerTag(info client.ServerInfo) string {
	if info.Breaker == "closed" && info.BreakerFails == 0 {
		return "closed"
	}
	return fmt.Sprintf("%s (%d consecutive timeouts)", info.Breaker, info.BreakerFails)
}

func overflowTag(in bool) string {
	if in {
		return "  [IN OVERFLOW: parity-log GC advised]"
	}
	return ""
}

func parseKey(s string) uint64 {
	k, err := strconv.ParseUint(s, 10, 64)
	check(err)
	return k
}

func need(args []string, n int) {
	if len(args) < n {
		log.Fatalf("rmpctl: %s needs %d argument(s)", args[0], n-1)
	}
}

func check(err error) {
	if err != nil {
		log.Fatalf("rmpctl: %v", err)
	}
}
