// Command rmpapp runs one of the paper's benchmark applications over
// the remote memory pager — the full live stack: application ->
// demand-paged VM -> block device -> pager -> TCP -> remote memory
// servers.
//
// With -registry it pages against real rmemd daemons; without it, a
// self-contained demo cluster is spun up in-process.
//
//	rmpapp -app FFT -scale 0.02 -policy paritylog -resident 0.25
//	rmpapp -app QSORT -registry servers.conf -policy mirroring
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"rmp/internal/apps"
	"rmp/internal/blockdev"
	"rmp/internal/client"
	"rmp/internal/page"
	"rmp/internal/server"
	"rmp/internal/vm"
)

var policies = map[string]client.Policy{
	"none":         client.PolicyNone,
	"mirroring":    client.PolicyMirroring,
	"parity":       client.PolicyParity,
	"paritylog":    client.PolicyParityLogging,
	"writethrough": client.PolicyWriteThrough,
	"rs":           client.PolicyRS,
}

func main() {
	var (
		app       = flag.String("app", "FFT", "workload: GAUSS|QSORT|FFT|MVEC|FILTER|CC")
		scale     = flag.Float64("scale", 0.02, "input scale relative to the paper's 1996 sizes")
		policy    = flag.String("policy", "paritylog", "none|mirroring|parity|paritylog|writethrough|rs")
		resident  = flag.Float64("resident", 0.25, "resident fraction of the working set")
		registry  = flag.String("registry", "", "server registry file (empty: in-process demo cluster)")
		nServers  = flag.Int("servers", 5, "in-process demo servers (when no -registry)")
		token     = flag.String("token", "", "auth token")
		readahead = flag.Int("readahead", 0, "sequential readahead pages (0 = off)")

		reqTimeout  = flag.Duration("req-timeout", 0, "per-request deadline ceiling (0 = 5s default)")
		reqFloor    = flag.Duration("req-floor", 0, "per-request deadline floor (0 = 50ms default)")
		retryBudget = flag.Duration("retry-budget", 0, "total retry budget per page fault (0 = 2s default)")
		brkThresh   = flag.Int("breaker-threshold", 0, "consecutive timeouts before a server's circuit breaker opens (0 = default 4)")
		brkCooldown = flag.Duration("breaker-cooldown", 0, "how long an open breaker waits before half-opening (0 = 1s default)")

		rsData   = flag.Int("rs-data", 0, "RS policy: data shards per group (0 = default 4)")
		rsParity = flag.Int("rs-parity", 0, "RS policy: parity shards per group (0 = default 2)")
	)
	flag.Parse()

	pol, ok := policies[strings.ToLower(*policy)]
	if !ok {
		log.Fatalf("rmpapp: unknown policy %q", *policy)
	}
	w, err := apps.ByName(strings.ToUpper(*app), *scale)
	if err != nil {
		log.Fatal(err)
	}

	var addrs []string
	if *registry != "" {
		if addrs, err = client.LoadRegistry(*registry); err != nil {
			log.Fatal(err)
		}
	} else {
		capacity := int(w.Bytes()/page.Size)*2/(*nServers) + 128
		for i := 0; i < *nServers; i++ {
			srv := server.New(server.Config{
				Name:          fmt.Sprintf("demo-%d", i),
				CapacityPages: capacity,
				OverflowFrac:  0.10,
			})
			if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
				log.Fatal(err)
			}
			defer srv.Close()
			addrs = append(addrs, srv.Addr().String())
		}
		fmt.Printf("demo cluster: %d in-process servers, %d pages each\n", *nServers, capacity)
	}

	pager, err := client.New(client.Config{
		ClientName:       "rmpapp",
		Servers:          addrs,
		Policy:           pol,
		AuthToken:        *token,
		ReqTimeout:       *reqTimeout,
		ReqTimeoutFloor:  *reqFloor,
		RetryBudget:      *retryBudget,
		BreakerThreshold: *brkThresh,
		BreakerCooldown:  *brkCooldown,
		RSDataShards:     *rsData,
		RSParityShards:   *rsParity,
	})
	if err != nil {
		log.Fatal(err)
	}
	dev := blockdev.NewPagerDevice(pager)
	defer dev.Close()

	residentBytes := int64(float64(w.Bytes()) * (*resident))
	space, err := vm.NewOpts(w.Bytes(), residentBytes, dev, vm.Options{Readahead: *readahead})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s: %.1f MB working set, %.1f MB resident, policy %v\n",
		w.Name(), mb(w.Bytes()), mb(residentBytes), pol)
	start := time.Now()
	sum, err := w.Run(space)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	st := space.Stats()
	ps := pager.Stats()
	fmt.Printf("completed in %v (checksum %016x)\n", elapsed.Round(time.Millisecond), sum)
	fmt.Printf("vm:    %d faults, %d pageins, %d pageouts, %d prefetches (%d hit)\n",
		st.Faults, st.PageIns, st.PageOuts, st.Prefetch, st.PrefHits)
	fmt.Printf("pager: %d net transfers, %d disk writes, %d disk reads, %d migrated, %d recovered, %d GC passes\n",
		ps.NetTransfers, ps.DiskWrites, ps.DiskReads, ps.Migrated, ps.Recovered, ps.GCPasses)
	if ps.Timeouts+ps.Retries+ps.BreakerOpens+ps.DeadlineFallbacks+ps.ChecksumFaults > 0 {
		fmt.Printf("pager: %d timeouts, %d retries, %d breaker opens, %d budget exhaustions, %d checksum faults\n",
			ps.Timeouts, ps.Retries, ps.BreakerOpens, ps.DeadlineFallbacks, ps.ChecksumFaults)
	}
	if ps.DegradedWrites+ps.PolicyFallbacks+ps.LostPages > 0 {
		fmt.Printf("pager: %d degraded writes, %d policy fallbacks, %d lost pages\n",
			ps.DegradedWrites, ps.PolicyFallbacks, ps.LostPages)
	}
}

func mb(b int64) float64 { return float64(b) / (1 << 20) }
