// Command rmptrace records, inspects, and prices page-reference
// traces of the paper's workloads — the offline half of the
// evaluation pipeline.
//
//	rmptrace record -app GAUSS -scale 1.0 -o gauss.trc
//	rmptrace info gauss.trc
//	rmptrace faults -resident-mb 18 gauss.trc       # LRU fault counts
//	rmptrace charge -resident-mb 18 -policy paritylog -servers 4 gauss.trc
//
// Traces are the RMPT format of internal/trace; a paper-scale GAUSS
// trace (~11 M references) records in well under a second and a few
// MB.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"rmp/internal/apps"
	"rmp/internal/sim"
	"rmp/internal/trace"
	"rmp/internal/vm"
)

var policyKinds = map[string]sim.PolicyKind{
	"disk":         sim.Disk,
	"none":         sim.None,
	"mirroring":    sim.Mirroring,
	"parity":       sim.Parity,
	"paritylog":    sim.ParityLogging,
	"writethrough": sim.WriteThrough,
}

func main() {
	if len(os.Args) < 2 {
		log.Fatal("rmptrace: need a subcommand: record | info | faults | charge")
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "record":
		record(args)
	case "info":
		info(args)
	case "faults":
		faults(args)
	case "charge":
		charge(args)
	default:
		log.Fatalf("rmptrace: unknown subcommand %q", cmd)
	}
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	app := fs.String("app", "FFT", "workload: GAUSS|QSORT|FFT|MVEC|FILTER|CC")
	scale := fs.Float64("scale", 1.0, "input scale relative to the paper")
	out := fs.String("o", "", "output file (required)")
	fs.Parse(args)
	if *out == "" {
		log.Fatal("rmptrace record: -o required")
	}
	w, err := apps.ByName(strings.ToUpper(*app), *scale)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	start := time.Now()
	n, err := trace.SaveRefs(f, func(emit func(int64, bool)) { w.Trace(emit) })
	if err != nil {
		log.Fatal(err)
	}
	st, _ := f.Stat()
	fmt.Printf("%s (%.1f MB working set): %d refs -> %s (%.1f MB, %.2f B/ref) in %v\n",
		w.Name(), float64(w.Bytes())/(1<<20), n, *out,
		float64(st.Size())/(1<<20), float64(st.Size())/float64(n),
		time.Since(start).Round(time.Millisecond))
}

func openTrace(fs *flag.FlagSet) *os.File {
	if fs.NArg() != 1 {
		log.Fatal("rmptrace: need exactly one trace file argument")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	return f
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	fs.Parse(args)
	f := openTrace(fs)
	defer f.Close()
	var refs, writes uint64
	var maxPg int64
	n, err := trace.ReplayRefs(f, func(pg int64, write bool) {
		refs++
		if write {
			writes++
		}
		if pg > maxPg {
			maxPg = pg
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("records:   %d\n", n)
	fmt.Printf("writes:    %d (%.0f%%)\n", writes, 100*float64(writes)/float64(refs))
	fmt.Printf("max page:  %d (footprint %.1f MB)\n", maxPg, float64(maxPg+1)*8192/(1<<20))
}

// replayFaults runs the trace through an LRU and returns the stream.
func replayFaults(path string, residentMB int) []vm.Fault {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	var out []vm.Fault
	rp := vm.NewReplayer(residentMB<<20/8192, func(fault vm.Fault) { out = append(out, fault) })
	if _, err := trace.ReplayRefs(f, func(pg int64, write bool) { rp.Ref(pg, write) }); err != nil {
		log.Fatal(err)
	}
	return out
}

func faults(args []string) {
	fs := flag.NewFlagSet("faults", flag.ExitOnError)
	residentMB := fs.Int("resident-mb", 18, "resident memory in MB (paper testbed: 18)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		log.Fatal("rmptrace faults: need a trace file")
	}
	stream := replayFaults(fs.Arg(0), *residentMB)
	var ins, outs int
	for _, f := range stream {
		if f.Kind == vm.FaultIn {
			ins++
		} else {
			outs++
		}
	}
	fmt.Printf("resident:  %d MB\n", *residentMB)
	fmt.Printf("pageins:   %d\n", ins)
	fmt.Printf("pageouts:  %d\n", outs)
	fmt.Printf("paged I/O: %.1f MB\n", float64(ins+outs)*8192/(1<<20))
}

func charge(args []string) {
	fs := flag.NewFlagSet("charge", flag.ExitOnError)
	residentMB := fs.Int("resident-mb", 18, "resident memory in MB")
	policy := fs.String("policy", "paritylog", "disk|none|mirroring|parity|paritylog|writethrough")
	servers := fs.Int("servers", 4, "data servers (parity logging's S)")
	userSec := fs.Float64("utime", 0, "application compute seconds to include")
	netX := fs.Float64("netx", 1, "network bandwidth factor (10 = ETHERNET*10)")
	fs.Parse(args)
	kind, ok := policyKinds[strings.ToLower(*policy)]
	if !ok {
		log.Fatalf("rmptrace charge: unknown policy %q", *policy)
	}
	if fs.NArg() != 1 {
		log.Fatal("rmptrace charge: need a trace file")
	}
	stream := replayFaults(fs.Arg(0), *residentMB)
	cfg := sim.Config{
		Policy:        kind,
		Servers:       *servers,
		Net:           sim.Ethernet.Scaled(*netX),
		Disk:          sim.RZ55,
		ResidentBytes: int64(*residentMB) << 20,
		User:          time.Duration(*userSec * float64(time.Second)),
	}
	r := sim.ChargeFaults(fs.Arg(0), stream, cfg)
	fmt.Printf("policy:        %v (S=%d, net %gx Ethernet)\n", kind, *servers, *netX)
	fmt.Printf("pageins:       %d\n", r.PageIns)
	fmt.Printf("pageouts:      %d\n", r.PageOuts)
	fmt.Printf("net transfers: %d\n", r.Transfers)
	fmt.Printf("utime:         %v\n", r.Times.User)
	fmt.Printf("protocol time: %v\n", r.Times.Protocol.Round(time.Millisecond))
	fmt.Printf("blocking time: %v\n", r.Times.Blocking.Round(time.Millisecond))
	fmt.Printf("elapsed:       %v\n", r.Elapsed().Round(time.Millisecond))
}
