// Far memory: run an application whose data does not fit in "RAM".
//
// This is the paper's end-to-end story assembled from all the layers:
// a real quicksort (the paper's QSORT workload) runs over a demand-
// paged address space whose resident set is a quarter of its data;
// every fault crosses TCP to remote memory servers under the
// PARITY_LOGGING policy — exactly the stack the 1996 testbed ran,
// with the OSF/1 kernel replaced by the vm package and the Ethernet
// by the loopback.
//
//	go run ./examples/farmemory
package main

import (
	"fmt"
	"log"
	"time"

	"rmp/internal/apps"
	"rmp/internal/blockdev"
	"rmp/internal/client"
	"rmp/internal/page"
	"rmp/internal/server"
	"rmp/internal/vm"
)

func main() {
	// A cluster of 4 data servers + 1 parity server.
	var addrs []string
	for i := 0; i < 5; i++ {
		srv := server.New(server.Config{
			Name:          fmt.Sprintf("rmemd-%d", i),
			CapacityPages: 16 << 20 / page.Size,
			OverflowFrac:  0.10,
		})
		if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		addrs = append(addrs, srv.Addr().String())
	}

	pager, err := client.New(client.Config{
		ClientName: "farmemory",
		Servers:    addrs,
		Policy:     client.PolicyParityLogging,
	})
	if err != nil {
		log.Fatal(err)
	}
	dev := blockdev.NewPagerDevice(pager)
	defer dev.Close()

	// QSORT over 2 MB of records with only 512 KB resident: 75% of
	// the data lives in remote memory at any moment.
	work := apps.NewQsort(256 * 1024)
	resident := work.Bytes() / 4
	space, err := vm.New(work.Bytes(), resident, dev)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("sorting %d records (%.1f MB) with %.1f MB resident, rest on remote memory...\n",
		256*1024, float64(work.Bytes())/(1<<20), float64(resident)/(1<<20))
	start := time.Now()
	sum, err := work.Run(space)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	st := space.Stats()
	ps := pager.Stats()
	fmt.Printf("sorted and verified in %v (checksum %016x)\n", elapsed.Round(time.Millisecond), sum)
	fmt.Printf("vm: %d faults, %d pageins, %d pageouts\n", st.Faults, st.PageIns, st.PageOuts)
	fmt.Printf("pager: %d network page transfers for %d pageouts + %d pageins (parity logging: 1+1/4 per out, plus %d overflow-GC passes rewriting fragmented groups)\n",
		ps.NetTransfers, ps.PageOuts, ps.PageIns, ps.GCPasses)
}
