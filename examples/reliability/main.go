// Reliability drill: survive a remote memory server crash.
//
// Reproduces the paper's core reliability claim live: a pager using
// PARITY_LOGGING over 4 data servers + 1 parity server keeps every
// page readable after one server is killed mid-run, reconstructing
// the lost pages by XOR from the survivors — and keeps accepting
// pageouts afterwards. For contrast, the same drill is repeated under
// NO_RELIABILITY, where the crash loses pages (the paper's
// motivation for the whole design).
//
//	go run ./examples/reliability
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"rmp/internal/client"
	"rmp/internal/page"
	"rmp/internal/server"
)

const pages = 384 // 3 MB working set

func main() {
	fmt.Println("--- drill 1: PARITY_LOGGING (4 data servers + 1 parity server) ---")
	drill(client.PolicyParityLogging, 5)
	fmt.Println()
	fmt.Println("--- drill 2: NO_RELIABILITY (what the paper is protecting against) ---")
	drill(client.PolicyNone, 2)
}

func drill(policy client.Policy, nServers int) {
	servers := make([]*server.Server, nServers)
	addrs := make([]string, nServers)
	for i := range servers {
		servers[i] = server.New(server.Config{
			Name:          fmt.Sprintf("rmemd-%d", i),
			CapacityPages: 16 << 20 / page.Size,
			OverflowFrac:  0.10,
		})
		if err := servers[i].ListenAndServe("127.0.0.1:0"); err != nil {
			log.Fatal(err)
		}
		defer servers[i].Close()
		addrs[i] = servers[i].Addr().String()
	}

	pager, err := client.New(client.Config{
		ClientName: "reliability-drill",
		Servers:    addrs,
		Policy:     policy,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer pager.Close()

	buf := page.NewBuf()
	for i := uint64(0); i < pages; i++ {
		buf.Fill(i * 31)
		if err := pager.PageOut(page.ID(i), buf); err != nil {
			log.Fatalf("pageout: %v", err)
		}
	}
	fmt.Printf("paged out %d pages under %v\n", pages, policy)

	victim := 0
	fmt.Printf("killing server %s ...\n", addrs[victim])
	servers[victim].Close()

	start := time.Now()
	ok, lost := 0, 0
	for i := uint64(0); i < pages; i++ {
		got, err := pager.PageIn(page.ID(i))
		if errors.Is(err, client.ErrPageLost) {
			lost++
			continue
		}
		if err != nil {
			log.Fatalf("pagein %d: %v", i, err)
		}
		want := page.NewBuf()
		want.Fill(i * 31)
		if got.Checksum() != want.Checksum() {
			log.Fatalf("page %d corrupted by recovery", i)
		}
		ok++
	}
	fmt.Printf("after crash: %d/%d pages intact, %d lost (%.0fms including recovery)\n",
		ok, pages, lost, float64(time.Since(start).Microseconds())/1000)

	// The pager must stay fully writable on the surviving servers.
	if err := pager.PageOut(page.ID(0), buf); err != nil {
		log.Fatalf("post-crash pageout failed: %v", err)
	}
	st := pager.Stats()
	fmt.Printf("stats: recovered=%d rehomed=%d lost=%d transfers=%d\n",
		st.Recovered, st.Rehomed, st.LostPages, st.NetTransfers)
}
