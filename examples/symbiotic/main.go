// Symbiotic workstations: every machine both donates and consumes.
//
// The paper's §2.1: "Depending on its workload, a workstation may act
// either as a server, or as a client." Here two workstations each run
// a memory server AND a pager that swaps to the *other* machine — the
// cluster arrangement the paper deploys ("the system ... is in
// everyday use"). Both sides page workloads simultaneously, and one
// side then comes under local memory pressure, pushing its guest
// pages back across the wire.
//
//	go run ./examples/symbiotic
package main

import (
	"fmt"
	"log"
	"sync"

	"rmp/internal/apps"
	"rmp/internal/blockdev"
	"rmp/internal/client"
	"rmp/internal/page"
	"rmp/internal/server"
	"rmp/internal/vm"
)

// workstation bundles the two roles one machine plays.
type workstation struct {
	name  string
	srv   *server.Server // donates local memory
	pager *client.Pager  // consumes the peer's memory
}

func main() {
	// Each machine donates 16 MB.
	mk := func(name string) *workstation {
		srv := server.New(server.Config{
			Name:          name,
			CapacityPages: 16 << 20 / page.Size,
			OverflowFrac:  0.10,
			Spill:         true,
		})
		if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
			log.Fatal(err)
		}
		return &workstation{name: name, srv: srv}
	}
	alpha, beta := mk("alpha"), mk("beta")
	defer alpha.srv.Close()
	defer beta.srv.Close()

	// Cross-wire the pagers: alpha swaps to beta and vice versa.
	connect := func(ws, peer *workstation) {
		p, err := client.New(client.Config{
			ClientName: ws.name,
			Servers:    []string{peer.srv.Addr().String()},
			Policy:     client.PolicyWriteThrough, // single peer: disk shadow for safety
		})
		if err != nil {
			log.Fatal(err)
		}
		ws.pager = p
	}
	connect(alpha, beta)
	connect(beta, alpha)
	defer alpha.pager.Close()
	defer beta.pager.Close()
	fmt.Println("alpha swaps to beta, beta swaps to alpha")

	// Both machines run a paging workload at the same time.
	var wg sync.WaitGroup
	results := make(map[string]uint64)
	var mu sync.Mutex
	for _, ws := range []*workstation{alpha, beta} {
		ws := ws
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := apps.NewFFT(1 << 13) // 256 KB working set
			space, err := vm.New(w.Bytes(), w.Bytes()/4, blockdev.NewPagerDevice(ws.pager))
			if err != nil {
				log.Fatal(err)
			}
			sum, err := w.Run(space)
			if err != nil {
				log.Fatalf("%s: %v", ws.name, err)
			}
			mu.Lock()
			results[ws.name] = sum
			mu.Unlock()
		}()
	}
	wg.Wait()
	if results["alpha"] != results["beta"] {
		log.Fatal("the two machines computed different FFTs")
	}
	fmt.Printf("both machines completed the same FFT (checksum %016x)\n", results["alpha"])
	fmt.Printf("alpha's server hosts %d pages for beta; beta's hosts %d for alpha\n",
		alpha.srv.Store().Len(), beta.srv.Store().Len())

	// Beta's owner comes back: local memory pressure. Its guests
	// (alpha's pages) spill to beta's disk and alpha is advised to
	// migrate; the write-through disk shadow keeps everything safe.
	fmt.Println("beta comes under local memory pressure...")
	beta.srv.SetPressure(true)
	if err := alpha.pager.Rebalance(); err != nil {
		log.Fatal(err)
	}
	st := alpha.pager.Stats()
	fmt.Printf("alpha migrated %d pages (disk-shadowed writes: %d)\n", st.Migrated, st.DiskWrites)

	// Alpha's data must still be fully readable.
	w := apps.NewFFT(1 << 13)
	space, err := vm.New(w.Bytes(), w.Bytes()/4, blockdev.NewPagerDevice(alpha.pager))
	if err != nil {
		log.Fatal(err)
	}
	sum, err := w.Run(space)
	if err != nil {
		log.Fatal(err)
	}
	if sum != results["alpha"] {
		log.Fatal("alpha's recomputation diverged after migration")
	}
	fmt.Println("alpha re-ran its workload correctly after beta reclaimed its memory")
}
