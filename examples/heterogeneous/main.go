// Heterogeneous networks and load adaptation (paper §5, implemented).
//
// Demonstrates the two future-work policies the paper sketches:
//
//  1. a memory hierarchy over unequal links — near servers are
//     preferred, a distant (high-latency) server is used only as
//     overflow before falling back to disk;
//
//  2. network-load adaptation — when every server's measured request
//     latency crosses a threshold, the pager routes pageouts to the
//     local disk, and promotes them back when the network recovers.
//
//     go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"
	"time"

	"rmp/internal/client"
	"rmp/internal/page"
	"rmp/internal/server"
)

func main() {
	// A small near server (LAN) and a large far server (across a
	// slow link, emulated with a service delay).
	near := server.New(server.Config{Name: "near", CapacityPages: 64})
	far := server.New(server.Config{Name: "far", CapacityPages: 4096, ServiceDelay: 10 * time.Millisecond})
	for _, s := range []*server.Server{near, far} {
		if err := s.ListenAndServe("127.0.0.1:0"); err != nil {
			log.Fatal(err)
		}
		defer s.Close()
	}

	pager, err := client.New(client.Config{
		ClientName:          "hetero-demo",
		Servers:             []string{near.Addr().String(), far.Addr().String()},
		Policy:              client.PolicyNone,
		FarLatencyFactor:    4,                     // near tier = within 4x of the fastest
		NetLatencyThreshold: 50 * time.Millisecond, // beyond this, disk wins
	})
	if err != nil {
		log.Fatal(err)
	}
	defer pager.Close()

	fmt.Println("phase 1: paging a working set across the hierarchy")
	buf := page.NewBuf()
	for i := uint64(0); i < 150; i++ {
		buf.Fill(i)
		if err := pager.PageOut(page.ID(i), buf); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("  near server holds %d pages (filled first)\n", near.Store().Len())
	fmt.Printf("  far server holds  %d pages (overflow tier)\n", far.Store().Len())
	fmt.Printf("  disk fallbacks:   %d\n", pager.Stats().FallbackPageOuts)

	fmt.Println("phase 2: the far link degrades past the disk threshold")
	far.SetExtraDelay(120 * time.Millisecond) // WAN congestion sets in
	// A few requests ramp the smoothed RTT estimate over the 50 ms
	// threshold (reads of far-tier pages pay the slow link meanwhile).
	for i := uint64(64); i < 80; i++ {
		if _, err := pager.PageIn(page.ID(i)); err != nil {
			log.Fatal(err)
		}
	}
	before := pager.Stats().FallbackPageOuts
	for i := uint64(200); i < 230; i++ {
		buf.Fill(i)
		if err := pager.PageOut(page.ID(i), buf); err != nil {
			log.Fatal(err)
		}
	}
	st := pager.Stats()
	fmt.Printf("  new pageouts diverted to disk: %d of 30 (threshold %v)\n",
		st.FallbackPageOuts-before, 50*time.Millisecond)
	far.SetExtraDelay(0) // the congestion clears; Rebalance would promote

	fmt.Println("phase 3: everything still reads back correctly")
	for i := uint64(0); i < 150; i++ {
		got, err := pager.PageIn(page.ID(i))
		if err != nil {
			log.Fatalf("pagein %d: %v", i, err)
		}
		want := page.NewBuf()
		want.Fill(i)
		if got.Checksum() != want.Checksum() {
			log.Fatalf("page %d corrupted", i)
		}
	}
	for i := uint64(200); i < 230; i++ {
		if _, err := pager.PageIn(page.ID(i)); err != nil {
			log.Fatalf("pagein %d: %v", i, err)
		}
	}
	fmt.Printf("  verified 180 pages across near memory, far memory and disk\n")
	fmt.Printf("stats: %+v\n", pager.Stats())
}
