// Quickstart: a remote memory paging cluster in one process.
//
// Starts two remote memory servers on the loopback, connects a pager
// with the MIRRORING reliability policy, pages a working set out and
// back in, and prints the traffic statistics — the smallest complete
// tour of the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rmp/internal/client"
	"rmp/internal/page"
	"rmp/internal/server"
)

func main() {
	// 1. Two remote memory servers, each donating 32 MB.
	var addrs []string
	for i := 0; i < 2; i++ {
		srv := server.New(server.Config{
			Name:          fmt.Sprintf("rmemd-%d", i),
			CapacityPages: 32 << 20 / page.Size,
			OverflowFrac:  0.10,
		})
		if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		addrs = append(addrs, srv.Addr().String())
		fmt.Printf("server %d donating 32 MB on %s\n", i, srv.Addr())
	}

	// 2. The pager: every pageout is mirrored onto both servers.
	pager, err := client.New(client.Config{
		ClientName: "quickstart",
		Servers:    addrs,
		Policy:     client.PolicyMirroring,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer pager.Close()

	// 3. Page out a working set...
	const pages = 512 // 4 MB
	buf := page.NewBuf()
	for i := uint64(0); i < pages; i++ {
		buf.Fill(i)
		if err := pager.PageOut(page.ID(i), buf); err != nil {
			log.Fatalf("pageout %d: %v", i, err)
		}
	}
	fmt.Printf("paged out %d pages (%d MB) under %v\n",
		pages, pages*page.Size>>20, client.PolicyMirroring)

	// 4. ...and read it back, verifying contents.
	for i := uint64(0); i < pages; i++ {
		got, err := pager.PageIn(page.ID(i))
		if err != nil {
			log.Fatalf("pagein %d: %v", i, err)
		}
		want := page.NewBuf()
		want.Fill(i)
		if got.Checksum() != want.Checksum() {
			log.Fatalf("page %d corrupted", i)
		}
	}
	fmt.Println("all pages verified after round trip")

	st := pager.Stats()
	fmt.Printf("stats: %d pageouts, %d pageins, %d network page transfers (2 per pageout: mirroring)\n",
		st.PageOuts, st.PageIns, st.NetTransfers)
}
