package rmp

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"rmp/internal/apps"
	"rmp/internal/blockdev"
	"rmp/internal/client"
	"rmp/internal/server"
	"rmp/internal/vm"
)

// startCluster boots n in-process servers and returns their addresses.
func startCluster(t *testing.T, n, capacityPages int) ([]*server.Server, []string) {
	t.Helper()
	var servers []*server.Server
	var addrs []string
	for i := 0; i < n; i++ {
		s := server.New(server.Config{
			Name:          fmt.Sprintf("soak-%d", i),
			CapacityPages: capacityPages,
			OverflowFrac:  0.10,
		})
		if err := s.ListenAndServe("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		servers = append(servers, s)
		addrs = append(addrs, s.Addr().String())
	}
	return servers, addrs
}

// smallApps are test-scale instances of all six paper workloads.
func smallApps() []apps.Workload {
	return []apps.Workload{
		apps.NewGauss(64),
		apps.NewQsort(24_000),
		apps.NewFFT(1 << 12),
		apps.NewMvec(96),
		apps.NewFilter(512, 128),
		apps.NewCC(1),
	}
}

// TestSoakAllAppsOverLiveCluster runs every paper application over
// the full live stack (vm -> blockdev -> pager -> TCP -> servers)
// under every reliability policy and checks the results against
// in-memory executions.
func TestSoakAllAppsOverLiveCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	// Golden checksums from plain in-memory runs.
	golden := make(map[string]uint64)
	for _, w := range smallApps() {
		space, err := vm.New(w.Bytes(), w.Bytes()*2, blockdev.NewMemDevice())
		if err != nil {
			t.Fatal(err)
		}
		sum, err := w.Run(space)
		if err != nil {
			t.Fatalf("%s golden: %v", w.Name(), err)
		}
		golden[w.Name()] = sum
	}

	for _, pol := range []client.Policy{
		client.PolicyNone,
		client.PolicyMirroring,
		client.PolicyParity,
		client.PolicyParityLogging,
		client.PolicyWriteThrough,
	} {
		pol := pol
		t.Run(pol.String(), func(t *testing.T) {
			_, addrs := startCluster(t, 5, 1<<15)
			p, err := client.New(client.Config{
				ClientName: "soak-" + pol.String(),
				Servers:    addrs,
				Policy:     pol,
			})
			if err != nil {
				t.Fatal(err)
			}
			dev := blockdev.NewPagerDevice(p)
			t.Cleanup(func() { dev.Close() })
			for _, w := range smallApps() {
				space, err := vm.NewOpts(w.Bytes(), w.Bytes()/4, dev, vm.Options{Readahead: 4})
				if err != nil {
					t.Fatal(err)
				}
				sum, err := w.Run(space)
				if err != nil {
					t.Fatalf("%s over %v: %v", w.Name(), pol, err)
				}
				if sum != golden[w.Name()] {
					t.Fatalf("%s over %v: checksum %x != golden %x", w.Name(), pol, sum, golden[w.Name()])
				}
				if st := space.Stats(); st.PageOuts == 0 {
					t.Fatalf("%s over %v: no paging exercised", w.Name(), pol)
				}
				if err := space.Close(); err != nil {
					t.Fatalf("%s close: %v", w.Name(), err)
				}
			}
		})
	}
}

// TestSoakCrashMidRun kills a server while an application is running
// over parity logging; the run must complete with the correct result.
func TestSoakCrashMidRun(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	w := apps.NewQsort(24_000)
	goldenSpace, err := vm.New(w.Bytes(), w.Bytes()*2, blockdev.NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	golden, err := w.Run(goldenSpace)
	if err != nil {
		t.Fatal(err)
	}

	servers, addrs := startCluster(t, 5, 1<<15)
	p, err := client.New(client.Config{
		ClientName: "soak-crash",
		Servers:    addrs,
		Policy:     client.PolicyParityLogging,
	})
	if err != nil {
		t.Fatal(err)
	}
	dev := blockdev.NewPagerDevice(p)
	t.Cleanup(func() { dev.Close() })

	space, err := vm.New(w.Bytes(), w.Bytes()/4, dev)
	if err != nil {
		t.Fatal(err)
	}

	// Kill a data server shortly after the run starts.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(30 * time.Millisecond)
		servers[1].Close()
	}()

	sum, err := w.Run(space)
	wg.Wait()
	if err != nil {
		t.Fatalf("run with mid-flight crash: %v", err)
	}
	if sum != golden {
		t.Fatalf("checksum %x != golden %x after crash recovery", sum, golden)
	}
	if p.Stats().LostPages != 0 {
		t.Fatalf("lost %d pages despite parity logging", p.Stats().LostPages)
	}
}

// TestSoakConcurrentClients runs two independent clients against the
// same servers; their namespaces must not interfere.
func TestSoakConcurrentClients(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	_, addrs := startCluster(t, 3, 1<<15)
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for c := 0; c < 2; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			p, err := client.New(client.Config{
				ClientName: fmt.Sprintf("tenant-%d", c),
				Servers:    addrs,
				Policy:     client.PolicyMirroring,
			})
			if err != nil {
				errs <- err
				return
			}
			defer p.Close()
			dev := blockdev.NewPagerDevice(p)
			w := apps.NewFFT(1 << 12)
			space, err := vm.New(w.Bytes(), w.Bytes()/4, dev)
			if err != nil {
				errs <- err
				return
			}
			if _, err := w.Run(space); err != nil {
				errs <- fmt.Errorf("tenant %d: %w", c, err)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
