package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"rmp/internal/client"
	"rmp/internal/page"
	"rmp/internal/server"
)

// This file measures the protocol-v2 pipelining win: the same pageout
// workload run three ways against one live loopback server whose page
// service costs a fixed ServiceDelay (standing in for the ~ms of
// store latency a loaded 1996 rmemd showed). On the v1 session every
// pageout is a strict request/response round trip, so the delays
// serialize; on a multiplexed v2 session the batch path keeps many
// requests in flight and the server overlaps their service, so the
// delays overlap too. The machine-readable result lands in
// BENCH_pipeline.json so CI can track the perf trajectory.

// pipelineServiceDelay models per-request service time at the server.
// It dominates the loopback RTT, which makes the serial-vs-pipelined
// ratio robust on any build machine.
const pipelineServiceDelay = 500 * time.Microsecond

// PipelineStats is the machine-readable benchmark result.
type PipelineStats struct {
	Pages           int     `json:"pages"`
	BatchSize       int     `json:"batch_size"`
	ServiceDelayUS  int64   `json:"service_delay_us"`
	SerialV1PagesPS float64 `json:"serial_v1_pages_per_sec"`
	SerialV2PagesPS float64 `json:"serial_v2_pages_per_sec"`
	PipelinePagesPS float64 `json:"pipelined_v2_pages_per_sec"`
	Speedup         float64 `json:"pipelined_over_serial_v1"`
}

// Pipeline runs the benchmark and writes BENCH_pipeline.json to the
// current directory.
func Pipeline() (*Table, error) {
	t, _, err := pipelineTo("BENCH_pipeline.json")
	return t, err
}

// pipelineTo is Pipeline with an explicit JSON destination ("" skips
// the file), returning the stats for assertions.
func pipelineTo(jsonPath string) (*Table, *PipelineStats, error) {
	srv := server.New(server.Config{
		Name:          "pipeline-srv",
		CapacityPages: 8192,
		OverflowFrac:  0.10,
		ServiceDelay:  pipelineServiceDelay,
	})
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		return nil, nil, err
	}
	defer srv.Close()
	addr := srv.Addr().String()

	const nPages = 256
	const batch = 64
	data := page.NewBuf()
	data.Fill(7)

	// Serial pageouts on a v1-capped session: one round trip per page.
	serialV1, err := pipelineSerial(addr, true, 0, nPages, data)
	if err != nil {
		return nil, nil, err
	}
	// Serial pageouts on a v2 session: the request ids and the mux
	// goroutines must cost nothing when nothing is pipelined.
	serialV2, err := pipelineSerial(addr, false, 10_000, nPages, data)
	if err != nil {
		return nil, nil, err
	}
	// Pipelined batches on the v2 session.
	pipelined, err := pipelineBatched(addr, 20_000, nPages, batch, data)
	if err != nil {
		return nil, nil, err
	}

	pps := func(d time.Duration) float64 { return nPages / d.Seconds() }
	stats := &PipelineStats{
		Pages:           nPages,
		BatchSize:       batch,
		ServiceDelayUS:  pipelineServiceDelay.Microseconds(),
		SerialV1PagesPS: pps(serialV1),
		SerialV2PagesPS: pps(serialV2),
		PipelinePagesPS: pps(pipelined),
	}
	stats.Speedup = stats.PipelinePagesPS / stats.SerialV1PagesPS

	if jsonPath != "" {
		blob, err := json.MarshalIndent(stats, "", "  ")
		if err != nil {
			return nil, nil, err
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return nil, nil, err
		}
	}

	mbps := func(v float64) string {
		return fmt.Sprintf("%.1f", v*float64(page.Size)/(1<<20))
	}
	t := &Table{
		ID:     "PIPELINE",
		Title:  "Sequential vs pipelined pageout throughput (protocol v2 multiplexing)",
		Header: []string{"mode", "pages", "elapsed", "pages/s", "MB/s", "vs serial v1"},
		Rows: [][]string{
			{"serial v1", fmt.Sprint(nPages), serialV1.Round(time.Millisecond).String(),
				fmt.Sprintf("%.0f", stats.SerialV1PagesPS), mbps(stats.SerialV1PagesPS), "1.00x"},
			{"serial v2", fmt.Sprint(nPages), serialV2.Round(time.Millisecond).String(),
				fmt.Sprintf("%.0f", stats.SerialV2PagesPS), mbps(stats.SerialV2PagesPS),
				fmt.Sprintf("%.2fx", stats.SerialV2PagesPS/stats.SerialV1PagesPS)},
			{fmt.Sprintf("pipelined v2 (batch %d)", batch), fmt.Sprint(nPages),
				pipelined.Round(time.Millisecond).String(),
				fmt.Sprintf("%.0f", stats.PipelinePagesPS), mbps(stats.PipelinePagesPS),
				fmt.Sprintf("%.2fx", stats.Speedup)},
		},
		Notes: []string{
			fmt.Sprintf("per-request service delay %v; loopback TCP transport", pipelineServiceDelay),
		},
	}
	if jsonPath != "" {
		t.Notes = append(t.Notes, "machine-readable result written to "+jsonPath)
	}
	return t, stats, nil
}

func pipelineSerial(addr string, forceV1 bool, keyBase uint64, n int, data page.Buf) (time.Duration, error) {
	conn, err := client.DialWithOptions(addr, "pipeline-bench", "", client.DialOptions{ForceV1: forceV1})
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	if forceV1 == conn.Multiplexed() {
		return 0, fmt.Errorf("pipeline: negotiated mux=%v with forceV1=%v", conn.Multiplexed(), forceV1)
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := conn.PageOut(keyBase+uint64(i), data); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

func pipelineBatched(addr string, keyBase uint64, n, batch int, data page.Buf) (time.Duration, error) {
	conn, err := client.DialWithOptions(addr, "pipeline-bench", "", client.DialOptions{})
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	if !conn.Multiplexed() {
		return 0, fmt.Errorf("pipeline: server did not negotiate v2")
	}
	keys := make([]uint64, batch)
	pages := make([]page.Buf, batch)
	for i := range pages {
		pages[i] = data
	}
	start := time.Now()
	for off := 0; off < n; off += batch {
		for i := range keys {
			keys[i] = keyBase + uint64(off+i)
		}
		if err := conn.PageOutBatch(keys, pages); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}
