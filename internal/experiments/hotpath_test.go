package experiments

import "testing"

// TestHotpathAcceptance runs the hot-path benchmark (no JSON output)
// and holds the PR's acceptance claims: the word-wide XOR kernel is at
// least 4x the byte loop, and the steady-state mux encode (FrameWriter
// Queue+Flush) and demux decode (DecodePooled+Recycle) paths allocate
// nothing per frame.
func TestHotpathAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed; skipped in -short")
	}
	_, st, err := hotpathTo("")
	if err != nil {
		t.Fatal(err)
	}
	if st.XORSpeedup < 4 {
		t.Errorf("word XOR kernel speedup %.2fx, want >= 4x (words %.0f MB/s, bytes %.0f MB/s)",
			st.XORSpeedup, st.XORWordsMBps, st.XORBytesMBps)
	}
	if st.FrameWriterAllocsPerOp != 0 {
		t.Errorf("FrameWriter allocates %.1f objects/frame in steady state, want 0", st.FrameWriterAllocsPerOp)
	}
	if st.DecodePooledAllocsPerOp != 0 {
		t.Errorf("DecodePooled+Recycle allocates %.1f objects/frame in steady state, want 0", st.DecodePooledAllocsPerOp)
	}
	if st.RSEncodeMBps <= 0 {
		t.Errorf("RS encode throughput %.0f MB/s, want > 0", st.RSEncodeMBps)
	}
}
