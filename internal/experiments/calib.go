package experiments

import (
	"time"

	"rmp/internal/sim"
)

// The testbed: the paper's DEC Alpha 3000/300 with 32 MB behaves like
// an 18 MB resident limit ("as soon as the working set size exceeds
// 18 MBytes, the paging starts", Fig 3).
const ResidentBytes = 18 << 20

// InitTime is the measured application start overhead (§4.3: 0.21 s).
const InitTime = 210 * time.Millisecond

// PaperFig2 holds Figure 2's published completion times in seconds,
// per application, in policy order NONE / PARITY_LOGGING / MIRRORING
// / DISK. (Values recovered from the figure's data table; the
// percentage claims in the text — e.g. GAUSS NONE 96% faster than
// DISK, QSORT PARITY_LOGGING 40.4% faster — pin the assignments.)
var PaperFig2 = map[string]map[sim.PolicyKind]float64{
	"MVEC":   {sim.None: 19.02, sim.ParityLogging: 23.37, sim.Mirroring: 34.05, sim.Disk: 25.15},
	"GAUSS":  {sim.None: 40.62, sim.ParityLogging: 49.80, sim.Mirroring: 67.25, sim.Disk: 79.61},
	"QSORT":  {sim.None: 74.26, sim.ParityLogging: 81.05, sim.Mirroring: 100.67, sim.Disk: 113.80},
	"FFT":    {sim.None: 108.02, sim.ParityLogging: 121.67, sim.Mirroring: 138.86, sim.Disk: 150.00},
	"FILTER": {sim.None: 80.18, sim.ParityLogging: 94.07, sim.Mirroring: 104.98, sim.Disk: 126.61},
	"CC":     {sim.None: 101.69, sim.ParityLogging: 103.25, sim.Mirroring: 117.31, sim.Disk: 128.70},
}

// PaperFig5 holds Figure 5's published times: NONE / WRITE_THROUGH /
// PARITY_LOGGING.
var PaperFig5 = map[string]map[sim.PolicyKind]float64{
	"MVEC":  {sim.None: 19.02, sim.WriteThrough: 25.49, sim.ParityLogging: 23.37},
	"GAUSS": {sim.None: 40.62, sim.WriteThrough: 41.15, sim.ParityLogging: 49.80},
	"QSORT": {sim.None: 74.26, sim.WriteThrough: 79.85, sim.ParityLogging: 81.05},
	"FFT":   {sim.None: 108.02, sim.WriteThrough: 110.78, sim.ParityLogging: 121.67},
}

// UserTime returns the calibrated computation time of each paper-
// scale application on the DEC Alpha 3000/300.
//
// Derivation: the paper reports each application's completion time
// under NONE and DISK (Figure 2). Both configurations move the same
// pages; the per-page costs are ~11.24 ms (network, §4.4) and ~26.75
// ms (disk with seek+rotation). Solving
//
//	T = (DISK - NONE) / (cost_disk - cost_net)
//	utime ≈ NONE - T*cost_net - inittime
//
// yields the calibration constants below (FFT's is cross-checked by
// the §4.3 decomposition: utime 66.138 s + systime 3.133 s at the
// 24 MB input; Figure 2's FFT input is larger, hence 77 s here).
// These constants are documentation of the paper's implied operating
// point, not quantities our model can derive.
func UserTime(app string) time.Duration {
	switch app {
	case "GAUSS":
		return 12400 * time.Millisecond
	case "QSORT":
		return 45600 * time.Millisecond
	case "FFT":
		return 77600 * time.Millisecond
	case "MVEC":
		// MVEC is a single fused generate-and-multiply pass: ~9M
		// flops plus generation, under 2 s on the Alpha. The tiny
		// compute gap between pageouts is what saturates the write-
		// through disk queue (Figure 5's MVEC anomaly).
		return 1800 * time.Millisecond
	case "FILTER":
		return 46500 * time.Millisecond
	case "CC":
		return 82100 * time.Millisecond
	}
	return 10 * time.Second
}

// FFTUserTime scales FFT's computation with the transform size
// (n log2 n), anchored at the §4.3 decomposition: 66.138 s of utime
// at the 24 MB input (n = 786432 points including scratch accounting).
func FFTUserTime(points int) time.Duration {
	const anchorPoints = 786432.0
	const anchorUser = 66.138 // seconds
	nlogn := func(n float64) float64 {
		if n <= 1 {
			return 1
		}
		l := 0.0
		for v := n; v > 1; v /= 2 {
			l++
		}
		return n * l
	}
	sec := anchorUser * nlogn(float64(points)) / nlogn(anchorPoints)
	return time.Duration(sec * float64(time.Second))
}

// FFTSysTime scales the §4.3 systime anchor (3.133 s) the same way.
func FFTSysTime(points int) time.Duration {
	u := FFTUserTime(points)
	return time.Duration(float64(u) * 3.133 / 66.138)
}

// baseConfig assembles the testbed configuration for a policy.
func baseConfig(pol sim.PolicyKind, servers int, user time.Duration) sim.Config {
	return sim.Config{
		Policy:        pol,
		Servers:       servers,
		Net:           sim.Ethernet,
		Disk:          sim.RZ55,
		ResidentBytes: ResidentBytes,
		User:          user,
		Init:          InitTime,
	}
}
