package experiments

import (
	"fmt"
	"time"

	"rmp/internal/apps"
	"rmp/internal/cluster"
	"rmp/internal/sim"
)

// Fig1 regenerates Figure 1: idle DRAM in a 16-workstation cluster
// over one week.
func Fig1() *Table {
	samples := cluster.Week(cluster.Paper)
	t := &Table{
		ID:     "FIG1",
		Title:  "Unused memory in a workstation cluster (16 machines, 800 MB, one week)",
		Header: []string{"day", "hour", "free MB", "donatable 8K pages", "profile"},
	}
	// Print every 4 hours to keep the table figure-sized.
	for _, s := range samples {
		if s.Hour%4 != 0 {
			continue
		}
		t.Rows = append(t.Rows, []string{
			cluster.DayName(s.Hour),
			fmt.Sprintf("%02d:00", s.Hour%24),
			fmt.Sprintf("%.0f", s.FreeMB),
			fmt.Sprintf("%d", cluster.PagesAvailable(s.FreeMB)),
			bar(s.FreeMB, 800, 40),
		})
	}
	sum := cluster.Summarize(samples)
	t.Notes = append(t.Notes,
		fmt.Sprintf("min %.0f MB, mean %.0f MB, nights %.0f MB, weekend %.0f MB, working-day noon %.0f MB",
			sum.MinFreeMB, sum.MeanFreeMB, sum.NightMeanMB, sum.WeekendMeanMB, sum.NoonMeanMB),
		"paper: >700 MB free at night/weekend, never below ~300 MB, dips at noon/afternoon",
	)
	return t
}

// fig2Configs are Figure 2's four systems, in figure order.
func fig2Configs(user time.Duration) []sim.Config {
	return []sim.Config{
		baseConfig(sim.None, 2, user),          // two remote memory servers
		baseConfig(sim.ParityLogging, 4, user), // 4 servers + parity, 10% overflow
		baseConfig(sim.Mirroring, 2, user),     // primary + mirror
		baseConfig(sim.Disk, 0, user),          // local DEC RZ55
	}
}

// Fig2 regenerates Figure 2: completion time of the six applications
// under the four paging systems.
func Fig2() *Table {
	t := &Table{
		ID:    "FIG2",
		Title: "Application completion time (s) by paging policy",
		Header: []string{"app", "pageins", "pageouts",
			"NONE", "PLOG", "MIRROR", "DISK",
			"paper:NONE", "paper:PLOG", "paper:MIRROR", "paper:DISK",
			"DISK/NONE", "paper"},
	}
	for _, w := range apps.All(1.0) {
		stream := sim.FaultStream(w, ResidentBytes)
		user := UserTime(w.Name())
		var ours []float64
		var ins, outs uint64
		for _, cfg := range fig2Configs(user) {
			r := sim.ChargeFaults(w.Name(), stream, cfg)
			ours = append(ours, r.Elapsed().Seconds())
			ins, outs = r.PageIns, r.PageOuts
		}
		p := PaperFig2[w.Name()]
		t.Rows = append(t.Rows, []string{
			w.Name(),
			fmt.Sprintf("%d", ins), fmt.Sprintf("%d", outs),
			secs(ours[0]), secs(ours[1]), secs(ours[2]), secs(ours[3]),
			secs(p[sim.None]), secs(p[sim.ParityLogging]), secs(p[sim.Mirroring]), secs(p[sim.Disk]),
			ratio(ours[3], ours[0]),
			ratio(p[sim.Disk], p[sim.None]),
		})
	}
	t.Notes = append(t.Notes,
		"shape checks: NONE < PLOG < MIRROR for all apps; DISK worst everywhere except MVEC, where MIRROR > DISK",
		"NONE uses 2 servers; PLOG uses 4 data servers + 1 parity server with 10% overflow (paper §4.1)",
	)
	return t
}

// fig3Inputs are Figure 3's input sizes in MB (total FFT footprint:
// data plane + scratch plane).
var fig3Inputs = []float64{17, 18.5, 20, 21.6, 23.2, 24}

// fftAt returns the FFT instance whose footprint is mb megabytes.
func fftAt(mb float64) *apps.FFT {
	points := int(mb * (1 << 20) / 32)
	return apps.NewFFT(points)
}

// Fig3 regenerates Figure 3: FFT completion time vs input size,
// DISK vs PARITY_LOGGING.
func Fig3() *Table {
	t := &Table{
		ID:     "FIG3",
		Title:  "FFT completion time (s) vs input size: DISK vs PARITY_LOGGING",
		Header: []string{"input MB", "points", "pageins", "pageouts", "DISK", "PLOG", "DISK/PLOG"},
	}
	for _, mb := range fig3Inputs {
		w := fftAt(mb)
		stream := sim.FaultStream(w, ResidentBytes)
		user := FFTUserTime(w.Points())
		sys := FFTSysTime(w.Points())
		mk := func(pol sim.PolicyKind, servers int) sim.Result {
			cfg := baseConfig(pol, servers, user)
			cfg.Sys = sys
			return sim.ChargeFaults(w.Name(), stream, cfg)
		}
		dsk := mk(sim.Disk, 0)
		pl := mk(sim.ParityLogging, 4)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1f", mb),
			fmt.Sprintf("%d", w.Points()),
			fmt.Sprintf("%d", pl.PageIns), fmt.Sprintf("%d", pl.PageOuts),
			secs(dsk.Elapsed().Seconds()), secs(pl.Elapsed().Seconds()),
			ratio(dsk.Elapsed().Seconds(), pl.Elapsed().Seconds()),
		})
	}
	t.Notes = append(t.Notes,
		"paper shape: flat until the 18 MB resident limit, then a sharp rise; DISK rises much faster than PARITY_LOGGING",
		"paper anchors at 24 MB: PARITY_LOGGING 130.76 s, DISK ~160 s",
	)
	return t
}

// Fig4 regenerates Figure 4: FFT under DISK, ETHERNET,
// ETHERNET*10 and ALL MEMORY.
func Fig4() *Table {
	t := &Table{
		ID:     "FIG4",
		Title:  "FFT completion time (s): architecture alternatives",
		Header: []string{"input MB", "DISK", "ETHERNET", "ETHERNET*10", "ALL MEMORY", "paging frac @x10"},
	}
	for _, mb := range fig3Inputs {
		w := fftAt(mb)
		stream := sim.FaultStream(w, ResidentBytes)
		user := FFTUserTime(w.Points())
		sys := FFTSysTime(w.Points())
		mk := func(pol sim.PolicyKind, servers int, netFactor float64) sim.Result {
			cfg := baseConfig(pol, servers, user)
			cfg.Sys = sys
			if netFactor > 1 {
				cfg.Net = sim.Ethernet.Scaled(netFactor)
			}
			return sim.ChargeFaults(w.Name(), stream, cfg)
		}
		dsk := mk(sim.Disk, 0, 1)
		eth := mk(sim.ParityLogging, 4, 1)
		eth10 := mk(sim.ParityLogging, 4, 10)
		all := mk(sim.AllMemory, 0, 1)
		frac := 0.0
		if e := eth10.Elapsed(); e > 0 {
			frac = float64(eth10.Times.PTime()) / float64(e)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1f", mb),
			secs(dsk.Elapsed().Seconds()),
			secs(eth.Elapsed().Seconds()),
			secs(eth10.Elapsed().Seconds()),
			secs(all.Elapsed().Seconds()),
			fmt.Sprintf("%.1f%%", frac*100),
		})
	}
	t.Notes = append(t.Notes,
		"paper shape: ETHERNET*10 runs very close to ALL MEMORY and far below ETHERNET and DISK",
		"paper: at 24 MB, ETHERNET*10 = 83.459 s predicted, paging overhead < 17% of execution time",
	)
	return t
}

// Fig5 regenerates Figure 5: write-through vs parity logging.
func Fig5() *Table {
	t := &Table{
		ID:    "FIG5",
		Title: "Write-through vs parity logging: completion time (s)",
		Header: []string{"app", "NONE", "WTHRU", "PLOG",
			"paper:NONE", "paper:WTHRU", "paper:PLOG"},
	}
	for _, name := range []string{"MVEC", "GAUSS", "QSORT", "FFT"} {
		w, err := apps.ByName(name, 1.0)
		if err != nil {
			continue
		}
		stream := sim.FaultStream(w, ResidentBytes)
		user := UserTime(name)
		mk := func(pol sim.PolicyKind, servers int) float64 {
			return sim.ChargeFaults(name, stream, baseConfig(pol, servers, user)).Elapsed().Seconds()
		}
		p := PaperFig5[name]
		t.Rows = append(t.Rows, []string{
			name,
			secs(mk(sim.None, 2)),
			secs(mk(sim.WriteThrough, 2)),
			secs(mk(sim.ParityLogging, 4)),
			secs(p[sim.None]), secs(p[sim.WriteThrough]), secs(p[sim.ParityLogging]),
		})
	}
	t.Notes = append(t.Notes,
		"paper shape at 10 Mbps disk == 10 Mbps network: WTHRU slightly worse than NONE and better than PLOG for the read-write apps (GAUSS, QSORT, FFT); for pageout-only MVEC the disk saturates and WTHRU ≈ DISK, worse than PLOG",
		"on faster networks WTHRU becomes disk-bound; see the WTAblation table",
	)
	return t
}

// WTAblation extends §4.7's discussion: write-through vs parity
// logging as network bandwidth scales — the paper's prediction that
// "when a modern high bandwidth network is used, parity logging will
// probably be the best approach".
func WTAblation() *Table {
	t := &Table{
		ID:     "WT-ABLATION",
		Title:  "Write-through vs parity logging across network bandwidth (GAUSS, s)",
		Header: []string{"bandwidth", "NONE", "WTHRU", "PLOG", "winner(WTHRU/PLOG)"},
	}
	w, _ := apps.ByName("GAUSS", 1.0)
	stream := sim.FaultStream(w, ResidentBytes)
	user := UserTime("GAUSS")
	for _, x := range []float64{1, 2, 5, 10, 100} {
		mk := func(pol sim.PolicyKind, servers int) float64 {
			cfg := baseConfig(pol, servers, user)
			cfg.Net = sim.Ethernet.Scaled(x)
			return sim.ChargeFaults("GAUSS", stream, cfg).Elapsed().Seconds()
		}
		none, wt, pl := mk(sim.None, 2), mk(sim.WriteThrough, 2), mk(sim.ParityLogging, 4)
		winner := "WTHRU"
		if pl < wt {
			winner = "PLOG"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%gx Ethernet", x), secs(none), secs(wt), secs(pl), winner,
		})
	}
	t.Notes = append(t.Notes, "crossover: parity logging overtakes write-through once the network outruns the disk (§4.7)")
	return t
}
