package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"rmp/internal/client"
	"rmp/internal/cluster"
	"rmp/internal/disk"
	"rmp/internal/memnet"
	"rmp/internal/page"
	"rmp/internal/server"
	"rmp/internal/store"
)

// This file measures the tiered server store two ways.
//
// Part A: pagein latency per tier. Pages are paged out to a loopback
// server, forced down into the compressed and disk tiers, and paged
// back in one at a time, attributing each round trip to the tier that
// served it. The disk tier carries a scaled-down synthetic seek model
// so the hierarchy is visible on any build machine.
//
// Part B: the paper's §4.6 load collapse replayed against the tiered
// store. The weekly idle-memory trace (internal/cluster, Figure 1)
// drives native memory pressure on the server while a client keeps
// allocating and paging. A server with DenyUnderPressure reproduces
// the paper's cliff: allocations are denied during working-hours
// pressure. The tiered server demotes instead — allocation keeps
// succeeding, pageins are served from the compressed and disk tiers,
// and nothing is lost. The machine-readable result lands in
// BENCH_tier.json.

// tierDiskModel is a ~1/8-scale RZ55: big enough to dominate memory
// latency, small enough to keep the benchmark short.
var tierDiskModel = disk.LatencyModel{
	AvgSeek:       2 * time.Millisecond,
	HalfRotation:  time.Millisecond,
	BytesPerSec:   10_000_000,
	SequentialRun: 4,
}

// TierLatency is the per-tier pagein cost (Part A).
type TierLatency struct {
	Pages  int     `json:"pages"`
	MeanUS float64 `json:"mean_us"`
}

// TierModeStats is one server mode's outcome under the load-collapse
// schedule (Part B).
type TierModeStats struct {
	AllocAttempts uint64 `json:"alloc_attempts"`
	AllocDenied   uint64 `json:"alloc_denied"`
	PageOuts      uint64 `json:"pageouts"`
	PageIns       uint64 `json:"pageins"`
	ColdHits      uint64 `json:"cold_hits"`
	DiskHits      uint64 `json:"disk_hits"`
	Demotions     uint64 `json:"demotions"`
	Spills        uint64 `json:"spills"`
	Promotions    uint64 `json:"promotions"`
	LostPages     uint64 `json:"lost_pages"`
	VerifyErrors  uint64 `json:"verify_errors"`
}

// TierStats is the machine-readable benchmark result.
type TierStats struct {
	Hot  TierLatency `json:"pagein_hot"`
	Cold TierLatency `json:"pagein_cold"`
	Disk TierLatency `json:"pagein_disk"`

	TraceSamples int           `json:"trace_samples"`
	TraceTickMS  int64         `json:"trace_tick_ms"`
	Tiered       TierModeStats `json:"tiered"`
	Deny         TierModeStats `json:"deny_under_pressure"`
}

// Tier runs both measurements and writes BENCH_tier.json to the
// current directory.
func Tier() (*Table, error) {
	t, _, err := tierTo("BENCH_tier.json")
	return t, err
}

// tierTo is Tier with an explicit JSON destination ("" skips the
// file), returning the stats for assertions.
func tierTo(jsonPath string) (*Table, *TierStats, error) {
	stats := &TierStats{}
	if err := tierLatency(stats); err != nil {
		return nil, nil, err
	}
	trace := cluster.Week(cluster.Paper)
	const tick = 6 * time.Millisecond
	stats.TraceSamples = len(trace)
	stats.TraceTickMS = tick.Milliseconds()
	tiered, err := tierCollapse(trace, tick, false)
	if err != nil {
		return nil, nil, err
	}
	stats.Tiered = *tiered
	deny, err := tierCollapse(trace, tick, true)
	if err != nil {
		return nil, nil, err
	}
	stats.Deny = *deny

	if jsonPath != "" {
		blob, err := json.MarshalIndent(stats, "", "  ")
		if err != nil {
			return nil, nil, err
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return nil, nil, err
		}
	}

	denyRate := func(m TierModeStats) string {
		if m.AllocAttempts == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f%%", 100*float64(m.AllocDenied)/float64(m.AllocAttempts))
	}
	t := &Table{
		ID:     "TIER",
		Title:  "Tiered store: pagein latency per tier, and §4.6 load collapse with demotion instead of denial",
		Header: []string{"measure", "hot", "cold (flate)", "disk (spill)"},
		Rows: [][]string{
			{"pagein mean", us(stats.Hot.MeanUS), us(stats.Cold.MeanUS), us(stats.Disk.MeanUS)},
			{"pages sampled", fmt.Sprint(stats.Hot.Pages), fmt.Sprint(stats.Cold.Pages), fmt.Sprint(stats.Disk.Pages)},
		},
		Notes: []string{
			fmt.Sprintf("disk tier charged a scaled synthetic seek model (%v avg seek)", tierDiskModel.AvgSeek),
			fmt.Sprintf("load collapse (weekly trace, %d samples at %v/sample):", stats.TraceSamples, tick),
			fmt.Sprintf("  tiered server: %d/%d allocs denied (%s), %d cold hits, %d disk hits, %d spills, %d lost",
				stats.Tiered.AllocDenied, stats.Tiered.AllocAttempts, denyRate(stats.Tiered),
				stats.Tiered.ColdHits, stats.Tiered.DiskHits, stats.Tiered.Spills, stats.Tiered.LostPages),
			fmt.Sprintf("  deny-under-pressure (paper §2.1): %d/%d allocs denied (%s)",
				stats.Deny.AllocDenied, stats.Deny.AllocAttempts, denyRate(stats.Deny)),
		},
	}
	if jsonPath != "" {
		t.Notes = append(t.Notes, "machine-readable result written to "+jsonPath)
	}
	return t, stats, nil
}

func us(v float64) string { return fmt.Sprintf("%.0fµs", v) }

// tierLatency measures Part A against a loopback TCP server.
func tierLatency(out *TierStats) error {
	srv := server.New(server.Config{
		Name:          "tier-srv",
		CapacityPages: 4096,
		OverflowFrac:  0.10,
		Spill:         true,
		DiskModel:     tierDiskModel,
	})
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		return err
	}
	defer srv.Close()

	conn, err := client.Dial(srv.Addr().String(), "tier-bench", "")
	if err != nil {
		return err
	}
	defer conn.Close()

	const nPages = 96
	data := page.NewBuf()
	for i := range data {
		data[i] = byte(i % 128) // compressible, like real heap pages
	}
	for i := uint64(0); i < nPages; i++ {
		if err := conn.PageOut(i, data); err != nil {
			return err
		}
	}
	// Force the population down: one page stays hot, one compressed,
	// the rest spill. Then widen the targets again so reads promote
	// without triggering compensating demotions (whose disk writes
	// would pollute the timings).
	st := srv.Store()
	st.SetTargets(1, 1)
	st.Enforce()
	st.SetTargets(0, 0)

	var sums [3]time.Duration
	var counts [3]int
	for _, k := range st.Keys() {
		tier, ok := st.TierOf(k)
		if !ok {
			continue
		}
		start := time.Now()
		got, err := conn.PageIn(k & (uint64(1)<<48 - 1))
		if err != nil {
			return err
		}
		if got.Checksum() != data.Checksum() {
			return fmt.Errorf("tier: page %d corrupted in tier %v", k, tier)
		}
		sums[tier] += time.Since(start)
		counts[tier]++
	}
	mean := func(t store.Tier) TierLatency {
		if counts[t] == 0 {
			return TierLatency{}
		}
		return TierLatency{
			Pages:  counts[t],
			MeanUS: float64(sums[t].Microseconds()) / float64(counts[t]),
		}
	}
	out.Hot = mean(store.TierHot)
	out.Cold = mean(store.TierCold)
	out.Disk = mean(store.TierDisk)
	return nil
}

// collapseLowWater is the free-memory fraction treated as pressure in
// the load-collapse schedule. The weekly trace never drops below
// ~0.53 of its peak (the paper: ">300 Mbytes ... at all times"), so
// the §4.6 working-hours dip sits between 0.53 and 0.65.
const collapseLowWater = 0.65

// tierCollapse runs Part B: one server driven by the weekly
// idle-memory trace, one client allocating and paging throughout.
// With deny set the server reproduces the paper's §4.6 cliff; without
// it the tiered store absorbs the pressure. The client loads most of
// its working set during the leading night samples — the paper's
// scenario of long-running jobs that acquired remote memory overnight
// and still hold it when the owners return.
func tierCollapse(trace []cluster.Sample, tick time.Duration, deny bool) (*TierModeStats, error) {
	nw := memnet.New()
	srv := server.New(server.Config{
		Name:              "collapse-srv",
		CapacityPages:     1024,
		OverflowFrac:      0.10,
		Spill:             true,
		ColdPages:         48,
		DenyUnderPressure: deny,
		PressureTrace:     trace,
		TraceTick:         tick,
		TraceLowWater:     collapseLowWater,
		Dial:              nw.DialTimeout,
	})
	ln, err := nw.Listen("collapse-srv:7077")
	if err != nil {
		return nil, err
	}
	srv.Serve(ln)
	defer srv.Close()

	conn, err := client.DialWithOptions("collapse-srv:7077", "collapse-client", "",
		client.DialOptions{Dial: nw.DialTimeout})
	if err != nil {
		return nil, err
	}
	defer conn.Close()

	m := &TierModeStats{}
	mk := func(seed uint64) page.Buf {
		p := page.NewBuf()
		for i := range p {
			p[i] = byte((seed + uint64(i)) % 97) // compressible
		}
		return p
	}
	deadline := time.Now().Add(time.Duration(len(trace)) * tick)
	var next uint64
	// Overnight burst: grab most of the donated memory while the trace
	// is still in its quiet leading samples, so the working-hours dip
	// finds a resident set bigger than its hot target.
	const burst = 650
	const allocBudget = 880 // stay under the ~931-page reservable quota
	for next < burst {
		if granted, err := conn.Alloc(1); err != nil {
			return nil, err
		} else if granted == 0 {
			break // quota, not pressure: the night samples deny nothing
		}
		if err := conn.PageOut(next, mk(next)); err != nil {
			return nil, err
		}
		m.PageOuts++
		next++
	}
	rng := uint64(0x9e3779b97f4a7c15)
	for time.Now().Before(deadline) {
		if next < allocBudget {
			m.AllocAttempts++
			granted, err := conn.Alloc(1)
			if err != nil {
				return nil, err
			}
			if granted == 0 {
				m.AllocDenied++ // the paper's collapse: swap space refused
			} else {
				if err := conn.PageOut(next, mk(next)); err != nil {
					return nil, err
				}
				m.PageOuts++
				next++
			}
		}
		if next > 0 {
			rng ^= rng << 13
			rng ^= rng >> 7
			rng ^= rng << 17
			k := rng % next
			got, err := conn.PageIn(k)
			if err != nil {
				return nil, err
			}
			m.PageIns++
			if got.Checksum() != mk(k).Checksum() {
				m.VerifyErrors++
			}
		}
		time.Sleep(tick / 4)
	}
	// Final sweep: every page ever written must read back intact.
	for k := uint64(0); k < next; k++ {
		got, err := conn.PageIn(k)
		if err != nil {
			return nil, err
		}
		if got.Checksum() != mk(k).Checksum() {
			m.VerifyErrors++
		}
	}
	st := srv.Store().Stats()
	m.ColdHits = st.ColdHits
	m.DiskHits = st.DiskHits
	m.Demotions = st.Demotions
	m.Spills = st.Spills
	m.Promotions = st.Promotions
	m.LostPages = st.Lost
	return m, nil
}
