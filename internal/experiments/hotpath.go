package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"testing"

	"rmp/internal/page"
	"rmp/internal/rs"
	"rmp/internal/wire"
)

// This file measures the zero-copy, allocation-free hot path: the
// word-wide XOR kernel against the byte-loop reference (acceptance:
// >= 4x), the nibble-table RS encoder, and the mux frame codec before
// and after pooling — per-frame Encode/Decode (one fresh buffer and
// Msg per frame) against the batching FrameWriter writev path and the
// pooled decoder (zero steady-state allocations, enforced at runtime
// by the alloc gates in internal/client and statically by rmpvet
// -escapes). The machine-readable result lands in BENCH_hotpath.json
// so CI can hold the kernel speedup and zero-alloc claims over time.

// HotpathStats is the machine-readable benchmark result.
type HotpathStats struct {
	// XOR kernels, MB/s over 8 KB pages.
	XORWordsMBps float64 `json:"xor_words_mbps"`
	XORBytesMBps float64 `json:"xor_bytes_mbps"`
	// XORSpeedup is words/bytes (acceptance: >= 4).
	XORSpeedup float64 `json:"xor_speedup"`

	// RSEncodeMBps is RS(4,2) encode throughput over the data bytes.
	RSEncodeMBps float64 `json:"rs_encode_mbps"`

	// Frame output: per-frame Encode (allocating baseline) vs the
	// batching FrameWriter (headers encoded into reused scratch,
	// payloads shipped by reference through one writev vector).
	EncodeFramesPerSec       float64 `json:"encode_frames_per_sec"`
	EncodeAllocsPerFrame     float64 `json:"encode_allocs_per_frame"`
	EncodeBytesPerFrame      float64 `json:"encode_bytes_per_frame"`
	FrameWriterFramesPerSec  float64 `json:"framewriter_frames_per_sec"`
	FrameWriterAllocsPerOp   float64 `json:"framewriter_allocs_per_frame"`
	FrameWriterBytesPerOp    float64 `json:"framewriter_bytes_per_frame"`
	FrameWriterBatch         int     `json:"framewriter_batch"`

	// Frame input: plain Decode (fresh buffers per frame) vs
	// DecodePooled + Recycle (pooled frame buffer and Msg).
	DecodeFramesPerSec       float64 `json:"decode_frames_per_sec"`
	DecodeAllocsPerFrame     float64 `json:"decode_allocs_per_frame"`
	DecodeBytesPerFrame      float64 `json:"decode_bytes_per_frame"`
	DecodePooledFramesPerSec float64 `json:"decode_pooled_frames_per_sec"`
	DecodePooledAllocsPerOp  float64 `json:"decode_pooled_allocs_per_frame"`
	DecodePooledBytesPerOp   float64 `json:"decode_pooled_bytes_per_frame"`

	// Raw buffer sourcing: pooled Get/Put round trip vs a fresh make
	// per page (the before/after of pooling itself), ns/op.
	PooledGetPutNanos float64 `json:"pooled_getput_ns"`
	MakeBufNanos      float64 `json:"make_buf_ns"`
}

// hotpathSink keeps make-based benchmark allocations observable.
var hotpathSink []byte

// Hotpath runs the benchmark and writes BENCH_hotpath.json to the
// current directory.
func Hotpath() (*Table, error) {
	t, _, err := hotpathTo("BENCH_hotpath.json")
	return t, err
}

// hotpathTo is Hotpath with an explicit JSON destination ("" skips
// the file), returning the stats for assertions.
func hotpathTo(jsonPath string) (*Table, *HotpathStats, error) {
	st := &HotpathStats{FrameWriterBatch: 16}

	mbps := func(r testing.BenchmarkResult) float64 {
		if r.T <= 0 {
			return 0
		}
		return float64(r.Bytes) * float64(r.N) / r.T.Seconds() / 1e6
	}
	fps := func(r testing.BenchmarkResult) float64 {
		if r.T <= 0 {
			return 0
		}
		return float64(r.N) / r.T.Seconds()
	}

	// --- XOR kernels -------------------------------------------------
	dst, src := page.NewBuf(), page.NewBuf()
	dst.Fill(3)
	src.Fill(5)
	words := testing.Benchmark(func(b *testing.B) {
		b.SetBytes(page.Size)
		for i := 0; i < b.N; i++ {
			page.XORWords(dst, src)
		}
	})
	bytesRef := testing.Benchmark(func(b *testing.B) {
		b.SetBytes(page.Size)
		for i := 0; i < b.N; i++ {
			page.XORBytesRef(dst, src)
		}
	})
	st.XORWordsMBps = mbps(words)
	st.XORBytesMBps = mbps(bytesRef)
	if st.XORBytesMBps > 0 {
		st.XORSpeedup = st.XORWordsMBps / st.XORBytesMBps
	}

	// --- RS(4,2) encode ----------------------------------------------
	code, err := rs.New(4, 2)
	if err != nil {
		return nil, nil, err
	}
	dataShards := make([][]byte, 4)
	for i := range dataShards {
		b := page.NewBuf()
		b.Fill(uint64(i + 1))
		dataShards[i] = b
	}
	parityShards := [][]byte{page.NewBuf(), page.NewBuf()}
	rsRes := testing.Benchmark(func(b *testing.B) {
		b.SetBytes(4 * page.Size)
		for i := 0; i < b.N; i++ {
			if err := code.Encode(dataShards, parityShards); err != nil {
				b.Fatal(err)
			}
		}
	})
	st.RSEncodeMBps = mbps(rsRes)

	// --- frame output: Encode vs FrameWriter -------------------------
	payload := page.NewBuf()
	payload.Fill(9)
	msg := (&wire.Msg{Version: wire.Version2, ID: 7, Type: wire.TPageOut, Key: 42, Data: payload}).WithChecksum()
	encRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := wire.Encode(io.Discard, msg); err != nil {
				b.Fatal(err)
			}
		}
	})
	st.EncodeFramesPerSec = fps(encRes)
	st.EncodeAllocsPerFrame = float64(encRes.AllocsPerOp())
	st.EncodeBytesPerFrame = float64(encRes.AllocedBytesPerOp())

	fw := wire.NewFrameWriter(io.Discard)
	fwRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := fw.Queue(msg); err != nil {
				b.Fatal(err)
			}
			if fw.Frames() == st.FrameWriterBatch {
				if err := fw.Flush(); err != nil {
					b.Fatal(err)
				}
			}
		}
		if err := fw.Flush(); err != nil {
			b.Fatal(err)
		}
	})
	st.FrameWriterFramesPerSec = fps(fwRes)
	st.FrameWriterAllocsPerOp = float64(fwRes.AllocsPerOp())
	st.FrameWriterBytesPerOp = float64(fwRes.AllocedBytesPerOp())

	// --- frame input: Decode vs DecodePooled -------------------------
	var raw bytes.Buffer
	if err := wire.Encode(&raw, msg); err != nil {
		return nil, nil, err
	}
	r := bytes.NewReader(raw.Bytes())
	decRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.Reset(raw.Bytes())
			if _, err := wire.Decode(r); err != nil {
				b.Fatal(err)
			}
		}
	})
	st.DecodeFramesPerSec = fps(decRes)
	st.DecodeAllocsPerFrame = float64(decRes.AllocsPerOp())
	st.DecodeBytesPerFrame = float64(decRes.AllocedBytesPerOp())

	decPoolRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.Reset(raw.Bytes())
			m, err := wire.DecodePooled(r)
			if err != nil {
				b.Fatal(err)
			}
			wire.Recycle(m)
		}
	})
	st.DecodePooledFramesPerSec = fps(decPoolRes)
	st.DecodePooledAllocsPerOp = float64(decPoolRes.AllocsPerOp())
	st.DecodePooledBytesPerOp = float64(decPoolRes.AllocedBytesPerOp())

	// --- buffer sourcing: pool round trip vs make --------------------
	poolRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			buf := page.Get()
			page.Put(buf)
		}
	})
	makeRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hotpathSink = make([]byte, page.Size)
		}
	})
	st.PooledGetPutNanos = float64(poolRes.NsPerOp())
	st.MakeBufNanos = float64(makeRes.NsPerOp())

	if jsonPath != "" {
		blob, err := json.MarshalIndent(st, "", "  ")
		if err != nil {
			return nil, nil, err
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return nil, nil, err
		}
	}

	t := &Table{
		ID:     "HOTPATH",
		Title:  "Zero-copy hot path: kernels, frame codec, and buffer pooling",
		Header: []string{"path", "throughput", "allocs/op", "B/op"},
		Rows: [][]string{
			{"XOR byte loop (ref)", fmt.Sprintf("%.0f MB/s", st.XORBytesMBps), "0", "0"},
			{"XOR word kernel", fmt.Sprintf("%.0f MB/s", st.XORWordsMBps), "0", "0"},
			{"RS(4,2) encode", fmt.Sprintf("%.0f MB/s", st.RSEncodeMBps), "0", "0"},
			{"per-frame Encode", fmt.Sprintf("%.0f frames/s", st.EncodeFramesPerSec),
				fmt.Sprintf("%.0f", st.EncodeAllocsPerFrame), fmt.Sprintf("%.0f", st.EncodeBytesPerFrame)},
			{"FrameWriter writev", fmt.Sprintf("%.0f frames/s", st.FrameWriterFramesPerSec),
				fmt.Sprintf("%.0f", st.FrameWriterAllocsPerOp), fmt.Sprintf("%.0f", st.FrameWriterBytesPerOp)},
			{"per-frame Decode", fmt.Sprintf("%.0f frames/s", st.DecodeFramesPerSec),
				fmt.Sprintf("%.0f", st.DecodeAllocsPerFrame), fmt.Sprintf("%.0f", st.DecodeBytesPerFrame)},
			{"DecodePooled+Recycle", fmt.Sprintf("%.0f frames/s", st.DecodePooledFramesPerSec),
				fmt.Sprintf("%.0f", st.DecodePooledAllocsPerOp), fmt.Sprintf("%.0f", st.DecodePooledBytesPerOp)},
			{"pool Get/Put", fmt.Sprintf("%.1f ns/op", st.PooledGetPutNanos), "0", "0"},
			{"make 8 KB page", fmt.Sprintf("%.1f ns/op", st.MakeBufNanos), "1", fmt.Sprint(page.Size)},
		},
		Notes: []string{
			fmt.Sprintf("word XOR kernel is %.1fx the byte loop (acceptance: >= 4x)", st.XORSpeedup),
			"FrameWriter ships header+payload by reference through one writev vector; payload bytes are never copied into scratch",
			"steady-state mux encode and demux decode run at 0 allocs/op (gated by AllocsPerRun tests and rmpvet -escapes)",
		},
	}
	if jsonPath != "" {
		t.Notes = append(t.Notes, "machine-readable result written to "+jsonPath)
	}
	return t, st, nil
}
