package experiments

import (
	"fmt"
	"time"

	"rmp/internal/client"
	"rmp/internal/cluster"
	"rmp/internal/page"
)

// GroupWidthAblation sweeps parity logging's group width S (the
// number of data servers) on the live system. S is the scheme's
// central knob: transfer overhead is 1 + 1/S per pageout, memory
// overhead 1/S plus inactive versions, and recovery must read S-1
// survivors plus parity per lost page. The paper notes "as the number
// of the remote memory servers used increases, the difference in
// performance between NO RELIABILITY and PARITY LOGGING becomes
// lower" — this table quantifies the whole trade.
func GroupWidthAblation() (*Table, error) {
	t := &Table{
		ID:    "ABLATION-S",
		Title: "Parity logging group width S (live system)",
		Header: []string{"S", "transfers/pageout", "parity pages", "recovery",
			"recovered pages", "all readable"},
	}
	const pages = 240
	for _, s := range []int{1, 2, 4, 8} {
		addrs, servers, closeAll, err := liveCluster(s+1, 1<<15)
		if err != nil {
			return nil, err
		}
		p, err := client.New(client.Config{
			ClientName: fmt.Sprintf("ablation-s%d", s),
			Servers:    addrs,
			Policy:     client.PolicyParityLogging,
		})
		if err != nil {
			closeAll()
			return nil, err
		}
		data := page.NewBuf()
		for i := uint64(0); i < pages; i++ {
			data.Fill(i)
			if err := p.PageOut(page.ID(i), data); err != nil {
				p.Close()
				closeAll()
				return nil, err
			}
		}
		st := p.Stats()
		perOut := float64(st.NetTransfers) / float64(st.PageOuts)
		parityPages := servers[s].Store().Len() // last server = parity

		servers[0].Close() // crash a data column
		start := time.Now()
		readable := 0
		for i := uint64(0); i < pages; i++ {
			got, err := p.PageIn(page.ID(i))
			if err != nil {
				continue
			}
			want := page.NewBuf()
			want.Fill(i)
			if got.Checksum() == want.Checksum() {
				readable++
			}
		}
		rec := time.Since(start)
		st = p.Stats()
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", s),
			fmt.Sprintf("%.3f", perOut),
			fmt.Sprintf("%d", parityPages),
			rec.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", st.Recovered),
			fmt.Sprintf("%d/%d", readable, pages),
		})
		p.Close()
		closeAll()
	}
	t.Notes = append(t.Notes,
		"transfers/pageout = 1 + 1/S exactly when no GC runs; parity pages ~= live/S",
		"larger S: cheaper pageouts, less parity memory, but recovery reads more survivors per lost page",
		"S=1 degenerates to mirroring's cost (2 transfers/out) with parity-shaped recovery",
	)
	return t, nil
}

// OverflowAblation sweeps parity logging's inactive-version budget on
// a rewrite-heavy workload: a small budget forces frequent garbage
// collection (extra transfers), a large one spends server memory on
// dead versions. The paper runs 10% and reports never needing GC for
// its workloads; this shows what that choice buys.
func OverflowAblation() (*Table, error) {
	t := &Table{
		ID:    "ABLATION-OVERFLOW",
		Title: "Parity logging overflow budget under rewrite churn (live system)",
		Header: []string{"budget", "GC passes", "transfers/op", "server pages held",
			"pages live"},
	}
	const rounds = 40
	for _, budget := range []float64{0.02, 0.10, 0.30, 1.00} {
		addrs, servers, closeAll, err := liveCluster(5, 1<<15)
		if err != nil {
			return nil, err
		}
		p, err := client.New(client.Config{
			ClientName:     fmt.Sprintf("ablation-ov%.2f", budget),
			Servers:        addrs,
			Policy:         client.PolicyParityLogging,
			OverflowBudget: budget,
		})
		if err != nil {
			closeAll()
			return nil, err
		}
		data := page.NewBuf()
		ops := 0
		// Fragmenting churn: a hot page rewritten alongside cold ones.
		for k := uint64(0); k < rounds; k++ {
			data.Fill(10000 + k)
			if err := p.PageOut(page.ID(0), data); err != nil {
				p.Close()
				closeAll()
				return nil, err
			}
			data.Fill(k)
			if err := p.PageOut(page.ID(100+k), data); err != nil {
				p.Close()
				closeAll()
				return nil, err
			}
			ops += 2
		}
		st := p.Stats()
		held := 0
		for _, s := range servers {
			held += s.Store().Len()
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f%%", budget*100),
			fmt.Sprintf("%d", st.GCPasses),
			fmt.Sprintf("%.2f", float64(st.NetTransfers)/float64(ops)),
			fmt.Sprintf("%d", held),
			fmt.Sprintf("%d", 1+rounds),
		})
		p.Close()
		closeAll()
	}
	t.Notes = append(t.Notes,
		"tight budgets trade extra GC transfers for less server memory; loose ones the reverse",
		"the paper's 10% (middle rows) is the balance its experiments never had to GC at",
	)
	return t, nil
}

// Availability turns Figure 1's idle-memory week into the question
// the paper asks of it: how much paging demand could the cluster's
// idle memory have carried at each moment?
func Availability() *Table {
	samples := cluster.Week(cluster.Paper)
	t := &Table{
		ID:     "AVAIL",
		Title:  "Paging capacity of the cluster's idle memory over the week (per Fig 1)",
		Header: []string{"quantity", "value"},
	}
	const jobMB = 24.0 // one paper-scale application's working set
	minJobs, maxJobs := 1<<30, 0
	hoursAbove := 0
	for _, s := range samples {
		jobs := int(s.FreeMB / jobMB)
		if jobs < minJobs {
			minJobs = jobs
		}
		if jobs > maxJobs {
			maxJobs = jobs
		}
		if s.FreeMB >= 700 {
			hoursAbove++
		}
	}
	sum := cluster.Summarize(samples)
	t.Rows = [][]string{
		{"min concurrent 24 MB paging jobs supportable", fmt.Sprintf("%d", minJobs)},
		{"max concurrent 24 MB paging jobs supportable", fmt.Sprintf("%d", maxJobs)},
		{"hours with > 700 MB idle (of 168)", fmt.Sprintf("%d", hoursAbove)},
		{"min idle memory", fmt.Sprintf("%.0f MB", sum.MinFreeMB)},
		{"mean idle memory", fmt.Sprintf("%.0f MB", sum.MeanFreeMB)},
	}
	t.Notes = append(t.Notes,
		"paper's argument: even at the working-day peak, hundreds of MB are idle — more than any single application of the era needed",
	)
	return t
}
