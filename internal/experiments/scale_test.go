package experiments

import (
	"strings"
	"testing"
	"time"
)

// firedLines filters a scenario's event log down to the schedule
// events that actually fired (prefix "t="), dropping harness warnings
// whose presence may depend on machine speed.
func firedLines(events []string) string {
	var out []string
	for _, e := range events {
		if strings.HasPrefix(e, "t=") {
			out = append(out, e)
		}
	}
	return strings.Join(out, "\n")
}

// TestScaleSmoke is the CI-sized harness run: N=50 clients × M=8
// servers under a trimmed schedule (one flap, one inbound isolation),
// with the full invariant set as pass/fail. The scale-smoke CI job
// runs exactly this under -race.
func TestScaleSmoke(t *testing.T) {
	res, err := runScaleScenario(scaleCfg{
		name: "smoke", clients: 50, servers: 8, racks: 4, perClient: 4,
		schedule:   "@2 flap ? period 4 count 1\n@8 partition * -> srv2 for 3",
		seed:       42,
		steps:      13, opsPerStep: 2, keys: 6,
		hbInterval: 150 * time.Millisecond, hbTimeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.invariants != "pass" {
		t.Fatalf("invariant violated: %s\nevents:\n%s", res.invariants, strings.Join(res.events, "\n"))
	}
	if res.acked == 0 {
		t.Fatal("no page was ever acknowledged")
	}
	if fired := firedLines(res.events); strings.Count(fired, "\n")+1 < 5 {
		t.Fatalf("schedule fired too few events:\n%s", fired)
	}
	if res.hbDeaths == 0 {
		t.Fatal("no client ever confirmed a death: the schedule did not bite")
	}
}

// TestScheduleDeterministicReplay: the same schedule seed replayed
// twice over the same workload produces byte-identical event
// timelines and invariant verdicts.
func TestScheduleDeterministicReplay(t *testing.T) {
	cfg := scaleCfg{
		name: "replay", clients: 12, servers: 4, racks: 2, perClient: 3,
		schedule: "@2 flap ? period 4 count 2",
		seed:     7,
		steps:    12, opsPerStep: 2, keys: 6,
		hbInterval: 120 * time.Millisecond, hbTimeout: 800 * time.Millisecond,
	}
	a, err := runScaleScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runScaleScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fa, fb := firedLines(a.events), firedLines(b.events); fa != fb {
		t.Fatalf("event timelines diverged between identical seeds:\n--- run 1\n%s\n--- run 2\n%s", fa, fb)
	}
	if a.invariants != b.invariants {
		t.Fatalf("invariant verdicts diverged: %q vs %q", a.invariants, b.invariants)
	}
	if a.invariants != "pass" {
		t.Fatalf("invariant violated: %s", a.invariants)
	}
	if a.acked == 0 || b.acked == 0 {
		t.Fatal("no page was ever acknowledged")
	}
}
