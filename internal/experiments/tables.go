// Package experiments regenerates every table and figure of the
// paper's evaluation (§4), printing rows comparable to the published
// ones. Figures 2-5 run the application page traces through the
// calibrated testbed model (internal/sim); the latency, busy-server
// and recovery experiments run the real TCP system on the loopback;
// the loaded-Ethernet experiment uses the CSMA/CD simulator.
//
// Absolute 1996 times cannot be reproduced on modern hardware, so
// each table carries the paper's published values next to ours where
// the paper reports them, and EXPERIMENTS.md discusses the shapes.
package experiments

import (
	"encoding/csv"
	"fmt"
	"strings"
)

// Table is one experiment's output.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as RFC-4180 CSV (header + rows; notes as
// trailing comment lines), for plotting tools.
func (t *Table) CSV() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	w.Write(t.Header)
	for _, row := range t.Rows {
		w.Write(row)
	}
	w.Flush()
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// bar renders v/max as a fixed-width ASCII bar for in-table
// sparklines.
func bar(v, max float64, width int) string {
	if max <= 0 || v < 0 {
		return ""
	}
	n := int(v / max * float64(width))
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

// secs formats seconds with 2 decimals.
func secs(s float64) string { return fmt.Sprintf("%.2f", s) }

// ratio formats a/b as "x.xx".
func ratio(a, b float64) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", a/b)
}
