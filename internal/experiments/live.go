package experiments

import (
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"syscall"
	"time"

	"rmp/internal/apps"
	"rmp/internal/blockdev"
	"rmp/internal/client"
	"rmp/internal/page"
	"rmp/internal/server"
	"rmp/internal/simnet"
	"rmp/internal/vm"
)

// liveCluster spins up n in-process remote memory servers for live
// experiments. Caller must call close.
func liveCluster(n, capacity int) (addrs []string, servers []*server.Server, closeAll func(), err error) {
	for i := 0; i < n; i++ {
		s := server.New(server.Config{
			Name:          fmt.Sprintf("rmemd-%d", i),
			CapacityPages: capacity,
			OverflowFrac:  0.10,
		})
		if err := s.ListenAndServe("127.0.0.1:0"); err != nil {
			for _, prev := range servers {
				prev.Close()
			}
			return nil, nil, nil, err
		}
		servers = append(servers, s)
		addrs = append(addrs, s.Addr().String())
	}
	return addrs, servers, func() {
		for _, s := range servers {
			s.Close()
		}
	}, nil
}

// Latency reproduces §4.4's per-page latency anatomy: the paper's
// measured decomposition next to the live loopback system's actual
// round-trip, plus the CSMA/CD model's wire time.
func Latency() (*Table, error) {
	addrs, _, closeAll, err := liveCluster(1, 4096)
	if err != nil {
		return nil, err
	}
	defer closeAll()

	conn, err := client.Dial(addrs[0], "latency-probe", "")
	if err != nil {
		return nil, err
	}
	defer conn.Close()

	data := page.NewBuf()
	data.Fill(1)
	if err := conn.PageOut(0, data); err != nil {
		return nil, err
	}
	const n = 500
	// Warm up, then measure pageins and pageouts.
	for i := 0; i < 20; i++ {
		if _, err := conn.PageIn(0); err != nil {
			return nil, err
		}
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, err := conn.PageIn(0); err != nil {
			return nil, err
		}
	}
	pageinRT := time.Since(start) / n
	start = time.Now()
	for i := 0; i < n; i++ {
		if err := conn.PageOut(uint64(i%64), data); err != nil {
			return nil, err
		}
	}
	pageoutRT := time.Since(start) / n

	t := &Table{
		ID:     "LATENCY",
		Title:  "Per-page (8 KB) transfer latency anatomy (§4.4)",
		Header: []string{"quantity", "value"},
	}
	t.Rows = [][]string{
		{"paper: protocol processing (pptime, TCP/IP on Alpha)", "1.6 ms"},
		{"paper: Ethernet wire time per page", "9.64 ms"},
		{"paper: total per transfer", "11.24 ms"},
		{"paper: prior work (Mach, 386, 4 KB page) [22]", "45 ms"},
		{"model: CSMA/CD unloaded wire time per page", simnet.UnloadedPageTime().String()},
		{"live loopback: pagein round trip", pageinRT.String()},
		{"live loopback: pageout round trip", pageoutRT.String()},
	}
	t.Notes = append(t.Notes,
		"the live numbers are loopback TCP on modern hardware: they demonstrate the software path, not 1996 wire time",
	)
	return t, nil
}

// spinEnv marks a child process as a CPU spinner; see MaybeSpin.
const spinEnv = "RMP_EXPERIMENT_SPINNER"

// MaybeSpin must be called at the top of main() by any binary that
// runs the Busy experiment. When the process was spawned as a
// spinner child it demotes itself to the lowest scheduling priority
// (the paper's busy workstation runs a "while(1)" program beside the
// server; a nice'd competitor is how a timesharing host actually
// schedules one) and burns CPU until killed.
func MaybeSpin() {
	if os.Getenv(spinEnv) == "" {
		return
	}
	_ = syscall.Setpriority(syscall.PRIO_PROCESS, 0, 19)
	deadline := time.Now().Add(2 * time.Minute) // safety net if orphaned
	x := 0
	for time.Now().Before(deadline) {
		for i := 0; i < 1_000_000; i++ {
			x++
		}
	}
	os.Exit(0)
}

// Busy reproduces §4.5: remote memory servers on busy workstations.
// CPU-bound spinner processes (the paper's "while(1)" program) run
// beside one server while a paging workload executes; the paper
// found completion within 7% of the idle-server time.
func Busy() (*Table, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	run := func(load bool) (time.Duration, error) {
		addrs, _, closeAll, err := liveCluster(2, 8192)
		if err != nil {
			return 0, err
		}
		defer closeAll()

		if load {
			for i := 0; i < runtime.NumCPU(); i++ {
				cmd := exec.Command(exe)
				cmd.Env = append(os.Environ(), spinEnv+"=1")
				if err := cmd.Start(); err != nil {
					return 0, err
				}
				proc := cmd.Process
				defer func() {
					proc.Kill()
					cmd.Wait()
				}()
			}
			time.Sleep(50 * time.Millisecond) // let the spinners demote themselves
		}

		p, err := client.New(client.Config{
			ClientName: "busy-exp",
			Servers:    addrs,
			Policy:     client.PolicyNone,
		})
		if err != nil {
			return 0, err
		}
		defer p.Close()

		w := apps.NewFFT(1 << 14) // 512 KB over the live pager
		space, err := vm.New(w.Bytes(), w.Bytes()/4, blockdev.NewPagerDevice(p))
		if err != nil {
			return 0, err
		}
		start := time.Now()
		if _, err := w.Run(space); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}

	idle, err := run(false)
	if err != nil {
		return nil, err
	}
	busy, err := run(true)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "BUSY",
		Title:  "Paging to a server on a busy workstation (§4.5, live FFT over TCP)",
		Header: []string{"server host", "completion", "slowdown"},
	}
	t.Rows = [][]string{
		{"idle", idle.Round(time.Millisecond).String(), "1.00"},
		{"cpu-bound spinner running", busy.Round(time.Millisecond).String(), ratio(busy.Seconds(), idle.Seconds())},
	}
	t.Notes = append(t.Notes,
		"paper: FFT/GAUSS/MVEC within 1 s of idle, QSORT +7%; CPU-bound competitor still within 7%",
		"paper also measured server CPU utilization always below 15%",
	)
	return t, nil
}

// Recovery measures crash recovery of the live system (§2.2's
// feasibility claim): pages out a working set, kills one server, and
// times until every page is readable again.
func Recovery() (*Table, error) {
	t := &Table{
		ID:     "RECOVERY",
		Title:  "Live crash recovery: one server killed under each policy",
		Header: []string{"policy", "servers", "pages", "recovery", "lost pages", "all readable"},
	}
	type cfg struct {
		pol     client.Policy
		servers int
	}
	for _, c := range []cfg{
		{client.PolicyNone, 2},
		{client.PolicyMirroring, 3},
		{client.PolicyParity, 4},
		{client.PolicyParityLogging, 5},
		{client.PolicyWriteThrough, 2},
	} {
		addrs, servers, closeAll, err := liveCluster(c.servers, 8192)
		if err != nil {
			return nil, err
		}
		p, err := client.New(client.Config{
			ClientName: "recovery-exp",
			Servers:    addrs,
			Policy:     c.pol,
		})
		if err != nil {
			closeAll()
			return nil, err
		}
		const pages = 256
		data := page.NewBuf()
		for i := uint64(0); i < pages; i++ {
			data.Fill(i)
			if err := p.PageOut(page.ID(i), data); err != nil {
				p.Close()
				closeAll()
				return nil, err
			}
		}
		servers[0].Close() // crash the first server

		start := time.Now()
		lost := 0
		readable := 0
		for i := uint64(0); i < pages; i++ {
			got, err := p.PageIn(page.ID(i))
			if err != nil {
				lost++
				continue
			}
			want := page.NewBuf()
			want.Fill(i)
			if got.Checksum() == want.Checksum() {
				readable++
			}
		}
		recovery := time.Since(start)
		t.Rows = append(t.Rows, []string{
			c.pol.String(),
			fmt.Sprintf("%d", c.servers),
			fmt.Sprintf("%d", pages),
			recovery.Round(time.Millisecond).String(),
			fmt.Sprintf("%d", lost),
			fmt.Sprintf("%d/%d", readable, pages),
		})
		p.Close()
		closeAll()
	}
	t.Notes = append(t.Notes,
		"NO_RELIABILITY is expected to lose the crashed server's pages — that is the paper's motivation",
		"every reliable policy must report 0 lost; recovery includes XOR reconstruction and re-homing",
	)
	return t, nil
}
