package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"rmp/internal/client"
	"rmp/internal/memnet"
	"rmp/internal/page"
	"rmp/internal/server"
)

// This file measures what the redundancy policies pay for their crash
// tolerance: bytes shipped per pageout (transfer amplification),
// remote pages stored per live page (storage amplification), and
// pageout latency, side by side for every policy. The point of the
// comparison is the erasure-coding trade the paper's parity schemes
// gesture at: surviving m simultaneous crashes by mirroring costs
// m+1 copies, while RS(k,m) costs (k+m)/k — at m=2, RS(4,2) stores
// 1.5x against 3-way mirroring's 3.0x, half the memory for the same
// tolerance. The machine-readable result lands in BENCH_rs.json so
// CI can hold the RS overhead claim (<= 0.6x of mirroring at equal
// 2-crash tolerance) over time.

// RSPolicyBench is one policy's measured row.
type RSPolicyBench struct {
	Policy  string `json:"policy"`
	Servers int    `json:"servers"`
	// CrashTolerance is the number of simultaneous server crashes the
	// policy survives without losing pages (for WRITE_THROUGH the local
	// disk survives any number; reported as the server count).
	CrashTolerance int `json:"crash_tolerance"`
	// AvgPageOutMicros is the mean wall-clock pageout latency.
	AvgPageOutMicros float64 `json:"avg_pageout_micros"`
	// NetTransfersPerPage is page-sized network transfers per pageout.
	NetTransfersPerPage float64 `json:"net_transfers_per_page"`
	// StoredPagesPerPage is remote pages held per live page — the
	// storage amplification.
	StoredPagesPerPage float64 `json:"stored_pages_per_page"`
}

// RSBenchStats is the machine-readable benchmark result.
type RSBenchStats struct {
	Pages    int             `json:"pages"`
	Policies []RSPolicyBench `json:"policies"`
	// RS42StorageAmp is RS(4,2)'s measured storage amplification.
	RS42StorageAmp float64 `json:"rs42_storage_amplification"`
	// MirrorTol2StorageAmp is mirroring's storage amplification at the
	// same 2-crash tolerance: m+1 = 3 full copies. The implemented
	// mirror policy keeps 2 replicas (1-crash tolerance), so the
	// 3-way figure is the analytic equivalent-tolerance baseline.
	MirrorTol2StorageAmp float64 `json:"mirror_tol2_storage_amplification"`
	// RS42OverMirrorTol2 is the acceptance ratio: RS(4,2) storage
	// overhead as a fraction of equal-tolerance mirroring (<= 0.6).
	RS42OverMirrorTol2 float64 `json:"rs42_over_mirror_tol2"`
}

// RS runs the benchmark and writes BENCH_rs.json to the current
// directory.
func RS() (*Table, error) {
	t, _, err := rsBenchTo("BENCH_rs.json")
	return t, err
}

// rsBenchTo is RS with an explicit JSON destination ("" skips the
// file), returning the stats for assertions.
func rsBenchTo(jsonPath string) (*Table, *RSBenchStats, error) {
	// Pages is a multiple of the RS data width so the last group seals
	// and the measured amplification is the steady-state figure.
	const pages = 384

	type cfg struct {
		pol       client.Policy
		servers   int
		tolerance int
	}
	cases := []cfg{
		{client.PolicyNone, 2, 0},
		{client.PolicyMirroring, 3, 1},
		{client.PolicyParity, 4, 1},
		{client.PolicyParityLogging, 5, 1},
		{client.PolicyWriteThrough, 2, 2},
		{client.PolicyRS, 6, 2},
	}

	stats := &RSBenchStats{Pages: pages}
	for _, c := range cases {
		row, err := rsBenchOne(c.pol, c.servers, pages)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", c.pol, err)
		}
		row.CrashTolerance = c.tolerance
		stats.Policies = append(stats.Policies, *row)
		if c.pol == client.PolicyRS {
			stats.RS42StorageAmp = row.StoredPagesPerPage
		}
	}
	stats.MirrorTol2StorageAmp = 3.0
	stats.RS42OverMirrorTol2 = stats.RS42StorageAmp / stats.MirrorTol2StorageAmp

	if jsonPath != "" {
		blob, err := json.MarshalIndent(stats, "", "  ")
		if err != nil {
			return nil, nil, err
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return nil, nil, err
		}
	}

	t := &Table{
		ID:     "RS",
		Title:  "Redundancy cost vs crash tolerance: transfer and storage amplification per policy",
		Header: []string{"policy", "servers", "tolerates", "pageout avg", "net xfers/page", "stored/page"},
	}
	for _, r := range stats.Policies {
		tol := fmt.Sprintf("%d crash(es)", r.CrashTolerance)
		if r.Policy == client.PolicyWriteThrough.String() {
			tol = "all (disk)"
		}
		t.Rows = append(t.Rows, []string{
			r.Policy,
			fmt.Sprint(r.Servers),
			tol,
			fmt.Sprintf("%.0fµs", r.AvgPageOutMicros),
			fmt.Sprintf("%.2f", r.NetTransfersPerPage),
			fmt.Sprintf("%.2f", r.StoredPagesPerPage),
		})
	}
	t.Notes = []string{
		fmt.Sprintf("RS(4,2) stores %.2fx vs 3-way mirroring's 3.00x at equal 2-crash tolerance: %.2fx the cost (acceptance: <= 0.6)",
			stats.RS42StorageAmp, stats.RS42OverMirrorTol2),
		"WRITE_THROUGH tolerance comes from the local disk copy, not remote redundancy",
		"deterministic in-memory transport (memnet); latencies are software-path, not wire time",
	}
	if jsonPath != "" {
		t.Notes = append(t.Notes, "machine-readable result written to "+jsonPath)
	}
	return t, stats, nil
}

// rsBenchOne runs the pageout workload under one policy on a fresh
// memnet cluster and measures its amplification and latency.
func rsBenchOne(pol client.Policy, nServers, pages int) (*RSPolicyBench, error) {
	nw := memnet.New()
	var servers []*server.Server
	var addrs []string
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	for i := 0; i < nServers; i++ {
		s := server.New(server.Config{
			Name:          fmt.Sprintf("rs-bench-%d", i),
			CapacityPages: 4096,
			OverflowFrac:  0.10,
			Dial:          nw.DialTimeout,
		})
		addr := fmt.Sprintf("rs-bench-%d:7077", i)
		ln, err := nw.Listen(addr)
		if err != nil {
			return nil, err
		}
		s.Serve(ln)
		servers = append(servers, s)
		addrs = append(addrs, addr)
	}
	p, err := client.New(client.Config{
		ClientName: "rs-bench",
		Servers:    addrs,
		Policy:     pol,
		Dial:       nw.DialTimeout,
	})
	if err != nil {
		return nil, err
	}
	defer p.Close()

	data := page.NewBuf()
	start := time.Now()
	for i := 0; i < pages; i++ {
		data.Fill(uint64(i))
		if err := p.PageOut(page.ID(i), data); err != nil {
			return nil, fmt.Errorf("pageout %d: %w", i, err)
		}
	}
	elapsed := time.Since(start)

	stored := 0
	for _, info := range p.Survey() {
		stored += info.Stat.StoredPages
	}
	st := p.Stats()
	return &RSPolicyBench{
		Policy:              pol.String(),
		Servers:             nServers,
		AvgPageOutMicros:    float64(elapsed.Microseconds()) / float64(pages),
		NetTransfersPerPage: float64(st.NetTransfers) / float64(pages),
		StoredPagesPerPage:  float64(stored) / float64(pages),
	}, nil
}
