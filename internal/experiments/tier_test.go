package experiments

import (
	"testing"
	"time"

	"rmp/internal/cluster"
)

// TestTierLoadCollapse is the tiering e2e: the §4.6 load-collapse
// schedule on the in-memory transport. The tiered server must demote
// instead of denying — zero denied allocations, pageins served out of
// the compressed and disk tiers, zero lost or corrupted pages — while
// the DenyUnderPressure server reproduces the paper's cliff.
func TestTierLoadCollapse(t *testing.T) {
	trace := cluster.Week(cluster.Paper)
	const tick = 5 * time.Millisecond

	tiered, err := tierCollapse(trace, tick, false)
	if err != nil {
		t.Fatalf("tiered run: %v", err)
	}
	if tiered.AllocDenied != 0 {
		t.Errorf("tiered server denied %d of %d allocs; want 0 (demote, not deny)",
			tiered.AllocDenied, tiered.AllocAttempts)
	}
	if tiered.ColdHits == 0 || tiered.DiskHits == 0 {
		t.Errorf("pageins not served from demoted tiers: cold %d, disk %d",
			tiered.ColdHits, tiered.DiskHits)
	}
	if tiered.Demotions == 0 || tiered.Spills == 0 {
		t.Errorf("pressure trace drove no tier movement: %d demotions, %d spills",
			tiered.Demotions, tiered.Spills)
	}
	if tiered.LostPages != 0 || tiered.VerifyErrors != 0 {
		t.Errorf("pages lost under tiering: %d lost, %d verify failures",
			tiered.LostPages, tiered.VerifyErrors)
	}

	deny, err := tierCollapse(trace, tick, true)
	if err != nil {
		t.Fatalf("deny run: %v", err)
	}
	if deny.AllocDenied == 0 {
		t.Error("DenyUnderPressure server denied nothing; the §4.6 cliff did not reproduce")
	}
	if deny.LostPages != 0 || deny.VerifyErrors != 0 {
		t.Errorf("pages lost in deny mode: %d lost, %d verify failures",
			deny.LostPages, deny.VerifyErrors)
	}
}
