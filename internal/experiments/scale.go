package experiments

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"rmp/internal/chaos"
	"rmp/internal/client"
	"rmp/internal/cluster"
	"rmp/internal/membership"
	"rmp/internal/memnet"
	"rmp/internal/page"
	"rmp/internal/server"
)

// This file is the thousand-node scale harness: N pager clients × M
// memory servers, entirely on memnet, driven by the paper's synthetic
// weekly idle-memory trace (internal/cluster) while a chaos.Schedule
// injects failures. Two question sets are answered in one run:
//
//   - Reliability: four adversarial schedules (rolling restart,
//     asymmetric partition, flapping, correlated rack failure) each
//     run under the machine-checked invariants in
//     internal/chaos/invariants.go — no acknowledged page lost,
//     exposure windows bounded, clean teardown. The invariant verdict
//     is the pass/fail, not eyeballed counters.
//
//   - Scale: a sweep of N·M into the thousands measuring allocation
//     success rate (pageouts that landed in remote memory rather than
//     falling back to local disk), graded re-protection exposure
//     (Stats.ExposureAtTol), and p50/p99/p999 pagein latency.
//
// The machine-readable result lands in BENCH_scale.json; CI holds the
// invariants and the node-count floor over time.

// scaleAddr maps a schedule-level server name to its memnet address.
func scaleAddr(name string) string { return name + ":7077" }

// scaleCfg parametrizes one harness scenario.
type scaleCfg struct {
	name       string
	clients    int
	servers    int
	racks      int           // failure domains, round-robin over servers
	perClient  int           // size of each client's server subset
	schedule   string        // chaos.Schedule source (ticks = trace steps)
	seed       int64         // schedule '?' resolution + workload generator
	steps      int           // trace steps to drive (extended to fit the schedule)
	opsPerStep int           // baseline page operations per client per step
	keys       int           // working-set pages per client
	hbInterval time.Duration // heartbeat probe interval
	hbTimeout  time.Duration // per-probe budget (0 = 5×interval)
}

// scaleResult is the measured outcome of one scenario.
type scaleResult struct {
	events     []string // fired schedule events + harness warnings
	acked      int      // distinct pages acknowledged across all clients
	pageOuts   uint64
	fallbacks  uint64
	pageIns    uint64
	readErrs   uint64 // mid-chaos reads that failed (retried by redundancy at verify time)
	timeouts   uint64
	rebuilds   uint64
	hbDeaths   uint64
	lats       []time.Duration // successful pagein latencies
	exposure   [5]time.Duration
	invariants string // "pass" or the first violated invariant
	wall       time.Duration
}

// runScaleScenario builds the cluster, drives the trace with the
// schedule firing between steps, verifies the invariants, and tears
// everything down.
func runScaleScenario(cfg scaleCfg) (res *scaleResult, err error) {
	base := chaos.CaptureBaseline()
	start := time.Now()
	nw := memnet.New()
	res = &scaleResult{}

	names := make([]string, cfg.servers)
	idx := make(map[string]int, cfg.servers)
	racks := make(map[string][]string)
	srvs := make([]*server.Server, cfg.servers)
	// Capacity must cover reservation demand, not just occupancy: every
	// client chunk-reserves swap space (64 pages at a time) on each
	// subset server it places on, so a server that can hold the pages
	// but cannot grant the reservations denies allocations all the
	// same. Twice the chunk per client leaves room for re-grants after
	// flap restarts and for re-protection traffic.
	perSrvClients := cfg.clients*cfg.perClient/cfg.servers + 1
	capacity := perSrvClients*128 + 3*cfg.clients*cfg.keys/cfg.servers + 1024
	newSrv := func(i int) (*server.Server, error) {
		s := server.New(server.Config{
			Name:          names[i],
			CapacityPages: capacity,
			OverflowFrac:  0.10,
			Dial:          nw.DialerFrom(names[i]),
		})
		ln, lerr := nw.Listen(scaleAddr(names[i]))
		if lerr != nil {
			return nil, lerr
		}
		s.Serve(ln)
		return s, nil
	}
	var pagers []*client.Pager
	defer func() {
		if err == nil {
			return
		}
		for _, p := range pagers {
			p.Close()
		}
		for _, s := range srvs {
			if s != nil {
				s.Close()
			}
		}
	}()
	for i := range srvs {
		names[i] = fmt.Sprintf("srv%d", i)
		idx[names[i]] = i
		rack := fmt.Sprintf("r%d", i%cfg.racks)
		racks[rack] = append(racks[rack], names[i])
		nw.SetRack(scaleAddr(names[i]), rack)
		if srvs[i], err = newSrv(i); err != nil {
			return nil, err
		}
	}

	sched, err := chaos.Parse(cfg.schedule)
	if err != nil {
		return nil, fmt.Errorf("scale %s: schedule: %w", cfg.name, err)
	}
	tl, err := sched.Compile(cfg.seed, names, racks)
	if err != nil {
		return nil, fmt.Errorf("scale %s: compile: %w", cfg.name, err)
	}
	steps := cfg.steps
	if tl.MaxTick()+2 > steps {
		steps = tl.MaxTick() + 2
	}

	// The probe timeout is the false-positive guard: a dead memnet
	// server refuses dials instantly, so real crashes confirm at probe
	// cadence regardless, while a merely CPU-starved server gets the
	// full budget to answer. Tight timeouts here do not speed up real
	// detection — they only convert scheduler stalls into spurious
	// deaths, replica-ref wipes, and rebuild storms.
	hbTimeout := cfg.hbTimeout
	if hbTimeout <= 0 {
		hbTimeout = 5 * cfg.hbInterval
	}
	hb := membership.Config{Interval: cfg.hbInterval, Timeout: hbTimeout, Misses: 3}
	for i := 0; i < cfg.clients; i++ {
		cname := fmt.Sprintf("c%d", i)
		subset := make([]string, cfg.perClient)
		for j := range subset {
			subset[j] = scaleAddr(names[(i+j)%cfg.servers])
		}
		// Data-path budgets follow the same principle as the probe
		// timeout: on memnet a dead or partitioned server refuses dials
		// instantly, so failure detection never rides on a timeout —
		// and the adaptive deadline's default 50ms floor would turn the
		// first scheduler stall of every ops burst into spurious
		// timeouts, open breakers, view-deaths, and disk fallbacks.
		p, perr := client.New(client.Config{
			ClientName:       cname,
			Servers:          subset,
			Policy:           client.PolicyMirroring,
			Membership:       &hb,
			Dial:             nw.DialerFrom(cname),
			ReqTimeoutFloor:  2 * time.Second,
			RetryBudget:      10 * time.Second,
			BreakerThreshold: 32,
		})
		if perr != nil {
			err = fmt.Errorf("scale %s: client %d: %w", cfg.name, i, perr)
			return nil, err
		}
		pagers = append(pagers, p)
	}

	// confirm is how long a crash takes to surface through the failure
	// detector; settle waits at least this long after the last
	// disruption before trusting a zero RebuildPending reading.
	confirm := hb.Interval*time.Duration(hb.Misses+1) + hb.Timeout + 200*time.Millisecond
	var lastDisrupt time.Time
	settle := func() {
		if wait := confirm - time.Since(lastDisrupt); wait > 0 {
			time.Sleep(wait)
		}
		deadline := time.Now().Add(20 * time.Second)
		for {
			var pending uint64
			degraded := 0
			for _, p := range pagers {
				pending += p.Stats().RebuildPending
				degraded += p.Redundancy().Degraded
			}
			if pending == 0 && degraded == 0 {
				return
			}
			if time.Now().After(deadline) {
				res.events = append(res.events, fmt.Sprintf(
					"settle timed out: %d rebuilds pending, %d pages degraded", pending, degraded))
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	open := make(map[[2]string]bool)
	env := chaos.Env{
		Kill: func(name string) {
			nw.Kill(scaleAddr(name))
			srvs[idx[name]].Close()
			lastDisrupt = time.Now()
		},
		Restart: func(name string) {
			s, rerr := newSrv(idx[name])
			if rerr != nil {
				res.events = append(res.events, "restart "+name+": "+rerr.Error())
				return
			}
			srvs[idx[name]] = s
			lastDisrupt = time.Now()
		},
		Partition: func(from, to string) {
			nw.Partition(from, scaleAddr(to))
			open[[2]string{from, to}] = true
			lastDisrupt = time.Now()
		},
		Heal: func(from, to string) {
			nw.Heal(from, scaleAddr(to))
			delete(open, [2]string{from, to})
			lastDisrupt = time.Now()
		},
		Settle: settle,
	}

	// Per-client workload state; each goroutine touches only its own
	// entry, so the step loop needs no locks.
	type clientState struct {
		rng   *rand.Rand
		buf   page.Buf
		acked map[page.ID]uint64
		lats  []time.Duration
		readE uint64
	}
	states := make([]*clientState, cfg.clients)
	for i := range states {
		states[i] = &clientState{
			rng:   rand.New(rand.NewSource(cfg.seed + int64(i)*7919)),
			buf:   page.NewBuf(),
			acked: make(map[page.ID]uint64),
		}
	}

	// The weekly idle-memory trace modulates paging intensity: when the
	// cluster is busy (low free memory) local memory is scarce and
	// clients page harder — the paper's operating regime.
	trace := cluster.Week(cluster.Paper)
	stride := len(trace) / steps
	if stride < 1 {
		stride = 1
	}
	for step := 0; step < steps; step++ {
		res.events = append(res.events, tl.Fire(step, env)...)
		busy := 1 - trace[(step*stride)%len(trace)].FreeMB/cluster.Paper.TotalMB
		ops := int(float64(cfg.opsPerStep) * (0.3 + 1.4*busy))
		if ops < 1 {
			ops = 1
		}
		var wg sync.WaitGroup
		for i := range pagers {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				p, st := pagers[i], states[i]
				for k := 0; k < ops; k++ {
					id := page.ID(st.rng.Intn(cfg.keys))
					if fill, ok := st.acked[id]; ok && st.rng.Intn(3) == 0 {
						t0 := time.Now()
						got, rerr := p.PageIn(id)
						if rerr != nil {
							st.readE++
							continue
						}
						st.lats = append(st.lats, time.Since(t0))
						page.Put(got)
						_ = fill
						continue
					}
					fill := st.rng.Uint64()
					st.buf.Fill(fill)
					if p.PageOut(id, st.buf) == nil {
						st.acked[id] = fill
					}
				}
			}(i)
		}
		wg.Wait()
	}

	// Quiesce: heal anything the schedule left open, wait for every
	// server to be revived in every client's view, then settle the last
	// re-protection passes.
	for k := range open {
		nw.Heal(k[0], scaleAddr(k[1]))
	}
	reviveBy := time.Now().Add(30 * time.Second)
	for {
		alive := true
		for _, p := range pagers {
			for _, info := range p.Survey() {
				if !info.Alive {
					alive = false
				}
			}
		}
		if alive {
			break
		}
		if time.Now().After(reviveBy) {
			res.events = append(res.events, "revival timed out: some server still dead in a client view")
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	settle()

	// Invariant 1: every acknowledged page reads back byte-identical.
	inv := "pass"
	for i, p := range pagers {
		if nerr := chaos.NoLostPage(states[i].acked, p.PageIn); nerr != nil {
			inv = fmt.Sprintf("client c%d: %v", i, nerr)
			break
		}
	}

	disrupts := tl.Steps()
	for i, p := range pagers {
		st := p.Stats()
		res.pageOuts += st.PageOuts
		res.fallbacks += st.FallbackPageOuts
		res.pageIns += st.PageIns
		res.timeouts += st.Timeouts
		res.rebuilds += st.Rebuilds
		res.hbDeaths += st.HeartbeatDeaths
		for g := range st.ExposureAtTol {
			res.exposure[g] += st.ExposureAtTol[g]
		}
		res.acked += len(states[i].acked)
		res.readErrs += states[i].readE
		res.lats = append(res.lats, states[i].lats...)
	}

	// Invariant 2: exposure bounded. Each disruption exposes roughly
	// the clients whose subset touches the victim (perClient/servers of
	// them) for at most the detector confirmation plus one settle
	// budget; anything far beyond that means re-protection wedged.
	if inv == "pass" {
		affected := cfg.clients*cfg.perClient/cfg.servers + 1
		perWindow := confirm + 25*time.Second
		limit := time.Duration(disrupts+2) * time.Duration(affected) * perWindow
		if berr := chaos.BoundedExposure(res.exposure, [5]time.Duration{limit, limit, limit, limit, limit}); berr != nil {
			inv = berr.Error()
		}
	}

	// Teardown, then invariant 3: no goroutine or pool-buffer leaks.
	// The allowance covers buffers legitimately lost with the cluster:
	// pages resident in server stores at Close (acked × 2 mirror copies
	// plus re-protection copies) and payloads of timed-out requests.
	var cwg sync.WaitGroup
	for _, p := range pagers {
		cwg.Add(1)
		go func(p *client.Pager) { defer cwg.Done(); p.Close() }(p)
	}
	cwg.Wait()
	for _, s := range srvs {
		s.Close()
	}
	if inv == "pass" {
		allowance := uint64(res.acked)*4 + res.timeouts*2 + 8192
		if serr := base.CleanShutdown(10*time.Second, allowance); serr != nil {
			inv = serr.Error()
		}
	}
	res.invariants = inv
	res.wall = time.Since(start)
	return res, nil
}

// latPercentile reads the q-quantile (0..1) from a sorted latency
// slice, in microseconds.
func latPercentile(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i].Nanoseconds()) / 1e3
}

// ScaleChaosRun is one adversarial schedule's outcome in the JSON.
type ScaleChaosRun struct {
	Name            string   `json:"name"`
	Clients         int      `json:"clients"`
	Servers         int      `json:"servers"`
	Schedule        string   `json:"schedule"`
	Seed            int64    `json:"seed"`
	Events          []string `json:"events"`
	AckedPages      int      `json:"acked_pages"`
	ReadErrors      uint64   `json:"read_errors"`
	HeartbeatDeaths uint64   `json:"heartbeat_deaths"`
	Rebuilds        uint64   `json:"rebuilds"`
	ExposureMsAtTol [5]float64 `json:"exposure_ms_at_tol"`
	Invariants      string   `json:"invariants"`
	WallMs          int64    `json:"wall_ms"`
}

// ScalePoint is one N×M sweep measurement in the JSON.
type ScalePoint struct {
	Clients         int        `json:"clients"`
	Servers         int        `json:"servers"`
	Nodes           int        `json:"nodes"`
	AckedPages      int        `json:"acked_pages"`
	PageOuts        uint64     `json:"pageouts"`
	PageIns         uint64     `json:"pageins"`
	AllocSuccess    float64    `json:"alloc_success"`
	P50Micros       float64    `json:"p50_pagein_micros"`
	P99Micros       float64    `json:"p99_pagein_micros"`
	P999Micros      float64    `json:"p999_pagein_micros"`
	ExposureMsAtTol [5]float64 `json:"exposure_ms_at_tol"`
	Invariants      string     `json:"invariants"`
	WallMs          int64      `json:"wall_ms"`
}

// ScaleStats is the machine-readable BENCH_scale.json payload.
type ScaleStats struct {
	Suite             []ScaleChaosRun `json:"suite"`
	Sweep             []ScalePoint    `json:"sweep"`
	MaxNodes          int             `json:"max_nodes"`
	AllInvariantsPass bool            `json:"all_invariants_pass"`
}

func exposureMs(e [5]time.Duration) (out [5]float64) {
	for i, d := range e {
		out[i] = float64(d.Nanoseconds()) / 1e6
	}
	return out
}

// scaleSuite is the adversarial schedule set: the four failure shapes
// the ISSUE requires, each on a 48×8 cluster over 4 racks. Ticks are
// trace steps. '?' victims resolve from the seed at compile time.
var scaleSuite = []struct {
	name     string
	seed     int64
	schedule string
}{
	{"rolling-restart", 11, "@2 rolling every 3 down 1"},
	{"asym-partition", 12, "@2 partition c5 -> srv3 for 4\n@8 partition * -> srv6 for 4\n@13 settle"},
	{"flapping", 13, "@2 flap ? period 4 count 3"},
	{"rack-failure", 14, "@3 rackfail r1 for 5\n@10 rackfail r3 for 4\n@15 settle"},
}

// Scale runs the benchmark and writes BENCH_scale.json to the current
// directory.
func Scale() (*Table, error) {
	t, _, err := scaleBenchTo("BENCH_scale.json")
	return t, err
}

// scaleBenchTo is Scale with an explicit JSON destination ("" skips
// the file), returning the stats for assertions.
func scaleBenchTo(jsonPath string) (*Table, *ScaleStats, error) {
	stats := &ScaleStats{AllInvariantsPass: true}

	for _, sc := range scaleSuite {
		res, err := runScaleScenario(scaleCfg{
			name: sc.name, clients: 48, servers: 8, racks: 4, perClient: 4,
			schedule: sc.schedule, seed: sc.seed,
			steps: 16, opsPerStep: 3, keys: 8,
			hbInterval: 150 * time.Millisecond, hbTimeout: time.Second,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("suite %s: %w", sc.name, err)
		}
		if res.invariants != "pass" {
			stats.AllInvariantsPass = false
		}
		stats.Suite = append(stats.Suite, ScaleChaosRun{
			Name: sc.name, Clients: 48, Servers: 8,
			Schedule: sc.schedule, Seed: sc.seed, Events: res.events,
			AckedPages: res.acked, ReadErrors: res.readErrs,
			HeartbeatDeaths: res.hbDeaths, Rebuilds: res.rebuilds,
			ExposureMsAtTol: exposureMs(res.exposure),
			Invariants:      res.invariants, WallMs: res.wall.Milliseconds(),
		})
	}

	// The sweep holds the failure shape constant (two spaced flaps) and
	// scales N·M through ~1000 nodes. Larger clusters get gentler
	// heartbeats: probe load is conns/interval and the harness shares
	// one machine with the cluster it simulates, so both the cadence
	// and the per-probe budget grow with N·M to keep the detector's
	// false-positive rate at zero under scheduler contention.
	sweep := []struct {
		clients, servers int
		hb, hbTO         time.Duration
	}{
		{120, 12, 500 * time.Millisecond, 1500 * time.Millisecond},
		{480, 24, 800 * time.Millisecond, 2 * time.Second},
		{960, 48, 1200 * time.Millisecond, 2500 * time.Millisecond},
	}
	for _, pt := range sweep {
		res, err := runScaleScenario(scaleCfg{
			name:    fmt.Sprintf("sweep-%dx%d", pt.clients, pt.servers),
			clients: pt.clients, servers: pt.servers, racks: 4, perClient: 3,
			schedule: "@3 flap ? period 6 count 1\n@11 flap ? period 6 count 1",
			seed:     int64(1000 + pt.clients),
			steps:    18, opsPerStep: 4, keys: 10,
			hbInterval: pt.hb, hbTimeout: pt.hbTO,
		})
		if err != nil {
			return nil, nil, fmt.Errorf("sweep %dx%d: %w", pt.clients, pt.servers, err)
		}
		if res.invariants != "pass" {
			stats.AllInvariantsPass = false
		}
		sort.Slice(res.lats, func(i, j int) bool { return res.lats[i] < res.lats[j] })
		alloc := 1.0
		if res.pageOuts > 0 {
			alloc = float64(res.pageOuts-res.fallbacks) / float64(res.pageOuts)
		}
		point := ScalePoint{
			Clients: pt.clients, Servers: pt.servers, Nodes: pt.clients + pt.servers,
			AckedPages: res.acked, PageOuts: res.pageOuts, PageIns: res.pageIns,
			AllocSuccess: alloc,
			P50Micros:    latPercentile(res.lats, 0.50),
			P99Micros:    latPercentile(res.lats, 0.99),
			P999Micros:   latPercentile(res.lats, 0.999),
			ExposureMsAtTol: exposureMs(res.exposure),
			Invariants:      res.invariants, WallMs: res.wall.Milliseconds(),
		}
		stats.Sweep = append(stats.Sweep, point)
		if point.Nodes > stats.MaxNodes {
			stats.MaxNodes = point.Nodes
		}
	}

	if jsonPath != "" {
		blob, err := json.MarshalIndent(stats, "", "  ")
		if err != nil {
			return nil, nil, err
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return nil, nil, err
		}
	}

	t := &Table{
		ID:     "SCALE",
		Title:  "Thousand-node harness: chaos schedules under invariants, N×M scale sweep",
		Header: []string{"scenario", "nodes", "acked", "alloc ok", "p99 pagein", "exposure@0", "invariants", "wall"},
	}
	for _, r := range stats.Suite {
		t.Rows = append(t.Rows, []string{
			r.Name, fmt.Sprint(r.Clients + r.Servers), fmt.Sprint(r.AckedPages), "-", "-",
			fmt.Sprintf("%.0fms", r.ExposureMsAtTol[0]), r.Invariants,
			fmt.Sprintf("%.1fs", float64(r.WallMs)/1e3),
		})
	}
	for _, p := range stats.Sweep {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("sweep %dx%d", p.Clients, p.Servers), fmt.Sprint(p.Nodes),
			fmt.Sprint(p.AckedPages),
			fmt.Sprintf("%.3f", p.AllocSuccess),
			fmt.Sprintf("%.0fµs", p.P99Micros),
			fmt.Sprintf("%.0fms", p.ExposureMsAtTol[0]),
			p.Invariants,
			fmt.Sprintf("%.1fs", float64(p.WallMs)/1e3),
		})
	}
	t.Notes = []string{
		"invariants per scenario: no acknowledged page lost, exposure bounded, no goroutine/pool-buffer leak at teardown",
		"suite schedules: rolling restart, asymmetric partition, flapping server, correlated rack failure (isolation, memory preserved)",
		"workload: weekly idle-memory trace modulates paging intensity; mirroring policy, per-client server subsets",
		"exposure@0 is total client-time at zero remaining crash tolerance (Stats.ExposureAtTol[0])",
	}
	if jsonPath != "" {
		t.Notes = append(t.Notes, "machine-readable result written to "+jsonPath)
	}
	return t, stats, nil
}
