package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"rmp/internal/apps"
	"rmp/internal/sim"
)

func TestMain(m *testing.M) {
	MaybeSpin() // child role for the Busy experiment
	os.Exit(m.Run())
}

// cell parses a numeric table cell.
func cell(t *testing.T, row []string, i int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(row[i], "%"), 64)
	if err != nil {
		t.Fatalf("cell %d = %q not numeric: %v", i, row[i], err)
	}
	return v
}

func TestFig1Shape(t *testing.T) {
	tab := Fig1()
	if len(tab.Rows) != 7*24/4 {
		t.Fatalf("fig1 has %d rows", len(tab.Rows))
	}
	min := 1e9
	for _, r := range tab.Rows {
		free := cell(t, r, 2)
		if free < min {
			min = free
		}
		if free > 800 {
			t.Fatalf("free %v exceeds cluster total", free)
		}
	}
	if min < 300 {
		t.Fatalf("fig1 min free %v below the paper's 300 MB floor", min)
	}
}

func TestFig2Shapes(t *testing.T) {
	tab := Fig2()
	if len(tab.Rows) != 6 {
		t.Fatalf("fig2 has %d rows, want 6", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		app := r[0]
		none, plog, mirror, disk := cell(t, r, 3), cell(t, r, 4), cell(t, r, 5), cell(t, r, 6)
		if !(none < plog && plog < mirror) {
			t.Errorf("%s: want NONE < PLOG < MIRROR, got %v %v %v", app, none, plog, mirror)
		}
		if app == "MVEC" {
			if mirror <= disk {
				t.Errorf("MVEC: mirroring (%v) must lose to disk (%v) — the paper's anomaly", mirror, disk)
			}
			if none >= disk {
				t.Errorf("MVEC: NONE (%v) must still beat disk (%v)", none, disk)
			}
		} else if disk <= mirror {
			t.Errorf("%s: disk (%v) must be worst, mirror was %v", app, disk, mirror)
		}
		// GAUSS shows the paper's largest remote-memory win.
		if app == "GAUSS" {
			if disk/none < 1.5 {
				t.Errorf("GAUSS DISK/NONE = %.2f, want the paper's big win (>1.5)", disk/none)
			}
		}
	}
}

func TestFig3Shape(t *testing.T) {
	tab := Fig3()
	var prevDisk, prevPlog float64
	for i, r := range tab.Rows {
		disk, plog := cell(t, r, 4), cell(t, r, 5)
		if i == 0 {
			// 17 MB fits: both systems identical, no paging.
			if disk != plog {
				t.Fatalf("at 17 MB disk %v != plog %v despite no paging", disk, plog)
			}
		} else {
			if disk <= prevDisk || plog <= prevPlog {
				t.Fatalf("row %d: completion time not rising with input", i)
			}
			if disk <= plog {
				t.Fatalf("row %d: disk (%v) not worse than parity logging (%v)", i, disk, plog)
			}
		}
		prevDisk, prevPlog = disk, plog
	}
	// The rise past the resident limit is sharp (paper: "rises sharply").
	first := cell(t, tab.Rows[0], 5)
	second := cell(t, tab.Rows[1], 5)
	if second < first*1.5 {
		t.Fatalf("paging onset not sharp: %v -> %v", first, second)
	}
}

func TestFig4Shape(t *testing.T) {
	tab := Fig4()
	for i, r := range tab.Rows {
		disk, eth, eth10, all := cell(t, r, 1), cell(t, r, 2), cell(t, r, 3), cell(t, r, 4)
		if i == 0 {
			continue // no paging at 17 MB
		}
		if !(all < eth10 && eth10 < eth && eth < disk) {
			t.Fatalf("row %d: want ALL < ETH*10 < ETH < DISK, got %v %v %v %v", i, all, eth10, eth, disk)
		}
		// ETHERNET*10 must sit much closer to ALL MEMORY than to
		// ETHERNET (the paper's "performs very close to ALL MEMORY").
		if (eth10 - all) > (eth-eth10)/2 {
			t.Fatalf("row %d: ETHERNET*10 (%v) not close to ALL MEMORY (%v) vs ETHERNET (%v)", i, eth10, all, eth)
		}
	}
}

func TestFig5Shapes(t *testing.T) {
	tab := Fig5()
	for _, r := range tab.Rows {
		app := r[0]
		none, wt, plog := cell(t, r, 1), cell(t, r, 2), cell(t, r, 3)
		if none > wt {
			t.Errorf("%s: write-through (%v) beat no-reliability (%v)", app, wt, none)
		}
		switch app {
		case "MVEC":
			// Pageout-only: the disk saturates; WT loses its edge
			// (paper: WT 25.49 vs PLOG 23.37 — WT is NOT clearly
			// better). Accept WT >= 0.95*PLOG.
			if wt < plog*0.95 {
				t.Errorf("MVEC: WT (%v) should not clearly beat PLOG (%v)", wt, plog)
			}
		default:
			// Read-write apps: WT beats PLOG at 10 Mbps (§4.7).
			if wt >= plog {
				t.Errorf("%s: WT (%v) should beat PLOG (%v) at 10 Mbps", app, wt, plog)
			}
		}
	}
}

func TestWTAblationCrossover(t *testing.T) {
	tab := WTAblation()
	// At 1x Ethernet WT wins; at 100x parity logging must win.
	if tab.Rows[0][4] != "WTHRU" {
		t.Fatalf("at 10 Mbps winner = %s, want WTHRU", tab.Rows[0][4])
	}
	last := tab.Rows[len(tab.Rows)-1]
	if last[4] != "PLOG" {
		t.Fatalf("at 100x winner = %s, want PLOG (§4.7's prediction)", last[4])
	}
}

func TestLoadedNetCollapse(t *testing.T) {
	tab := LoadedNet()
	first := tab.Rows[0]
	last := tab.Rows[len(tab.Rows)-1]
	firstFFT := cell(t, first, 5)
	lastFFT := cell(t, last, 5)
	if lastFFT < 2*firstFFT {
		t.Fatalf("loaded Ethernet did not collapse paging: %v -> %v", firstFFT, lastFFT)
	}
}

func TestDecompMatchesPaper(t *testing.T) {
	tab := Decomp()
	find := func(q string) []string {
		for _, r := range tab.Rows {
			if r[0] == q {
				return r
			}
		}
		t.Fatalf("row %q missing", q)
		return nil
	}
	if r := find("predicted at ETHERNET*10"); true {
		d, err := time.ParseDuration(r[2])
		if err != nil {
			t.Fatalf("prediction %q: %v", r[2], err)
		}
		if diff := d - 83459*time.Millisecond; diff < -5*time.Millisecond || diff > 5*time.Millisecond {
			t.Fatalf("ETHERNET*10 prediction = %v, want ~83.459s", d)
		}
	}
	if r := find("page transfers"); r[2] != "5452" {
		t.Fatalf("transfers = %s", r[2])
	}
	r := find("paging fraction at ETHERNET*10")
	frac := cell(t, r, 2)
	if frac >= 17 {
		t.Fatalf("paging fraction %v%%, paper says < 17%%", frac)
	}
}

func TestLatencyLive(t *testing.T) {
	tab, err := Latency()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("latency table has %d rows", len(tab.Rows))
	}
	// Live loopback round trips must be sane (parse the durations).
	for _, r := range tab.Rows[5:] {
		d, err := time.ParseDuration(r[1])
		if err != nil {
			t.Fatalf("latency %q: %v", r[1], err)
		}
		if d <= 0 || d > time.Second {
			t.Fatalf("implausible live latency %v", d)
		}
	}
}

func TestRecoveryLive(t *testing.T) {
	tab, err := Recovery()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("recovery table has %d rows", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		policy, lost := r[0], r[4]
		if policy == "NO_RELIABILITY" {
			if lost == "0" {
				t.Errorf("NO_RELIABILITY lost no pages — crash not exercised")
			}
			continue
		}
		if lost != "0" {
			t.Errorf("%s lost %s pages after a single crash", policy, lost)
		}
		if r[5] != "256/256" {
			t.Errorf("%s: only %s pages readable", policy, r[5])
		}
	}
}

// TestGroupWidthAblation: 1+1/S transfers, full recovery at every S.
func TestGroupWidthAblation(t *testing.T) {
	tab, err := GroupWidthAblation()
	if err != nil {
		t.Fatal(err)
	}
	wantS := []float64{1, 2, 4, 8}
	for i, r := range tab.Rows {
		s := wantS[i]
		perOut := cell(t, r, 1)
		want := 1 + 1/s
		if perOut < want-0.01 || perOut > want+0.01 {
			t.Errorf("S=%v: transfers/out = %v, want %v", s, perOut, want)
		}
		if !strings.HasPrefix(r[5], "240/") || r[5] != "240/240" {
			t.Errorf("S=%v: readable = %s, want 240/240", s, r[5])
		}
	}
	// Parity memory shrinks with S.
	if cell(t, tab.Rows[0], 2) <= cell(t, tab.Rows[3], 2) {
		t.Error("parity pages did not shrink with S")
	}
}

// TestOverflowAblation: tighter budgets mean more GC and fewer pages
// held on the servers.
func TestOverflowAblation(t *testing.T) {
	tab, err := OverflowAblation()
	if err != nil {
		t.Fatal(err)
	}
	var prevGC, prevHeld float64
	for i, r := range tab.Rows {
		gc, held := cell(t, r, 1), cell(t, r, 3)
		if i > 0 {
			if gc > prevGC {
				t.Errorf("row %d: GC passes rose (%v -> %v) with a looser budget", i, prevGC, gc)
			}
			if held < prevHeld {
				t.Errorf("row %d: held pages fell (%v -> %v) with a looser budget", i, prevHeld, held)
			}
		}
		prevGC, prevHeld = gc, held
	}
	// The unlimited budget must never GC.
	if last := tab.Rows[len(tab.Rows)-1]; cell(t, last, 1) != 0 {
		t.Errorf("100%% budget still GC'd: %s passes", last[1])
	}
}

func TestMultiClientDegradesWithClients(t *testing.T) {
	tab := MultiClient()
	var prev float64
	for i, r := range tab.Rows {
		est := cell(t, r, 5)
		if i > 0 && est <= prev {
			t.Fatalf("row %d: FFT estimate %v did not grow with client count", i, est)
		}
		prev = est
	}
	// One client must reproduce the unloaded baseline (paper: 130.76s).
	if first := cell(t, tab.Rows[0], 5); first < 125 || first > 136 {
		t.Fatalf("single-client estimate %v, want ~130.76", first)
	}
}

func TestAvailability(t *testing.T) {
	tab := Availability()
	minJobs := cell(t, tab.Rows[0], 1)
	maxJobs := cell(t, tab.Rows[1], 1)
	if minJobs < 10 {
		t.Errorf("min concurrent jobs %v — cluster idle memory implausibly low", minJobs)
	}
	if maxJobs <= minJobs {
		t.Errorf("no diurnal variation: min %v max %v", minJobs, maxJobs)
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{
		ID:     "X",
		Title:  "t",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "two, with comma"}},
		Notes:  []string{"n"},
	}
	got := tab.CSV()
	want := "a,b\n1,\"two, with comma\"\n# n\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestBar(t *testing.T) {
	if bar(400, 800, 10) != "#####" {
		t.Fatalf("bar(400,800,10) = %q", bar(400, 800, 10))
	}
	if bar(900, 800, 10) != "##########" {
		t.Fatal("bar not clamped")
	}
	if bar(-1, 800, 10) != "" || bar(1, 0, 10) != "" {
		t.Fatal("bar degenerate cases")
	}
}

// TestUserTimeCalibrationSane: calibrated compute times are positive
// and FFT's scales superlinearly with size.
func TestUserTimeCalibrationSane(t *testing.T) {
	for _, app := range []string{"GAUSS", "QSORT", "FFT", "MVEC", "FILTER", "CC"} {
		if UserTime(app) <= 0 {
			t.Errorf("%s: non-positive utime", app)
		}
	}
	small := FFTUserTime(1 << 18)
	big := FFTUserTime(1 << 20)
	if big <= small {
		t.Fatal("FFT utime does not grow with size")
	}
	anchor := FFTUserTime(786432)
	if d := anchor - 66138*time.Millisecond; d < -time.Second || d > time.Second {
		t.Fatalf("FFT utime anchor = %v, want ~66.138s", anchor)
	}
}

// TestFig2FaultCountsPlausible: paging volumes must be in the
// thousands (the paper's regime), not the hundreds of thousands that
// naive trace organizations produce under LRU.
func TestFig2FaultCountsPlausible(t *testing.T) {
	for _, w := range apps.All(1.0) {
		ins, outs := sim.CountFaults(w, ResidentBytes)
		total := ins + outs
		if total == 0 {
			t.Errorf("%s: no paging at paper scale", w.Name())
		}
		if total > 60_000 {
			t.Errorf("%s: %d faults — pathological for the 1996 regime", w.Name(), total)
		}
	}
}

// TestPipelineLiveSpeedup: the acceptance bar for the multiplexed
// protocol — pipelined v2 pageouts must beat the serial v1 path by at
// least 2x when per-request service time dominates, and the JSON
// artifact must round-trip.
func TestPipelineLiveSpeedup(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_pipeline.json")
	tab, stats, err := pipelineTo(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("pipeline table has %d rows, want 3", len(tab.Rows))
	}
	if stats.Speedup < 2 {
		t.Fatalf("pipelined/serial speedup = %.2fx, want >= 2x\n%s", stats.Speedup, tab)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back PipelineStats
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("BENCH_pipeline.json: %v", err)
	}
	if back.Speedup != stats.Speedup || back.Pages != stats.Pages {
		t.Fatal("JSON artifact does not match the in-memory stats")
	}
}

// TestRSBenchOverhead: the acceptance bar for erasure coding —
// RS(4,2) must store at most 0.6x of what mirroring costs at the same
// 2-crash tolerance, every policy row must be present with sane
// amplification, and the JSON artifact must round-trip.
func TestRSBenchOverhead(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_rs.json")
	tab, stats, err := rsBenchTo(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rs table has %d rows, want 6", len(tab.Rows))
	}
	if stats.RS42OverMirrorTol2 > 0.6 {
		t.Fatalf("RS(4,2) storage = %.2fx of equal-tolerance mirroring, want <= 0.6\n%s",
			stats.RS42OverMirrorTol2, tab)
	}
	byPolicy := map[string]RSPolicyBench{}
	for _, r := range stats.Policies {
		byPolicy[r.Policy] = r
	}
	// Steady-state amplification of each policy, with slack for the
	// open-group tail and re-dials.
	wantAmp := map[string]struct{ lo, hi float64 }{
		"NO_RELIABILITY": {0.99, 1.05},
		"MIRRORING":      {1.99, 2.10},
		"PARITY":         {1.99, 2.20}, // stored/page is lower; transfers are 2
		"RS":             {1.45, 1.60},
	}
	for pol, want := range wantAmp {
		r, ok := byPolicy[pol]
		if !ok {
			t.Fatalf("policy %s missing from the benchmark", pol)
		}
		if r.NetTransfersPerPage < want.lo || r.NetTransfersPerPage > want.hi {
			t.Errorf("%s: %.2f net transfers/page, want %.2f..%.2f",
				pol, r.NetTransfersPerPage, want.lo, want.hi)
		}
	}
	if rs := byPolicy["RS"]; rs.StoredPagesPerPage < 1.45 || rs.StoredPagesPerPage > 1.60 {
		t.Errorf("RS stored/page = %.2f, want ~1.5", rs.StoredPagesPerPage)
	}
	if mir := byPolicy["MIRRORING"]; mir.StoredPagesPerPage < 1.99 || mir.StoredPagesPerPage > 2.10 {
		t.Errorf("MIRROR stored/page = %.2f, want ~2.0", mir.StoredPagesPerPage)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back RSBenchStats
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("BENCH_rs.json: %v", err)
	}
	if back.RS42OverMirrorTol2 != stats.RS42OverMirrorTol2 || back.Pages != stats.Pages {
		t.Fatal("JSON artifact does not match the in-memory stats")
	}
}
