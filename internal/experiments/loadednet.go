package experiments

import (
	"fmt"
	"time"

	"rmp/internal/model"
	"rmp/internal/sim"
	"rmp/internal/simnet"
)

// LoadedNet reproduces §4.6: remote memory paging over a loaded
// Ethernet. The CSMA/CD simulator measures the effective per-page
// wire time under increasing background load; the FFT column applies
// the degraded wire time to the 24 MB parity-logging run via the
// §4.3 model.
func LoadedNet() *Table {
	t := &Table{
		ID:    "LOADEDNET",
		Title: "Remote memory paging over a loaded Ethernet (§4.6, CSMA/CD simulation)",
		Header: []string{"bg stations", "offered load", "page wire time", "collisions",
			"bg delivery", "FFT 24MB est (s)", "token ring page", "ring delivery"},
	}
	base := simnet.UnloadedPageTime()
	d := model.PaperFFT24MB
	rows := []struct {
		stations int
		load     float64
	}{
		{0, 0}, {2, 0.1}, {4, 0.3}, {6, 0.5}, {8, 0.8}, {12, 1.2},
	}
	for _, r := range rows {
		cfg := simnet.Config{
			BackgroundStations: r.stations,
			BackgroundLoad:     r.load,
			Pages:              400,
			Seed:               1996,
		}
		res := simnet.RunLoad(cfg)
		ring := simnet.RunTokenRing(cfg)
		// Effective bandwidth factor < 1 inflates btime.
		factor := float64(base) / float64(res.PageTime)
		est := d.Predict(factor)
		ringDelivery := "-"
		if r.stations > 0 {
			ringDelivery = fmt.Sprintf("%.0f%%", ring.BackgroundThroughput*100)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.stations),
			fmt.Sprintf("%.0f%%", r.load*100),
			res.PageTime.Round(10 * time.Microsecond).String(),
			fmt.Sprintf("%d", res.Collisions),
			fmt.Sprintf("%.0f%%", res.BackgroundThroughput*100),
			secs(est.Seconds()),
			ring.PageTime.Round(10 * time.Microsecond).String(),
			ringDelivery,
		})
	}
	t.Notes = append(t.Notes,
		"paper: degradation appears even under light load; heavy competing traffic causes repeated collisions and throughput collapse",
		"the inefficiency is CSMA/CD's, not remote paging's — the token-ring columns show the same loads carried without collapse (§4.6)",
	)
	return t
}

// MultiClient extends §4.6: several workstations paging to remote
// memory over one shared Ethernet at once. Per-client paging slows
// with the client count — the cluster-deployment argument for
// switched or token fabrics the paper's conclusions gesture at.
func MultiClient() *Table {
	t := &Table{
		ID:    "MULTICLIENT",
		Title: "Several paging clients sharing one Ethernet (CSMA/CD simulation)",
		Header: []string{"clients", "mean page time", "worst client", "collisions",
			"utilization", "FFT 24MB est (s)"},
	}
	base := simnet.UnloadedPageTime()
	d := model.PaperFFT24MB
	for _, n := range []int{1, 2, 4, 8} {
		r := simnet.RunMultiClient(n, 300, 1996)
		var sum, worst time.Duration
		for _, pt := range r.PageTimes {
			sum += pt
			if pt > worst {
				worst = pt
			}
		}
		mean := sum / time.Duration(n)
		factor := float64(base) / float64(mean)
		est := d.Predict(factor)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			mean.Round(10 * time.Microsecond).String(),
			worst.Round(10 * time.Microsecond).String(),
			fmt.Sprintf("%d", r.Collisions),
			fmt.Sprintf("%.0f%%", r.Utilization*100),
			secs(est.Seconds()),
		})
	}
	t.Notes = append(t.Notes,
		"each client is a closed-loop pager moving 300 pages; the FFT column scales the paper's 24 MB run by the degraded per-page wire time",
	)
	return t
}

// Decomp reproduces §4.3's worked example: the FFT 24 MB parity-
// logging decomposition and the ETHERNET*10 prediction — the paper's
// measured numbers, the analytic model's recomputation of every
// derived quantity, and our own simulated run's decomposition side
// by side.
func Decomp() *Table {
	d := model.PaperFFT24MB
	t := &Table{
		ID:     "DECOMP",
		Title:  "FFT 24 MB under parity logging: completion-time decomposition (§4.3)",
		Header: []string{"quantity", "paper", "model check", "our sim"},
	}

	// Our simulated FFT at the 24 MB input.
	w := fftAt(24)
	stream := sim.FaultStream(w, ResidentBytes)
	cfg := baseConfig(sim.ParityLogging, 4, FFTUserTime(w.Points()))
	cfg.Sys = FFTSysTime(w.Points())
	r := sim.ChargeFaults(w.Name(), stream, cfg)
	ourD := model.Decomposition{
		UTime:     r.Times.User,
		SysTime:   r.Times.Sys,
		InitTime:  r.Times.Init,
		Transfers: r.Transfers,
		BTime:     r.Times.Blocking,
	}

	rd := func(v time.Duration) string { return v.Round(time.Millisecond).String() }
	t.Rows = [][]string{
		{"utime", "66.138 s", d.UTime.String(), rd(ourD.UTime)},
		{"systime", "3.133 s", d.SysTime.String(), rd(ourD.SysTime)},
		{"inittime", "0.21 s", d.InitTime.String(), rd(ourD.InitTime)},
		{"pageouts / pageins", "2718 / 2055",
			"-", fmt.Sprintf("%d / %d", r.PageOuts, r.PageIns)},
		{"page transfers", "5452 (2718 outs * 1.25 + 2055 ins)",
			fmt.Sprintf("%d", d.Transfers), fmt.Sprintf("%d", ourD.Transfers)},
		{"protocol time (1.6 ms each)", "8.723 s",
			rd(d.ProtocolTime()), rd(ourD.ProtocolTime())},
		{"btime", "52.556 s", d.BTime.String(), rd(ourD.BTime)},
		{"measured elapsed", "130.76 s",
			d.Elapsed().Round(10 * time.Millisecond).String(), rd(ourD.Elapsed())},
		{"predicted at ETHERNET*10", "83.459 s",
			rd(d.Predict(10)), rd(ourD.Predict(10))},
		{"paging fraction at ETHERNET*10", "< 17%",
			fmt.Sprintf("%.2f%%", d.PagingFraction(10)*100),
			fmt.Sprintf("%.2f%%", ourD.PagingFraction(10)*100)},
		{"predicted ALL MEMORY", "69.481 s", rd(d.AllMemory()), rd(ourD.AllMemory())},
	}
	t.Notes = append(t.Notes,
		"the model column recomputes every derived quantity from the paper's primitives via internal/model",
		"our sim's fault counts run ~2.3x the paper's (strict LRU vs OSF/1's global clock); its decomposition is otherwise the same machinery",
	)
	return t
}
