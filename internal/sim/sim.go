// Package sim implements the calibrated performance model of the
// paper's testbed, used to regenerate its figures.
//
// The paper decomposes application completion time (§4.3) as
//
//	etime = utime + systime + inittime + ptime
//	ptime = transfers*pptime + btime
//
// where pptime is per-page protocol processing (measured 1.6 ms for
// TCP/IP on the DEC Alpha 3000/300) and btime is bandwidth-dependent
// blocking (9.64 ms per 8 KB page on the 10 Mbps Ethernet, §4.4).
// Paging is synchronous — each fault blocks the application — so
// ptime is the sum of per-transfer costs along the fault stream.
//
// Simulate replays an application's page-reference trace through an
// LRU of the testbed's resident-set size, expands the resulting fault
// stream into device transfers under a reliability policy, and sums
// their costs. Device behaviour that the paper's results hinge on is
// modelled structurally:
//
//   - the network charges a flat per-page cost (no seeks — the
//     paper's core observation), scalable by a bandwidth factor for
//     the ETHERNET*10 extrapolation;
//   - the disk charges seek + rotation only when the swap-slot
//     stream breaks sequentiality, so streaming writers (MVEC) get
//     cheap clustered writes while scattered faulters (GAUSS) pay
//     full seeks — which is exactly what makes MIRRORING lose to
//     DISK on MVEC but win everywhere else (Fig 2), and WRITE
//     THROUGH viable at 10 Mbps (Fig 5).
package sim

import (
	"fmt"
	"time"

	"rmp/internal/apps"
	"rmp/internal/vm"
)

// Times is the paper's completion-time decomposition.
type Times struct {
	User     time.Duration // utime: useful computation
	Sys      time.Duration // systime
	Init     time.Duration // inittime: load + start
	Protocol time.Duration // transfers * pptime
	Blocking time.Duration // btime: bandwidth-dependent waiting
}

// PTime is the total paging overhead.
func (t Times) PTime() time.Duration { return t.Protocol + t.Blocking }

// Elapsed is the completion time.
func (t Times) Elapsed() time.Duration { return t.User + t.Sys + t.Init + t.PTime() }

// NetParams models the interconnect.
type NetParams struct {
	// Protocol is pptime per page transfer.
	Protocol time.Duration
	// Wire is the bandwidth-dependent time per 8 KB page at factor 1.
	Wire time.Duration
	// Factor divides Wire: 10 models the paper's ETHERNET*10.
	Factor float64
}

// Ethernet is the paper's measured 10 Mbps Ethernet: 1.6 ms protocol
// + 9.64 ms wire per 8 KB page (11.24 ms total, §4.4).
var Ethernet = NetParams{Protocol: 1600 * time.Microsecond, Wire: 9640 * time.Microsecond, Factor: 1}

// Scaled returns the same network with X times the bandwidth.
func (n NetParams) Scaled(x float64) NetParams {
	n.Factor = x
	return n
}

// wireTime is the blocking time of one transfer.
func (n NetParams) wireTime() time.Duration {
	f := n.Factor
	if f <= 0 {
		f = 1
	}
	return time.Duration(float64(n.Wire) / f)
}

// DiskParams models the paging disk.
type DiskParams struct {
	AvgSeek      time.Duration // average head seek
	HalfRotation time.Duration // average rotational delay
	Transfer     time.Duration // media transfer time per 8 KB page
}

// RZ55 is the paper's DEC RZ55: 16 ms average seek, 3600 RPM
// (8.3 ms average rotational delay), 10 Mbit/s media rate (6.55 ms
// per 8 KB page).
var RZ55 = DiskParams{
	AvgSeek:      16 * time.Millisecond,
	HalfRotation: 8300 * time.Microsecond,
	Transfer:     6554 * time.Microsecond,
}

// diskSim charges per-access costs over a swap-slot layout: slots are
// allocated sequentially on first write (OSF/1 swap clustering), and
// an access adjacent to the previous one skips the seek. Every
// request still pays the average rotational delay — the paging
// request stream is synchronous, so even sequential requests miss
// their rotational window. The paper's ~15-17 ms effective per-page
// disk cost for streaming writers and ~25-30 ms for scattered
// faulters both emerge from this.
type diskSim struct {
	p        DiskParams
	slots    map[int64]int64
	next     int64
	lastSlot int64
	inited   bool
}

func newDiskSim(p DiskParams) *diskSim {
	return &diskSim{p: p, slots: make(map[int64]int64)}
}

// access returns the cost of paging page pg (allocating a swap slot
// on first write).
func (d *diskSim) access(pg int64) time.Duration {
	slot, ok := d.slots[pg]
	if !ok {
		slot = d.next
		d.next++
		d.slots[pg] = slot
	}
	cost := d.p.Transfer + d.p.HalfRotation
	if d.inited && slot != d.lastSlot+1 {
		cost += d.p.AvgSeek
	}
	d.lastSlot = slot
	d.inited = true
	return cost
}

// PolicyKind selects what Figure 2's bars compare.
type PolicyKind int

const (
	// Disk pages to the local disk (the baseline).
	Disk PolicyKind = iota
	// None pages to remote memory without redundancy.
	None
	// Mirroring sends each pageout to two servers.
	Mirroring
	// Parity is the basic parity scheme: two transfers per pageout.
	Parity
	// ParityLogging sends 1 + 1/Servers transfers per pageout.
	ParityLogging
	// WriteThrough sends each pageout to a server and the local disk
	// in parallel (cost = max of the two); pageins come from memory.
	WriteThrough
	// AllMemory models a machine with enough RAM for the whole
	// working set: no paging at all.
	AllMemory
)

func (k PolicyKind) String() string {
	switch k {
	case Disk:
		return "DISK"
	case None:
		return "NO_RELIABILITY"
	case Mirroring:
		return "MIRRORING"
	case Parity:
		return "PARITY"
	case ParityLogging:
		return "PARITY_LOGGING"
	case WriteThrough:
		return "WRITE_THROUGH"
	case AllMemory:
		return "ALL_MEMORY"
	}
	return fmt.Sprintf("PolicyKind(%d)", int(k))
}

// Config parametrizes one simulated run.
type Config struct {
	Policy PolicyKind
	// Servers is the number of data servers (parity logging's S; the
	// paper uses 2 for NO RELIABILITY and MIRRORING, 4+parity for
	// PARITY LOGGING).
	Servers int
	// ResidentBytes is the memory available to the application (the
	// paper's testbed behaves like 18 MB, Fig 3).
	Net  NetParams
	Disk DiskParams

	ResidentBytes int64

	// Base times; User/Sys are per-application calibrated constants,
	// Init defaults to the paper's 0.21 s.
	User, Sys, Init time.Duration
}

// Result is one simulated execution.
type Result struct {
	App       string
	Policy    PolicyKind
	PageIns   uint64
	PageOuts  uint64
	Transfers uint64 // network page transfers (including parity)
	Times     Times
}

// Elapsed is shorthand for Times.Elapsed.
func (r Result) Elapsed() time.Duration { return r.Times.Elapsed() }

// FaultStream replays w's page trace through an LRU with the given
// resident-set size and returns the resulting fault stream. Paper-
// scale traces have millions of references, so harnesses compute the
// stream once and charge it under several policies.
func FaultStream(w apps.Workload, residentBytes int64) []vm.Fault {
	var faults []vm.Fault
	rp := vm.NewReplayer(int(residentBytes/8192), func(f vm.Fault) {
		faults = append(faults, f)
	})
	w.Trace(func(pg int64, write bool) { rp.Ref(pg, write) })
	return faults
}

// Simulate runs w's page trace through the testbed model.
func Simulate(w apps.Workload, cfg Config) Result {
	if cfg.Policy == AllMemory {
		return ChargeFaults(w.Name(), nil, cfg)
	}
	return ChargeFaults(w.Name(), FaultStream(w, cfg.ResidentBytes), cfg)
}

// ChargeFaults prices a precomputed fault stream under cfg.
func ChargeFaults(app string, faults []vm.Fault, cfg Config) Result {
	if cfg.Servers <= 0 {
		cfg.Servers = 4
	}
	res := Result{App: app, Policy: cfg.Policy}
	t := Times{User: cfg.User, Sys: cfg.Sys, Init: cfg.Init}

	if cfg.Policy == AllMemory {
		res.Times = t
		return res
	}

	dsim := newDiskSim(cfg.Disk)
	pendingOuts := 0 // parity logging: outs since last parity transfer

	// Virtual clock, needed by WRITE_THROUGH's asynchronous disk
	// queue: the application's compute time is spread evenly between
	// faults, and the disk drains its write backlog during pageins
	// and compute gaps. wtQueueDepth bounds outstanding writes, as a
	// real driver would; when the queue is full the pageout blocks
	// until the oldest write retires. This is the mechanism behind
	// Figure 5: read-write workloads (GAUSS, QSORT, FFT) give the
	// disk time to catch up, so WRITE_THROUGH runs at network speed,
	// while the pageout-only MVEC saturates the disk and becomes
	// disk-bound.
	const wtQueueDepth = 8
	var now time.Duration
	var gap time.Duration
	if len(faults) > 0 {
		gap = cfg.User / time.Duration(len(faults))
	}
	var wtQueue []time.Duration // completion times of in-flight writes
	var diskFreeAt time.Duration

	netCharge := func(n int) {
		res.Transfers += uint64(n)
		t.Protocol += time.Duration(n) * cfg.Net.Protocol
		t.Blocking += time.Duration(n) * cfg.Net.wireTime()
		now += time.Duration(n) * (cfg.Net.Protocol + cfg.Net.wireTime())
	}

	charge := func(f vm.Fault) {
		now += gap
		switch cfg.Policy {
		case Disk:
			d := dsim.access(f.Page)
			t.Blocking += d
			now += d

		case None:
			netCharge(1)

		case Mirroring, Parity:
			// Mirroring: two copies. Basic parity: client->server plus
			// server->parity delta; the client waits for the ack that
			// confirms the parity update (§2.2).
			if f.Kind == vm.FaultOut {
				netCharge(2)
			} else {
				netCharge(1)
			}

		case ParityLogging:
			netCharge(1)
			if f.Kind == vm.FaultOut {
				pendingOuts++
				if pendingOuts == cfg.Servers {
					netCharge(1) // ship the parity buffer
					pendingOuts = 0
				}
			}

		case WriteThrough:
			netCharge(1)
			if f.Kind == vm.FaultOut {
				// Queue the asynchronous disk write.
				start := diskFreeAt
				if start < now {
					start = now
				}
				done := start + dsim.access(f.Page)
				diskFreeAt = done
				wtQueue = append(wtQueue, done)
				// Retire completed writes.
				for len(wtQueue) > 0 && wtQueue[0] <= now {
					wtQueue = wtQueue[1:]
				}
				if len(wtQueue) > wtQueueDepth {
					stall := wtQueue[0] - now
					t.Blocking += stall
					now += stall
					wtQueue = wtQueue[1:]
				}
			}
		}
		if f.Kind == vm.FaultIn {
			res.PageIns++
		} else {
			res.PageOuts++
		}
	}

	for _, f := range faults {
		charge(f)
	}
	if cfg.Policy == WriteThrough && diskFreeAt > now {
		// The process cannot exit until its write-through backlog is
		// on disk.
		t.Blocking += diskFreeAt - now
	}

	res.Times = t
	return res
}

// CountFaults replays w's trace and returns only the fault counts —
// used for calibration without charging any costs.
func CountFaults(w apps.Workload, residentBytes int64) (ins, outs uint64) {
	rp := vm.NewReplayer(int(residentBytes/8192), nil)
	w.Trace(func(pg int64, write bool) { rp.Ref(pg, write) })
	return rp.Counts()
}
