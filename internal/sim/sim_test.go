package sim

import (
	"testing"
	"time"

	"rmp/internal/apps"
	"rmp/internal/vm"
)

// The paper's testbed: a 32 MB DEC Alpha that behaves like an 18 MB
// resident limit (Figure 3: "as soon as the working set size exceeds
// 18 MBytes, the paging starts").
const testbedResident = 18 << 20

func cfgFor(pol PolicyKind, servers int) Config {
	return Config{
		Policy:        pol,
		Servers:       servers,
		Net:           Ethernet,
		Disk:          RZ55,
		ResidentBytes: testbedResident,
		User:          10 * time.Second,
		Init:          210 * time.Millisecond,
	}
}

func TestNetPerTransferMatchesPaper(t *testing.T) {
	// §4.4: 11.24 ms per page transfer = 1.6 protocol + 9.64 wire.
	total := Ethernet.Protocol + Ethernet.wireTime()
	if total != 11240*time.Microsecond {
		t.Fatalf("per-transfer cost %v, want 11.24ms", total)
	}
	// ETHERNET*10 shrinks only the wire component.
	fast := Ethernet.Scaled(10)
	if fast.Protocol != Ethernet.Protocol {
		t.Fatal("scaling changed protocol time")
	}
	if fast.wireTime() != Ethernet.wireTime()/10 {
		t.Fatalf("scaled wire time %v, want %v", fast.wireTime(), Ethernet.wireTime()/10)
	}
}

func TestDiskSimClustering(t *testing.T) {
	d := newDiskSim(RZ55)
	first := d.access(0)
	seq := d.access(1) // adjacent slot: rotation + transfer, no seek
	if first > seq {
		t.Fatalf("very first access %v dearer than sequential %v", first, seq)
	}
	if seq != RZ55.Transfer+RZ55.HalfRotation {
		t.Fatalf("sequential access %v, want rotation+transfer %v", seq, RZ55.Transfer+RZ55.HalfRotation)
	}
	// Re-access page 0 (slot 0) after the head moved: full seek.
	back := d.access(0)
	if back != RZ55.AvgSeek+RZ55.HalfRotation+RZ55.Transfer {
		t.Fatalf("random re-access %v, want full seek cost", back)
	}
}

func TestDiskStreamingNearPaperRate(t *testing.T) {
	// First-touch writes allocate slots in order; the synchronous
	// request stream still pays rotation, so streaming lands near the
	// paper's ~15-17 ms effective per-page disk cost.
	d := newDiskSim(RZ55)
	var total time.Duration
	const n = 100
	for pg := int64(0); pg < n; pg++ {
		total += d.access(pg)
	}
	perPage := total / n
	if perPage < 13*time.Millisecond || perPage > 18*time.Millisecond {
		t.Fatalf("streaming writes cost %v/page, want ~15ms (paper §3.1: ~17ms)", perPage)
	}
}

func TestAllMemoryHasNoPaging(t *testing.T) {
	w := apps.NewFFT(1 << 12)
	r := Simulate(w, cfgFor(AllMemory, 2))
	if r.Transfers != 0 || r.Times.PTime() != 0 {
		t.Fatalf("ALL_MEMORY paid paging costs: %+v", r)
	}
	if r.Elapsed() != 10*time.Second+210*time.Millisecond {
		t.Fatalf("ALL_MEMORY elapsed %v", r.Elapsed())
	}
}

// smallFaults builds a synthetic fault stream for policy arithmetic
// tests: o pageouts then i pageins, sequential page order.
func smallFaults(o, i int) []vm.Fault {
	var fs []vm.Fault
	for k := 0; k < o; k++ {
		fs = append(fs, vm.Fault{Kind: vm.FaultOut, Page: int64(k)})
	}
	for k := 0; k < i; k++ {
		fs = append(fs, vm.Fault{Kind: vm.FaultIn, Page: int64(k)})
	}
	return fs
}

// scatteredFaults interleaves pageouts and pageins over a small page
// set in non-sequential order, like a paging-heavy read-write
// application revisiting its working set.
func scatteredFaults(n int) []vm.Fault {
	var fs []vm.Fault
	for k := 0; k < n; k++ {
		pg := int64(k*7919) % 512
		kind := vm.FaultOut
		if k%2 == 1 {
			kind = vm.FaultIn
			pg = int64(k*104729+3) % 512
		}
		fs = append(fs, vm.Fault{Kind: kind, Page: pg})
	}
	return fs
}

func TestPolicyTransferCounts(t *testing.T) {
	const outs, ins = 100, 60
	faults := smallFaults(outs, ins)
	cases := []struct {
		pol     PolicyKind
		servers int
		want    uint64
	}{
		{None, 2, outs + ins},
		{Mirroring, 2, 2*outs + ins},
		{Parity, 4, 2*outs + ins},
		{ParityLogging, 4, outs + outs/4 + ins},
		{WriteThrough, 2, outs + ins},
		{Disk, 0, 0}, // disk I/O is not a network transfer
	}
	for _, c := range cases {
		r := ChargeFaults("X", faults, cfgFor(c.pol, c.servers))
		if r.Transfers != c.want {
			t.Errorf("%v: %d transfers, want %d", c.pol, r.Transfers, c.want)
		}
		if r.PageIns != ins || r.PageOuts != outs {
			t.Errorf("%v: counts %d/%d, want %d/%d", c.pol, r.PageIns, r.PageOuts, ins, outs)
		}
	}
}

func TestPolicyOrderingPagingHeavy(t *testing.T) {
	// For a scattered read-write paging workload the paper's ordering
	// is NONE < PARITY_LOGGING < MIRRORING < DISK (Figure 2: GAUSS,
	// QSORT, FFT, FILTER, CC).
	faults := scatteredFaults(3500)
	elapsed := func(pol PolicyKind, s int) time.Duration {
		return ChargeFaults("X", faults, cfgFor(pol, s)).Elapsed()
	}
	none := elapsed(None, 2)
	pl := elapsed(ParityLogging, 4)
	mir := elapsed(Mirroring, 2)
	dsk := elapsed(Disk, 0)
	if !(none < pl && pl < mir && mir < dsk) {
		t.Fatalf("ordering violated: NONE %v, PL %v, MIRROR %v, DISK %v", none, pl, mir, dsk)
	}
	// Basic parity is as expensive as mirroring in transfers.
	par := elapsed(Parity, 4)
	if par != mir {
		t.Fatalf("basic parity %v != mirroring %v (both 2 transfers/out)", par, mir)
	}
}

func TestMvecShapeMirroringLosesToDisk(t *testing.T) {
	// MVEC: pageout-dominated and sequential. Its disk writes cluster
	// (cheap), so MIRRORING's doubled network writes make it the one
	// policy slower than DISK — the paper's Figure 2 anomaly.
	w := apps.NewMvec(2100)
	stream := FaultStream(w, testbedResident)
	mir := ChargeFaults(w.Name(), stream, cfgFor(Mirroring, 2))
	dsk := ChargeFaults(w.Name(), stream, cfgFor(Disk, 0))
	none := ChargeFaults(w.Name(), stream, cfgFor(None, 2))
	if mir.Elapsed() <= dsk.Elapsed() {
		t.Fatalf("MVEC: mirroring %v should exceed disk %v", mir.Elapsed(), dsk.Elapsed())
	}
	if none.Elapsed() >= dsk.Elapsed() {
		t.Fatalf("MVEC: no-reliability %v should beat disk %v", none.Elapsed(), dsk.Elapsed())
	}
}

func TestWriteThroughBetweenNoneAndParityLoggingAt10Mbps(t *testing.T) {
	// §4.7/Figure 5: with disk and network at the same 10 Mbps,
	// write-through beats parity logging (its disk write overlaps the
	// network write and the sequential swap stream keeps it cheap)
	// and is slightly worse than no-reliability.
	w := apps.NewGauss(1700)
	stream := FaultStream(w, testbedResident)
	none := ChargeFaults(w.Name(), stream, cfgFor(None, 2)).Elapsed()
	wt := ChargeFaults(w.Name(), stream, cfgFor(WriteThrough, 2)).Elapsed()
	pl := ChargeFaults(w.Name(), stream, cfgFor(ParityLogging, 4)).Elapsed()
	if !(none <= wt && wt < pl) {
		t.Fatalf("GAUSS fig5 ordering violated: NONE %v, WT %v, PL %v", none, wt, pl)
	}
}

func TestWriteThroughDiskBoundOnFastNetwork(t *testing.T) {
	// §4.7's conclusion: on a fast network, write-through becomes
	// disk-bound while parity logging scales — parity logging wins.
	w := apps.NewMvec(2100)
	stream := FaultStream(w, testbedResident)
	fast := func(pol PolicyKind, s int) time.Duration {
		c := cfgFor(pol, s)
		c.Net = Ethernet.Scaled(10)
		return ChargeFaults(w.Name(), stream, c).Elapsed()
	}
	if wt, pl := fast(WriteThrough, 2), fast(ParityLogging, 4); pl >= wt {
		t.Fatalf("on 100Mbps, parity logging %v should beat write-through %v", pl, wt)
	}
}

func TestBandwidthScalingShrinksBlockingOnly(t *testing.T) {
	faults := smallFaults(1000, 1000)
	slow := ChargeFaults("X", faults, cfgFor(ParityLogging, 4))
	c := cfgFor(ParityLogging, 4)
	c.Net = Ethernet.Scaled(10)
	fast := ChargeFaults("X", faults, c)
	if fast.Times.Protocol != slow.Times.Protocol {
		t.Fatal("protocol time changed with bandwidth")
	}
	if fast.Times.Blocking*9 > slow.Times.Blocking {
		t.Fatalf("blocking didn't scale: %v -> %v", slow.Times.Blocking, fast.Times.Blocking)
	}
}

func TestFFTInputScalingShape(t *testing.T) {
	// Figure 3's shape: below the resident limit no paging; past it,
	// completion time rises sharply for DISK and less for parity
	// logging.
	small := apps.NewFFT(1 << 18) // 8 MB footprint < 18 MB resident
	if ins, outs := CountFaults(small, testbedResident); ins+outs > 8 {
		t.Fatalf("8 MB FFT pages (%d/%d) despite fitting in memory", ins, outs)
	}
	big := apps.NewFFT(1 << 20) // 32 MB footprint
	stream := FaultStream(big, testbedResident)
	if len(stream) == 0 {
		t.Fatal("32 MB FFT does not page")
	}
	dsk := ChargeFaults("FFT", stream, cfgFor(Disk, 0))
	pl := ChargeFaults("FFT", stream, cfgFor(ParityLogging, 4))
	if dsk.Times.PTime() <= pl.Times.PTime() {
		t.Fatalf("disk ptime %v should exceed parity logging %v", dsk.Times.PTime(), pl.Times.PTime())
	}
}

func TestSimulateEqualsChargedStream(t *testing.T) {
	w := apps.NewGauss(128)
	c := cfgFor(ParityLogging, 4)
	c.ResidentBytes = w.Bytes() / 3
	direct := Simulate(w, c)
	viaStream := ChargeFaults(w.Name(), FaultStream(w, c.ResidentBytes), c)
	if direct.Elapsed() != viaStream.Elapsed() || direct.Transfers != viaStream.Transfers {
		t.Fatalf("Simulate %+v != ChargeFaults %+v", direct, viaStream)
	}
}

func TestPolicyKindString(t *testing.T) {
	for _, k := range []PolicyKind{Disk, None, Mirroring, Parity, ParityLogging, WriteThrough, AllMemory} {
		if k.String() == "" || k.String()[0] == 'P' && k != Parity && k != ParityLogging {
			t.Errorf("bad name for %d: %q", int(k), k.String())
		}
	}
	if PolicyKind(99).String() != "PolicyKind(99)" {
		t.Error("unknown kind string")
	}
}

func BenchmarkFaultStreamGauss(b *testing.B) {
	w := apps.NewGauss(256)
	for i := 0; i < b.N; i++ {
		if len(FaultStream(w, w.Bytes()/3)) == 0 {
			b.Fatal("no faults")
		}
	}
}
