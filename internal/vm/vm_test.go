package vm

import (
	"bytes"
	"testing"
	"testing/quick"

	"rmp/internal/blockdev"
	"rmp/internal/page"
)

func newSpace(t *testing.T, size, resident int64) (*Space, *blockdev.CountingDevice) {
	t.Helper()
	dev := blockdev.NewCountingDevice(blockdev.NewMemDevice())
	s, err := New(size, resident, dev)
	if err != nil {
		t.Fatal(err)
	}
	return s, dev
}

func TestReadWriteRoundTrip(t *testing.T) {
	s, _ := newSpace(t, 1<<20, 1<<20)
	msg := []byte("remote memory pager")
	if err := s.Write(12345, msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if err := s.Read(12345, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q, want %q", got, msg)
	}
}

func TestCrossPageAccess(t *testing.T) {
	s, _ := newSpace(t, 4*page.Size, 2*page.Size)
	data := make([]byte, 3*page.Size)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := s.Write(page.Size/2, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := s.Read(page.Size/2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cross-page data corrupted")
	}
}

func TestZeroFillOnFirstTouch(t *testing.T) {
	s, dev := newSpace(t, 1<<20, 1<<20)
	b := make([]byte, 100)
	b[0] = 0xFF
	if err := s.Read(5000, b); err != nil {
		t.Fatal(err)
	}
	for _, v := range b {
		if v != 0 {
			t.Fatal("first touch not zero-filled")
		}
	}
	if r, w := dev.Counts(); r != 0 || w != 0 {
		t.Fatalf("zero-fill fault hit the device: %d reads %d writes", r, w)
	}
}

func TestEvictionAndPageinUnderPressure(t *testing.T) {
	// 8 pages of data, 2 resident: sweeping twice must page out dirty
	// pages and page them back in.
	s, dev := newSpace(t, 8*page.Size, 2*page.Size)
	for pg := int64(0); pg < 8; pg++ {
		if err := s.Write(pg*page.Size, []byte{byte(pg + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	for pg := int64(0); pg < 8; pg++ {
		b := make([]byte, 1)
		if err := s.Read(pg*page.Size, b); err != nil {
			t.Fatal(err)
		}
		if b[0] != byte(pg+1) {
			t.Fatalf("page %d lost its data: got %d", pg, b[0])
		}
	}
	st := s.Stats()
	if st.PageOuts == 0 || st.PageIns == 0 {
		t.Fatalf("expected paging traffic, got %+v", st)
	}
	r, w := dev.Counts()
	if r != st.PageIns || w != st.PageOuts {
		t.Fatalf("device counts (%d,%d) disagree with stats (%d,%d)", r, w, st.PageIns, st.PageOuts)
	}
}

func TestCleanEvictionsAreFree(t *testing.T) {
	s, dev := newSpace(t, 8*page.Size, 2*page.Size)
	// Write pages 0..7 once (dirty evictions), then sweep read-only
	// twice; the second sweep's evictions are clean.
	for pg := int64(0); pg < 8; pg++ {
		if err := s.Write(pg*page.Size, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	_, wAfterInit := dev.Counts()
	b := make([]byte, 1)
	for round := 0; round < 2; round++ {
		for pg := int64(0); pg < 8; pg++ {
			if err := s.Read(pg*page.Size, b); err != nil {
				t.Fatal(err)
			}
		}
	}
	_, wAfterReads := dev.Counts()
	// Two dirty pages may remain resident from the write pass and get
	// evicted during the first read sweep; nothing after that.
	if wAfterReads > wAfterInit+2 {
		t.Fatalf("clean evictions wrote to device: %d -> %d", wAfterInit, wAfterReads)
	}
}

func TestLRUOrder(t *testing.T) {
	s, _ := newSpace(t, 3*page.Size, 2*page.Size)
	b := make([]byte, 1)
	// Touch 0, 1 (resident: 0,1). Touch 0 again (LRU victim now 1).
	// Touch 2 -> evicts 1, not 0.
	for _, pg := range []int64{0, 1, 0, 2} {
		if err := s.Write(pg*page.Size, []byte{byte(pg + 10)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Read(0, b); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.PageIns != 0 {
		t.Fatal("page 0 was evicted despite being recently used")
	}
}

func TestBoundsChecking(t *testing.T) {
	s, _ := newSpace(t, page.Size, page.Size)
	if err := s.Read(-1, make([]byte, 1)); err == nil {
		t.Fatal("negative offset accepted")
	}
	if err := s.Write(page.Size-1, make([]byte, 2)); err == nil {
		t.Fatal("overflow write accepted")
	}
	if _, err := New(0, 0, blockdev.NewMemDevice()); err == nil {
		t.Fatal("zero-size space accepted")
	}
}

func TestFloat64Accessors(t *testing.T) {
	s, _ := newSpace(t, 1<<16, 1<<12)
	want := []float64{0, 1.5, -2.25, 1e300, -1e-300}
	for i, v := range want {
		if err := s.SetFloat64(int64(i), v); err != nil {
			t.Fatal(err)
		}
	}
	for i, v := range want {
		got, err := s.Float64(int64(i))
		if err != nil || got != v {
			t.Fatalf("Float64(%d) = %v, want %v", i, got, v)
		}
	}
}

func TestUint64Accessors(t *testing.T) {
	s, _ := newSpace(t, 1<<16, 1<<12)
	for i := int64(0); i < 100; i++ {
		if err := s.SetUint64(i, uint64(i*i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 100; i++ {
		got, err := s.Uint64(i)
		if err != nil || got != uint64(i*i) {
			t.Fatalf("Uint64(%d) = %d, want %d", i, got, i*i)
		}
	}
}

func TestFlushWritesDirtyPages(t *testing.T) {
	s, dev := newSpace(t, 4*page.Size, 8*page.Size)
	if err := s.Write(0, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, w := dev.Counts(); w != 0 {
		t.Fatal("write reached device before flush")
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, w := dev.Counts(); w != 1 {
		t.Fatalf("flush wrote %d pages, want 1", w)
	}
	// Double flush: nothing newly dirty.
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, w := dev.Counts(); w != 1 {
		t.Fatal("clean flush wrote pages")
	}
}

func TestCloseDiscardsBacking(t *testing.T) {
	mem := blockdev.NewMemDevice()
	s, err := New(8*page.Size, 2*page.Size, mem)
	if err != nil {
		t.Fatal(err)
	}
	for pg := int64(0); pg < 8; pg++ {
		if err := s.Write(pg*page.Size, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if mem.Len() == 0 {
		t.Fatal("setup: nothing on backing device")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if mem.Len() != 0 {
		t.Fatalf("Close left %d blocks on device", mem.Len())
	}
}

func TestQuickReadBackWhatYouWrote(t *testing.T) {
	s, _ := newSpace(t, 1<<18, 1<<14) // 32 pages, 2 resident... 4 resident
	f := func(off uint32, val byte, n uint8) bool {
		o := int64(off) % (1<<18 - 256)
		ln := int(n)%64 + 1
		data := bytes.Repeat([]byte{val}, ln)
		if err := s.Write(o, data); err != nil {
			return false
		}
		got := make([]byte, ln)
		if err := s.Read(o, got); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestReplayerMatchesSpace: the data-free Replayer must produce the
// same fault counts as a real Space fed the identical reference
// stream.
func TestReplayerMatchesSpace(t *testing.T) {
	const pages = 64
	const resident = 8
	refs := make([]Ref, 0, 4096)
	// A mix of sweeps and strided accesses with writes.
	for i := int64(0); i < pages; i++ {
		refs = append(refs, Ref{Page: i, Write: true})
	}
	for i := int64(0); i < pages; i += 3 {
		refs = append(refs, Ref{Page: i, Write: false})
	}
	for i := int64(pages - 1); i >= 0; i -= 2 {
		refs = append(refs, Ref{Page: i, Write: i%4 == 0})
	}

	s, _ := newSpace(t, pages*page.Size, resident*page.Size)
	b := make([]byte, 1)
	for _, r := range refs {
		var err error
		if r.Write {
			err = s.Write(r.Page*page.Size, []byte{1})
		} else {
			err = s.Read(r.Page*page.Size, b)
		}
		if err != nil {
			t.Fatal(err)
		}
	}

	rp := NewReplayer(resident, nil)
	rp.Refs(refs)
	ins, outs := rp.Counts()
	st := s.Stats()
	if ins != st.PageIns || outs != st.PageOuts {
		t.Fatalf("replayer (%d in, %d out) != space (%d in, %d out)",
			ins, outs, st.PageIns, st.PageOuts)
	}
}

func TestReplayerFaultCallback(t *testing.T) {
	var events []Fault
	rp := NewReplayer(2, func(f Fault) { events = append(events, f) })
	// Fill 0,1; write 2 evicts 0 (dirty) -> FaultOut{0}; ref 0 again
	// evicts 1 -> FaultOut{1}, and pages 0 back in -> FaultIn{0}.
	rp.Ref(0, true)
	rp.Ref(1, true)
	rp.Ref(2, true)
	rp.Ref(0, false)
	want := []Fault{{FaultOut, 0}, {FaultOut, 1}, {FaultIn, 0}}
	if len(events) != len(want) {
		t.Fatalf("events = %+v, want %+v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, events[i], want[i])
		}
	}
}

func TestReplayerCleanEvictionSilent(t *testing.T) {
	var outs int
	rp := NewReplayer(2, func(f Fault) {
		if f.Kind == FaultOut {
			outs++
		}
	})
	rp.Ref(0, false)
	rp.Ref(1, false)
	rp.Ref(2, false) // evicts clean 0
	if outs != 0 {
		t.Fatal("clean eviction produced a pageout")
	}
}

func BenchmarkSpaceSequentialWrite(b *testing.B) {
	dev := blockdev.NewMemDevice()
	s, err := New(1<<24, 1<<22, dev)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64(i*4096) % (1<<24 - 4096)
		if err := s.Write(off, buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReplayer(b *testing.B) {
	rp := NewReplayer(1024, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rp.Ref(int64(i%4096), i%2 == 0)
	}
}
