// Package vm implements a user-space demand-paged address space.
//
// It stands in for the DEC OSF/1 virtual memory system of the paper:
// applications address a flat byte range, a bounded set of page
// frames is kept resident under LRU replacement, and evictions /
// faults issue page-sized block I/O to a blockdev.Device — which in
// the paper's configuration is the remote memory pager.
//
// Semantics follow a real pager: pages are demand-zero on first
// touch (no backing read), clean evictions are free (the backing copy
// is still valid), and only dirty evictions page out.
package vm

import (
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"rmp/internal/blockdev"
	"rmp/internal/page"
)

// Stats counts paging activity of a Space.
type Stats struct {
	Faults    uint64 // frames materialized (zero-fill + pageins)
	PageIns   uint64 // faults served by reading the backing device
	PageOuts  uint64 // dirty evictions written to the backing device
	Evictions uint64 // total evictions (clean + dirty)
	Accesses  uint64 // byte-range accesses (not individual bytes)
	Prefetch  uint64 // pages read ahead speculatively
	PrefHits  uint64 // demand faults absorbed by an earlier prefetch
}

// Options tunes a Space beyond size and residency.
type Options struct {
	// Readahead is how many sequentially-next backed pages to
	// prefetch after a demand pagein that continues a sequential run.
	// 0 disables readahead. Real pagers (including OSF/1's) cluster
	// pageins this way; the benchmark harness quantifies its effect
	// in the READAHEAD ablation.
	Readahead int
}

// frame is a resident page.
type frame struct {
	bn    int64
	data  page.Buf
	dirty bool
	elem  *list.Element // position in the LRU list
}

// Space is a demand-paged address space. Not safe for concurrent use:
// it models a single faulting process, like the paper's applications.
type Space struct {
	size     int64 // bytes
	resident map[int64]*frame
	maxRes   int
	lru      *list.List // front = most recent; back = victim
	backing  blockdev.Device
	// written tracks blocks that exist on the backing device, so
	// faults on never-written pages zero-fill instead of reading.
	written map[int64]bool

	opts Options
	// lastIn is the block of the previous demand pagein, for
	// sequential-run detection; prefetched tracks frames brought in
	// speculatively whose first demand hit should count as a prefetch
	// hit.
	lastIn     int64
	prefetched map[int64]bool

	stats Stats
}

// New creates a space of size bytes backed by dev, keeping at most
// residentBytes resident (rounded down to whole pages, minimum two
// pages so cross-page accesses can always complete).
func New(size, residentBytes int64, dev blockdev.Device) (*Space, error) {
	return NewOpts(size, residentBytes, dev, Options{})
}

// NewOpts is New with tuning options.
func NewOpts(size, residentBytes int64, dev blockdev.Device, opts Options) (*Space, error) {
	if size <= 0 {
		return nil, errors.New("vm: size must be positive")
	}
	maxRes := int(residentBytes / page.Size)
	if maxRes < 2 {
		maxRes = 2
	}
	if opts.Readahead < 0 {
		opts.Readahead = 0
	}
	return &Space{
		size:       size,
		resident:   make(map[int64]*frame),
		maxRes:     maxRes,
		lru:        list.New(),
		backing:    dev,
		written:    make(map[int64]bool),
		opts:       opts,
		lastIn:     -2,
		prefetched: make(map[int64]bool),
	}, nil
}

// Size returns the space's size in bytes.
func (s *Space) Size() int64 { return s.size }

// Stats returns a snapshot of the paging counters.
func (s *Space) Stats() Stats { return s.stats }

// ResidentPages returns the current number of resident frames.
func (s *Space) ResidentPages() int { return len(s.resident) }

// fault makes block bn resident and returns its frame.
func (s *Space) fault(bn int64) (*frame, error) {
	if f, ok := s.resident[bn]; ok {
		s.lru.MoveToFront(f.elem)
		if s.prefetched[bn] {
			delete(s.prefetched, bn)
			s.stats.PrefHits++
		}
		return f, nil
	}
	f, err := s.materialize(bn)
	if err != nil {
		return nil, err
	}
	// Sequential readahead: a demand pagein that continues a run
	// speculatively pulls in the next backed blocks. The prefetch
	// count is capped below the resident size and the demand frame is
	// re-promoted after every prefetch, so the frame being returned
	// can never be the eviction victim of its own readahead.
	if s.opts.Readahead > 0 && s.written[bn] {
		sequential := bn == s.lastIn+1
		s.lastIn = bn
		limit := s.opts.Readahead
		if limit > s.maxRes-2 {
			limit = s.maxRes - 2
		}
		if sequential {
			for next := bn + 1; next <= bn+int64(limit); next++ {
				if next*page.Size >= s.size || !s.written[next] {
					break
				}
				if _, resident := s.resident[next]; resident {
					continue
				}
				if _, err := s.materialize(next); err != nil {
					return nil, err
				}
				s.prefetched[next] = true
				s.stats.Prefetch++
				s.lru.MoveToFront(f.elem)
			}
		}
	}
	return f, nil
}

// materialize brings block bn into a fresh frame (evicting if full).
func (s *Space) materialize(bn int64) (*frame, error) {
	if len(s.resident) >= s.maxRes {
		if err := s.evictVictim(); err != nil {
			return nil, err
		}
	}
	f := &frame{bn: bn, data: page.NewBuf()}
	s.stats.Faults++
	if s.written[bn] {
		if err := s.backing.ReadBlock(bn, f.data); err != nil {
			return nil, fmt.Errorf("vm: pagein block %d: %w", bn, err)
		}
		s.stats.PageIns++
	}
	f.elem = s.lru.PushFront(f)
	s.resident[bn] = f
	return f, nil
}

// evictVictim pushes the least recently used frame out.
func (s *Space) evictVictim() error {
	back := s.lru.Back()
	if back == nil {
		return errors.New("vm: nothing to evict")
	}
	f := back.Value.(*frame)
	if f.dirty {
		if err := s.backing.WriteBlock(f.bn, f.data); err != nil {
			return fmt.Errorf("vm: pageout block %d: %w", f.bn, err)
		}
		s.written[f.bn] = true
		s.stats.PageOuts++
	}
	s.lru.Remove(back)
	delete(s.resident, f.bn)
	delete(s.prefetched, f.bn)
	s.stats.Evictions++
	return nil
}

// Flush writes every dirty resident page to the backing device (like
// a process exit syncing its swap), in ascending block order so a
// disk-backed device sees a sequential stream.
func (s *Space) Flush() error {
	dirty := make([]*frame, 0, len(s.resident))
	for _, f := range s.resident {
		if f.dirty {
			dirty = append(dirty, f)
		}
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i].bn < dirty[j].bn })
	for _, f := range dirty {
		if err := s.backing.WriteBlock(f.bn, f.data); err != nil {
			return err
		}
		s.written[f.bn] = true
		s.stats.PageOuts++
		f.dirty = false
	}
	return nil
}

// Close discards backing storage for the whole space.
func (s *Space) Close() error {
	bns := make([]int64, 0, len(s.written))
	for bn := range s.written {
		bns = append(bns, bn)
	}
	return s.backing.Discard(bns...)
}

// checkRange validates [off, off+n).
func (s *Space) checkRange(off int64, n int) error {
	if off < 0 || n < 0 || off+int64(n) > s.size {
		return fmt.Errorf("vm: access [%d,%d) outside space of %d bytes", off, off+int64(n), s.size)
	}
	return nil
}

// Read copies len(b) bytes at offset off into b.
func (s *Space) Read(off int64, b []byte) error {
	if err := s.checkRange(off, len(b)); err != nil {
		return err
	}
	s.stats.Accesses++
	for len(b) > 0 {
		bn := off / page.Size
		po := int(off % page.Size)
		n := page.Size - po
		if n > len(b) {
			n = len(b)
		}
		f, err := s.fault(bn)
		if err != nil {
			return err
		}
		copy(b, f.data[po:po+n])
		off += int64(n)
		b = b[n:]
	}
	return nil
}

// Write copies b into the space at offset off.
func (s *Space) Write(off int64, b []byte) error {
	if err := s.checkRange(off, len(b)); err != nil {
		return err
	}
	s.stats.Accesses++
	for len(b) > 0 {
		bn := off / page.Size
		po := int(off % page.Size)
		n := page.Size - po
		if n > len(b) {
			n = len(b)
		}
		f, err := s.fault(bn)
		if err != nil {
			return err
		}
		copy(f.data[po:po+n], b[:n])
		f.dirty = true
		off += int64(n)
		b = b[n:]
	}
	return nil
}

// Float64 reads the float64 at element index i (8-byte elements).
func (s *Space) Float64(i int64) (float64, error) {
	var b [8]byte
	if err := s.Read(i*8, b[:]); err != nil {
		return 0, err
	}
	return bitsToFloat(binary.LittleEndian.Uint64(b[:])), nil
}

// SetFloat64 writes the float64 at element index i.
func (s *Space) SetFloat64(i int64, v float64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], floatToBits(v))
	return s.Write(i*8, b[:])
}

// Uint64 reads the uint64 at element index i.
func (s *Space) Uint64(i int64) (uint64, error) {
	var b [8]byte
	if err := s.Read(i*8, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// SetUint64 writes the uint64 at element index i.
func (s *Space) SetUint64(i int64, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return s.Write(i*8, b[:])
}
