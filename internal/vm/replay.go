package vm

import "container/list"

// Ref is one page-granular memory reference in an application trace.
type Ref struct {
	Page  int64
	Write bool
}

// FaultKind distinguishes paging traffic directions.
type FaultKind int

const (
	// FaultIn is a pagein: a fault on a page whose contents live on
	// the backing store.
	FaultIn FaultKind = iota
	// FaultOut is a pageout: a dirty eviction.
	FaultOut
)

// Fault is one paging I/O produced by trace replay.
type Fault struct {
	Kind FaultKind
	Page int64
}

// Replayer simulates LRU demand paging over a page-reference stream
// without storing any data. The experiment harness replays the
// paper-scale application traces through it to obtain the pagein /
// pageout streams that drive the timing models; Space implements the
// same policy for real data, and tests assert the two agree.
type Replayer struct {
	maxRes   int
	resident map[int64]*rframe
	lru      *list.List
	written  map[int64]bool
	onFault  func(Fault)

	ins, outs uint64
}

type rframe struct {
	page  int64
	dirty bool
	elem  *list.Element
}

// NewReplayer creates a replayer with the given resident-set size in
// pages (minimum 2, matching Space). onFault may be nil.
func NewReplayer(residentPages int, onFault func(Fault)) *Replayer {
	if residentPages < 2 {
		residentPages = 2
	}
	return &Replayer{
		maxRes:   residentPages,
		resident: make(map[int64]*rframe),
		lru:      list.New(),
		written:  make(map[int64]bool),
		onFault:  onFault,
	}
}

// Ref feeds one reference through the LRU.
func (r *Replayer) Ref(pg int64, write bool) {
	f, ok := r.resident[pg]
	if ok {
		r.lru.MoveToFront(f.elem)
		if write {
			f.dirty = true
		}
		return
	}
	if len(r.resident) >= r.maxRes {
		back := r.lru.Back()
		v := back.Value.(*rframe)
		if v.dirty {
			r.outs++
			r.written[v.page] = true
			if r.onFault != nil {
				r.onFault(Fault{Kind: FaultOut, Page: v.page})
			}
		}
		r.lru.Remove(back)
		delete(r.resident, v.page)
	}
	f = &rframe{page: pg, dirty: write}
	if r.written[pg] {
		r.ins++
		if r.onFault != nil {
			r.onFault(Fault{Kind: FaultIn, Page: pg})
		}
	}
	f.elem = r.lru.PushFront(f)
	r.resident[pg] = f
}

// Refs feeds a batch of references.
func (r *Replayer) Refs(refs []Ref) {
	for _, ref := range refs {
		r.Ref(ref.Page, ref.Write)
	}
}

// Counts returns the pageins and pageouts replayed so far.
func (r *Replayer) Counts() (ins, outs uint64) { return r.ins, r.outs }
