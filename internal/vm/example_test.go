package vm_test

import (
	"fmt"
	"log"

	"rmp/internal/blockdev"
	"rmp/internal/page"
	"rmp/internal/vm"
)

// Example demonstrates demand paging: a space four times larger than
// its resident budget, swept twice — the second sweep pages back in
// what the first one evicted.
func Example() {
	dev := blockdev.NewMemDevice()
	space, err := vm.New(16*page.Size, 4*page.Size, dev)
	if err != nil {
		log.Fatal(err)
	}

	for pg := int64(0); pg < 16; pg++ {
		if err := space.Write(pg*page.Size, []byte{byte(pg)}); err != nil {
			log.Fatal(err)
		}
	}
	b := make([]byte, 1)
	for pg := int64(0); pg < 16; pg++ {
		if err := space.Read(pg*page.Size, b); err != nil {
			log.Fatal(err)
		}
		if b[0] != byte(pg) {
			log.Fatalf("page %d corrupted", pg)
		}
	}

	st := space.Stats()
	fmt.Println("data survived paging:", st.PageOuts > 0 && st.PageIns > 0)

	// Output:
	// data survived paging: true
}

// ExampleReplayer counts the paging an access pattern would cause
// without storing any data — the tool behind the paper-scale
// experiment traces.
func ExampleReplayer() {
	rp := vm.NewReplayer(2, nil) // two resident frames
	for _, pg := range []int64{0, 1, 2, 0} {
		rp.Ref(pg, true) // writes
	}
	ins, outs := rp.Counts()
	fmt.Printf("pageins=%d pageouts=%d\n", ins, outs)

	// Output:
	// pageins=1 pageouts=2
}
