package vm

import (
	"testing"

	"rmp/internal/blockdev"
	"rmp/internal/page"
)

func raSpace(t *testing.T, pages, resident int64, ra int) (*Space, *blockdev.CountingDevice) {
	t.Helper()
	dev := blockdev.NewCountingDevice(blockdev.NewMemDevice())
	s, err := NewOpts(pages*page.Size, resident*page.Size, dev, Options{Readahead: ra})
	if err != nil {
		t.Fatal(err)
	}
	return s, dev
}

// writeSweep dirties pages 0..n-1 so they have backing copies after
// eviction.
func writeSweep(t *testing.T, s *Space, n int64) {
	t.Helper()
	for pg := int64(0); pg < n; pg++ {
		if err := s.Write(pg*page.Size, []byte{byte(pg + 1)}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestReadaheadPrefetchesSequentialRuns(t *testing.T) {
	const pages = 32
	s, _ := raSpace(t, pages, 4, 4)
	writeSweep(t, s, pages)
	// Sequential read sweep: after the run is detected, most demand
	// faults should be absorbed by prefetch.
	b := make([]byte, 1)
	for pg := int64(0); pg < pages; pg++ {
		if err := s.Read(pg*page.Size, b); err != nil {
			t.Fatal(err)
		}
		if b[0] != byte(pg+1) {
			t.Fatalf("page %d lost data under readahead", pg)
		}
	}
	st := s.Stats()
	if st.Prefetch == 0 {
		t.Fatal("no prefetches on a sequential sweep")
	}
	if st.PrefHits == 0 {
		t.Fatal("prefetched pages never hit")
	}
}

func TestReadaheadDisabledByDefault(t *testing.T) {
	s, _ := raSpace(t, 16, 4, 0)
	writeSweep(t, s, 16)
	b := make([]byte, 1)
	for pg := int64(0); pg < 16; pg++ {
		if err := s.Read(pg*page.Size, b); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Prefetch != 0 {
		t.Fatalf("prefetching happened with Readahead=0: %+v", st)
	}
}

func TestReadaheadSkipsRandomAccess(t *testing.T) {
	const pages = 64
	s, _ := raSpace(t, pages, 8, 4)
	writeSweep(t, s, pages)
	// Strided (non-sequential) reads must not trigger runs.
	b := make([]byte, 1)
	for pg := int64(0); pg < pages; pg += 7 {
		if err := s.Read(pg*page.Size, b); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Prefetch != 0 {
		t.Fatalf("prefetched on strided access: %d", st.Prefetch)
	}
}

func TestReadaheadStopsAtUnbackedPages(t *testing.T) {
	s, dev := raSpace(t, 32, 4, 8)
	// Back only pages 0..5; a run ending at 5 must not read past it.
	writeSweep(t, s, 6)
	b := make([]byte, 1)
	for pg := int64(0); pg < 6; pg++ {
		if err := s.Read(pg*page.Size, b); err != nil {
			t.Fatal(err)
		}
	}
	r, _ := dev.Counts()
	if r > 6 {
		t.Fatalf("device saw %d reads for 6 backed pages", r)
	}
}

func TestReadaheadCorrectnessUnderPressure(t *testing.T) {
	// Readahead must never change contents, only timing: run the same
	// mixed workload with and without and compare checksums.
	run := func(ra int) uint32 {
		dev := blockdev.NewMemDevice()
		s, err := NewOpts(64*page.Size, 6*page.Size, dev, Options{Readahead: ra})
		if err != nil {
			t.Fatal(err)
		}
		for pg := int64(0); pg < 64; pg++ {
			if err := s.Write(pg*page.Size, []byte{byte(pg * 3)}); err != nil {
				t.Fatal(err)
			}
		}
		sum := page.NewBuf()
		b := make([]byte, 1)
		for i, pg := range []int64{0, 1, 2, 3, 40, 41, 42, 10, 11, 63, 5, 6, 7, 8} {
			if err := s.Read(pg*page.Size, b); err != nil {
				t.Fatal(err)
			}
			sum[i] = b[0]
		}
		return sum.Checksum()
	}
	if run(0) != run(8) {
		t.Fatal("readahead changed observable contents")
	}
}

// TestReadaheadNeverEvictsDemandFrame is the regression test for a
// corruption bug: with Readahead >= maxRes the prefetch loop could
// evict the frame being returned to the caller, whose subsequent
// write then landed in an orphaned buffer and was silently lost.
func TestReadaheadNeverEvictsDemandFrame(t *testing.T) {
	const pages = 16
	dev := blockdev.NewMemDevice()
	// Resident 2 pages, readahead 8 — far beyond residency.
	s, err := NewOpts(pages*page.Size, 2*page.Size, dev, Options{Readahead: 8})
	if err != nil {
		t.Fatal(err)
	}
	for pg := int64(0); pg < pages; pg++ {
		if err := s.Write(pg*page.Size, []byte{byte(pg + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	// Sequential read-modify-write sweep: each iteration demand-faults
	// a page (triggering readahead) and then writes through the
	// returned frame.
	b := make([]byte, 1)
	for pg := int64(0); pg < pages; pg++ {
		if err := s.Read(pg*page.Size, b); err != nil {
			t.Fatal(err)
		}
		if err := s.Write(pg*page.Size, []byte{b[0] ^ 0xFF}); err != nil {
			t.Fatal(err)
		}
	}
	for pg := int64(0); pg < pages; pg++ {
		if err := s.Read(pg*page.Size, b); err != nil {
			t.Fatal(err)
		}
		if b[0] != byte(pg+1)^0xFF {
			t.Fatalf("page %d lost its write: got %#x", pg, b[0])
		}
	}
}

func TestNegativeReadaheadClamped(t *testing.T) {
	dev := blockdev.NewMemDevice()
	s, err := NewOpts(page.Size*4, page.Size*2, dev, Options{Readahead: -3})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Write(0, []byte{1}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSequentialReadNoReadahead(b *testing.B) {
	benchSeqRead(b, 0)
}

func BenchmarkSequentialReadReadahead8(b *testing.B) {
	benchSeqRead(b, 8)
}

func benchSeqRead(b *testing.B, ra int) {
	dev := blockdev.NewMemDevice()
	const pages = 256
	s, err := NewOpts(pages*page.Size, 16*page.Size, dev, Options{Readahead: ra})
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, page.Size)
	for pg := int64(0); pg < pages; pg++ {
		if err := s.Write(pg*page.Size, buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(pages * page.Size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for pg := int64(0); pg < pages; pg++ {
			if err := s.Read(pg*page.Size, buf); err != nil {
				b.Fatal(err)
			}
		}
	}
}
