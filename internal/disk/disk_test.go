package disk

import (
	"path/filepath"
	"testing"
	"time"

	"rmp/internal/page"
)

func tempStore(t *testing.T, model LatencyModel) *Store {
	t.Helper()
	s, err := Open(filepath.Join(t.TempDir(), "swap.img"), model)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func fillPage(seed uint64) page.Buf {
	p := page.NewBuf()
	p.Fill(seed)
	return p
}

func TestPutGetRoundTrip(t *testing.T) {
	s := tempStore(t, LatencyModel{})
	want := fillPage(3)
	if err := s.Put(11, want); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(11)
	if err != nil {
		t.Fatal(err)
	}
	if got.Checksum() != want.Checksum() {
		t.Fatal("page mangled by disk round trip")
	}
}

func TestGetMissing(t *testing.T) {
	s := tempStore(t, LatencyModel{})
	if _, err := s.Get(1); err != ErrNotFound {
		t.Fatalf("got %v, want ErrNotFound", err)
	}
}

func TestOverwriteReusesSlot(t *testing.T) {
	s := tempStore(t, LatencyModel{})
	if err := s.Put(1, fillPage(1)); err != nil {
		t.Fatal(err)
	}
	want := fillPage(2)
	if err := s.Put(1, want); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(1)
	if err != nil || got.Checksum() != want.Checksum() {
		t.Fatalf("overwrite lost data: %v", err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d after overwrite, want 1", s.Len())
	}
}

func TestDeleteAndSlotReuse(t *testing.T) {
	s := tempStore(t, LatencyModel{})
	for i := uint64(0); i < 4; i++ {
		if err := s.Put(i, fillPage(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Delete(1, 2)
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	// New puts should reuse freed slots; file must not grow past 4 slots.
	if err := s.Put(10, fillPage(10)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(11, fillPage(11)); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	next := s.next
	s.mu.Unlock()
	if next != 4 {
		t.Fatalf("file grew to %d slots, want 4 (slot reuse)", next)
	}
	got, err := s.Get(10)
	if err != nil || got.Checksum() != fillPage(10).Checksum() {
		t.Fatalf("reused slot corrupted: %v", err)
	}
}

func TestDeleteMissingIsNoop(t *testing.T) {
	s := tempStore(t, LatencyModel{})
	s.Delete(99)
	if s.Stats().Frees != 0 {
		t.Fatal("free counted for missing key")
	}
}

func TestKeysSorted(t *testing.T) {
	s := tempStore(t, LatencyModel{})
	for _, k := range []uint64{9, 2, 5} {
		if err := s.Put(k, fillPage(k)); err != nil {
			t.Fatal(err)
		}
	}
	keys := s.Keys()
	want := []uint64{2, 5, 9}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("Keys = %v, want %v", keys, want)
		}
	}
}

func TestOpenTemp(t *testing.T) {
	s, err := OpenTemp(LatencyModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put(1, fillPage(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(1); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyModelCharges(t *testing.T) {
	model := LatencyModel{AvgSeek: 5 * time.Millisecond, BytesPerSec: 10_000_000}
	s := tempStore(t, model)
	start := time.Now()
	if err := s.Put(1, fillPage(1)); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("Put took %v, want >= seek cost", d)
	}
	if s.Stats().SimulatedLatency == 0 {
		t.Fatal("simulated latency not accounted")
	}
}

func TestPageCostModel(t *testing.T) {
	if RZ55.PageCost(0) <= RZ55.PageCost(1) {
		t.Fatal("run-start access should pay seek, run continuation should not")
	}
	// Transfer-only component: 8192 bytes at 1.25 MB/s = 6.55 ms.
	got := LatencyModel{BytesPerSec: 1_250_000}.PageCost(0)
	want := time.Duration(int64(page.Size) * int64(time.Second) / 1_250_000)
	if got != want {
		t.Fatalf("transfer cost = %v, want %v", got, want)
	}
	if (LatencyModel{}).PageCost(0) != 0 {
		t.Fatal("zero model should cost nothing")
	}
	// The paper's anchor: RZ55 per-page cost ~17 ms with clustering.
	var total time.Duration
	for i := 0; i < 12; i++ {
		total += RZ55.PageCost(i)
	}
	avg := total / 12
	if avg < 14*time.Millisecond || avg > 20*time.Millisecond {
		t.Fatalf("RZ55 average page cost %v, want ~17ms (paper §3.1)", avg)
	}
}

func TestPutRejectsShortPage(t *testing.T) {
	s := tempStore(t, LatencyModel{})
	if err := s.Put(1, make(page.Buf, 8)); err == nil {
		t.Fatal("Put accepted short page")
	}
}

func TestManyPagesPersistCorrectly(t *testing.T) {
	s := tempStore(t, LatencyModel{})
	const n = 200
	for i := uint64(0); i < n; i++ {
		if err := s.Put(i, fillPage(i*31)); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < n; i++ {
		got, err := s.Get(i)
		if err != nil {
			t.Fatal(err)
		}
		if got.Checksum() != fillPage(i*31).Checksum() {
			t.Fatalf("page %d corrupted", i)
		}
	}
}

func BenchmarkDiskPut(b *testing.B) {
	s, err := OpenTemp(LatencyModel{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	p := fillPage(1)
	b.SetBytes(page.Size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put(uint64(i%1024), p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDiskGet(b *testing.B) {
	s, err := OpenTemp(LatencyModel{})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	p := fillPage(1)
	for i := uint64(0); i < 256; i++ {
		if err := s.Put(i, p); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(page.Size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get(uint64(i) % 256); err != nil {
			b.Fatal(err)
		}
	}
}
