package disk

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"rmp/internal/page"
)

func TestDurableRoundTripAndReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "durable.img")
	s, err := OpenDurable(path, LatencyModel{})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 20; i++ {
		if err := s.Put(i, fillPage(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Delete(5, 6)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the key map is rebuilt from slot headers.
	s2, err := OpenDurable(path, LatencyModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Len(); got != 18 {
		t.Fatalf("recovered %d pages, want 18", got)
	}
	for _, k := range []uint64{5, 6} {
		if _, err := s2.Get(k); !errors.Is(err, ErrNotFound) {
			t.Fatalf("deleted page %d resurrected: %v", k, err)
		}
	}
	for i := uint64(0); i < 20; i++ {
		if i == 5 || i == 6 {
			continue
		}
		got, err := s2.Get(i)
		if err != nil {
			t.Fatalf("recovered get %d: %v", i, err)
		}
		if got.Checksum() != fillPage(i).Checksum() {
			t.Fatalf("recovered page %d corrupted", i)
		}
	}
	// Freed slots are reused after recovery.
	if err := s2.Put(100, fillPage(100)); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(20) * (page.Size + slotHeaderLen); fi.Size() > want {
		t.Fatalf("freed slot not reused: file grew to %d (max %d)", fi.Size(), want)
	}
}

func TestDurableDetectsDataCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rot.img")
	s, err := OpenDurable(path, LatencyModel{})
	if err != nil {
		t.Fatal(err)
	}
	want := fillPage(9)
	if err := s.Put(9, want); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Flip one byte in the data region: the CRC must catch it.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], slotHeaderLen+100); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b[:], slotHeaderLen+100); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := OpenDurable(path, LatencyModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Len(); got != 1 {
		t.Fatalf("header-valid slot not recovered: %d", got)
	}
	if _, err := s2.Get(9); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt page served: %v", err)
	}
}

func TestDurableTornHeaderSkippedOnRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.img")
	s, err := OpenDurable(path, LatencyModel{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(1, fillPage(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(2, fillPage(2)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Tear slot 0's header magic: recovery must skip it and keep going.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0, 0, 0, 0}, 0); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := OpenDurable(path, LatencyModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Len(); got != 1 {
		t.Fatalf("recovered %d pages, want 1 (torn slot skipped)", got)
	}
	// The torn slot is back on the free list and reusable.
	if err := s2.Put(3, fillPage(3)); err != nil {
		t.Fatal(err)
	}
	fi, _ := os.Stat(path)
	if want := int64(2) * (page.Size + slotHeaderLen); fi.Size() > want {
		t.Fatalf("torn slot not reused: file is %d bytes", fi.Size())
	}
}
