// Package disk implements the local-disk paging backend of the RMP.
//
// The paper's pager can forward paging requests "to the local disk
// using either a specified partition or a file" (§3.1); it does so
// when no remote memory server has free space, and the write-through
// policy (§4.7) sends every pageout here in parallel with the network.
//
// Store is a swap file: a flat file of page slots with a key->slot
// map and a free list. An optional latency model charges a DEC-RZ55-
// style seek + rotation + transfer cost per access so experiments can
// compare against 1996 disk behaviour even on a modern NVMe device.
package disk

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"rmp/internal/page"
)

// ErrNotFound is returned by Get for keys never paged out (or freed).
var ErrNotFound = errors.New("disk: page not found")

// ErrCorrupt is returned by Get on a durable store when a slot fails
// its header or checksum verification: the page is lost, and the
// caller must report the loss instead of serving garbage.
var ErrCorrupt = errors.New("disk: page corrupt")

// LatencyModel charges a synthetic per-access delay. Zero value means
// "run at native speed".
type LatencyModel struct {
	// AvgSeek is the average head seek time (RZ55: 16 ms).
	AvgSeek time.Duration
	// HalfRotation is the average rotational delay (RZ55 at 3600 RPM:
	// ~8.3 ms per rotation, 4.2 ms average).
	HalfRotation time.Duration
	// BytesPerSec is the media transfer rate (RZ55: 10 Mbit/s =
	// 1.25e6 B/s).
	BytesPerSec int64
	// SequentialRun is how many consecutive same-direction accesses
	// skip the seek (large sequential swap writes amortize seeks; the
	// paper notes write-through's disk "writes are performed in large
	// chunks").
	SequentialRun int
}

// RZ55 is the paper's paging disk: a DEC RZ55 with 10 Mbit/s media
// rate, 16 ms average seek, and 8.3 ms average rotational delay
// (3600 RPM). A scattered 8 KB page access costs ~31 ms; with the
// OSF/1 swap layout clustering most transfers the paper measures
// ~17 ms per page, which this model reproduces with SequentialRun 4.
var RZ55 = LatencyModel{
	AvgSeek:       16 * time.Millisecond,
	HalfRotation:  8300 * time.Microsecond,
	BytesPerSec:   1_250_000,
	SequentialRun: 4,
}

// PageCost returns the model's cost for one page access, given how
// many accesses in the current sequential run preceded it.
func (m LatencyModel) PageCost(runPos int) time.Duration {
	if m.BytesPerSec == 0 && m.AvgSeek == 0 && m.HalfRotation == 0 {
		return 0
	}
	// Every synchronous request pays the rotational delay; the seek
	// is amortized over a sequential run.
	d := m.HalfRotation
	if m.SequentialRun <= 1 || runPos%m.SequentialRun == 0 {
		d += m.AvgSeek
	}
	if m.BytesPerSec > 0 {
		d += time.Duration(int64(page.Size) * int64(time.Second) / m.BytesPerSec)
	}
	return d
}

// Store is a file-backed page store.
type Store struct {
	mu    sync.Mutex
	f     *os.File
	slots map[uint64]int64 // key -> slot index
	free  []int64          // reusable slot indexes
	next  int64            // next fresh slot
	model LatencyModel
	run   int // sequential-run position for the latency model

	// durable stores prefix every slot with a self-describing header
	// (magic, key, CRC-32C of the data) so a fresh Store can recover
	// the key map by scanning the file, and a torn or bit-rotted slot
	// is detected at read time instead of served as garbage.
	durable bool

	stats Stats
}

// Durable slot header layout: magic(4) reserved(4) key(8) crc(4)
// pad(4), followed by page.Size data bytes.
const (
	slotMagic     = 0x524D5350 // "RMSP"
	slotHeaderLen = 24
)

// slotSize is the on-disk footprint of one slot.
func (s *Store) slotSize() int64 {
	if s.durable {
		return page.Size + slotHeaderLen
	}
	return page.Size
}

// Stats counts store activity and simulated latency charged.
type Stats struct {
	Reads, Writes, Frees uint64
	SimulatedLatency     time.Duration
}

// Open creates (or truncates) a swap file at path. A zero model runs
// at native device speed.
func Open(path string, model LatencyModel) (*Store, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return nil, fmt.Errorf("disk: %w", err)
	}
	return &Store{f: f, slots: make(map[uint64]int64), model: model}, nil
}

// OpenDurable opens (or creates) a self-describing swap file at path
// without truncating it: every slot carries a header with the key and
// a CRC-32C of the data, and opening scans the file to rebuild the
// key map — the recovery path for a server restarting with spilled
// pages. Slots whose header fails verification are abandoned (their
// pages are reported lost on access, never silently corrupted).
func OpenDurable(path string, model LatencyModel) (*Store, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		return nil, fmt.Errorf("disk: %w", err)
	}
	s := &Store{f: f, slots: make(map[uint64]int64), model: model, durable: true}
	if err := s.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// recover scans a durable file, adopting every slot with a valid
// header. Caller owns the store exclusively (called from OpenDurable).
func (s *Store) recover() error {
	fi, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("disk: %w", err)
	}
	nslots := fi.Size() / s.slotSize()
	var hdr [slotHeaderLen]byte
	for slot := int64(0); slot < nslots; slot++ {
		if _, err := s.f.ReadAt(hdr[:], slot*s.slotSize()); err != nil {
			return fmt.Errorf("disk: recover slot %d: %w", slot, err)
		}
		if binary.BigEndian.Uint32(hdr[0:]) != slotMagic {
			s.free = append(s.free, slot) // freed or torn slot
			continue
		}
		key := binary.BigEndian.Uint64(hdr[8:])
		s.slots[key] = slot
	}
	s.next = nslots
	return nil
}

// OpenTemp creates a swap file in the OS temp dir; the file is
// unlinked from the namespace immediately where the platform allows,
// so it vanishes when the store is closed.
func OpenTemp(model LatencyModel) (*Store, error) {
	f, err := os.CreateTemp("", "rmp-swap-*.img")
	if err != nil {
		return nil, fmt.Errorf("disk: %w", err)
	}
	// Best-effort unlink; keeps working on platforms where it fails.
	os.Remove(f.Name())
	return &Store{f: f, slots: make(map[uint64]int64), model: model}, nil
}

// Close closes the underlying file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Close()
}

// charge applies the latency model for one access.
func (s *Store) charge() {
	d := s.model.PageCost(s.run)
	s.run++
	if d > 0 {
		s.stats.SimulatedLatency += d
		time.Sleep(d)
	}
}

// Put writes data under key, reusing the key's existing slot if any.
func (s *Store) Put(key uint64, data page.Buf) error {
	if err := data.CheckLen(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	slot, ok := s.slots[key]
	if !ok {
		if n := len(s.free); n > 0 {
			slot = s.free[n-1]
			s.free = s.free[:n-1]
		} else {
			slot = s.next
			s.next++
		}
		s.slots[key] = slot
	}
	s.charge()
	if s.durable {
		buf := make([]byte, s.slotSize())
		binary.BigEndian.PutUint32(buf[0:], slotMagic)
		binary.BigEndian.PutUint64(buf[8:], key)
		binary.BigEndian.PutUint32(buf[16:], data.Checksum())
		copy(buf[slotHeaderLen:], data)
		if _, err := s.f.WriteAt(buf, slot*s.slotSize()); err != nil {
			return fmt.Errorf("disk: write slot %d: %w", slot, err)
		}
	} else if _, err := s.f.WriteAt(data, slot*page.Size); err != nil {
		return fmt.Errorf("disk: write slot %d: %w", slot, err)
	}
	s.stats.Writes++
	return nil
}

// Get reads the page stored under key.
func (s *Store) Get(key uint64) (page.Buf, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	slot, ok := s.slots[key]
	if !ok {
		return nil, ErrNotFound
	}
	s.charge()
	buf := page.NewBuf()
	if s.durable {
		raw := make([]byte, s.slotSize())
		if _, err := s.f.ReadAt(raw, slot*s.slotSize()); err != nil {
			return nil, fmt.Errorf("disk: read slot %d: %w", slot, err)
		}
		if binary.BigEndian.Uint32(raw[0:]) != slotMagic ||
			binary.BigEndian.Uint64(raw[8:]) != key {
			return nil, fmt.Errorf("disk: slot %d header mismatch for key %d: %w", slot, key, ErrCorrupt)
		}
		copy(buf, raw[slotHeaderLen:])
		if buf.Checksum() != binary.BigEndian.Uint32(raw[16:]) {
			return nil, fmt.Errorf("disk: slot %d checksum mismatch for key %d: %w", slot, key, ErrCorrupt)
		}
	} else if _, err := s.f.ReadAt(buf, slot*page.Size); err != nil {
		return nil, fmt.Errorf("disk: read slot %d: %w", slot, err)
	}
	s.stats.Reads++
	return buf, nil
}

// Delete frees the slots for the given keys; missing keys are ignored.
func (s *Store) Delete(keys ...uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, k := range keys {
		if slot, ok := s.slots[k]; ok {
			delete(s.slots, k)
			s.free = append(s.free, slot)
			s.stats.Frees++
			if s.durable {
				// Invalidate the header so a later recovery scan does
				// not resurrect the freed page. Best-effort: a failed
				// write means the stale page may reappear, never that
				// data corrupts.
				var zero [4]byte
				s.f.WriteAt(zero[:], slot*s.slotSize())
			}
		}
	}
}

// Len returns the number of stored pages.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.slots)
}

// Keys returns all stored keys in ascending order.
func (s *Store) Keys() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]uint64, 0, len(s.slots))
	for k := range s.slots {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Stats returns a snapshot of activity counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}
