// Package membership is the live cluster-membership layer: it turns
// the paper's static "common file" of registered servers (§2.1) into
// a dynamic view maintained by heartbeats.
//
// It has two halves, both transport-agnostic so they unit-test without
// a network:
//
//   - Detector: a heartbeat failure detector driving every tracked
//     server through an alive → suspect → dead state machine. The
//     paper only notices a crash when a data-path request fails; the
//     detector notices within Interval×Misses even on an idle pager,
//     which is what bounds the window of reduced redundancy.
//   - Reprotector (reprotect.go): a background worker that runs
//     recovery jobs after a death is confirmed, so redundancy is
//     restored without stalling the paging data path.
//
// The Pager owns both: it implements Prober over dedicated heartbeat
// connections and reacts to Events by marking servers dead and
// queueing re-protection.
package membership

import (
	"fmt"
	"sync"
	"time"
)

// State is a member's position in the failure-detection state machine.
type State int

const (
	// StateAlive: the last probe succeeded.
	StateAlive State = iota
	// StateSuspect: at least one probe missed, but fewer than the
	// confirmation threshold. New members start here — they have not
	// proven themselves yet. Suspects take no new page placements but
	// keep serving what they hold.
	StateSuspect
	// StateDead: Misses consecutive probes failed. The death is
	// confirmed; re-protection may begin. Probing continues so a
	// restarted server is noticed and revived.
	StateDead
)

func (s State) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Config parametrizes the failure detector.
type Config struct {
	// Interval between heartbeat probes to each member. Default 1s.
	Interval time.Duration
	// Timeout bounds one probe (including any re-dial). Default:
	// Interval.
	Timeout time.Duration
	// Misses is how many consecutive probes must fail before a member
	// is confirmed dead. Default 3.
	Misses int
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Timeout <= 0 {
		c.Timeout = c.Interval
	}
	if c.Misses <= 0 {
		c.Misses = 3
	}
	return c
}

// Ack is the application-level result of one successful probe.
type Ack struct {
	// FreePages reported by the server.
	FreePages int
	// Draining: the server asked to leave; migrate pages off it.
	Draining bool
	// Peers are server addresses announced to the probed server that
	// the prober's owner may not know yet (dynamic join).
	Peers []string
}

// Prober performs one application-level heartbeat probe (PING/PONG
// for the pager; fakes in tests). It must respect timeout and must be
// safe for concurrent calls on different addrs.
type Prober interface {
	Probe(addr string, timeout time.Duration) (Ack, error)
}

// Event is a state transition of one member.
type Event struct {
	Addr     string
	From, To State
	// Cause is the probe error behind a suspect/dead transition.
	Cause error
}

// MemberInfo is a snapshot row of the detector's view.
type MemberInfo struct {
	Addr   string
	State  State
	Since  time.Time // when the current state was entered
	Misses int       // consecutive missed probes
	Cause  error     // last probe error (nil while alive)
}

// member is one tracked server. addr is immutable; every other field
// is guarded by Detector.mu.
type member struct {
	addr string
	// state is the current lifecycle state. Guarded by Detector.mu.
	state State
	// since is when state was entered. Guarded by Detector.mu.
	since time.Time
	// misses counts consecutive failed probes. Guarded by Detector.mu.
	misses int
	// cause is the last probe error. Guarded by Detector.mu.
	cause error
	// probing marks an in-flight probe so ticks cannot stack probes on
	// a slow member. Guarded by Detector.mu.
	probing bool
}

// Detector is the heartbeat failure detector. Create with
// NewDetector, add members with Track, stop with Close. Callbacks are
// invoked from probe goroutines without any detector lock held; they
// may call back into the detector.
type Detector struct {
	cfg     Config
	prober  Prober
	onEvent func(Event)
	onAck   func(addr string, ack Ack)

	mu sync.Mutex
	// members is the tracked set. Guarded by mu.
	members map[string]*member
	// closed latches Close. Guarded by mu.
	closed bool

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewDetector creates and starts a detector. onEvent and onAck may be
// nil.
func NewDetector(cfg Config, prober Prober, onEvent func(Event), onAck func(string, Ack)) *Detector {
	d := &Detector{
		cfg:     cfg.withDefaults(),
		prober:  prober,
		onEvent: onEvent,
		onAck:   onAck,
		members: make(map[string]*member),
		stop:    make(chan struct{}),
	}
	d.wg.Add(1)
	go d.loop()
	return d
}

// Track adds addr to the probed set. New members start as suspects:
// the first successful probe promotes them to alive (and fires an
// event the owner uses to finish joining them). Tracking an existing
// member is a no-op.
func (d *Detector) Track(addr string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return
	}
	if _, ok := d.members[addr]; ok {
		return
	}
	d.members[addr] = &member{addr: addr, state: StateSuspect, since: time.Now()}
}

// Suspect reports out-of-band evidence that addr is failing — e.g.
// the pager's circuit breaker opening after consecutive data-path
// timeouts. An alive member transitions to suspect immediately
// instead of waiting for the next heartbeat miss; the regular probe
// schedule then confirms the death or clears the suspicion. The
// report counts as one miss, so confirmation needs Misses-1 further
// failed probes. No-op for members already suspect or dead.
func (d *Detector) Suspect(addr string, cause error) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	m, ok := d.members[addr]
	if !ok || m.state != StateAlive {
		d.mu.Unlock()
		return
	}
	m.state = StateSuspect
	m.since = time.Now()
	if m.misses == 0 {
		m.misses = 1
	}
	m.cause = cause
	ev := Event{Addr: addr, From: StateAlive, To: StateSuspect, Cause: cause}
	d.mu.Unlock()
	if d.onEvent != nil {
		d.onEvent(ev)
	}
}

// Forget removes addr from the probed set (a member that drained away
// for good).
func (d *Detector) Forget(addr string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.members, addr)
}

// Snapshot returns the current view, in no particular order.
func (d *Detector) Snapshot() []MemberInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]MemberInfo, 0, len(d.members))
	for _, m := range d.members {
		out = append(out, MemberInfo{
			Addr: m.addr, State: m.state, Since: m.since,
			Misses: m.misses, Cause: m.cause,
		})
	}
	return out
}

// Lookup returns the info for one member.
func (d *Detector) Lookup(addr string) (MemberInfo, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	m, ok := d.members[addr]
	if !ok {
		return MemberInfo{}, false
	}
	return MemberInfo{Addr: m.addr, State: m.state, Since: m.since,
		Misses: m.misses, Cause: m.cause}, true
}

// Close stops probing and waits for in-flight probes.
func (d *Detector) Close() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	d.mu.Unlock()
	close(d.stop)
	d.wg.Wait()
}

func (d *Detector) loop() {
	defer d.wg.Done()
	t := time.NewTicker(d.cfg.Interval)
	defer t.Stop()
	d.probeAll() // probe immediately; a fresh pager wants a view now
	for {
		select {
		case <-d.stop:
			return
		case <-t.C:
			d.probeAll()
		}
	}
}

// probeAll launches one probe per member not already being probed.
func (d *Detector) probeAll() {
	d.mu.Lock()
	var due []string
	for addr, m := range d.members {
		if !m.probing {
			m.probing = true
			due = append(due, addr)
		}
	}
	d.mu.Unlock()
	for _, addr := range due {
		d.wg.Add(1)
		go d.probe(addr)
	}
}

func (d *Detector) probe(addr string) {
	defer d.wg.Done()
	ack, err := d.prober.Probe(addr, d.cfg.Timeout)

	d.mu.Lock()
	m, ok := d.members[addr]
	if !ok || d.closed { // forgotten or shut down mid-probe
		if ok {
			m.probing = false
		}
		d.mu.Unlock()
		return
	}
	m.probing = false
	var ev *Event
	if err == nil {
		m.misses = 0
		m.cause = nil
		if m.state != StateAlive {
			ev = &Event{Addr: addr, From: m.state, To: StateAlive}
			m.state = StateAlive
			m.since = time.Now()
		}
	} else {
		m.misses++
		m.cause = err
		switch {
		case m.state == StateAlive:
			ev = &Event{Addr: addr, From: StateAlive, To: StateSuspect, Cause: err}
			m.state = StateSuspect
			m.since = time.Now()
		case m.state == StateSuspect && m.misses >= d.cfg.Misses:
			ev = &Event{Addr: addr, From: StateSuspect, To: StateDead,
				Cause: fmt.Errorf("membership: %d consecutive heartbeats missed: %w", m.misses, err)}
			m.state = StateDead
			m.since = time.Now()
		}
	}
	d.mu.Unlock()

	// Dispatch without the lock so handlers can call Track/Forget.
	if ev != nil && d.onEvent != nil {
		d.onEvent(*ev)
	}
	if err == nil && d.onAck != nil {
		d.onAck(addr, ack)
	}
}
