package membership

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeProber scripts probe outcomes per address. Safe for concurrent
// probes.
type fakeProber struct {
	mu   sync.Mutex
	fail map[string]error // addr → error to return (nil = success)
	ack  map[string]Ack
}

func newFakeProber() *fakeProber {
	return &fakeProber{fail: make(map[string]error), ack: make(map[string]Ack)}
}

func (f *fakeProber) Probe(addr string, _ time.Duration) (Ack, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err := f.fail[addr]; err != nil {
		return Ack{}, err
	}
	return f.ack[addr], nil
}

func (f *fakeProber) set(addr string, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fail[addr] = err
}

func (f *fakeProber) setAck(addr string, a Ack) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ack[addr] = a
}

// eventLog collects events thread-safely.
type eventLog struct {
	mu  sync.Mutex
	evs []Event
}

func (l *eventLog) add(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.evs = append(l.evs, e)
}

func (l *eventLog) all() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.evs...)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func testConfig() Config {
	return Config{Interval: 5 * time.Millisecond, Timeout: 5 * time.Millisecond, Misses: 3}
}

func TestDetectorLifecycle(t *testing.T) {
	pr := newFakeProber()
	var log eventLog
	d := NewDetector(testConfig(), pr, log.add, nil)
	defer d.Close()

	// New member starts suspect; first success promotes to alive.
	d.Track("a:1")
	waitFor(t, "a:1 alive", func() bool {
		m, ok := d.Lookup("a:1")
		return ok && m.State == StateAlive
	})

	// Kill it: suspect after the first miss, dead after Misses.
	boom := errors.New("connection refused")
	pr.set("a:1", boom)
	waitFor(t, "a:1 dead", func() bool {
		m, _ := d.Lookup("a:1")
		return m.State == StateDead
	})
	m, _ := d.Lookup("a:1")
	if m.Misses < 3 {
		t.Errorf("dead with only %d misses", m.Misses)
	}
	if m.Cause == nil {
		t.Error("dead member has no cause")
	}

	// Revive: probing continues on dead members.
	pr.set("a:1", nil)
	waitFor(t, "a:1 revived", func() bool {
		m, _ := d.Lookup("a:1")
		return m.State == StateAlive
	})

	// Event sequence: →alive, →suspect, →dead, →alive.
	evs := log.all()
	var kinds []string
	for _, e := range evs {
		kinds = append(kinds, fmt.Sprintf("%v→%v", e.From, e.To))
	}
	want := []string{"suspect→alive", "alive→suspect", "suspect→dead", "dead→alive"}
	if len(kinds) < len(want) {
		t.Fatalf("events %v, want at least %v", kinds, want)
	}
	for i, w := range want {
		if kinds[i] != w {
			t.Fatalf("event[%d] = %s, want %s (all: %v)", i, kinds[i], w, kinds)
		}
	}
	// The death event must carry a cause mentioning the miss count.
	for _, e := range evs {
		if e.To == StateDead && e.Cause == nil {
			t.Error("death event without cause")
		}
	}
}

func TestDetectorSuspectIsNotDead(t *testing.T) {
	pr := newFakeProber()
	var log eventLog
	cfg := testConfig()
	cfg.Misses = 100 // effectively never confirm
	d := NewDetector(cfg, pr, log.add, nil)
	defer d.Close()

	d.Track("a:1")
	waitFor(t, "alive", func() bool {
		m, _ := d.Lookup("a:1")
		return m.State == StateAlive
	})
	pr.set("a:1", errors.New("flaky"))
	waitFor(t, "suspect", func() bool {
		m, _ := d.Lookup("a:1")
		return m.State == StateSuspect
	})
	// A single flake then recovery must not produce a death.
	pr.set("a:1", nil)
	waitFor(t, "alive again", func() bool {
		m, _ := d.Lookup("a:1")
		return m.State == StateAlive && m.Misses == 0
	})
	for _, e := range log.all() {
		if e.To == StateDead {
			t.Fatal("flake escalated to death despite threshold")
		}
	}
}

func TestDetectorForget(t *testing.T) {
	pr := newFakeProber()
	d := NewDetector(testConfig(), pr, nil, nil)
	defer d.Close()

	d.Track("a:1")
	d.Track("b:2")
	waitFor(t, "both tracked", func() bool { return len(d.Snapshot()) == 2 })
	d.Forget("a:1")
	if _, ok := d.Lookup("a:1"); ok {
		t.Fatal("forgotten member still visible")
	}
	waitFor(t, "one member", func() bool { return len(d.Snapshot()) == 1 })
	// Forgetting mid-probe must not resurrect it.
	time.Sleep(20 * time.Millisecond)
	if _, ok := d.Lookup("a:1"); ok {
		t.Fatal("forgotten member resurrected by in-flight probe")
	}
}

func TestDetectorAckCallback(t *testing.T) {
	pr := newFakeProber()
	pr.setAck("a:1", Ack{FreePages: 7, Draining: true, Peers: []string{"b:2"}})
	var mu sync.Mutex
	var got Ack
	var calls int
	d := NewDetector(testConfig(), pr, nil, func(addr string, a Ack) {
		mu.Lock()
		defer mu.Unlock()
		if addr == "a:1" {
			got = a
			calls++
		}
	})
	defer d.Close()
	d.Track("a:1")
	waitFor(t, "ack delivered", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return calls > 0
	})
	mu.Lock()
	defer mu.Unlock()
	if got.FreePages != 7 || !got.Draining || len(got.Peers) != 1 || got.Peers[0] != "b:2" {
		t.Fatalf("ack mangled: %+v", got)
	}
}

// Callbacks may call back into the detector (Track/Forget/Lookup)
// without deadlocking — the detector drops its lock before dispatch.
func TestDetectorReentrantCallback(t *testing.T) {
	pr := newFakeProber()
	var d *Detector
	done := make(chan struct{}, 1)
	d = NewDetector(testConfig(), pr, nil, func(addr string, _ Ack) {
		d.Track("b:2") // reentrant
		d.Lookup(addr)
		select {
		case done <- struct{}{}:
		default:
		}
	})
	defer d.Close()
	d.Track("a:1")
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("reentrant callback deadlocked")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Interval != time.Second || c.Timeout != time.Second || c.Misses != 3 {
		t.Fatalf("bad defaults: %+v", c)
	}
	c = Config{Interval: 100 * time.Millisecond}.withDefaults()
	if c.Timeout != 100*time.Millisecond {
		t.Fatalf("timeout should default to interval, got %v", c.Timeout)
	}
}

func TestStateString(t *testing.T) {
	if StateAlive.String() != "alive" || StateSuspect.String() != "suspect" ||
		StateDead.String() != "dead" {
		t.Fatal("state names wrong")
	}
	if State(9).String() != "State(9)" {
		t.Fatal("unknown state name wrong")
	}
}

func TestReprotectorRunsJobs(t *testing.T) {
	r := NewReprotector()
	defer r.Close()

	var mu sync.Mutex
	var ran []string
	mk := func(name string, err error) Job {
		return Job{Kind: JobRebuild, Addr: name, Run: func() error {
			mu.Lock()
			ran = append(ran, name)
			mu.Unlock()
			return err
		}}
	}
	r.Enqueue(mk("a", nil))
	r.Enqueue(mk("b", errors.New("nope")))
	r.Enqueue(mk("c", nil))

	waitFor(t, "jobs drained", func() bool {
		s := r.Stats()
		return s.Done+s.Failed == 3
	})
	s := r.Stats()
	if s.Done != 2 || s.Failed != 1 || s.Pending != 0 {
		t.Fatalf("stats = %+v", s)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(ran) != 3 || ran[0] != "a" || ran[1] != "b" || ran[2] != "c" {
		t.Fatalf("jobs ran out of order: %v", ran)
	}
}

func TestReprotectorSerial(t *testing.T) {
	r := NewReprotector()
	defer r.Close()
	var active, max int32
	var mu sync.Mutex
	for i := 0; i < 5; i++ {
		r.Enqueue(Job{Run: func() error {
			mu.Lock()
			active++
			if active > max {
				max = active
			}
			mu.Unlock()
			time.Sleep(2 * time.Millisecond)
			mu.Lock()
			active--
			mu.Unlock()
			return nil
		}})
	}
	waitFor(t, "all jobs", func() bool { return r.Stats().Done == 5 })
	mu.Lock()
	defer mu.Unlock()
	if max != 1 {
		t.Fatalf("jobs overlapped: max concurrency %d", max)
	}
}

func TestReprotectorClose(t *testing.T) {
	r := NewReprotector()
	started := make(chan struct{})
	release := make(chan struct{})
	r.Enqueue(Job{Run: func() error {
		close(started)
		<-release
		return nil
	}})
	<-started
	r.Enqueue(Job{Run: func() error { t.Error("queued job ran after Close"); return nil }})
	done := make(chan struct{})
	go func() {
		r.Close() // blocks on the running job
		close(done)
	}()
	// Close is initiated while job 1 is still running, so the closed
	// flag is set before the worker can dequeue job 2.
	waitFor(t, "close initiated", func() bool {
		return !r.Enqueue(Job{Run: func() error { return nil }})
	})
	close(release)
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("Close did not return")
	}
	if r.Enqueue(Job{Run: func() error { return nil }}) {
		t.Fatal("Enqueue accepted after Close")
	}
	// Closing twice is fine.
	r.Close()
}

// TestDetectorOutOfBandSuspect: the pager's circuit breaker reports a
// server suspect without waiting for a heartbeat miss; the regular
// probe schedule then clears the suspicion (here) or confirms death.
func TestDetectorOutOfBandSuspect(t *testing.T) {
	pr := newFakeProber()
	var log eventLog
	d := NewDetector(testConfig(), pr, log.add, nil)
	defer d.Close()

	d.Track("a")
	waitFor(t, "a alive", func() bool {
		mi, ok := d.Lookup("a")
		return ok && mi.State == StateAlive
	})

	cause := errors.New("circuit breaker open")
	d.Suspect("a", cause)
	mi, ok := d.Lookup("a")
	if !ok {
		t.Fatal("a vanished")
	}
	if mi.State != StateSuspect {
		t.Fatalf("state after Suspect = %v, want suspect", mi.State)
	}
	if mi.Misses < 1 {
		t.Fatalf("misses after Suspect = %d, want >= 1 (report counts as a miss)", mi.Misses)
	}
	var reported bool
	for _, e := range log.all() {
		if e.Addr == "a" && e.From == StateAlive && e.To == StateSuspect && errors.Is(e.Cause, cause) {
			reported = true
		}
	}
	if !reported {
		t.Fatal("no alive->suspect event dispatched for the out-of-band report")
	}

	// Probes keep succeeding, so the suspicion clears on its own.
	waitFor(t, "a alive again", func() bool {
		mi, ok := d.Lookup("a")
		return ok && mi.State == StateAlive
	})

	// Reports about unknown members are ignored.
	d.Suspect("unknown", cause)
	if _, ok := d.Lookup("unknown"); ok {
		t.Fatal("Suspect must not create members")
	}
}

// TestDetectorSuspectAcceleratesDeath: an out-of-band report counts as
// one miss, so a wedged server is confirmed dead after Misses-1
// further failed probes — strictly sooner than by heartbeats alone.
func TestDetectorSuspectAcceleratesDeath(t *testing.T) {
	pr := newFakeProber()
	var log eventLog
	d := NewDetector(testConfig(), pr, log.add, nil)
	defer d.Close()

	d.Track("a")
	waitFor(t, "a alive", func() bool {
		mi, ok := d.Lookup("a")
		return ok && mi.State == StateAlive
	})

	pr.set("a", errors.New("black hole"))
	d.Suspect("a", errors.New("circuit breaker open"))
	waitFor(t, "a dead", func() bool {
		mi, ok := d.Lookup("a")
		return ok && mi.State == StateDead
	})

	// A suspect member must not re-fire the alive->suspect edge when
	// the next probe also misses.
	transitions := 0
	for _, e := range log.all() {
		if e.Addr == "a" && e.From == StateAlive && e.To == StateSuspect {
			transitions++
		}
	}
	if transitions != 1 {
		t.Fatalf("alive->suspect fired %d times, want exactly 1", transitions)
	}
}
