package membership

import (
	"sync"
	"time"
)

// JobKind labels a re-protection job for stats and logging.
type JobKind int

const (
	// JobRebuild restores redundancy after a confirmed death.
	JobRebuild JobKind = iota
	// JobDrain migrates pages off a gracefully leaving server.
	JobDrain
)

func (k JobKind) String() string {
	switch k {
	case JobRebuild:
		return "rebuild"
	case JobDrain:
		return "drain"
	}
	return "job"
}

// Job is one unit of background recovery work.
type Job struct {
	Kind JobKind
	// Addr of the server the job is about.
	Addr string
	// ConfirmedAt is when the triggering event (death confirmation,
	// drain advisory) was observed; the owner uses it to account the
	// exposure window.
	ConfirmedAt time.Time
	// Run does the work. It is called from the reprotector's single
	// worker goroutine.
	Run func() error
}

// ReprotectStats is a snapshot of the worker's progress.
type ReprotectStats struct {
	Done    uint64 // jobs completed successfully
	Failed  uint64 // jobs whose Run returned an error
	Pending int    // queued jobs not yet finished (incl. running)
}

// Reprotector runs recovery jobs one at a time in the background, so
// redundancy is restored off the paging data path. Single-worker on
// purpose: recovery jobs copy pages over the same connections the data
// path uses, and running them serially keeps the interference bounded.
type Reprotector struct {
	mu sync.Mutex
	// queue is the pending work, oldest first. Guarded by mu.
	queue []Job
	// done counts jobs completed successfully. Guarded by mu.
	done uint64
	// failed counts jobs whose Run errored. Guarded by mu.
	failed uint64
	// closed latches Close. Guarded by mu.
	closed bool
	kick   chan struct{}
	wg     sync.WaitGroup
}

// NewReprotector creates and starts the worker.
func NewReprotector() *Reprotector {
	r := &Reprotector{kick: make(chan struct{}, 1)}
	r.wg.Add(1)
	go r.worker()
	return r
}

// Enqueue queues a job. Returns false after Close.
func (r *Reprotector) Enqueue(j Job) bool {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return false
	}
	r.queue = append(r.queue, j)
	r.mu.Unlock()
	select {
	case r.kick <- struct{}{}:
	default:
	}
	return true
}

// Stats returns a progress snapshot.
func (r *Reprotector) Stats() ReprotectStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return ReprotectStats{Done: r.done, Failed: r.failed, Pending: len(r.queue)}
}

// Close stops the worker after the current job; queued jobs are
// dropped.
func (r *Reprotector) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()
	select {
	case r.kick <- struct{}{}:
	default:
	}
	r.wg.Wait()
}

func (r *Reprotector) worker() {
	defer r.wg.Done()
	for {
		r.mu.Lock()
		if r.closed {
			r.queue = nil
			r.mu.Unlock()
			return
		}
		if len(r.queue) == 0 {
			r.mu.Unlock()
			<-r.kick
			continue
		}
		j := r.queue[0]
		r.mu.Unlock()

		err := j.Run()

		r.mu.Lock()
		// Dequeue after running so Pending counts the running job.
		if len(r.queue) > 0 {
			r.queue = r.queue[1:]
		}
		if err != nil {
			r.failed++
		} else {
			r.done++
		}
		r.mu.Unlock()
	}
}
