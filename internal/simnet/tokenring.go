package simnet

import (
	"math/rand"
	"time"
)

// TokenRing simulates a token-passing ring at the same raw bandwidth
// as the Ethernet model. The paper's §4.6 point: the collapse under
// load "is not inherent to remote memory paging but rather to the
// CSMA/CD protocol"; a token-based medium at >= 10 Mbps degrades
// gracefully (bounded access delay, no collisions), so remote paging
// stays beneficial on a loaded network.
//
// Model: the token visits stations in order. A station holding the
// token transmits at most one frame, then passes the token (a small
// fixed token-passing overhead per hop). Background stations queue
// frames by the same open-loop arrival process as the Ethernet model;
// the RMP station is closed-loop (one page = framesPerPage frames in
// flight).
type TokenRing struct{}

// tokenHopSlots is the token-passing overhead per station hop,
// expressed in slot times (token frames are tiny).
const tokenHopSlots = 1

// RunTokenRing mirrors RunLoad for the token ring.
func RunTokenRing(cfg Config) Result {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Pages <= 0 {
		cfg.Pages = 500
	}

	type station struct {
		queued    int
		sent      uint64
		openLoop  bool
		frameProb float64
	}
	stations := make([]*station, 1+cfg.BackgroundStations)
	rmp := &station{}
	stations[0] = rmp
	perStationProb := 0.0
	if cfg.BackgroundStations > 0 {
		perStationProb = cfg.BackgroundLoad / float64(frameSlots) / float64(cfg.BackgroundStations)
	}
	for i := 1; i < len(stations); i++ {
		stations[i] = &station{openLoop: true, frameProb: perStationProb}
	}

	var (
		slot          int64
		goodSlots     int64
		bgOffered     uint64
		bgDelivered   uint64
		pagesDone     int
		pageStart     int64
		totalPageTime int64
		holder        int
	)
	rmp.queued = framesPerPage

	advance := func(n int64) {
		slot += n
		for _, bg := range stations[1:] {
			for k := int64(0); k < n; k++ {
				if rng.Float64() < bg.frameProb {
					bg.queued++
					bgOffered++
				}
			}
		}
	}

	for pagesDone < cfg.Pages {
		if slot > 1<<31 {
			break
		}
		st := stations[holder]
		if st.queued > 0 {
			advance(frameSlots)
			goodSlots += frameSlots
			st.queued--
			st.sent++
			if st.openLoop {
				bgDelivered++
			} else if st.queued == 0 {
				pagesDone++
				totalPageTime += slot - pageStart
				pageStart = slot
				if pagesDone < cfg.Pages {
					st.queued = framesPerPage
				}
			}
		}
		advance(tokenHopSlots)
		holder = (holder + 1) % len(stations)
	}

	res := Result{}
	if pagesDone > 0 {
		res.PageTime = time.Duration(totalPageTime / int64(pagesDone) * int64(SlotTime))
	}
	if slot > 0 {
		res.Utilization = float64(goodSlots) / float64(slot)
	}
	if bgOffered > 0 {
		res.BackgroundThroughput = float64(bgDelivered) / float64(bgOffered)
	}
	return res
}
