package simnet

import (
	"math/rand"
	"time"
)

// MultiClientResult reports an Ethernet shared by several paging
// clients.
type MultiClientResult struct {
	// PageTimes is each client's mean wire time per page.
	PageTimes []time.Duration
	// Collisions across the run.
	Collisions uint64
	// Utilization of the medium by good frames.
	Utilization float64
}

// RunMultiClient simulates n closed-loop RMP clients sharing one
// CSMA/CD Ethernet, each transferring pages back to back. The paper
// evaluates one client at a time; this extension answers the obvious
// deployment question — what happens when several workstations page
// remotely at once — and shows the medium dividing fairly but each
// client's paging slowing roughly n-fold (plus collision waste),
// until a switched or token-based fabric is called for.
func RunMultiClient(nClients, pagesEach int, seed int64) MultiClientResult {
	rng := rand.New(rand.NewSource(seed))
	if nClients < 1 {
		nClients = 1
	}
	if pagesEach <= 0 {
		pagesEach = 200
	}

	type cli struct {
		queued    int
		backoff   int64
		attempts  int
		pagesDone int
		pageStart int64
		totalTime int64
	}
	clients := make([]*cli, nClients)
	for i := range clients {
		clients[i] = &cli{queued: framesPerPage}
	}

	var (
		slot       int64
		goodSlots  int64
		collisions uint64
		doneTotal  int
	)
	target := nClients * pagesEach

	for doneTotal < target {
		slot++
		if slot > 1<<31 {
			break
		}
		var ready []*cli
		for _, c := range clients {
			if c.pagesDone >= pagesEach || c.queued == 0 {
				continue
			}
			if c.backoff > 0 {
				c.backoff--
				continue
			}
			ready = append(ready, c)
		}
		switch len(ready) {
		case 0:
			continue
		case 1:
			c := ready[0]
			busy := int64(frameSlots + interFrameGapSlots - 1)
			slot += busy
			goodSlots += frameSlots
			for _, other := range clients {
				if other != c && other.backoff > 0 {
					other.backoff -= busy
					if other.backoff < 0 {
						other.backoff = 0
					}
				}
			}
			c.queued--
			c.attempts = 0
			if c.queued == 0 {
				c.pagesDone++
				doneTotal++
				c.totalTime += slot - c.pageStart
				c.pageStart = slot
				if c.pagesDone < pagesEach {
					c.queued = framesPerPage
				}
			}
		default:
			collisions++
			for _, c := range ready {
				c.attempts++
				exp := c.attempts
				if exp > maxBackoffExp {
					exp = maxBackoffExp
				}
				c.backoff = int64(rng.Intn(1 << exp))
			}
		}
	}

	res := MultiClientResult{Collisions: collisions}
	for _, c := range clients {
		if c.pagesDone > 0 {
			res.PageTimes = append(res.PageTimes,
				time.Duration(c.totalTime/int64(c.pagesDone)*int64(SlotTime)))
		} else {
			res.PageTimes = append(res.PageTimes, 0)
		}
	}
	if slot > 0 {
		res.Utilization = float64(goodSlots) / float64(slot)
	}
	return res
}
