// Package simnet simulates a shared 10 Mbps CSMA/CD Ethernet — the
// paper's interconnect — at frame granularity, with carrier sensing,
// collisions, and truncated binary exponential backoff (IEEE 802.3,
// after Tanenbaum [24] which the paper cites).
//
// The paper's §4.6 observation is that remote memory paging over a
// *loaded* Ethernet degrades badly: paging consumes all the bandwidth
// it can get, competing sources drive the medium into repeated
// collisions, and effective throughput collapses. That inefficiency
// is a property of CSMA/CD, not of remote paging. This package
// reproduces the effect: RunLoad measures the effective page-transfer
// bandwidth of an RMP client sharing the wire with n background
// stations at a given offered load.
package simnet

import (
	"math/rand"
	"time"
)

// Physical constants of 10 Mbps Ethernet.
const (
	// SlotTime is the 802.3 slot time (512 bit times at 10 Mbps).
	SlotTime = 51200 * time.Nanosecond
	// FrameBytes is the payload carried per frame (1500 MTU minus
	// protocol headers; a page needs several frames).
	FrameBytes = 1460
	// frameSlots is a frame's transmission time in slot times:
	// (1518 bytes on the wire * 8 bits) / 512 bits per slot ≈ 24.
	frameSlots = 24
	// interFrameGapSlots approximates the 9.6 us IFG (rounded up to
	// one slot for the slotted model).
	interFrameGapSlots = 1
	// maxBackoffExp caps binary exponential backoff (802.3: 10).
	maxBackoffExp = 10
	// maxAttempts aborts a frame after 16 collisions (802.3).
	maxAttempts = 16
)

// station is one transmitter on the shared medium.
type station struct {
	queued   int   // frames waiting
	backoff  int64 // slots until next attempt allowed
	attempts int   // collisions suffered by the head frame

	sent      uint64
	collided  uint64
	aborted   uint64
	openLoop  bool    // background stations generate frames by rate
	frameProb float64 // per-slot arrival probability (open loop)
}

// Config parametrizes a load run.
type Config struct {
	// BackgroundStations is the number of competing traffic sources.
	BackgroundStations int
	// BackgroundLoad is the total offered background load as a
	// fraction of the raw medium bandwidth (e.g. 0.4 = 4 Mbps),
	// spread evenly over the background stations.
	BackgroundLoad float64
	// Pages is how many 8 KB pages the RMP client transfers.
	Pages int
	// Seed makes runs reproducible.
	Seed int64
}

// Result summarizes a run.
type Result struct {
	// PageTime is the mean wire time per 8 KB page seen by the RMP
	// client (excluding protocol processing).
	PageTime time.Duration
	// Collisions is the total collision count on the medium.
	Collisions uint64
	// AbortedFrames counts frames dropped after 16 attempts.
	AbortedFrames uint64
	// Utilization is the fraction of slots carrying good frames.
	Utilization float64
	// BackgroundThroughput is the fraction of offered background
	// frames actually delivered.
	BackgroundThroughput float64
}

// framesPerPage is how many frames one 8 KB page needs.
const framesPerPage = (8192 + FrameBytes - 1) / FrameBytes // 6

// RunLoad simulates an RMP client paging over an Ethernet shared with
// background stations. The client is closed-loop: it keeps exactly
// one page in flight (the pager's dedicated daemon is synchronous),
// queueing the next page's frames as soon as the previous page
// completes.
func RunLoad(cfg Config) Result {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Pages <= 0 {
		cfg.Pages = 500
	}

	stations := make([]*station, 1+cfg.BackgroundStations)
	rmp := &station{}
	stations[0] = rmp
	perStationProb := 0.0
	if cfg.BackgroundStations > 0 {
		// Offered load L of the medium means L/frameSlots frame
		// arrivals per slot across all background stations.
		perStationProb = cfg.BackgroundLoad / float64(frameSlots) / float64(cfg.BackgroundStations)
	}
	for i := 1; i < len(stations); i++ {
		stations[i] = &station{openLoop: true, frameProb: perStationProb}
	}

	var (
		slot          int64
		goodSlots     int64
		collisions    uint64
		aborted       uint64
		bgOffered     uint64
		bgDelivered   uint64
		pagesDone     int
		pageStart     int64
		totalPageTime int64 // in slots
	)

	rmp.queued = framesPerPage
	pageStart = 0

	for pagesDone < cfg.Pages {
		slot++
		if slot > 1<<31 {
			break // safety valve: medium totally collapsed
		}
		// Open-loop arrivals.
		for _, st := range stations[1:] {
			if rng.Float64() < st.frameProb {
				st.queued++
				bgOffered++
			}
		}
		// Who attempts in this slot?
		var ready []*station
		for _, st := range stations {
			if st.queued > 0 {
				if st.backoff > 0 {
					st.backoff--
				} else {
					ready = append(ready, st)
				}
			}
		}
		switch len(ready) {
		case 0:
			continue
		case 1:
			st := ready[0]
			// Successful transmission occupies the medium for
			// frameSlots; open-loop arrivals keep accumulating at the
			// other stations during that time (they sense carrier and
			// defer, queueing up for the moment the wire goes idle —
			// the 1-persistent behaviour that makes loaded CSMA/CD
			// collapse).
			busy := int64(frameSlots + interFrameGapSlots - 1)
			slot += busy
			goodSlots += frameSlots
			for _, bg := range stations[1:] {
				for k := int64(0); k < busy; k++ {
					if rng.Float64() < bg.frameProb {
						bg.queued++
						bgOffered++
					}
				}
			}
			// Other stations' backoff timers run down while the wire
			// is busy (they will re-attempt as soon as it goes idle).
			for _, other := range stations {
				if other != st && other.backoff > 0 {
					other.backoff -= busy
					if other.backoff < 0 {
						other.backoff = 0
					}
				}
			}
			st.queued--
			st.sent++
			st.attempts = 0
			if st.openLoop {
				bgDelivered++
			} else if st.queued == 0 {
				// Page complete.
				pagesDone++
				totalPageTime += slot - pageStart
				pageStart = slot
				if pagesDone < cfg.Pages {
					st.queued = framesPerPage
				}
			}
		default:
			// Collision: everyone backs off.
			collisions++
			for _, st := range ready {
				st.attempts++
				st.collided++
				if st.attempts >= maxAttempts {
					// 802.3 gives up; the paging protocol would retry
					// at a higher level, so the RMP requeues the frame
					// with a fresh attempt counter. Background frames
					// are dropped.
					if st.openLoop {
						st.queued--
						st.aborted++
						aborted++
					}
					st.attempts = 0
					continue
				}
				exp := st.attempts
				if exp > maxBackoffExp {
					exp = maxBackoffExp
				}
				st.backoff = int64(rng.Intn(1 << exp))
			}
		}
	}

	res := Result{
		Collisions:    collisions,
		AbortedFrames: aborted,
	}
	if pagesDone > 0 {
		res.PageTime = time.Duration(totalPageTime / int64(pagesDone) * int64(SlotTime))
	}
	if slot > 0 {
		res.Utilization = float64(goodSlots) / float64(slot)
	}
	if bgOffered > 0 {
		res.BackgroundThroughput = float64(bgDelivered) / float64(bgOffered)
	}
	return res
}

// UnloadedPageTime is the wire time per page on an idle Ethernet
// according to this model; the paper measures 9.64 ms (§4.4), which
// includes inter-frame gaps and MAC overheads this model reproduces
// structurally.
func UnloadedPageTime() time.Duration {
	r := RunLoad(Config{Pages: 200, Seed: 1})
	return r.PageTime
}
