package simnet

import (
	"testing"
	"time"
)

func TestUnloadedPageTimeNearPaper(t *testing.T) {
	// The paper measures 9.64 ms of wire time per 8 KB page (§4.4);
	// the frame-level model should land in the same regime (a page is
	// 6 frames of ~25 slots at 51.2 us).
	pt := UnloadedPageTime()
	if pt < 6*time.Millisecond || pt > 12*time.Millisecond {
		t.Fatalf("unloaded page time %v, want 6-12ms (paper: 9.64ms)", pt)
	}
}

func TestLoadDegradesPaging(t *testing.T) {
	base := RunLoad(Config{Pages: 300, Seed: 7})
	loaded := RunLoad(Config{Pages: 300, Seed: 7, BackgroundStations: 6, BackgroundLoad: 0.5})
	if loaded.PageTime <= base.PageTime {
		t.Fatalf("background load did not slow paging: %v vs %v", loaded.PageTime, base.PageTime)
	}
	if loaded.Collisions == 0 {
		t.Fatal("no collisions under contention")
	}
}

// TestThroughputCollapse reproduces §4.6: as offered load rises past
// what CSMA/CD can carry, collisions snowball and the RMP's effective
// bandwidth collapses (paging gets dramatically slower, not just
// proportionally slower).
func TestThroughputCollapse(t *testing.T) {
	light := RunLoad(Config{Pages: 200, Seed: 3, BackgroundStations: 4, BackgroundLoad: 0.2})
	heavy := RunLoad(Config{Pages: 200, Seed: 3, BackgroundStations: 12, BackgroundLoad: 1.2})
	if heavy.PageTime < 2*light.PageTime {
		t.Fatalf("no collapse: %v under heavy load vs %v under light", heavy.PageTime, light.PageTime)
	}
	if heavy.BackgroundThroughput >= light.BackgroundThroughput {
		t.Fatalf("background delivery did not degrade: %.2f vs %.2f",
			heavy.BackgroundThroughput, light.BackgroundThroughput)
	}
}

func TestUtilizationBounded(t *testing.T) {
	for _, load := range []float64{0, 0.3, 0.8, 1.5} {
		r := RunLoad(Config{Pages: 100, Seed: 9, BackgroundStations: 8, BackgroundLoad: load})
		if r.Utilization < 0 || r.Utilization > 1 {
			t.Fatalf("utilization %v out of range at load %v", r.Utilization, load)
		}
	}
}

func TestDeterministicBySeed(t *testing.T) {
	a := RunLoad(Config{Pages: 100, Seed: 5, BackgroundStations: 4, BackgroundLoad: 0.4})
	b := RunLoad(Config{Pages: 100, Seed: 5, BackgroundStations: 4, BackgroundLoad: 0.4})
	if a != b {
		t.Fatal("same seed, different results")
	}
	c := RunLoad(Config{Pages: 100, Seed: 6, BackgroundStations: 4, BackgroundLoad: 0.4})
	if a == c {
		t.Fatal("different seeds, identical results")
	}
}

func TestDefaultPages(t *testing.T) {
	r := RunLoad(Config{Seed: 2})
	if r.PageTime == 0 {
		t.Fatal("default run produced no page timing")
	}
}

func BenchmarkRunLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		RunLoad(Config{Pages: 100, Seed: int64(i), BackgroundStations: 6, BackgroundLoad: 0.5})
	}
}
