package simnet

import (
	"testing"
	"time"
)

func TestTokenRingUnloadedNearEthernet(t *testing.T) {
	// With no competition, both media move a page in a handful of ms.
	eth := RunLoad(Config{Pages: 200, Seed: 1})
	ring := RunTokenRing(Config{Pages: 200, Seed: 1})
	if ring.PageTime <= 0 {
		t.Fatal("no page time")
	}
	if ring.PageTime > 2*eth.PageTime {
		t.Fatalf("unloaded ring %v far slower than Ethernet %v", ring.PageTime, eth.PageTime)
	}
}

// TestTokenRingDegradesGracefully is the paper's §4.6 counterfactual:
// the ring must NOT collapse where CSMA/CD does.
func TestTokenRingDegradesGracefully(t *testing.T) {
	// In overload, CSMA/CD spirals into collisions (wasted slots,
	// aborted frames) while the ring keeps handing out its full
	// bandwidth round-robin: the RMP's share is bounded below by
	// 1/(stations+1) and nothing is wasted.
	cfg := Config{Pages: 200, Seed: 3, BackgroundStations: 12, BackgroundLoad: 1.2}
	eth := RunLoad(cfg)
	ring := RunTokenRing(cfg)
	// No collisions: the ring never wastes the medium or drops frames,
	// and delivers more of the offered background traffic. (The RMP's
	// own page time lands near its fair 1/(N+1) share on the ring; on
	// Ethernet it fluctuates wildly with the collision capture effect.)
	if ring.AbortedFrames != 0 {
		t.Fatalf("token ring aborted %d frames; it has no collisions", ring.AbortedFrames)
	}
	if eth.AbortedFrames == 0 {
		t.Fatal("overloaded Ethernet aborted nothing — collapse not exercised")
	}
	if ring.BackgroundThroughput <= eth.BackgroundThroughput {
		t.Fatalf("ring delivery %.2f should exceed Ethernet %.2f in overload",
			ring.BackgroundThroughput, eth.BackgroundThroughput)
	}
	// Bounded access delay: at most one frame per competing station
	// between the RMP's own frames (round-robin fairness).
	light := RunTokenRing(Config{Pages: 200, Seed: 3})
	bound := light.PageTime * time.Duration(2*(cfg.BackgroundStations+1))
	if ring.PageTime > bound {
		t.Fatalf("ring page time %v exceeds bounded-access estimate %v", ring.PageTime, bound)
	}
}

func TestTokenRingUtilizationHighUnderLoad(t *testing.T) {
	r := RunTokenRing(Config{Pages: 200, Seed: 5, BackgroundStations: 12, BackgroundLoad: 1.2})
	// No collisions: a saturated ring spends most slots on good frames
	// (only token-passing overhead is lost).
	if r.Utilization < 0.7 {
		t.Fatalf("saturated ring utilization %.2f, want > 0.7", r.Utilization)
	}
	e := RunLoad(Config{Pages: 200, Seed: 5, BackgroundStations: 12, BackgroundLoad: 1.2})
	if e.Utilization >= r.Utilization {
		t.Fatalf("CSMA/CD utilization %.2f should fall below ring %.2f under overload",
			e.Utilization, r.Utilization)
	}
}

func TestTokenRingDeterministic(t *testing.T) {
	a := RunTokenRing(Config{Pages: 50, Seed: 9, BackgroundStations: 3, BackgroundLoad: 0.5})
	b := RunTokenRing(Config{Pages: 50, Seed: 9, BackgroundStations: 3, BackgroundLoad: 0.5})
	if a != b {
		t.Fatal("same seed, different results")
	}
}
