package simnet

import (
	"testing"
	"time"
)

func TestMultiClientSingleMatchesBaseline(t *testing.T) {
	one := RunMultiClient(1, 200, 1)
	base := RunLoad(Config{Pages: 200, Seed: 1})
	if one.PageTimes[0] != base.PageTime {
		t.Fatalf("single multi-client %v != baseline %v", one.PageTimes[0], base.PageTime)
	}
	if one.Collisions != 0 {
		t.Fatal("one client collided with itself")
	}
}

func TestMultiClientScalesRoughlyLinearly(t *testing.T) {
	one := RunMultiClient(1, 150, 2).PageTimes[0]
	four := RunMultiClient(4, 150, 2)
	var worst time.Duration
	var sum time.Duration
	for _, pt := range four.PageTimes {
		sum += pt
		if pt > worst {
			worst = pt
		}
	}
	mean := sum / 4
	// Four closed-loop clients share the medium; the binary-
	// exponential-backoff capture effect lets a transmitting station
	// burst several frames, so the slowdown lands between 2x and the
	// strict round-robin 4x (plus collision waste).
	if mean < 2*one || mean > 8*one {
		t.Fatalf("4 clients mean page time %v, single %v: outside 2-8x", mean, one)
	}
	if four.Collisions == 0 {
		t.Fatal("no collisions among 4 contending clients")
	}
	// Fairness: the worst client is within 2x of the mean.
	if worst > 2*mean {
		t.Fatalf("unfair sharing: worst %v vs mean %v", worst, mean)
	}
}

func TestMultiClientUtilizationStaysHigh(t *testing.T) {
	// Closed-loop clients back off adaptively; the medium should stay
	// mostly busy with good frames even at 8 contenders.
	r := RunMultiClient(8, 100, 3)
	if r.Utilization < 0.5 {
		t.Fatalf("utilization %.2f with 8 paging clients", r.Utilization)
	}
}

func TestMultiClientDeterministic(t *testing.T) {
	a := RunMultiClient(3, 50, 7)
	b := RunMultiClient(3, 50, 7)
	if a.Collisions != b.Collisions || a.Utilization != b.Utilization {
		t.Fatal("same seed, different results")
	}
	for i := range a.PageTimes {
		if a.PageTimes[i] != b.PageTimes[i] {
			t.Fatal("same seed, different page times")
		}
	}
}
