package rs

import (
	"math/rand"
	"testing"
)

// The GF(256) kernels are the RS policy's hot path: every pageout
// multiplies one 8 KB page into m parity buffers, every multi-crash
// recovery decodes whole groups. These benchmarks pin their cost and
// the zero-allocation tests pin their allocation behaviour — the
// first installment of the ROADMAP allocation-free hot-path item.

const benchShard = 8192 // one page.Size shard

func benchCode(b *testing.B, k, m int) (*Code, [][]byte, []bool) {
	b.Helper()
	c, err := New(k, m)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	shards := make([][]byte, c.Total())
	for i := range shards {
		shards[i] = make([]byte, benchShard)
		if i < k {
			rng.Read(shards[i])
		}
	}
	if err := c.Encode(shards[:k], shards[k:]); err != nil {
		b.Fatal(err)
	}
	present := make([]bool, c.Total())
	return c, shards, present
}

func BenchmarkRSEncode4x2(b *testing.B) {
	c, shards, _ := benchCode(b, 4, 2)
	b.SetBytes(int64(4 * benchShard))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Encode(shards[:4], shards[4:]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRSEncodeOne4x2(b *testing.B) {
	c, shards, _ := benchCode(b, 4, 2)
	parity := shards[4:]
	b.SetBytes(benchShard)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.EncodeOne(parity, i%4, shards[i%4]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRSReconstruct4x2TwoLost(b *testing.B) {
	c, shards, present := benchCode(b, 4, 2)
	for i := range present {
		present[i] = true
	}
	present[1], present[3] = false, false // two data shards gone
	b.SetBytes(int64(2 * benchShard))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Reconstruct(shards, present); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRSMulAdd(b *testing.B) {
	src := make([]byte, benchShard)
	dst := make([]byte, benchShard)
	rand.New(rand.NewSource(2)).Read(src)
	b.SetBytes(benchShard)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mulAdd(dst, src, 0x53)
	}
}

// TestEncodeZeroAllocs / TestReconstructZeroAllocs gate the hot path:
// the kernels and the inversion scratch must not allocate per
// operation. testing.AllocsPerRun gives the exact figure; the bar is
// zero, not "a pinned constant".
func TestEncodeZeroAllocs(t *testing.T) {
	c, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	shards := make([][]byte, c.Total())
	for i := range shards {
		shards[i] = make([]byte, benchShard)
	}
	rand.New(rand.NewSource(3)).Read(shards[0])
	data, parity := shards[:4], shards[4:]
	if avg := testing.AllocsPerRun(100, func() {
		if err := c.Encode(data, parity); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("Encode allocates %.1f objects/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() {
		if err := c.EncodeOne(parity, 2, data[2]); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("EncodeOne allocates %.1f objects/op, want 0", avg)
	}
}

func TestReconstructZeroAllocs(t *testing.T) {
	c, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	shards := make([][]byte, c.Total())
	for i := range shards {
		shards[i] = make([]byte, benchShard)
		if i < 4 {
			rng.Read(shards[i])
		}
	}
	if err := c.Encode(shards[:4], shards[4:]); err != nil {
		t.Fatal(err)
	}
	present := []bool{true, false, true, false, true, true}
	if avg := testing.AllocsPerRun(100, func() {
		if err := c.Reconstruct(shards, present); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("Reconstruct allocates %.1f objects/op, want 0", avg)
	}
}
