// Package rs implements Reed-Solomon erasure coding over GF(2^8) for
// the RS(k,m) redundancy policy: k data shards plus m parity shards,
// any k of the k+m surviving shards reconstruct the rest. With m = 1
// it degenerates to the XOR parity the paper ships; with m > 1 the
// pager survives m simultaneous server crashes at (k+m)/k storage
// overhead — far below the m+1 copies mirroring would need.
//
// The field is GF(256) with the usual AES-adjacent polynomial x^8 +
// x^4 + x^3 + x^2 + 1 (0x11d). Scalar multiplies go through log/exp
// tables; the bulk encode/decode kernels use split low/high-nibble
// product tables (16 bytes per nibble per coefficient — 8 KB total
// instead of a 64 KB full product table, so both rows stay resident
// in L1) and the same eight-way unrolled loop idiom as page.XORInto,
// with the c == 1 path running the word-wide XOR kernel. Zero
// allocations throughout.
//
// The encode matrix is the systematic Cauchy construction: data shard
// i is the identity row e_i, parity row j is 1/(x_j + y_i) with
// x_j = k+j and y_i = i. Every square submatrix of a Cauchy matrix is
// nonsingular, so every k-subset of the k+m rows is invertible — the
// MDS property the decode path relies on. Decoding inverts the k×k
// matrix of the surviving rows (Gauss-Jordan over GF(256), in scratch
// buffers allocated once at New) and multiplies the survivors back
// through it.
//
// Code is pure math over caller-provided buffers: it decides nothing
// about placement and performs no I/O, mirroring the split between
// parity.Log and the pager.
package rs

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// MaxShards bounds k+m: the Cauchy points live in GF(256) and the
// construction needs k+m distinct field elements.
const MaxShards = 255

// gf tables, built once at package init.
var (
	logTbl [256]byte
	expTbl [510]byte // doubled so mul can skip the mod-255 reduction
	// mulLo[c][n] = c·n and mulHi[c][n] = c·(n<<4): split low/high
	// nibble product tables. GF(256) multiplication distributes over
	// XOR, so c·b = mulLo[c][b&15] ^ mulHi[c][b>>4]. Two 16-byte rows
	// per coefficient (8 KB for all 256) replace the 64 KB full product
	// table — the working set of one mulAdd drops from a 256-byte row
	// per coefficient in a 64 KB table to 32 bytes that L1 never
	// evicts.
	mulLo [256][16]byte
	mulHi [256][16]byte
)

func init() {
	// Generate GF(256) with generator 2 over polynomial 0x11d.
	x := 1
	for i := 0; i < 255; i++ {
		expTbl[i] = byte(x)
		expTbl[i+255] = byte(x)
		logTbl[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= 0x11d
		}
	}
	for c := 1; c < 256; c++ {
		for n := 1; n < 16; n++ {
			mulLo[c][n] = mulSlow(byte(c), byte(n))
			mulHi[c][n] = mulSlow(byte(c), byte(n<<4))
		}
	}
}

// mulSlow multiplies through the log/exp tables; used only to build
// the nibble tables and by the matrix math via mul.
func mulSlow(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTbl[int(logTbl[a])+int(logTbl[b])]
}

// mul multiplies two field elements.
func mul(a, b byte) byte { return mulSlow(a, b) }

// inv returns the multiplicative inverse of a (a must be nonzero).
func inv(a byte) byte {
	return expTbl[255-int(logTbl[a])]
}

// mulAdd computes dst ^= c·src over equal-length shards — the
// mul-accumulate kernel at the heart of encode and decode. It is the
// GF(256) generalization of page.XORInto and uses the same eight-way
// unrolled loop; c == 1 reduces exactly to XOR and c == 0 to a no-op.
func mulAdd(dst, src []byte, c byte) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("rs: mulAdd on %d/%d byte shards", len(dst), len(src)))
	}
	switch c {
	case 0:
		return
	case 1:
		xorInto(dst, src)
		return
	}
	lo, hi := &mulLo[c], &mulHi[c]
	n := len(src) &^ 7
	for i := 0; i < n; i += 8 {
		dst[i+0] ^= lo[src[i+0]&15] ^ hi[src[i+0]>>4]
		dst[i+1] ^= lo[src[i+1]&15] ^ hi[src[i+1]>>4]
		dst[i+2] ^= lo[src[i+2]&15] ^ hi[src[i+2]>>4]
		dst[i+3] ^= lo[src[i+3]&15] ^ hi[src[i+3]>>4]
		dst[i+4] ^= lo[src[i+4]&15] ^ hi[src[i+4]>>4]
		dst[i+5] ^= lo[src[i+5]&15] ^ hi[src[i+5]>>4]
		dst[i+6] ^= lo[src[i+6]&15] ^ hi[src[i+6]>>4]
		dst[i+7] ^= lo[src[i+7]&15] ^ hi[src[i+7]>>4]
	}
	for i := n; i < len(src); i++ {
		dst[i] ^= lo[src[i]&15] ^ hi[src[i]>>4]
	}
}

// xorInto is the c == 1 fast path: the same word-wide kernel as
// page.XORWords (8-byte loads/stores through encoding/binary),
// duplicated here so the package stays dependency-free.
func xorInto(dst, src []byte) {
	n := len(src)
	i := 0
	for ; i+32 <= n; i += 32 {
		d, s := dst[i:i+32:i+32], src[i:i+32:i+32]
		binary.LittleEndian.PutUint64(d[0:8], binary.LittleEndian.Uint64(d[0:8])^binary.LittleEndian.Uint64(s[0:8]))
		binary.LittleEndian.PutUint64(d[8:16], binary.LittleEndian.Uint64(d[8:16])^binary.LittleEndian.Uint64(s[8:16]))
		binary.LittleEndian.PutUint64(d[16:24], binary.LittleEndian.Uint64(d[16:24])^binary.LittleEndian.Uint64(s[16:24]))
		binary.LittleEndian.PutUint64(d[24:32], binary.LittleEndian.Uint64(d[24:32])^binary.LittleEndian.Uint64(s[24:32]))
	}
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:i+8], binary.LittleEndian.Uint64(dst[i:i+8])^binary.LittleEndian.Uint64(src[i:i+8]))
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
}

// mulAssign computes dst = c·src (overwriting dst).
func mulAssign(dst, src []byte, c byte) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("rs: mulAssign on %d/%d byte shards", len(dst), len(src)))
	}
	switch c {
	case 0:
		for i := range dst {
			dst[i] = 0
		}
		return
	case 1:
		copy(dst, src)
		return
	}
	lo, hi := &mulLo[c], &mulHi[c]
	n := len(src) &^ 7
	for i := 0; i < n; i += 8 {
		dst[i+0] = lo[src[i+0]&15] ^ hi[src[i+0]>>4]
		dst[i+1] = lo[src[i+1]&15] ^ hi[src[i+1]>>4]
		dst[i+2] = lo[src[i+2]&15] ^ hi[src[i+2]>>4]
		dst[i+3] = lo[src[i+3]&15] ^ hi[src[i+3]>>4]
		dst[i+4] = lo[src[i+4]&15] ^ hi[src[i+4]>>4]
		dst[i+5] = lo[src[i+5]&15] ^ hi[src[i+5]>>4]
		dst[i+6] = lo[src[i+6]&15] ^ hi[src[i+6]>>4]
		dst[i+7] = lo[src[i+7]&15] ^ hi[src[i+7]>>4]
	}
	for i := n; i < len(src); i++ {
		dst[i] = lo[src[i]&15] ^ hi[src[i]>>4]
	}
}

// Code is an RS(k,m) encoder/decoder. Not safe for concurrent use:
// Reconstruct shares scratch buffers across calls (the pager
// serializes through its single lock, like every other policy
// structure). Encode is read-only on the Code and safe to share.
type Code struct {
	k, m int
	// enc[j][i] is the coefficient of data shard i in parity row j.
	enc [][]byte

	// Decode scratch, allocated once so Reconstruct is allocation-free.
	mat    []byte // k×k matrix of the chosen survivor rows
	invMat []byte // its inverse
	chosen []int  // which shard index feeds each matrix row
}

// New builds an RS code with k data and m parity shards.
func New(k, m int) (*Code, error) {
	if k < 1 {
		return nil, errors.New("rs: need at least one data shard")
	}
	if m < 1 {
		return nil, errors.New("rs: need at least one parity shard")
	}
	if k+m > MaxShards {
		return nil, fmt.Errorf("rs: k+m = %d exceeds %d", k+m, MaxShards)
	}
	c := &Code{
		k:      k,
		m:      m,
		mat:    make([]byte, k*k),
		invMat: make([]byte, k*k),
		chosen: make([]int, k),
	}
	c.enc = make([][]byte, m)
	for j := 0; j < m; j++ {
		c.enc[j] = make([]byte, k)
		for i := 0; i < k; i++ {
			// Cauchy: 1/(x_j + y_i), x_j = k+j, y_i = i. In GF(2^8)
			// addition is XOR and the points are distinct, so the
			// denominator is never zero.
			c.enc[j][i] = inv(byte(k+j) ^ byte(i))
		}
	}
	return c, nil
}

// K returns the number of data shards.
func (c *Code) K() int { return c.k }

// M returns the number of parity shards.
func (c *Code) M() int { return c.m }

// Total returns k+m.
func (c *Code) Total() int { return c.k + c.m }

// checkShards validates a shard set: want rows, all non-nil rows of
// one equal length.
func checkShards(shards [][]byte, want int) (int, error) {
	if len(shards) != want {
		return 0, fmt.Errorf("rs: got %d shards, want %d", len(shards), want)
	}
	size := -1
	for i, s := range shards {
		if s == nil {
			continue
		}
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return 0, fmt.Errorf("rs: shard %d is %d bytes, want %d", i, len(s), size)
		}
	}
	if size <= 0 {
		return 0, errors.New("rs: no shard data")
	}
	return size, nil
}

// The cold-path error constructors live out of line, are kept out of
// line (//go:noinline), and take concrete ints: boxing fmt arguments
// escapes to the heap, and the escapegate holds the
// encode/reconstruct bodies to zero heap allocations.
//
//go:noinline
func errParitySize(p, d int) error {
	return fmt.Errorf("rs: parity shards are %d bytes, data %d", p, d)
}

//go:noinline
func errShardRange(i, max int) error {
	return fmt.Errorf("rs: data shard %d out of range 0..%d", i, max)
}

//go:noinline
func errParityCount(got, want int) error {
	return fmt.Errorf("rs: got %d parity shards, want %d", got, want)
}

//go:noinline
func errParityShardSize(j, p, d int) error {
	return fmt.Errorf("rs: parity shard %d is %d bytes, data %d", j, p, d)
}

//go:noinline
func errPresenceCount(got, want int) error {
	return fmt.Errorf("rs: got %d presence flags, want %d", got, want)
}

// Encode computes the m parity shards from the k data shards. parity
// buffers are caller-provided (and overwritten); all k+m shards must
// have equal length. Allocation-free.
//
//rmpvet:hotpath
func (c *Code) Encode(data, parity [][]byte) error {
	if _, err := checkShards(data, c.k); err != nil {
		return err
	}
	if _, err := checkShards(parity, c.m); err != nil {
		return err
	}
	if len(parity[0]) != len(data[0]) {
		return errParitySize(len(parity[0]), len(data[0]))
	}
	for j := 0; j < c.m; j++ {
		mulAssign(parity[j], data[0], c.enc[j][0])
		for i := 1; i < c.k; i++ {
			mulAdd(parity[j], data[i], c.enc[j][i])
		}
	}
	return nil
}

// EncodeOne accumulates data shard i's contribution into every parity
// buffer: parity[j] ^= enc[j][i]·data. Feeding shards 0..k-1 through
// EncodeOne over zeroed parity buffers equals one Encode call — the
// log-structured update path, where a group's members arrive one
// pageout at a time and holding all k in memory is unnecessary.
//
//rmpvet:hotpath
func (c *Code) EncodeOne(parity [][]byte, i int, data []byte) error {
	if i < 0 || i >= c.k {
		return errShardRange(i, c.k-1)
	}
	if len(parity) != c.m {
		return errParityCount(len(parity), c.m)
	}
	for j := 0; j < c.m; j++ {
		if len(parity[j]) != len(data) {
			return errParityShardSize(j, len(parity[j]), len(data))
		}
		mulAdd(parity[j], data, c.enc[j][i])
	}
	return nil
}

// ErrTooFewShards is returned by Reconstruct when fewer than k shards
// survive — the data is unrecoverable.
var ErrTooFewShards = errors.New("rs: fewer than k shards present")

// Reconstruct fills in the missing shards in place. shards holds all
// k+m rows in index order (data 0..k-1, parity k..k+m-1); present[i]
// reports whether row i holds valid bytes. Rows with present[i] ==
// false must still be allocated to the shard length — they are
// overwritten with the reconstruction. At least k rows must be
// present. Allocation-free: the decode matrix and its inverse live in
// scratch owned by the Code.
//
//rmpvet:hotpath
func (c *Code) Reconstruct(shards [][]byte, present []bool) error {
	if len(present) != c.k+c.m {
		return errPresenceCount(len(present), c.k+c.m)
	}
	if _, err := checkShards(shards, c.k+c.m); err != nil {
		return err
	}
	have := 0
	dataMissing := false
	for i, p := range present {
		if p {
			have++
		} else if i < c.k {
			dataMissing = true
		}
	}
	if have < c.k {
		return ErrTooFewShards
	}

	if dataMissing {
		// Pick the first k present rows and build their encode matrix.
		n := 0
		for i := 0; i < c.k+c.m && n < c.k; i++ {
			if present[i] {
				c.chosen[n] = i
				n++
			}
		}
		for r := 0; r < c.k; r++ {
			row := c.mat[r*c.k : (r+1)*c.k]
			src := c.chosen[r]
			if src < c.k {
				for i := range row {
					row[i] = 0
				}
				row[src] = 1
			} else {
				copy(row, c.enc[src-c.k])
			}
		}
		if err := c.invert(); err != nil {
			return err
		}
		// data_d = Σ_r invMat[d][r] · shards[chosen[r]].
		for d := 0; d < c.k; d++ {
			if present[d] {
				continue
			}
			out := shards[d]
			mulAssign(out, shards[c.chosen[0]], c.invMat[d*c.k])
			for r := 1; r < c.k; r++ {
				mulAdd(out, shards[c.chosen[r]], c.invMat[d*c.k+r])
			}
		}
	}

	// With the data rows complete, re-encode any missing parity rows.
	for j := 0; j < c.m; j++ {
		if present[c.k+j] {
			continue
		}
		out := shards[c.k+j]
		mulAssign(out, shards[0], c.enc[j][0])
		for i := 1; i < c.k; i++ {
			mulAdd(out, shards[i], c.enc[j][i])
		}
	}
	return nil
}

// invert computes invMat = mat^-1 by Gauss-Jordan elimination over
// GF(256). mat is destroyed. The Cauchy construction guarantees the
// matrix is invertible for every survivor choice, so a singular
// matrix means caller corruption, reported as an error rather than a
// panic.
func (c *Code) invert() error {
	k := c.k
	a, b := c.mat, c.invMat
	for i := range b {
		b[i] = 0
	}
	for i := 0; i < k; i++ {
		b[i*k+i] = 1
	}
	for col := 0; col < k; col++ {
		// Find a pivot row at or below col.
		pivot := -1
		for r := col; r < k; r++ {
			if a[r*k+col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return errors.New("rs: singular decode matrix")
		}
		if pivot != col {
			swapRows(a, k, pivot, col)
			swapRows(b, k, pivot, col)
		}
		// Scale the pivot row to 1.
		if p := a[col*k+col]; p != 1 {
			ip := inv(p)
			scaleRow(a, k, col, ip)
			scaleRow(b, k, col, ip)
		}
		// Eliminate the column from every other row.
		for r := 0; r < k; r++ {
			if r == col {
				continue
			}
			f := a[r*k+col]
			if f == 0 {
				continue
			}
			addRows(a, k, r, col, f)
			addRows(b, k, r, col, f)
		}
	}
	return nil
}

func swapRows(m []byte, k, r1, r2 int) {
	for i := 0; i < k; i++ {
		m[r1*k+i], m[r2*k+i] = m[r2*k+i], m[r1*k+i]
	}
}

func scaleRow(m []byte, k, r int, f byte) {
	for i := 0; i < k; i++ {
		m[r*k+i] = mul(m[r*k+i], f)
	}
}

// addRows folds f·row src into row dst.
func addRows(m []byte, k, dst, src int, f byte) {
	for i := 0; i < k; i++ {
		m[dst*k+i] ^= mul(f, m[src*k+i])
	}
}

// Verify recomputes the parity shards into scratch and reports
// whether they match the stored ones. Used by tests and the decode
// self-checks; allocates its scratch per call.
func (c *Code) Verify(shards [][]byte) (bool, error) {
	size, err := checkShards(shards, c.k+c.m)
	if err != nil {
		return false, err
	}
	for _, s := range shards {
		if s == nil {
			return false, errors.New("rs: nil shard in Verify")
		}
	}
	tmp := make([]byte, size)
	for j := 0; j < c.m; j++ {
		mulAssign(tmp, shards[0], c.enc[j][0])
		for i := 1; i < c.k; i++ {
			mulAdd(tmp, shards[i], c.enc[j][i])
		}
		for i, v := range tmp {
			if v != shards[c.k+j][i] {
				return false, nil
			}
		}
	}
	return true, nil
}
