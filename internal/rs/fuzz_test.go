package rs

import (
	"bytes"
	"testing"
)

// mulAddRef is the scalar reference for the nibble-table kernel: one
// log/exp multiply per byte, no tables beyond the generator's.
func mulAddRef(dst, src []byte, c byte) {
	for i := range src {
		dst[i] ^= mulSlow(c, src[i])
	}
}

// FuzzMulAddNibbleTables cross-checks the split low/high-nibble
// multiply-accumulate kernel against the log/exp reference on
// arbitrary coefficients, odd lengths and misaligned tails, plus the
// exact-aliasing dst == src case the XOR fast path takes.
func FuzzMulAddNibbleTables(f *testing.F) {
	f.Add([]byte{}, byte(0))
	f.Add([]byte{1}, byte(1))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7}, byte(2))
	f.Add(bytes.Repeat([]byte{0xff}, 33), byte(0x1d))
	f.Add(bytes.Repeat([]byte{0x5a}, 257), byte(255))
	f.Fuzz(func(t *testing.T, data []byte, c byte) {
		src := append([]byte(nil), data...)
		dst := make([]byte, len(src))
		for i := range dst {
			dst[i] = byte(i * 31)
		}

		want := append([]byte(nil), dst...)
		mulAddRef(want, src, c)
		got := append([]byte(nil), dst...)
		mulAdd(got, src, c)
		if !bytes.Equal(got, want) {
			t.Fatalf("mulAdd(c=%#x) diverges from log/exp reference", c)
		}

		wantAssign := make([]byte, len(src))
		for i := range wantAssign {
			wantAssign[i] = mulSlow(c, src[i])
		}
		gotAssign := append([]byte(nil), dst...)
		mulAssign(gotAssign, src, c)
		if !bytes.Equal(gotAssign, wantAssign) {
			t.Fatalf("mulAssign(c=%#x) diverges from log/exp reference", c)
		}

		// c == 1 aliasing: mulAdd(x, x, 1) runs the word-wide XOR path
		// and must zero the buffer like the byte reference.
		alias := append([]byte(nil), src...)
		mulAdd(alias, alias, 1)
		for i, v := range alias {
			if v != 0 {
				t.Fatalf("aliased mulAdd c=1 left %#x at byte %d", v, i)
			}
		}
	})
}

// TestNibbleTablesMatchFullProduct exhaustively pins the nibble
// decomposition: for every (c, b), lo[c][b&15]^hi[c][b>>4] equals the
// log/exp product. This is the identity the bulk kernels rely on.
func TestNibbleTablesMatchFullProduct(t *testing.T) {
	for c := 0; c < 256; c++ {
		for b := 0; b < 256; b++ {
			want := mulSlow(byte(c), byte(b))
			got := mulLo[c][b&15] ^ mulHi[c][b>>4]
			if got != want {
				t.Fatalf("nibble tables: %d·%d = %#x, want %#x", c, b, got, want)
			}
		}
	}
}
