package rs

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// fieldAxioms spot-checks the GF(256) tables: inverses, commutativity,
// distributivity over a full sweep of the field.
func TestFieldAxioms(t *testing.T) {
	for a := 1; a < 256; a++ {
		if got := mul(byte(a), inv(byte(a))); got != 1 {
			t.Fatalf("a·a^-1 = %d for a=%d", got, a)
		}
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		a, b, c := byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))
		if mul(a, b) != mul(b, a) {
			t.Fatalf("mul not commutative at %d,%d", a, b)
		}
		if mul(a, b^c) != mul(a, b)^mul(a, c) {
			t.Fatalf("mul not distributive at %d,%d,%d", a, b, c)
		}
	}
}

func TestKernelsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := make([]byte, 1000) // odd length exercises the tail loop
	dst := make([]byte, 1000)
	want := make([]byte, 1000)
	rng.Read(src)
	for _, c := range []byte{0, 1, 2, 3, 0x53, 0xca, 0xff} {
		rng.Read(dst)
		copy(want, dst)
		for i := range want {
			want[i] ^= mul(c, src[i])
		}
		mulAdd(dst, src, c)
		if !bytes.Equal(dst, want) {
			t.Fatalf("mulAdd c=%#x diverges from scalar", c)
		}
		for i := range want {
			want[i] = mul(c, src[i])
		}
		mulAssign(dst, src, c)
		if !bytes.Equal(dst, want) {
			t.Fatalf("mulAssign c=%#x diverges from scalar", c)
		}
	}
}

func TestNewRejectsBadShape(t *testing.T) {
	for _, tc := range [][2]int{{0, 1}, {1, 0}, {-1, 2}, {250, 6}} {
		if _, err := New(tc[0], tc[1]); err == nil {
			t.Fatalf("New(%d,%d) accepted", tc[0], tc[1])
		}
	}
	if _, err := New(253, 2); err != nil {
		t.Fatalf("New(253,2) rejected: %v", err)
	}
}

// makeShards builds a full random shard set with computed parity.
func makeShards(t *testing.T, c *Code, size int, seed int64) [][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	shards := make([][]byte, c.Total())
	for i := range shards {
		shards[i] = make([]byte, size)
		if i < c.K() {
			rng.Read(shards[i])
		}
	}
	if err := c.Encode(shards[:c.K()], shards[c.K():]); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return shards
}

// TestReconstructAllErasurePatterns: for several (k,m) shapes, every
// erasure pattern of up to m shards reconstructs every shard
// byte-identically — the MDS property, exhaustively.
func TestReconstructAllErasurePatterns(t *testing.T) {
	for _, shape := range [][2]int{{1, 1}, {2, 1}, {4, 2}, {5, 3}, {3, 4}} {
		k, m := shape[0], shape[1]
		t.Run(fmt.Sprintf("rs(%d,%d)", k, m), func(t *testing.T) {
			c, err := New(k, m)
			if err != nil {
				t.Fatal(err)
			}
			orig := makeShards(t, c, 512, int64(k*100+m))
			n := c.Total()
			// Iterate every subset of shards to erase (bitmask), keeping
			// those with at most m erased.
			for mask := 1; mask < 1<<n; mask++ {
				erased := 0
				for i := 0; i < n; i++ {
					if mask&(1<<i) != 0 {
						erased++
					}
				}
				if erased > m {
					continue
				}
				shards := make([][]byte, n)
				present := make([]bool, n)
				for i := 0; i < n; i++ {
					shards[i] = make([]byte, len(orig[i]))
					if mask&(1<<i) == 0 {
						copy(shards[i], orig[i])
						present[i] = true
					}
				}
				if err := c.Reconstruct(shards, present); err != nil {
					t.Fatalf("mask %#x: %v", mask, err)
				}
				for i := 0; i < n; i++ {
					if !bytes.Equal(shards[i], orig[i]) {
						t.Fatalf("mask %#x: shard %d wrong after reconstruction", mask, i)
					}
				}
			}
		})
	}
}

// TestReconstructTooFewShards: erasing m+1 shards must fail with
// ErrTooFewShards, never return garbage.
func TestReconstructTooFewShards(t *testing.T) {
	c, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	orig := makeShards(t, c, 256, 9)
	shards := make([][]byte, c.Total())
	present := make([]bool, c.Total())
	for i := range shards {
		shards[i] = make([]byte, 256)
		if i >= 3 {
			copy(shards[i], orig[i])
			present[i] = true
		}
	}
	if err := c.Reconstruct(shards, present); err != ErrTooFewShards {
		t.Fatalf("got %v, want ErrTooFewShards", err)
	}
}

// TestEncodeOneMatchesEncode: accumulating shard by shard over zeroed
// parity buffers equals one whole-group Encode — the log-structured
// update path.
func TestEncodeOneMatchesEncode(t *testing.T) {
	c, err := New(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	orig := makeShards(t, c, 384, 11)
	parity := make([][]byte, c.M())
	for j := range parity {
		parity[j] = make([]byte, 384)
	}
	for i := 0; i < c.K(); i++ {
		if err := c.EncodeOne(parity, i, orig[i]); err != nil {
			t.Fatal(err)
		}
	}
	for j := range parity {
		if !bytes.Equal(parity[j], orig[c.K()+j]) {
			t.Fatalf("accumulated parity %d diverges from Encode", j)
		}
	}
}

func TestVerify(t *testing.T) {
	c, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	shards := makeShards(t, c, 128, 17)
	if ok, err := c.Verify(shards); err != nil || !ok {
		t.Fatalf("verify clean set: ok=%v err=%v", ok, err)
	}
	shards[1][5] ^= 0xff
	if ok, _ := c.Verify(shards); ok {
		t.Fatal("verify accepted a corrupted shard")
	}
}

// TestSingleParityDegenerate: RS(k,1) is this code's analogue of the
// paper's single-parity policies — one erasure anywhere must decode.
// (The Cauchy coefficients are weighted, so the parity page is not the
// plain XOR, but the tolerance is the same.)
func TestSingleParityDegenerate(t *testing.T) {
	c, err := New(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	shards := makeShards(t, c, 64, 23)
	lost := 2
	saved := append([]byte(nil), shards[lost]...)
	present := make([]bool, c.Total())
	for i := range present {
		present[i] = i != lost
	}
	for b := range shards[lost] {
		shards[lost][b] = 0
	}
	if err := c.Reconstruct(shards, present); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(shards[lost], saved) {
		t.Fatal("rs(5,1) failed to reconstruct a single erasure")
	}
}
