// Package memnet is a deterministic in-memory network for tests: a
// registry of named listeners whose connections are net.Pipe pairs.
// It exists so unit and e2e tests can run whole client/server
// clusters without binding real loopback ports — no port-conflict
// flakes, no lingering TIME_WAIT sockets, and a dial to a dead
// address fails immediately and deterministically instead of after a
// kernel-dependent timeout.
//
// net.Pipe conns are synchronous (every write rendezvouses with a
// read) and support deadlines, so the adaptive-deadline and timeout
// machinery in internal/client behaves exactly as it does over TCP.
// Both client and server take an injectable dial/listen seam
// (client.Config.Dial, server.Config.Dial, server.Serve on any
// net.Listener), so a cluster moves onto memnet with no production
// code paths skipped.
package memnet

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"
)

// Network is one isolated in-memory network: addresses are plain
// strings, scoped to this Network. The zero value is not usable; call
// New.
type Network struct {
	mu sync.Mutex
	// listeners maps address -> accepting listener. Guarded by mu.
	listeners map[string]*listener
	// auto numbers automatically assigned addresses. Guarded by mu.
	auto int
	// partitions holds the directional block rules installed by
	// Partition, keyed source -> destination. The source "*" matches
	// every dialer (a node-level inbound outage). Guarded by mu.
	partitions map[[2]string]struct{}
	// racks labels addresses with a failure-domain name so correlated
	// rack failures can target whole domains. Guarded by mu.
	racks map[string]string
}

// New returns an empty in-memory network.
func New() *Network {
	return &Network{
		listeners:  make(map[string]*listener),
		partitions: make(map[[2]string]struct{}),
		racks:      make(map[string]string),
	}
}

// addr is a memnet endpoint address.
type addr string

func (a addr) Network() string { return "mem" }
func (a addr) String() string  { return string(a) }

// Listen registers a listener under the given address. An empty
// address (or one ending in ":0", mirroring net.Listen idiom) gets an
// automatically assigned unique name. Listening twice on the same
// address fails, and a closed listener frees its address for reuse —
// restart tests re-listen on the address they lost.
func (n *Network) Listen(address string) (net.Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if address == "" || address == ":0" {
		n.auto++
		address = fmt.Sprintf("mem-%d:0", n.auto)
	}
	if _, taken := n.listeners[address]; taken {
		return nil, fmt.Errorf("memnet: listen %s: address already in use", address)
	}
	l := &listener{
		net:    n,
		addr:   addr(address),
		accept: make(chan net.Conn),
		done:   make(chan struct{}),
	}
	n.listeners[address] = l
	return l, nil
}

// MustListen is Listen for test fixtures: it panics on error.
func (n *Network) MustListen(address string) net.Listener {
	l, err := n.Listen(address)
	if err != nil {
		panic(err)
	}
	return l
}

// Dial connects to the listener registered under address. A missing
// listener fails immediately with a connection-refused-style error —
// the deterministic analogue of dialing a dead server.
func (n *Network) Dial(address string) (net.Conn, error) {
	return n.DialTimeout(address, 0)
}

// DialTimeout is Dial bounded by timeout (0 means no bound). The
// signature matches the dial seam in client.Config and server.Config,
// so a Network plugs straight in: Dial: net.DialTimeout. Connections
// dialed this way carry the anonymous source name "client"; use
// DialFrom or DialerFrom when partitions must tell dialers apart.
func (n *Network) DialTimeout(address string, timeout time.Duration) (net.Conn, error) {
	return n.DialFrom("client", address, timeout)
}

// DialerFrom returns a dial function bound to a source name, with the
// client.Config.Dial / server.Config.Dial signature. Every node of a
// simulated cluster gets its own dialer, so directional partitions
// (Partition) can block that node's outbound dials specifically.
func (n *Network) DialerFrom(name string) func(string, time.Duration) (net.Conn, error) {
	return func(address string, timeout time.Duration) (net.Conn, error) {
		return n.DialFrom(name, address, timeout)
	}
}

// DialFrom is DialTimeout with an explicit source name: the resulting
// connection reports from as its local address, and partition rules
// from -> address (or * -> address) make the dial fail.
func (n *Network) DialFrom(from, address string, timeout time.Duration) (net.Conn, error) {
	n.mu.Lock()
	l := n.listeners[address]
	_, blocked := n.partitions[[2]string{from, address}]
	if !blocked {
		_, blocked = n.partitions[[2]string{"*", address}]
	}
	n.mu.Unlock()
	if l == nil || blocked {
		return nil, &net.OpError{Op: "dial", Net: "mem", Addr: addr(address),
			Err: fmt.Errorf("connection refused")}
	}
	return dialListener(l, from, address, timeout)
}

// dialListener establishes a connection against an already-looked-up
// listener. Split from DialFrom so the Kill race — a dial that fetched
// its listener before the crash and proceeds after it — is directly
// testable.
func dialListener(l *listener, from, address string, timeout time.Duration) (net.Conn, error) {
	client, server := net.Pipe()
	cc := &conn{Conn: client, local: addr(from), remote: addr(address), dialerEnd: true}
	sc := &conn{Conn: server, local: addr(address), remote: addr(from)}
	cc.peer, sc.peer = sc, cc
	cc.forget = func() { l.forget(cc) }
	sc.forget = func() { l.forget(sc) }
	// Track both ends before the handoff so a Kill racing the dial
	// cannot leave a half-established connection alive; track refuses
	// outright when the listener was already killed (its severAll pass
	// has run and would never see these conns).
	if !l.track(cc, sc) {
		cc.Close()
		sc.Close()
		return nil, &net.OpError{Op: "dial", Net: "mem", Addr: addr(address),
			Err: fmt.Errorf("connection refused")}
	}
	var expire <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		expire = t.C
	}
	select {
	case l.accept <- sc:
		return cc, nil
	case <-l.done:
		cc.Close()
		sc.Close()
		return nil, &net.OpError{Op: "dial", Net: "mem", Addr: addr(address),
			Err: fmt.Errorf("connection refused")}
	case <-expire:
		cc.Close()
		sc.Close()
		return nil, &net.OpError{Op: "dial", Net: "mem", Addr: addr(address),
			Err: timeoutError{}}
	}
}

// Partition installs a directional block from -> to: new dials whose
// source is from (or any source, when from is "*") to the listener at
// to fail with connection refused, and established connections that
// were dialed from -> to are severed. Returns how many connections it
// cut.
//
// The asymmetry is connection-granular: net.Pipe conns are synchronous
// rendezvous pairs, so a single direction of an established stream
// cannot be silently dropped without wedging both ends. Instead a
// connection belongs to the side that dialed it — Partition(A, B)
// kills A's connections into B and A's ability to make new ones, while
// connections B dialed into A (and B's new dials) keep flowing. That
// is exactly what a pager observes under a real asymmetric outage: A
// concludes B is dead while B still reaches A.
func (n *Network) Partition(from, to string) int {
	n.mu.Lock()
	n.partitions[[2]string{from, to}] = struct{}{}
	l := n.listeners[to]
	n.mu.Unlock()
	if l == nil {
		return 0
	}
	return l.severDialedFrom(from)
}

// Heal removes a directional block previously installed by Partition.
// Healing a rule that was never installed is a no-op, so schedules
// need not track overlap.
func (n *Network) Heal(from, to string) {
	n.mu.Lock()
	delete(n.partitions, [2]string{from, to})
	n.mu.Unlock()
}

// Partitioned reports whether a from -> to block (exact or wildcard)
// is currently installed.
func (n *Network) Partitioned(from, to string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.partitions[[2]string{from, to}]; ok {
		return true
	}
	_, ok := n.partitions[[2]string{"*", to}]
	return ok
}

// SetRack labels an address with a failure-domain (rack) name.
// Correlated failure schedules target racks; the label survives kills
// and restarts of the address.
func (n *Network) SetRack(address, rack string) {
	n.mu.Lock()
	n.racks[address] = rack
	n.mu.Unlock()
}

// Rack returns the failure-domain label of an address ("" if unset).
func (n *Network) Rack(address string) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.racks[address]
}

// RackMembers returns every address labelled with rack, sorted, so
// schedules iterate failure domains deterministically.
func (n *Network) RackMembers(rack string) []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	var out []string
	for a, r := range n.racks {
		if r == rack {
			out = append(out, a)
		}
	}
	sort.Strings(out)
	return out
}

// Kill simulates a machine crash at address: the listener stops
// accepting, its address is freed, and every established connection
// to it is severed at once. Unlike a bare listener Close — which
// refuses new connections but lets established ones drain — Kill is
// the in-memory analogue of pulling a server's power cord mid-frame.
// It returns the number of connections severed. Killing an unknown
// (or already dead) address is a no-op, so correlated kill schedules
// need not track which victims overlap.
func (n *Network) Kill(address string) int {
	n.mu.Lock()
	l := n.listeners[address]
	n.mu.Unlock()
	if l == nil {
		return 0
	}
	l.Close()
	return l.severAll()
}

// KillRack kills every address labelled with rack (SetRack) — a whole
// failure domain losing power in one instant. Returns connections
// severed across all members.
func (n *Network) KillRack(rack string) int {
	severed := 0
	for _, a := range n.RackMembers(rack) {
		severed += n.Kill(a)
	}
	return severed
}

// timeoutError satisfies net.Error with Timeout() == true, so the
// client's timeout classification treats a memnet dial timeout like a
// TCP one.
type timeoutError struct{}

func (timeoutError) Error() string   { return "i/o timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

// listener implements net.Listener over the network's registry.
type listener struct {
	net    *Network
	addr   addr
	accept chan net.Conn
	// done is closed by Close; it unblocks Accept and pending dials.
	done      chan struct{}
	closeOnce sync.Once

	// connMu guards conns and killed: both pipe ends of every
	// connection dialed through this listener, so Kill can sever them
	// all at once.
	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	// killed latches once severAll has run. A dial that fetched this
	// listener before the kill may still be in flight; track refuses
	// it, so no connection can be established after the crash instant.
	// Guarded by connMu.
	killed bool
}

// track registers both ends of an in-flight dial. It reports false —
// and registers nothing — when the listener has been killed: the
// severAll pass has already run, so anything tracked now would
// outlive the crash.
func (l *listener) track(cs ...*conn) bool {
	l.connMu.Lock()
	defer l.connMu.Unlock()
	if l.killed {
		return false
	}
	if l.conns == nil {
		l.conns = make(map[net.Conn]struct{})
	}
	for _, c := range cs {
		l.conns[c] = struct{}{}
	}
	return true
}

func (l *listener) forget(c net.Conn) {
	l.connMu.Lock()
	delete(l.conns, c)
	l.connMu.Unlock()
}

// severAll closes every live connection dialed through this listener,
// marks it killed so late-racing dials cannot establish, and reports
// how many pipe pairs it cut.
func (l *listener) severAll() int {
	l.connMu.Lock()
	l.killed = true
	conns := make([]net.Conn, 0, len(l.conns))
	for c := range l.conns {
		conns = append(conns, c)
	}
	l.conns = nil
	l.connMu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	return len(conns) / 2
}

// severDialedFrom closes every connection whose dialing end carries
// the source name from ("*" matches all) and reports how many pipe
// pairs it cut. Both ends of a matching pair die — the blocked
// direction carries the requests, so the stream is unusable either
// way — but the listener itself stays alive for dials from other
// sources.
func (l *listener) severDialedFrom(from string) int {
	l.connMu.Lock()
	var victims []*conn
	for c := range l.conns {
		mc, ok := c.(*conn)
		if !ok || !mc.dialerEnd {
			continue
		}
		if from == "*" || mc.local.String() == from {
			victims = append(victims, mc)
		}
	}
	l.connMu.Unlock()
	for _, c := range victims {
		c.Close()
		if c.peer != nil {
			c.peer.Close()
		}
	}
	return len(victims)
}

func (l *listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *listener) Close() error {
	l.closeOnce.Do(func() {
		close(l.done)
		l.net.mu.Lock()
		if l.net.listeners[string(l.addr)] == l {
			delete(l.net.listeners, string(l.addr))
		}
		l.net.mu.Unlock()
	})
	return nil
}

func (l *listener) Addr() net.Addr { return l.addr }

// conn wraps a pipe end with meaningful endpoint addresses and
// unregisters itself from its listener's live-connection set on Close.
type conn struct {
	net.Conn
	local, remote net.Addr
	// dialerEnd marks the side that initiated the dial; directional
	// partitions sever by dialing side. peer is the opposite pipe end,
	// so severing one end can cut both. Both are set once at dial time.
	dialerEnd  bool
	peer       *conn
	forget     func()
	forgetOnce sync.Once
}

func (c *conn) Close() error {
	c.forgetOnce.Do(func() {
		if c.forget != nil {
			c.forget()
		}
	})
	return c.Conn.Close()
}

func (c *conn) LocalAddr() net.Addr  { return c.local }
func (c *conn) RemoteAddr() net.Addr { return c.remote }

// WriteBuffers is the vectored-write hook (wire.BuffersWriter,
// satisfied structurally): the in-memory analogue of writev. A real
// TCP conn receives a wire.FrameWriter flush as one scatter/gather
// syscall via net.Buffers; a net.Pipe write rendezvouses with a
// reader per Write call, so here the vector is coalesced into a
// single buffer (one test-only copy) and shipped as one Write — the
// batching behavior production sees, with one rendezvous per flush
// instead of one per frame. Consumes v the way net.Buffers.WriteTo
// does: written elements are nil-ed and the slice advances.
func (c *conn) WriteBuffers(v *net.Buffers) (int64, error) {
	total := 0
	for _, b := range *v {
		total += len(b)
	}
	buf := make([]byte, 0, total)
	for _, b := range *v {
		buf = append(buf, b...)
	}
	n, err := c.Write(buf)
	// Consume the written prefix of the vector.
	left := int64(n)
	for len(*v) > 0 {
		b := (*v)[0]
		if int64(len(b)) > left {
			(*v)[0] = b[left:]
			break
		}
		left -= int64(len(b))
		(*v)[0] = nil
		*v = (*v)[1:]
	}
	return int64(n), err
}
