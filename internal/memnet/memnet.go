// Package memnet is a deterministic in-memory network for tests: a
// registry of named listeners whose connections are net.Pipe pairs.
// It exists so unit and e2e tests can run whole client/server
// clusters without binding real loopback ports — no port-conflict
// flakes, no lingering TIME_WAIT sockets, and a dial to a dead
// address fails immediately and deterministically instead of after a
// kernel-dependent timeout.
//
// net.Pipe conns are synchronous (every write rendezvouses with a
// read) and support deadlines, so the adaptive-deadline and timeout
// machinery in internal/client behaves exactly as it does over TCP.
// Both client and server take an injectable dial/listen seam
// (client.Config.Dial, server.Config.Dial, server.Serve on any
// net.Listener), so a cluster moves onto memnet with no production
// code paths skipped.
package memnet

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// Network is one isolated in-memory network: addresses are plain
// strings, scoped to this Network. The zero value is not usable; call
// New.
type Network struct {
	mu sync.Mutex
	// listeners maps address -> accepting listener. Guarded by mu.
	listeners map[string]*listener
	// auto numbers automatically assigned addresses. Guarded by mu.
	auto int
}

// New returns an empty in-memory network.
func New() *Network {
	return &Network{listeners: make(map[string]*listener)}
}

// addr is a memnet endpoint address.
type addr string

func (a addr) Network() string { return "mem" }
func (a addr) String() string  { return string(a) }

// Listen registers a listener under the given address. An empty
// address (or one ending in ":0", mirroring net.Listen idiom) gets an
// automatically assigned unique name. Listening twice on the same
// address fails, and a closed listener frees its address for reuse —
// restart tests re-listen on the address they lost.
func (n *Network) Listen(address string) (net.Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if address == "" || address == ":0" {
		n.auto++
		address = fmt.Sprintf("mem-%d:0", n.auto)
	}
	if _, taken := n.listeners[address]; taken {
		return nil, fmt.Errorf("memnet: listen %s: address already in use", address)
	}
	l := &listener{
		net:    n,
		addr:   addr(address),
		accept: make(chan net.Conn),
		done:   make(chan struct{}),
	}
	n.listeners[address] = l
	return l, nil
}

// MustListen is Listen for test fixtures: it panics on error.
func (n *Network) MustListen(address string) net.Listener {
	l, err := n.Listen(address)
	if err != nil {
		panic(err)
	}
	return l
}

// Dial connects to the listener registered under address. A missing
// listener fails immediately with a connection-refused-style error —
// the deterministic analogue of dialing a dead server.
func (n *Network) Dial(address string) (net.Conn, error) {
	return n.DialTimeout(address, 0)
}

// DialTimeout is Dial bounded by timeout (0 means no bound). The
// signature matches the dial seam in client.Config and server.Config,
// so a Network plugs straight in: Dial: net.DialTimeout.
func (n *Network) DialTimeout(address string, timeout time.Duration) (net.Conn, error) {
	n.mu.Lock()
	l := n.listeners[address]
	n.mu.Unlock()
	if l == nil {
		return nil, &net.OpError{Op: "dial", Net: "mem", Addr: addr(address),
			Err: fmt.Errorf("connection refused")}
	}
	client, server := net.Pipe()
	cc := &conn{Conn: client, local: addr("client"), remote: addr(address)}
	sc := &conn{Conn: server, local: addr(address), remote: addr("client")}
	cc.forget = func() { l.forget(cc) }
	sc.forget = func() { l.forget(sc) }
	// Track both ends before the handoff so a Kill racing the dial
	// cannot leave a half-established connection alive.
	l.track(cc, sc)
	var expire <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		expire = t.C
	}
	select {
	case l.accept <- sc:
		return cc, nil
	case <-l.done:
		cc.Close()
		sc.Close()
		return nil, &net.OpError{Op: "dial", Net: "mem", Addr: addr(address),
			Err: fmt.Errorf("connection refused")}
	case <-expire:
		cc.Close()
		sc.Close()
		return nil, &net.OpError{Op: "dial", Net: "mem", Addr: addr(address),
			Err: timeoutError{}}
	}
}

// Kill simulates a machine crash at address: the listener stops
// accepting, its address is freed, and every established connection
// to it is severed at once. Unlike a bare listener Close — which
// refuses new connections but lets established ones drain — Kill is
// the in-memory analogue of pulling a server's power cord mid-frame.
// It returns the number of connections severed. Killing an unknown
// (or already dead) address is a no-op, so correlated kill schedules
// need not track which victims overlap.
func (n *Network) Kill(address string) int {
	n.mu.Lock()
	l := n.listeners[address]
	n.mu.Unlock()
	if l == nil {
		return 0
	}
	l.Close()
	return l.severAll()
}

// timeoutError satisfies net.Error with Timeout() == true, so the
// client's timeout classification treats a memnet dial timeout like a
// TCP one.
type timeoutError struct{}

func (timeoutError) Error() string   { return "i/o timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

// listener implements net.Listener over the network's registry.
type listener struct {
	net    *Network
	addr   addr
	accept chan net.Conn
	// done is closed by Close; it unblocks Accept and pending dials.
	done      chan struct{}
	closeOnce sync.Once

	// connMu guards conns: both pipe ends of every connection dialed
	// through this listener, so Kill can sever them all at once.
	connMu sync.Mutex
	conns  map[net.Conn]struct{}
}

func (l *listener) track(cs ...net.Conn) {
	l.connMu.Lock()
	defer l.connMu.Unlock()
	if l.conns == nil {
		l.conns = make(map[net.Conn]struct{})
	}
	for _, c := range cs {
		l.conns[c] = struct{}{}
	}
}

func (l *listener) forget(c net.Conn) {
	l.connMu.Lock()
	delete(l.conns, c)
	l.connMu.Unlock()
}

// severAll closes every live connection dialed through this listener
// and reports how many pipe pairs it cut.
func (l *listener) severAll() int {
	l.connMu.Lock()
	conns := make([]net.Conn, 0, len(l.conns))
	for c := range l.conns {
		conns = append(conns, c)
	}
	l.conns = nil
	l.connMu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	return len(conns) / 2
}

func (l *listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *listener) Close() error {
	l.closeOnce.Do(func() {
		close(l.done)
		l.net.mu.Lock()
		if l.net.listeners[string(l.addr)] == l {
			delete(l.net.listeners, string(l.addr))
		}
		l.net.mu.Unlock()
	})
	return nil
}

func (l *listener) Addr() net.Addr { return l.addr }

// conn wraps a pipe end with meaningful endpoint addresses and
// unregisters itself from its listener's live-connection set on Close.
type conn struct {
	net.Conn
	local, remote net.Addr
	forget        func()
	forgetOnce    sync.Once
}

func (c *conn) Close() error {
	c.forgetOnce.Do(func() {
		if c.forget != nil {
			c.forget()
		}
	})
	return c.Conn.Close()
}

func (c *conn) LocalAddr() net.Addr  { return c.local }
func (c *conn) RemoteAddr() net.Addr { return c.remote }

// WriteBuffers is the vectored-write hook (wire.BuffersWriter,
// satisfied structurally): the in-memory analogue of writev. A real
// TCP conn receives a wire.FrameWriter flush as one scatter/gather
// syscall via net.Buffers; a net.Pipe write rendezvouses with a
// reader per Write call, so here the vector is coalesced into a
// single buffer (one test-only copy) and shipped as one Write — the
// batching behavior production sees, with one rendezvous per flush
// instead of one per frame. Consumes v the way net.Buffers.WriteTo
// does: written elements are nil-ed and the slice advances.
func (c *conn) WriteBuffers(v *net.Buffers) (int64, error) {
	total := 0
	for _, b := range *v {
		total += len(b)
	}
	buf := make([]byte, 0, total)
	for _, b := range *v {
		buf = append(buf, b...)
	}
	n, err := c.Write(buf)
	// Consume the written prefix of the vector.
	left := int64(n)
	for len(*v) > 0 {
		b := (*v)[0]
		if int64(len(b)) > left {
			(*v)[0] = b[left:]
			break
		}
		left -= int64(len(b))
		(*v)[0] = nil
		*v = (*v)[1:]
	}
	return int64(n), err
}
