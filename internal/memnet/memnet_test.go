package memnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

func TestDialAndEcho(t *testing.T) {
	n := New()
	ln := n.MustListen("srv:1")
	done := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		_, err = io.Copy(c, c)
		done <- err
	}()
	c, err := n.Dial("srv:1")
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("hello over memnet")
	go c.Write(msg)
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echoed %q", got)
	}
	c.Close()
	<-done
}

func TestDialUnknownAddressRefused(t *testing.T) {
	n := New()
	if _, err := n.Dial("nobody:1"); err == nil {
		t.Fatal("dial of unregistered address succeeded")
	}
}

func TestDialTimesOutWhenNotAccepting(t *testing.T) {
	n := New()
	n.MustListen("busy:1") // never calls Accept
	start := time.Now()
	_, err := n.DialTimeout("busy:1", 20*time.Millisecond)
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("got %v, want a net.Error timeout", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("dial timeout took too long")
	}
}

func TestCloseUnblocksAcceptAndFreesAddress(t *testing.T) {
	n := New()
	ln := n.MustListen("srv:1")
	done := make(chan error, 1)
	go func() {
		_, err := ln.Accept()
		done <- err
	}()
	ln.Close()
	if err := <-done; !errors.Is(err, net.ErrClosed) {
		t.Fatalf("Accept after Close: %v, want net.ErrClosed", err)
	}
	if _, err := n.Dial("srv:1"); err == nil {
		t.Fatal("dial of closed listener succeeded")
	}
	// The address is free again: a restarted server re-binds it.
	ln2, err := n.Listen("srv:1")
	if err != nil {
		t.Fatalf("re-listen after close: %v", err)
	}
	ln2.Close()
}

func TestDuplicateListenRejected(t *testing.T) {
	n := New()
	ln := n.MustListen("srv:1")
	defer ln.Close()
	if _, err := n.Listen("srv:1"); err == nil {
		t.Fatal("duplicate listen succeeded")
	}
}

func TestAutoAddressesAreUnique(t *testing.T) {
	n := New()
	a := n.MustListen("")
	b := n.MustListen(":0")
	defer a.Close()
	defer b.Close()
	if a.Addr().String() == b.Addr().String() {
		t.Fatalf("auto addresses collide: %s", a.Addr())
	}
}

// TestKillSeversEstablishedConns: Kill is a machine crash, not a
// graceful stop — established connections die with the listener, new
// dials are refused, and the address frees for a restart.
func TestKillSeversEstablishedConns(t *testing.T) {
	n := New()
	ln := n.MustListen("srv:1")
	accepted := make(chan net.Conn, 2)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			accepted <- c
		}
	}()
	var clients []net.Conn
	for i := 0; i < 2; i++ {
		c, err := n.Dial("srv:1")
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}
	if got := n.Kill("srv:1"); got != 2 {
		t.Fatalf("Kill severed %d connections, want 2", got)
	}
	for i, c := range clients {
		c.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := c.Read(make([]byte, 1)); err == nil {
			t.Fatalf("client %d read from killed server succeeded", i)
		}
	}
	for len(accepted) > 0 {
		c := <-accepted
		c.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := c.Read(make([]byte, 1)); err == nil {
			t.Fatal("server-side read on killed conn succeeded")
		}
	}
	if _, err := n.Dial("srv:1"); err == nil {
		t.Fatal("dial to killed server succeeded")
	}
	if n.Kill("srv:1") != 0 {
		t.Fatal("double kill severed connections")
	}
	// The crashed server can restart on its old address.
	ln2, err := n.Listen("srv:1")
	if err != nil {
		t.Fatalf("re-listen after kill: %v", err)
	}
	ln2.Close()
}

// TestCloseLeavesEstablishedConnsAlive pins the contrast with Kill: a
// plain listener Close stops new dials but lets live conns drain.
func TestCloseLeavesEstablishedConnsAlive(t *testing.T) {
	n := New()
	ln := n.MustListen("srv:1")
	srvSide := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			srvSide <- c
		}
	}()
	c, err := n.Dial("srv:1")
	if err != nil {
		t.Fatal(err)
	}
	sc := <-srvSide
	ln.Close()
	go sc.Write([]byte("x"))
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := c.Read(buf); err != nil || buf[0] != 'x' {
		t.Fatalf("established conn dead after graceful close: %v", err)
	}
	c.Close()
	sc.Close()
}

func TestDeadlinesWork(t *testing.T) {
	n := New()
	ln := n.MustListen("srv:1")
	go ln.Accept() // accept and hold without reading
	c, err := n.Dial("srv:1")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	buf := make([]byte, 1)
	_, err = c.Read(buf)
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("read past deadline: %v, want timeout", err)
	}
}

// echoListener accepts connections forever and echoes one byte back
// on each, so partition tests can prove which directions still flow.
func echoListener(t *testing.T, n *Network, address string) net.Listener {
	t.Helper()
	ln := n.MustListen(address)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 1)
				for {
					if _, err := c.Read(buf); err != nil {
						return
					}
					if _, err := c.Write(buf); err != nil {
						return
					}
				}
			}(c)
		}
	}()
	return ln
}

// roundTrip sends one byte and waits for the echo.
func roundTrip(c net.Conn) error {
	c.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Write([]byte{'p'}); err != nil {
		return err
	}
	_, err := c.Read(make([]byte, 1))
	return err
}

// TestPartitionAsymmetric: Partition(A, B) blocks A's dials into B and
// severs A's established conns into B, while B's conns into A — and
// B's new dials into A — keep flowing.
func TestPartitionAsymmetric(t *testing.T) {
	n := New()
	lnA := echoListener(t, n, "a:1")
	lnB := echoListener(t, n, "b:1")
	defer lnA.Close()
	defer lnB.Close()

	aToB, err := n.DialFrom("a:1", "b:1", 0)
	if err != nil {
		t.Fatal(err)
	}
	bToA, err := n.DialFrom("b:1", "a:1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := roundTrip(aToB); err != nil {
		t.Fatalf("pre-partition a->b: %v", err)
	}
	if err := roundTrip(bToA); err != nil {
		t.Fatalf("pre-partition b->a: %v", err)
	}

	if cut := n.Partition("a:1", "b:1"); cut != 1 {
		t.Fatalf("Partition severed %d conns, want 1", cut)
	}
	// The severed direction: established conn dead, new dials refused.
	if err := roundTrip(aToB); err == nil {
		t.Fatal("a->b conn survived the partition")
	}
	if _, err := n.DialFrom("a:1", "b:1", 0); err == nil {
		t.Fatal("a->b dial succeeded through the partition")
	}
	// The healthy direction: the old conn still echoes and new dials
	// succeed — the partition is asymmetric.
	if err := roundTrip(bToA); err != nil {
		t.Fatalf("b->a conn killed by an a->b partition: %v", err)
	}
	c2, err := n.DialFrom("b:1", "a:1", 0)
	if err != nil {
		t.Fatalf("b->a dial blocked by an a->b partition: %v", err)
	}
	c2.Close()
	// Third parties are untouched.
	c3, err := n.DialFrom("c", "b:1", 0)
	if err != nil {
		t.Fatalf("c->b dial blocked by an a->b partition: %v", err)
	}
	c3.Close()

	n.Heal("a:1", "b:1")
	c4, err := n.DialFrom("a:1", "b:1", 0)
	if err != nil {
		t.Fatalf("a->b dial refused after heal: %v", err)
	}
	if err := roundTrip(c4); err != nil {
		t.Fatalf("a->b after heal: %v", err)
	}
	c4.Close()
	bToA.Close()
}

// TestPartitionWildcard: Partition("*", B) isolates B's inbound side —
// every established conn into B dies and every dial is refused,
// whatever its source — while B's own outbound dials still flow.
func TestPartitionWildcard(t *testing.T) {
	n := New()
	lnA := echoListener(t, n, "a:1")
	lnB := echoListener(t, n, "b:1")
	defer lnA.Close()
	defer lnB.Close()

	in1, err := n.DialFrom("x", "b:1", 0)
	if err != nil {
		t.Fatal(err)
	}
	in2, err := n.DialFrom("y", "b:1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if cut := n.Partition("*", "b:1"); cut != 2 {
		t.Fatalf("wildcard partition severed %d conns, want 2", cut)
	}
	for i, c := range []net.Conn{in1, in2} {
		if err := roundTrip(c); err == nil {
			t.Fatalf("inbound conn %d survived the isolation", i)
		}
	}
	if _, err := n.DialFrom("z", "b:1", 0); err == nil {
		t.Fatal("dial into isolated node succeeded")
	}
	if !n.Partitioned("anything", "b:1") {
		t.Fatal("Partitioned does not report the wildcard rule")
	}
	// The isolated node's outbound direction is untouched.
	out, err := n.DialFrom("b:1", "a:1", 0)
	if err != nil {
		t.Fatalf("outbound dial from isolated node refused: %v", err)
	}
	if err := roundTrip(out); err != nil {
		t.Fatalf("outbound conn from isolated node: %v", err)
	}
	out.Close()

	n.Heal("*", "b:1")
	c, err := n.DialFrom("z", "b:1", 0)
	if err != nil {
		t.Fatalf("dial refused after heal: %v", err)
	}
	c.Close()
}

// TestKillSeversRacingDial is the regression test for the Kill race:
// a dial that looked its listener up before the crash but establishes
// after severAll ran used to slip through and stay connected to a
// "dead" server. track must refuse it.
func TestKillSeversRacingDial(t *testing.T) {
	n := New()
	ln := n.MustListen("srv:1")
	go func() {
		for {
			if _, err := ln.Accept(); err != nil {
				return
			}
		}
	}()
	// The racing dial's listener lookup happens here, pre-kill.
	n.mu.Lock()
	stale := n.listeners["srv:1"]
	n.mu.Unlock()

	if _, err := n.Dial("srv:1"); err != nil {
		t.Fatalf("sanity dial: %v", err)
	}
	n.Kill("srv:1")

	// The dial now proceeds with its stale listener pointer — after
	// the kill's severAll pass. It must fail, not establish.
	if c, err := dialListener(stale, "client", "srv:1", time.Second); err == nil {
		c.Close()
		t.Fatal("dial established a connection to a killed server")
	}
}

// TestRackLabels: rack labelling and correlated rack kills.
func TestRackLabels(t *testing.T) {
	n := New()
	for i, rack := range []string{"r0", "r1", "r0"} {
		addr := []string{"a:1", "b:1", "c:1"}[i]
		echoListener(t, n, addr)
		n.SetRack(addr, rack)
	}
	if got := n.RackMembers("r0"); len(got) != 2 || got[0] != "a:1" || got[1] != "c:1" {
		t.Fatalf("RackMembers(r0) = %v", got)
	}
	if n.Rack("b:1") != "r1" {
		t.Fatalf("Rack(b:1) = %q", n.Rack("b:1"))
	}
	n.KillRack("r0")
	if _, err := n.Dial("a:1"); err == nil {
		t.Fatal("dial to killed rack member a:1 succeeded")
	}
	if _, err := n.Dial("c:1"); err == nil {
		t.Fatal("dial to killed rack member c:1 succeeded")
	}
	if c, err := n.Dial("b:1"); err != nil {
		t.Fatalf("rack kill of r0 took down r1 member: %v", err)
	} else {
		c.Close()
	}
	// Labels survive the kill: a restarted member is still in its rack.
	if n.Rack("a:1") != "r0" {
		t.Fatal("rack label lost after kill")
	}
}
