package memnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

func TestDialAndEcho(t *testing.T) {
	n := New()
	ln := n.MustListen("srv:1")
	done := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer c.Close()
		_, err = io.Copy(c, c)
		done <- err
	}()
	c, err := n.Dial("srv:1")
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("hello over memnet")
	go c.Write(msg)
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echoed %q", got)
	}
	c.Close()
	<-done
}

func TestDialUnknownAddressRefused(t *testing.T) {
	n := New()
	if _, err := n.Dial("nobody:1"); err == nil {
		t.Fatal("dial of unregistered address succeeded")
	}
}

func TestDialTimesOutWhenNotAccepting(t *testing.T) {
	n := New()
	n.MustListen("busy:1") // never calls Accept
	start := time.Now()
	_, err := n.DialTimeout("busy:1", 20*time.Millisecond)
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("got %v, want a net.Error timeout", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("dial timeout took too long")
	}
}

func TestCloseUnblocksAcceptAndFreesAddress(t *testing.T) {
	n := New()
	ln := n.MustListen("srv:1")
	done := make(chan error, 1)
	go func() {
		_, err := ln.Accept()
		done <- err
	}()
	ln.Close()
	if err := <-done; !errors.Is(err, net.ErrClosed) {
		t.Fatalf("Accept after Close: %v, want net.ErrClosed", err)
	}
	if _, err := n.Dial("srv:1"); err == nil {
		t.Fatal("dial of closed listener succeeded")
	}
	// The address is free again: a restarted server re-binds it.
	ln2, err := n.Listen("srv:1")
	if err != nil {
		t.Fatalf("re-listen after close: %v", err)
	}
	ln2.Close()
}

func TestDuplicateListenRejected(t *testing.T) {
	n := New()
	ln := n.MustListen("srv:1")
	defer ln.Close()
	if _, err := n.Listen("srv:1"); err == nil {
		t.Fatal("duplicate listen succeeded")
	}
}

func TestAutoAddressesAreUnique(t *testing.T) {
	n := New()
	a := n.MustListen("")
	b := n.MustListen(":0")
	defer a.Close()
	defer b.Close()
	if a.Addr().String() == b.Addr().String() {
		t.Fatalf("auto addresses collide: %s", a.Addr())
	}
}

// TestKillSeversEstablishedConns: Kill is a machine crash, not a
// graceful stop — established connections die with the listener, new
// dials are refused, and the address frees for a restart.
func TestKillSeversEstablishedConns(t *testing.T) {
	n := New()
	ln := n.MustListen("srv:1")
	accepted := make(chan net.Conn, 2)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			accepted <- c
		}
	}()
	var clients []net.Conn
	for i := 0; i < 2; i++ {
		c, err := n.Dial("srv:1")
		if err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}
	if got := n.Kill("srv:1"); got != 2 {
		t.Fatalf("Kill severed %d connections, want 2", got)
	}
	for i, c := range clients {
		c.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := c.Read(make([]byte, 1)); err == nil {
			t.Fatalf("client %d read from killed server succeeded", i)
		}
	}
	for len(accepted) > 0 {
		c := <-accepted
		c.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := c.Read(make([]byte, 1)); err == nil {
			t.Fatal("server-side read on killed conn succeeded")
		}
	}
	if _, err := n.Dial("srv:1"); err == nil {
		t.Fatal("dial to killed server succeeded")
	}
	if n.Kill("srv:1") != 0 {
		t.Fatal("double kill severed connections")
	}
	// The crashed server can restart on its old address.
	ln2, err := n.Listen("srv:1")
	if err != nil {
		t.Fatalf("re-listen after kill: %v", err)
	}
	ln2.Close()
}

// TestCloseLeavesEstablishedConnsAlive pins the contrast with Kill: a
// plain listener Close stops new dials but lets live conns drain.
func TestCloseLeavesEstablishedConnsAlive(t *testing.T) {
	n := New()
	ln := n.MustListen("srv:1")
	srvSide := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			srvSide <- c
		}
	}()
	c, err := n.Dial("srv:1")
	if err != nil {
		t.Fatal(err)
	}
	sc := <-srvSide
	ln.Close()
	go sc.Write([]byte("x"))
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := c.Read(buf); err != nil || buf[0] != 'x' {
		t.Fatalf("established conn dead after graceful close: %v", err)
	}
	c.Close()
	sc.Close()
}

func TestDeadlinesWork(t *testing.T) {
	n := New()
	ln := n.MustListen("srv:1")
	go ln.Accept() // accept and hold without reading
	c, err := n.Dial("srv:1")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	buf := make([]byte, 1)
	_, err = c.Read(buf)
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("read past deadline: %v, want timeout", err)
	}
}
