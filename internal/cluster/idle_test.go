package cluster

import (
	"testing"
)

func TestWeekReproducesPaperProperties(t *testing.T) {
	samples := Week(Paper)
	if len(samples) != 7*24 {
		t.Fatalf("week has %d samples, want %d", len(samples), 7*24)
	}
	s := Summarize(samples)

	// "In all times though, more than 300 Mbytes of main memory were
	// unused" — and free memory is "rarely lower than 400 Mbytes".
	if s.MinFreeMB < 300 {
		t.Fatalf("min free %.0f MB, paper floor is 300", s.MinFreeMB)
	}
	// "for significant periods of time more than 700 Mbytes are
	// unused, especially during the nights, and the weekend".
	if s.NightMeanMB < 700 {
		t.Fatalf("night mean %.0f MB, want > 700", s.NightMeanMB)
	}
	if s.WeekendMeanMB < 700 {
		t.Fatalf("weekend mean %.0f MB, want > 700", s.WeekendMeanMB)
	}
	// "memory usage was at each peak (and thus free memory was
	// scarce) at noon and afternoon of working days".
	if s.NoonMeanMB >= s.NightMeanMB-100 {
		t.Fatalf("no noon dip: noon %.0f vs night %.0f", s.NoonMeanMB, s.NightMeanMB)
	}
	if s.MaxFreeMB > Paper.TotalMB {
		t.Fatalf("free memory %.0f exceeds total %.0f", s.MaxFreeMB, Paper.TotalMB)
	}
}

func TestWeekDeterministic(t *testing.T) {
	a := Week(Paper)
	b := Week(Paper)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different weeks")
		}
	}
	cfg := Paper
	cfg.Seed = 42
	c := Week(cfg)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical weeks")
	}
}

func TestDayNames(t *testing.T) {
	if DayName(0) != "Thursday" {
		t.Fatalf("hour 0 = %s, figure starts on Thursday", DayName(0))
	}
	if DayName(2*24) != "Saturday" {
		t.Fatalf("hour 48 = %s, want Saturday", DayName(48))
	}
	if DayName(6*24+23) != "Wednesday" {
		t.Fatalf("last hour = %s, want Wednesday", DayName(6*24+23))
	}
}

func TestZeroConfigDefaultsToPaper(t *testing.T) {
	samples := Week(Config{})
	if len(samples) != 7*24 {
		t.Fatal("zero config did not default")
	}
}

func TestPagesAvailable(t *testing.T) {
	// 400 MB donates 51200 pages of 8 KB.
	if got := PagesAvailable(400); got != 51200 {
		t.Fatalf("PagesAvailable(400) = %d, want 51200", got)
	}
}
