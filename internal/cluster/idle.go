// Package cluster models workstation-cluster memory usage over time,
// reproducing the paper's Figure 1: the idle DRAM of 16 workstations
// (800 MB total) profiled for a week (Feb 2-8, 1995). The paper's
// findings, which this generator reproduces statistically:
//
//   - free memory peaks above 700 MB at night and on the weekend,
//   - it dips at noon and in the afternoon of working days,
//   - it never falls below ~300 MB ("In all times though, more than
//     300 Mbytes of main memory were unused").
//
// The paper used this profile only to argue that remote memory is
// plentiful; the synthetic trace preserves exactly the properties
// that argument needs.
package cluster

import (
	"math"
	"math/rand"
	"time"
)

// Config describes the cluster being profiled.
type Config struct {
	Workstations int     // paper: 16
	TotalMB      float64 // paper: 800
	// BaselineUsedMB is memory used even on an idle machine (kernel,
	// daemons, X server), per workstation.
	BaselineUsedMB float64
	// PeakExtraMB is the additional per-workstation usage at the
	// working-day peak (the paper's lab ran VERILOG simulations).
	PeakExtraMB float64
	Seed        int64
}

// Paper matches the published profile's cluster.
var Paper = Config{
	Workstations:   16,
	TotalMB:        800,
	BaselineUsedMB: 4,
	PeakExtraMB:    26,
	Seed:           1995,
}

// Sample is one point of the weekly profile.
type Sample struct {
	// Hour is hours since Thursday 00:00 (the paper's trace starts on
	// a Thursday).
	Hour int
	// FreeMB is the cluster-wide unused memory.
	FreeMB float64
}

// dayNames maps day index (0 = Thursday, matching Figure 1's x axis).
var dayNames = []string{"Thursday", "Friday", "Saturday", "Sunday", "Monday", "Tuesday", "Wednesday"}

// DayName returns the figure's day label for a sample hour.
func DayName(hour int) string { return dayNames[(hour/24)%7] }

// businessActivity returns the 0..1 workday activity level at a given
// hour-of-day / day-of-week (0 = Thursday).
func businessActivity(hourOfDay float64, day int) float64 {
	weekend := day == 2 || day == 3 // Saturday, Sunday
	if weekend {
		return 0.04 // the occasional weekend hacker
	}
	// Two-humped working day: ramp in from 9:00, peak at noon and
	// mid-afternoon, ramp out by 19:00.
	morning := math.Exp(-sq(hourOfDay-12.0) / 6)
	afternoon := math.Exp(-sq(hourOfDay-15.5) / 7)
	act := 0.9*morning + 0.85*afternoon
	if act > 1 {
		act = 1
	}
	return act
}

func sq(x float64) float64 { return x * x }

// Week generates one week of hourly samples.
func Week(cfg Config) []Sample {
	if cfg.Workstations <= 0 {
		cfg = Paper
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	perWS := cfg.TotalMB / float64(cfg.Workstations)
	samples := make([]Sample, 0, 7*24)
	for h := 0; h < 7*24; h++ {
		day := h / 24
		hod := float64(h % 24)
		act := businessActivity(hod, day)
		used := 0.0
		for ws := 0; ws < cfg.Workstations; ws++ {
			u := cfg.BaselineUsedMB
			// Each workstation independently busy with probability
			// proportional to activity.
			if rng.Float64() < act {
				u += cfg.PeakExtraMB * (0.6 + 0.4*rng.Float64())
			}
			if u > perWS {
				u = perWS
			}
			used += u
		}
		free := cfg.TotalMB - used
		samples = append(samples, Sample{Hour: h, FreeMB: free})
	}
	return samples
}

// Summary reports the figures the paper quotes from its profile.
type Summary struct {
	MinFreeMB     float64
	MaxFreeMB     float64
	MeanFreeMB    float64
	NightMeanMB   float64 // 00:00-06:00
	NoonMeanMB    float64 // 11:00-16:00 on working days
	WeekendMeanMB float64
}

// Summarize computes the headline statistics of a weekly profile.
func Summarize(samples []Sample) Summary {
	var s Summary
	s.MinFreeMB = math.Inf(1)
	var sum float64
	var nightSum, nightN, noonSum, noonN, weSum, weN float64
	for _, p := range samples {
		sum += p.FreeMB
		if p.FreeMB < s.MinFreeMB {
			s.MinFreeMB = p.FreeMB
		}
		if p.FreeMB > s.MaxFreeMB {
			s.MaxFreeMB = p.FreeMB
		}
		day := p.Hour / 24
		hod := p.Hour % 24
		weekend := day == 2 || day == 3
		if hod < 6 {
			nightSum += p.FreeMB
			nightN++
		}
		if weekend {
			weSum += p.FreeMB
			weN++
		} else if hod >= 11 && hod <= 16 {
			noonSum += p.FreeMB
			noonN++
		}
	}
	if n := float64(len(samples)); n > 0 {
		s.MeanFreeMB = sum / n
	}
	if nightN > 0 {
		s.NightMeanMB = nightSum / nightN
	}
	if noonN > 0 {
		s.NoonMeanMB = noonSum / noonN
	}
	if weN > 0 {
		s.WeekendMeanMB = weSum / weN
	}
	return s
}

// PagesAvailable converts free MB into 8 KB pages — what a remote
// memory server fleet could donate at that moment.
func PagesAvailable(freeMB float64) int {
	return int(freeMB * 1024 * 1024 / 8192)
}

// HourDuration is the sampling interval of Week.
const HourDuration = time.Hour
