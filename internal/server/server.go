// Package server implements the remote memory server: a user-level
// program that listens on a socket, accepts connections from RMP
// clients, and stores their swapped-out pages in main memory
// (paper §3.2).
//
// Faithful to the paper, the server is policy-agnostic: it answers
// pageins and pageouts "without knowing whether it stores memory
// pages or parity pages". A parity server is just another server. The
// one cooperative extra is XORWRITE: for the basic parity policy the
// server computes old XOR new locally and forwards the delta to the
// designated parity server itself, saving the client a transfer.
//
// The paper forks "a new instance of the server" per client; here each
// accepted connection gets a session goroutine. Sessions presenting
// the same client name (from HELLO) share one key namespace, so a
// client may open several connections for parallelism — and so a
// parity delta forwarded on the client's behalf lands where the client
// can later read it back during recovery. Namespaces are 16-bit tags
// prefixed onto the 48-bit client key space.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rmp/internal/cluster"
	"rmp/internal/disk"
	"rmp/internal/page"
	"rmp/internal/store"
	"rmp/internal/wire"
)

// keyBits is how many bits of the wire key belong to the client; the
// top 16 bits carry the client-namespace tag.
const keyBits = 48

const keyMask = uint64(1)<<keyBits - 1

// Config parametrizes a Server.
type Config struct {
	// Name identifies the server in logs and load reports.
	Name string
	// CapacityPages is the donated memory in pages (hard limit,
	// including overflow headroom).
	CapacityPages int
	// OverflowFrac is the fraction of capacity kept as overflow for
	// parity logging (the paper uses 0.10).
	OverflowFrac float64
	// AuthToken, when non-empty, must match the token carried in each
	// client's HELLO. Stands in for the paper's privileged-port check.
	AuthToken string
	// PressureDelay is added to every page service while the host is
	// under native memory pressure, emulating requests "serviced from
	// the disk" after the kernel swapped the server's pages out (§2.1).
	PressureDelay time.Duration
	// ServiceDelay is added to every page service unconditionally.
	// It emulates a distant or slow server — the paper's §5
	// heterogeneous-network scenario where "the time it takes to
	// transfer a page may not be identical for each server".
	ServiceDelay time.Duration
	// Spill enables the tiered store's disk tier (a throwaway temp
	// file): cold pages beyond the compressed tier's target spill to
	// local disk, and — because storage degrades to slower tiers
	// instead of vanishing — the server keeps granting swap space
	// under native pressure rather than denying it (the §2.1 cliff
	// becomes a slope).
	Spill bool
	// SpillPath makes the disk tier durable at the given path: slots
	// are self-describing and CRC-verified, and a restarting server
	// recovers the spilled pages (or cleanly reports the loss of any
	// slot that fails verification). Implies Spill.
	SpillPath string
	// SpillFrac is the fraction of the resident set demoted out of the
	// hot tier when pressure sets in (default 0.5): under pressure the
	// hot target becomes stored*(1-SpillFrac).
	SpillFrac float64
	// HotPages / ColdPages are the unpressured tier targets passed to
	// the store (0 = full capacity may stay hot / compressed).
	HotPages  int
	ColdPages int
	// DemoteEvery is the background demotion worker's tick (default
	// 25 ms).
	DemoteEvery time.Duration
	// DiskModel charges synthetic latency per disk-tier access, so
	// experiments can model a 1996 paging disk on modern hardware.
	DiskModel disk.LatencyModel
	// DenyUnderPressure restores the paper's §2.1 behaviour for
	// comparison runs: deny swap-space allocation while pressured even
	// though the tiered store could absorb it.
	DenyUnderPressure bool
	// PressureTrace, when non-empty, replays an idle-memory profile
	// (internal/cluster's weekly curve) as live native pressure: every
	// TraceTick the next sample's free fraction becomes the hot-tier
	// target, and the pressure advisory tracks TraceLowWater. The
	// trace wraps around; a zero TraceTick defaults to one second.
	PressureTrace []cluster.Sample
	TraceTick     time.Duration
	// TraceLowWater is the free fraction under which the trace raises
	// the pressure advisory (default 0.5).
	TraceLowWater float64
	// Dial, when non-nil, replaces TCP for the server's own outbound
	// connections (XORWRITE delta forwarding to the parity server).
	// Tests inject an in-memory transport here.
	Dial func(addr string, timeout time.Duration) (net.Conn, error)
	// Logger receives diagnostics; nil silences them.
	Logger *log.Logger
}

// Server is a remote memory server. Create with New, start with Serve
// or ListenAndServe, stop with Close.
type Server struct {
	cfg   Config
	store *store.Tiered
	// demoter is the store's background demotion worker; stopped by
	// Close.
	demoter *store.Demoter
	// stopTrace cancels the pressure-trace driver (nil when no trace
	// is configured). Closed by Close.
	stopTrace chan struct{}
	// diskTier records whether the store has a disk tier — the
	// condition under which pressure demotes instead of denying.
	diskTier bool

	mu sync.Mutex
	// ln is the accept listener; set by Serve, closed by Close.
	// Guarded by mu.
	ln net.Listener
	// conns tracks live sessions so Close can sever them. Guarded by
	// mu.
	conns map[net.Conn]struct{}
	// clients maps client name to its namespace. Guarded by mu.
	clients map[string]*clientNS
	// nextTag allocates namespace tags. Guarded by mu.
	nextTag uint16
	// closed latches Close. Guarded by mu.
	closed bool

	pressure atomic.Bool
	// draining is the graceful-leave flag: every ack carries
	// wire.FlagDrain asking clients to migrate their pages out, and new
	// swap-space allocation is denied. Set via the DRAIN message or
	// SetDraining; rmemd exits once draining and empty.
	draining atomic.Bool
	// pings counts heartbeat probes served (exported via STAT).
	pings atomic.Uint64
	// extraDelay augments Config.ServiceDelay at runtime (varying
	// host or network load).
	extraDelay atomic.Int64

	peersMu sync.Mutex
	// peers are other servers' addresses learned from JOIN announces;
	// gossiped back to clients in every PONG so pagers discover
	// newly-joined servers without re-reading the registry. Guarded by
	// peersMu.
	peers []string

	wg sync.WaitGroup

	// parityConns caches outbound connections for XORWRITE forwarding,
	// keyed by "addr|clientName" because the forwarded HELLO must
	// impersonate the originating client to hit its namespace.
	parityMu sync.Mutex
	// parityConns is the forwarding-connection cache. Guarded by
	// parityMu.
	parityConns map[string]*parityConn
}

type parityConn struct {
	mu   sync.Mutex
	conn net.Conn
}

// clientNS is the per-client-name state shared by that client's
// sessions: the namespace tag, the swap-space reservation, and a
// reference count of live sessions. Pages and reservations outlive
// individual connections (a transient disconnect must not destroy a
// client's swap space); they are torn down when the last session of a
// client that said BYE closes, or via DropClient.
type clientNS struct {
	tag uint16
	// refs counts live sessions of this client. Guarded by Server.mu.
	refs int
	// reserved is the client's granted swap-space reservation in
	// pages. Guarded by Server.mu.
	reserved int
	// saidBye marks a graceful goodbye in progress. Guarded by
	// Server.mu.
	saidBye bool
}

type session struct {
	conn net.Conn
	name string
	ns   *clientNS
}

// New creates a server with the given configuration.
func New(cfg Config) *Server {
	if cfg.Name == "" {
		cfg.Name = "rmemd"
	}
	s := &Server{
		cfg:         cfg,
		conns:       make(map[net.Conn]struct{}),
		clients:     make(map[string]*clientNS),
		parityConns: make(map[string]*parityConn),
	}
	storeCfg := store.Config{
		CapacityPages: cfg.CapacityPages,
		OverflowFrac:  cfg.OverflowFrac,
		HotPages:      cfg.HotPages,
		ColdPages:     cfg.ColdPages,
		Spill:         cfg.Spill,
		SpillPath:     cfg.SpillPath,
		DiskModel:     cfg.DiskModel,
		Logger:        cfg.Logger,
	}
	st, err := store.New(storeCfg)
	if err != nil {
		// The disk tier could not be opened (or recovered); degrade to
		// the in-memory tiers rather than refuse to start.
		s.logf("%s: disk tier disabled: %v", cfg.Name, err)
		storeCfg.Spill, storeCfg.SpillPath = false, ""
		st, _ = store.New(storeCfg)
	} else {
		s.diskTier = cfg.Spill || cfg.SpillPath != ""
	}
	s.store = st
	s.demoter = st.StartDemoter(cfg.DemoteEvery)
	if len(cfg.PressureTrace) > 0 {
		s.stopTrace = make(chan struct{})
		s.wg.Add(1)
		go s.traceLoop()
	}
	return s
}

// ListenAndServe listens on addr ("host:port", port 0 for ephemeral)
// and serves until Close. It returns once the listener is installed;
// serving continues in the background.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.Serve(ln)
	return nil
}

// Serve starts accepting connections from ln in the background.
func (s *Server) Serve(ln net.Listener) {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
}

// Addr returns the listen address, or nil before Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// SetPressure marks the host as loaded (or unloaded) by native
// memory-demanding processes. While set, every ack carries
// wire.FlagPressure advising the client to migrate its pages
// elsewhere, and page service pays PressureDelay. Setting pressure
// shrinks the tiered store's hot target by SpillFrac, so part of the
// donated memory compresses (and, with a disk tier, spills) — the
// §2.1 "part of the server's memory is swapped out to disk", served
// slower instead of evicted. Clearing pressure restores the targets
// and eagerly promotes demoted pages back. Swap-space allocation is
// denied while pressured only when there is no disk tier to absorb
// it (or DenyUnderPressure forces the paper's cliff).
func (s *Server) SetPressure(on bool) {
	was := s.pressure.Swap(on)
	if was == on {
		return
	}
	if on {
		frac := s.cfg.SpillFrac
		if frac <= 0 || frac > 1 {
			frac = 0.5
		}
		// Shrink the resident set, not the nominal capacity: the host
		// wants memory back now, so the target is a fraction of what is
		// actually stored (and stays there, bounding growth, until the
		// pressure clears).
		hot := int(float64(s.store.Len()) * (1 - frac))
		if hot < 1 {
			hot = 1
		}
		s.store.SetTargets(hot, s.cfg.ColdPages)
		if n := s.store.Enforce(); n > 0 {
			s.logf("%s: demoted %d pages under memory pressure", s.cfg.Name, n)
		}
	} else {
		s.store.SetTargets(s.cfg.HotPages, s.cfg.ColdPages)
		if n := s.store.PromoteHot(); n > 0 {
			s.logf("%s: promoted %d pages back after pressure cleared", s.cfg.Name, n)
		}
	}
}

// Pressure reports the current pressure flag.
func (s *Server) Pressure() bool { return s.pressure.Load() }

// SetDraining marks the server as gracefully leaving (or cancels the
// leave). While draining, every ack carries wire.FlagDrain, swap-space
// allocation is denied, and stored pages keep being served so clients
// can migrate them out.
func (s *Server) SetDraining(on bool) { s.draining.Store(on) }

// Draining reports the graceful-leave flag.
func (s *Server) Draining() bool { return s.draining.Load() }

// maxPeers bounds the gossiped peer list; beyond this a registry file
// is the right tool.
const maxPeers = 64

// parityIOTimeout bounds the XORDELTA round trip to the parity
// server, which runs while the parity connection's mutex is held.
const parityIOTimeout = 5 * time.Second

// AddPeer records another server's address for gossip to clients.
// Duplicates are ignored; returns the resulting peer count.
func (s *Server) AddPeer(addr string) int {
	s.peersMu.Lock()
	defer s.peersMu.Unlock()
	for _, p := range s.peers {
		if p == addr {
			return len(s.peers)
		}
	}
	if len(s.peers) < maxPeers {
		s.peers = append(s.peers, addr)
	}
	return len(s.peers)
}

// Peers returns a copy of the gossiped peer list.
func (s *Server) Peers() []string {
	s.peersMu.Lock()
	defer s.peersMu.Unlock()
	return append([]string(nil), s.peers...)
}

// Store exposes the backing tiered page store (read-mostly; used by
// tests, stats endpoints, benchmarks and crash-recovery tooling).
func (s *Server) Store() *store.Tiered { return s.store }

// Close stops the listener and all sessions and waits for them.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.parityMu.Lock()
	for _, pc := range s.parityConns {
		pc.conn.Close()
	}
	s.parityConns = make(map[string]*parityConn)
	s.parityMu.Unlock()
	if s.stopTrace != nil {
		close(s.stopTrace)
	}
	s.wg.Wait()
	s.demoter.Close()
	return s.store.Close()
}

// DropClient discards everything held for the named client: pages,
// reservation, namespace. Administrative escape hatch for clients that
// vanished without BYE.
func (s *Server) DropClient(name string) {
	s.mu.Lock()
	ns, ok := s.clients[name]
	if ok {
		delete(s.clients, name)
	}
	s.mu.Unlock()
	if ok {
		s.purgeNamespace(ns)
	}
}

func (s *Server) purgeNamespace(ns *clientNS) {
	// The namespace is already unlinked from s.clients, but a session
	// that attached before DropClient may still hold a pointer and
	// mutate the reservation under s.mu — so the handoff to zero must
	// happen under the same lock.
	s.mu.Lock()
	reserved := ns.reserved
	ns.reserved = 0
	s.mu.Unlock()
	if reserved > 0 {
		s.store.Release(reserved)
	}
	var doomed []uint64
	// Keys() spans every tier, so spilled and compressed pages are
	// purged along with the hot ones.
	for _, k := range s.store.Keys() {
		if uint16(k>>keyBits) == ns.tag {
			doomed = append(doomed, k)
		}
	}
	s.store.Delete(doomed...)
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf(format, args...)
	}
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// attach binds a connection to the namespace for client name,
// creating it on first contact.
func (s *Server) attach(conn net.Conn, name string) *session {
	s.mu.Lock()
	defer s.mu.Unlock()
	ns, ok := s.clients[name]
	if !ok {
		s.nextTag++
		ns = &clientNS{tag: s.nextTag}
		s.clients[name] = ns
	}
	ns.refs++
	ns.saidBye = false
	return &session{conn: conn, name: name, ns: ns}
}

// detach drops a session; the namespace is purged when the last
// session of a BYE'd client leaves.
func (s *Server) detach(sess *session) {
	s.mu.Lock()
	sess.ns.refs--
	purge := sess.ns.refs == 0 && sess.ns.saidBye
	if purge {
		delete(s.clients, sess.name)
	}
	s.mu.Unlock()
	if purge {
		s.purgeNamespace(sess.ns)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	// First frame must be HELLO with a valid token.
	m, err := wire.Decode(conn)
	if err != nil {
		return
	}
	if m.Type != wire.THello {
		wire.Encode(conn, &wire.Msg{Type: m.Type.Ack(), Status: wire.StatusDenied})
		return
	}
	if s.cfg.AuthToken != "" && string(m.Data) != s.cfg.AuthToken {
		wire.Encode(conn, &wire.Msg{Type: wire.THelloAck, Status: wire.StatusDenied})
		s.logf("%s: rejected client %q: bad token", s.cfg.Name, m.Host)
		return
	}
	name := m.Host
	if name == "" {
		name = conn.RemoteAddr().String()
	}
	sess := s.attach(conn, name)
	defer s.detach(sess)
	// Protocol negotiation: a client advertising v2 on its HELLO gets
	// the flag echoed and every subsequent frame tagged; a v1 client
	// gets the strict serial session it always had. The HELLO_ACK
	// itself is always v1-framed — it is the switchover point.
	v2 := m.Flags&wire.FlagV2 != 0
	wire.Recycle(m)
	helloAck := &wire.Msg{Type: wire.THelloAck, N: uint32(s.store.Free())}
	if v2 {
		helloAck.Flags |= wire.FlagV2
	}
	if err := s.reply(sess, helloAck); err != nil {
		return
	}
	s.logf("%s: client %q connected (ns %d, proto v%d)", s.cfg.Name, sess.name, sess.ns.tag, map[bool]int{false: 1, true: 2}[v2])
	if v2 {
		s.serveConnV2(conn, sess)
		return
	}

	for {
		m, err := wire.DecodePooled(conn)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				s.logf("%s: client %q read: %v", s.cfg.Name, sess.name, err)
			}
			return
		}
		resp := s.handle(sess, m)
		bye := m.Type == wire.TBye
		wire.Recycle(m)
		err = s.reply(sess, resp)
		// Every ack's Data is server-owned (a store copy or fresh JSON)
		// and fully on the wire after reply, so it recycles here.
		page.Put(resp.Data)
		wire.Recycle(resp)
		if err != nil || bye {
			return
		}
	}
}

// maxSessionInflight bounds how many requests one v2 session services
// concurrently. It backpressures a runaway pipeline without stalling
// the read loop in the common case, and caps the reply queue so a
// slow consumer bounds its own memory.
const maxSessionInflight = 64

// serveConnV2 runs one multiplexed session: the read loop decodes
// tagged requests and dispatches them to a bounded pool of handler
// goroutines, replies funnel through a writer goroutine that batches
// them onto the wire, and XORWRITE/XORDELTA are routed to a dedicated
// FIFO worker so their read-modify-write cycles on this client's
// namespace apply in arrival order (the pager pipelines parity
// traffic for distinct pages, but deltas for the same parity page
// must not race each other out of order — see PROTOCOL.md).
// Everything else may reorder freely; the client matches acks by id.
func (s *Server) serveConnV2(conn net.Conn, sess *session) {
	out := make(chan *wire.Msg, maxSessionInflight)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		s.writeReplies(conn, out)
	}()
	xorCh := make(chan *wire.Msg, maxSessionInflight)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// FIFO ordering domain: one worker, channel arrival order.
		for m := range xorCh {
			out <- s.respondV2(sess, m)
			wire.Recycle(m)
		}
	}()
	sem := make(chan struct{}, maxSessionInflight)
	sawBye := false
	var bye *wire.Msg
	for !sawBye {
		m, err := wire.DecodePooled(conn)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				s.logf("%s: client %q read: %v", s.cfg.Name, sess.name, err)
			}
			break
		}
		switch m.Type {
		case wire.TXorWrite, wire.TXorDelta:
			xorCh <- m
		case wire.TBye:
			// Quiesce: stop reading, let in-flight requests finish,
			// then answer the BYE last so the client sees every ack.
			sawBye, bye = true, m
		default:
			sem <- struct{}{}
			wg.Add(1)
			go func(m *wire.Msg) {
				defer func() { <-sem; wg.Done() }()
				out <- s.respondV2(sess, m)
				wire.Recycle(m)
			}(m)
		}
	}
	close(xorCh)
	wg.Wait()
	if sawBye {
		out <- s.respondV2(sess, bye)
		wire.Recycle(bye)
	}
	close(out)
	<-writerDone
}

// respondV2 services one request and tags the ack with the request's
// id and advisory flags. When it returns, nothing retains the request
// or its payload (handlers copy what they store), so callers recycle
// m afterwards.
func (s *Server) respondV2(sess *session, m *wire.Msg) *wire.Msg {
	resp := s.handle(sess, m)
	resp.Version = wire.Version2
	resp.ID = m.ID
	s.stampFlags(resp)
	return resp
}

// writeReplies drains the reply channel onto the wire, batching every
// queued reply into one vectored write (writev on TCP): the
// FrameWriter queues head encodings and references each ack's Data in
// place, so an 8 KB PAGEIN payload is never copied into scratch. Acks
// are recycled — payload to the page pool, frame to the Msg pool —
// only after the flush that shipped them, honoring the FrameWriter
// aliasing contract. After a write error it keeps draining
// (discarding, still recycling) so no handler ever blocks on a dead
// connection; the read loop sees the same broken conn and winds the
// session down.
func (s *Server) writeReplies(conn net.Conn, out chan *wire.Msg) {
	fw := wire.NewFrameWriter(conn)
	broken := false
	batch := make([]*wire.Msg, 0, maxSessionInflight)
	recycle := func() {
		for i, m := range batch {
			page.Put(m.Data)
			wire.Recycle(m)
			batch[i] = nil
		}
		batch = batch[:0]
	}
	for m := range out {
		if broken {
			page.Put(m.Data)
			wire.Recycle(m)
			continue
		}
		if err := fw.Queue(m); err != nil {
			broken = true
		}
		batch = append(batch, m)
		for batching := true; batching && !broken; {
			select {
			case m2, ok := <-out:
				if !ok {
					batching = false
					break
				}
				if err := fw.Queue(m2); err != nil {
					broken = true
				}
				batch = append(batch, m2)
			default:
				batching = false
			}
		}
		if !broken && fw.Flush() != nil {
			broken = true
		}
		recycle()
	}
}

// stampFlags adds the pressure and drain advisories to a reply.
func (s *Server) stampFlags(resp *wire.Msg) {
	if s.pressure.Load() {
		resp.Flags |= wire.FlagPressure
	}
	if s.draining.Load() {
		resp.Flags |= wire.FlagDrain
	}
}

// reply sends resp, stamping the pressure and drain advisory flags.
func (s *Server) reply(sess *session, resp *wire.Msg) error {
	s.stampFlags(resp)
	return wire.Encode(sess.conn, resp)
}

// nsKey namespaces a client key with the client tag.
func nsKey(tag uint16, key uint64) uint64 { return uint64(tag)<<keyBits | (key & keyMask) }

// handle services one request and builds the acknowledgement.
func (s *Server) handle(sess *session, m *wire.Msg) *wire.Msg {
	tag := sess.ns.tag
	ack := &wire.Msg{Type: m.Type.Ack(), Key: m.Key}
	switch m.Type {
	case wire.TAlloc:
		// Draining always denies. Pressure denies only when there is
		// no disk tier to absorb the demotions (or the paper-faithful
		// DenyUnderPressure cliff is requested): a tiered server
		// degrades latency, not availability (§2.1 revisited).
		if s.draining.Load() ||
			(s.pressure.Load() && (s.cfg.DenyUnderPressure || !s.diskTier)) {
			ack.Status = wire.StatusNoSpace
			return ack
		}
		granted := s.store.Reserve(int(m.N))
		s.mu.Lock()
		sess.ns.reserved += granted
		s.mu.Unlock()
		ack.N = uint32(granted)
		if granted == 0 {
			ack.Status = wire.StatusNoSpace
		}

	case wire.TPageOut:
		if err := m.VerifyData(); err != nil {
			ack.Status = wire.StatusBadChecksum
			return ack
		}
		s.maybeStall()
		if err := s.store.Put(nsKey(tag, m.Key), page.Buf(m.Data)); err != nil {
			ack.Status = storeStatus(err)
		}

	case wire.TPageIn:
		s.maybeStall()
		data, err := s.store.Get(nsKey(tag, m.Key))
		if err != nil {
			if errors.Is(err, store.ErrCorrupt) {
				s.logf("%s: page %d lost to disk-tier corruption", s.cfg.Name, m.Key)
			}
			ack.Status = storeStatus(err)
			return ack
		}
		ack.Data = data
		ack.WithChecksum()

	case wire.TFree:
		keys := make([]uint64, len(m.Keys))
		for i, k := range m.Keys {
			keys[i] = nsKey(tag, k)
		}
		s.store.Delete(keys...)
		ack.N = uint32(len(keys))

	case wire.TLoad:
		ack.N = uint32(s.store.Free())

	case wire.TPing:
		// Heartbeat: deliberately skips maybeStall — the probe measures
		// liveness, not page-service latency, and must not miss its
		// deadline just because the host is slow. The drain advisory
		// rides on the reply flags; free pages in N; known peers as
		// JSON, so pagers discover joined servers.
		s.pings.Add(1)
		ack.N = uint32(s.store.Free())
		if peers := s.Peers(); len(peers) > 0 {
			if data, err := json.Marshal(wire.PongInfo{Peers: peers}); err == nil {
				ack.Data = data
			}
		}

	case wire.TJoin:
		if m.Host == "" {
			ack.Status = wire.StatusInternal
			ack.Data = []byte("JOIN without server address")
			return ack
		}
		n := s.AddPeer(m.Host)
		ack.N = uint32(n)
		s.logf("%s: peer %s joined (%d known)", s.cfg.Name, m.Host, n)

	case wire.TDrain:
		s.SetDraining(true)
		s.logf("%s: drain requested; %d pages to migrate", s.cfg.Name, s.store.Len())

	case wire.TXorWrite:
		if err := m.VerifyData(); err != nil {
			ack.Status = wire.StatusBadChecksum
			return ack
		}
		s.maybeStall()
		delta, err := s.store.XorWrite(nsKey(tag, m.Key), page.Buf(m.Data))
		if err != nil {
			ack.Status = storeStatus(err)
			return ack
		}
		// Forward old^new to the parity server before acking, so the
		// client may discard the page once the ack arrives (§2.2: the
		// client "should not discard the page just swapped out" until
		// the new parity is computed — our ack is that safety point).
		if err := s.forwardDelta(m.Host, sess.name, m.ParityKey, delta); err != nil {
			s.logf("%s: parity forward to %s failed: %v", s.cfg.Name, m.Host, err)
			ack.Status = wire.StatusInternal
			ack.Data = []byte(err.Error())
		}
		page.Put(delta)

	case wire.TXorDelta:
		if err := m.VerifyData(); err != nil {
			ack.Status = wire.StatusBadChecksum
			return ack
		}
		if err := s.store.XorMerge(nsKey(tag, m.Key), page.Buf(m.Data)); err != nil {
			ack.Status = storeStatus(err)
		}

	case wire.TStat:
		s.mu.Lock()
		clients := len(s.clients)
		s.mu.Unlock()
		st := s.store.Stats()
		occ := s.store.Occupancy()
		info := wire.StatInfo{
			Name:         s.cfg.Name,
			StoredPages:  occ.Total(),
			FreePages:    s.store.Free(),
			InOverflow:   s.store.InOverflow(),
			Pressure:     s.pressure.Load(),
			Clients:      clients,
			Puts:         st.Puts,
			Gets:         st.Gets,
			Deletes:      st.Deletes,
			XorWrites:    st.XorWrites,
			Misses:       st.Misses,
			DeniedAllocs: st.Denied,
			Pings:        s.pings.Load(),
			Draining:     s.draining.Load(),
			Peers:        s.Peers(),
			HotPages:     occ.Hot,
			ColdPages:    occ.Cold,
			DiskPages:    occ.Disk,
			HotTarget:    occ.HotTarget,
			ColdBytes:    occ.ColdBytes,
			HotHits:      st.HotHits,
			ColdHits:     st.ColdHits,
			DiskHits:     st.DiskHits,
			Demotions:    st.Demotions,
			Spills:       st.Spills,
			Promotions:   st.Promotions,
			LostPages:    st.Lost,
		}
		data, err := json.Marshal(info)
		if err != nil {
			ack.Status = wire.StatusInternal
			ack.Data = []byte(err.Error())
			return ack
		}
		ack.Data = data

	case wire.TBye:
		s.mu.Lock()
		sess.ns.saidBye = true
		s.mu.Unlock()

	default:
		ack.Status = wire.StatusInternal
		ack.Data = []byte(fmt.Sprintf("unknown request type %v", m.Type))
	}
	return ack
}

// SetExtraDelay adds d to every page service from now on, emulating
// a degrading network path or host (0 restores the configured speed).
func (s *Server) SetExtraDelay(d time.Duration) { s.extraDelay.Store(int64(d)) }

// maybeStall emulates slow hosts: a constant service delay for
// distant servers, any runtime extra delay, plus disk-backed service
// while under pressure.
func (s *Server) maybeStall() {
	d := s.cfg.ServiceDelay + time.Duration(s.extraDelay.Load())
	if s.pressure.Load() {
		d += s.cfg.PressureDelay
	}
	if d > 0 {
		time.Sleep(d)
	}
}

func storeStatus(err error) wire.Status {
	switch {
	case errors.Is(err, store.ErrNoSpace):
		return wire.StatusNoSpace
	case errors.Is(err, store.ErrNotFound):
		return wire.StatusNotFound
	case errors.Is(err, store.ErrCorrupt):
		// A disk-tier page failed verification: the page is gone, and
		// NOT_FOUND is the protocol's "page is gone" — the client's
		// redundancy policy reconstructs it. Loss is reported, never
		// hidden behind corrupt data.
		return wire.StatusNotFound
	default:
		return wire.StatusInternal
	}
}

// forwardDelta sends an XORDELTA to the parity server at addr on
// behalf of clientName, so the delta lands in a namespace the client
// itself can read during recovery.
func (s *Server) forwardDelta(addr, clientName string, parityKey uint64, delta page.Buf) error {
	if addr == "" {
		return errors.New("server: XORWRITE without parity host")
	}
	cacheKey := addr + "|" + clientName
	pc, err := s.parityConnFor(cacheKey, addr, clientName)
	if err != nil {
		return err
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	// The peer round trip runs under pc.mu: a wedged parity server must
	// surface as a timeout here, never park the session goroutine
	// inside the critical section.
	pc.conn.SetDeadline(time.Now().Add(parityIOTimeout))
	defer pc.conn.SetDeadline(time.Time{})
	req := (&wire.Msg{Type: wire.TXorDelta, Key: parityKey, Data: delta}).WithChecksum()
	if err := wire.Encode(pc.conn, req); err != nil {
		s.invalidateParityConn(cacheKey, pc)
		return err
	}
	ack, err := wire.Decode(pc.conn)
	if err != nil {
		s.invalidateParityConn(cacheKey, pc)
		return err
	}
	status := ack.Status
	wire.Recycle(ack)
	return status.Err()
}

func (s *Server) parityConnFor(cacheKey, addr, clientName string) (*parityConn, error) {
	s.parityMu.Lock()
	pc, ok := s.parityConns[cacheKey]
	s.parityMu.Unlock()
	if ok {
		return pc, nil
	}
	dial := s.cfg.Dial
	if dial == nil {
		dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	conn, err := dial(addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	// The forwarding link stays on v1 framing on purpose: it carries
	// one delta at a time under pc.mu, so tagging buys nothing.
	hello := &wire.Msg{Type: wire.THello, Host: clientName, Data: []byte(s.cfg.AuthToken)}
	if err := wire.Encode(conn, hello); err != nil {
		conn.Close()
		return nil, err
	}
	ack, err := wire.Decode(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if err := ack.Status.Err(); err != nil {
		conn.Close()
		return nil, err
	}
	pc = &parityConn{conn: conn}
	s.parityMu.Lock()
	if existing, ok := s.parityConns[cacheKey]; ok {
		s.parityMu.Unlock()
		conn.Close()
		return existing, nil
	}
	s.parityConns[cacheKey] = pc
	s.parityMu.Unlock()
	return pc, nil
}

func (s *Server) invalidateParityConn(cacheKey string, pc *parityConn) {
	pc.conn.Close()
	s.parityMu.Lock()
	if s.parityConns[cacheKey] == pc {
		delete(s.parityConns, cacheKey)
	}
	s.parityMu.Unlock()
}
