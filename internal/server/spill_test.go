package server_test

import (
	"testing"

	"rmp/internal/client"
	"rmp/internal/server"
)

// spillServer starts a server with disk spill enabled.
func spillServer(t *testing.T, capacity int) (*server.Server, string) {
	t.Helper()
	return startServer(t, server.Config{CapacityPages: capacity, Spill: true})
}

// TestSpillUnderPressure: §2.1 — pressure moves part of the donated
// memory to disk, requests keep working, and clearing pressure brings
// the pages back.
func TestSpillUnderPressure(t *testing.T) {
	srv, addr := spillServer(t, 256)
	c := dial(t, addr, "spill-client", "")
	const n = 40
	for i := uint64(0); i < n; i++ {
		if err := c.PageOut(i, fillPage(i)); err != nil {
			t.Fatal(err)
		}
	}
	if srv.Store().Len() != n {
		t.Fatalf("setup: store holds %d", srv.Store().Len())
	}

	srv.SetPressure(true)
	inMem := srv.Store().Len()
	if inMem >= n {
		t.Fatalf("pressure spilled nothing: still %d in memory", inMem)
	}
	// Every page — spilled or resident — must still be readable.
	for i := uint64(0); i < n; i++ {
		got, err := c.PageIn(i)
		if err != nil || got.Checksum() != fillPage(i).Checksum() {
			t.Fatalf("pagein %d under pressure: %v", i, err)
		}
	}
	c.PressureAdvised() // clear the latch

	srv.SetPressure(false)
	if got := srv.Store().Len(); got != n {
		t.Fatalf("unspill restored %d of %d pages", got, n)
	}
	for i := uint64(0); i < n; i++ {
		got, err := c.PageIn(i)
		if err != nil || got.Checksum() != fillPage(i).Checksum() {
			t.Fatalf("pagein %d after unspill: %v", i, err)
		}
	}
}

// TestSpillOverwriteStaysConsistent: a page overwritten while spilled
// must not resurface with stale contents after unspill.
func TestSpillOverwriteStaysConsistent(t *testing.T) {
	srv, addr := spillServer(t, 256)
	c := dial(t, addr, "spill-client", "")
	const n = 20
	for i := uint64(0); i < n; i++ {
		if err := c.PageOut(i, fillPage(i)); err != nil {
			t.Fatal(err)
		}
	}
	srv.SetPressure(true)
	// Overwrite everything (each key lands wherever it currently lives).
	for i := uint64(0); i < n; i++ {
		if err := c.PageOut(i, fillPage(i+1000)); err != nil {
			t.Fatalf("overwrite %d under pressure: %v", i, err)
		}
	}
	srv.SetPressure(false)
	for i := uint64(0); i < n; i++ {
		got, err := c.PageIn(i)
		if err != nil {
			t.Fatal(err)
		}
		if got.Checksum() != fillPage(i+1000).Checksum() {
			t.Fatalf("page %d has stale contents after spill round trip", i)
		}
	}
}

// TestSpillFreeRemovesBothTiers: FREE while pressured must remove the
// spilled copy too.
func TestSpillFreeRemovesBothTiers(t *testing.T) {
	srv, addr := spillServer(t, 256)
	c := dial(t, addr, "spill-client", "")
	for i := uint64(0); i < 10; i++ {
		if err := c.PageOut(i, fillPage(i)); err != nil {
			t.Fatal(err)
		}
	}
	srv.SetPressure(true)
	var keys []uint64
	for i := uint64(0); i < 10; i++ {
		keys = append(keys, i)
	}
	if err := c.Free(keys...); err != nil {
		t.Fatal(err)
	}
	srv.SetPressure(false)
	for i := uint64(0); i < 10; i++ {
		if _, err := c.PageIn(i); err == nil {
			t.Fatalf("freed page %d resurfaced from spill", i)
		}
	}
}

// TestSpillXorWritePath: the basic-parity XORWRITE path must compute
// deltas against spilled old versions.
func TestSpillXorWritePath(t *testing.T) {
	srv, addr := spillServer(t, 256)
	_, paddr := startServer(t, server.Config{CapacityPages: 256})
	c := dial(t, addr, "spill-client", "")
	pc := dial(t, paddr, "spill-client", "")

	old := fillPage(1)
	if err := c.XorWrite(7, old, paddr, 100); err != nil {
		t.Fatal(err)
	}
	srv.SetPressure(true) // key 7 may spill
	newer := fillPage(2)
	if err := c.XorWrite(7, newer, paddr, 100); err != nil {
		t.Fatalf("XorWrite against spilled old version: %v", err)
	}
	// Parity = old ^ (old^new) = new.
	parity, err := pc.PageIn(100)
	if err != nil || parity.Checksum() != newer.Checksum() {
		t.Fatalf("parity wrong after spilled XorWrite: %v", err)
	}
	got, err := c.PageIn(7)
	if err != nil || got.Checksum() != newer.Checksum() {
		t.Fatalf("data wrong after spilled XorWrite: %v", err)
	}
}

// TestSpillNamespacePurge: BYE must drop a client's spilled pages too.
func TestSpillNamespacePurge(t *testing.T) {
	srv, addr := spillServer(t, 256)
	c, err := client.Dial(addr, "spill-client", "")
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 10; i++ {
		if err := c.PageOut(i, fillPage(i)); err != nil {
			t.Fatal(err)
		}
	}
	srv.SetPressure(true)
	if err := c.Bye(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return srv.Store().Len() == 0 })
	srv.SetPressure(false)
	// Nothing may resurface for a new session of the same client.
	c2 := dial(t, addr, "spill-client", "")
	if _, err := c2.PageIn(0); err == nil {
		t.Fatal("purged client's spilled page resurfaced")
	}
}
