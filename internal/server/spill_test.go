package server_test

import (
	"os"
	"path/filepath"
	"testing"

	"rmp/internal/client"
	"rmp/internal/page"
	"rmp/internal/server"
	"rmp/internal/store"
)

// spillServer starts a server with the disk tier enabled (temp file).
func spillServer(t *testing.T, capacity int) (*server.Server, string) {
	t.Helper()
	return startServer(t, server.Config{CapacityPages: capacity, Spill: true})
}

// TestTierDemotionUnderPressure: §2.1 — pressure demotes part of the
// donated memory out of the hot tier, requests keep working, and
// clearing pressure promotes the pages back.
func TestTierDemotionUnderPressure(t *testing.T) {
	srv, addr := spillServer(t, 256)
	c := dial(t, addr, "spill-client", "")
	const n = 40
	for i := uint64(0); i < n; i++ {
		if err := c.PageOut(i, fillPage(i)); err != nil {
			t.Fatal(err)
		}
	}
	if srv.Store().Len() != n {
		t.Fatalf("setup: store holds %d", srv.Store().Len())
	}

	srv.SetPressure(true)
	occ := srv.Store().Occupancy()
	if occ.Hot >= n {
		t.Fatalf("pressure demoted nothing: still %d hot", occ.Hot)
	}
	if occ.Total() != n {
		t.Fatalf("demotion lost pages: %d of %d stored", occ.Total(), n)
	}
	// Every page — demoted or resident — must still be readable.
	for i := uint64(0); i < n; i++ {
		got, err := c.PageIn(i)
		if err != nil || got.Checksum() != fillPage(i).Checksum() {
			t.Fatalf("pagein %d under pressure: %v", i, err)
		}
	}
	c.PressureAdvised() // clear the latch

	srv.SetPressure(false)
	if occ := srv.Store().Occupancy(); occ.Hot != n {
		t.Fatalf("promotion restored %d of %d pages hot", occ.Hot, n)
	}
	for i := uint64(0); i < n; i++ {
		got, err := c.PageIn(i)
		if err != nil || got.Checksum() != fillPage(i).Checksum() {
			t.Fatalf("pagein %d after promotion: %v", i, err)
		}
	}
}

// TestTierAllocUnderPressure: a server with a disk tier keeps granting
// swap space while pressured — it demotes instead of denying — while
// DenyUnderPressure restores the paper's cliff for comparison runs.
func TestTierAllocUnderPressure(t *testing.T) {
	srv, addr := spillServer(t, 256)
	c := dial(t, addr, "tier-client", "")
	srv.SetPressure(true)
	if got, err := c.Alloc(8); err != nil || got != 8 {
		t.Fatalf("tiered server denied alloc under pressure: %d, %v", got, err)
	}

	dsrv, daddr := startServer(t, server.Config{CapacityPages: 256, Spill: true, DenyUnderPressure: true})
	dc := dial(t, daddr, "deny-client", "")
	dsrv.SetPressure(true)
	if got, _ := dc.Alloc(8); got != 0 {
		t.Fatalf("DenyUnderPressure server granted %d pages while pressured", got)
	}
}

// TestTierOverwriteStaysConsistent: a page overwritten while demoted
// must not resurface with stale contents after promotion.
func TestTierOverwriteStaysConsistent(t *testing.T) {
	srv, addr := spillServer(t, 256)
	c := dial(t, addr, "spill-client", "")
	const n = 20
	for i := uint64(0); i < n; i++ {
		if err := c.PageOut(i, fillPage(i)); err != nil {
			t.Fatal(err)
		}
	}
	srv.SetPressure(true)
	// Overwrite everything (each key lands wherever it currently lives).
	for i := uint64(0); i < n; i++ {
		if err := c.PageOut(i, fillPage(i+1000)); err != nil {
			t.Fatalf("overwrite %d under pressure: %v", i, err)
		}
	}
	srv.SetPressure(false)
	for i := uint64(0); i < n; i++ {
		got, err := c.PageIn(i)
		if err != nil {
			t.Fatal(err)
		}
		if got.Checksum() != fillPage(i+1000).Checksum() {
			t.Fatalf("page %d has stale contents after demotion round trip", i)
		}
	}
}

// TestTierFreeRemovesAllTiers: FREE while pressured must remove
// demoted copies too.
func TestTierFreeRemovesAllTiers(t *testing.T) {
	srv, addr := spillServer(t, 256)
	c := dial(t, addr, "spill-client", "")
	for i := uint64(0); i < 10; i++ {
		if err := c.PageOut(i, fillPage(i)); err != nil {
			t.Fatal(err)
		}
	}
	srv.SetPressure(true)
	var keys []uint64
	for i := uint64(0); i < 10; i++ {
		keys = append(keys, i)
	}
	if err := c.Free(keys...); err != nil {
		t.Fatal(err)
	}
	srv.SetPressure(false)
	for i := uint64(0); i < 10; i++ {
		if _, err := c.PageIn(i); err == nil {
			t.Fatalf("freed page %d resurfaced from a lower tier", i)
		}
	}
}

// TestTierXorWritePath: the basic-parity XORWRITE path must compute
// deltas against demoted old versions.
func TestTierXorWritePath(t *testing.T) {
	srv, addr := spillServer(t, 256)
	_, paddr := startServer(t, server.Config{CapacityPages: 256})
	c := dial(t, addr, "spill-client", "")
	pc := dial(t, paddr, "spill-client", "")

	old := fillPage(1)
	if err := c.XorWrite(7, old, paddr, 100); err != nil {
		t.Fatal(err)
	}
	srv.SetPressure(true) // key 7 may demote
	newer := fillPage(2)
	if err := c.XorWrite(7, newer, paddr, 100); err != nil {
		t.Fatalf("XorWrite against demoted old version: %v", err)
	}
	// Parity = old ^ (old^new) = new.
	parity, err := pc.PageIn(100)
	if err != nil || parity.Checksum() != newer.Checksum() {
		t.Fatalf("parity wrong after demoted XorWrite: %v", err)
	}
	got, err := c.PageIn(7)
	if err != nil || got.Checksum() != newer.Checksum() {
		t.Fatalf("data wrong after demoted XorWrite: %v", err)
	}
}

// TestTierNamespacePurge: BYE must drop a client's demoted pages too.
func TestTierNamespacePurge(t *testing.T) {
	srv, addr := spillServer(t, 256)
	c, err := client.Dial(addr, "spill-client", "")
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 10; i++ {
		if err := c.PageOut(i, fillPage(i)); err != nil {
			t.Fatal(err)
		}
	}
	srv.SetPressure(true)
	if err := c.Bye(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return srv.Store().Len() == 0 })
	srv.SetPressure(false)
	// Nothing may resurface for a new session of the same client.
	c2 := dial(t, addr, "spill-client", "")
	if _, err := c2.PageIn(0); err == nil {
		t.Fatal("purged client's demoted page resurfaced")
	}
}

// forceSpill drives every page it can out to the disk tier and
// returns the client keys now on disk (namespace tag stripped).
func forceSpill(t *testing.T, srv *server.Server) []uint64 {
	t.Helper()
	st := srv.Store()
	st.SetTargets(1, 1)
	st.Enforce()
	var spilled []uint64
	for _, k := range st.Keys() {
		if tier, ok := st.TierOf(k); ok && tier == store.TierDisk {
			spilled = append(spilled, k&(uint64(1)<<48-1))
		}
	}
	return spilled
}

// TestSpillRestartRecovery: a server restarting over a durable spill
// file serves the spilled pages back to the same client; the hot and
// compressed pages that died with the process are reported as cleanly
// gone (NOT_FOUND), never as garbage.
func TestSpillRestartRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spill.img")
	srv1, addr1 := startServer(t, server.Config{CapacityPages: 64, SpillPath: path})
	c1 := dial(t, addr1, "restart-client", "")
	const n = 16
	for i := uint64(0); i < n; i++ {
		if err := c1.PageOut(i, fillPage(i)); err != nil {
			t.Fatal(err)
		}
	}
	spilled := forceSpill(t, srv1)
	if len(spilled) < n-4 {
		t.Fatalf("forced spill left only %d of %d pages on disk", len(spilled), n)
	}
	c1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart over the same spill file. The first client name to
	// attach gets the first namespace tag again, so the same client
	// finds its keys.
	srv2, addr2 := startServer(t, server.Config{CapacityPages: 64, SpillPath: path})
	if got := srv2.Store().Len(); got != len(spilled) {
		t.Fatalf("restart recovered %d pages, want %d", got, len(spilled))
	}
	c2 := dial(t, addr2, "restart-client", "")
	onDisk := make(map[uint64]bool, len(spilled))
	for _, k := range spilled {
		onDisk[k] = true
	}
	for i := uint64(0); i < n; i++ {
		got, err := c2.PageIn(i)
		if onDisk[i] {
			if err != nil {
				t.Fatalf("recovered page %d unreadable after restart: %v", i, err)
			}
			if got.Checksum() != fillPage(i).Checksum() {
				t.Fatalf("recovered page %d corrupted after restart", i)
			}
		} else if err == nil {
			t.Fatalf("in-memory page %d impossibly survived the restart", i)
		}
	}
}

// TestSpillRestartCorruption: bit rot in the spill file must surface
// as a clean NOT_FOUND (the client reconstructs via its redundancy
// policy) — never as a successfully served garbage page.
func TestSpillRestartCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spill.img")
	srv1, addr1 := startServer(t, server.Config{CapacityPages: 64, SpillPath: path})
	c1 := dial(t, addr1, "rot-client", "")
	const n = 12
	for i := uint64(0); i < n; i++ {
		if err := c1.PageOut(i, fillPage(i)); err != nil {
			t.Fatal(err)
		}
	}
	spilled := forceSpill(t, srv1)
	if len(spilled) == 0 {
		t.Fatal("nothing spilled")
	}
	c1.Close()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip bytes in every slot's data region (headers intact, so the
	// keys still recover — the CRC must catch the rot at read time).
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	slotSize := int64(page.Size + 24)
	fi, _ := f.Stat()
	for off := int64(64); off < fi.Size(); off += slotSize {
		if _, err := f.WriteAt([]byte{0xde, 0xad, 0xbe, 0xef}, off); err != nil {
			t.Fatal(err)
		}
	}
	f.Close()

	srv2, addr2 := startServer(t, server.Config{CapacityPages: 64, SpillPath: path})
	c2 := dial(t, addr2, "rot-client", "")
	for _, k := range spilled {
		got, err := c2.PageIn(k)
		if err == nil && got.Checksum() == fillPage(k).Checksum() {
			continue // slot escaped the corruption pattern
		}
		if err == nil {
			t.Fatalf("corrupt page %d served as garbage", k)
		}
	}
	if lost := srv2.Store().Stats().Lost; lost == 0 {
		t.Fatal("corruption detected no lost pages")
	}
}
