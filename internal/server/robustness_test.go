package server_test

import (
	"encoding/binary"
	"math/rand"
	"net"
	"testing"
	"time"

	"rmp/internal/server"
	"rmp/internal/wire"
)

// TestServerSurvivesGarbageBytes: random junk on a connection must
// not take the server down or affect other clients.
func TestServerSurvivesGarbageBytes(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	good := dial(t, addr, "good-client", "")
	if err := good.PageOut(1, fillPage(1)); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 10; i++ {
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		junk := make([]byte, 64+rng.Intn(512))
		rng.Read(junk)
		nc.Write(junk)
		nc.Close()
	}

	// The well-behaved client is unaffected.
	got, err := good.PageIn(1)
	if err != nil || got.Checksum() != fillPage(1).Checksum() {
		t.Fatalf("good client broken by junk traffic: %v", err)
	}
}

// TestServerRejectsOversizedFrame: a frame claiming a huge payload is
// refused before any allocation.
func TestServerRejectsOversizedFrame(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	hdr := make([]byte, 12)
	binary.BigEndian.PutUint16(hdr[0:], wire.Magic)
	hdr[2] = wire.Version
	hdr[3] = byte(wire.THello)
	binary.BigEndian.PutUint32(hdr[8:], 1<<30) // absurd payload length
	if _, err := nc.Write(hdr); err != nil {
		t.Fatal(err)
	}
	// Server must drop the connection rather than try to read 1 GB.
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := nc.Read(buf); err == nil {
		t.Fatal("server answered an oversized frame")
	}
}

// TestServerHalfOpenConnection: a client that handshakes and goes
// silent must not wedge the server (other clients keep working).
func TestServerHalfOpenConnection(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := wire.Encode(nc, &wire.Msg{Type: wire.THello, Host: "zombie"}); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.Decode(nc); err != nil {
		t.Fatal(err)
	}
	// Now go silent. Another client must still be served.
	c := dial(t, addr, "live-client", "")
	if err := c.PageOut(5, fillPage(5)); err != nil {
		t.Fatalf("server wedged by half-open conn: %v", err)
	}
}

// TestServerWrongMagic: non-protocol TCP traffic (e.g. an HTTP probe)
// is dropped cleanly.
func TestServerWrongMagic(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.Write([]byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n"))
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 64)
	if n, err := nc.Read(buf); err == nil && n > 0 {
		t.Fatalf("server replied %q to an HTTP probe", buf[:n])
	}
}

// TestStatEndpoint: the STAT snapshot reflects store state.
func TestStatEndpoint(t *testing.T) {
	srv, addr := startServer(t, server.Config{CapacityPages: 100})
	c := dial(t, addr, "stat-client", "")
	for i := uint64(0); i < 7; i++ {
		if err := c.PageOut(i, fillPage(i)); err != nil {
			t.Fatal(err)
		}
	}
	info, err := c.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if info.StoredPages != 7 {
		t.Fatalf("StoredPages = %d, want 7", info.StoredPages)
	}
	if info.FreePages != srv.Store().Free() {
		t.Fatalf("FreePages = %d, want %d", info.FreePages, srv.Store().Free())
	}
}
