package server

import (
	"errors"

	"rmp/internal/disk"
	"rmp/internal/page"
	"rmp/internal/pagestore"
)

// This file implements the §2.1 pressure behaviour: when native
// memory-demanding processes start on the host, part of the donated
// memory is swapped out to a local spill file and requests touching
// those pages are serviced from the disk (slower — which is why the
// server simultaneously advises clients to migrate away).

// errNotAnywhere reports a key found neither in memory nor on spill.
var errNotAnywhere = pagestore.ErrNotFound

// spillExcess moves a fraction of the stored pages to the spill file.
func (s *Server) spillExcess() {
	if s.spill == nil {
		return
	}
	s.spillMu.Lock()
	defer s.spillMu.Unlock()
	frac := s.cfg.SpillFrac
	if frac <= 0 || frac > 1 {
		frac = 0.5
	}
	keys := s.store.Keys()
	n := int(float64(len(keys)) * frac)
	for _, k := range keys[:n] {
		data, err := s.store.Get(k)
		if err != nil {
			continue
		}
		if err := s.spill.Put(k, data); err != nil {
			s.logf("%s: spill of key %d failed: %v", s.cfg.Name, k, err)
			continue
		}
		s.store.Delete(k)
	}
	if n > 0 {
		s.logf("%s: spilled %d pages to disk under memory pressure", s.cfg.Name, n)
	}
}

// unspill brings every spilled page back into memory (pressure
// cleared). Pages that no longer fit stay spilled.
func (s *Server) unspill() {
	if s.spill == nil {
		return
	}
	s.spillMu.Lock()
	defer s.spillMu.Unlock()
	restored := 0
	for _, k := range s.spill.Keys() {
		data, err := s.spill.Get(k)
		if err != nil {
			continue
		}
		if err := s.store.Put(k, data); err != nil {
			break // memory full again; keep the rest spilled
		}
		s.spill.Delete(k)
		restored++
	}
	if restored > 0 {
		s.logf("%s: restored %d pages from spill", s.cfg.Name, restored)
	}
}

// getAnywhere reads a page from memory or, failing that, the spill.
func (s *Server) getAnywhere(key uint64) (page.Buf, error) {
	data, err := s.store.Get(key)
	if err == nil || s.spill == nil {
		return data, err
	}
	if !errors.Is(err, pagestore.ErrNotFound) {
		return nil, err
	}
	data, derr := s.spill.Get(key)
	if derr != nil {
		if errors.Is(derr, disk.ErrNotFound) {
			return nil, errNotAnywhere
		}
		return nil, derr
	}
	return data, nil
}

// putAnywhere stores a page, honouring pressure: under pressure (or
// when memory is full) the page goes to the spill file. Overwrites
// land wherever the current version lives so a key never exists in
// both places.
func (s *Server) putAnywhere(key uint64, data page.Buf) error {
	if s.spill == nil {
		return s.store.Put(key, data)
	}
	s.spillMu.Lock()
	defer s.spillMu.Unlock()
	return s.putLocked(key, data)
}

// putLocked is putAnywhere's body; caller holds spillMu.
func (s *Server) putLocked(key uint64, data page.Buf) error {
	// If the key currently lives on spill, overwrite it there.
	if _, err := s.spill.Get(key); err == nil {
		return s.spill.Put(key, data)
	}
	if s.pressure.Load() {
		// New stores are serviced from the disk while pressured, but
		// an existing in-memory version must not be duplicated.
		if _, err := s.store.Get(key); err == nil {
			return s.store.Put(key, data)
		}
		return s.spill.Put(key, data)
	}
	err := s.store.Put(key, data)
	if errors.Is(err, pagestore.ErrNoSpace) {
		return s.spill.Put(key, data)
	}
	return err
}

// deleteAnywhere removes keys from both tiers.
func (s *Server) deleteAnywhere(keys ...uint64) {
	s.store.Delete(keys...)
	if s.spill != nil {
		s.spill.Delete(keys...)
	}
}

// xorWriteAnywhere implements XORWRITE across tiers: store data under
// key and return old XOR new (old = zeros when absent).
func (s *Server) xorWriteAnywhere(key uint64, data page.Buf) (page.Buf, error) {
	if s.spill == nil {
		return s.store.XorWrite(key, data)
	}
	if err := data.CheckLen(); err != nil {
		return nil, err
	}
	s.spillMu.Lock()
	defer s.spillMu.Unlock()
	old, err := s.getAnywhere(key)
	delta := data.Clone()
	if err == nil {
		page.XORInto(delta, old)
	} else if !errors.Is(err, pagestore.ErrNotFound) {
		return nil, err
	}
	if err := s.putLocked(key, data); err != nil {
		return nil, err
	}
	return delta, nil
}

// xorMergeAnywhere implements XORDELTA across tiers.
func (s *Server) xorMergeAnywhere(key uint64, data page.Buf) error {
	if s.spill == nil {
		return s.store.XorMerge(key, data)
	}
	if err := data.CheckLen(); err != nil {
		return err
	}
	s.spillMu.Lock()
	defer s.spillMu.Unlock()
	old, err := s.getAnywhere(key)
	if err != nil {
		if !errors.Is(err, pagestore.ErrNotFound) {
			return err
		}
		return s.putLocked(key, data)
	}
	merged := old.Clone()
	page.XORInto(merged, data)
	return s.putLocked(key, merged)
}

// spilledKeysOf lists spilled keys belonging to a namespace tag.
func (s *Server) spilledKeysOf(tag uint16) []uint64 {
	if s.spill == nil {
		return nil
	}
	var out []uint64
	for _, k := range s.spill.Keys() {
		if uint16(k>>keyBits) == tag {
			out = append(out, k)
		}
	}
	return out
}
