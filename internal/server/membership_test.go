package server_test

import (
	"testing"
	"time"

	"rmp/internal/server"
)

func TestPingReportsLoadAndPeers(t *testing.T) {
	srv, addr := startServer(t, server.Config{})
	c := dial(t, addr, "client-a", "")

	free, draining, peers, err := c.Ping(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if free != 256 || draining || len(peers) != 0 {
		t.Fatalf("Ping = %d, %v, %v", free, draining, peers)
	}

	// Announce two peers (one duplicated); PONG gossips them back.
	if n, err := c.Join("peer1:7077"); err != nil || n != 1 {
		t.Fatalf("Join = %d, %v", n, err)
	}
	if n, err := c.Join("peer2:7077"); err != nil || n != 2 {
		t.Fatalf("Join = %d, %v", n, err)
	}
	if n, err := c.Join("peer1:7077"); err != nil || n != 2 {
		t.Fatalf("duplicate Join = %d, %v; want dedup at 2", n, err)
	}
	_, _, peers, err = c.Ping(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(peers) != 2 || peers[0] != "peer1:7077" || peers[1] != "peer2:7077" {
		t.Fatalf("gossiped peers = %v", peers)
	}

	st, err := c.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if st.Pings != 2 || len(st.Peers) != 2 || st.Draining {
		t.Fatalf("stat = pings %d, peers %v, draining %v", st.Pings, st.Peers, st.Draining)
	}
	if srv.Draining() {
		t.Fatal("server draining without being asked")
	}
}

func TestJoinRejectsEmptyAddress(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	c := dial(t, addr, "client-a", "")
	if _, err := c.Join(""); err == nil {
		t.Fatal("JOIN with empty address accepted")
	}
}

func TestDrainLifecycle(t *testing.T) {
	srv, addr := startServer(t, server.Config{CapacityPages: 16})
	c := dial(t, addr, "client-a", "")

	if err := c.PageOut(1, fillPage(1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	if !srv.Draining() {
		t.Fatal("DRAIN did not set the draining flag")
	}

	// Allocation is denied while draining...
	if n, err := c.Alloc(4); err != nil || n != 0 {
		t.Fatalf("Alloc while draining = %d, %v; want 0 grant", n, err)
	}
	// ...but stored pages remain readable so clients can migrate them.
	if _, err := c.PageIn(1); err != nil {
		t.Fatalf("PageIn while draining: %v", err)
	}

	// Every subsequent ack advises drain; the latch is sticky.
	_, draining, _, err := c.Ping(time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !draining || !c.DrainAdvised() {
		t.Fatal("drain advisory not delivered")
	}

	// Cancel: SetDraining(false) restores normal service.
	srv.SetDraining(false)
	if n, err := c.Alloc(4); err != nil || n != 4 {
		t.Fatalf("Alloc after drain cancel = %d, %v", n, err)
	}
}
