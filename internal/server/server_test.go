package server_test

import (
	"net"
	"strings"
	"testing"
	"time"

	"rmp/internal/client"
	"rmp/internal/page"
	"rmp/internal/server"
	"rmp/internal/wire"
)

// startServer launches a server on an ephemeral port and returns it
// with its address. The server is closed when the test ends.
func startServer(t *testing.T, cfg server.Config) (*server.Server, string) {
	t.Helper()
	if cfg.CapacityPages == 0 {
		cfg.CapacityPages = 256
	}
	s := server.New(cfg)
	if err := s.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s, s.Addr().String()
}

func dial(t *testing.T, addr, name, token string) *client.Conn {
	t.Helper()
	c, err := client.Dial(addr, name, token)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func fillPage(seed uint64) page.Buf {
	p := page.NewBuf()
	p.Fill(seed)
	return p
}

func TestPageOutPageInRoundTrip(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	c := dial(t, addr, "client-a", "")
	want := fillPage(42)
	if err := c.PageOut(7, want); err != nil {
		t.Fatal(err)
	}
	got, err := c.PageIn(7)
	if err != nil {
		t.Fatal(err)
	}
	if got.Checksum() != want.Checksum() {
		t.Fatal("page mangled in transit")
	}
}

func TestPageInMissing(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	c := dial(t, addr, "client-a", "")
	_, err := c.PageIn(999)
	if err == nil || !strings.Contains(err.Error(), "NOT_FOUND") {
		t.Fatalf("got %v, want NOT_FOUND", err)
	}
}

func TestAllocGrantAndExhaustion(t *testing.T) {
	_, addr := startServer(t, server.Config{CapacityPages: 10})
	c := dial(t, addr, "client-a", "")
	n, err := c.Alloc(6)
	if err != nil || n != 6 {
		t.Fatalf("Alloc(6) = %d, %v", n, err)
	}
	n, err = c.Alloc(6)
	if err != nil || n != 4 {
		t.Fatalf("Alloc(6) second = %d, %v; want partial grant 4", n, err)
	}
	n, err = c.Alloc(1)
	if err != nil || n != 0 {
		t.Fatalf("Alloc on full server = %d, %v; want 0, nil", n, err)
	}
}

func TestAuthTokenRequired(t *testing.T) {
	_, addr := startServer(t, server.Config{AuthToken: "sekrit"})
	if _, err := client.Dial(addr, "x", "wrong"); err == nil {
		t.Fatal("dial with wrong token succeeded")
	}
	c := dial(t, addr, "x", "sekrit")
	if err := c.PageOut(1, fillPage(1)); err != nil {
		t.Fatalf("authorized pageout failed: %v", err)
	}
}

func TestFreeReleasesPages(t *testing.T) {
	srv, addr := startServer(t, server.Config{})
	c := dial(t, addr, "client-a", "")
	for i := uint64(0); i < 5; i++ {
		if err := c.PageOut(i, fillPage(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Free(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if srv.Store().Len() != 2 {
		t.Fatalf("server holds %d pages, want 2", srv.Store().Len())
	}
	if _, err := c.PageIn(0); err == nil {
		t.Fatal("freed page still readable")
	}
	if _, err := c.PageIn(4); err != nil {
		t.Fatalf("surviving page unreadable: %v", err)
	}
}

func TestLoadReportsFreePages(t *testing.T) {
	_, addr := startServer(t, server.Config{CapacityPages: 100})
	c := dial(t, addr, "client-a", "")
	free, err := c.Load()
	if err != nil || free != 100 {
		t.Fatalf("Load = %d, %v; want 100", free, err)
	}
	if _, err := c.Alloc(30); err != nil {
		t.Fatal(err)
	}
	free, err = c.Load()
	if err != nil || free != 70 {
		t.Fatalf("Load after alloc = %d, %v; want 70", free, err)
	}
}

func TestNamespaceIsolationBetweenClients(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	a := dial(t, addr, "client-a", "")
	b := dial(t, addr, "client-b", "")
	pa, pb := fillPage(1), fillPage(2)
	if err := a.PageOut(7, pa); err != nil {
		t.Fatal(err)
	}
	if err := b.PageOut(7, pb); err != nil {
		t.Fatal(err)
	}
	got, err := a.PageIn(7)
	if err != nil || got.Checksum() != pa.Checksum() {
		t.Fatalf("client-a sees wrong page: %v", err)
	}
	got, err = b.PageIn(7)
	if err != nil || got.Checksum() != pb.Checksum() {
		t.Fatalf("client-b sees wrong page: %v", err)
	}
}

func TestSameClientSharesNamespaceAcrossConns(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	c1 := dial(t, addr, "client-a", "")
	c2 := dial(t, addr, "client-a", "")
	want := fillPage(9)
	if err := c1.PageOut(3, want); err != nil {
		t.Fatal(err)
	}
	got, err := c2.PageIn(3)
	if err != nil || got.Checksum() != want.Checksum() {
		t.Fatalf("second connection can't read page: %v", err)
	}
}

func TestPagesSurviveDisconnectWithoutBye(t *testing.T) {
	srv, addr := startServer(t, server.Config{})
	c, err := client.Dial(addr, "client-a", "")
	if err != nil {
		t.Fatal(err)
	}
	want := fillPage(5)
	if err := c.PageOut(1, want); err != nil {
		t.Fatal(err)
	}
	c.Close() // abrupt disconnect, no BYE
	waitFor(t, func() bool { return srv.Store().Len() == 1 })
	c2 := dial(t, addr, "client-a", "")
	got, err := c2.PageIn(1)
	if err != nil || got.Checksum() != want.Checksum() {
		t.Fatalf("page lost across reconnect: %v", err)
	}
}

func TestByePurgesClientState(t *testing.T) {
	srv, addr := startServer(t, server.Config{CapacityPages: 50})
	c, err := client.Dial(addr, "client-a", "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Alloc(20); err != nil {
		t.Fatal(err)
	}
	if err := c.PageOut(1, fillPage(1)); err != nil {
		t.Fatal(err)
	}
	if err := c.Bye(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return srv.Store().Len() == 0 && srv.Store().Free() == 50 })
}

func TestDropClient(t *testing.T) {
	srv, addr := startServer(t, server.Config{})
	c := dial(t, addr, "client-a", "")
	if err := c.PageOut(1, fillPage(1)); err != nil {
		t.Fatal(err)
	}
	srv.DropClient("client-a")
	if srv.Store().Len() != 0 {
		t.Fatal("DropClient left pages behind")
	}
}

func TestPressureAdvisory(t *testing.T) {
	srv, addr := startServer(t, server.Config{})
	c := dial(t, addr, "client-a", "")
	if err := c.PageOut(1, fillPage(1)); err != nil {
		t.Fatal(err)
	}
	if c.PressureAdvised() {
		t.Fatal("pressure advised while server idle")
	}
	srv.SetPressure(true)
	if n, err := c.Alloc(5); err != nil || n != 0 {
		t.Fatalf("Alloc under pressure = %d, %v; want 0 grant", n, err)
	}
	if !c.PressureAdvised() {
		t.Fatal("pressure advisory not latched")
	}
	if c.PressureAdvised() {
		t.Fatal("advisory not cleared after read")
	}
	// Existing pages must still be readable under pressure.
	if _, err := c.PageIn(1); err != nil {
		t.Fatalf("pagein under pressure: %v", err)
	}
	srv.SetPressure(false)
	if n, _ := c.Alloc(5); n != 5 {
		t.Fatal("alloc still denied after pressure cleared")
	}
	c.PressureAdvised() // clear latch from the pagein above
}

func TestPressureDelaySlowsService(t *testing.T) {
	srv, addr := startServer(t, server.Config{PressureDelay: 30 * time.Millisecond})
	c := dial(t, addr, "client-a", "")
	if err := c.PageOut(1, fillPage(1)); err != nil {
		t.Fatal(err)
	}
	srv.SetPressure(true)
	start := time.Now()
	if _, err := c.PageIn(1); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("pagein under pressure took %v, want >= 30ms", d)
	}
}

func TestXorWriteForwardsToParityServer(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	_, paddr := startServer(t, server.Config{})
	c := dial(t, addr, "client-a", "")
	pc := dial(t, paddr, "client-a", "")

	old := fillPage(1)
	newer := fillPage(2)
	if err := c.XorWrite(7, old, paddr, 100); err != nil {
		t.Fatal(err)
	}
	if err := c.XorWrite(7, newer, paddr, 100); err != nil {
		t.Fatal(err)
	}
	// Parity accumulated old (first delta) then old^new: net = new.
	parity, err := pc.PageIn(100)
	if err != nil {
		t.Fatal(err)
	}
	if parity.Checksum() != newer.Checksum() {
		t.Fatal("parity page is not old ^ (old^new) = new")
	}
	// Data server holds the newest version.
	got, err := c.PageIn(7)
	if err != nil || got.Checksum() != newer.Checksum() {
		t.Fatalf("data server lost latest version: %v", err)
	}
}

func TestXorWriteWithoutParityHostFails(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	c := dial(t, addr, "client-a", "")
	if err := c.XorWrite(7, fillPage(1), "", 0); err == nil {
		t.Fatal("XorWrite with empty parity host succeeded")
	}
}

func TestCorruptFrameRejected(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// Valid HELLO first.
	if err := wire.Encode(nc, &wire.Msg{Type: wire.THello, Host: "x"}); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.Decode(nc); err != nil {
		t.Fatal(err)
	}
	// PAGEOUT with a bad checksum must be refused, not stored.
	m := &wire.Msg{Type: wire.TPageOut, Key: 1, Data: fillPage(1), Checksum: 0xBAD}
	if err := wire.Encode(nc, m); err != nil {
		t.Fatal(err)
	}
	ack, err := wire.Decode(nc)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Status != wire.StatusBadChecksum {
		t.Fatalf("status = %v, want BAD_CHECKSUM", ack.Status)
	}
}

func TestFirstFrameMustBeHello(t *testing.T) {
	_, addr := startServer(t, server.Config{})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := wire.Encode(nc, &wire.Msg{Type: wire.TPageIn, Key: 1}); err != nil {
		t.Fatal(err)
	}
	ack, err := wire.Decode(nc)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Status != wire.StatusDenied {
		t.Fatalf("status = %v, want DENIED", ack.Status)
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	srv, addr := startServer(t, server.Config{})
	c := dial(t, addr, "client-a", "")
	if err := c.PageOut(1, fillPage(1)); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if _, err := c.PageIn(1); err == nil {
		t.Fatal("pagein succeeded after server close")
	}
}

// waitFor polls cond for up to a second; session teardown is
// asynchronous with respect to connection close.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached within 1s")
}
