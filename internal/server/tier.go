package server

import "time"

// Pressure-trace driver: replays an idle-memory profile (the weekly
// curve from internal/cluster, §4 of the paper) as live native memory
// pressure. Each tick the next sample's free-memory fraction becomes
// the tiered store's hot target — when workstation owners come back
// in the morning and idle memory shrinks, the server demotes donated
// pages into the compressed and disk tiers instead of denying swap
// space; overnight the pages climb back. The pressure advisory flag
// (FlagPressure on every ack) tracks a low-water mark on the same
// curve, so clients still learn that this host got slow.

// traceLoop applies cfg.PressureTrace forever, wrapping around, until
// Close closes stopTrace.
func (s *Server) traceLoop() {
	defer s.wg.Done()
	trace := s.cfg.PressureTrace
	tick := s.cfg.TraceTick
	if tick <= 0 {
		tick = time.Second
	}
	lowWater := s.cfg.TraceLowWater
	if lowWater <= 0 {
		lowWater = 0.5
	}
	// Normalize against the trace's own peak so any unit works.
	maxFree := 0.0
	for _, smp := range trace {
		if smp.FreeMB > maxFree {
			maxFree = smp.FreeMB
		}
	}
	if maxFree <= 0 {
		return
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for i := 0; ; i++ {
		frac := trace[i%len(trace)].FreeMB / maxFree
		hot := int(frac * float64(s.cfg.CapacityPages))
		if hot < 1 {
			hot = 1
		}
		s.store.SetTargets(hot, s.cfg.ColdPages)
		s.demoter.Kick()
		wasPressured := s.pressure.Swap(frac < lowWater)
		nowPressured := frac < lowWater
		if wasPressured && !nowPressured {
			// Pressure lifted: pull demoted pages back into fast memory.
			s.store.PromoteHot()
		}
		if wasPressured != nowPressured {
			s.logf("%s: trace pressure %v (free %.0f%%)", s.cfg.Name, nowPressured, frac*100)
		}
		select {
		case <-s.stopTrace:
			return
		case <-t.C:
		}
	}
}
