package page

import (
	"testing"
	"testing/quick"
)

func TestBufCheckLen(t *testing.T) {
	if err := NewBuf().CheckLen(); err != nil {
		t.Fatalf("NewBuf failed CheckLen: %v", err)
	}
	if err := Buf(make([]byte, 100)).CheckLen(); err == nil {
		t.Fatal("short buffer passed CheckLen")
	}
	if err := Buf(make([]byte, Size+1)).CheckLen(); err == nil {
		t.Fatal("long buffer passed CheckLen")
	}
}

func TestIDString(t *testing.T) {
	if got := ID(42).String(); got != "page(42)" {
		t.Errorf("ID(42).String() = %q", got)
	}
	if got := NoID.String(); got != "page(none)" {
		t.Errorf("NoID.String() = %q", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := NewBuf()
	a.Fill(1)
	b := a.Clone()
	b[0] ^= 0xFF
	if a[0] == b[0] {
		t.Fatal("Clone shares storage with original")
	}
}

func TestXORSelfIsZero(t *testing.T) {
	a := NewBuf()
	a.Fill(7)
	got := XOR(a, a)
	if !got.IsZero() {
		t.Fatal("a XOR a is not zero")
	}
}

func TestXORRecoversPage(t *testing.T) {
	// The fundamental parity property: given pages p0..p2 and their
	// parity, any single page is recoverable by XORing the rest.
	pages := make([]Buf, 3)
	parity := NewBuf()
	for i := range pages {
		pages[i] = NewBuf()
		pages[i].Fill(uint64(i + 100))
		XORInto(parity, pages[i])
	}
	for lost := range pages {
		rec := parity.Clone()
		for i, p := range pages {
			if i != lost {
				XORInto(rec, p)
			}
		}
		if rec.Checksum() != pages[lost].Checksum() {
			t.Fatalf("failed to recover page %d via parity", lost)
		}
	}
}

func TestXORIntoPanicsOnShort(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("XORInto accepted short buffers")
		}
	}()
	XORInto(make(Buf, 8), make(Buf, 8))
}

func TestFillDeterministic(t *testing.T) {
	a, b := NewBuf(), NewBuf()
	a.Fill(99)
	b.Fill(99)
	if a.Checksum() != b.Checksum() {
		t.Fatal("Fill with same seed produced different pages")
	}
	b.Fill(100)
	if a.Checksum() == b.Checksum() {
		t.Fatal("Fill with different seeds produced identical pages")
	}
}

func TestIsZero(t *testing.T) {
	b := NewBuf()
	if !b.IsZero() {
		t.Fatal("fresh buffer not zero")
	}
	b[Size-1] = 1
	if b.IsZero() {
		t.Fatal("nonzero buffer reported zero")
	}
}

func TestBytesToPages(t *testing.T) {
	cases := []struct {
		n    int64
		want int
	}{
		{0, 0}, {-5, 0}, {1, 1}, {Size, 1}, {Size + 1, 2},
		{24 << 20, 24 << 20 / Size},
	}
	for _, c := range cases {
		if got := BytesToPages(c.n); got != c.want {
			t.Errorf("BytesToPages(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestXORProperties(t *testing.T) {
	// Property: XOR is commutative and associative, and Fill-derived
	// pages round-trip through double XOR.
	f := func(s1, s2 uint64) bool {
		a, b := NewBuf(), NewBuf()
		a.Fill(s1)
		b.Fill(s2)
		ab := XOR(a, b)
		ba := XOR(b, a)
		if ab.Checksum() != ba.Checksum() {
			return false
		}
		back := XOR(ab, b)
		return back.Checksum() == a.Checksum()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkXORInto(b *testing.B) {
	dst, src := NewBuf(), NewBuf()
	src.Fill(1)
	b.SetBytes(Size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		XORInto(dst, src)
	}
}

func BenchmarkChecksum(b *testing.B) {
	p := NewBuf()
	p.Fill(3)
	b.SetBytes(Size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Checksum()
	}
}
