// Buffer pooling for the paging fast path. Steady-state pagein and
// pageout traffic recycles page buffers through a sync.Pool instead of
// allocating one per frame: when the pager is busy it is because host
// memory is scarce, which is exactly when per-frame garbage is least
// affordable.
//
// Two size classes exist:
//
//   - the page class (Size bytes) backs stored pages, parity
//     accumulators and XOR deltas;
//   - the frame class (FrameClass bytes) backs whole decoded wire
//     frames — header, request id and maximum payload — so the decoder
//     can read an entire frame into one pooled buffer.
//
// Ownership contract (see DESIGN.md "Hot path"): a buffer obtained
// from Get/GetFrame/GetN has exactly one owner at a time. Only the
// current owner may Put it, and Put transfers ownership to the pool —
// the caller must not retain any reference (including sub-slices)
// afterwards. Buffers received across an API boundary (a decoded
// frame's Data, a store lookup's result) are owned by whoever the API
// documents, never implicitly by the receiver. Put routes by capacity:
// a buffer whose capacity matches no class (for example a sub-slice
// that does not start at the buffer's origin) is discarded to the GC,
// counted in PoolStats.Discards — so a stray Put of foreign memory
// degrades to garbage, not corruption.
package page

import (
	"sync"
	"sync/atomic"
)

// FrameClass is the byte size of the frame pool class: room for a
// maximum wire payload plus the frame header and request id, so one
// pooled buffer holds an entire decoded frame. The wire package
// asserts at compile time that its frame limit fits.
const FrameClass = Size + 4096 + 16

// PoolStats is a point-in-time snapshot of one pool class's activity.
type PoolStats struct {
	Gets     uint64 // buffers handed out
	Misses   uint64 // Gets that had to allocate (pool was empty)
	Puts     uint64 // buffers accepted back
	Discards uint64 // Put calls rejected (capacity matched no class)
}

// Hits is the number of Gets served from the pool without allocating.
func (s PoolStats) Hits() uint64 { return s.Gets - s.Misses }

// poolCounters is the live atomic form of PoolStats.
type poolCounters struct {
	gets     atomic.Uint64
	misses   atomic.Uint64
	puts     atomic.Uint64
	discards atomic.Uint64
}

func (c *poolCounters) snapshot() PoolStats {
	return PoolStats{
		Gets:     c.gets.Load(),
		Misses:   c.misses.Load(),
		Puts:     c.puts.Load(),
		Discards: c.discards.Load(),
	}
}

var (
	pageCtr  poolCounters
	frameCtr poolCounters

	// The pools store *[N]byte rather than []byte: a pointer fits in an
	// interface without allocating, while boxing a slice header would
	// cost one allocation per Put — on the very path the pool exists to
	// keep allocation-free.
	pagePool  = sync.Pool{New: newPageArray}
	framePool = sync.Pool{New: newFrameArray}
)

// The New funcs live at package level (not as closures inside Get) so
// the escapegate attributes their inherent allocation to them, not to
// the hotpath Get functions.
func newPageArray() any {
	pageCtr.misses.Add(1)
	return new([Size]byte)
}

func newFrameArray() any {
	frameCtr.misses.Add(1)
	return new([FrameClass]byte)
}

// Get returns one page-sized buffer (len == Size) from the pool. The
// contents are arbitrary — callers that do not overwrite the whole
// page want GetZero. The caller owns the buffer until it calls Put.
//
//rmpvet:hotpath
func Get() Buf {
	pageCtr.gets.Add(1)
	arr := pagePool.Get().(*[Size]byte)
	return arr[:]
}

// GetZero returns a zeroed page-sized buffer from the pool, for use as
// a parity accumulator or any consumer that assumes fresh-buffer
// semantics.
//
//rmpvet:hotpath
func GetZero() Buf {
	b := Get()
	for i := range b {
		b[i] = 0
	}
	return b
}

// GetFrame returns one frame-class buffer (len == FrameClass), sized
// to hold an entire wire frame. Contents are arbitrary.
//
//rmpvet:hotpath
func GetFrame() []byte {
	frameCtr.gets.Add(1)
	arr := framePool.Get().(*[FrameClass]byte)
	return arr[:]
}

// GetN returns a pooled buffer of length n, backed by the smallest
// class that fits; lengths beyond FrameClass fall back to the
// allocator (and a later Put will discard them).
//
//rmpvet:hotpath
func GetN(n int) []byte {
	switch {
	case n < 0:
		panic("page: GetN with negative length")
	case n <= Size:
		return Get()[:n]
	case n <= FrameClass:
		return GetFrame()[:n]
	default:
		return make([]byte, n)
	}
}

// Put returns a buffer to its pool, routing by capacity. Buffers whose
// capacity matches no class — including sub-slices that do not start
// at a pooled buffer's origin — are discarded to the GC and counted,
// never pooled, so a mistaken Put cannot alias two owners onto the
// same memory. Put(nil) is a no-op. After Put the caller must drop
// every reference into the buffer.
//
//rmpvet:hotpath
func Put(b []byte) {
	switch cap(b) {
	case 0:
		return
	case Size:
		pageCtr.puts.Add(1)
		pagePool.Put((*[Size]byte)(b[:Size]))
	case FrameClass:
		frameCtr.puts.Add(1)
		framePool.Put((*[FrameClass]byte)(b[:FrameClass]))
	default:
		// Wrong-capacity buffers — including sub-slices off a pooled
		// buffer's origin and ordinary heap slices (JSON blobs, error
		// details) flowing through shared cleanup paths — fall to the
		// GC. The counter makes an unexpectedly cold pool diagnosable.
		pageCtr.discards.Add(1)
	}
}

// ClonePooled returns a pooled copy of b (same length), routed through
// GetN. The caller owns the copy and should Put it when done.
//
//rmpvet:hotpath
func (b Buf) ClonePooled() Buf {
	c := GetN(len(b))
	copy(c, b)
	return c
}

// Stats returns snapshots of the page-class and frame-class pool
// counters, in that order.
func Stats() (pageClass, frameClass PoolStats) {
	return pageCtr.snapshot(), frameCtr.snapshot()
}
