package page

import (
	"testing"
)

func TestPoolRoundTrip(t *testing.T) {
	b := Get()
	if len(b) != Size || cap(b) != Size {
		t.Fatalf("Get: len=%d cap=%d, want %d/%d", len(b), cap(b), Size, Size)
	}
	b.Fill(7)
	Put(b)
	// A page-class buffer must come back through the pool in
	// steady state (same P, no GC pressure in between).
	c := Get()
	if len(c) != Size {
		t.Fatalf("Get after Put: len=%d", len(c))
	}
	Put(c)

	f := GetFrame()
	if len(f) != FrameClass || cap(f) != FrameClass {
		t.Fatalf("GetFrame: len=%d cap=%d, want %d", len(f), cap(f), FrameClass)
	}
	Put(f)
}

func TestGetZeroIsZero(t *testing.T) {
	// Dirty a buffer, return it, and require the zeroed variant to be
	// actually zero even when served from the pool.
	b := Get()
	b.Fill(99)
	Put(b)
	z := GetZero()
	defer Put(z)
	if !z.IsZero() {
		t.Fatal("GetZero returned a dirty buffer")
	}
}

func TestGetNRouting(t *testing.T) {
	cases := []struct {
		n       int
		wantCap int
	}{
		{0, Size},
		{1, Size},
		{Size, Size},
		{Size + 1, FrameClass},
		{FrameClass, FrameClass},
	}
	for _, c := range cases {
		b := GetN(c.n)
		if len(b) != c.n || cap(b) != c.wantCap {
			t.Fatalf("GetN(%d): len=%d cap=%d, want len=%d cap=%d", c.n, len(b), cap(b), c.n, c.wantCap)
		}
		Put(b)
	}
	// Oversized requests fall back to the allocator.
	huge := GetN(FrameClass + 1)
	if len(huge) != FrameClass+1 {
		t.Fatalf("GetN oversize: len=%d", len(huge))
	}
	Put(huge) // must not pool it; routes to discard accounting
}

func TestPutForeignCapacityDiscards(t *testing.T) {
	_, _ = Stats() // touch the counters so the path is exercised
	before, _ := Stats()
	// A sub-slice that does not start at the buffer origin has a
	// capacity matching no class and must be discarded, not pooled.
	b := Get()
	Put(b[16:])
	after, _ := Stats()
	if after.Discards != before.Discards+1 {
		t.Fatalf("foreign-capacity Put: discards %d -> %d, want +1", before.Discards, after.Discards)
	}
	Put(b) // the original is still ours to return
	Put(nil)
}

func TestClonePooled(t *testing.T) {
	b := NewBuf()
	b.Fill(3)
	c := b.ClonePooled()
	if len(c) != len(b) || &c[0] == &b[0] {
		t.Fatal("ClonePooled must copy into distinct pooled memory")
	}
	for i := range c {
		if c[i] != b[i] {
			t.Fatalf("ClonePooled differs at byte %d", i)
		}
	}
	Put(c)
}

func TestPoolStatsAccounting(t *testing.T) {
	before, _ := Stats()
	b := Get()
	Put(b)
	after, _ := Stats()
	if after.Gets != before.Gets+1 {
		t.Fatalf("Gets %d -> %d, want +1", before.Gets, after.Gets)
	}
	if after.Puts != before.Puts+1 {
		t.Fatalf("Puts %d -> %d, want +1", before.Puts, after.Puts)
	}
	if after.Hits() > after.Gets {
		t.Fatal("Hits exceeds Gets")
	}
}

func TestPoolZeroAllocSteadyState(t *testing.T) {
	// Prime the pool, then require the Get/Put cycle itself to be
	// allocation-free: the whole point of pooling the hot path.
	Put(Get())
	if avg := testing.AllocsPerRun(100, func() {
		b := Get()
		Put(b)
	}); avg != 0 {
		t.Fatalf("pooled Get/Put allocates %.1f objects/cycle, want 0", avg)
	}
}

func BenchmarkXORWords(b *testing.B) {
	dst, src := NewBuf(), NewBuf()
	dst.Fill(1)
	src.Fill(2)
	b.SetBytes(Size)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		XORWords(dst, src)
	}
}

func BenchmarkXORBytesRef(b *testing.B) {
	dst, src := NewBuf(), NewBuf()
	dst.Fill(1)
	src.Fill(2)
	b.SetBytes(Size)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		XORBytesRef(dst, src)
	}
}

func BenchmarkPooledGetPut(b *testing.B) {
	Put(Get())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Put(Get())
	}
}
