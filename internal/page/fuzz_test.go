package page

import (
	"bytes"
	"testing"
)

// FuzzXORIntoWordKernel cross-checks the word-wide XOR kernel against
// the byte-loop reference on arbitrary lengths (odd sizes, misaligned
// tails via the off skews) and on exactly-aliased dst/src. The two
// kernels must agree byte for byte everywhere the contract covers:
// disjoint buffers and dst == src.
func FuzzXORIntoWordKernel(f *testing.F) {
	f.Add([]byte{}, uint8(0), uint8(0))
	f.Add([]byte{1}, uint8(0), uint8(0))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7}, uint8(1), uint8(2))
	f.Add(bytes.Repeat([]byte{0xaa}, 33), uint8(3), uint8(5))
	f.Add(bytes.Repeat([]byte{0x5a}, 257), uint8(7), uint8(1))
	f.Add(make([]byte, 8192), uint8(0), uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, off1, off2 uint8) {
		// Misalign both buffers independently: slice the shared input at
		// two skews so the word kernel sees arbitrary (mis)alignment of
		// dst vs src and an arbitrary tail length.
		o1, o2 := int(off1%16), int(off2%16)
		if o1 > len(data) {
			o1 = len(data)
		}
		if o2 > len(data) {
			o2 = len(data)
		}
		dst := append([]byte(nil), data[o1:]...)
		src := append([]byte(nil), data[o2:]...)

		wantDst := append([]byte(nil), dst...)
		wn := XORBytesRef(wantDst, src)

		gotDst := append([]byte(nil), dst...)
		gn := XORWords(gotDst, src)

		if gn != wn {
			t.Fatalf("XORWords processed %d bytes, reference %d", gn, wn)
		}
		if !bytes.Equal(gotDst, wantDst) {
			t.Fatalf("disjoint: word kernel diverges from byte reference\n got %x\nwant %x", gotDst, wantDst)
		}

		// Exact aliasing: dst == src must zero the buffer, same as the
		// byte loop.
		alias := append([]byte(nil), dst...)
		XORWords(alias, alias)
		for i, v := range alias {
			if v != 0 {
				t.Fatalf("aliased XORWords left non-zero byte %#x at %d", v, i)
			}
		}
	})
}

// TestXORIntoMatchesReference pins the full-page kernel against the
// reference on deterministic pseudo-random pages.
func TestXORIntoMatchesReference(t *testing.T) {
	a, b := NewBuf(), NewBuf()
	a.Fill(1)
	b.Fill(2)
	want := a.Clone()
	XORBytesRef(want, b)
	got := a.Clone()
	XORInto(got, b)
	if !bytes.Equal(got, want) {
		t.Fatal("XORInto diverges from byte reference on a full page")
	}
	// Self-inverse: got ^ b == a again.
	XORInto(got, b)
	if !bytes.Equal(got, a) {
		t.Fatal("XORInto is not self-inverse")
	}
}
