// Package page defines the fundamental paging types shared by every
// component of the remote memory pager: page size, page identifiers,
// and small helpers for checksumming and XOR used by the parity code.
//
// The paper's testbed (DEC OSF/1 on a DEC-Alpha 3000/300) pages in
// 8 KB units; that constant is baked in here and everything else is
// expressed in pages.
package page

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Size is the size of a page in bytes. The DEC Alpha used 8 KB pages
// and all of the paper's per-page cost numbers (11.24 ms per network
// transfer, ~17 ms per disk transfer) are quoted for 8 KB.
const Size = 8192

// ID identifies a page within a client's swap space. IDs are dense
// block numbers: the OSF/1 kernel addresses its paging block device by
// block offset, and the pager maps block number -> page ID one to one.
type ID uint64

// NoID is the zero sentinel for "no page".
const NoID = ID(1<<64 - 1)

func (id ID) String() string {
	if id == NoID {
		return "page(none)"
	}
	return fmt.Sprintf("page(%d)", uint64(id))
}

// Buf is a single page worth of data. Using a named slice type (rather
// than [Size]byte) keeps pages heap-allocated and cheap to hand between
// goroutines while letting the compiler check sizes at API boundaries
// via CheckLen.
type Buf []byte

// NewBuf allocates a zeroed page buffer.
func NewBuf() Buf { return make(Buf, Size) }

// CheckLen reports whether b holds exactly one page.
func (b Buf) CheckLen() error {
	if len(b) != Size {
		return errWrongLen(len(b))
	}
	return nil
}

// errWrongLen stays out of line so CheckLen's fast path inlines into
// allocation-gated callers without dragging fmt boxing with it.
//
//go:noinline
func errWrongLen(n int) error {
	return fmt.Errorf("page: buffer is %d bytes, want %d", n, Size)
}

// Clone returns an independent copy of the page.
func (b Buf) Clone() Buf {
	c := make(Buf, len(b))
	copy(c, b)
	return c
}

// Checksum returns a CRC-32 (Castagnoli) of the page contents. The wire
// protocol carries it so that corrupted transfers are detected rather
// than silently handed back to the kernel as "paged-in data".
func (b Buf) Checksum() uint32 {
	return crc32.Checksum(b, castagnoli)
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// XORInto computes dst ^= src over one page. It is the core primitive
// of both the basic parity policy and parity logging. dst and src must
// both be exactly one page long, and either identical or disjoint
// (partial overlap is unsupported, as for XORWords).
//
//rmpvet:hotpath
func XORInto(dst, src Buf) {
	if len(dst) != Size || len(src) != Size {
		panicXORLen(len(dst), len(src))
	}
	XORWords(dst, src)
}

// panicXORLen stays out of line so XORInto's fast path inlines without
// dragging fmt boxing into allocation-gated callers.
//
//go:noinline
func panicXORLen(d, s int) {
	panic(fmt.Sprintf("page: XORInto on %d/%d byte buffers", d, s))
}

// XORWords computes dst[i] ^= src[i] for i < min(len(dst), len(src))
// and returns the number of bytes processed. The kernel works eight
// bytes at a time through encoding/binary (which the compiler lowers
// to single word loads and stores — no unsafe involved), with a byte
// tail for lengths that are not a multiple of 8.
//
// dst and src must be either the same slice or disjoint: with exact
// aliasing every word XORs with itself (yielding zeros, as the byte
// loop would), but partially overlapping buffers see whole-word
// read-modify-write ordering and diverge from the byte-at-a-time
// reference. No caller in this repo overlaps pages partially; the
// fuzz suite pins the exact-alias and disjoint behaviors.
//
//rmpvet:hotpath
func XORWords(dst, src []byte) int {
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	i := 0
	for ; i+32 <= n; i += 32 {
		d, s := dst[i:i+32:i+32], src[i:i+32:i+32]
		binary.LittleEndian.PutUint64(d[0:8], binary.LittleEndian.Uint64(d[0:8])^binary.LittleEndian.Uint64(s[0:8]))
		binary.LittleEndian.PutUint64(d[8:16], binary.LittleEndian.Uint64(d[8:16])^binary.LittleEndian.Uint64(s[8:16]))
		binary.LittleEndian.PutUint64(d[16:24], binary.LittleEndian.Uint64(d[16:24])^binary.LittleEndian.Uint64(s[16:24]))
		binary.LittleEndian.PutUint64(d[24:32], binary.LittleEndian.Uint64(d[24:32])^binary.LittleEndian.Uint64(s[24:32]))
	}
	for ; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:i+8], binary.LittleEndian.Uint64(dst[i:i+8])^binary.LittleEndian.Uint64(src[i:i+8]))
	}
	for ; i < n; i++ {
		dst[i] ^= src[i]
	}
	return n
}

// XORBytesRef is the byte-at-a-time reference kernel XORWords is
// checked against (differential fuzz and the hotpath benchmark's
// before/after ratio). It is not used on any production path.
func XORBytesRef(dst, src []byte) int {
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	for i := 0; i < n; i++ {
		dst[i] ^= src[i]
	}
	return n
}

// XOR returns a fresh page equal to a ^ b.
//
// Deprecated: XOR allocates a page per call. Production paths use
// Get/GetZero + XORInto over pooled buffers; XOR survives for tests,
// where an extra allocation buys clarity.
func XOR(a, b Buf) Buf {
	out := a.Clone()
	XORInto(out, b)
	return out
}

// IsZero reports whether the page is all zero bytes (e.g. a fully
// reclaimed parity buffer).
func (b Buf) IsZero() bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// Fill writes a deterministic pattern derived from seed into the page;
// used heavily by tests and by the example workload generators.
func (b Buf) Fill(seed uint64) {
	if len(b) != Size {
		panic("page: Fill on short buffer")
	}
	x := seed*2862933555777941757 + 3037000493
	for i := 0; i < Size; i += 8 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		b[i+0] = byte(x)
		b[i+1] = byte(x >> 8)
		b[i+2] = byte(x >> 16)
		b[i+3] = byte(x >> 24)
		b[i+4] = byte(x >> 32)
		b[i+5] = byte(x >> 40)
		b[i+6] = byte(x >> 48)
		b[i+7] = byte(x >> 56)
	}
}

// BytesToPages returns the number of pages needed to hold n bytes.
func BytesToPages(n int64) int {
	if n <= 0 {
		return 0
	}
	return int((n + Size - 1) / Size)
}
