// Package page defines the fundamental paging types shared by every
// component of the remote memory pager: page size, page identifiers,
// and small helpers for checksumming and XOR used by the parity code.
//
// The paper's testbed (DEC OSF/1 on a DEC-Alpha 3000/300) pages in
// 8 KB units; that constant is baked in here and everything else is
// expressed in pages.
package page

import (
	"fmt"
	"hash/crc32"
)

// Size is the size of a page in bytes. The DEC Alpha used 8 KB pages
// and all of the paper's per-page cost numbers (11.24 ms per network
// transfer, ~17 ms per disk transfer) are quoted for 8 KB.
const Size = 8192

// ID identifies a page within a client's swap space. IDs are dense
// block numbers: the OSF/1 kernel addresses its paging block device by
// block offset, and the pager maps block number -> page ID one to one.
type ID uint64

// NoID is the zero sentinel for "no page".
const NoID = ID(1<<64 - 1)

func (id ID) String() string {
	if id == NoID {
		return "page(none)"
	}
	return fmt.Sprintf("page(%d)", uint64(id))
}

// Buf is a single page worth of data. Using a named slice type (rather
// than [Size]byte) keeps pages heap-allocated and cheap to hand between
// goroutines while letting the compiler check sizes at API boundaries
// via CheckLen.
type Buf []byte

// NewBuf allocates a zeroed page buffer.
func NewBuf() Buf { return make(Buf, Size) }

// CheckLen reports whether b holds exactly one page.
func (b Buf) CheckLen() error {
	if len(b) != Size {
		return errWrongLen(len(b))
	}
	return nil
}

// errWrongLen stays out of line so CheckLen's fast path inlines into
// allocation-gated callers without dragging fmt boxing with it.
//
//go:noinline
func errWrongLen(n int) error {
	return fmt.Errorf("page: buffer is %d bytes, want %d", n, Size)
}

// Clone returns an independent copy of the page.
func (b Buf) Clone() Buf {
	c := make(Buf, len(b))
	copy(c, b)
	return c
}

// Checksum returns a CRC-32 (Castagnoli) of the page contents. The wire
// protocol carries it so that corrupted transfers are detected rather
// than silently handed back to the kernel as "paged-in data".
func (b Buf) Checksum() uint32 {
	return crc32.Checksum(b, castagnoli)
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// XORInto computes dst ^= src over one page. It is the core primitive
// of both the basic parity policy and parity logging. dst and src must
// both be exactly one page long.
func XORInto(dst, src Buf) {
	if len(dst) != Size || len(src) != Size {
		panic(fmt.Sprintf("page: XORInto on %d/%d byte buffers", len(dst), len(src)))
	}
	// Word-at-a-time XOR; the backing arrays come from make([]byte,8192)
	// so they are machine-word aligned in practice, but the loop below
	// is correct regardless because it indexes bytes in groups of 8.
	for i := 0; i < Size; i += 8 {
		dst[i+0] ^= src[i+0]
		dst[i+1] ^= src[i+1]
		dst[i+2] ^= src[i+2]
		dst[i+3] ^= src[i+3]
		dst[i+4] ^= src[i+4]
		dst[i+5] ^= src[i+5]
		dst[i+6] ^= src[i+6]
		dst[i+7] ^= src[i+7]
	}
}

// XOR returns a fresh page equal to a ^ b.
func XOR(a, b Buf) Buf {
	out := a.Clone()
	XORInto(out, b)
	return out
}

// IsZero reports whether the page is all zero bytes (e.g. a fully
// reclaimed parity buffer).
func (b Buf) IsZero() bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}

// Fill writes a deterministic pattern derived from seed into the page;
// used heavily by tests and by the example workload generators.
func (b Buf) Fill(seed uint64) {
	if len(b) != Size {
		panic("page: Fill on short buffer")
	}
	x := seed*2862933555777941757 + 3037000493
	for i := 0; i < Size; i += 8 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		b[i+0] = byte(x)
		b[i+1] = byte(x >> 8)
		b[i+2] = byte(x >> 16)
		b[i+3] = byte(x >> 24)
		b[i+4] = byte(x >> 32)
		b[i+5] = byte(x >> 40)
		b[i+6] = byte(x >> 48)
		b[i+7] = byte(x >> 56)
	}
}

// BytesToPages returns the number of pages needed to hold n bytes.
func BytesToPages(n int64) int {
	if n <= 0 {
		return 0
	}
	return int((n + Size - 1) / Size)
}
