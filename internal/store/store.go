// Package store implements the tiered server-side page store that
// replaced the flat pagestore map: three tiers trading latency for
// resident memory so a server under native pressure degrades service
// instead of denying it (the paper's §2.1/§4.6 servers fall off a
// cliff — deny allocations, evict wholesale; this store turns the
// cliff into a slope).
//
//   - Hot: uncompressed pages in memory with LRU tracking — the
//     flat map of internal/pagestore, reused as the data plane.
//   - Cold: flate-compressed pages in memory. A demoted page costs a
//     decompression (~tens of µs) to serve instead of a disk seek.
//   - Disk: pages spilled to a local file (internal/disk), optionally
//     durable (self-describing slots, CRC-verified, recovered by scan
//     on restart).
//
// Quota accounting (Reserve/Release, overflow headroom) follows the
// paper's §2.1/§2.2 rules unchanged and counts pages in *all* tiers:
// the donation contract bounds what is stored, the tier targets bound
// what stays resident and uncompressed. Demotion is driven by the
// hot/cold targets — lowered under native memory pressure, typically
// from the cluster's idle-memory curve — enforced inline in small
// amortized steps on the write path and drained fully by a
// cancellable background Demoter. Reads transparently promote from
// any tier.
package store

import (
	"container/list"
	"errors"
	"fmt"
	"log"
	"sort"
	"sync"

	"rmp/internal/disk"
	"rmp/internal/page"
	"rmp/internal/pagestore"
)

// Errors. Aliased to the pagestore sentinels so existing errors.Is
// call sites keep working across the migration.
var (
	ErrNoSpace  = pagestore.ErrNoSpace
	ErrNotFound = pagestore.ErrNotFound
	// ErrCorrupt reports a disk-tier page that failed verification:
	// the page is lost (cleanly — never served as garbage).
	ErrCorrupt = disk.ErrCorrupt
)

// Tier identifies where a page currently lives.
type Tier int

const (
	TierHot Tier = iota
	TierCold
	TierDisk
)

func (t Tier) String() string {
	switch t {
	case TierHot:
		return "hot"
	case TierCold:
		return "cold"
	case TierDisk:
		return "disk"
	}
	return fmt.Sprintf("Tier(%d)", int(t))
}

// Config parametrizes a Tiered store.
type Config struct {
	// CapacityPages is the donated memory in pages — the hard limit on
	// stored pages across every tier, including overflow headroom.
	CapacityPages int
	// OverflowFrac is the fraction of capacity kept as overflow for
	// parity logging (the paper uses 0.10).
	OverflowFrac float64
	// HotPages is the resident uncompressed target; 0 means the full
	// capacity may stay hot.
	HotPages int
	// ColdPages is the compressed-resident target; 0 means unbounded
	// (up to capacity).
	ColdPages int
	// Spill enables the disk tier on a throwaway temp file.
	Spill bool
	// SpillPath enables a durable disk tier at the given path: slots
	// are self-describing and CRC-verified, and opening an existing
	// file recovers its pages (the restart path). Implies Spill.
	SpillPath string
	// DiskModel charges synthetic latency per disk-tier access.
	DiskModel disk.LatencyModel
	// Logger receives diagnostics; nil silences them.
	Logger *log.Logger
}

// Stats counts store activity. All fields are totals since creation.
// The first six match the old flat pagestore counters one to one.
type Stats struct {
	Puts      uint64
	Gets      uint64
	Deletes   uint64
	XorWrites uint64
	Misses    uint64
	Denied    uint64

	// Per-tier read hits: which tier served each successful Get.
	HotHits  uint64
	ColdHits uint64
	DiskHits uint64

	// Demotions counts hot→cold compressions, Spills cold→disk
	// writes, Promotions cold/disk→hot restores on access.
	Demotions  uint64
	Spills     uint64
	Promotions uint64

	// Lost counts disk-tier pages dropped after failing verification
	// (reported cleanly via ErrCorrupt, never served as garbage).
	Lost uint64
}

// Occupancy is a point-in-time view of where pages live.
type Occupancy struct {
	Hot, Cold, Disk int
	// ColdBytes is the resident compressed footprint of the cold tier.
	ColdBytes int64
	// HotTarget and ColdTarget are the current demotion thresholds.
	HotTarget, ColdTarget int
}

// Total is the stored page count across every tier.
func (o Occupancy) Total() int { return o.Hot + o.Cold + o.Disk }

// Tiered is the three-tier page store. The zero value is not usable;
// call New. All methods are safe for concurrent use.
type Tiered struct {
	mu sync.Mutex

	capacity     int
	overflowFrac float64
	// reserved is the pages promised via Reserve. Guarded by mu.
	reserved int

	// hot is the uncompressed tier's data plane (the flat pagestore
	// map); hotLRU/hotElem impose recency order on its keys, most
	// recent at the front. Guarded by mu.
	hot     *pagestore.Store
	hotLRU  *list.List
	hotElem map[uint64]*list.Element

	// cold holds flate-compressed pages, LRU-ordered like hot.
	// Guarded by mu.
	cold      map[uint64]coldPage
	coldLRU   *list.List
	coldElem  map[uint64]*list.Element
	coldBytes int64

	// onDisk tracks spilled keys; disk is the backing file (nil when
	// the disk tier is disabled). Disk I/O runs under mu, like the
	// old server spillMu. Guarded by mu.
	onDisk map[uint64]struct{}
	disk   *disk.Store

	// hotTarget/coldTarget are the demotion thresholds. Guarded by mu.
	hotTarget  int
	coldTarget int

	comp   *compressor
	logger *log.Logger

	// stats is the activity counters. Guarded by mu.
	stats Stats
}

// maxInlineDemotions bounds tier enforcement piggybacked on a single
// store operation, keeping put/get latency bounded; the background
// Demoter (or an explicit Enforce) drains the rest.
const maxInlineDemotions = 4

// enforceChunk bounds pages moved per lock acquisition during a full
// Enforce/PromoteHot drain, so requests interleave with bulk demotion.
const enforceChunk = 32

// New creates a tiered store. It returns an error only when a
// configured durable spill file cannot be opened or recovered.
func New(cfg Config) (*Tiered, error) {
	if cfg.CapacityPages < 0 {
		cfg.CapacityPages = 0
	}
	if cfg.OverflowFrac < 0 {
		cfg.OverflowFrac = 0
	}
	s := &Tiered{
		capacity:     cfg.CapacityPages,
		overflowFrac: cfg.OverflowFrac,
		hot:          pagestore.New(cfg.CapacityPages, cfg.OverflowFrac),
		hotLRU:       list.New(),
		hotElem:      make(map[uint64]*list.Element),
		cold:         make(map[uint64]coldPage),
		coldLRU:      list.New(),
		coldElem:     make(map[uint64]*list.Element),
		onDisk:       make(map[uint64]struct{}),
		comp:         newCompressor(),
		logger:       cfg.Logger,
		hotTarget:    cfg.HotPages,
		coldTarget:   cfg.ColdPages,
	}
	if s.hotTarget <= 0 || s.hotTarget > s.capacity {
		s.hotTarget = s.capacity
	}
	if s.coldTarget <= 0 || s.coldTarget > s.capacity {
		s.coldTarget = s.capacity
	}
	switch {
	case cfg.SpillPath != "":
		d, err := disk.OpenDurable(cfg.SpillPath, cfg.DiskModel)
		if err != nil {
			return nil, err
		}
		s.disk = d
		for _, k := range d.Keys() {
			s.onDisk[k] = struct{}{}
		}
		if n := len(s.onDisk); n > 0 {
			s.logf("store: recovered %d spilled pages from %s", n, cfg.SpillPath)
		}
	case cfg.Spill:
		d, err := disk.OpenTemp(cfg.DiskModel)
		if err != nil {
			return nil, err
		}
		s.disk = d
	}
	return s, nil
}

// Close releases the disk tier (if any).
func (s *Tiered) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.disk != nil {
		return s.disk.Close()
	}
	return nil
}

func (s *Tiered) logf(format string, args ...any) {
	if s.logger != nil {
		s.logger.Printf(format, args...)
	}
}

// --- quota accounting (identical math to the flat pagestore) -------

// reservable is the quota Reserve may promise: capacity shrunk by the
// overflow fraction. Caller holds mu.
//
//rmpvet:holds Tiered.mu
func (s *Tiered) reservable() int {
	return int(float64(s.capacity)/(1+s.overflowFrac) + 0.5)
}

// Reserve asks the store to promise n more pages of swap space,
// returning the number granted (possibly 0). Grants never dip into
// the overflow headroom; stored pages may.
func (s *Tiered) Reserve(n int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	free := s.reservable() - s.reserved
	if free <= 0 {
		s.stats.Denied++
		return 0
	}
	if n > free {
		n = free
	}
	s.reserved += n
	return n
}

// Release returns n previously reserved pages to the pool.
func (s *Tiered) Release(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reserved -= n
	if s.reserved < 0 {
		s.reserved = 0
	}
}

// Free returns the number of pages Reserve could still promise.
func (s *Tiered) Free() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	f := s.reservable() - s.reserved
	if f < 0 {
		f = 0
	}
	return f
}

// InOverflow reports whether stored pages (across every tier) exceed
// the reservable quota — the client should run parity-group GC soon.
func (s *Tiered) InOverflow() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.totalLocked() > s.reservable()
}

//rmpvet:holds Tiered.mu
func (s *Tiered) totalLocked() int {
	return len(s.hotElem) + len(s.cold) + len(s.onDisk)
}

// Len returns the number of stored pages across every tier.
func (s *Tiered) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.totalLocked()
}

// --- data plane ----------------------------------------------------

// Put stores a copy of data under key, replacing any previous version
// in whatever tier it lived. New pages land hot; tier targets are
// enforced in a bounded inline step. ErrNoSpace only when the store
// is at hard capacity across all tiers.
//
//rmpvet:hotpath
func (s *Tiered) Put(key uint64, data page.Buf) error {
	if err := data.CheckLen(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.storeLocked(key, data); err != nil {
		return err
	}
	s.stats.Puts++
	s.enforceLocked(maxInlineDemotions)
	return nil
}

// storeLocked inserts data hot, displacing any older version of key
// from the cold or disk tiers. Caller holds mu.
//
//rmpvet:holds Tiered.mu
func (s *Tiered) storeLocked(key uint64, data page.Buf) error {
	if _, hot := s.hotElem[key]; !hot {
		_, cold := s.cold[key]
		_, spilled := s.onDisk[key]
		if !cold && !spilled && s.totalLocked() >= s.capacity {
			s.stats.Denied++
			return ErrNoSpace
		}
		s.dropColdLocked(key)
		s.dropDiskLocked(key)
	}
	if err := s.hot.Put(key, data); err != nil {
		return err
	}
	s.touchHotLocked(key)
	return nil
}

// touchHotLocked moves key to the hot LRU front, inserting it if new.
//
//rmpvet:holds Tiered.mu
func (s *Tiered) touchHotLocked(key uint64) {
	if e, ok := s.hotElem[key]; ok {
		s.hotLRU.MoveToFront(e)
		return
	}
	s.hotElem[key] = s.hotLRU.PushFront(key)
}

//rmpvet:holds Tiered.mu
func (s *Tiered) dropColdLocked(key uint64) {
	if e, ok := s.coldElem[key]; ok {
		s.coldLRU.Remove(e)
		delete(s.coldElem, key)
		s.coldBytes -= int64(len(s.cold[key].data))
		delete(s.cold, key)
	}
}

//rmpvet:holds Tiered.mu
func (s *Tiered) dropDiskLocked(key uint64) {
	if _, ok := s.onDisk[key]; ok {
		delete(s.onDisk, key)
		s.disk.Delete(key)
	}
}

// Get returns a copy of the page stored under key, promoting it to
// the hot tier when it was demoted. The copy is a pooled page-class
// buffer owned exclusively by the caller, who may page.Put it when
// done (or drop it to the GC). A disk-tier page that fails
// verification is dropped and reported with ErrCorrupt — a clean
// loss, never silent corruption.
//
//rmpvet:hotpath
func (s *Tiered) Get(key uint64) (page.Buf, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.hotElem[key]; ok {
		data, err := s.hot.Get(key)
		if err != nil {
			return nil, err
		}
		s.touchHotLocked(key)
		s.stats.Gets++
		s.stats.HotHits++
		return data, nil
	}
	if cp, ok := s.cold[key]; ok {
		data, err := decompress(cp)
		if err != nil {
			return nil, err
		}
		// promoteLocked stores its own copy hot, so data is exclusively
		// the caller's — no second clone.
		s.promoteLocked(key, data, TierCold)
		s.stats.Gets++
		s.stats.ColdHits++
		return data, nil
	}
	if _, ok := s.onDisk[key]; ok {
		data, err := s.disk.Get(key)
		if err != nil {
			if errorsIsCorrupt(err) {
				s.dropDiskLocked(key)
				s.stats.Lost++
				s.logf("store: disk-tier page %d failed verification, dropped: %v", key, err)
			}
			return nil, err
		}
		s.promoteLocked(key, data, TierDisk)
		s.stats.Gets++
		s.stats.DiskHits++
		return data, nil
	}
	s.stats.Misses++
	return nil, ErrNotFound
}

// promoteLocked moves a demoted page back into the hot tier after a
// read, then re-enforces the targets (bounded). Caller holds mu.
//
//rmpvet:holds Tiered.mu
func (s *Tiered) promoteLocked(key uint64, data page.Buf, from Tier) {
	switch from {
	case TierCold:
		s.dropColdLocked(key)
	case TierDisk:
		s.dropDiskLocked(key)
	}
	if s.hot.Put(key, data) == nil {
		s.touchHotLocked(key)
		s.stats.Promotions++
	}
	s.enforceLocked(maxInlineDemotions)
}

// Delete removes keys from every tier; missing keys are ignored
// (frees are idempotent so a retried FREE cannot fail).
func (s *Tiered) Delete(keys ...uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, k := range keys {
		found := false
		if e, ok := s.hotElem[k]; ok {
			s.hotLRU.Remove(e)
			delete(s.hotElem, k)
			s.hot.Delete(k)
			found = true
		}
		if _, ok := s.cold[k]; ok {
			s.dropColdLocked(k)
			found = true
		}
		if _, ok := s.onDisk[k]; ok {
			s.dropDiskLocked(k)
			found = true
		}
		if found {
			s.stats.Deletes++
		}
	}
}

// peekLocked reads a page from any tier without promotion — the
// read half of the XOR read-modify-write cycles. Caller holds mu.
//
//rmpvet:holds Tiered.mu
func (s *Tiered) peekLocked(key uint64) (page.Buf, error) {
	if _, ok := s.hotElem[key]; ok {
		return s.hot.Get(key)
	}
	if cp, ok := s.cold[key]; ok {
		return decompress(cp)
	}
	if _, ok := s.onDisk[key]; ok {
		return s.disk.Get(key)
	}
	return nil, ErrNotFound
}

// XorWrite stores data under key and returns old XOR new, where a
// missing old page counts as zeros (§2.2 step 1). The old version is
// read from whatever tier holds it; the new version lands hot.
func (s *Tiered) XorWrite(key uint64, data page.Buf) (page.Buf, error) {
	if err := data.CheckLen(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	old, err := s.peekLocked(key)
	delta := data.ClonePooled()
	switch {
	case err == nil:
		page.XORInto(delta, old)
		page.Put(old)
	case errorsIsNotFound(err):
		// absent old page = zeros
	default:
		return nil, err
	}
	if err := s.storeLocked(key, data); err != nil {
		return nil, err
	}
	s.stats.XorWrites++
	s.enforceLocked(maxInlineDemotions)
	return delta, nil
}

// XorMerge XORs data into the page at key (missing page = zeros) —
// the parity-server half of the basic parity policy (§2.2 step 2).
func (s *Tiered) XorMerge(key uint64, data page.Buf) error {
	if err := data.CheckLen(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	old, err := s.peekLocked(key)
	merged, owned := data, false
	switch {
	case err == nil:
		// peekLocked returned a fresh copy: merge into it in place.
		merged, owned = old, true
		page.XORInto(merged, data)
	case errorsIsNotFound(err):
		// first delta lands verbatim
	default:
		return err
	}
	err = s.storeLocked(key, merged)
	if owned {
		page.Put(merged)
	}
	if err != nil {
		return err
	}
	s.stats.XorWrites++
	s.enforceLocked(maxInlineDemotions)
	return nil
}

// Keys returns all stored keys across every tier in ascending order;
// used by recovery tooling and tests.
func (s *Tiered) Keys() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]uint64, 0, s.totalLocked())
	for _, k := range s.hot.Keys() {
		keys = append(keys, k)
	}
	for k := range s.cold {
		keys = append(keys, k)
	}
	for k := range s.onDisk {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// TierOf reports which tier currently holds key.
func (s *Tiered) TierOf(key uint64) (Tier, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.hotElem[key]; ok {
		return TierHot, true
	}
	if _, ok := s.cold[key]; ok {
		return TierCold, true
	}
	if _, ok := s.onDisk[key]; ok {
		return TierDisk, true
	}
	return 0, false
}

// Stats returns a snapshot of the activity counters.
func (s *Tiered) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Occupancy returns the per-tier page counts and current targets.
func (s *Tiered) Occupancy() Occupancy {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Occupancy{
		Hot: len(s.hotElem), Cold: len(s.cold), Disk: len(s.onDisk),
		ColdBytes: s.coldBytes,
		HotTarget: s.hotTarget, ColdTarget: s.coldTarget,
	}
}

// String describes the store's occupancy.
func (s *Tiered) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return fmt.Sprintf("store{%d/%d pages (hot %d cold %d disk %d), %d reserved}",
		s.totalLocked(), s.capacity, len(s.hotElem), len(s.cold), len(s.onDisk), s.reserved)
}

// --- tier movement -------------------------------------------------

// SetTargets adjusts the demotion thresholds: at most hot pages stay
// uncompressed and at most cold pages stay compressed in memory
// (excess spills to disk when a disk tier exists). Zero or negative
// restores "full capacity". Movement happens lazily — inline steps on
// the data path, the background Demoter, or an explicit Enforce.
func (s *Tiered) SetTargets(hot, cold int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if hot <= 0 || hot > s.capacity {
		hot = s.capacity
	}
	if cold <= 0 || cold > s.capacity {
		cold = s.capacity
	}
	s.hotTarget, s.coldTarget = hot, cold
}

// Targets returns the current hot and cold tier targets.
func (s *Tiered) Targets() (hot, cold int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hotTarget, s.coldTarget
}

// Enforce demotes until both tier targets hold, in chunks so
// concurrent requests interleave with the drain. Returns pages moved.
func (s *Tiered) Enforce() int {
	moved := 0
	for {
		s.mu.Lock()
		n := s.enforceLocked(enforceChunk)
		s.mu.Unlock()
		moved += n
		if n == 0 {
			return moved
		}
	}
}

// enforceLocked demotes at most budget pages toward the targets:
// hot LRU tails compress into the cold tier, cold LRU tails spill to
// disk. Returns pages moved. Caller holds mu.
//
//rmpvet:holds Tiered.mu
func (s *Tiered) enforceLocked(budget int) int {
	moved := 0
	for moved < budget && len(s.hotElem) > s.hotTarget {
		if !s.demoteOneLocked() {
			break
		}
		moved++
	}
	for moved < budget && s.disk != nil && len(s.cold) > s.coldTarget {
		if !s.spillOneLocked() {
			break
		}
		moved++
	}
	return moved
}

// demoteOneLocked compresses the least-recently-used hot page into
// the cold tier. Caller holds mu.
//
//rmpvet:holds Tiered.mu
func (s *Tiered) demoteOneLocked() bool {
	e := s.hotLRU.Back()
	if e == nil {
		return false
	}
	key := e.Value.(uint64)
	data, err := s.hot.Get(key)
	if err != nil {
		// Inconsistent index; drop the entry rather than loop forever.
		s.hotLRU.Remove(e)
		delete(s.hotElem, key)
		return true
	}
	cp := s.comp.compress(data)
	page.Put(data)
	s.cold[key] = cp
	s.coldElem[key] = s.coldLRU.PushFront(key)
	s.coldBytes += int64(len(cp.data))
	s.hotLRU.Remove(e)
	delete(s.hotElem, key)
	s.hot.Delete(key)
	s.stats.Demotions++
	return true
}

// spillOneLocked writes the least-recently-used cold page to the disk
// tier. Caller holds mu.
//
//rmpvet:holds Tiered.mu
func (s *Tiered) spillOneLocked() bool {
	e := s.coldLRU.Back()
	if e == nil {
		return false
	}
	key := e.Value.(uint64)
	data, err := decompress(s.cold[key])
	if err != nil {
		s.logf("store: cold page %d unreadable during spill: %v", key, err)
		s.dropColdLocked(key)
		s.stats.Lost++
		return true
	}
	if err := s.disk.Put(key, data); err != nil {
		s.logf("store: spill of page %d failed: %v", key, err)
		page.Put(data)
		return false
	}
	page.Put(data)
	s.onDisk[key] = struct{}{}
	s.dropColdLocked(key)
	s.stats.Spills++
	return true
}

// PromoteHot pulls demoted pages back into memory while the hot
// target has room — cold pages first (most recent first), then disk.
// The eager inverse of Enforce, used when native pressure clears.
// Returns pages promoted.
func (s *Tiered) PromoteHot() int {
	moved := 0
	for {
		s.mu.Lock()
		n := 0
		for n < enforceChunk && len(s.hotElem) < s.hotTarget {
			if !s.promoteOneLocked() {
				break
			}
			n++
		}
		s.mu.Unlock()
		moved += n
		if n == 0 {
			return moved
		}
	}
}

//rmpvet:holds Tiered.mu
func (s *Tiered) promoteOneLocked() bool {
	if e := s.coldLRU.Front(); e != nil {
		key := e.Value.(uint64)
		data, err := decompress(s.cold[key])
		if err != nil {
			s.logf("store: cold page %d unreadable during promote: %v", key, err)
			s.dropColdLocked(key)
			s.stats.Lost++
			return true
		}
		if s.hot.Put(key, data) != nil {
			page.Put(data)
			return false
		}
		page.Put(data)
		s.dropColdLocked(key)
		s.touchHotLocked(key)
		s.stats.Promotions++
		return true
	}
	for key := range s.onDisk {
		data, err := s.disk.Get(key)
		if err != nil {
			s.dropDiskLocked(key)
			s.stats.Lost++
			s.logf("store: disk page %d unreadable during promote: %v", key, err)
			return true
		}
		if s.hot.Put(key, data) != nil {
			page.Put(data)
			return false
		}
		page.Put(data)
		s.dropDiskLocked(key)
		s.touchHotLocked(key)
		s.stats.Promotions++
		return true
	}
	return false
}

// errorsIsNotFound reports the not-found condition from any tier.
func errorsIsNotFound(err error) bool {
	return errors.Is(err, ErrNotFound) || errors.Is(err, disk.ErrNotFound)
}

// errorsIsCorrupt reports a failed disk-tier verification.
func errorsIsCorrupt(err error) bool {
	return errors.Is(err, disk.ErrCorrupt)
}
