package store

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"rmp/internal/page"
)

func mkPage(seed uint64) page.Buf {
	p := page.NewBuf()
	p.Fill(seed)
	return p
}

func newTiered(t *testing.T, cfg Config) *Tiered {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetAcrossTiers(t *testing.T) {
	s := newTiered(t, Config{CapacityPages: 64, Spill: true})
	const n = 12
	for i := uint64(0); i < n; i++ {
		if err := s.Put(i, mkPage(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Drive everything down: one page hot, one cold, rest on disk.
	s.SetTargets(1, 1)
	s.Enforce()
	occ := s.Occupancy()
	if occ.Hot != 1 || occ.Cold != 1 || occ.Disk != n-2 {
		t.Fatalf("after enforce: %+v", occ)
	}
	if occ.Total() != n {
		t.Fatalf("enforce lost pages: total %d", occ.Total())
	}
	// Read one page from each tier first so every per-tier hit counter
	// moves, then sweep everything.
	for _, k := range s.Keys() {
		if tier, ok := s.TierOf(k); ok && tier == TierHot {
			if _, err := s.Get(k); err != nil {
				t.Fatalf("hot get %d: %v", k, err)
			}
			break
		}
	}
	for _, k := range s.Keys() {
		if tier, ok := s.TierOf(k); ok && tier == TierCold {
			if _, err := s.Get(k); err != nil {
				t.Fatalf("cold get %d: %v", k, err)
			}
			break
		}
	}
	// Every page reads back intact from whatever tier holds it, and the
	// read promotes it (targets allow only 1 hot, so it re-demotes, but
	// the data must be right).
	for i := uint64(0); i < n; i++ {
		got, err := s.Get(i)
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if got.Checksum() != mkPage(i).Checksum() {
			t.Fatalf("page %d corrupted by tier round trip", i)
		}
	}
	st := s.Stats()
	if st.HotHits == 0 || st.ColdHits == 0 || st.DiskHits == 0 {
		t.Fatalf("expected hits from every tier: %+v", st)
	}
}

func TestLRUDemotionOrder(t *testing.T) {
	s := newTiered(t, Config{CapacityPages: 64})
	for i := uint64(0); i < 8; i++ {
		if err := s.Put(i, mkPage(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch page 0 so it is most recent; demote all but two.
	if _, err := s.Get(0); err != nil {
		t.Fatal(err)
	}
	s.SetTargets(2, 0)
	s.Enforce()
	if tier, _ := s.TierOf(0); tier != TierHot {
		t.Fatalf("most-recently-used page demoted first: tier %v", tier)
	}
	if tier, _ := s.TierOf(1); tier != TierCold {
		t.Fatalf("least-recently-used page still hot: tier %v", tier)
	}
}

func TestPromoteHotRestores(t *testing.T) {
	s := newTiered(t, Config{CapacityPages: 64, Spill: true})
	const n = 10
	for i := uint64(0); i < n; i++ {
		if err := s.Put(i, mkPage(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.SetTargets(1, 1)
	s.Enforce()
	s.SetTargets(0, 0) // back to full capacity
	if got := s.PromoteHot(); got != n-1 {
		t.Fatalf("promoted %d, want %d", got, n-1)
	}
	if occ := s.Occupancy(); occ.Hot != n || occ.Cold != 0 || occ.Disk != 0 {
		t.Fatalf("promotion incomplete: %+v", occ)
	}
}

func TestCapacityAcrossTiers(t *testing.T) {
	s := newTiered(t, Config{CapacityPages: 8, Spill: true})
	s.SetTargets(2, 2)
	for i := uint64(0); i < 8; i++ {
		if err := s.Put(i, mkPage(i)); err != nil {
			t.Fatalf("put %d within capacity: %v", i, err)
		}
	}
	s.Enforce()
	// Tiers bound residency, not storage: the 9th page must be denied
	// even though the hot tier has room.
	if err := s.Put(99, mkPage(99)); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("put beyond capacity: %v", err)
	}
	// Overwriting a demoted page is not growth and must succeed.
	if err := s.Put(0, mkPage(1000)); err != nil {
		t.Fatalf("overwrite at capacity: %v", err)
	}
}

func TestQuotaMatchesFlatStore(t *testing.T) {
	s := newTiered(t, Config{CapacityPages: 110, OverflowFrac: 0.10})
	if got := s.Reserve(200); got != 100 {
		t.Fatalf("reserve granted %d, want 100 (overflow held back)", got)
	}
	if got := s.Free(); got != 0 {
		t.Fatalf("free after full reserve: %d", got)
	}
	s.Release(40)
	if got := s.Free(); got != 40 {
		t.Fatalf("free after release: %d", got)
	}
	// Overflow: stored pages may exceed the reservable quota.
	for i := uint64(0); i < 105; i++ {
		if err := s.Put(i, mkPage(i)); err != nil {
			t.Fatalf("put %d into overflow: %v", i, err)
		}
	}
	if !s.InOverflow() {
		t.Fatal("overflow not reported")
	}
}

func TestXorAcrossTiers(t *testing.T) {
	s := newTiered(t, Config{CapacityPages: 64, Spill: true})
	old := mkPage(7)
	if _, err := s.XorWrite(1, old); err != nil {
		t.Fatal(err)
	}
	// Demote the old version all the way to disk.
	s.SetTargets(1, 1)
	s.Enforce()
	s.Put(50, mkPage(50)) // occupy the hot slot so key 1 stays low
	s.Enforce()
	if tier, _ := s.TierOf(1); tier == TierHot {
		t.Skip("key 1 unexpectedly hot; demotion order changed")
	}
	newer := mkPage(8)
	delta, err := s.XorWrite(1, newer)
	if err != nil {
		t.Fatalf("XorWrite against demoted old: %v", err)
	}
	want := newer.Clone()
	page.XORInto(want, old)
	if delta.Checksum() != want.Checksum() {
		t.Fatal("delta computed against wrong old version")
	}
	// XorMerge against a demoted parity page.
	s.Enforce()
	if err := s.XorMerge(1, delta); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	// new ^ (old^new) = old.
	if got.Checksum() != old.Checksum() {
		t.Fatal("XorMerge against demoted page produced wrong contents")
	}
}

func TestDeleteSpansTiers(t *testing.T) {
	s := newTiered(t, Config{CapacityPages: 64, Spill: true})
	for i := uint64(0); i < 9; i++ {
		if err := s.Put(i, mkPage(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.SetTargets(3, 3)
	s.Enforce()
	var keys []uint64
	for i := uint64(0); i < 9; i++ {
		keys = append(keys, i)
	}
	s.Delete(keys...)
	if got := s.Len(); got != 0 {
		t.Fatalf("delete left %d pages", got)
	}
	if got := len(s.Keys()); got != 0 {
		t.Fatalf("keys survived delete: %d", got)
	}
}

func TestDurableRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spill.img")
	s1, err := New(Config{CapacityPages: 32, SpillPath: path})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 8; i++ {
		if err := s1.Put(i, mkPage(i)); err != nil {
			t.Fatal(err)
		}
	}
	s1.SetTargets(1, 1)
	s1.Enforce()
	s1.Delete(2) // a freed page must not resurrect
	occ := s1.Occupancy()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := newTiered(t, Config{CapacityPages: 32, SpillPath: path})
	if got := s2.Len(); got != occ.Disk {
		t.Fatalf("recovered %d pages, spilled %d", got, occ.Disk)
	}
	if _, err := s2.Get(2); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted page resurrected: %v", err)
	}
	for _, k := range s2.Keys() {
		got, err := s2.Get(k)
		if err != nil {
			t.Fatalf("recovered page %d unreadable: %v", k, err)
		}
		if got.Checksum() != mkPage(k).Checksum() {
			t.Fatalf("recovered page %d corrupted", k)
		}
	}
}

func TestDemoterEnforcesAndStops(t *testing.T) {
	s := newTiered(t, Config{CapacityPages: 64, Spill: true})
	d := s.StartDemoter(time.Millisecond)
	for i := uint64(0); i < 20; i++ {
		if err := s.Put(i, mkPage(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.SetTargets(4, 4)
	d.Kick()
	deadline := time.Now().Add(2 * time.Second)
	for {
		occ := s.Occupancy()
		if occ.Hot <= 4 && occ.Cold <= 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("demoter never enforced targets: %+v", occ)
		}
		time.Sleep(time.Millisecond)
	}
	d.Close()
	d.Close() // idempotent
}

// TestConcurrentOpsUnderDemotion exercises Reserve/Put/Get/Delete racing
// the background demoter with shifting targets; run with -race.
func TestConcurrentOpsUnderDemotion(t *testing.T) {
	s := newTiered(t, Config{CapacityPages: 256, Spill: true})
	d := s.StartDemoter(time.Millisecond)
	defer d.Close()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	time.AfterFunc(300*time.Millisecond, func() { close(stop) })
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(w * 1000)
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				k := base + i%50
				s.Reserve(1)
				if err := s.Put(k, mkPage(k)); err != nil {
					t.Errorf("put %d: %v", k, err)
					return
				}
				if got, err := s.Get(k); err != nil || got.Checksum() != mkPage(k).Checksum() {
					t.Errorf("get %d: %v", k, err)
					return
				}
				if i%7 == 0 {
					s.Delete(k)
				}
				s.Release(1)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				s.SetTargets(8, 8)
			} else {
				s.SetTargets(0, 0)
				s.PromoteHot()
			}
			d.Kick()
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
}

func TestCompressRoundTrip(t *testing.T) {
	c := newCompressor()
	// Structured page (repeated records, like real swapped-out heap):
	// compresses. page.Fill noise deliberately does not.
	structured := page.NewBuf()
	for i := range structured {
		structured[i] = byte(i % 64)
	}
	cp := c.compress(structured)
	if cp.raw {
		t.Fatal("structured page did not compress")
	}
	if len(cp.data) >= page.Size {
		t.Fatalf("compressed page grew: %d bytes", len(cp.data))
	}
	got, err := decompress(cp)
	if err != nil {
		t.Fatal(err)
	}
	if got.Checksum() != structured.Checksum() {
		t.Fatal("compression round trip mangled the page")
	}
	// Incompressible page: stored raw, still intact.
	noisy := page.NewBuf()
	x := uint32(0x9e3779b9)
	for i := range noisy {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		noisy[i] = byte(x)
	}
	cp2 := c.compress(noisy)
	got2, err := decompress(cp2)
	if err != nil {
		t.Fatal(err)
	}
	if got2.Checksum() != noisy.Checksum() {
		t.Fatal("raw fallback mangled the page")
	}
}
