package store

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"

	"rmp/internal/page"
)

// Cold-tier page compression: stdlib flate at BestSpeed. Swapped-out
// pages are overwhelmingly structured (zero runs, repeated records),
// so even the fastest setting typically shrinks them several-fold; a
// page that flate cannot shrink is kept raw, flagged, so the cold
// tier never costs more memory than the hot tier did.

// coldPage is one compressed-tier entry.
type coldPage struct {
	data []byte
	// raw marks an incompressible page stored verbatim.
	raw bool
}

// compressor is a reusable flate encoder. Not safe for concurrent
// use; the Tiered store serializes access under its mutex.
type compressor struct {
	buf bytes.Buffer
	w   *flate.Writer
}

func newCompressor() *compressor {
	c := &compressor{}
	// BestSpeed: demotion sits on the background worker and sometimes
	// the put path, so latency matters more than ratio.
	c.w, _ = flate.NewWriter(&c.buf, flate.BestSpeed)
	return c
}

// compress encodes one page, falling back to a raw copy when flate
// does not shrink it.
func (c *compressor) compress(data page.Buf) coldPage {
	c.buf.Reset()
	c.w.Reset(&c.buf)
	if _, err := c.w.Write(data); err == nil && c.w.Close() == nil && c.buf.Len() < page.Size {
		return coldPage{data: append([]byte(nil), c.buf.Bytes()...)}
	}
	return coldPage{data: data.Clone(), raw: true}
}

// decompress restores a cold page to its 8 KB form in a pooled
// page-class buffer owned by the caller.
func decompress(cp coldPage) (page.Buf, error) {
	if cp.raw {
		return page.Buf(cp.data).ClonePooled(), nil
	}
	r := flate.NewReader(bytes.NewReader(cp.data))
	defer r.Close()
	buf := page.Get()
	if _, err := io.ReadFull(r, buf); err != nil {
		page.Put(buf)
		return nil, fmt.Errorf("store: decompress cold page: %w", err)
	}
	return buf, nil
}
