package store

import (
	"sync"
	"time"
)

// Demoter is the cancellable background worker that keeps a Tiered
// store inside its tier targets: each tick it demotes hot LRU tails
// to the cold tier and spills cold tails to disk until the targets
// hold. Inline enforcement on the data path moves at most a few pages
// per operation; the Demoter drains the rest, so lowering the hot
// target (native memory pressure setting in) frees resident memory
// within a tick or two without stalling any request.
type Demoter struct {
	stop chan struct{}
	done chan struct{}
	kick chan struct{}
	once sync.Once
}

// StartDemoter launches the demotion worker, ticking every `every`
// (default 25 ms when zero). Stop it with Close; the store must
// outlive the worker.
func (s *Tiered) StartDemoter(every time.Duration) *Demoter {
	if every <= 0 {
		every = 25 * time.Millisecond
	}
	d := &Demoter{
		stop: make(chan struct{}),
		done: make(chan struct{}),
		kick: make(chan struct{}, 1),
	}
	go func() {
		defer close(d.done)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-d.stop:
				return
			case <-t.C:
			case <-d.kick:
			}
			s.Enforce()
		}
	}()
	return d
}

// Kick wakes the worker immediately (e.g. right after a target drop)
// instead of waiting for the next tick. Never blocks.
func (d *Demoter) Kick() {
	select {
	case d.kick <- struct{}{}:
	default:
	}
}

// Close stops the worker and waits for it to exit. Idempotent.
func (d *Demoter) Close() {
	d.once.Do(func() { close(d.stop) })
	<-d.done
}
