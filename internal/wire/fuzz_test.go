package wire

import (
	"bytes"
	"encoding/binary"
	"testing"

	"rmp/internal/page"
)

// FuzzDecode hammers the frame decoder with arbitrary bytes: it must
// never panic or over-allocate, only return errors.
func FuzzDecode(f *testing.F) {
	// Seed with valid frames of each interesting shape.
	seed := func(m *Msg) {
		var buf bytes.Buffer
		if err := Encode(&buf, m); err == nil {
			f.Add(buf.Bytes())
		}
	}
	seed(&Msg{Type: THello, Host: "client", Data: []byte("token")})
	seed(&Msg{Type: TLoad})
	seed(&Msg{Type: TFree, Keys: []uint64{1, 2, 3}})
	data := page.NewBuf()
	data.Fill(1)
	seed((&Msg{Type: TPageOut, Key: 9, Data: data}).WithChecksum())
	// Membership messages: heartbeat, peer announce, graceful drain.
	seed(&Msg{Type: TPing})
	seed(&Msg{Type: TPong, N: 17, Flags: FlagDrain, Data: []byte(`{"peers":["127.0.0.1:7078"]}`)})
	seed(&Msg{Type: TJoin, Host: "10.0.0.9:7077"})
	seed(&Msg{Type: TJoinAck, N: 2})
	seed(&Msg{Type: TDrain})
	seed(&Msg{Type: TDrainAck, Flags: FlagDrain})
	f.Add([]byte{})
	f.Add([]byte{0x52, 0x4D, 1, 1, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF})

	// Adversarial corpus: the frames a broken or hostile peer actually
	// produces. Each must decode to an error, never a panic or an
	// unbounded allocation.
	//
	// Truncated headers — every prefix of a valid frame shorter than
	// the 12-byte header.
	var whole bytes.Buffer
	if err := Encode(&whole, &Msg{Type: TLoad}); err != nil {
		f.Fatal(err)
	}
	for i := 1; i < headerLen; i++ {
		f.Add(whole.Bytes()[:i])
	}
	// Header intact, payload cut off mid-field.
	f.Add(whole.Bytes()[:headerLen+3])
	// Declared payload of exactly MaxPayload+1: must be refused before
	// any allocation of that size.
	over := make([]byte, headerLen)
	over[0], over[1], over[2] = 0x52, 0x4D, Version
	over[3] = uint8(TPageOut)
	binary.BigEndian.PutUint32(over[8:], uint32(MaxPayload+1))
	f.Add(over)
	// Unknown opcode with a well-formed empty payload: framing accepts
	// it (forward compatibility); the dispatch layer must answer
	// StatusBadRequest rather than hang.
	var unk bytes.Buffer
	if err := Encode(&unk, &Msg{Type: Type(0xEE)}); err != nil {
		f.Fatal(err)
	}
	f.Add(unk.Bytes())
	// Bad magic and bad version ahead of a valid remainder.
	bm := append([]byte(nil), whole.Bytes()...)
	bm[0] = 'X'
	f.Add(bm)
	bv := append([]byte(nil), whole.Bytes()...)
	bv[2] = Version + 1
	f.Add(bv)

	f.Fuzz(func(t *testing.T, raw []byte) {
		m, err := Decode(bytes.NewReader(raw))
		if err != nil {
			return
		}
		// A successfully decoded frame must re-encode.
		var buf bytes.Buffer
		if err := Encode(&buf, m); err != nil && err != ErrTooLarge {
			t.Fatalf("decoded frame failed to re-encode: %v", err)
		}
	})
}

// FuzzRoundTrip: any encodable message decodes to itself.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint8(5), uint8(0), uint64(1), uint32(2), uint64(3), "host", []byte("data"))
	f.Fuzz(func(t *testing.T, typ, flags uint8, key uint64, n uint32, pkey uint64, host string, data []byte) {
		if len(host) > 2048 || len(data) > page.Size {
			return
		}
		m := &Msg{
			Type: Type(typ), Flags: flags, Key: key, N: n,
			ParityKey: pkey, Host: host, Data: data,
		}
		var buf bytes.Buffer
		if err := Encode(&buf, m); err != nil {
			return
		}
		got, err := Decode(&buf)
		if err != nil {
			t.Fatalf("decode of encoded frame: %v", err)
		}
		if got.Type != m.Type || got.Flags != m.Flags || got.Key != m.Key ||
			got.N != m.N || got.ParityKey != m.ParityKey || got.Host != m.Host ||
			!bytes.Equal(got.Data, m.Data) {
			t.Fatalf("round trip mangled message: %+v vs %+v", got, m)
		}
	})
}
