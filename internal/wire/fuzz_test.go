package wire

import (
	"bytes"
	"encoding/binary"
	"testing"

	"rmp/internal/page"
)

// FuzzDecode hammers the frame decoder with arbitrary bytes: it must
// never panic or over-allocate, only return errors.
func FuzzDecode(f *testing.F) {
	// Seed with valid frames of each interesting shape.
	seed := func(m *Msg) {
		var buf bytes.Buffer
		if err := Encode(&buf, m); err == nil {
			f.Add(buf.Bytes())
		}
	}
	seed(&Msg{Type: THello, Host: "client", Data: []byte("token")})
	seed(&Msg{Type: TLoad})
	seed(&Msg{Type: TFree, Keys: []uint64{1, 2, 3}})
	data := page.NewBuf()
	data.Fill(1)
	seed((&Msg{Type: TPageOut, Key: 9, Data: data}).WithChecksum())
	// Membership messages: heartbeat, peer announce, graceful drain.
	seed(&Msg{Type: TPing})
	seed(&Msg{Type: TPong, N: 17, Flags: FlagDrain, Data: []byte(`{"peers":["127.0.0.1:7078"]}`)})
	seed(&Msg{Type: TJoin, Host: "10.0.0.9:7077"})
	seed(&Msg{Type: TJoinAck, N: 2})
	seed(&Msg{Type: TDrain})
	seed(&Msg{Type: TDrainAck, Flags: FlagDrain})
	// Tagged v2 frames: negotiation hello, a tagged request, a tagged
	// ack, and the id extremes.
	seed(&Msg{Type: THello, Flags: FlagV2, Host: "client", Data: []byte("token")})
	seed(&Msg{Version: Version2, ID: 1, Type: TPageIn, Key: 7})
	seed(&Msg{Version: Version2, ID: 1, Type: TPageInAck, Key: 7})
	seed(&Msg{Version: Version2, ID: 0, Type: TLoad})
	seed(&Msg{Version: Version2, ID: ^uint32(0), Type: TPing})
	f.Add([]byte{})
	f.Add([]byte{0x52, 0x4D, 1, 1, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF})
	// v2 header with the id field truncated.
	f.Add([]byte{0x52, 0x4D, 2, uint8(TLoad), 0, 0, 0, 0, 0, 0, 0, 34, 0, 0})

	// Adversarial corpus: the frames a broken or hostile peer actually
	// produces. Each must decode to an error, never a panic or an
	// unbounded allocation.
	//
	// Truncated headers — every prefix of a valid frame shorter than
	// the 12-byte header.
	var whole bytes.Buffer
	if err := Encode(&whole, &Msg{Type: TLoad}); err != nil {
		f.Fatal(err)
	}
	for i := 1; i < headerLen; i++ {
		f.Add(whole.Bytes()[:i])
	}
	// Header intact, payload cut off mid-field.
	f.Add(whole.Bytes()[:headerLen+3])
	// Declared payload of exactly MaxPayload+1: must be refused before
	// any allocation of that size.
	over := make([]byte, headerLen)
	over[0], over[1], over[2] = 0x52, 0x4D, Version
	over[3] = uint8(TPageOut)
	binary.BigEndian.PutUint32(over[8:], uint32(MaxPayload+1))
	f.Add(over)
	// Unknown opcode with a well-formed empty payload: framing accepts
	// it (forward compatibility); the dispatch layer must answer
	// StatusBadRequest rather than hang.
	var unk bytes.Buffer
	if err := Encode(&unk, &Msg{Type: Type(0xEE)}); err != nil {
		f.Fatal(err)
	}
	f.Add(unk.Bytes())
	// Bad magic and bad version ahead of a valid remainder.
	bm := append([]byte(nil), whole.Bytes()...)
	bm[0] = 'X'
	f.Add(bm)
	bv := append([]byte(nil), whole.Bytes()...)
	bv[2] = Version + 1
	f.Add(bv)

	f.Fuzz(func(t *testing.T, raw []byte) {
		m, err := Decode(bytes.NewReader(raw))
		pm, perr := DecodePooled(bytes.NewReader(raw))
		// The pooled decoder must agree with the plain one bit for bit:
		// same error verdict, same message.
		if (err == nil) != (perr == nil) {
			t.Fatalf("Decode err=%v but DecodePooled err=%v", err, perr)
		}
		if err != nil {
			return
		}
		if !sameMsg(m, pm) {
			t.Fatalf("pooled decode diverges:\n plain  %+v\n pooled %+v", m, pm)
		}
		Recycle(pm)
		// A successfully decoded frame must re-encode.
		var buf bytes.Buffer
		if err := Encode(&buf, m); err != nil && err != ErrTooLarge {
			t.Fatalf("decoded frame failed to re-encode: %v", err)
		}
		// Buffer reuse must not leak bytes across frames: decode the
		// re-encoded frame through the pool again (likely reusing the
		// buffer just recycled) and require the identical message.
		pm2, err := DecodePooled(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("pooled re-decode: %v", err)
		}
		if !sameMsg(m, pm2) {
			t.Fatalf("pooled buffer reuse leaked bytes across frames:\n want %+v\n got  %+v", m, pm2)
		}
		Recycle(pm2)
	})
}

// sameMsg compares every wire-visible field of two decoded messages.
func sameMsg(a, b *Msg) bool {
	if a.Type != b.Type || a.Flags != b.Flags || a.Status != b.Status ||
		a.Version != b.Version || a.ID != b.ID || a.Key != b.Key ||
		a.N != b.N || a.Checksum != b.Checksum || a.ParityKey != b.ParityKey ||
		a.Host != b.Host || len(a.Keys) != len(b.Keys) || !bytes.Equal(a.Data, b.Data) {
		return false
	}
	for i := range a.Keys {
		if a.Keys[i] != b.Keys[i] {
			return false
		}
	}
	return true
}

// FuzzRoundTrip: any encodable message decodes to itself, in both
// frame versions.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint8(5), uint8(0), uint64(1), uint32(2), uint64(3), "host", []byte("data"), false, uint32(0))
	f.Add(uint8(7), uint8(FlagV2), uint64(9), uint32(1), uint64(0), "", []byte(nil), true, uint32(12345))
	f.Fuzz(func(t *testing.T, typ, flags uint8, key uint64, n uint32, pkey uint64, host string, data []byte, v2 bool, id uint32) {
		if len(host) > 2048 || len(data) > page.Size {
			return
		}
		m := &Msg{
			Type: Type(typ), Flags: flags, Key: key, N: n,
			ParityKey: pkey, Host: host, Data: data,
		}
		if v2 {
			m.Version = Version2
			m.ID = id
		}
		var buf bytes.Buffer
		if err := Encode(&buf, m); err != nil {
			return
		}
		got, err := Decode(&buf)
		if err != nil {
			t.Fatalf("decode of encoded frame: %v", err)
		}
		if got.Type != m.Type || got.Flags != m.Flags || got.Key != m.Key ||
			got.N != m.N || got.ParityKey != m.ParityKey || got.Host != m.Host ||
			!bytes.Equal(got.Data, m.Data) {
			t.Fatalf("round trip mangled message: %+v vs %+v", got, m)
		}
		if v2 && (got.Version != Version2 || got.ID != id) {
			t.Fatalf("v2 tag mangled: version=%d id=%d, want id=%d", got.Version, got.ID, id)
		}
		if !v2 && got.ID != 0 {
			t.Fatalf("v1 frame grew an id: %d", got.ID)
		}
	})
}

// FuzzStreamDemux models the client's reader goroutine against an
// arbitrary byte stream: decode frames until the stream breaks,
// resolving each tagged ack against a pending-request table exactly
// the way the mux does. Duplicate ids, unknown ids, ids reused after
// a timeout, and v1/v2 frames interleaved on one stream must all be
// absorbed — dropped or matched, never a panic, a hang, or a misparse
// of a later frame.
func FuzzStreamDemux(f *testing.F) {
	stream := func(ms ...*Msg) []byte {
		var buf bytes.Buffer
		for _, m := range ms {
			if err := Encode(&buf, m); err != nil {
				f.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	v2 := func(id uint32, t Type) *Msg { return &Msg{Version: Version2, ID: id, Type: t} }
	// In-order tagged exchange.
	f.Add(stream(v2(1, TPageInAck), v2(2, TPageOutAck)))
	// Duplicate id: the second ack with id 1 must be discarded.
	f.Add(stream(v2(1, TPageInAck), v2(1, TPageInAck)))
	// Unknown id: nothing pending under 99.
	f.Add(stream(v2(99, TPageOutAck)))
	// Id reuse after timeout: a late ack for a timed-out id arrives
	// after the id was reused — the demux matches the newer request.
	f.Add(stream(v2(3, TPageInAck), v2(3, TPageInAck), v2(3, TPageOutAck)))
	// v1 and v2 frames mixed on one stream (negotiation boundary).
	f.Add(stream(&Msg{Type: THelloAck, Flags: FlagV2, N: 8}, v2(1, TLoadAck), &Msg{Type: TLoadAck}))
	// Tagged frame followed by garbage.
	f.Add(append(stream(v2(7, TFreeAck)), 0xFF, 0x00, 0xFF))

	f.Fuzz(func(t *testing.T, raw []byte) {
		pending := map[uint32]bool{1: true, 2: true, 3: true}
		// The mux read loop decodes through the pool: run the pooled
		// decoder on the stream, with the plain decoder shadowing it on
		// an identical reader. Recycling between frames means every
		// iteration likely reuses the previous frame's buffer — any
		// cross-frame byte leak shows up as a divergence.
		r := bytes.NewReader(raw)
		shadow := bytes.NewReader(raw)
		for i := 0; i < 1024; i++ {
			before := r.Len()
			m, err := DecodePooled(r)
			sm, serr := Decode(shadow)
			if (err == nil) != (serr == nil) {
				t.Fatalf("frame %d: pooled err=%v plain err=%v", i, err, serr)
			}
			if err != nil {
				return // stream broken: the mux fails the conn here
			}
			if r.Len() == before {
				t.Fatal("decode consumed no bytes but returned a frame")
			}
			if !sameMsg(m, sm) {
				t.Fatalf("frame %d: pooled decode diverges (buffer reuse leak?)\n plain  %+v\n pooled %+v", i, sm, m)
			}
			if m.Version == Version2 {
				// Demux: a pending id is resolved once; anything else
				// (unknown, duplicate, stale reuse) is dropped.
				if pending[m.ID] {
					delete(pending, m.ID)
				}
			}
			// Every accepted frame must re-encode.
			var buf bytes.Buffer
			if err := Encode(&buf, m); err != nil && err != ErrTooLarge {
				t.Fatalf("decoded frame failed to re-encode: %v", err)
			}
			Recycle(m)
		}
	})
}
