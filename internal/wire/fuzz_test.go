package wire

import (
	"bytes"
	"testing"

	"rmp/internal/page"
)

// FuzzDecode hammers the frame decoder with arbitrary bytes: it must
// never panic or over-allocate, only return errors.
func FuzzDecode(f *testing.F) {
	// Seed with valid frames of each interesting shape.
	seed := func(m *Msg) {
		var buf bytes.Buffer
		if err := Encode(&buf, m); err == nil {
			f.Add(buf.Bytes())
		}
	}
	seed(&Msg{Type: THello, Host: "client", Data: []byte("token")})
	seed(&Msg{Type: TLoad})
	seed(&Msg{Type: TFree, Keys: []uint64{1, 2, 3}})
	data := page.NewBuf()
	data.Fill(1)
	seed((&Msg{Type: TPageOut, Key: 9, Data: data}).WithChecksum())
	// Membership messages: heartbeat, peer announce, graceful drain.
	seed(&Msg{Type: TPing})
	seed(&Msg{Type: TPong, N: 17, Flags: FlagDrain, Data: []byte(`{"peers":["127.0.0.1:7078"]}`)})
	seed(&Msg{Type: TJoin, Host: "10.0.0.9:7077"})
	seed(&Msg{Type: TJoinAck, N: 2})
	seed(&Msg{Type: TDrain})
	seed(&Msg{Type: TDrainAck, Flags: FlagDrain})
	f.Add([]byte{})
	f.Add([]byte{0x52, 0x4D, 1, 1, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, raw []byte) {
		m, err := Decode(bytes.NewReader(raw))
		if err != nil {
			return
		}
		// A successfully decoded frame must re-encode.
		var buf bytes.Buffer
		if err := Encode(&buf, m); err != nil && err != ErrTooLarge {
			t.Fatalf("decoded frame failed to re-encode: %v", err)
		}
	})
}

// FuzzRoundTrip: any encodable message decodes to itself.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint8(5), uint8(0), uint64(1), uint32(2), uint64(3), "host", []byte("data"))
	f.Fuzz(func(t *testing.T, typ, flags uint8, key uint64, n uint32, pkey uint64, host string, data []byte) {
		if len(host) > 2048 || len(data) > page.Size {
			return
		}
		m := &Msg{
			Type: Type(typ), Flags: flags, Key: key, N: n,
			ParityKey: pkey, Host: host, Data: data,
		}
		var buf bytes.Buffer
		if err := Encode(&buf, m); err != nil {
			return
		}
		got, err := Decode(&buf)
		if err != nil {
			t.Fatalf("decode of encoded frame: %v", err)
		}
		if got.Type != m.Type || got.Flags != m.Flags || got.Key != m.Key ||
			got.N != m.N || got.ParityKey != m.ParityKey || got.Host != m.Host ||
			!bytes.Equal(got.Data, m.Data) {
			t.Fatalf("round trip mangled message: %+v vs %+v", got, m)
		}
	})
}
