// Package wire implements the binary protocol spoken between the RMP
// client (the pager) and the remote memory servers.
//
// The protocol is a strict request/response protocol over a byte
// stream (TCP in production, net.Pipe in tests). Every message is one
// frame:
//
//	offset  size  field
//	0       2     magic 0x524D ("RM")
//	2       1     protocol version (1)
//	3       1     message type
//	4       1     flags
//	5       1     status
//	6       2     reserved (zero)
//	8       4     payload length (bytes following the header)
//
// The payload is a fixed field block followed by variable sections:
//
//	Key(8) N(4) Checksum(4) ParityKey(8)
//	hostLen(2) host bytes
//	nkeys(4) keys (8 each)
//	dataLen(4) data bytes
//
// Servers are deliberately policy-agnostic: they store opaque
// (key -> page) pairs. The paper makes the same point — "a parity
// server is by no means different than a memory server" (§3.2). All
// placement, mirroring and parity-group bookkeeping lives in the
// client; the one server-side extra is XORWRITE, used by the basic
// parity policy, where the server computes old XOR new and forwards
// the delta to the parity server itself (§2.2).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"rmp/internal/page"
)

// Protocol constants.
const (
	Magic   = 0x524D // "RM"
	Version = 1
	// Version2 adds a 4-byte request id after the fixed header so many
	// requests can be in flight on one connection and a late ack is
	// matched (or discarded) by id instead of by arrival order. The
	// payload encoding is unchanged. v2 is negotiated at HELLO: the
	// client sets FlagV2 on a v1-framed HELLO, a v2-capable server
	// echoes it on the HELLO_ACK, and both sides switch to v2 framing
	// for every subsequent frame. Either side omitting the flag keeps
	// the session on v1.
	Version2 = 2

	headerLen = 12
	// idLen is the extra request-id field a v2 frame carries between
	// the header and the payload.
	idLen = 4

	// MaxPayload bounds a frame so a corrupt or hostile peer cannot
	// make us allocate unbounded memory. Large enough for a page plus
	// every fixed field and a long host name.
	MaxPayload = page.Size + 4096
)

// A whole frame — header, v2 request id, maximum payload — must fit in
// one frame-class pool buffer, so DecodePooled can read an entire
// frame into pooled memory. Compile-time assertion: the array length
// below is negative (a compile error) if the invariant breaks.
var _ [page.FrameClass - (headerLen + idLen + MaxPayload)]struct{}

// Type enumerates message types. Requests have odd values' acks
// immediately following for readability in traces.
type Type uint8

const (
	THello Type = iota + 1
	THelloAck
	TAlloc
	TAllocAck
	TPageOut
	TPageOutAck
	TPageIn
	TPageInAck
	TFree
	TFreeAck
	TLoad
	TLoadAck
	TXorWrite
	TXorWriteAck
	TXorDelta
	TXorDeltaAck
	TBye
	TByeAck
	TStat
	TStatAck
	// TPing/TPong is the membership heartbeat: a lightweight liveness
	// probe that bypasses the emulated page-service delays. The PONG
	// carries the server's free-page count in N, the drain advisory in
	// FlagDrain, and (when non-empty) the server's announced-peer list
	// as a JSON PongInfo in Data.
	TPing
	TPong
	// TJoin announces a server address (Host) to the receiving server;
	// clients learn announced peers from PONGs and join them. Sent by
	// a starting rmemd (-join) or by an operator via rmpctl.
	TJoin
	TJoinAck
	// TDrain asks the server to leave gracefully: it stops granting
	// swap space and stamps FlagDrain on every ack, advising clients
	// to migrate their pages out; the daemon exits once empty.
	TDrain
	TDrainAck
)

var typeNames = map[Type]string{
	THello: "HELLO", THelloAck: "HELLO_ACK",
	TAlloc: "ALLOC", TAllocAck: "ALLOC_ACK",
	TPageOut: "PAGEOUT", TPageOutAck: "PAGEOUT_ACK",
	TPageIn: "PAGEIN", TPageInAck: "PAGEIN_ACK",
	TFree: "FREE", TFreeAck: "FREE_ACK",
	TLoad: "LOAD", TLoadAck: "LOAD_ACK",
	TXorWrite: "XORWRITE", TXorWriteAck: "XORWRITE_ACK",
	TXorDelta: "XORDELTA", TXorDeltaAck: "XORDELTA_ACK",
	TBye: "BYE", TByeAck: "BYE_ACK",
	TStat: "STAT", TStatAck: "STAT_ACK",
	TPing: "PING", TPong: "PONG",
	TJoin: "JOIN", TJoinAck: "JOIN_ACK",
	TDrain: "DRAIN", TDrainAck: "DRAIN_ACK",
}

func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Ack returns the acknowledgement type for a request type.
func (t Type) Ack() Type { return t + 1 }

// Status is the server's verdict on a request.
type Status uint8

const (
	StatusOK Status = iota
	// StatusNoSpace: swap-space allocation denied — the server is out
	// of donatable memory (paper §2.1: "When a server runs out of
	// memory, it denies further swap space allocation requests").
	StatusNoSpace
	// StatusNotFound: pagein or free of a key the server doesn't hold.
	StatusNotFound
	// StatusBadChecksum: page data failed CRC verification.
	StatusBadChecksum
	// StatusDenied: the client is not authorized (paper §3.1 restricts
	// the device to the superuser and privileged ports; we carry an
	// auth token in HELLO instead).
	StatusDenied
	// StatusInternal: internal server error; detail in the data section.
	StatusInternal
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "OK"
	case StatusNoSpace:
		return "NO_SPACE"
	case StatusNotFound:
		return "NOT_FOUND"
	case StatusBadChecksum:
		return "BAD_CHECKSUM"
	case StatusDenied:
		return "DENIED"
	case StatusInternal:
		return "INTERNAL"
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}

// Err converts a non-OK status into an error, nil for StatusOK.
func (s Status) Err() error {
	if s == StatusOK {
		return nil
	}
	return &StatusError{Status: s}
}

// StatusError wraps a non-OK Status as a Go error.
type StatusError struct{ Status Status }

func (e *StatusError) Error() string { return "wire: server returned " + e.Status.String() }

// Frame flags.
const (
	// FlagPressure is set by a server on any ack when native
	// memory-demanding processes have started on its host. It is the
	// paper's "note ... advising it to send no more pages to this
	// server" (§2.1). The client reacts by migrating pages away.
	FlagPressure = 1 << 0
	// FlagDrain is set by a server on every ack while it is draining
	// (graceful leave): clients must migrate all pages off it, stop
	// new placements, and say BYE; the daemon exits once empty.
	FlagDrain = 1 << 1
	// FlagV2 on a HELLO advertises that the sender speaks protocol
	// version 2 (tagged frames); on a HELLO_ACK it confirms the switch.
	// A v1 peer never sets it and ignores unknown flag bits, so
	// negotiation degrades to v1 transparently.
	FlagV2 = 1 << 2
)

// Msg is a decoded protocol message. Unused fields are zero.
type Msg struct {
	Type   Type
	Flags  uint8
	Status Status

	// Version selects the frame encoding: 0 or Version encode as a v1
	// frame, Version2 as a tagged v2 frame. Decode records the version
	// it actually read, so a decoded frame re-encodes identically.
	Version uint8
	// ID tags a v2 frame. Acks echo the request's id; the client demuxes
	// (or discards late acks) by it. Always zero on v1 frames.
	ID uint32

	// Key addresses one stored page (PAGEOUT/PAGEIN/XORWRITE/XORDELTA).
	Key uint64
	// N is a count: pages requested in ALLOC, granted in ALLOC_ACK,
	// free pages in LOAD_ACK.
	N uint32
	// Checksum is the CRC-32C of Data for page-carrying messages.
	Checksum uint32
	// ParityKey is the key under which the parity server accumulates
	// the delta for an XORWRITE.
	ParityKey uint64
	// Host is the parity server address for XORWRITE, or the client
	// name in HELLO, or the auth token (HELLO uses Data for the token).
	Host string
	// Keys lists pages for FREE.
	Keys []uint64
	// Data is the page payload, or an error detail for StatusError.
	Data []byte

	// payload is the pooled frame buffer backing Data when the message
	// came from DecodePooled; Recycle returns it to the page pool. Nil
	// for messages built by hand or decoded by Decode.
	payload []byte
}

// Errors returned by the codec.
var (
	ErrBadMagic   = errors.New("wire: bad magic")
	ErrBadVersion = errors.New("wire: unsupported protocol version")
	ErrTooLarge   = errors.New("wire: frame exceeds maximum payload")
	ErrTruncated  = errors.New("wire: truncated payload")
)

// payloadSize computes the encoded payload length for m.
func (m *Msg) payloadSize() int {
	return 8 + 4 + 4 + 8 + // Key, N, Checksum, ParityKey
		2 + len(m.Host) +
		4 + 8*len(m.Keys) +
		4 + len(m.Data)
}

// Encode writes m as one frame to w. The frame version follows
// m.Version: zero (the zero value) and Version encode v1, Version2
// encodes the tagged form carrying m.ID. Encode allocates a fresh
// frame buffer per call; writers on the paging fast path should hold
// a scratch buffer and use AppendFrame instead.
func Encode(w io.Writer, m *Msg) error {
	buf, err := AppendFrame(nil, m)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// AppendFrame appends m, encoded as one frame, to dst and returns the
// extended slice. With a caller-reused scratch buffer it performs no
// heap allocation once the buffer has grown to the working frame
// size, which is what the mux write loop batches through: one page
// out must not cost an allocation per 4 KB frame. Growth uses
// amortized append doubling rather than make so the function body
// stays allocation-free under the compiler's escape analysis.
//
//rmpvet:hotpath
func AppendFrame(dst []byte, m *Msg) ([]byte, error) {
	dst, err := AppendFrameHead(dst, m)
	if err != nil {
		return dst, err
	}
	return append(dst, m.Data...), nil
}

// AppendFrameHead appends everything of m's frame except the final
// data bytes: header, v2 request id, fixed fields, host, keys, and the
// 4-byte data length. The frame on the wire is AppendFrameHead's bytes
// immediately followed by m.Data — which is what FrameWriter exploits
// to ship header and payload through one writev without copying the
// payload into scratch. The encoded payload length in the header
// includes the data, so a head+data pair is indistinguishable from an
// AppendFrame encoding.
//
//rmpvet:hotpath
func AppendFrameHead(dst []byte, m *Msg) ([]byte, error) {
	plen := m.payloadSize()
	if plen > MaxPayload {
		return dst, ErrTooLarge
	}
	ver, hlen := uint8(Version), headerLen
	if m.Version == Version2 {
		ver, hlen = Version2, headerLen+idLen
	}
	headLen := hlen + plen - len(m.Data)
	start := len(dst)
	for cap(dst)-start < headLen {
		dst = append(dst[:cap(dst)], 0)
	}
	dst = dst[:start+headLen]
	buf := dst[start:]
	binary.BigEndian.PutUint16(buf[0:], Magic)
	buf[2] = ver
	buf[3] = uint8(m.Type)
	buf[4] = m.Flags
	buf[5] = uint8(m.Status)
	buf[6], buf[7] = 0, 0
	binary.BigEndian.PutUint32(buf[8:], uint32(plen))
	if ver == Version2 {
		binary.BigEndian.PutUint32(buf[headerLen:], m.ID)
	}

	p := buf[hlen:]
	binary.BigEndian.PutUint64(p[0:], m.Key)
	binary.BigEndian.PutUint32(p[8:], m.N)
	binary.BigEndian.PutUint32(p[12:], m.Checksum)
	binary.BigEndian.PutUint64(p[16:], m.ParityKey)
	off := 24
	binary.BigEndian.PutUint16(p[off:], uint16(len(m.Host)))
	off += 2
	off += copy(p[off:], m.Host)
	binary.BigEndian.PutUint32(p[off:], uint32(len(m.Keys)))
	off += 4
	for _, k := range m.Keys {
		binary.BigEndian.PutUint64(p[off:], k)
		off += 8
	}
	binary.BigEndian.PutUint32(p[off:], uint32(len(m.Data)))

	return dst, nil
}

// Decode reads one frame from r, accepting both v1 and v2 framing.
// The returned message records the version it arrived in (and, for
// v2, its request id), so a decoded frame re-encodes identically.
//
// Ownership: Decode allocates a fresh payload buffer and Msg per call
// and hands both to the caller outright — they are ordinary
// garbage-collected memory, never pooled, and passing the Msg to
// Recycle is allowed but recovers nothing. Steady-state readers on
// the paging fast path use DecodePooled instead, which carries the
// pooled-ownership contract documented there. The two allocations
// here are inherent to this API and are the reviewed baseline entries
// for this function.
//
//rmpvet:hotpath
func Decode(r io.Reader) (*Msg, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if binary.BigEndian.Uint16(hdr[0:]) != Magic {
		return nil, ErrBadMagic
	}
	if hdr[2] != Version && hdr[2] != Version2 {
		return nil, ErrBadVersion
	}
	plen := binary.BigEndian.Uint32(hdr[8:])
	if plen > MaxPayload {
		return nil, ErrTooLarge
	}
	var id uint32
	if hdr[2] == Version2 {
		var idb [idLen]byte
		if _, err := io.ReadFull(r, idb[:]); err != nil {
			return nil, err
		}
		id = binary.BigEndian.Uint32(idb[:])
	}
	p := make([]byte, plen)
	if _, err := io.ReadFull(r, p); err != nil {
		return nil, err
	}

	m := &Msg{
		Type:    Type(hdr[3]),
		Flags:   hdr[4],
		Status:  Status(hdr[5]),
		Version: hdr[2],
		ID:      id,
	}
	if err := m.parsePayload(p, false); err != nil {
		return nil, err
	}
	return m, nil
}

// msgPool recycles Msg structs through DecodePooled/Recycle. Like the
// page pools, its New lives at package level so the escapegate
// attributes the inherent allocation here, not to the hotpath decode.
var msgPool = sync.Pool{New: newPooledMsg}

func newPooledMsg() any { return new(Msg) }

// DecodePooled reads one frame from r like Decode, but backs the
// payload with a pooled frame-class buffer and the Msg with a pooled
// struct, so a steady-state read loop performs zero allocations per
// frame (control frames carrying Host or Keys still allocate those
// two fields).
//
// Ownership contract: the returned Msg and everything it references —
// in particular Data, which aliases the pooled buffer — belong to the
// caller until it calls Recycle(m), which must happen exactly once
// and only after every use of the frame's bytes is complete. After
// Recycle the buffer is reused for a future frame; a retained Data
// slice would watch its contents change. Callers that need the data
// to outlive the frame copy it out (page.Buf.ClonePooled) before
// recycling. Dropping a Msg without Recycle is safe but leaks the
// buffer to the garbage collector.
//
//rmpvet:hotpath
func DecodePooled(r io.Reader) (*Msg, error) {
	// The header is read into the pooled frame buffer itself (not a
	// stack array): io.ReadFull's indirection would force a stack
	// header to escape, and the frame class reserves room for it.
	buf := page.GetFrame()
	hdr := buf[:headerLen]
	if _, err := io.ReadFull(r, hdr); err != nil {
		page.Put(buf)
		return nil, err
	}
	if binary.BigEndian.Uint16(hdr[0:]) != Magic {
		page.Put(buf)
		return nil, ErrBadMagic
	}
	if hdr[2] != Version && hdr[2] != Version2 {
		page.Put(buf)
		return nil, ErrBadVersion
	}
	plen := binary.BigEndian.Uint32(hdr[8:])
	if plen > MaxPayload {
		page.Put(buf)
		return nil, ErrTooLarge
	}
	off := headerLen
	var id uint32
	if hdr[2] == Version2 {
		if _, err := io.ReadFull(r, buf[off:off+idLen]); err != nil {
			page.Put(buf)
			return nil, err
		}
		id = binary.BigEndian.Uint32(buf[off:])
		off += idLen
	}
	p := buf[off : off+int(plen)]
	if _, err := io.ReadFull(r, p); err != nil {
		page.Put(buf)
		return nil, err
	}

	m := msgPool.Get().(*Msg)
	m.Type = Type(hdr[3])
	m.Flags = hdr[4]
	m.Status = Status(hdr[5])
	m.Version = hdr[2]
	m.ID = id
	m.payload = buf
	if err := m.parsePayload(p, true); err != nil {
		Recycle(m)
		return nil, err
	}
	return m, nil
}

// Recycle returns a message obtained from DecodePooled (and its
// pooled payload buffer) to the pools. It must be called exactly once
// per message, after the caller is completely done with every slice
// the Msg hands out — Data in particular. Messages built by hand or
// decoded by Decode may also be Recycled (their struct is pooled, the
// GC keeps their buffers), which lets shared cleanup paths recycle
// unconditionally.
//
//rmpvet:hotpath
func Recycle(m *Msg) {
	if m == nil {
		return
	}
	buf := m.payload
	*m = Msg{}
	msgPool.Put(m)
	page.Put(buf)
}

// parsePayload decodes the payload section p into m. When pooled, the
// Data slice is left uncapped (its capacity runs to the end of the
// pooled buffer rather than exactly len) so an erroneous page.Put of
// a received Data slice routes to the discard counter instead of
// poisoning the page pool with interior memory.
//
//rmpvet:hotpath
func (m *Msg) parsePayload(p []byte, pooled bool) error {
	if len(p) < 24+2 {
		return ErrTruncated
	}
	m.Key = binary.BigEndian.Uint64(p[0:])
	m.N = binary.BigEndian.Uint32(p[8:])
	m.Checksum = binary.BigEndian.Uint32(p[12:])
	m.ParityKey = binary.BigEndian.Uint64(p[16:])
	off := 24
	hlen := int(binary.BigEndian.Uint16(p[off:]))
	off += 2
	if off+hlen+4 > len(p) {
		return ErrTruncated
	}
	if hlen > 0 {
		m.Host = string(p[off : off+hlen])
	} else {
		m.Host = ""
	}
	off += hlen
	nkeys := int(binary.BigEndian.Uint32(p[off:]))
	off += 4
	m.Keys = nil
	if nkeys > 0 {
		if off+8*nkeys+4 > len(p) {
			return ErrTruncated
		}
		m.Keys = make([]uint64, nkeys)
		for i := range m.Keys {
			m.Keys[i] = binary.BigEndian.Uint64(p[off:])
			off += 8
		}
	}
	if off+4 > len(p) {
		return ErrTruncated
	}
	dlen := int(binary.BigEndian.Uint32(p[off:]))
	off += 4
	if off+dlen > len(p) {
		return ErrTruncated
	}
	m.Data = nil
	if dlen > 0 {
		if pooled {
			m.Data = p[off : off+dlen]
		} else {
			m.Data = p[off : off+dlen : off+dlen]
		}
	}
	return nil
}

// VerifyData checks the message checksum against its data; messages
// that carry no data always verify.
func (m *Msg) VerifyData() error {
	if len(m.Data) == 0 {
		return nil
	}
	if page.Buf(m.Data).Checksum() != m.Checksum {
		return &StatusError{Status: StatusBadChecksum}
	}
	return nil
}

// StatInfo is the server-state snapshot carried (as JSON in Data) by
// a STAT_ACK. It powers rmpctl's operator view and the experiments'
// memory accounting.
type StatInfo struct {
	Name         string   `json:"name"`
	StoredPages  int      `json:"stored_pages"`
	FreePages    int      `json:"free_pages"`
	InOverflow   bool     `json:"in_overflow"`
	Pressure     bool     `json:"pressure"`
	Clients      int      `json:"clients"`
	Puts         uint64   `json:"puts"`
	Gets         uint64   `json:"gets"`
	Deletes      uint64   `json:"deletes"`
	XorWrites    uint64   `json:"xor_writes"`
	Misses       uint64   `json:"misses"`
	DeniedAllocs uint64   `json:"denied_allocs"`
	Pings        uint64   `json:"pings,omitempty"`
	Draining     bool     `json:"draining,omitempty"`
	Peers        []string `json:"peers,omitempty"`

	// Tiered-store view (internal/store): where the stored pages live,
	// the current demotion targets, and per-tier activity. Clients use
	// the disk-tier share to weigh "slow remote" against "move away"
	// when a server advises pressure.
	HotPages   int    `json:"hot_pages"`
	ColdPages  int    `json:"cold_pages,omitempty"`
	DiskPages  int    `json:"disk_pages,omitempty"`
	HotTarget  int    `json:"hot_target,omitempty"`
	ColdBytes  int64  `json:"cold_bytes,omitempty"`
	HotHits    uint64 `json:"hot_hits,omitempty"`
	ColdHits   uint64 `json:"cold_hits,omitempty"`
	DiskHits   uint64 `json:"disk_hits,omitempty"`
	Demotions  uint64 `json:"demotions,omitempty"`
	Spills     uint64 `json:"spills,omitempty"`
	Promotions uint64 `json:"promotions,omitempty"`
	LostPages  uint64 `json:"lost_pages,omitempty"`
}

// PongInfo is the optional JSON payload of a PONG: the peer servers
// announced to this server via JOIN. Clients running the membership
// layer dial peers they have not seen before — a new server announces
// itself to any one existing server and the whole cluster learns of
// it through heartbeats.
type PongInfo struct {
	Peers []string `json:"peers,omitempty"`
}

// WithChecksum fills in the checksum for the current Data and returns m.
func (m *Msg) WithChecksum() *Msg {
	if len(m.Data) > 0 {
		m.Checksum = page.Buf(m.Data).Checksum()
	}
	return m
}
