// FrameWriter is the zero-copy batching half of the wire codec: the
// mux write loops queue frames as (head bytes, payload reference)
// pairs and flush them through one vectored write. Payload bytes are
// never copied into scratch — the writev vector points straight at
// the caller's page buffers — which is what keeps an 8 KB pageout at
// "one header encode plus one syscall" instead of "one full frame
// memcpy per page".
package wire

import (
	"io"
	"net"
)

// BuffersWriter is the vectored-write hook a transport can implement
// to receive a whole flush as one scatter/gather list. net.Buffers
// already drives writev on real TCP connections via the net package's
// internal interface; BuffersWriter is the exported equivalent for
// transports outside package net — memnet's in-memory conn implements
// it so tests exercise the same single-write batching path production
// takes. Implementations must consume v the way net.Buffers.WriteTo
// does (advancing the slice and nil-ing written elements).
type BuffersWriter interface {
	WriteBuffers(v *net.Buffers) (int64, error)
}

// FrameWriter batches encoded frames for a single vectored write.
// Queue encodes only the frame head (header + fixed fields) into an
// internal scratch buffer and records a reference to the payload;
// Flush builds a net.Buffers vector alternating heads and payloads
// and writes it out in one call — writev on a TCP conn, WriteBuffers
// on transports implementing the hook, sequential Writes otherwise.
//
// Aliasing hazard: a queued payload slice is read at Flush time, not
// Queue time. The caller must keep every queued Data buffer intact
// and unmodified until Flush returns; recycling or rewriting a queued
// page before the flush would ship corrupt bytes. After Flush returns
// the writer holds no references and queued payloads may be reused or
// pooled.
//
// Not safe for concurrent use; each write loop owns one FrameWriter.
type FrameWriter struct {
	w  io.Writer
	bw BuffersWriter // non-nil when w implements the vectored hook

	heads []byte   // concatenated head encodings of queued frames
	ends  []int    // heads end offset per queued frame
	datas [][]byte // payload reference per queued frame (may be nil)

	// vecs is the reused vector backing; wvec is the consumable copy
	// handed to WriteTo/WriteBuffers (both mutate their receiver, so
	// flushing through a separate header preserves vecs' backing for
	// the next batch).
	vecs net.Buffers
	wvec net.Buffers

	buffered int // total queued bytes, heads + payloads
}

// NewFrameWriter returns a FrameWriter batching onto w.
func NewFrameWriter(w io.Writer) *FrameWriter {
	fw := &FrameWriter{w: w}
	fw.bw, _ = w.(BuffersWriter)
	return fw
}

// Queue encodes m's frame head and records its payload for the next
// Flush. m.Data is referenced, not copied — see the aliasing note on
// FrameWriter. Queue performs no I/O and, in steady state, no
// allocation.
//
//rmpvet:hotpath
func (fw *FrameWriter) Queue(m *Msg) error {
	heads, err := AppendFrameHead(fw.heads, m)
	if err != nil {
		return err
	}
	fw.buffered += (len(heads) - len(fw.heads)) + len(m.Data)
	fw.heads = heads
	fw.ends = append(fw.ends, len(heads))
	fw.datas = append(fw.datas, m.Data)
	return nil
}

// Frames reports how many frames are queued and unflushed.
func (fw *FrameWriter) Frames() int { return len(fw.ends) }

// Buffered reports the total queued bytes (heads plus payloads).
func (fw *FrameWriter) Buffered() int { return fw.buffered }

// Flush writes every queued frame in one vectored write and drops all
// payload references. A short write or transport error is returned
// as-is; the batch is discarded either way (the mux treats any write
// error as fatal to the conn). Flushing an empty writer is a no-op.
//
//rmpvet:hotpath
func (fw *FrameWriter) Flush() error {
	if len(fw.ends) == 0 {
		return nil
	}
	fw.vecs = fw.vecs[:0]
	start := 0
	for i, end := range fw.ends {
		fw.vecs = append(fw.vecs, fw.heads[start:end])
		start = end
		if d := fw.datas[i]; len(d) > 0 {
			fw.vecs = append(fw.vecs, d)
		}
	}
	// wvec shares vecs' backing; WriteTo/WriteBuffers consume wvec,
	// nil-ing written elements in the shared backing as they go.
	fw.wvec = fw.vecs
	var err error
	if fw.bw != nil {
		_, err = fw.bw.WriteBuffers(&fw.wvec)
	} else {
		_, err = fw.wvec.WriteTo(fw.w)
	}
	// Drop every payload reference, including any an error path left
	// unconsumed, so pooled page buffers are not retained past Flush.
	for i := range fw.vecs {
		fw.vecs[i] = nil
	}
	fw.vecs = fw.vecs[:0]
	fw.wvec = nil
	for i := range fw.datas {
		fw.datas[i] = nil
	}
	fw.heads = fw.heads[:0]
	fw.ends = fw.ends[:0]
	fw.datas = fw.datas[:0]
	fw.buffered = 0
	return err
}
