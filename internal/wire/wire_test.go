package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"rmp/internal/page"
)

func roundTrip(t *testing.T, m *Msg) *Msg {
	t.Helper()
	var buf bytes.Buffer
	if err := Encode(&buf, m); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	return got
}

func TestRoundTripEmpty(t *testing.T) {
	m := &Msg{Type: TLoad}
	got := roundTrip(t, m)
	if got.Type != TLoad || got.Key != 0 || len(got.Data) != 0 {
		t.Fatalf("round trip mangled empty message: %+v", got)
	}
}

func TestRoundTripFull(t *testing.T) {
	data := page.NewBuf()
	data.Fill(5)
	m := &Msg{
		Type:      TXorWrite,
		Flags:     FlagPressure,
		Status:    StatusOK,
		Key:       0xDEADBEEF,
		N:         77,
		ParityKey: 0xCAFE,
		Host:      "parity.example:7000",
		Keys:      []uint64{1, 2, 3, 1 << 60},
		Data:      data,
	}
	m.WithChecksum()
	got := roundTrip(t, m)
	if got.Type != m.Type || got.Flags != m.Flags || got.Key != m.Key ||
		got.N != m.N || got.ParityKey != m.ParityKey || got.Host != m.Host {
		t.Fatalf("fixed fields mangled: %+v", got)
	}
	if !reflect.DeepEqual(got.Keys, m.Keys) {
		t.Fatalf("keys mangled: %v", got.Keys)
	}
	if !bytes.Equal(got.Data, m.Data) {
		t.Fatal("data mangled")
	}
	if err := got.VerifyData(); err != nil {
		t.Fatalf("VerifyData: %v", err)
	}
}

func TestVerifyDataDetectsCorruption(t *testing.T) {
	data := page.NewBuf()
	data.Fill(9)
	m := (&Msg{Type: TPageOut, Key: 1, Data: data}).WithChecksum()
	var buf bytes.Buffer
	if err := Encode(&buf, m); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-1] ^= 0xFF // flip a data byte
	got, err := Decode(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if err := got.VerifyData(); err == nil {
		t.Fatal("VerifyData accepted corrupted page")
	}
}

func TestDecodeBadMagic(t *testing.T) {
	raw := make([]byte, 12)
	if _, err := Decode(bytes.NewReader(raw)); err != ErrBadMagic {
		t.Fatalf("got %v, want ErrBadMagic", err)
	}
}

func TestDecodeBadVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, &Msg{Type: anyType()}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[2] = 99
	if _, err := Decode(bytes.NewReader(raw)); err != ErrBadVersion {
		t.Fatalf("got %v, want ErrBadVersion", err)
	}
}

// anyType returns an arbitrary valid type for framing tests.
func anyType() Type { return TLoad }

func TestDecodeOversizedFrame(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, &Msg{Type: TLoad}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	binary.BigEndian.PutUint32(raw[8:], MaxPayload+1)
	if _, err := Decode(bytes.NewReader(raw)); err != ErrTooLarge {
		t.Fatalf("got %v, want ErrTooLarge", err)
	}
}

func TestEncodeRejectsOversized(t *testing.T) {
	m := &Msg{Type: TPageOut, Data: make([]byte, MaxPayload)}
	if err := Encode(io.Discard, m); err != ErrTooLarge {
		t.Fatalf("got %v, want ErrTooLarge", err)
	}
}

func TestDecodeTruncatedPayload(t *testing.T) {
	m := &Msg{Type: TFree, Keys: []uint64{1, 2, 3}}
	var buf bytes.Buffer
	if err := Encode(&buf, m); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Claim more keys than the payload holds.
	// keys count sits after fixed 24 bytes + 2-byte host len (host empty).
	binary.BigEndian.PutUint32(raw[12+26:], 1000)
	if _, err := Decode(bytes.NewReader(raw)); err != ErrTruncated {
		t.Fatalf("got %v, want ErrTruncated", err)
	}
}

func TestDecodeShortRead(t *testing.T) {
	m := &Msg{Type: TLoad}
	var buf bytes.Buffer
	if err := Encode(&buf, m); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()[:8] // cut mid-header
	if _, err := Decode(bytes.NewReader(raw)); err == nil {
		t.Fatal("Decode accepted short frame")
	}
}

func TestStatusErr(t *testing.T) {
	if StatusOK.Err() != nil {
		t.Fatal("StatusOK.Err() != nil")
	}
	err := StatusNoSpace.Err()
	if err == nil || !strings.Contains(err.Error(), "NO_SPACE") {
		t.Fatalf("StatusNoSpace.Err() = %v", err)
	}
}

func TestTypeAck(t *testing.T) {
	pairs := []Type{THello, TAlloc, TPageOut, TPageIn, TFree, TLoad, TXorWrite, TXorDelta, TBye}
	for _, req := range pairs {
		ack := req.Ack()
		if !strings.HasSuffix(ack.String(), "_ACK") {
			t.Errorf("%v.Ack() = %v, not an ack", req, ack)
		}
		if !strings.HasPrefix(ack.String(), strings.TrimSuffix(req.String(), "")) {
			t.Errorf("%v.Ack() = %v, mismatched pair", req, ack)
		}
	}
}

func TestTypeStringUnknown(t *testing.T) {
	if got := Type(200).String(); got != "Type(200)" {
		t.Errorf("unknown type string = %q", got)
	}
	if got := Status(200).String(); got != "Status(200)" {
		t.Errorf("unknown status string = %q", got)
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(key uint64, n uint32, pkey uint64, host string, keys []uint64, data []byte) bool {
		if len(host) > 1024 {
			host = host[:1024]
		}
		if len(keys) > 64 {
			keys = keys[:64]
		}
		if len(data) > page.Size {
			data = data[:page.Size]
		}
		m := &Msg{Type: TPageOut, Key: key, N: n, ParityKey: pkey, Host: host, Keys: keys, Data: data}
		var buf bytes.Buffer
		if err := Encode(&buf, m); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		if got.Key != key || got.N != n || got.ParityKey != pkey || got.Host != host {
			return false
		}
		if len(keys) == 0 && len(got.Keys) != 0 {
			return false
		}
		if len(keys) > 0 && !reflect.DeepEqual(got.Keys, keys) {
			return false
		}
		return bytes.Equal(got.Data, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBackToBackFrames(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 10; i++ {
		if err := Encode(&buf, &Msg{Type: TPageIn, Key: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		m, err := Decode(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if m.Key != uint64(i) {
			t.Fatalf("frame %d decoded key %d", i, m.Key)
		}
	}
}

func BenchmarkEncodePageOut(b *testing.B) {
	data := page.NewBuf()
	data.Fill(1)
	m := (&Msg{Type: TPageOut, Key: 42, Data: data}).WithChecksum()
	b.SetBytes(page.Size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Encode(io.Discard, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodePageOut(b *testing.B) {
	data := page.NewBuf()
	data.Fill(1)
	m := (&Msg{Type: TPageOut, Key: 42, Data: data}).WithChecksum()
	var buf bytes.Buffer
	if err := Encode(&buf, m); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(page.Size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

// TestMembershipTypes: the membership additions keep the request/ack
// pairing convention and survive the codec.
func TestMembershipTypes(t *testing.T) {
	pairs := map[Type]Type{TPing: TPong, TJoin: TJoinAck, TDrain: TDrainAck}
	for req, ack := range pairs {
		if req.Ack() != ack {
			t.Fatalf("%v.Ack() = %v, want %v", req, req.Ack(), ack)
		}
		if strings.HasPrefix(req.String(), "Type(") || strings.HasPrefix(ack.String(), "Type(") {
			t.Fatalf("missing type name for %d/%d", req, ack)
		}
	}
	got := roundTrip(t, &Msg{Type: TJoin, Host: "10.1.2.3:7077"})
	if got.Type != TJoin || got.Host != "10.1.2.3:7077" {
		t.Fatalf("JOIN mangled: %+v", got)
	}
	got = roundTrip(t, &Msg{Type: TPong, N: 42, Flags: FlagDrain,
		Data: []byte(`{"peers":["a:1","b:2"]}`)})
	if got.N != 42 || got.Flags&FlagDrain == 0 || len(got.Data) == 0 {
		t.Fatalf("PONG mangled: %+v", got)
	}
}

// TestV2RoundTrip: a v2 frame carries its request id through the
// codec, and the decoder records the version it read.
func TestV2RoundTrip(t *testing.T) {
	data := page.NewBuf()
	data.Fill(7)
	m := (&Msg{Version: Version2, ID: 0xDEADBEEF, Type: TPageOut, Key: 42, Data: data}).WithChecksum()
	got := roundTrip(t, m)
	if got.Version != Version2 || got.ID != 0xDEADBEEF {
		t.Fatalf("v2 tag mangled: version=%d id=%#x", got.Version, got.ID)
	}
	if got.Type != TPageOut || got.Key != 42 || !bytes.Equal(got.Data, data) {
		t.Fatalf("v2 payload mangled: %+v", got)
	}
	// Re-encoding a decoded v2 frame must produce identical bytes.
	var a, b bytes.Buffer
	if err := Encode(&a, m); err != nil {
		t.Fatal(err)
	}
	if err := Encode(&b, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("re-encode of decoded v2 frame differs")
	}
}

// TestV1FramesCarryNoID: the v1 encoding is byte-identical to what it
// was before v2 existed — a zero-valued Version field changes nothing.
func TestV1FramesCarryNoID(t *testing.T) {
	var v0, v1 bytes.Buffer
	if err := Encode(&v0, &Msg{Type: TLoad, ID: 99}); err != nil {
		t.Fatal(err)
	}
	if err := Encode(&v1, &Msg{Version: Version, Type: TLoad}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v0.Bytes(), v1.Bytes()) {
		t.Fatal("v1 encoding depends on ID or explicit Version")
	}
	got, err := Decode(bytes.NewReader(v0.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != Version || got.ID != 0 {
		t.Fatalf("v1 frame decoded as version=%d id=%d", got.Version, got.ID)
	}
}

// TestMixedVersionStream: v1 and v2 frames interleaved on one byte
// stream decode independently — exactly what a HELLO (v1) followed by
// tagged traffic (v2) looks like.
func TestMixedVersionStream(t *testing.T) {
	var buf bytes.Buffer
	frames := []*Msg{
		{Type: THello, Host: "c", Flags: FlagV2},
		{Version: Version2, ID: 1, Type: TPageIn, Key: 10},
		{Version: Version2, ID: 2, Type: TPageIn, Key: 20},
		{Type: TLoad},
		{Version: Version2, ID: 3, Type: TFree, Keys: []uint64{1, 2}},
	}
	for _, m := range frames {
		if err := Encode(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range frames {
		got, err := Decode(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		wantVer := want.Version
		if wantVer == 0 {
			wantVer = Version
		}
		if got.Type != want.Type || got.Version != wantVer || got.ID != want.ID {
			t.Fatalf("frame %d: got type=%v ver=%d id=%d, want type=%v ver=%d id=%d",
				i, got.Type, got.Version, got.ID, want.Type, wantVer, want.ID)
		}
	}
}

// TestV2TruncatedID: a v2 header followed by a cut-off id field is a
// clean read error, not a panic or a misparse.
func TestV2TruncatedID(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, &Msg{Version: Version2, ID: 7, Type: TLoad}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := headerLen; cut < headerLen+idLen; cut++ {
		if _, err := Decode(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("decode of frame cut at %d bytes succeeded", cut)
		}
	}
}
