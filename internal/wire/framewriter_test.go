package wire

import (
	"bytes"
	"net"
	"testing"

	"rmp/internal/page"
)

func frameBytes(t *testing.T, m *Msg) []byte {
	t.Helper()
	buf, err := AppendFrame(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestFrameWriterMatchesAppendFrame: a flushed batch is byte-identical
// to the frames encoded one by one — head+payload split is invisible
// on the wire.
func TestFrameWriterMatchesAppendFrame(t *testing.T) {
	data := page.NewBuf()
	data.Fill(3)
	msgs := []*Msg{
		(&Msg{Version: Version2, ID: 1, Type: TPageOut, Key: 7, Data: data}).WithChecksum(),
		{Version: Version2, ID: 2, Type: TPageIn, Key: 9},
		{Version: Version, Type: TFree, Keys: []uint64{1, 2, 3}},
		{Version: Version, Type: THello, Host: "client", Data: []byte("token")},
	}
	var want bytes.Buffer
	for _, m := range msgs {
		want.Write(frameBytes(t, m))
	}

	var got bytes.Buffer
	fw := NewFrameWriter(&got)
	for _, m := range msgs {
		if err := fw.Queue(m); err != nil {
			t.Fatal(err)
		}
	}
	if fw.Frames() != len(msgs) {
		t.Fatalf("Frames() = %d, want %d", fw.Frames(), len(msgs))
	}
	if fw.Buffered() != want.Len() {
		t.Fatalf("Buffered() = %d, want %d", fw.Buffered(), want.Len())
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("flushed batch differs from per-frame AppendFrame encoding")
	}
	if fw.Frames() != 0 || fw.Buffered() != 0 {
		t.Fatal("writer not empty after Flush")
	}
	// The flushed stream decodes back to the queued messages.
	r := bytes.NewReader(got.Bytes())
	for i, m := range msgs {
		d, err := Decode(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !sameMsg(d, m) {
			t.Fatalf("frame %d mangled: %+v vs %+v", i, d, m)
		}
	}
}

// coalescingWriter implements BuffersWriter the way memnet's conn
// does: one coalesced Write per flush.
type coalescingWriter struct {
	out     bytes.Buffer
	flushes int
}

func (cw *coalescingWriter) Write(p []byte) (int, error) { return cw.out.Write(p) }

func (cw *coalescingWriter) WriteBuffers(v *net.Buffers) (int64, error) {
	cw.flushes++
	return v.WriteTo(&cw.out)
}

// TestFrameWriterUsesBuffersWriter: a transport exposing the vectored
// hook receives the whole batch through it.
func TestFrameWriterUsesBuffersWriter(t *testing.T) {
	cw := &coalescingWriter{}
	fw := NewFrameWriter(cw)
	data := page.NewBuf()
	data.Fill(5)
	m := (&Msg{Version: Version2, ID: 3, Type: TPageOut, Key: 1, Data: data}).WithChecksum()
	if err := fw.Queue(m); err != nil {
		t.Fatal(err)
	}
	if err := fw.Queue(&Msg{Version: Version2, ID: 4, Type: TLoad}); err != nil {
		t.Fatal(err)
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	if cw.flushes != 1 {
		t.Fatalf("WriteBuffers called %d times, want 1", cw.flushes)
	}
	if !bytes.Equal(cw.out.Bytes(), append(frameBytes(t, m), frameBytes(t, &Msg{Version: Version2, ID: 4, Type: TLoad})...)) {
		t.Fatal("vectored flush produced wrong bytes")
	}
}

// TestFrameWriterZeroCopy: the payload is referenced until Flush, not
// copied at Queue — mutating the buffer between Queue and Flush ships
// the mutated bytes. This is the documented aliasing hazard, asserted
// here so a regression to copy-into-scratch is caught.
func TestFrameWriterZeroCopy(t *testing.T) {
	var out bytes.Buffer
	fw := NewFrameWriter(&out)
	data := page.NewBuf()
	data.Fill(1)
	m := &Msg{Version: Version2, ID: 9, Type: TPageOut, Key: 2, Data: data}
	if err := fw.Queue(m); err != nil {
		t.Fatal(err)
	}
	data[0] ^= 0xFF // mutate after Queue, before Flush
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	d, err := Decode(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if d.Data[0] != data[0] {
		t.Fatal("payload was copied at Queue time; writer must reference it until Flush")
	}
}

func TestFrameWriterEmptyFlush(t *testing.T) {
	fw := NewFrameWriter(&bytes.Buffer{})
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestFrameWriterDropsPayloadRefs: after Flush the writer retains no
// payload references (pooled buffers must be recyclable).
func TestFrameWriterDropsPayloadRefs(t *testing.T) {
	var out bytes.Buffer
	fw := NewFrameWriter(&out)
	data := page.NewBuf()
	if err := fw.Queue(&Msg{Type: TPageOut, Key: 1, Data: data}); err != nil {
		t.Fatal(err)
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	for i, d := range fw.datas[:cap(fw.datas)] {
		if d != nil {
			t.Fatalf("datas[%d] still referenced after Flush", i)
		}
	}
	for i, v := range fw.vecs[:cap(fw.vecs)] {
		if v != nil {
			t.Fatalf("vecs[%d] still referenced after Flush", i)
		}
	}
}
