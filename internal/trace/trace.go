// Package trace persists page-reference traces and fault streams in
// a compact binary format, so paper-scale workload traces can be
// recorded once and replayed offline (through vm.Replayer and the
// sim cost models) without regenerating them.
//
// Format ("RMPT", version 1):
//
//	magic "RMPT" | version u8 | kind u8 | reserved u16
//	then a varint token stream, one token per record:
//	    token = zigzag(page - prevPage) << 1 | writeBit
//	terminated by EOF.
//
// Delta+varint encoding exploits the sequential locality of real
// traces: a paper-scale GAUSS trace (~11 M references) encodes in a
// few MB instead of ~90 MB raw.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"rmp/internal/vm"
)

// Kind discriminates trace contents.
type Kind uint8

const (
	// KindRefs is a page-reference trace (input to an LRU).
	KindRefs Kind = 1
	// KindFaults is a fault stream (output of an LRU, input to cost
	// models); the write bit marks pageouts.
	KindFaults Kind = 2
)

var magic = [4]byte{'R', 'M', 'P', 'T'}

const version = 1

// Errors.
var (
	ErrBadMagic   = errors.New("trace: bad magic")
	ErrBadVersion = errors.New("trace: unsupported version")
	ErrBadKind    = errors.New("trace: wrong trace kind")
)

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Writer streams records into an RMPT file.
type Writer struct {
	bw   *bufio.Writer
	prev int64
	n    uint64
	buf  [binary.MaxVarintLen64]byte
}

// NewWriter writes the header for a trace of the given kind.
func NewWriter(w io.Writer, kind Kind) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	hdr := []byte{magic[0], magic[1], magic[2], magic[3], version, byte(kind), 0, 0}
	if _, err := bw.Write(hdr); err != nil {
		return nil, err
	}
	return &Writer{bw: bw}, nil
}

// MaxPage bounds representable page numbers: the token encoding
// spends one bit on the write flag and one on the zigzag sign, so
// deltas must fit 62 bits. 2^61 pages of 8 KB is 16 EiB of address
// space — no real trace comes close.
const MaxPage = int64(1)<<61 - 1

// Write appends one record.
func (w *Writer) Write(pg int64, write bool) error {
	if pg < 0 || pg > MaxPage {
		return fmt.Errorf("trace: page %d outside [0, 2^61)", pg)
	}
	token := zigzag(pg-w.prev) << 1
	if write {
		token |= 1
	}
	w.prev = pg
	w.n++
	n := binary.PutUvarint(w.buf[:], token)
	_, err := w.bw.Write(w.buf[:n])
	return err
}

// Count reports records written so far.
func (w *Writer) Count() uint64 { return w.n }

// Flush drains buffered bytes to the underlying writer.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Reader streams records out of an RMPT file.
type Reader struct {
	br   *bufio.Reader
	kind Kind
	prev int64
	n    uint64
}

// NewReader validates the header and prepares to stream records.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: header: %w", err)
	}
	if [4]byte{hdr[0], hdr[1], hdr[2], hdr[3]} != magic {
		return nil, ErrBadMagic
	}
	if hdr[4] != version {
		return nil, ErrBadVersion
	}
	return &Reader{br: br, kind: Kind(hdr[5])}, nil
}

// Kind reports the trace kind from the header.
func (r *Reader) Kind() Kind { return r.kind }

// Next returns the next record, or io.EOF at the end.
func (r *Reader) Next() (pg int64, write bool, err error) {
	token, err := binary.ReadUvarint(r.br)
	if err != nil {
		if err == io.EOF {
			return 0, false, io.EOF
		}
		return 0, false, fmt.Errorf("trace: record %d: %w", r.n, err)
	}
	write = token&1 != 0
	r.prev += unzigzag(token >> 1)
	r.n++
	return r.prev, write, nil
}

// Count reports records read so far.
func (r *Reader) Count() uint64 { return r.n }

// --- convenience helpers --------------------------------------------------

// SaveRefs records everything emit produces as a KindRefs trace.
func SaveRefs(w io.Writer, emitTrace func(emit func(pg int64, write bool))) (uint64, error) {
	tw, err := NewWriter(w, KindRefs)
	if err != nil {
		return 0, err
	}
	var werr error
	emitTrace(func(pg int64, write bool) {
		if werr == nil {
			werr = tw.Write(pg, write)
		}
	})
	if werr != nil {
		return 0, werr
	}
	return tw.Count(), tw.Flush()
}

// ReplayRefs streams a KindRefs trace into fn.
func ReplayRefs(r io.Reader, fn func(pg int64, write bool)) (uint64, error) {
	tr, err := NewReader(r)
	if err != nil {
		return 0, err
	}
	if tr.Kind() != KindRefs {
		return 0, ErrBadKind
	}
	for {
		pg, write, err := tr.Next()
		if err == io.EOF {
			return tr.Count(), nil
		}
		if err != nil {
			return tr.Count(), err
		}
		fn(pg, write)
	}
}

// SaveFaults writes a fault stream as a KindFaults trace (write bit =
// pageout).
func SaveFaults(w io.Writer, faults []vm.Fault) error {
	tw, err := NewWriter(w, KindFaults)
	if err != nil {
		return err
	}
	for _, f := range faults {
		if err := tw.Write(f.Page, f.Kind == vm.FaultOut); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// LoadFaults reads a KindFaults trace back into memory.
func LoadFaults(r io.Reader) ([]vm.Fault, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	if tr.Kind() != KindFaults {
		return nil, ErrBadKind
	}
	var out []vm.Fault
	for {
		pg, write, err := tr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		kind := vm.FaultIn
		if write {
			kind = vm.FaultOut
		}
		out = append(out, vm.Fault{Kind: kind, Page: pg})
	}
}
