package trace

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"rmp/internal/apps"
	"rmp/internal/vm"
)

func TestRoundTripRefs(t *testing.T) {
	type ref struct {
		pg    int64
		write bool
	}
	refs := []ref{{0, true}, {1, false}, {100, true}, {50, false}, {1 << 40, true}, {0, false}}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, KindRefs)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range refs {
		if err := w.Write(r.pg, r.write); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind() != KindRefs {
		t.Fatal("wrong kind")
	}
	for i, want := range refs {
		pg, write, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if pg != want.pg || write != want.write {
			t.Fatalf("record %d = (%d,%v), want (%d,%v)", i, pg, write, want.pg, want.write)
		}
	}
	if _, _, err := r.Next(); err != io.EOF {
		t.Fatalf("got %v, want EOF", err)
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(pages []int64, writes []bool) bool {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, KindRefs)
		if err != nil {
			return false
		}
		n := len(pages)
		if len(writes) < n {
			n = len(writes)
		}
		for i := 0; i < n; i++ {
			pg := pages[i] & (1<<48 - 1) // realistic page-number range
			if err := w.Write(pg, writes[i]); err != nil {
				return false
			}
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			pg, write, err := r.Next()
			want := pages[i] & (1<<48 - 1)
			if err != nil || pg != want || write != writes[i] {
				return false
			}
		}
		_, _, err = r.Next()
		return err == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteRejectsOutOfRange(t *testing.T) {
	w, err := NewWriter(io.Discard, KindRefs)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(-1, false); err == nil {
		t.Fatal("negative page accepted")
	}
	if err := w.Write(MaxPage+1, false); err == nil {
		t.Fatal("page beyond MaxPage accepted")
	}
	if err := w.Write(MaxPage, false); err != nil {
		t.Fatalf("MaxPage rejected: %v", err)
	}
}

func TestBadHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("XXXX\x01\x01\x00\x00"))); err != ErrBadMagic {
		t.Fatalf("got %v, want ErrBadMagic", err)
	}
	if _, err := NewReader(bytes.NewReader([]byte("RMPT\x09\x01\x00\x00"))); err != ErrBadVersion {
		t.Fatalf("got %v, want ErrBadVersion", err)
	}
	if _, err := NewReader(bytes.NewReader([]byte("RM"))); err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestKindMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveFaults(&buf, []vm.Fault{{Kind: vm.FaultIn, Page: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayRefs(bytes.NewReader(buf.Bytes()), func(int64, bool) {}); err != ErrBadKind {
		t.Fatalf("got %v, want ErrBadKind", err)
	}
}

func TestFaultStreamRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var faults []vm.Fault
	for i := 0; i < 1000; i++ {
		kind := vm.FaultIn
		if rng.Intn(2) == 0 {
			kind = vm.FaultOut
		}
		faults = append(faults, vm.Fault{Kind: kind, Page: rng.Int63n(1 << 20)})
	}
	var buf bytes.Buffer
	if err := SaveFaults(&buf, faults); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFaults(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(faults) {
		t.Fatalf("got %d faults, want %d", len(got), len(faults))
	}
	for i := range faults {
		if got[i] != faults[i] {
			t.Fatalf("fault %d = %+v, want %+v", i, got[i], faults[i])
		}
	}
}

// TestWorkloadTraceRoundTrip: saving and replaying a real application
// trace reproduces identical fault counts.
func TestWorkloadTraceRoundTrip(t *testing.T) {
	w := apps.NewGauss(96)
	var buf bytes.Buffer
	n, err := SaveRefs(&buf, func(emit func(int64, bool)) { w.Trace(emit) })
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("empty trace")
	}

	resident := int(w.Bytes() / 8192 / 3)
	direct := vm.NewReplayer(resident, nil)
	w.Trace(func(pg int64, wr bool) { direct.Ref(pg, wr) })
	dIns, dOuts := direct.Counts()

	replayed := vm.NewReplayer(resident, nil)
	m, err := ReplayRefs(bytes.NewReader(buf.Bytes()), func(pg int64, wr bool) { replayed.Ref(pg, wr) })
	if err != nil {
		t.Fatal(err)
	}
	if m != n {
		t.Fatalf("replayed %d records, wrote %d", m, n)
	}
	rIns, rOuts := replayed.Counts()
	if rIns != dIns || rOuts != dOuts {
		t.Fatalf("replayed faults (%d,%d) != direct (%d,%d)", rIns, rOuts, dIns, dOuts)
	}
}

// TestCompression: delta+varint beats raw fixed-width encoding by a
// wide margin on a real trace.
func TestCompression(t *testing.T) {
	w := apps.NewFFT(1 << 14)
	var buf bytes.Buffer
	n, err := SaveRefs(&buf, func(emit func(int64, bool)) { w.Trace(emit) })
	if err != nil {
		t.Fatal(err)
	}
	raw := n * 9 // 8-byte page + 1-byte flag
	if uint64(buf.Len()) > raw/3 {
		t.Fatalf("encoded %d bytes for %d records (raw %d): compression too weak", buf.Len(), n, raw)
	}
}

func TestTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, KindRefs)
	for i := int64(0); i < 100; i++ {
		w.Write(i*1000000, true) // large deltas: multi-byte varints
	}
	w.Flush()
	cut := buf.Bytes()[:buf.Len()-1] // cut mid-varint
	r, err := NewReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, _, err := r.Next()
		if err == io.EOF {
			break // acceptable: truncation at a record boundary
		}
		if err != nil {
			return // detected mid-record truncation: good
		}
	}
	if r.Count() == 100 {
		t.Fatal("truncated stream yielded all records")
	}
}

func BenchmarkWrite(b *testing.B) {
	w, _ := NewWriter(io.Discard, KindRefs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Write(int64(i%4096), i%2 == 0)
	}
}
