package trace

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReader: arbitrary bytes must never panic the trace reader.
func FuzzReader(f *testing.F) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, KindRefs)
	for i := int64(0); i < 50; i++ {
		w.Write(i*3, i%2 == 0)
	}
	w.Flush()
	f.Add(buf.Bytes())
	f.Add([]byte("RMPT\x01\x01\x00\x00"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, raw []byte) {
		r, err := NewReader(bytes.NewReader(raw))
		if err != nil {
			return
		}
		for i := 0; i < 1<<16; i++ { // bound the walk
			if _, _, err := r.Next(); err != nil {
				if err != io.EOF {
					_ = err // mid-record truncation: fine
				}
				return
			}
		}
	})
}
