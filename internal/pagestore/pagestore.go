// Package pagestore implements the flat in-memory page store: a
// thread-safe (key -> page) map with quota accounting. It is the hot
// tier's data plane inside the server's tiered store
// (internal/store), and remains usable on its own wherever a single
// uncompressed in-memory tier is all that is needed (tests, tools,
// the simulator).
//
// The store enforces two limits that map directly onto the paper's
// design (§2.1, §2.2):
//
//   - Capacity: the number of pages the workstation is willing to
//     donate. Allocation requests beyond it are denied, which is the
//     signal the client uses to look for another server.
//
//   - Overflow: extra headroom beyond the allocated quota. Parity
//     logging keeps many versions of a page alive at once ("each
//     memory server must have some extra overflow memory to support
//     parity logging"); the paper's experiments devote 10 % more
//     memory for this. Stores report when a client is eating into the
//     overflow so the client can trigger parity-group garbage
//     collection.
package pagestore

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"rmp/internal/page"
)

// Errors returned by Store operations.
var (
	ErrNoSpace  = errors.New("pagestore: out of donated memory")
	ErrNotFound = errors.New("pagestore: page not found")
)

// Store is a thread-safe (key -> page) map with quota accounting.
// The zero value is not usable; call New.
type Store struct {
	mu sync.RWMutex

	capacity     int     // hard page limit including overflow
	overflowFrac float64 // headroom fraction kept out of Reserve's reach

	// reserved is the pages promised via Reserve (the ALLOC path).
	// Guarded by mu.
	reserved int

	// pages is the stored data. Guarded by mu.
	pages map[uint64]page.Buf

	// stats is the monotonically increasing activity counters.
	// Guarded by mu.
	stats Stats
}

// Stats counts store activity. All fields are totals since creation.
type Stats struct {
	Puts      uint64
	Gets      uint64
	Deletes   uint64
	XorWrites uint64
	Misses    uint64
	Denied    uint64
}

// New creates a store donating capacity pages, of which overflowFrac
// (e.g. 0.10) is overflow headroom beyond what Reserve will promise.
// capacity counts total storable pages; Reserve can promise at most
// capacity/(1+overflowFrac) pages.
func New(capacity int, overflowFrac float64) *Store {
	if capacity < 0 {
		capacity = 0
	}
	if overflowFrac < 0 {
		overflowFrac = 0
	}
	return &Store{
		capacity: capacity,
		pages:    make(map[uint64]page.Buf),
		// reservable derived on demand from overflowFrac below.
		overflowFrac: overflowFrac,
	}
}

// Reserve asks the store to promise n more pages of swap space.
// It returns the number actually granted (possibly 0). Grants never
// dip into the overflow headroom; stored pages may (that is the point
// of overflow).
func (s *Store) Reserve(n int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	reservable := s.reservable()
	free := reservable - s.reserved
	if free <= 0 {
		s.stats.Denied++
		return 0
	}
	if n > free {
		n = free
	}
	s.reserved += n
	return n
}

// Release returns n previously reserved pages to the pool.
func (s *Store) Release(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reserved -= n
	if s.reserved < 0 {
		s.reserved = 0
	}
}

// reservable is the quota Reserve may promise: capacity shrunk by the
// overflow fraction. Caller holds mu.
//
//rmpvet:holds Store.mu
func (s *Store) reservable() int {
	return int(float64(s.capacity)/(1+s.overflowFrac) + 0.5)
}

// Put stores a copy of data under key, replacing any previous version.
// It fails with ErrNoSpace only when the store is at hard capacity —
// i.e. even the overflow is exhausted.
func (s *Store) Put(key uint64, data page.Buf) error {
	if err := data.CheckLen(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	old, exists := s.pages[key]
	if !exists && len(s.pages) >= s.capacity {
		s.stats.Denied++
		return ErrNoSpace
	}
	s.pages[key] = data.ClonePooled()
	page.Put(old)
	s.stats.Puts++
	return nil
}

// Get returns a copy of the page stored under key. The copy is a
// pooled page-class buffer owned exclusively by the caller, who may
// page.Put it when done (or drop it to the GC).
func (s *Store) Get(key uint64) (page.Buf, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pages[key]
	if !ok {
		s.stats.Misses++
		return nil, ErrNotFound
	}
	s.stats.Gets++
	return p.ClonePooled(), nil
}

// Delete removes keys; missing keys are ignored (frees are idempotent
// so a retried FREE after a lost ack cannot fail).
func (s *Store) Delete(keys ...uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, k := range keys {
		if old, ok := s.pages[k]; ok {
			delete(s.pages, k)
			page.Put(old)
			s.stats.Deletes++
		}
	}
}

// XorWrite stores data under key and returns old XOR new, where a
// missing old page counts as zeros. This is the server half of the
// basic parity policy (§2.2 step 1: "the server ... computes the XOR
// of the old and the new page").
func (s *Store) XorWrite(key uint64, data page.Buf) (page.Buf, error) {
	if err := data.CheckLen(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	old, exists := s.pages[key]
	if !exists && len(s.pages) >= s.capacity {
		s.stats.Denied++
		return nil, ErrNoSpace
	}
	delta := data.ClonePooled()
	if exists {
		page.XORInto(delta, old)
	}
	s.pages[key] = data.ClonePooled()
	page.Put(old)
	s.stats.XorWrites++
	return delta, nil
}

// XorMerge XORs data into the page at key (missing page = zeros).
// This is the parity-server half of the basic parity policy (§2.2
// step 2: "XORs it with the old parity, forming the new parity").
func (s *Store) XorMerge(key uint64, data page.Buf) error {
	if err := data.CheckLen(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	old, exists := s.pages[key]
	if !exists {
		if len(s.pages) >= s.capacity {
			s.stats.Denied++
			return ErrNoSpace
		}
		s.pages[key] = data.ClonePooled()
		s.stats.Puts++
		return nil
	}
	// The stored buffer is never aliased outside the map (Get returns
	// clones), so the merge mutates it in place — no allocation at all.
	page.XORInto(old, data)
	s.stats.XorWrites++
	return nil
}

// Len returns the number of stored pages.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.pages)
}

// Free returns the number of pages Reserve could still promise.
func (s *Store) Free() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f := s.reservable() - s.reserved
	if f < 0 {
		f = 0
	}
	return f
}

// InOverflow reports whether stored pages exceed the reservable quota,
// i.e. the client is living off the overflow headroom and should run
// parity-group garbage collection soon.
func (s *Store) InOverflow() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.pages) > s.reservable()
}

// Keys returns all stored keys in ascending order; used by recovery
// tooling and tests.
func (s *Store) Keys() []uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]uint64, 0, len(s.pages))
	for k := range s.pages {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// Stats returns a snapshot of the activity counters.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.stats
}

// String describes the store's occupancy.
func (s *Store) String() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return fmt.Sprintf("pagestore{%d/%d pages, %d reserved}", len(s.pages), s.capacity, s.reserved)
}
