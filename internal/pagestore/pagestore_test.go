package pagestore

import (
	"sync"
	"testing"
	"testing/quick"

	"rmp/internal/page"
)

func fillPage(seed uint64) page.Buf {
	p := page.NewBuf()
	p.Fill(seed)
	return p
}

func TestPutGetRoundTrip(t *testing.T) {
	s := New(10, 0)
	want := fillPage(1)
	if err := s.Put(5, want); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(5)
	if err != nil {
		t.Fatal(err)
	}
	if got.Checksum() != want.Checksum() {
		t.Fatal("Get returned different data")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := New(10, 0)
	if err := s.Put(1, fillPage(1)); err != nil {
		t.Fatal(err)
	}
	a, _ := s.Get(1)
	a[0] ^= 0xFF
	b, _ := s.Get(1)
	if a[0] == b[0] {
		t.Fatal("Get exposes internal storage")
	}
}

func TestPutRejectsShortPage(t *testing.T) {
	s := New(10, 0)
	if err := s.Put(1, make(page.Buf, 10)); err == nil {
		t.Fatal("Put accepted short page")
	}
}

func TestGetMissing(t *testing.T) {
	s := New(10, 0)
	if _, err := s.Get(42); err != ErrNotFound {
		t.Fatalf("got %v, want ErrNotFound", err)
	}
	if s.Stats().Misses != 1 {
		t.Fatal("miss not counted")
	}
}

func TestCapacityEnforced(t *testing.T) {
	s := New(3, 0)
	for i := uint64(0); i < 3; i++ {
		if err := s.Put(i, fillPage(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put(99, fillPage(99)); err != ErrNoSpace {
		t.Fatalf("got %v, want ErrNoSpace", err)
	}
	// Overwriting an existing key must still work at capacity.
	if err := s.Put(1, fillPage(100)); err != nil {
		t.Fatalf("overwrite at capacity failed: %v", err)
	}
}

func TestReserveGrantsAndDenies(t *testing.T) {
	s := New(100, 0)
	if got := s.Reserve(60); got != 60 {
		t.Fatalf("Reserve(60) = %d", got)
	}
	if got := s.Reserve(60); got != 40 {
		t.Fatalf("second Reserve(60) = %d, want 40 (partial grant)", got)
	}
	if got := s.Reserve(1); got != 0 {
		t.Fatalf("Reserve over capacity granted %d", got)
	}
	if s.Stats().Denied == 0 {
		t.Fatal("denial not counted")
	}
	s.Release(50)
	if got := s.Reserve(100); got != 50 {
		t.Fatalf("Reserve after Release = %d, want 50", got)
	}
}

func TestReleaseClampsAtZero(t *testing.T) {
	s := New(10, 0)
	s.Release(5) // never reserved
	if got := s.Reserve(10); got != 10 {
		t.Fatalf("Reserve after spurious Release = %d, want 10", got)
	}
}

func TestOverflowHeadroom(t *testing.T) {
	// 110 pages capacity with 10% overflow: only 100 reservable, but
	// 110 storable — the parity-logging overflow (§2.2).
	s := New(110, 0.10)
	if got := s.Reserve(1000); got != 100 {
		t.Fatalf("reservable = %d, want 100", got)
	}
	for i := uint64(0); i < 110; i++ {
		if err := s.Put(i, fillPage(i)); err != nil {
			t.Fatalf("Put %d into overflow failed: %v", i, err)
		}
	}
	if err := s.Put(999, fillPage(0)); err != ErrNoSpace {
		t.Fatal("Put beyond hard capacity succeeded")
	}
	if !s.InOverflow() {
		t.Fatal("InOverflow false with 110 > 100 pages stored")
	}
	s.Delete(s.Keys()[:20]...)
	if s.InOverflow() {
		t.Fatal("InOverflow true after draining below quota")
	}
}

func TestDeleteIdempotent(t *testing.T) {
	s := New(10, 0)
	if err := s.Put(1, fillPage(1)); err != nil {
		t.Fatal(err)
	}
	s.Delete(1, 1, 2)
	if s.Len() != 0 {
		t.Fatal("Delete left pages behind")
	}
	if s.Stats().Deletes != 1 {
		t.Fatalf("Deletes = %d, want 1 (missing keys don't count)", s.Stats().Deletes)
	}
}

func TestXorWriteFirstWrite(t *testing.T) {
	s := New(10, 0)
	data := fillPage(3)
	delta, err := s.XorWrite(7, data)
	if err != nil {
		t.Fatal(err)
	}
	// With no previous page, delta == data (old = zeros).
	if delta.Checksum() != data.Checksum() {
		t.Fatal("first XorWrite delta != data")
	}
}

func TestXorWriteDelta(t *testing.T) {
	s := New(10, 0)
	old := fillPage(1)
	newer := fillPage(2)
	if _, err := s.XorWrite(7, old); err != nil {
		t.Fatal(err)
	}
	delta, err := s.XorWrite(7, newer)
	if err != nil {
		t.Fatal(err)
	}
	want := page.XOR(old, newer)
	if delta.Checksum() != want.Checksum() {
		t.Fatal("XorWrite delta != old^new")
	}
	got, _ := s.Get(7)
	if got.Checksum() != newer.Checksum() {
		t.Fatal("XorWrite did not store the new page")
	}
}

func TestXorMergeAccumulatesParity(t *testing.T) {
	s := New(10, 0)
	a, b, c := fillPage(1), fillPage(2), fillPage(3)
	for _, p := range []page.Buf{a, b, c} {
		if err := s.XorMerge(0, p); err != nil {
			t.Fatal(err)
		}
	}
	want := page.XOR(page.XOR(a, b), c)
	got, _ := s.Get(0)
	if got.Checksum() != want.Checksum() {
		t.Fatal("XorMerge parity != a^b^c")
	}
}

func TestXorMergeRespectsCapacity(t *testing.T) {
	s := New(1, 0)
	if err := s.XorMerge(0, fillPage(1)); err != nil {
		t.Fatal(err)
	}
	if err := s.XorMerge(1, fillPage(2)); err != ErrNoSpace {
		t.Fatalf("got %v, want ErrNoSpace", err)
	}
	// Merging into the existing key is fine at capacity.
	if err := s.XorMerge(0, fillPage(3)); err != nil {
		t.Fatal(err)
	}
}

func TestKeysSorted(t *testing.T) {
	s := New(10, 0)
	for _, k := range []uint64{5, 1, 9, 3} {
		if err := s.Put(k, fillPage(k)); err != nil {
			t.Fatal(err)
		}
	}
	keys := s.Keys()
	want := []uint64{1, 3, 5, 9}
	for i, k := range keys {
		if k != want[i] {
			t.Fatalf("Keys() = %v, want %v", keys, want)
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New(1000, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				k := uint64(g*100 + i)
				if err := s.Put(k, fillPage(k)); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if _, err := s.Get(k); err != nil {
					t.Errorf("Get: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 800 {
		t.Fatalf("Len = %d, want 800", s.Len())
	}
}

func TestNegativeInputsClamped(t *testing.T) {
	s := New(-5, -0.5)
	if got := s.Reserve(1); got != 0 {
		t.Fatalf("Reserve on zero-capacity store = %d", got)
	}
	if err := s.Put(1, fillPage(1)); err != ErrNoSpace {
		t.Fatalf("Put on zero-capacity store: %v", err)
	}
}

func TestPutGetQuick(t *testing.T) {
	s := New(4096, 0)
	f := func(key uint64, seed uint64) bool {
		p := fillPage(seed)
		if err := s.Put(key, p); err != nil {
			return true // capacity, acceptable
		}
		got, err := s.Get(key)
		return err == nil && got.Checksum() == p.Checksum()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPut(b *testing.B) {
	s := New(1<<20, 0)
	p := fillPage(1)
	b.SetBytes(page.Size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put(uint64(i), p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGet(b *testing.B) {
	s := New(1024, 0)
	p := fillPage(1)
	for i := uint64(0); i < 1024; i++ {
		if err := s.Put(i, p); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(page.Size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get(uint64(i) % 1024); err != nil {
			b.Fatal(err)
		}
	}
}
