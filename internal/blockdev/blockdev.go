// Package blockdev defines the block-device boundary between the
// operating system's paging code and the RMP.
//
// In the paper the pager is "a block device driver linked to the DEC
// OSF/1 operating system": the kernel performs ordinary paging to a
// block device and never learns that the blocks live in remote
// memory. Device is that boundary — the VM layer (internal/vm, our
// stand-in for the OSF/1 VM) reads and writes page-sized blocks by
// number, and implementations route them to the pager, to a plain
// file, or to memory.
package blockdev

import (
	"errors"
	"fmt"
	"sync"

	"rmp/internal/client"
	"rmp/internal/page"
)

// Device is a page-granular block device.
type Device interface {
	// ReadBlock fills buf with the contents of block bn.
	ReadBlock(bn int64, buf page.Buf) error
	// WriteBlock stores data as the contents of block bn.
	WriteBlock(bn int64, data page.Buf) error
	// Discard releases any storage for the given blocks (TRIM); the
	// VM calls it when an address space shrinks or exits.
	Discard(bns ...int64) error
	// Close releases device resources.
	Close() error
}

// ErrBadBlock is returned for negative block numbers.
var ErrBadBlock = errors.New("blockdev: negative block number")

// --- Pager-backed device -------------------------------------------------

// PagerDevice adapts a client.Pager to the Device interface: block
// number n is page.ID n. This is the configuration the paper runs —
// the kernel's paging requests flow into the remote memory pager.
type PagerDevice struct {
	Pager *client.Pager
}

var _ Device = (*PagerDevice)(nil)

// NewPagerDevice wraps an existing pager.
func NewPagerDevice(p *client.Pager) *PagerDevice { return &PagerDevice{Pager: p} }

func (d *PagerDevice) ReadBlock(bn int64, buf page.Buf) error {
	if bn < 0 {
		return ErrBadBlock
	}
	data, err := d.Pager.PageIn(page.ID(bn))
	if err != nil {
		return err
	}
	copy(buf, data)
	return nil
}

func (d *PagerDevice) WriteBlock(bn int64, data page.Buf) error {
	if bn < 0 {
		return ErrBadBlock
	}
	return d.Pager.PageOut(page.ID(bn), data)
}

func (d *PagerDevice) Discard(bns ...int64) error {
	ids := make([]page.ID, 0, len(bns))
	for _, bn := range bns {
		if bn < 0 {
			return ErrBadBlock
		}
		ids = append(ids, page.ID(bn))
	}
	return d.Pager.Free(ids...)
}

// Close closes the underlying pager.
func (d *PagerDevice) Close() error { return d.Pager.Close() }

// --- In-memory device ----------------------------------------------------

// MemDevice is a trivial in-memory block device for tests and for
// running applications without any paging infrastructure.
type MemDevice struct {
	mu     sync.Mutex
	blocks map[int64]page.Buf
}

var _ Device = (*MemDevice)(nil)

// NewMemDevice creates an empty in-memory device.
func NewMemDevice() *MemDevice { return &MemDevice{blocks: make(map[int64]page.Buf)} }

func (d *MemDevice) ReadBlock(bn int64, buf page.Buf) error {
	if bn < 0 {
		return ErrBadBlock
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	data, ok := d.blocks[bn]
	if !ok {
		return fmt.Errorf("blockdev: block %d never written", bn)
	}
	copy(buf, data)
	return nil
}

func (d *MemDevice) WriteBlock(bn int64, data page.Buf) error {
	if bn < 0 {
		return ErrBadBlock
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.blocks[bn] = data.Clone()
	return nil
}

func (d *MemDevice) Discard(bns ...int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, bn := range bns {
		if bn < 0 {
			return ErrBadBlock
		}
		delete(d.blocks, bn)
	}
	return nil
}

func (d *MemDevice) Close() error { return nil }

// Len returns the number of stored blocks.
func (d *MemDevice) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.blocks)
}

// --- Counting wrapper -----------------------------------------------------

// CountingDevice wraps a Device and counts traffic; the experiment
// harness uses it to measure an application's pagein/pageout volume.
type CountingDevice struct {
	Inner Device

	mu     sync.Mutex
	reads  uint64
	writes uint64
}

var _ Device = (*CountingDevice)(nil)

// NewCountingDevice wraps inner.
func NewCountingDevice(inner Device) *CountingDevice { return &CountingDevice{Inner: inner} }

func (d *CountingDevice) ReadBlock(bn int64, buf page.Buf) error {
	d.mu.Lock()
	d.reads++
	d.mu.Unlock()
	return d.Inner.ReadBlock(bn, buf)
}

func (d *CountingDevice) WriteBlock(bn int64, data page.Buf) error {
	d.mu.Lock()
	d.writes++
	d.mu.Unlock()
	return d.Inner.WriteBlock(bn, data)
}

func (d *CountingDevice) Discard(bns ...int64) error { return d.Inner.Discard(bns...) }
func (d *CountingDevice) Close() error               { return d.Inner.Close() }

// Counts returns (pageins, pageouts) seen so far.
func (d *CountingDevice) Counts() (reads, writes uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.reads, d.writes
}
