package blockdev_test

import (
	"testing"

	"rmp/internal/blockdev"
	"rmp/internal/client"
	"rmp/internal/page"
	"rmp/internal/server"
)

func mkPage(seed uint64) page.Buf {
	p := page.NewBuf()
	p.Fill(seed)
	return p
}

func TestMemDeviceRoundTrip(t *testing.T) {
	d := blockdev.NewMemDevice()
	want := mkPage(1)
	if err := d.WriteBlock(5, want); err != nil {
		t.Fatal(err)
	}
	got := page.NewBuf()
	if err := d.ReadBlock(5, got); err != nil {
		t.Fatal(err)
	}
	if got.Checksum() != want.Checksum() {
		t.Fatal("block mangled")
	}
}

func TestMemDeviceMissingBlock(t *testing.T) {
	d := blockdev.NewMemDevice()
	if err := d.ReadBlock(9, page.NewBuf()); err == nil {
		t.Fatal("read of never-written block succeeded")
	}
}

func TestMemDeviceDiscard(t *testing.T) {
	d := blockdev.NewMemDevice()
	for bn := int64(0); bn < 5; bn++ {
		if err := d.WriteBlock(bn, mkPage(uint64(bn))); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Discard(1, 3); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 {
		t.Fatalf("Len = %d after discard, want 3", d.Len())
	}
}

func TestNegativeBlockRejected(t *testing.T) {
	d := blockdev.NewMemDevice()
	if err := d.WriteBlock(-1, mkPage(0)); err != blockdev.ErrBadBlock {
		t.Fatalf("got %v, want ErrBadBlock", err)
	}
	if err := d.ReadBlock(-1, page.NewBuf()); err != blockdev.ErrBadBlock {
		t.Fatalf("got %v, want ErrBadBlock", err)
	}
	if err := d.Discard(-1); err != blockdev.ErrBadBlock {
		t.Fatalf("got %v, want ErrBadBlock", err)
	}
}

func TestCountingDevice(t *testing.T) {
	d := blockdev.NewCountingDevice(blockdev.NewMemDevice())
	if err := d.WriteBlock(0, mkPage(0)); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadBlock(0, page.NewBuf()); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadBlock(0, page.NewBuf()); err != nil {
		t.Fatal(err)
	}
	r, w := d.Counts()
	if r != 2 || w != 1 {
		t.Fatalf("Counts = (%d,%d), want (2,1)", r, w)
	}
}

// TestPagerDevice drives the full stack: blockdev -> pager -> TCP ->
// remote memory server.
func TestPagerDevice(t *testing.T) {
	srv := server.New(server.Config{CapacityPages: 128})
	if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv2 := server.New(server.Config{CapacityPages: 128})
	if err := srv2.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()

	p, err := client.New(client.Config{
		Servers: []string{srv.Addr().String(), srv2.Addr().String()},
		Policy:  client.PolicyMirroring,
	})
	if err != nil {
		t.Fatal(err)
	}
	d := blockdev.NewPagerDevice(p)
	defer d.Close()

	for bn := int64(0); bn < 10; bn++ {
		if err := d.WriteBlock(bn, mkPage(uint64(bn))); err != nil {
			t.Fatal(err)
		}
	}
	got := page.NewBuf()
	for bn := int64(0); bn < 10; bn++ {
		if err := d.ReadBlock(bn, got); err != nil {
			t.Fatal(err)
		}
		if got.Checksum() != mkPage(uint64(bn)).Checksum() {
			t.Fatalf("block %d corrupted through pager", bn)
		}
	}
	if err := d.Discard(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadBlock(0, got); err == nil {
		t.Fatal("discarded block still readable")
	}
	if err := d.WriteBlock(-2, mkPage(0)); err != blockdev.ErrBadBlock {
		t.Fatal("negative block accepted by pager device")
	}
}
