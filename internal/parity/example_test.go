package parity_test

import (
	"fmt"

	"rmp/internal/page"
	"rmp/internal/parity"
)

// Example walks the parity-logging life cycle: round-robin placement,
// a seal after S pageouts, and reclamation once every member of a
// group has been superseded.
func Example() {
	log, _ := parity.NewLog(2) // S = 2 data columns

	fill := func(seed uint64) page.Buf {
		p := page.NewBuf()
		p.Fill(seed)
		return p
	}

	// Two pageouts fill group 1 and seal it.
	pl, _, _, _ := log.Append(10, fill(1))
	fmt.Printf("page 10 -> column %d\n", pl.Column)
	pl, sealed, _, _ := log.Append(11, fill(2))
	fmt.Printf("page 11 -> column %d, sealed group %d\n", pl.Column, sealed.Group)

	// Re-paging both members marks them inactive; the group's slots
	// (2 data + 1 parity) come back as a reclaim.
	log.Append(10, fill(3))
	_, _, recs, _ := log.Append(11, fill(4))
	fmt.Printf("reclaimed %d slots from group 1\n", len(recs[0].Slots))

	// Transfer cost: 1 + 1/S per pageout.
	fmt.Printf("appends=%d seals=%d\n", log.Stats().Appends, log.Stats().Seals)

	// Output:
	// page 10 -> column 0
	// page 11 -> column 1, sealed group 1
	// reclaimed 3 slots from group 1
	// appends=4 seals=2
}
