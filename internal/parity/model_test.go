package parity

import (
	"math/rand"
	"testing"

	"rmp/internal/page"
)

// modelChecker runs random Append/Free sequences against a simple
// reference model and checks the log's structural invariants after
// every operation:
//
//	I1: Lookup(p) succeeds exactly for live pages.
//	I2: no storage slot is allocated twice or reclaimed twice.
//	I3: reclaims only name slots that were previously handed out.
//	I4: stored versions == handed-out data slots - reclaimed ones.
//	I5: placements round-robin the columns of the open group.
type modelChecker struct {
	t   *testing.T
	l   *Log
	rng *rand.Rand

	live      map[page.ID]uint64 // page -> current slot key
	allocated map[uint64]int     // key -> column (incl. ParityColumn)
	freed     map[uint64]bool
	dataSlots int // live data-slot count (active + inactive versions)
}

func newModelChecker(t *testing.T, s int, seed int64) *modelChecker {
	l, err := NewLog(s)
	if err != nil {
		t.Fatal(err)
	}
	return &modelChecker{
		t:         t,
		l:         l,
		rng:       rand.New(rand.NewSource(seed)),
		live:      make(map[page.ID]uint64),
		allocated: make(map[uint64]int),
		freed:     make(map[uint64]bool),
	}
}

func (m *modelChecker) noteAlloc(key uint64, col int) {
	if _, dup := m.allocated[key]; dup {
		m.t.Fatalf("key %d allocated twice", key)
	}
	if m.freed[key] {
		m.t.Fatalf("key %d reused after free", key)
	}
	m.allocated[key] = col
}

func (m *modelChecker) noteReclaims(recs []Reclaim) {
	for _, r := range recs {
		for _, s := range r.Slots {
			col, ok := m.allocated[s.Key]
			if !ok {
				m.t.Fatalf("reclaimed key %d never allocated", s.Key)
			}
			if col != s.Column {
				m.t.Fatalf("key %d reclaimed on column %d, allocated on %d", s.Key, s.Column, col)
			}
			if m.freed[s.Key] {
				m.t.Fatalf("key %d reclaimed twice", s.Key)
			}
			m.freed[s.Key] = true
			if s.Column != ParityColumn {
				m.dataSlots--
			}
		}
	}
}

func (m *modelChecker) appendPage(id page.ID) {
	data := page.NewBuf()
	data.Fill(m.rng.Uint64())
	pl, sealed, recs, err := m.l.Append(id, data)
	if err != nil {
		m.t.Fatal(err)
	}
	m.noteAlloc(pl.Key, pl.Column)
	m.dataSlots++
	if sealed != nil {
		m.noteAlloc(sealed.Key, ParityColumn)
	}
	m.noteReclaims(recs)
	m.live[id] = pl.Key
	m.check()
}

func (m *modelChecker) freePage(id page.ID) {
	_, wasLive := m.live[id]
	m.noteReclaims(m.l.Free(id))
	delete(m.live, id)
	if _, still := m.l.Lookup(id); still {
		m.t.Fatalf("page %v still live after Free", id)
	}
	_ = wasLive
	m.check()
}

func (m *modelChecker) check() {
	// I1: live set agrees.
	for id, key := range m.live {
		ck, ok := m.l.Lookup(id)
		if !ok {
			m.t.Fatalf("live page %v not found", id)
		}
		if ck.Key != key {
			m.t.Fatalf("page %v at key %d, model says %d", id, ck.Key, key)
		}
	}
	if got := len(m.l.Pages()); got != len(m.live) {
		m.t.Fatalf("log reports %d live pages, model %d", got, len(m.live))
	}
	// I4: stored data versions match the slot ledger.
	data, _ := m.l.VersionsStored()
	if data != m.dataSlots {
		m.t.Fatalf("VersionsStored data = %d, ledger = %d", data, m.dataSlots)
	}
}

func TestLogModelRandomOps(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		for _, s := range []int{1, 2, 3, 5} {
			m := newModelChecker(t, s, seed)
			nPages := 1 + m.rng.Intn(20)
			for op := 0; op < 300; op++ {
				id := page.ID(m.rng.Intn(nPages))
				if m.rng.Intn(10) < 7 {
					m.appendPage(id)
				} else {
					m.freePage(id)
				}
			}
			// Drain: free everything; all data slots must eventually be
			// reclaimed except those pinned in the open group.
			for id := range m.live {
				m.freePage(id)
			}
			m.l.AbandonOpenGroup()
			// After abandoning, every group with zero active members is
			// reclaimed; since nothing is live, all groups are gone.
			data, parity := m.l.VersionsStored()
			if data != 0 || parity != 0 {
				t.Fatalf("seed %d s %d: %d data + %d parity versions leaked after full drain",
					seed, s, data, parity)
			}
		}
	}
}

// TestLogModelRecoveryEveryColumn crashes each column of a randomly
// built log and verifies the plans are internally consistent (every
// survivor slot is a currently allocated slot on a healthy column).
func TestLogModelRecoveryPlansConsistent(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		const s = 4
		m := newModelChecker(t, s, 100+seed)
		for op := 0; op < 120; op++ {
			m.appendPage(page.ID(m.rng.Intn(15)))
		}
		for col := 0; col < s; col++ {
			plan, err := m.l.PlanRecovery(col)
			if err != nil {
				t.Fatal(err)
			}
			for _, lp := range plan.Lost {
				if _, live := m.live[lp.Page]; !live {
					t.Fatalf("plan wants to rebuild non-live page %v", lp.Page)
				}
				for _, ck := range lp.Survivors {
					if ck.Column == col {
						t.Fatalf("survivor on the crashed column %d", col)
					}
					c, ok := m.allocated[ck.Key]
					if !ok || m.freed[ck.Key] {
						t.Fatalf("survivor key %d not currently allocated", ck.Key)
					}
					if c != ck.Column {
						t.Fatalf("survivor key %d column mismatch", ck.Key)
					}
				}
			}
			for _, id := range plan.Rehome {
				ck, ok := m.l.Lookup(id)
				if !ok {
					t.Fatalf("rehome target %v not live", id)
				}
				if ck.Column == col {
					t.Fatalf("rehome target %v lives on crashed column", id)
				}
			}
		}
	}
}
