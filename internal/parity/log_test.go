package parity

import (
	"math/rand"
	"testing"

	"rmp/internal/page"
)

func mkPage(seed uint64) page.Buf {
	p := page.NewBuf()
	p.Fill(seed)
	return p
}

func mustLog(t *testing.T, s int) *Log {
	t.Helper()
	l, err := NewLog(s)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewLogRejectsZeroWidth(t *testing.T) {
	if _, err := NewLog(0); err == nil {
		t.Fatal("NewLog(0) succeeded")
	}
}

func TestAppendRoundRobinColumns(t *testing.T) {
	l := mustLog(t, 4)
	for i := 0; i < 8; i++ {
		pl, _, _, err := l.Append(page.ID(i), mkPage(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if pl.Column != i%4 {
			t.Fatalf("append %d placed on column %d, want %d", i, pl.Column, i%4)
		}
	}
}

func TestSealAfterSAppends(t *testing.T) {
	l := mustLog(t, 3)
	var sealed *SealedParity
	for i := 0; i < 3; i++ {
		_, s, _, err := l.Append(page.ID(i), mkPage(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if i < 2 && s != nil {
			t.Fatalf("sealed after %d appends", i+1)
		}
		sealed = s
	}
	if sealed == nil {
		t.Fatal("no seal after S appends")
	}
	// Parity must equal XOR of the three pages.
	want := page.XOR(page.XOR(mkPage(0), mkPage(1)), mkPage(2))
	if sealed.Data.Checksum() != want.Checksum() {
		t.Fatal("sealed parity != XOR of members")
	}
	if l.Stats().Seals != 1 {
		t.Fatal("seal not counted")
	}
}

func TestTransferOverheadIsOnePlusOneOverS(t *testing.T) {
	// The headline property (§2.2): parity logging costs 1 + 1/S
	// transfers per pageout.
	const S, outs = 4, 100
	l := mustLog(t, S)
	transfers := 0
	for i := 0; i < outs; i++ {
		_, sealed, _, err := l.Append(page.ID(i%10), mkPage(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		transfers++
		if sealed != nil {
			transfers++
		}
	}
	want := outs + outs/S
	if transfers != want {
		t.Fatalf("%d transfers for %d pageouts, want %d (1+1/S)", transfers, outs, want)
	}
}

func TestRepageoutMarksInactiveAndReclaims(t *testing.T) {
	l := mustLog(t, 2)
	// Fill group 1 with pages 0,1 (seals).
	for i := 0; i < 2; i++ {
		if _, _, _, err := l.Append(page.ID(i), mkPage(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Re-pageout page 0: old version inactive, but group 1 still has
	// page 1 active -> no reclaim yet.
	_, _, recs, err := l.Append(0, mkPage(100))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("premature reclaim: %+v", recs)
	}
	// Re-pageout page 1: group 1 now fully inactive -> reclaimed. This
	// append also seals group 2.
	_, sealed, recs, err := l.Append(1, mkPage(101))
	if err != nil {
		t.Fatal(err)
	}
	if sealed == nil {
		t.Fatal("group 2 should have sealed")
	}
	if len(recs) != 1 {
		t.Fatalf("got %d reclaims, want 1", len(recs))
	}
	// Reclaim must list 2 data slots + 1 parity slot.
	if len(recs[0].Slots) != 3 {
		t.Fatalf("reclaim lists %d slots, want 3", len(recs[0].Slots))
	}
	paritySlots := 0
	for _, s := range recs[0].Slots {
		if s.Column == ParityColumn {
			paritySlots++
		}
	}
	if paritySlots != 1 {
		t.Fatalf("reclaim has %d parity slots, want 1", paritySlots)
	}
}

func TestLookupTracksLiveVersion(t *testing.T) {
	l := mustLog(t, 3)
	pl1, _, _, _ := l.Append(7, mkPage(1))
	ck, ok := l.Lookup(7)
	if !ok || ck.Key != pl1.Key || ck.Column != pl1.Column {
		t.Fatalf("Lookup = %+v, want %+v", ck, pl1)
	}
	pl2, _, _, _ := l.Append(7, mkPage(2))
	ck, ok = l.Lookup(7)
	if !ok || ck.Key != pl2.Key {
		t.Fatal("Lookup did not follow re-pageout")
	}
	if _, ok := l.Lookup(99); ok {
		t.Fatal("Lookup found never-appended page")
	}
}

func TestFreeDropsPage(t *testing.T) {
	l := mustLog(t, 2)
	l.Append(0, mkPage(0))
	l.Append(1, mkPage(1)) // seals group
	recs := l.Free(0)
	if len(recs) != 0 {
		t.Fatal("reclaim before group empty")
	}
	recs = l.Free(1)
	if len(recs) != 1 {
		t.Fatal("no reclaim after freeing whole group")
	}
	if _, ok := l.Lookup(0); ok {
		t.Fatal("freed page still live")
	}
	if l.Free(0) != nil {
		t.Fatal("double free returned reclaims")
	}
}

func TestVersionsStoredCountsOverflow(t *testing.T) {
	l := mustLog(t, 2)
	l.Append(0, mkPage(0))
	l.Append(1, mkPage(1)) // group 1 sealed
	l.Append(0, mkPage(2)) // old v of page 0 inactive, still stored
	data, par := l.VersionsStored()
	if data != 3 || par != 1 {
		t.Fatalf("VersionsStored = %d,%d; want 3 data, 1 parity", data, par)
	}
}

// memCluster simulates S data servers plus a parity server as maps,
// exercising the full placement/seal/reclaim/recovery protocol the
// pager would run.
type memCluster struct {
	l       *Log
	cols    []map[uint64]page.Buf // data columns
	parity  map[uint64]page.Buf
	t       *testing.T
	content map[page.ID]page.Buf // ground truth of live pages
}

func newMemCluster(t *testing.T, s int) *memCluster {
	mc := &memCluster{
		l:       mustLog(t, s),
		parity:  make(map[uint64]page.Buf),
		t:       t,
		content: make(map[page.ID]page.Buf),
	}
	for i := 0; i < s; i++ {
		mc.cols = append(mc.cols, make(map[uint64]page.Buf))
	}
	return mc
}

func (mc *memCluster) store(ck ColumnKey, data page.Buf) {
	if ck.Column == ParityColumn {
		mc.parity[ck.Key] = data.Clone()
	} else {
		mc.cols[ck.Column][ck.Key] = data.Clone()
	}
}

func (mc *memCluster) fetch(ck ColumnKey) page.Buf {
	var m map[uint64]page.Buf
	if ck.Column == ParityColumn {
		m = mc.parity
	} else {
		m = mc.cols[ck.Column]
	}
	p, ok := m[ck.Key]
	if !ok {
		mc.t.Fatalf("fetch: missing slot %+v", ck)
	}
	return p
}

func (mc *memCluster) pageout(id page.ID, data page.Buf) {
	pl, sealed, recs, err := mc.l.Append(id, data)
	if err != nil {
		mc.t.Fatal(err)
	}
	mc.store(ColumnKey{pl.Column, pl.Key}, data)
	if sealed != nil {
		mc.store(ColumnKey{ParityColumn, sealed.Key}, sealed.Data)
	}
	for _, r := range recs {
		for _, s := range r.Slots {
			if s.Column == ParityColumn {
				delete(mc.parity, s.Key)
			} else {
				delete(mc.cols[s.Column], s.Key)
			}
		}
	}
	mc.content[id] = data.Clone()
}

// crashAndRecover wipes column col, runs the recovery protocol, and
// verifies every live page is still reachable with correct contents.
func (mc *memCluster) crashAndRecover(col int) {
	plan, err := mc.l.PlanRecovery(col)
	if err != nil {
		mc.t.Fatal(err)
	}
	// Reconstruct lost pages from survivors (the dead column's map is
	// conceptually gone; survivors never reference it).
	rebuilt := make(map[page.ID]page.Buf)
	for _, lp := range plan.Lost {
		var pages []page.Buf
		for _, ck := range lp.Survivors {
			if ck.Column == col {
				mc.t.Fatalf("recovery plan references crashed column: %+v", ck)
			}
			pages = append(pages, mc.fetch(ck))
		}
		data, err := mc.l.Reconstruct(lp, pages)
		if err != nil {
			mc.t.Fatal(err)
		}
		rebuilt[lp.Page] = data
	}
	// Read re-home pages from healthy columns before mutating the log.
	rehome := make(map[page.ID]page.Buf)
	for _, id := range plan.Rehome {
		ck, ok := mc.l.Lookup(id)
		if !ok {
			mc.t.Fatalf("rehome page %v not live", id)
		}
		if ck.Column == col {
			mc.t.Fatalf("rehome page %v lives on crashed column", id)
		}
		rehome[id] = mc.fetch(ck)
	}
	mc.cols[col] = make(map[uint64]page.Buf) // the crash
	mc.l.AbandonOpenGroup()
	// Re-append: reconstructed pages and re-homed pages. Note the log
	// still has width S; in the real pager a replacement server (or a
	// shrunken column set via a fresh log) takes over the column.
	for id, data := range rebuilt {
		mc.pageout(id, data)
	}
	for id, data := range rehome {
		mc.pageout(id, data)
	}
	mc.verify(col)
}

// verify checks every live page against ground truth, fetching via
// the log's lookup; pages on skipCol would have been lost.
func (mc *memCluster) verify(skipCol int) {
	for id, want := range mc.content {
		ck, ok := mc.l.Lookup(id)
		if !ok {
			mc.t.Fatalf("page %v lost from log", id)
		}
		got := mc.fetch(ck)
		if got.Checksum() != want.Checksum() {
			mc.t.Fatalf("page %v content mismatch after recovery", id)
		}
	}
	_ = skipCol
}

func TestClusterRecoveryAfterSealedGroups(t *testing.T) {
	mc := newMemCluster(t, 4)
	for i := 0; i < 16; i++ { // 4 sealed groups
		mc.pageout(page.ID(i), mkPage(uint64(i)))
	}
	mc.crashAndRecover(2)
}

func TestClusterRecoveryWithOpenGroup(t *testing.T) {
	mc := newMemCluster(t, 4)
	for i := 0; i < 10; i++ { // 2 sealed groups + open group of 2
		mc.pageout(page.ID(i), mkPage(uint64(i)))
	}
	mc.crashAndRecover(0) // column 0 holds an open-group member
}

func TestClusterRecoveryWithInactiveVersions(t *testing.T) {
	mc := newMemCluster(t, 3)
	for i := 0; i < 9; i++ {
		mc.pageout(page.ID(i%4), mkPage(uint64(i*7)))
	}
	for col := 0; col < 3; col++ {
		mc := newMemCluster(t, 3)
		for i := 0; i < 9; i++ {
			mc.pageout(page.ID(i%4), mkPage(uint64(i*7+col)))
		}
		mc.crashAndRecover(col)
	}
}

func TestClusterRandomizedRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		s := 2 + rng.Intn(4)
		mc := newMemCluster(t, s)
		nPages := 1 + rng.Intn(12)
		ops := 5 + rng.Intn(60)
		for i := 0; i < ops; i++ {
			mc.pageout(page.ID(rng.Intn(nPages)), mkPage(rng.Uint64()))
		}
		mc.crashAndRecover(rng.Intn(s))
		// Keep running after recovery.
		for i := 0; i < 10; i++ {
			mc.pageout(page.ID(rng.Intn(nPages)), mkPage(rng.Uint64()))
		}
		mc.verify(-1)
	}
}

func TestParityServerLoss(t *testing.T) {
	mc := newMemCluster(t, 3)
	for i := 0; i < 7; i++ {
		mc.pageout(page.ID(i), mkPage(uint64(i)))
	}
	ids := mc.l.PlanParityLoss()
	// Sealed groups hold pages 0..5; page 6 is in the open group.
	if len(ids) != 6 {
		t.Fatalf("PlanParityLoss lists %d pages, want 6", len(ids))
	}
	mc.parity = make(map[uint64]page.Buf) // the crash
	for _, id := range ids {
		ck, _ := mc.l.Lookup(id)
		data := mc.fetch(ck)
		mc.pageout(id, data)
	}
	mc.verify(-1)
}

func TestAbandonOpenGroupResetsBuffer(t *testing.T) {
	l := mustLog(t, 4)
	l.Append(0, mkPage(1))
	l.Append(1, mkPage(2))
	if rec := l.AbandonOpenGroup(); rec != nil {
		t.Fatal("abandon reclaimed group with active members")
	}
	// Next append starts a fresh group at column 0 with zeroed buffer.
	pl, _, _, _ := l.Append(2, mkPage(3))
	if pl.Column != 0 {
		t.Fatalf("post-abandon append on column %d, want 0", pl.Column)
	}
	// Fill the fresh group; parity must be XOR of only its own members.
	pages := []page.Buf{mkPage(3)}
	var sealed *SealedParity
	for i := 3; i < 6; i++ {
		p := mkPage(uint64(i + 10))
		pages = append(pages, p)
		_, s, _, _ := l.Append(page.ID(i), p)
		sealed = s
	}
	want := page.NewBuf()
	for _, p := range pages {
		page.XORInto(want, p)
	}
	if sealed == nil || sealed.Data.Checksum() != want.Checksum() {
		t.Fatal("buffer leaked across AbandonOpenGroup")
	}
	// Re-appending the abandoned group's members reclaims it (2 data
	// slots, no parity slot).
	var recs []Reclaim
	_, _, r1, _ := l.Append(0, mkPage(20))
	recs = append(recs, r1...)
	_, _, r2, _ := l.Append(1, mkPage(21))
	recs = append(recs, r2...)
	if len(recs) != 1 || len(recs[0].Slots) != 2 {
		t.Fatalf("abandoned group reclaim = %+v, want 1 reclaim with 2 slots", recs)
	}
}

func TestAbandonNoOpenGroup(t *testing.T) {
	l := mustLog(t, 2)
	if l.AbandonOpenGroup() != nil {
		t.Fatal("abandon with no open group returned reclaim")
	}
	l.Append(0, mkPage(1))
	l.Append(1, mkPage(2)) // seals; no open group remains
	if l.AbandonOpenGroup() != nil {
		t.Fatal("abandon after seal returned reclaim")
	}
}

func TestGCCandidatesPrefersEmptiestGroups(t *testing.T) {
	l := mustLog(t, 2)
	// Group 1: pages 0,1. Group 2: pages 2,3. Group 3: pages 0,4
	// (re-out of 0 leaves group 1 half-empty).
	l.Append(0, mkPage(0))
	l.Append(1, mkPage(1))
	l.Append(2, mkPage(2))
	l.Append(3, mkPage(3))
	l.Append(0, mkPage(4))
	l.Append(4, mkPage(5))
	// Group 1 has 1 active member (page 1); groups 2,3 are full.
	ids := l.GCCandidates(1)
	if len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("GCCandidates = %v, want [1]", ids)
	}
	// Full groups must never be GC candidates (rewriting them frees
	// nothing).
	ids = l.GCCandidates(1000)
	for _, id := range ids {
		if id != 1 {
			t.Fatalf("GC wants to rewrite page %v from a full group", id)
		}
	}
}

func TestGCDrainsFragmentation(t *testing.T) {
	l := mustLog(t, 2)
	// Create heavy fragmentation: 8 pages, then re-pageout pages
	// 0,2,4,6, leaving half-empty groups.
	for i := 0; i < 8; i++ {
		l.Append(page.ID(i), mkPage(uint64(i)))
	}
	for _, i := range []page.ID{0, 2, 4, 6} {
		l.Append(i, mkPage(uint64(i)+100))
	}
	before, _ := l.VersionsStored()
	ids := l.GCCandidates(100)
	for _, id := range ids {
		l.Append(id, mkPage(uint64(id)+200)) // rewrite with current data
	}
	// Pad the open group so the final group seals and dead groups drain.
	l.Append(100, mkPage(1000))
	l.Append(101, mkPage(1001))
	after, _ := l.VersionsStored()
	if after >= before {
		t.Fatalf("GC did not shrink stored versions: %d -> %d", before, after)
	}
	live := len(l.Pages())
	if live != 10 {
		t.Fatalf("live pages = %d, want 10", live)
	}
}

func TestPlanRecoveryBadColumn(t *testing.T) {
	l := mustLog(t, 2)
	if _, err := l.PlanRecovery(2); err == nil {
		t.Fatal("PlanRecovery accepted out-of-range column")
	}
	if _, err := l.PlanRecovery(-1); err == nil {
		t.Fatal("PlanRecovery accepted negative column")
	}
}

func TestReconstructArityCheck(t *testing.T) {
	l := mustLog(t, 2)
	lp := LostPage{Survivors: []ColumnKey{{0, 1}, {ParityColumn, 2}}}
	if _, err := l.Reconstruct(lp, []page.Buf{mkPage(1)}); err == nil {
		t.Fatal("Reconstruct accepted wrong survivor count")
	}
	if _, err := l.Reconstruct(lp, []page.Buf{mkPage(1), make(page.Buf, 3)}); err == nil {
		t.Fatal("Reconstruct accepted short page")
	}
}

func BenchmarkAppend(b *testing.B) {
	l, _ := NewLog(4)
	data := mkPage(1)
	b.SetBytes(page.Size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := l.Append(page.ID(i%256), data); err != nil {
			b.Fatal(err)
		}
	}
}
