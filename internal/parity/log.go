// Package parity implements the client-side bookkeeping for the
// paper's novel parity-logging reliability policy (§2.2), plus the
// XOR reconstruction helpers shared with the basic parity policy.
//
// The key idea of parity logging: a page is not bound to a fixed
// server or parity group. Every pageout goes to a fresh slot, chosen
// round-robin across S data-server columns, and is XORed into a
// client-resident parity buffer. After S pageouts the buffer is
// shipped to the parity server and the group is sealed: cost
// 1 + 1/S transfers per pageout instead of basic parity's 2.
//
// When a page is paged out again, its previous version is only
// *marked inactive* in its old group — deleting it would force a
// parity update (footnote 3 of the paper). Inactive versions occupy
// server memory ("overflow"); when every member of a group is
// inactive the group's server slots and parity slot are reclaimed.
// If fragmentation eats the overflow, garbage collection rewrites the
// active members of the emptiest groups into fresh groups.
//
// Log is pure bookkeeping: it decides placements, parity seals,
// reclamations, recovery and GC plans, while the pager performs the
// actual transfers. That separation makes the algorithm exhaustively
// testable without a network.
package parity

import (
	"errors"
	"fmt"

	"rmp/internal/page"
)

// NoKey marks "no storage key" (e.g. parity of a never-sealed group).
const NoKey = ^uint64(0)

// Placement tells the pager where the just-appended page version goes.
type Placement struct {
	Column int    // data-server column 0..S-1
	Key    uint64 // storage key on that server
	Group  uint64 // parity group id
	Index  int    // member index within the group (== Column)
}

// SealedParity tells the pager to ship a completed parity page.
type SealedParity struct {
	Group uint64
	Key   uint64   // storage key on the parity server
	Data  page.Buf // the parity page contents
}

// ColumnKey names a stored page version: column -1 is the parity
// server, 0..S-1 the data servers.
type ColumnKey struct {
	Column int
	Key    uint64
}

// ParityColumn is the pseudo-column of the parity server.
const ParityColumn = -1

// Reclaim lists server slots whose contents may be discarded because
// their parity group died (all members inactive).
type Reclaim struct {
	Group uint64
	Slots []ColumnKey // data slots and, if the group was sealed, the parity slot
}

// member is one page version inside a group.
type member struct {
	page   page.ID
	key    uint64
	active bool
}

// group is a parity group.
type group struct {
	id      uint64
	members []member // index == column
	parity  uint64   // parity key, NoKey until sealed
	sealed  bool
	// abandoned marks an open group closed by crash recovery; like a
	// sealed group it is reclaimed when its last member goes inactive,
	// but it has no parity slot to free.
	abandoned bool
	active    int // count of active members
}

// Log is the parity-logging state machine. Not safe for concurrent
// use; the pager serializes pageouts through it.
type Log struct {
	s       int // group width == number of data-server columns
	nextKey uint64
	// keyFunc, when set, supplies storage keys instead of the internal
	// counter. The pager injects its global allocator so that keys
	// stay unique across log rebuilds (a rebuilt log must never reuse
	// keys that are still being freed from the previous layout).
	keyFunc func() uint64

	cur    *group
	buffer page.Buf // running XOR of the open group's members

	groups map[uint64]*group
	nextID uint64

	// live maps a logical page to its current version's location.
	live map[page.ID]liveRef

	stats Stats
}

type liveRef struct {
	group uint64
	index int
}

// Stats counts Log activity.
type Stats struct {
	Appends     uint64
	Seals       uint64
	Reclaims    uint64
	Invalidates uint64
}

// NewLog creates a parity log spanning s data-server columns.
func NewLog(s int) (*Log, error) {
	if s < 1 {
		return nil, errors.New("parity: need at least one data column")
	}
	return &Log{
		s:      s,
		buffer: page.NewBuf(),
		groups: make(map[uint64]*group),
		live:   make(map[page.ID]liveRef),
	}, nil
}

// Width returns the group width S.
func (l *Log) Width() int { return l.s }

// Stats returns a snapshot of activity counters.
func (l *Log) Stats() Stats { return l.stats }

// SetKeySource installs an external storage-key allocator. Must be
// called before the first Append.
func (l *Log) SetKeySource(f func() uint64) { l.keyFunc = f }

// allocKey issues a fresh storage key.
func (l *Log) allocKey() uint64 {
	if l.keyFunc != nil {
		return l.keyFunc()
	}
	k := l.nextKey
	l.nextKey++
	return k
}

// openGroup starts a new group if none is open.
func (l *Log) openGroup() {
	if l.cur != nil {
		return
	}
	l.nextID++
	l.cur = &group{id: l.nextID, parity: NoKey}
	l.groups[l.cur.id] = l.cur
	// buffer must already be zero: it is reset at seal time.
}

// Append records the pageout of p with contents data.
//
// It returns the placement for the new version, a parity seal if this
// append completed a group, and any reclamations triggered by the
// previous version of p going inactive. The caller must (1) transfer
// data to the placement's column, (2) if sealed, transfer the parity
// page to the parity server, and (3) free the reclaimed slots —
// in that order.
func (l *Log) Append(p page.ID, data page.Buf) (Placement, *SealedParity, []Reclaim, error) {
	if err := data.CheckLen(); err != nil {
		return Placement{}, nil, nil, err
	}
	var reclaims []Reclaim

	// Mark the previous version inactive (footnote 3: don't delete —
	// that would require a parity update).
	if ref, ok := l.live[p]; ok {
		if r := l.deactivate(ref); r != nil {
			reclaims = append(reclaims, *r)
		}
	}

	l.openGroup()
	g := l.cur
	col := len(g.members)
	key := l.allocKey()
	g.members = append(g.members, member{page: p, key: key, active: true})
	g.active++
	l.live[p] = liveRef{group: g.id, index: col}
	page.XORInto(l.buffer, data)
	l.stats.Appends++

	pl := Placement{Column: col, Key: key, Group: g.id, Index: col}

	var seal *SealedParity
	if len(g.members) == l.s {
		seal = l.seal()
		// Sealing a group whose members all died mid-fill reclaims it
		// immediately; that cannot happen here because the member just
		// appended is active, but deactivate() handles the open group
		// for completeness.
	}
	return pl, seal, reclaims, nil
}

// seal closes the open group and returns the parity transfer order.
func (l *Log) seal() *SealedParity {
	g := l.cur
	g.parity = l.allocKey()
	g.sealed = true
	l.stats.Seals++
	out := &SealedParity{Group: g.id, Key: g.parity, Data: l.buffer}
	l.buffer = page.NewBuf()
	l.cur = nil
	return out
}

// deactivate marks the member at ref inactive and reclaims its group
// if that was the last active member of a sealed group.
func (l *Log) deactivate(ref liveRef) *Reclaim {
	g := l.groups[ref.group]
	m := &g.members[ref.index]
	if !m.active {
		return nil
	}
	m.active = false
	g.active--
	l.stats.Invalidates++
	if g.active == 0 && (g.sealed || g.abandoned) {
		return l.reclaim(g)
	}
	return nil
}

// reclaim removes a dead group and lists its slots for freeing.
func (l *Log) reclaim(g *group) *Reclaim {
	r := &Reclaim{Group: g.id}
	for col, m := range g.members {
		r.Slots = append(r.Slots, ColumnKey{Column: col, Key: m.key})
	}
	if g.parity != NoKey {
		r.Slots = append(r.Slots, ColumnKey{Column: ParityColumn, Key: g.parity})
	}
	delete(l.groups, g.id)
	l.stats.Reclaims++
	return r
}

// Lookup returns where the live version of p is stored.
func (l *Log) Lookup(p page.ID) (ColumnKey, bool) {
	ref, ok := l.live[p]
	if !ok {
		return ColumnKey{}, false
	}
	g := l.groups[ref.group]
	return ColumnKey{Column: ref.index, Key: g.members[ref.index].key}, true
}

// Free drops the logical page p entirely (its swap space was
// released), deactivating its live version.
func (l *Log) Free(p page.ID) []Reclaim {
	ref, ok := l.live[p]
	if !ok {
		return nil
	}
	delete(l.live, p)
	if r := l.deactivate(ref); r != nil {
		return []Reclaim{*r}
	}
	return nil
}

// Pages returns the logical pages with a live version in the log.
func (l *Log) Pages() []page.ID {
	out := make([]page.ID, 0, len(l.live))
	for p := range l.live {
		out = append(out, p)
	}
	return out
}

// VersionsStored returns the total number of page versions (active +
// inactive) plus sealed parity pages currently occupying server
// memory. This is what the 10 % overflow pays for.
func (l *Log) VersionsStored() (data, parityPages int) {
	for _, g := range l.groups {
		data += len(g.members)
		if g.sealed {
			parityPages++
		}
	}
	return data, parityPages
}

// AllSlots enumerates every server slot the log currently occupies
// (all page versions and sealed parity pages). Recovery uses it to
// free the old layout after rebuilding into a fresh log.
func (l *Log) AllSlots() []ColumnKey {
	var out []ColumnKey
	for _, g := range l.groups {
		for col, m := range g.members {
			out = append(out, ColumnKey{Column: col, Key: m.key})
		}
		if g.parity != NoKey {
			out = append(out, ColumnKey{Column: ParityColumn, Key: g.parity})
		}
	}
	return out
}

// --- crash recovery ---------------------------------------------------

// LostPage describes one active page version to reconstruct after the
// crash of a data column.
type LostPage struct {
	Page page.ID
	// Survivors are the group's other member slots plus the parity
	// slot; XORing all of their contents yields the lost page. For the
	// open (unsealed) group Survivors excludes parity and UseBuffer is
	// set: the client's in-memory parity buffer substitutes for it.
	Survivors []ColumnKey
	UseBuffer bool
}

// RecoveryPlan lists what must be rebuilt after column col crashed,
// and which still-live pages merely need re-homing (their version
// survives on healthy columns but their group lost a member, so the
// group no longer tolerates another failure).
type RecoveryPlan struct {
	Lost []LostPage
	// Rehome lists live pages on healthy columns whose groups lost a
	// (possibly inactive) member to the crash; re-appending them into
	// fresh groups restores single-failure tolerance and lets the
	// damaged groups be reclaimed.
	Rehome []page.ID
}

// PlanRecovery computes the reconstruction plan for a crash of data
// column col. The parity column is handled separately: losing the
// parity server loses only redundancy, so the plan just re-homes
// every page of every sealed group (PlanParityLoss).
func (l *Log) PlanRecovery(col int) (RecoveryPlan, error) {
	if col < 0 || col >= l.s {
		return RecoveryPlan{}, fmt.Errorf("parity: column %d out of range", col)
	}
	var plan RecoveryPlan
	for _, g := range l.groups {
		if col >= len(g.members) {
			continue // group never reached that column
		}
		m := g.members[col]
		damaged := false
		if m.active {
			lp := LostPage{Page: m.page, UseBuffer: !g.sealed}
			for c, other := range g.members {
				if c == col {
					continue
				}
				lp.Survivors = append(lp.Survivors, ColumnKey{Column: c, Key: other.key})
			}
			if g.sealed {
				lp.Survivors = append(lp.Survivors, ColumnKey{Column: ParityColumn, Key: g.parity})
			}
			plan.Lost = append(plan.Lost, lp)
			damaged = true
		} else {
			// Inactive member lost: data is already superseded, but
			// the group's parity no longer covers a second failure.
			damaged = true
		}
		if damaged {
			for c, other := range g.members {
				if c != col && other.active {
					plan.Rehome = append(plan.Rehome, other.page)
				}
			}
		}
	}
	return plan, nil
}

// Reconstruct XORs the survivor pages (and, for an open group, the
// client buffer) into the lost page contents. pages must be in the
// same order as lp.Survivors.
func (l *Log) Reconstruct(lp LostPage, pages []page.Buf) (page.Buf, error) {
	if len(pages) != len(lp.Survivors) {
		return nil, fmt.Errorf("parity: got %d survivor pages, want %d", len(pages), len(lp.Survivors))
	}
	out := page.NewBuf()
	if lp.UseBuffer {
		copy(out, l.buffer)
	}
	for _, p := range pages {
		if err := p.CheckLen(); err != nil {
			return nil, err
		}
		page.XORInto(out, p)
	}
	return out, nil
}

// AbandonOpenGroup closes the open group without sealing it, resetting
// the parity buffer. Crash recovery calls this after reconstructing
// (the reconstruction of open-group members needs the buffer intact,
// so the required order is: PlanRecovery, fetch survivors,
// Reconstruct, AbandonOpenGroup, then re-append). If the open group
// already has no active members its slots are reclaimed immediately;
// otherwise it is reclaimed when its last member is re-appended.
func (l *Log) AbandonOpenGroup() *Reclaim {
	g := l.cur
	if g == nil {
		return nil
	}
	g.abandoned = true
	l.cur = nil
	l.buffer = page.NewBuf()
	if g.active == 0 {
		return l.reclaim(g)
	}
	return nil
}

// PlanParityLoss returns the live pages of every sealed group. Losing
// the parity server loses no data, only redundancy: re-appending these
// pages rebuilds fresh groups whose parity lands on a healthy server.
// The open group is unaffected (its parity still lives in the client
// buffer).
func (l *Log) PlanParityLoss() []page.ID {
	var out []page.ID
	for _, g := range l.groups {
		if !g.sealed {
			continue
		}
		for _, m := range g.members {
			if m.active {
				out = append(out, m.page)
			}
		}
	}
	return out
}

// --- garbage collection ------------------------------------------------

// GCCandidates returns the live pages of the sealed groups with the
// lowest active fraction, covering at least wantSlots reclaimable
// slots. Re-appending those pages (normal pageouts of their current
// contents) drains the chosen groups to zero active members, at which
// point Append returns their Reclaims naturally. This implements the
// paper's "combining their active pages to new ones".
func (l *Log) GCCandidates(wantSlots int) []page.ID {
	type cand struct {
		g        *group
		occupied int
	}
	var cands []cand
	for _, g := range l.groups {
		if !g.sealed || g.active == len(g.members) {
			continue // full groups yield nothing
		}
		cands = append(cands, cand{g, len(g.members) + 1}) // +1 parity slot
	}
	// Emptiest groups first: most reclaimable slots per page rewritten.
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && cands[j].g.active < cands[j-1].g.active; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	var out []page.ID
	covered := 0
	for _, c := range cands {
		if covered >= wantSlots {
			break
		}
		for _, m := range c.g.members {
			if m.active {
				out = append(out, m.page)
			}
		}
		covered += c.occupied
	}
	return out
}
