package apps

import (
	"math"

	"rmp/internal/vm"
)

// Mvec is the paper's MVEC application: y = A*x on an n x n matrix
// (paper: n = 2100, about 35 MB). The matrix is generated row by row
// and each row is consumed immediately for the dot product, so rows
// are dirty-evicted and never touched again: MVEC "performs many
// pageouts and almost no pageins" (paper §4.1) — which is exactly why
// MIRRORING (2 transfers per pageout) is the one policy that loses to
// the disk on it.
//
// Layout: A at offset 0 (n*n floats), x after A, y after x.
type Mvec struct {
	n int
}

// NewMvec creates an MVEC instance with an n x n matrix.
func NewMvec(n int) *Mvec { return &Mvec{n: n} }

func (m *Mvec) Name() string { return "MVEC" }

func (m *Mvec) Bytes() int64 {
	n := int64(m.n)
	return (n*n + 2*n) * 8
}

func (m *Mvec) aOff() int64 { return 0 }
func (m *Mvec) xOff() int64 { return int64(m.n) * int64(m.n) * 8 }
func (m *Mvec) yOff() int64 { return m.xOff() + int64(m.n)*8 }

// Run generates x, then generates each row of A and immediately
// accumulates y[i]; the checksum folds y.
func (m *Mvec) Run(s *vm.Space) (uint64, error) {
	n := int64(m.n)
	rng := newXorshift(uint64(n) + 1)
	for j := int64(0); j < n; j++ {
		if err := s.SetFloat64(m.xOff()/8+j, rng.float01()); err != nil {
			return 0, err
		}
	}
	for i := int64(0); i < n; i++ {
		var acc float64
		for j := int64(0); j < n; j++ {
			v := rng.float01()
			if err := s.SetFloat64(i*n+j, v); err != nil {
				return 0, err
			}
			xj, err := s.Float64(m.xOff()/8 + j)
			if err != nil {
				return 0, err
			}
			acc += v * xj
		}
		if err := s.SetFloat64(m.yOff()/8+i, acc); err != nil {
			return 0, err
		}
	}
	h := uint64(14695981039346656037)
	for i := int64(0); i < n; i++ {
		v, err := s.Float64(m.yOff()/8 + i)
		if err != nil {
			return 0, err
		}
		h = mix(h, math.Float64bits(v))
	}
	return h, nil
}

// Trace emits the page-reference stream of Run.
func (m *Mvec) Trace(emit EmitFunc) {
	n := int64(m.n)
	emitRange(emit, m.xOff(), n*8, true) // generate x
	for i := int64(0); i < n; i++ {
		// Row generation + dot product: writes to row i interleaved
		// with reads of x (x is small and stays hot).
		for j := int64(0); j < n; j += traceChunk {
			end := j + traceChunk
			if end > n {
				end = n
			}
			emitRange(emit, (i*n+j)*8, (end-j)*8, true)
			emitRange(emit, m.xOff()+j*8, (end-j)*8, false)
		}
		emit(pageOfByte(m.yOff()+i*8), true)
	}
	emitRange(emit, m.yOff(), n*8, false) // checksum pass
}
