package apps

import (
	"rmp/internal/vm"
)

// Filter is the paper's FILTER application: "a two pass separable
// image sharpening filter described in [20]" on a 12 MB image. The
// separable kernel runs horizontally over the source into a temporary
// plane, then vertically over the temporary plane back into the
// source plane.
//
// Layout: src plane [0, W*H), tmp plane [W*H, 2*W*H); one byte per
// pixel, W bytes per row. Total footprint 2x the image — the paper's
// 12 MB image needs 24 MB, which is why FILTER pages on a 32 MB
// workstation.
//
// The paper cites Newman, "Organizing Arrays for Paged Memory
// Systems" [20], whose point is precisely that naive column-order
// passes thrash; the vertical pass here therefore streams rows with a
// three-row sliding window, so both passes are sequential sweeps.
// FILTER's paging profile is a handful of full-image read and write
// sweeps.
type Filter struct {
	w, h int // bytes per row, rows
}

// NewFilter creates a FILTER over a w x h byte image.
func NewFilter(w, h int) *Filter {
	if w < 8 {
		w = 8
	}
	if h < 8 {
		h = 8
	}
	return &Filter{w: w, h: h}
}

func (f *Filter) Name() string { return "FILTER" }

func (f *Filter) Bytes() int64 { return 2 * int64(f.w) * int64(f.h) }

func (f *Filter) srcOff(r int64) int64 { return r * int64(f.w) }
func (f *Filter) tmpOff(r int64) int64 { return int64(f.w)*int64(f.h) + r*int64(f.w) }

// sharpen3 applies the 1-D sharpening kernel (-1, 3, -1) across a line.
func sharpen3(dst, src []byte) {
	n := len(src)
	for i := 0; i < n; i++ {
		l, r := i-1, i+1
		if l < 0 {
			l = 0
		}
		if r >= n {
			r = n - 1
		}
		v := 3*int(src[i]) - int(src[l]) - int(src[r])
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		dst[i] = byte(v)
	}
}

// sharpenV applies the same kernel vertically: dst = 3*mid - up - down.
func sharpenV(dst, up, mid, down []byte) {
	for i := range dst {
		v := 3*int(mid[i]) - int(up[i]) - int(down[i])
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		dst[i] = byte(v)
	}
}

// Run generates a deterministic image, filters it in two passes and
// checksums the result.
func (f *Filter) Run(s *vm.Space) (uint64, error) {
	w, h := int64(f.w), int64(f.h)
	rng := newXorshift(uint64(w*h) + 5)
	row := make([]byte, w)
	out := make([]byte, w)

	// Generate the source image row by row.
	for r := int64(0); r < h; r++ {
		for i := range row {
			row[i] = byte(rng.next())
		}
		if err := s.Write(f.srcOff(r), row); err != nil {
			return 0, err
		}
	}

	// Pass 1: horizontal sharpen, src -> tmp.
	for r := int64(0); r < h; r++ {
		if err := s.Read(f.srcOff(r), row); err != nil {
			return 0, err
		}
		sharpen3(out, row)
		if err := s.Write(f.tmpOff(r), out); err != nil {
			return 0, err
		}
	}

	// Pass 2: vertical sharpen, tmp -> src, with a three-row window
	// so the plane is streamed once.
	up := make([]byte, w)
	mid := make([]byte, w)
	down := make([]byte, w)
	if err := s.Read(f.tmpOff(0), mid); err != nil {
		return 0, err
	}
	copy(up, mid)
	for r := int64(0); r < h; r++ {
		if r+1 < h {
			if err := s.Read(f.tmpOff(r+1), down); err != nil {
				return 0, err
			}
		} else {
			copy(down, mid)
		}
		sharpenV(out, up, mid, down)
		if err := s.Write(f.srcOff(r), out); err != nil {
			return 0, err
		}
		up, mid, down = mid, down, up
	}

	// Checksum the filtered image.
	h64 := uint64(14695981039346656037)
	for r := int64(0); r < h; r++ {
		if err := s.Read(f.srcOff(r), row); err != nil {
			return 0, err
		}
		for _, b := range row {
			h64 = mix(h64, uint64(b))
		}
	}
	return h64, nil
}

// Trace emits the page-reference stream of Run.
func (f *Filter) Trace(emit EmitFunc) {
	w, h := int64(f.w), int64(f.h)

	emitRange(emit, 0, w*h, true) // image generation

	// Pass 1: read src row, write tmp row, interleaved.
	for r := int64(0); r < h; r++ {
		emitRange(emit, f.srcOff(r), w, false)
		emitRange(emit, f.tmpOff(r), w, true)
	}

	// Pass 2: read tmp row r+1, write src row r (rows r-1, r are held
	// in local buffers).
	emitRange(emit, f.tmpOff(0), w, false)
	for r := int64(0); r < h; r++ {
		if r+1 < h {
			emitRange(emit, f.tmpOff(r+1), w, false)
		}
		emitRange(emit, f.srcOff(r), w, true)
	}

	emitRange(emit, 0, w*h, false) // checksum sweep
}
