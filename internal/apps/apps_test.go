package apps

import (
	"testing"

	"rmp/internal/blockdev"
	"rmp/internal/page"
	"rmp/internal/vm"
)

// smallAll returns test-sized instances of all six workloads.
func smallAll() []Workload {
	return []Workload{
		NewGauss(96),         // 72 KB
		NewQsort(40_000),     // 312 KB
		NewFFT(1 << 13),      // 128 KB
		NewMvec(128),         // 130 KB
		NewFilter(1024, 256), // 512 KB
		NewCC(2),             // ~3.9 MB
	}
}

// runWorkload executes w over a memory-backed space with the given
// resident fraction and returns (checksum, stats).
func runWorkload(t *testing.T, w Workload, residentFrac float64) (uint64, vm.Stats) {
	t.Helper()
	dev := blockdev.NewMemDevice()
	res := int64(float64(w.Bytes()) * residentFrac)
	s, err := vm.New(w.Bytes(), res, dev)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := w.Run(s)
	if err != nil {
		t.Fatalf("%s: %v", w.Name(), err)
	}
	return sum, s.Stats()
}

// TestRunDeterministic: same workload, same checksum, paging or not.
func TestRunDeterministic(t *testing.T) {
	for _, w := range smallAll() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			full, _ := runWorkload(t, w, 2.0)   // everything resident
			paged, st := runWorkload(t, w, 0.3) // heavy paging
			if full != paged {
				t.Fatalf("%s: checksum differs when paging (%x vs %x)", w.Name(), full, paged)
			}
			if st.PageOuts == 0 {
				t.Fatalf("%s: no paging at 0.3 residency — test not exercising the pager", w.Name())
			}
		})
	}
}

// TestTraceMatchesRun: replaying the page trace through the LRU
// produces fault counts close to the real execution's. QSORT's trace
// approximates data-dependent splits, so it gets a looser tolerance.
func TestTraceMatchesRun(t *testing.T) {
	for _, w := range smallAll() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			residentPages := int(w.Bytes() / page.Size / 3)
			if residentPages < 2 {
				residentPages = 2
			}
			_, st := runWorkload(t, w, 1.0/3.0)

			rp := vm.NewReplayer(residentPages, nil)
			w.Trace(func(pg int64, write bool) { rp.Ref(pg, write) })
			ins, outs := rp.Counts()

			tol := 0.15
			if w.Name() == "QSORT" {
				tol = 0.45 // split points are data-dependent in Run
			}
			checkClose(t, w.Name()+" pageins", float64(ins), float64(st.PageIns), tol)
			checkClose(t, w.Name()+" pageouts", float64(outs), float64(st.PageOuts), tol)
		})
	}
}

func checkClose(t *testing.T, what string, got, want, tol float64) {
	t.Helper()
	if want == 0 {
		if got > 16 {
			t.Errorf("%s: trace %v vs run %v", what, got, want)
		}
		return
	}
	ratio := got / want
	if ratio < 1-tol || ratio > 1+tol {
		t.Errorf("%s: trace %v vs run %v (ratio %.2f outside ±%.0f%%)", what, got, want, ratio, tol*100)
	}
}

// TestMvecPageoutDominated: the paper's stated MVEC profile — many
// pageouts, almost no pageins.
func TestMvecPageoutDominated(t *testing.T) {
	w := NewMvec(256) // 512 KB matrix
	_, st := runWorkload(t, w, 0.25)
	if st.PageOuts < 20 {
		t.Fatalf("MVEC produced only %d pageouts", st.PageOuts)
	}
	if st.PageIns > st.PageOuts/5 {
		t.Fatalf("MVEC pageins (%d) not small vs pageouts (%d); paper says 'many pageouts and almost no pageins'",
			st.PageIns, st.PageOuts)
	}
}

// TestNoPagingWhenResident: with the whole footprint resident there
// must be no pageins (matching Figure 3's flat region below 18 MB).
func TestNoPagingWhenResident(t *testing.T) {
	for _, w := range smallAll() {
		_, st := runWorkload(t, w, 1.5)
		if st.PageIns != 0 {
			t.Errorf("%s: %d pageins despite full residency", w.Name(), st.PageIns)
		}
	}
}

// TestFaultsGrowWithPressure: shrinking resident memory must not
// decrease paging traffic (Figure 3's sharp rise past the limit).
func TestFaultsGrowWithPressure(t *testing.T) {
	w := NewFFT(1 << 13)
	var prev uint64
	for _, frac := range []float64{0.9, 0.5, 0.25} {
		_, st := runWorkload(t, w, frac)
		total := st.PageIns + st.PageOuts
		if total < prev {
			t.Fatalf("paging shrank when memory shrank: %d -> %d at %.2f", prev, total, frac)
		}
		prev = total
	}
	if prev == 0 {
		t.Fatal("no paging at 0.25 residency")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"GAUSS", "QSORT", "FFT", "MVEC", "FILTER", "CC"} {
		w, err := ByName(name, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		if w.Name() != name {
			t.Fatalf("ByName(%s) returned %s", name, w.Name())
		}
	}
	if _, err := ByName("NOPE", 1); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestAllPaperScaleFootprints(t *testing.T) {
	// At scale 1.0 the inputs must be in the paper's ballpark: every
	// array workload exceeds the 18 MB resident limit of the testbed.
	for _, w := range All(1.0) {
		mb := float64(w.Bytes()) / (1 << 20)
		switch w.Name() {
		case "GAUSS":
			if mb < 20 || mb > 25 {
				t.Errorf("GAUSS footprint %.1f MB, want ~22 (1700^2 doubles)", mb)
			}
		case "MVEC":
			if mb < 30 || mb > 40 {
				t.Errorf("MVEC footprint %.1f MB, want ~34 (2100^2 doubles)", mb)
			}
		case "FFT":
			if mb < 20 || mb > 28 {
				t.Errorf("FFT footprint %.1f MB, want ~24 (data + scratch)", mb)
			}
		case "QSORT":
			if mb < 20 || mb > 26 {
				t.Errorf("QSORT footprint %.1f MB, want ~23 (3M records)", mb)
			}
		case "FILTER":
			if mb < 20 || mb > 28 {
				t.Errorf("FILTER footprint %.1f MB, want ~24 (12 MB image x2)", mb)
			}
		case "CC":
			if mb < 25 || mb > 40 {
				t.Errorf("CC footprint %.1f MB, want ~33", mb)
			}
		}
	}
}

// TestFFTSizing: large sizes become m * 2^k with m <= the base-case
// size, so radix-2 recursion always reaches a small direct DFT.
func TestFFTSizing(t *testing.T) {
	for _, n := range []int{700_000, 786_432, 1 << 20, 999_999} {
		p := NewFFT(n).Points()
		if p < n {
			t.Fatalf("NewFFT(%d) shrank to %d", n, p)
		}
		m := p
		for m > 1024 {
			if m%2 != 0 {
				t.Fatalf("NewFFT(%d) = %d has odd factor %d > base", n, p, m)
			}
			m /= 2
		}
	}
	if NewFFT(0).Points() != 8 {
		t.Fatal("FFT minimum size wrong")
	}
	if NewFFT(1000).Points() != 1000 {
		t.Fatal("small FFT sizes should be used as-is")
	}
}

// TestTraceInBounds: every trace reference stays inside the footprint.
func TestTraceInBounds(t *testing.T) {
	for _, w := range smallAll() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			maxPg := (w.Bytes() + page.Size - 1) / page.Size
			count := 0
			w.Trace(func(pg int64, write bool) {
				count++
				if pg < 0 || pg >= maxPg {
					t.Fatalf("%s: trace ref page %d outside [0,%d)", w.Name(), pg, maxPg)
				}
			})
			if count == 0 {
				t.Fatalf("%s: empty trace", w.Name())
			}
		})
	}
}

func BenchmarkGaussRun(b *testing.B) {
	w := NewGauss(64)
	for i := 0; i < b.N; i++ {
		dev := blockdev.NewMemDevice()
		s, _ := vm.New(w.Bytes(), w.Bytes()/2, dev)
		if _, err := w.Run(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFFTTracePaperScale(b *testing.B) {
	w := NewFFT(1_572_864) // the paper's 24 MB point
	for i := 0; i < b.N; i++ {
		n := 0
		w.Trace(func(pg int64, wr bool) { n++ })
		if n == 0 {
			b.Fatal("empty trace")
		}
	}
}
