package apps

import (
	"math"
	"math/cmplx"
	"testing"

	"rmp/internal/blockdev"
	"rmp/internal/vm"
)

// TestFFTComputesCorrectTransform checks the recursive FFT against a
// direct O(n^2) DFT computed independently in plain Go.
func TestFFTComputesCorrectTransform(t *testing.T) {
	const n = 1 << 11 // 2048 points: recursion + base DFT both exercised
	w := NewFFT(n)
	if w.Points() != n {
		t.Fatalf("size %d", w.Points())
	}
	s, err := vm.New(w.Bytes(), w.Bytes()*2, blockdev.NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(s); err != nil {
		t.Fatal(err)
	}

	// Regenerate the same input signal the workload used.
	rng := newXorshift(uint64(n) + 2)
	input := make([]complex128, n)
	for i := range input {
		input[i] = complex(rng.float01()-0.5, 0)
	}
	// Reference DFT at a sample of bins (full O(n^2) at 2048 is fine).
	for _, k := range []int64{0, 1, 7, 100, n / 2, n - 1} {
		var ref complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			ref += input[j] * cmplx.Exp(complex(0, ang))
		}
		gotRe, err := s.Float64(2 * k)
		if err != nil {
			t.Fatal(err)
		}
		gotIm, err := s.Float64(2*k + 1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(gotRe-real(ref)) > 1e-6 || math.Abs(gotIm-imag(ref)) > 1e-6 {
			t.Fatalf("bin %d = (%g,%g), reference DFT (%g,%g)", k, gotRe, gotIm, real(ref), imag(ref))
		}
	}
}

// TestFFTParseval: energy is conserved (sum|x|^2 * n == sum|X|^2),
// a global sanity check over every bin.
func TestFFTParseval(t *testing.T) {
	const n = 1 << 10
	w := NewFFT(n)
	s, err := vm.New(w.Bytes(), w.Bytes()*2, blockdev.NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(s); err != nil {
		t.Fatal(err)
	}
	rng := newXorshift(uint64(n) + 2)
	var eIn float64
	for i := 0; i < n; i++ {
		v := rng.float01() - 0.5
		eIn += v * v
	}
	var eOut float64
	for i := int64(0); i < n; i++ {
		re, _ := s.Float64(2 * i)
		im, _ := s.Float64(2*i + 1)
		eOut += re*re + im*im
	}
	if math.Abs(eOut-eIn*float64(n)) > 1e-6*eIn*float64(n) {
		t.Fatalf("Parseval violated: in %g*n=%g, out %g", eIn, eIn*float64(n), eOut)
	}
}

// TestFFTNonPowerOfTwoSize: the odd-base recursion (n = m * 2^k) also
// computes a correct transform.
func TestFFTNonPowerOfTwoSize(t *testing.T) {
	w := NewFFT(1536) // 3 * 512: recursion bottoms out at a 768-point DFT
	n := w.Points()
	s, err := vm.New(w.Bytes(), w.Bytes()*2, blockdev.NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(s); err != nil {
		t.Fatal(err)
	}
	rng := newXorshift(uint64(n) + 2)
	input := make([]complex128, n)
	for i := range input {
		input[i] = complex(rng.float01()-0.5, 0)
	}
	for _, k := range []int64{0, 5, int64(n) - 1} {
		var ref complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			ref += input[j] * cmplx.Exp(complex(0, ang))
		}
		gotRe, _ := s.Float64(2 * k)
		gotIm, _ := s.Float64(2*k + 1)
		if math.Abs(gotRe-real(ref)) > 1e-6 || math.Abs(gotIm-imag(ref)) > 1e-6 {
			t.Fatalf("bin %d = (%g,%g), want (%g,%g)", k, gotRe, gotIm, real(ref), imag(ref))
		}
	}
}

// TestGaussEliminationCorrect checks the panel-blocked elimination
// against an independent in-memory implementation of the textbook
// algorithm: the resulting upper-triangular matrices must agree.
func TestGaussEliminationCorrect(t *testing.T) {
	const n = 300 // larger than gaussBlock for panel+trailing coverage
	if n <= gaussBlock {
		t.Fatal("test size must exceed the panel to exercise blocking")
	}
	w := NewGauss(n)
	s, err := vm.New(w.Bytes(), w.Bytes()*2, blockdev.NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(s); err != nil {
		t.Fatal(err)
	}

	// Reference: plain row-by-row elimination on the same matrix.
	rng := newXorshift(uint64(n))
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		for j := range a[i] {
			v := rng.float01()
			if i == j {
				v += float64(n)
			}
			a[i][j] = v
		}
	}
	for k := 0; k < n-1; k++ {
		for i := k + 1; i < n; i++ {
			factor := a[i][k] / a[k][k]
			for j := k; j < n; j++ {
				a[i][j] -= factor * a[k][j]
			}
		}
	}

	// Compare the upper triangle (the blocked variant reorders the
	// same arithmetic; tiny float divergence is acceptable).
	maxRel := 0.0
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			got, err := s.Float64(w.idx(i, j))
			if err != nil {
				t.Fatal(err)
			}
			den := math.Abs(a[i][j])
			if den < 1e-9 {
				den = 1e-9
			}
			rel := math.Abs(got-a[i][j]) / den
			if rel > maxRel {
				maxRel = rel
			}
		}
	}
	if maxRel > 1e-9 {
		t.Fatalf("blocked elimination diverges from reference: max rel err %g", maxRel)
	}
}

// TestQsortSortsRandomData double-checks QSORT beyond its internal
// verification, via an independent pass.
func TestQsortSortsRandomData(t *testing.T) {
	w := NewQsort(10_000)
	s, err := vm.New(w.Bytes(), w.Bytes()/3, blockdev.NewMemDevice())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(s); err != nil {
		t.Fatal(err) // Run fails internally if unsorted
	}
	var prev uint64
	for i := int64(0); i < 10_000; i++ {
		v, err := s.Uint64(i)
		if err != nil {
			t.Fatal(err)
		}
		if v < prev {
			t.Fatalf("unsorted at %d", i)
		}
		prev = v
	}
	// The multiset must be preserved: same XOR and sum as the input.
	rng := newXorshift(uint64(10_000) + 3)
	var wantXor, wantSum uint64
	for i := 0; i < 10_000; i++ {
		v := rng.next()
		wantXor ^= v
		wantSum += v
	}
	var gotXor, gotSum uint64
	for i := int64(0); i < 10_000; i++ {
		v, _ := s.Uint64(i)
		gotXor ^= v
		gotSum += v
	}
	if gotXor != wantXor || gotSum != wantSum {
		t.Fatal("sort did not preserve the multiset of keys")
	}
}
