package apps

import (
	"rmp/internal/vm"
)

// CC is the paper's CC application: "a kernel build after modifying
// the code of our device driver" — a long sequence of compilations.
// It models a compiler driver processing many translation units:
//
//   - a resident compiler image, touched throughout (read-only),
//   - per unit: a sequential read of the source file, several
//     read-write sweeps over a scratch arena (ASTs, symbol tables),
//     and a sequential write of the object file.
//
// CPU time dominates (compilation is compute-heavy); paging traffic
// is moderate and comes from the sources and objects not all fitting
// in memory together with the scratch arena — which is why the paper
// measures smaller (but still real) improvements for CC than for the
// array codes.
//
// Layout: [compiler image][scratch arena][unit 0 src][unit 0 obj]
// [unit 1 src][unit 1 obj]...
type CC struct {
	units int
}

// Model constants (bytes). A 1996 kernel build: ~2 MB compiler, 128 KB
// sources, 64 KB objects, 1.5 MB of compiler scratch per unit.
const (
	ccCompilerBytes = 2 << 20
	ccScratchBytes  = 3 << 19 // 1.5 MB
	ccSrcBytes      = 128 << 10
	ccObjBytes      = 64 << 10
	ccScratchSweeps = 3
)

// NewCC creates a kernel-build model with the given number of
// translation units (the paper-scale default in All() is 160, for a
// ~33 MB footprint).
func NewCC(units int) *CC {
	if units < 1 {
		units = 1
	}
	return &CC{units: units}
}

func (c *CC) Name() string { return "CC" }

func (c *CC) Bytes() int64 {
	return ccCompilerBytes + ccScratchBytes + int64(c.units)*(ccSrcBytes+ccObjBytes)
}

func (c *CC) compilerOff() int64 { return 0 }
func (c *CC) scratchOff() int64  { return ccCompilerBytes }
func (c *CC) srcOff(u int64) int64 {
	return ccCompilerBytes + ccScratchBytes + u*(ccSrcBytes+ccObjBytes)
}
func (c *CC) objOff(u int64) int64 { return c.srcOff(u) + ccSrcBytes }

// Run "builds the kernel": generates sources, compiles each unit
// (hashing source through scratch sweeps into an object), and
// checksums the objects — a deterministic, verifiable stand-in for
// cc's data flow with the same memory behaviour.
func (c *CC) Run(s *vm.Space) (uint64, error) {
	rng := newXorshift(uint64(c.units) + 6)

	// Install the compiler image.
	buf := make([]byte, 4096)
	for off := int64(0); off < ccCompilerBytes; off += int64(len(buf)) {
		for i := range buf {
			buf[i] = byte(rng.next())
		}
		if err := s.Write(c.compilerOff()+off, buf); err != nil {
			return 0, err
		}
	}

	// Generate all the sources (checking out the tree).
	for u := int64(0); u < int64(c.units); u++ {
		for off := int64(0); off < ccSrcBytes; off += int64(len(buf)) {
			for i := range buf {
				buf[i] = byte(rng.next())
			}
			if err := s.Write(c.srcOff(u)+off, buf); err != nil {
				return 0, err
			}
		}
	}

	h := uint64(14695981039346656037)
	cbuf := make([]byte, 4096)
	for u := int64(0); u < int64(c.units); u++ {
		// Lex/parse: read the source sequentially into scratch,
		// touching compiler pages as we go.
		var acc uint64
		for off := int64(0); off < ccSrcBytes; off += int64(len(buf)) {
			if err := s.Read(c.srcOff(u)+off, buf); err != nil {
				return 0, err
			}
			for _, b := range buf {
				acc = mix(acc, uint64(b))
			}
			// Touch a compiler page (the code doing the work).
			cpg := (off / 4096) % (ccCompilerBytes / 4096)
			if err := s.Read(c.compilerOff()+cpg*4096, cbuf[:64]); err != nil {
				return 0, err
			}
			// Append to scratch (building the AST).
			spos := (off * (ccScratchBytes / ccSrcBytes)) % (ccScratchBytes - int64(len(buf)))
			if err := s.Write(c.scratchOff()+spos, buf); err != nil {
				return 0, err
			}
		}
		// Optimization passes: sweeps over the scratch arena.
		for pass := 0; pass < ccScratchSweeps; pass++ {
			for off := int64(0); off+int64(len(buf)) <= ccScratchBytes; off += int64(len(buf)) {
				if err := s.Read(c.scratchOff()+off, buf); err != nil {
					return 0, err
				}
				for i := range buf {
					buf[i] ^= byte(acc >> (uint(i) % 48))
				}
				if err := s.Write(c.scratchOff()+off, buf); err != nil {
					return 0, err
				}
			}
		}
		// Emit the object file.
		for off := int64(0); off < ccObjBytes; off += int64(len(buf)) {
			for i := range buf {
				buf[i] = byte(acc >> (uint(i) % 56))
				acc = acc*6364136223846793005 + 1442695040888963407
			}
			if err := s.Write(c.objOff(u)+off, buf); err != nil {
				return 0, err
			}
		}
	}

	// "ld": checksum all objects.
	for u := int64(0); u < int64(c.units); u++ {
		for off := int64(0); off < ccObjBytes; off += int64(len(buf)) {
			if err := s.Read(c.objOff(u)+off, buf); err != nil {
				return 0, err
			}
			for _, b := range buf {
				h = mix(h, uint64(b))
			}
		}
	}
	return h, nil
}

// Trace emits the page-reference stream of Run.
func (c *CC) Trace(emit EmitFunc) {
	emitRange(emit, c.compilerOff(), ccCompilerBytes, true)
	for u := int64(0); u < int64(c.units); u++ {
		emitRange(emit, c.srcOff(u), ccSrcBytes, true)
	}
	for u := int64(0); u < int64(c.units); u++ {
		// Lex/parse: interleaved source reads, compiler touches,
		// scratch writes, at 4 KB granularity.
		for off := int64(0); off < ccSrcBytes; off += 4096 {
			emit(pageOfByte(c.srcOff(u)+off), false)
			cpg := (off / 4096) % (ccCompilerBytes / 4096)
			emit(pageOfByte(c.compilerOff()+cpg*4096), false)
			spos := (off * (ccScratchBytes / ccSrcBytes)) % (ccScratchBytes - 4096)
			emit(pageOfByte(c.scratchOff()+spos), true)
		}
		for pass := 0; pass < ccScratchSweeps; pass++ {
			emitRange(emit, c.scratchOff(), ccScratchBytes, true)
		}
		emitRange(emit, c.objOff(u), ccObjBytes, true)
	}
	for u := int64(0); u < int64(c.units); u++ {
		emitRange(emit, c.objOff(u), ccObjBytes, false)
	}
}
