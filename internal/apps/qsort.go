package apps

import (
	"fmt"

	"rmp/internal/vm"
)

// Qsort is the paper's QSORT application: quicksort over an array of
// records. Records are 8-byte keys (the paper's input is reported as
// "3000 records" in the figure caption; at 1996 problem scale that
// only pages if read as 3000 K, so the default is 3,000,000 records —
// the assumption is recorded in DESIGN.md).
//
// Access pattern: recursive partitioning — each level sweeps its
// subrange sequentially with reads and writes; the top levels sweep
// the whole array, so an array larger than resident memory pages
// heavily in both directions.
type Qsort struct {
	n int
}

// NewQsort creates a QSORT instance over n records.
func NewQsort(n int) *Qsort { return &Qsort{n: n} }

func (q *Qsort) Name() string { return "QSORT" }

func (q *Qsort) Bytes() int64 { return int64(q.n) * 8 }

// cutoff is the subrange size (in records) below which recursion
// stops and insertion sort finishes the job within a page.
const qsortCutoff = 1024

// Run fills the array with deterministic pseudo-random keys, sorts
// it with an explicit-stack quicksort (Lomuto partition, middle
// pivot), verifies sortedness, and checksums a sample.
func (q *Qsort) Run(s *vm.Space) (uint64, error) {
	n := int64(q.n)
	rng := newXorshift(uint64(n) + 3)
	for i := int64(0); i < n; i++ {
		if err := s.SetUint64(i, rng.next()); err != nil {
			return 0, err
		}
	}

	type rng2 struct{ lo, hi int64 } // [lo, hi)
	stack := []rng2{{0, n}}
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if r.hi-r.lo <= qsortCutoff {
			if err := q.insertion(s, r.lo, r.hi); err != nil {
				return 0, err
			}
			continue
		}
		mid, err := q.partition(s, r.lo, r.hi)
		if err != nil {
			return 0, err
		}
		// Push larger side first so the stack depth stays logarithmic.
		if mid-r.lo > r.hi-mid-1 {
			stack = append(stack, rng2{r.lo, mid}, rng2{mid + 1, r.hi})
		} else {
			stack = append(stack, rng2{mid + 1, r.hi}, rng2{r.lo, mid})
		}
	}

	// Verify and checksum.
	h := uint64(14695981039346656037)
	prev := uint64(0)
	for i := int64(0); i < n; i++ {
		v, err := s.Uint64(i)
		if err != nil {
			return 0, err
		}
		if v < prev {
			return 0, fmt.Errorf("qsort: not sorted at %d", i)
		}
		prev = v
		if i%997 == 0 {
			h = mix(h, v)
		}
	}
	return h, nil
}

// partition is Lomuto with the middle element as pivot.
func (q *Qsort) partition(s *vm.Space, lo, hi int64) (int64, error) {
	mid := lo + (hi-lo)/2
	pivot, err := s.Uint64(mid)
	if err != nil {
		return 0, err
	}
	if err := q.swap(s, mid, hi-1); err != nil {
		return 0, err
	}
	store := lo
	for i := lo; i < hi-1; i++ {
		v, err := s.Uint64(i)
		if err != nil {
			return 0, err
		}
		if v < pivot {
			if err := q.swap(s, i, store); err != nil {
				return 0, err
			}
			store++
		}
	}
	if err := q.swap(s, store, hi-1); err != nil {
		return 0, err
	}
	return store, nil
}

func (q *Qsort) insertion(s *vm.Space, lo, hi int64) error {
	for i := lo + 1; i < hi; i++ {
		v, err := s.Uint64(i)
		if err != nil {
			return err
		}
		j := i
		for j > lo {
			prev, err := s.Uint64(j - 1)
			if err != nil {
				return err
			}
			if prev <= v {
				break
			}
			if err := s.SetUint64(j, prev); err != nil {
				return err
			}
			j--
		}
		if err := s.SetUint64(j, v); err != nil {
			return err
		}
	}
	return nil
}

func (q *Qsort) swap(s *vm.Space, i, j int64) error {
	if i == j {
		return nil
	}
	vi, err := s.Uint64(i)
	if err != nil {
		return err
	}
	vj, err := s.Uint64(j)
	if err != nil {
		return err
	}
	if err := s.SetUint64(i, vj); err != nil {
		return err
	}
	return s.SetUint64(j, vi)
}

// Trace emits the page-reference stream of a quicksort over the same
// array. Partition split points are data-dependent in Run; the trace
// draws split fractions from the same seeded PRNG family, which
// preserves the recursion shape statistically (top levels sweep the
// full array either way, and those sweeps dominate the paging).
func (q *Qsort) Trace(emit EmitFunc) {
	n := int64(q.n)
	emitRange(emit, 0, n*8, true) // key generation

	rng := newXorshift(uint64(n) + 4)
	type rng2 struct{ lo, hi int64 }
	stack := []rng2{{0, n}}
	for len(stack) > 0 {
		r := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if r.hi-r.lo <= qsortCutoff {
			// Insertion sort: one read-write pass within the range.
			emitRange(emit, r.lo*8, (r.hi-r.lo)*8, true)
			continue
		}
		// Partition: sequential read-write sweep of [lo, hi).
		emitRange(emit, r.lo*8, (r.hi-r.lo)*8, true)
		// Split fraction ~ uniform, matching a random pivot on random
		// keys; clamp so both sides make progress.
		frac := 0.1 + 0.8*rng.float01()
		mid := r.lo + int64(frac*float64(r.hi-r.lo))
		stack = append(stack, rng2{r.lo, mid}, rng2{mid + 1, r.hi})
	}

	emitRange(emit, 0, n*8, false) // verification sweep
}
