// Package apps implements the paper's six benchmark applications:
// GAUSS (Gaussian elimination), QSORT (quicksort of records), FFT
// (iterative radix-2 FFT), MVEC (matrix-vector multiply), FILTER
// (two-pass separable image filter, after Newman [20]) and CC (a
// kernel-build model).
//
// Each application has two facets that share one parameterization:
//
//   - Run executes the real algorithm over a vm.Space, so the
//     workloads genuinely fault through whatever backing device the
//     space is given — including the live TCP remote memory pager.
//     Used by examples, integration tests and live benchmarks at
//     laptop-friendly input sizes.
//
//   - Trace emits the page-granular memory-reference stream of the
//     same algorithm at any size, including the paper's 1996 input
//     sizes, without doing the arithmetic. The experiment harness
//     replays traces through vm.Replayer to obtain pagein/pageout
//     streams for the timing models.
//
// Tests assert that Run and Trace produce closely matching fault
// counts at equal scale, so the paper-scale traces are trustworthy.
package apps

import (
	"fmt"

	"rmp/internal/blockdev"
	"rmp/internal/page"
	"rmp/internal/vm"
)

// EmitFunc receives one page-granular reference.
type EmitFunc func(pg int64, write bool)

// Workload is one benchmark application at a fixed input size.
type Workload interface {
	// Name is the paper's application id (e.g. "GAUSS").
	Name() string
	// Bytes is the address-space footprint.
	Bytes() int64
	// Run executes the real computation over s (whose size must be at
	// least Bytes) and returns a result checksum for verification.
	Run(s *vm.Space) (uint64, error)
	// Trace emits the page-reference stream of the same computation.
	Trace(emit EmitFunc)
}

// traceChunk is the element granularity at which traces emit page
// references: fine enough that the page sequence matches Run's, cheap
// enough that paper-scale traces stay compact.
const traceChunk = 512

// pagesOf converts a byte count to whole pages (rounding up).
func pagesOf(bytes int64) int64 {
	return (bytes + page.Size - 1) / page.Size
}

// pageOfByte returns the page holding byte offset off.
func pageOfByte(off int64) int64 { return off / page.Size }

// emitRange emits references covering bytes [off, off+n) in ascending
// page order.
func emitRange(emit EmitFunc, off, n int64, write bool) {
	if n <= 0 {
		return
	}
	first := pageOfByte(off)
	last := pageOfByte(off + n - 1)
	for pg := first; pg <= last; pg++ {
		emit(pg, write)
	}
}

// NewSpaceFor allocates a space big enough for w with the given
// resident budget, over dev.
func NewSpaceFor(w Workload, residentBytes int64, dev blockdev.Device) (*vm.Space, error) {
	return vm.New(w.Bytes(), residentBytes, dev)
}

// xorshift is the deterministic PRNG used for workload data, so that
// every run of an app computes the same result checksum.
type xorshift uint64

func newXorshift(seed uint64) *xorshift {
	x := xorshift(seed*2862933555777941757 + 3037000493)
	return &x
}

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v
}

// float01 returns a float in [0,1).
func (x *xorshift) float01() float64 {
	return float64(x.next()>>11) / (1 << 53)
}

// mix folds a value into a running checksum.
func mix(h, v uint64) uint64 {
	h ^= v
	h *= 1099511628211
	return h
}

// All returns the paper's six applications at the given scale factor:
// scale 1.0 is the paper's input sizes (Figure 2 caption); smaller
// scales shrink the inputs proportionally for fast test runs.
func All(scale float64) []Workload {
	if scale <= 0 {
		scale = 1
	}
	s := func(n int) int {
		v := int(float64(n) * scale)
		if v < 8 {
			v = 8
		}
		return v
	}
	return []Workload{
		NewGauss(s(1700)),
		NewQsort(s(3_000_000)),
		NewFFT(s(786_432)),
		NewMvec(s(2100)),
		NewFilter(s(4096), s(3072)),
		NewCC(s(160)),
	}
}

// ByName returns the workload with the given name from All(scale).
func ByName(name string, scale float64) (Workload, error) {
	for _, w := range All(scale) {
		if w.Name() == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("apps: unknown workload %q", name)
}
