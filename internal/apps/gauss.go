package apps

import (
	"fmt"
	"math"

	"rmp/internal/vm"
)

// Gauss is the paper's GAUSS application: Gaussian elimination (no
// pivoting) on an n x n float64 matrix, stored row-major. The paper
// runs n = 1700 (about 22 MB).
//
// The elimination is organized in pivot *panels* of gaussBlock rows,
// the standard page-aware formulation (in the spirit of the paper's
// reference [20]): a panel of pivot rows is factored while resident,
// then the trailing rows are swept once, each row receiving all of
// the panel's updates in a single pass. This turns the naive
// algorithm's n trailing sweeps (which thrash any LRU-like memory)
// into n/gaussBlock sweeps, giving 1996-plausible paging volumes
// while performing the same arithmetic.
type Gauss struct {
	n int
}

// gaussBlock is the pivot panel height (rows). 256 rows of a 1700-
// wide matrix is ~3.4 MB — comfortably resident on the paper's
// testbed while leaving room for the trailing row stream.
const gaussBlock = 256

// NewGauss creates a GAUSS instance on an n x n matrix.
func NewGauss(n int) *Gauss { return &Gauss{n: n} }

func (g *Gauss) Name() string { return "GAUSS" }

// Bytes is the matrix footprint.
func (g *Gauss) Bytes() int64 { return int64(g.n) * int64(g.n) * 8 }

// idx is the element index of A[i][j].
func (g *Gauss) idx(i, j int) int64 { return int64(i)*int64(g.n) + int64(j) }

// eliminateRow applies pivot row k to row i over columns k..n-1.
func (g *Gauss) eliminateRow(s *vm.Space, k, i int) error {
	pivot, err := s.Float64(g.idx(k, k))
	if err != nil {
		return err
	}
	if pivot == 0 {
		return fmt.Errorf("gauss: zero pivot at %d", k)
	}
	aik, err := s.Float64(g.idx(i, k))
	if err != nil {
		return err
	}
	factor := aik / pivot
	for j := k; j < g.n; j++ {
		akj, err := s.Float64(g.idx(k, j))
		if err != nil {
			return err
		}
		aij, err := s.Float64(g.idx(i, j))
		if err != nil {
			return err
		}
		if err := s.SetFloat64(g.idx(i, j), aij-factor*akj); err != nil {
			return err
		}
	}
	return nil
}

// Run initializes the matrix deterministically, eliminates panel by
// panel, and checksums the diagonal (the pivots).
func (g *Gauss) Run(s *vm.Space) (uint64, error) {
	n := g.n
	rng := newXorshift(uint64(n))
	// Diagonally dominant matrix: elimination is numerically tame.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := rng.float01()
			if i == j {
				v += float64(n)
			}
			if err := s.SetFloat64(g.idx(i, j), v); err != nil {
				return 0, err
			}
		}
	}

	for kb := 0; kb < n; kb += gaussBlock {
		kend := kb + gaussBlock
		if kend > n {
			kend = n
		}
		// Factor the panel: eliminate within rows kb..kend-1.
		for k := kb; k < kend-1; k++ {
			for i := k + 1; i < kend; i++ {
				if err := g.eliminateRow(s, k, i); err != nil {
					return 0, err
				}
			}
		}
		// Trailing update: each row below the panel receives every
		// panel pivot in one visit.
		for i := kend; i < n; i++ {
			for k := kb; k < kend; k++ {
				if err := g.eliminateRow(s, k, i); err != nil {
					return 0, err
				}
			}
		}
	}

	h := uint64(14695981039346656037)
	for k := 0; k < n; k++ {
		v, err := s.Float64(g.idx(k, k))
		if err != nil {
			return 0, err
		}
		h = mix(h, math.Float64bits(v))
	}
	return h, nil
}

// traceRowPair emits the page refs of eliminateRow(k, i): pivot row k
// read and row i read-written over columns k..n-1, alternating in
// chunks.
func (g *Gauss) traceRowPair(emit EmitFunc, k, i int64) {
	n := int64(g.n)
	emit(pageOfByte((k*n+k)*8), false) // pivot
	emit(pageOfByte((i*n+k)*8), false) // factor
	for j := k; j < n; j += traceChunk {
		end := j + traceChunk
		if end > n {
			end = n
		}
		emitRange(emit, (k*n+j)*8, (end-j)*8, false)
		emitRange(emit, (i*n+j)*8, (end-j)*8, true)
	}
}

// Trace emits the page-reference stream of Run.
func (g *Gauss) Trace(emit EmitFunc) {
	n := int64(g.n)
	emitRange(emit, 0, n*n*8, true) // initialization

	for kb := int64(0); kb < n; kb += gaussBlock {
		kend := kb + gaussBlock
		if kend > n {
			kend = n
		}
		for k := kb; k < kend-1; k++ {
			for i := k + 1; i < kend; i++ {
				g.traceRowPair(emit, k, i)
			}
		}
		for i := kend; i < n; i++ {
			for k := kb; k < kend; k++ {
				g.traceRowPair(emit, k, i)
			}
		}
	}

	for k := int64(0); k < n; k++ { // checksum pass
		emit(pageOfByte((k*n+k)*8), false)
	}
}
