package apps

import (
	"fmt"
	"math"

	"rmp/internal/vm"
)

// FFT is the paper's FFT application: a recursive decimation-in-time
// FFT over n complex points stored as interleaved float64 pairs
// (16 bytes per point), with an equally sized scratch plane — total
// footprint 32 bytes per point, so the paper's "array with 700 K
// elements" is a ~22 MB job and Figure 3's input sizes of 17-24 MB
// correspond to 0.56-0.79 M points.
//
// The recursive organization (split even/odd into scratch, transform
// halves, combine back) is the page-aware formulation in the spirit
// of the paper's reference [20]: once a subproblem fits in memory it
// faults nothing, so paging is confined to the top recursion levels'
// sequential sweeps — which is what makes the measured fault counts
// of the paper (thousands, not hundreds of thousands) reproducible.
//
// n may be any multiple of a power of two; recursion splits while the
// size is even and above fftBase, and the base case is a direct DFT.
type FFT struct {
	n int // points
}

// fftBase is the size at or below which the direct O(b^2) DFT runs;
// base blocks span at most 32 KB and live comfortably in memory.
const fftBase = 1024

// NewFFT creates an FFT over n complex points (minimum 8; sizes with
// large odd factors are rounded up to the next multiple of 1024 so
// the base case stays small).
func NewFFT(n int) *FFT {
	if n < 8 {
		n = 8
	}
	if n > fftBase {
		// Round up so n = m * 2^k with m <= fftBase.
		m := n
		for m > fftBase {
			m = (m + 1) / 2
		}
		for m <= fftBase/2 {
			m *= 2
		}
		k := 1
		for m*k < n {
			k *= 2
		}
		n = m * k
	}
	return &FFT{n: n}
}

func (f *FFT) Name() string { return "FFT" }

// Points returns the transform size.
func (f *FFT) Points() int { return f.n }

// Bytes is data plane + scratch plane.
func (f *FFT) Bytes() int64 { return 2 * int64(f.n) * 16 }

// scratchOff is the element offset of the scratch plane.
func (f *FFT) scratchOff() int64 { return int64(f.n) }

// cplx reads point i (element index, either plane).
func cplx(s *vm.Space, i int64) (re, im float64, err error) {
	re, err = s.Float64(2 * i)
	if err != nil {
		return
	}
	im, err = s.Float64(2*i + 1)
	return
}

func setCplx(s *vm.Space, i int64, re, im float64) error {
	if err := s.SetFloat64(2*i, re); err != nil {
		return err
	}
	return s.SetFloat64(2*i+1, im)
}

// Run fills the array with a deterministic signal, transforms it, and
// checksums a sample of the spectrum.
func (f *FFT) Run(s *vm.Space) (uint64, error) {
	n := int64(f.n)
	rng := newXorshift(uint64(n) + 2)
	for i := int64(0); i < n; i++ {
		if err := setCplx(s, i, rng.float01()-0.5, 0); err != nil {
			return 0, err
		}
	}
	if err := f.rec(s, 0, f.scratchOff(), int(n)); err != nil {
		return 0, err
	}
	h := uint64(14695981039346656037)
	for i := int64(0); i < n; i += 64 {
		re, _, err := cplx(s, i)
		if err != nil {
			return 0, err
		}
		h = mix(h, math.Float64bits(roundTo(re, 1e6)))
	}
	return h, nil
}

// roundTo quantizes v to absorb float rounding differences.
func roundTo(v, scale float64) float64 { return math.Round(v*scale) / scale }

// rec transforms n points at element offset a, using n scratch points
// at element offset t.
func (f *FFT) rec(s *vm.Space, a, t int64, n int) error {
	if n <= fftBase || n%2 != 0 {
		return f.dft(s, a, t, n)
	}
	half := int64(n / 2)
	// Split: evens to scratch lower half, odds to scratch upper half.
	for i := int64(0); i < half; i++ {
		re, im, err := cplx(s, a+2*i)
		if err != nil {
			return err
		}
		if err := setCplx(s, t+i, re, im); err != nil {
			return err
		}
		re, im, err = cplx(s, a+2*i+1)
		if err != nil {
			return err
		}
		if err := setCplx(s, t+half+i, re, im); err != nil {
			return err
		}
	}
	// Transform halves (scratch as data, original as their scratch).
	if err := f.rec(s, t, a, int(half)); err != nil {
		return err
	}
	if err := f.rec(s, t+half, a+half, int(half)); err != nil {
		return err
	}
	// Combine back into a.
	ang := -2 * math.Pi / float64(n)
	for k := int64(0); k < half; k++ {
		eRe, eIm, err := cplx(s, t+k)
		if err != nil {
			return err
		}
		oRe, oIm, err := cplx(s, t+half+k)
		if err != nil {
			return err
		}
		wRe, wIm := math.Cos(ang*float64(k)), math.Sin(ang*float64(k))
		xRe := wRe*oRe - wIm*oIm
		xIm := wRe*oIm + wIm*oRe
		if err := setCplx(s, a+k, eRe+xRe, eIm+xIm); err != nil {
			return err
		}
		if err := setCplx(s, a+half+k, eRe-xRe, eIm-xIm); err != nil {
			return err
		}
	}
	return nil
}

// dft is the direct O(n^2) base case: a+0..n-1 transformed using
// t+0..n-1 as scratch.
func (f *FFT) dft(s *vm.Space, a, t int64, n int) error {
	for k := 0; k < n; k++ {
		var accRe, accIm float64
		for j := 0; j < n; j++ {
			re, im, err := cplx(s, a+int64(j))
			if err != nil {
				return err
			}
			ang := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			c, sn := math.Cos(ang), math.Sin(ang)
			accRe += re*c - im*sn
			accIm += re*sn + im*c
		}
		if err := setCplx(s, t+int64(k), accRe, accIm); err != nil {
			return err
		}
	}
	for k := int64(0); k < int64(n); k++ {
		re, im, err := cplx(s, t+k)
		if err != nil {
			return err
		}
		if err := setCplx(s, a+k, re, im); err != nil {
			return err
		}
	}
	return nil
}

// Trace emits the page-reference stream of Run.
func (f *FFT) Trace(emit EmitFunc) {
	n := int64(f.n)
	emitRange(emit, 0, n*16, true) // signal generation
	f.traceRec(emit, 0, f.scratchOff(), int(n))
	for i := int64(0); i < n; i += 64 { // spectrum checksum
		emit(pageOfByte(i*16), false)
	}
}

func (f *FFT) traceRec(emit EmitFunc, a, t int64, n int) {
	if n <= fftBase || n%2 != 0 {
		// Base DFT: repeated passes over one in-memory block; page-
		// wise it touches the block's pages read-write once (the
		// block is far smaller than any resident set, repeats dedup).
		emitRange(emit, a*16, int64(n)*16, true)
		emitRange(emit, t*16, int64(n)*16, true)
		return
	}
	half := int64(n / 2)
	// Split: sequential read of a, interleaved writes of both scratch
	// halves.
	const chunk = int64(traceChunk)
	for i := int64(0); i < half; i += chunk {
		end := i + chunk
		if end > half {
			end = half
		}
		emitRange(emit, (a+2*i)*16, (end-i)*2*16, false)
		emitRange(emit, (t+i)*16, (end-i)*16, true)
		emitRange(emit, (t+half+i)*16, (end-i)*16, true)
	}
	f.traceRec(emit, t, a, int(half))
	f.traceRec(emit, t+half, a+half, int(half))
	// Combine: read both scratch halves, write both output halves.
	for k := int64(0); k < half; k += chunk {
		end := k + chunk
		if end > half {
			end = half
		}
		emitRange(emit, (t+k)*16, (end-k)*16, false)
		emitRange(emit, (t+half+k)*16, (end-k)*16, false)
		emitRange(emit, (a+k)*16, (end-k)*16, true)
		emitRange(emit, (a+half+k)*16, (end-k)*16, true)
	}
}

// String describes the instance.
func (f *FFT) String() string {
	return fmt.Sprintf("FFT(%d points, %.1f MB)", f.n, float64(f.Bytes())/(1<<20))
}
