// Package load turns Go package patterns into type-checked syntax
// trees using only the standard library and the go command — a
// miniature go/packages for rmpvet.
//
// Strategy: `go list -export -deps -json` enumerates the target
// packages and compiles export data for every dependency into the
// build cache; each target package is then parsed from source and
// type-checked with the gc importer reading dependencies straight
// from those export files. This keeps analysis fast (no transitive
// source type-checking) while staying dependency-free.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// listedPackage is the subset of `go list -json` output we consume.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Packages loads and type-checks the packages matching patterns,
// resolved relative to dir (the module root). Test files are not
// included — `go list` GoFiles excludes them — which is what rmpvet
// wants: the invariants guard production code.
func Packages(dir string, patterns []string) ([]*Package, *token.FileSet, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, nil, err
	}

	exportFor := make(map[string]string, len(listed))
	for _, lp := range listed {
		if lp.Export != "" {
			exportFor[lp.ImportPath] = lp.Export
		}
	}

	fset := token.NewFileSet()
	// One shared gc importer: dependency packages are materialized
	// once and shared by every target's type-check, so cross-package
	// object identity holds within a run.
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := exportFor[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	})

	var out []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard || len(lp.GoFiles) == 0 {
			continue
		}
		if len(lp.CgoFiles) > 0 {
			return nil, nil, fmt.Errorf("load: %s uses cgo, unsupported", lp.ImportPath)
		}
		if lp.Error != nil {
			return nil, nil, fmt.Errorf("load: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, nil, fmt.Errorf("load: %w", err)
			}
			files = append(files, f)
		}
		info := NewInfo()
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, nil, fmt.Errorf("load: type-checking %s: %w", lp.ImportPath, err)
		}
		out = append(out, &Package{
			ImportPath: lp.ImportPath,
			Dir:        lp.Dir,
			Files:      files,
			Pkg:        pkg,
			Info:       info,
		})
	}
	return out, fset, nil
}

// NewInfo allocates a types.Info with every map analyzers consume.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// goList runs `go list -export -deps -json` and decodes the stream.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("load: go list: %w\n%s", err, strings.TrimSpace(stderr.String()))
	}
	dec := json.NewDecoder(&stdout)
	var out []*listedPackage
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %w", err)
		}
		out = append(out, lp)
	}
	return out, nil
}

// ExportLookup compiles the named import paths (plus dependencies)
// and returns a map from import path to export-data file. The
// analysistest loader uses it to resolve fixture imports of standard
// library packages.
func ExportLookup(dir string, paths []string) (map[string]string, error) {
	if len(paths) == 0 {
		return map[string]string{}, nil
	}
	listed, err := goList(dir, paths)
	if err != nil {
		return nil, err
	}
	out := make(map[string]string, len(listed))
	for _, lp := range listed {
		if lp.Export != "" {
			out[lp.ImportPath] = lp.Export
		}
	}
	return out, nil
}
