// Package a is the errwrap fixture.
package a

import (
	"errors"
	"fmt"
)

var errSentinel = errors.New("sentinel")

func flattenV(err error) error {
	return fmt.Errorf("op failed: %v", err) // want "use %w so errors.Is/As can classify it"
}

func flattenS(err error) error {
	return fmt.Errorf("op failed: %s", err) // want "use %w"
}

func wrapped(err error) error {
	return fmt.Errorf("op failed: %w", err)
}

func nonError(name string) error {
	return fmt.Errorf("no such host: %v", name)
}

func mixed(name string, err error) error {
	return fmt.Errorf("host %s: %v", name, err) // want "use %w"
}

func indexed(err error) error {
	return fmt.Errorf("second arg: %[2]v", 0, err) // want "use %w"
}

func starWidth(pad int, err error) error {
	return fmt.Errorf("padded %*d then %v", pad, 7, err) // want "use %w"
}

func sprintfIsFine(err error) string {
	return fmt.Sprintf("display only: %v", err)
}
