// Package errwrap checks that error values are never flattened by
// fmt.Errorf's %v/%s verbs: an error argument must be wrapped with %w
// so sentinel classification survives across API boundaries.
//
// The pager's whole fault-handling stack depends on this: the retry
// layer asks errors.Is(err, ErrReqTimeout) to decide what feeds the
// circuit breaker, policies ask errors.As(&wire.StatusError{}) to
// separate server verdicts from transport failures, and callers ask
// errors.Is(err, ErrPageLost). One fmt.Errorf("...: %v", err) on the
// path silently severs the chain and turns a classified fault into an
// unclassifiable string.
package errwrap

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strconv"

	"rmp/internal/analysis"
)

// Analyzer is the errwrap check.
var Analyzer = &analysis.Analyzer{
	Name: "errwrap",
	Doc:  "error values passed to fmt.Errorf must use %w, not %v/%s, so errors.Is/As keep working",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	errorIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isErrorf(pass, call.Fun) || len(call.Args) < 2 {
				return true
			}
			format, ok := constFormat(pass, call.Args[0])
			if !ok {
				return true
			}
			verbs := parseVerbs(format)
			args := call.Args[1:]
			for _, v := range verbs {
				if v.argIndex < 0 || v.argIndex >= len(args) {
					continue // malformed format; go vet's department
				}
				if v.verb != 'v' && v.verb != 's' {
					continue
				}
				arg := args[v.argIndex]
				tv, ok := pass.Info.Types[arg]
				if !ok || tv.Type == nil {
					continue
				}
				if types.Implements(tv.Type, errorIface) {
					pass.Reportf(arg.Pos(),
						"error value formatted with %%%c loses its identity; use %%w so errors.Is/As can classify it", v.verb)
				}
			}
			return true
		})
	}
	return nil
}

// isErrorf recognizes fmt.Errorf (by import path, so fixture fakes
// named fmt do not count unless they really are the fmt package).
func isErrorf(pass *analysis.Pass, fun ast.Expr) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return false
	}
	obj, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == "fmt"
}

// constFormat extracts the constant format string, if any.
func constFormat(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	s, err := strconv.Unquote(tv.Value.ExactString())
	if err != nil {
		return constant.StringVal(tv.Value), true
	}
	return s, true
}

// verb is one conversion in a format string, mapped to the argument
// it consumes.
type verb struct {
	verb     rune
	argIndex int
}

// parseVerbs walks a Printf-style format string tracking which
// argument each verb consumes, including '*' width/precision
// arguments and explicit [n] argument indexes.
func parseVerbs(format string) []verb {
	var out []verb
	arg := 0
	rs := []rune(format)
	for i := 0; i < len(rs); i++ {
		if rs[i] != '%' {
			continue
		}
		i++
		if i >= len(rs) {
			break
		}
		if rs[i] == '%' {
			continue
		}
		// Flags, width, precision, argument index.
		explicit := -1
		for i < len(rs) {
			r := rs[i]
			switch {
			case r == '+' || r == '-' || r == '#' || r == ' ' || r == '0' || (r >= '1' && r <= '9') || r == '.':
				i++
			case r == '*':
				arg++ // '*' consumes one argument
				i++
			case r == '[':
				j := i + 1
				num := 0
				for j < len(rs) && rs[j] >= '0' && rs[j] <= '9' {
					num = num*10 + int(rs[j]-'0')
					j++
				}
				if j < len(rs) && rs[j] == ']' {
					explicit = num - 1 // 1-based in the format string
					i = j + 1
				} else {
					i = j
				}
			default:
				goto verbRune
			}
		}
	verbRune:
		if i >= len(rs) {
			break
		}
		idx := arg
		if explicit >= 0 {
			idx = explicit
			arg = explicit
		}
		out = append(out, verb{verb: rs[i], argIndex: idx})
		arg++
	}
	return out
}
