package errwrap_test

import (
	"testing"

	"rmp/internal/analysis/analysistest"
	"rmp/internal/analysis/errwrap"
)

func TestErrwrap(t *testing.T) {
	analysistest.Run(t, ".", errwrap.Analyzer, "a")
}
