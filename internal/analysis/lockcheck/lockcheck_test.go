package lockcheck_test

import (
	"testing"

	"rmp/internal/analysis/analysistest"
	"rmp/internal/analysis/lockcheck"
)

func TestLockcheck(t *testing.T) {
	analysistest.Run(t, ".", lockcheck.Analyzer, "a")
}
