// Package lockcheck enforces the repository's documented lock
// discipline mechanically:
//
//  1. A struct field whose doc (or line) comment says "guarded by mu"
//     — or "guarded by Type.mu" for state owned by another struct's
//     lock, like remoteServer fields under Pager.mu — may only be
//     read while that mutex (or its read half) is held, and only be
//     written while it is write-held.
//  2. Blocking network I/O (Read/Write on a net.Conn, or any call
//     passing a net.Conn, such as wire.Encode/Decode) performed while
//     a mutex is held must be preceded by arming a deadline
//     (SetDeadline/SetReadDeadline/SetWriteDeadline) in the same
//     function — the deadline-under-lock rule. A wedged peer must
//     become a bounded timeout, never a goroutine parked forever
//     inside a critical section.
//
// Lock state is tracked per function over the statement list in
// source order: x.mu.Lock() marks (Type-of-x, "mu") held, Unlock
// clears it, defer x.mu.Unlock() holds it for the rest of the
// function, and RLock holds it in read mode (writing a guarded field
// under RLock is reported). Nested blocks inherit the current set;
// lock operations inside a branch do not leak past it (conservative —
// keep lock pairs at one nesting level, which this codebase does).
// Function literals inherit the current set, except goroutine bodies
// (`go func(){...}`), which start empty: the new goroutine does not
// hold its creator's locks.
//
// Escapes:
//
//   - Functions (or whole receiver types) whose doc carries
//     "//rmpvet:holds Type.mu" are analyzed with that lock assumed
//     held — the annotation for the pager's "runs with p.mu held"
//     helper/policy convention, and it is enforced at least to exist.
//   - Accesses through a struct value created in the same function
//     (x := &T{...}; x.field = ...) are constructor initialization
//     and exempt.
//   - "//rmpvet:allow lockcheck" suppresses a line, for the rare
//     intentionally unsynchronized access (with a stated reason).
//
// The guard relation is keyed by type, not by instance: holding
// a.mu while touching b.field of another instance of the same type
// will not be caught. That trade keeps the checker simple and has
// not mattered in this tree, where guarded structs are singletons
// per owner (one Pager, one Server, one Store per server).
package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"rmp/internal/analysis"
)

// Analyzer is the lockcheck check.
var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc:  "fields documented 'guarded by <mu>' must be accessed under that mutex; no undeadlined network I/O under a lock",
	Run:  run,
}

// guardComment matches "guarded by mu" / "guarded by Pager.mu",
// tolerating a line wrap after "by" and not swallowing a sentence's
// trailing period.
var guardComment = regexp.MustCompile(`(?i)guarded by\s+(\w+(?:\.\w+)*)`)

// lockKey identifies a lock as (owning named type, field name).
type lockKey struct {
	typ  *types.TypeName
	name string
}

// lockMode distinguishes exclusive from shared holds.
type lockMode int

const (
	modeWrite lockMode = iota
	modeRead
)

// checker carries per-package state.
type checker struct {
	pass *analysis.Pass
	// guards maps each annotated field object to the lock that
	// protects it.
	guards map[*types.Var]lockKey
	// typeHolds maps a named type to locks every method of that type
	// may assume held (type-level rmpvet:holds).
	typeHolds map[*types.TypeName][]lockKey
	netConn   *types.Interface
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:      pass,
		guards:    make(map[*types.Var]lockKey),
		typeHolds: make(map[*types.TypeName][]lockKey),
		netConn:   analysis.LookupIface(pass.Pkg, "net", "Conn"),
	}
	c.collectGuards()
	if len(c.guards) == 0 && c.netConn == nil {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkFunc(fd)
		}
	}
	return nil
}

// collectGuards finds every "guarded by" field annotation and every
// type-level rmpvet:holds directive.
func (c *checker) collectGuards() {
	for _, file := range c.pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				tn, ok := c.pass.Info.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				// Type-level holds directive: applies to all methods.
				for _, doc := range []*ast.CommentGroup{gd.Doc, ts.Doc, ts.Comment} {
					for _, h := range analysis.HoldsFromDoc(doc) {
						if key, ok := c.resolveHold(h); ok {
							c.typeHolds[tn] = append(c.typeHolds[tn], key)
						}
					}
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					guard := guardFromComments(field.Doc, field.Comment)
					if guard == "" {
						continue
					}
					key, ok := c.resolveGuard(tn, guard)
					if !ok {
						c.pass.Reportf(field.Pos(), "guarded-by annotation %q does not name a mutex field (want mu or Type.mu)", guard)
						continue
					}
					for _, name := range field.Names {
						if fv, ok := c.pass.Info.Defs[name].(*types.Var); ok {
							c.guards[fv] = key
						}
					}
				}
			}
		}
	}
}

// guardFromComments extracts the guard name from a field's comments.
func guardFromComments(groups ...*ast.CommentGroup) string {
	for _, g := range groups {
		if g == nil {
			continue
		}
		if m := guardComment.FindStringSubmatch(g.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// resolveGuard turns a guard annotation on a field of type owner into
// a lockKey: "mu" means a sibling field, "Pager.mu" a field of
// another type in this package.
func (c *checker) resolveGuard(owner *types.TypeName, guard string) (lockKey, bool) {
	if key, ok := c.resolveHold(guard); ok {
		return key, true
	}
	// Unqualified: a sibling field of the same struct.
	st, ok := owner.Type().Underlying().(*types.Struct)
	if !ok {
		return lockKey{}, false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == guard && isLockType(st.Field(i).Type()) {
			return lockKey{typ: owner, name: guard}, true
		}
	}
	return lockKey{}, false
}

// resolveHold parses a qualified "Type.mu" reference against the
// package scope.
func (c *checker) resolveHold(ref string) (lockKey, bool) {
	m := regexp.MustCompile(`^(\w+)\.(\w+)$`).FindStringSubmatch(ref)
	if m == nil {
		return lockKey{}, false
	}
	tn, ok := c.pass.Pkg.Scope().Lookup(m[1]).(*types.TypeName)
	if !ok {
		return lockKey{}, false
	}
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return lockKey{}, false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == m[2] && isLockType(st.Field(i).Type()) {
			return lockKey{typ: tn, name: m[2]}, true
		}
	}
	return lockKey{}, false
}

// isLockType reports whether t is sync.Mutex/RWMutex (or a pointer to
// one).
func isLockType(t types.Type) bool {
	named := analysis.NamedType(t)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Pkg().Path() != "sync" {
		return false
	}
	name := named.Obj().Name()
	return name == "Mutex" || name == "RWMutex"
}

// funcState is the walker state for one function.
type funcState struct {
	c       *checker
	assumed map[lockKey]bool
	// owned holds objects initialized in this function (x := &T{...});
	// accesses through them are constructor writes, exempt.
	owned map[types.Object]bool
	// armed is set once any SetDeadline-family call is seen; network
	// I/O under a lock before it is the hazard.
	armed bool
}

// checkFunc analyzes one function declaration.
func (c *checker) checkFunc(fd *ast.FuncDecl) {
	st := &funcState{
		c:       c,
		assumed: make(map[lockKey]bool),
		owned:   make(map[types.Object]bool),
	}
	for _, h := range analysis.HoldsFromDoc(fd.Doc) {
		if key, ok := c.resolveHold(h); ok {
			st.assumed[key] = true
		} else {
			c.pass.Reportf(fd.Pos(), "rmpvet:holds %q does not resolve to a mutex field in this package", h)
		}
	}
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		if named := analysis.NamedType(c.pass.Info.Types[fd.Recv.List[0].Type].Type); named != nil {
			for _, key := range c.typeHolds[named.Obj()] {
				st.assumed[key] = true
			}
		}
	}
	held := make(map[lockKey]lockMode)
	st.walkStmts(fd.Body.List, held)
}

// walkStmts processes a statement list in source order, threading the
// held-lock set through lock/unlock calls at this nesting level.
// Nested blocks get a copy: their lock-state changes stay local.
func (s *funcState) walkStmts(stmts []ast.Stmt, held map[lockKey]lockMode) {
	for _, stmt := range stmts {
		s.walkStmt(stmt, held)
	}
}

func (s *funcState) walkStmt(stmt ast.Stmt, held map[lockKey]lockMode) {
	switch v := stmt.(type) {
	case *ast.ExprStmt:
		if key, op, ok := s.lockOp(v.X); ok {
			applyLockOp(held, key, op)
			return
		}
		s.checkExpr(v.X, held, false)
	case *ast.DeferStmt:
		if _, op, ok := s.lockOp(v.Call); ok && (op == opUnlock || op == opRUnlock) {
			return // deferred unlock: stays held to function end
		}
		s.checkExpr(v.Call, held, false)
	case *ast.AssignStmt:
		s.trackOwned(v)
		for _, lhs := range v.Lhs {
			s.checkLHS(lhs, held)
		}
		for _, rhs := range v.Rhs {
			s.checkExpr(rhs, held, false)
		}
	case *ast.IncDecStmt:
		s.checkLHS(v.X, held)
	case *ast.DeclStmt:
		gd, ok := v.Decl.(*ast.GenDecl)
		if ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, val := range vs.Values {
						s.checkExpr(val, held, false)
					}
				}
			}
		}
	case *ast.BlockStmt:
		s.walkStmts(v.List, copyHeld(held))
	case *ast.IfStmt:
		if v.Init != nil {
			s.walkStmt(v.Init, held)
		}
		s.checkExpr(v.Cond, held, false)
		s.walkStmts(v.Body.List, copyHeld(held))
		if v.Else != nil {
			s.walkStmt(v.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		inner := copyHeld(held)
		if v.Init != nil {
			s.walkStmt(v.Init, inner)
		}
		if v.Cond != nil {
			s.checkExpr(v.Cond, inner, false)
		}
		s.walkStmts(v.Body.List, inner)
		if v.Post != nil {
			s.walkStmt(v.Post, inner)
		}
	case *ast.RangeStmt:
		s.checkExpr(v.X, held, false)
		inner := copyHeld(held)
		if v.Key != nil {
			s.checkLHS(v.Key, inner)
		}
		if v.Value != nil {
			s.checkLHS(v.Value, inner)
		}
		s.walkStmts(v.Body.List, inner)
	case *ast.SwitchStmt:
		if v.Init != nil {
			s.walkStmt(v.Init, held)
		}
		if v.Tag != nil {
			s.checkExpr(v.Tag, held, false)
		}
		for _, clause := range v.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					s.checkExpr(e, held, false)
				}
				s.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		if v.Init != nil {
			s.walkStmt(v.Init, held)
		}
		s.walkStmt(v.Assign, held)
		for _, clause := range v.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				s.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		for _, clause := range v.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				if cc.Comm != nil {
					s.walkStmt(cc.Comm, copyHeld(held))
				}
				s.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.ReturnStmt:
		for _, r := range v.Results {
			s.checkExpr(r, held, false)
		}
	case *ast.GoStmt:
		// A new goroutine holds none of our locks; its literal body is
		// checked against an empty set (and a fresh deadline state).
		if lit, ok := v.Call.Fun.(*ast.FuncLit); ok {
			savedArmed := s.armed
			s.armed = false
			s.walkStmts(lit.Body.List, make(map[lockKey]lockMode))
			s.armed = savedArmed
		}
		for _, arg := range v.Call.Args {
			s.checkExpr(arg, held, false)
		}
	case *ast.SendStmt:
		s.checkExpr(v.Chan, held, false)
		s.checkExpr(v.Value, held, false)
	case *ast.LabeledStmt:
		s.walkStmt(v.Stmt, held)
	}
}

// trackOwned records variables bound to freshly constructed structs.
func (s *funcState) trackOwned(v *ast.AssignStmt) {
	if len(v.Lhs) != len(v.Rhs) {
		return
	}
	for i, lhs := range v.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		obj := s.c.pass.Info.Defs[id]
		if obj == nil {
			obj = s.c.pass.Info.Uses[id]
		}
		if obj == nil {
			continue
		}
		if isFreshStruct(v.Rhs[i]) {
			s.owned[obj] = true
		}
	}
}

// isFreshStruct recognizes &T{...}, T{...} and new(T).
func isFreshStruct(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			_, ok := v.X.(*ast.CompositeLit)
			return ok
		}
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}

// lock operations.
type lockOpKind int

const (
	opLock lockOpKind = iota
	opUnlock
	opRLock
	opRUnlock
)

// lockOp recognizes x.mu.Lock()/Unlock()/RLock()/RUnlock() and plain
// mu.Lock() on a struct-field mutex, returning the lock key.
func (s *funcState) lockOp(e ast.Expr) (lockKey, lockOpKind, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return lockKey{}, 0, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, 0, false
	}
	var op lockOpKind
	switch sel.Sel.Name {
	case "Lock":
		op = opLock
	case "Unlock":
		op = opUnlock
	case "RLock":
		op = opRLock
	case "RUnlock":
		op = opRUnlock
	default:
		return lockKey{}, 0, false
	}
	// The receiver must be a mutex-typed selector x.mu where x has a
	// named struct type.
	recv, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, 0, false
	}
	tv, ok := s.c.pass.Info.Types[recv.X]
	if !ok || !isLockType(s.c.pass.Info.Types[sel.X].Type) {
		return lockKey{}, 0, false
	}
	named := analysis.NamedType(tv.Type)
	if named == nil {
		return lockKey{}, 0, false
	}
	return lockKey{typ: named.Obj(), name: recv.Sel.Name}, op, true
}

func applyLockOp(held map[lockKey]lockMode, key lockKey, op lockOpKind) {
	switch op {
	case opLock:
		held[key] = modeWrite
	case opRLock:
		held[key] = modeRead
	case opUnlock, opRUnlock:
		delete(held, key)
	}
}

// checkLHS checks an assignment target: guarded fields need the lock
// write-held.
func (s *funcState) checkLHS(lhs ast.Expr, held map[lockKey]lockMode) {
	if sel, ok := lhs.(*ast.SelectorExpr); ok {
		s.checkFieldAccess(sel, held, true)
		s.checkExpr(sel.X, held, false)
		return
	}
	if idx, ok := lhs.(*ast.IndexExpr); ok {
		s.checkExpr(idx.X, held, false)
		s.checkExpr(idx.Index, held, false)
		return
	}
	if star, ok := lhs.(*ast.StarExpr); ok {
		s.checkExpr(star.X, held, false)
	}
}

// checkExpr walks an expression tree looking for guarded-field reads
// and for network I/O performed under a lock.
func (s *funcState) checkExpr(e ast.Expr, held map[lockKey]lockMode, write bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			// Inline closure: runs on this goroutine with current locks.
			s.walkStmts(v.Body.List, copyHeld(held))
			return false
		case *ast.SelectorExpr:
			s.checkFieldAccess(v, held, write)
		case *ast.UnaryExpr:
			if v.Op == token.AND {
				if sel, ok := v.X.(*ast.SelectorExpr); ok {
					// Taking the address of a guarded field lets it escape
					// the lock; treat as a write-strength access.
					s.checkFieldAccess(sel, held, true)
					s.checkExpr(sel.X, held, false)
					return false
				}
			}
		case *ast.CallExpr:
			s.checkNetIO(v, held)
		}
		return true
	})
}

// checkFieldAccess validates one guarded-field access.
func (s *funcState) checkFieldAccess(sel *ast.SelectorExpr, held map[lockKey]lockMode, write bool) {
	selection, ok := s.c.pass.Info.Selections[sel]
	var fieldObj *types.Var
	if ok && selection.Kind() == types.FieldVal {
		fieldObj, _ = selection.Obj().(*types.Var)
	} else if obj, ok := s.c.pass.Info.Uses[sel.Sel].(*types.Var); ok && obj.IsField() {
		fieldObj = obj // qualified access in composite contexts
	}
	if fieldObj == nil {
		return
	}
	key, guarded := s.c.guards[fieldObj]
	if !guarded {
		return
	}
	// Constructor exemption: access through a struct created here.
	if base := baseIdent(sel.X); base != nil {
		obj := s.c.pass.Info.Uses[base]
		if obj == nil {
			obj = s.c.pass.Info.Defs[base]
		}
		if obj != nil && s.owned[obj] {
			return
		}
	}
	if s.assumed[key] {
		return
	}
	owner := key.typ.Name()
	if named := analysis.NamedType(s.c.pass.Info.Types[sel.X].Type); named != nil {
		owner = named.Obj().Name()
	}
	mode, isHeld := held[key]
	if !isHeld {
		verb := "read"
		if write {
			verb = "write to"
		}
		s.c.pass.Reportf(sel.Sel.Pos(), "%s %s.%s (guarded by %s.%s) without holding the lock",
			verb, owner, fieldObj.Name(), key.typ.Name(), key.name)
		return
	}
	if write && mode == modeRead {
		s.c.pass.Reportf(sel.Sel.Pos(), "write to %s.%s while holding only the read half of %s.%s",
			owner, fieldObj.Name(), key.typ.Name(), key.name)
	}
}

// baseIdent returns the leftmost identifier of a selector chain.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// deadlineMethods arm a timeout on a connection.
var deadlineMethods = map[string]bool{
	"SetDeadline": true, "SetReadDeadline": true, "SetWriteDeadline": true,
}

// netIOMethods block on the wire when invoked on a net.Conn.
var netIOMethods = map[string]bool{"Read": true, "Write": true}

// netSafeMethods never block on peer progress: closing, addressing,
// and the deadline setters themselves.
var netSafeMethods = map[string]bool{
	"Close": true, "LocalAddr": true, "RemoteAddr": true,
	"SetDeadline": true, "SetReadDeadline": true, "SetWriteDeadline": true,
}

// checkNetIO flags blocking network I/O under a lock without a
// deadline armed earlier in the function.
func (s *funcState) checkNetIO(call *ast.CallExpr, held map[lockKey]lockMode) {
	if s.c.netConn == nil {
		return
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && deadlineMethods[sel.Sel.Name] {
		s.armed = true
		return
	}
	if len(held) == 0 && len(s.assumed) == 0 {
		return
	}
	// Builtins (delete, append, len...) never perform I/O even when a
	// net.Conn is among their arguments.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := s.c.pass.Info.Uses[id].(*types.Builtin); isBuiltin {
			return
		}
	}
	blocking := false
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if netIOMethods[sel.Sel.Name] {
			if tv, ok := s.c.pass.Info.Types[sel.X]; ok && analysis.Implements(tv.Type, s.c.netConn) {
				blocking = true
			}
		}
		if netSafeMethods[sel.Sel.Name] {
			return
		}
	}
	if !blocking {
		for _, arg := range call.Args {
			if tv, ok := s.c.pass.Info.Types[arg]; ok && analysis.Implements(tv.Type, s.c.netConn) {
				blocking = true
				break
			}
		}
	}
	if blocking && !s.armed {
		s.c.pass.Reportf(call.Pos(), "blocking network I/O while a mutex is held, with no deadline armed: a wedged peer parks this goroutine inside the critical section")
	}
}

func copyHeld(held map[lockKey]lockMode) map[lockKey]lockMode {
	out := make(map[lockKey]lockMode, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}
