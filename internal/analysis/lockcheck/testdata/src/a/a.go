// Package a is the lockcheck fixture: every rule the analyzer
// enforces, with violations marked by want comments.
package a

import (
	"net"
	"sync"
	"time"
)

type counter struct {
	mu sync.Mutex
	// n is the count. Guarded by mu.
	n int

	rw sync.RWMutex
	// m is the other count. Guarded by rw.
	m int
}

func (c *counter) good() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) deferred() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) bad() {
	c.n++ // want "write to counter.n .guarded by counter.mu. without holding the lock"
}

func (c *counter) badRead() int {
	return c.n // want "read counter.n"
}

func (c *counter) readUnderRLock() int {
	c.rw.RLock()
	defer c.rw.RUnlock()
	return c.m
}

func (c *counter) writeUnderRLock() {
	c.rw.RLock()
	c.m = 1 // want "holding only the read half"
	c.rw.RUnlock()
}

func (c *counter) unlockTooEarly() {
	c.mu.Lock()
	c.mu.Unlock()
	c.n++ // want "write to counter.n"
}

// helper runs with the caller's lock by convention.
//
//rmpvet:holds counter.mu
func (c *counter) helper() int { return c.n }

func newCounter() *counter {
	c := &counter{}
	c.n = 1 // constructor initialization: exempt
	return c
}

func (c *counter) allowed() {
	//rmpvet:allow lockcheck -- intentionally racy diagnostics knob
	c.n++
}

// goroutines do not inherit their creator's locks.
func (c *counter) spawn() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want "write to counter.n"
	}()
}

// owner guards item's state across structs.
type owner struct {
	mu sync.Mutex
}

type item struct {
	// v belongs to the owning table. Guarded by owner.mu.
	v int
}

func touch(o *owner, it *item) {
	o.mu.Lock()
	it.v = 1
	o.mu.Unlock()
	it.v = 2 // want "write to item.v .guarded by owner.mu."
}

// peer exercises the deadline-under-lock rule.
type peer struct {
	mu   sync.Mutex
	conn net.Conn
}

func (p *peer) badIO(buf []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.conn.Read(buf) // want "blocking network I/O"
}

func (p *peer) goodIO(buf []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.conn.SetDeadline(time.Now().Add(time.Second))
	p.conn.Read(buf)
}

func (p *peer) unlockedIO(buf []byte) {
	p.conn.Read(buf) // no lock held: fine
}
