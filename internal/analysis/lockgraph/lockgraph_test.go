package lockgraph_test

import (
	"testing"

	"rmp/internal/analysis/analysistest"
	"rmp/internal/analysis/lockgraph"
)

func TestLockgraph(t *testing.T) {
	analysistest.RunProgram(t, ".", lockgraph.Analyzer, "lgdep", "lg")
}
