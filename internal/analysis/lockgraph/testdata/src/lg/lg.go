// Package lg is the lockgraph fixture: lock-order cycles, recursive
// acquisition through a helper, direct and transitive blocking under a
// lock (including across packages, via lgdep), and every exemption —
// with violations marked by want comments.
package lg

import (
	"net"
	"sync"
	"time"

	"lgdep"
)

type T struct {
	a sync.Mutex
	b sync.Mutex
	c sync.Mutex
	d sync.Mutex

	reqs chan int
	conn net.Conn
}

// ab and ba take a and b in opposite orders: the classic deadlock.
func (t *T) ab() {
	t.a.Lock()
	defer t.a.Unlock()
	t.b.Lock() // want "lock-order cycle among lg.T.a, lg.T.b"
	t.b.Unlock()
}

func (t *T) ba() {
	t.b.Lock()
	defer t.b.Unlock()
	t.a.Lock()
	t.a.Unlock()
}

// lockTwice reacquires c through a helper while already holding it.
func (t *T) lockTwice() {
	t.c.Lock()
	defer t.c.Unlock()
	t.lockC() // want "lock lg.T.c acquired while already held"
}

func (t *T) lockC() {
	t.c.Lock()
	t.c.Unlock()
}

// Direct unbounded blocking inside the critical section.
func (t *T) recvUnderLock() {
	t.a.Lock()
	defer t.a.Unlock()
	<-t.reqs // want "unbounded channel receive while holding lg.T.a"
}

func (t *T) sendUnderLock(v int) {
	t.a.Lock()
	t.reqs <- v // want "unbounded channel send while holding lg.T.a"
	t.a.Unlock()
}

func (t *T) waitUnderLock(wg *sync.WaitGroup) {
	t.a.Lock()
	defer t.a.Unlock()
	wg.Wait() // want "unbounded sync.WaitGroup.Wait while holding lg.T.a"
}

func (t *T) rangeUnderLock() {
	t.a.Lock()
	defer t.a.Unlock()
	for v := range t.reqs { // want "unbounded range over channel while holding lg.T.a"
		_ = v
	}
}

func (t *T) selectUnderLock() {
	t.a.Lock()
	defer t.a.Unlock()
	select { // want "unbounded select with no default or timer case while holding lg.T.a"
	case v := <-t.reqs:
		_ = v
	case t.reqs <- 0:
	}
}

// Transitive blocking: the park is two calls away in another package.
func (t *T) callBlockerUnderLock() {
	t.b.Lock()
	defer t.b.Unlock()
	lgdep.Chain() // want "call to lgdep.Chain while holding lg.T.b reaches an unbounded channel receive .via lgdep.Wait."
}

func (t *T) callRecvUnderLock(buf []byte) {
	t.c.Lock()
	defer t.c.Unlock()
	lgdep.Recv(t.conn, buf) // want "call to lgdep.Recv while holding lg.T.c reaches net.Conn.Read with no deadline armed"
}

// A deadline armed before the call bounds the callee's network I/O.
func (t *T) armedRecv(buf []byte) {
	t.c.Lock()
	defer t.c.Unlock()
	t.conn.SetDeadline(time.Now().Add(time.Second))
	lgdep.Recv(t.conn, buf)
}

// A select with a default never parks.
func (t *T) pollUnderLock() {
	t.a.Lock()
	defer t.a.Unlock()
	select {
	case v := <-t.reqs:
		_ = v
	default:
	}
}

// A timer case bounds the park by the clock.
func (t *T) timedRecvUnderLock() {
	t.a.Lock()
	defer t.a.Unlock()
	timer := time.NewTimer(time.Second)
	defer timer.Stop()
	select {
	case v := <-t.reqs:
		_ = v
	case <-timer.C:
	}
}

// A channel made in this function is a structured-concurrency join:
// bounded by local progress, not peer progress.
func (t *T) localJoin() {
	t.a.Lock()
	defer t.a.Unlock()
	done := make(chan struct{})
	go func() {
		close(done)
	}()
	<-done
}

// A WaitGroup declared here joins only goroutines launched here:
// bounded by local progress.
func (t *T) localWGJoin() {
	t.a.Lock()
	defer t.a.Unlock()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		wg.Done()
	}()
	wg.Wait()
}

// A callback literal stored for later does not run inside this
// critical section: no recursive-acquisition report.
type job struct{ run func() }

func (t *T) enqueueCallback(jobs *[]job) {
	t.a.Lock()
	defer t.a.Unlock()
	*jobs = append(*jobs, job{run: func() {
		t.a.Lock()
		t.a.Unlock()
	}})
}

// An immediately-invoked literal does run here: its park is caught.
func (t *T) iife() {
	t.a.Lock()
	defer t.a.Unlock()
	func() {
		<-t.reqs // want "unbounded channel receive while holding lg.T.a"
	}()
}

// A goroutine's acquisitions never propagate to the spawn-time held
// set: no lg.T.a → lg.T.d edge, so da() below closes no cycle.
func (t *T) spawnUnderLock() {
	t.a.Lock()
	defer t.a.Unlock()
	go func() {
		t.d.Lock()
		t.d.Unlock()
	}()
}

func (t *T) da() {
	t.d.Lock()
	defer t.d.Unlock()
	t.a.Lock()
	t.a.Unlock()
}

// locked runs with a held by convention; the holds directive seeds the
// held set, so its direct park is still caught.
//
//rmpvet:holds T.a
func (t *T) locked() {
	<-t.reqs // want "unbounded channel receive while holding lg.T.a"
}

func (t *T) allowed() {
	t.a.Lock()
	defer t.a.Unlock()
	//rmpvet:allow lockgraph -- diagnostic poll, peers always drain
	<-t.reqs
}
