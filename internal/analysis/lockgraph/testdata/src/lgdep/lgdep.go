// Package lgdep is the cross-package half of the lockgraph fixture:
// blocking operations that package lg reaches through calls into this
// package while holding a lock.
package lgdep

import "net"

// ch is fed by peers; receiving parks until one sends.
var ch chan int

// Wait parks on a peer-fed channel with no bound.
func Wait() {
	<-ch
}

// Chain reaches Wait's park through one more hop.
func Chain() {
	Wait()
}

// Recv reads from a conn with no deadline armed.
func Recv(c net.Conn, buf []byte) {
	c.Read(buf)
}
