// Package lockgraph builds a repo-wide lock-acquisition graph and
// reports (a) cycles — two goroutines taking the same pair of mutexes
// in opposite orders deadlock — and (b) unbounded blocking operations
// (channel ops without a timer or default, sync.WaitGroup.Wait,
// blocking network I/O without a deadline) reachable while a mutex is
// held, including transitively through calls into other packages.
// It generalizes lockcheck's per-function "no blocking under a lock"
// rule to the whole program: lockcheck reports direct network I/O
// under a lock; lockgraph reports the cross-function closure.
//
// Model: every function gets a summary — the locks it acquires, the
// calls it makes, and the unbounded blocking operations it performs,
// each with a snapshot of the locks held at that point (seeded by
// rmpvet:holds assumptions). A fixpoint propagates "transitively
// acquires lock L" and "transitively blocks" facts over the call
// graph, then lock-order edges (held H at a point that acquires L ⇒
// edge H→L) feed a cycle search. Goroutine bodies launched with `go`
// become standalone roots: their acquisitions and blocking never
// propagate to the spawning function, because the spawner does not
// wait inside its critical section.
//
// Cross-package identity is by name: functions are keyed by
// types.Func.FullName and locks by "pkgpath.Type.field" (see the
// analysis package's ProgramAnalyzer doc).
//
// Bounded-by-construction operations are exempt: selects with a
// default or a time.Time-typed case, receives from time.Time
// channels, and operations on channels or WaitGroups declared in the
// same function (structured-concurrency joins whose senders are local
// goroutines — bounded by local progress, not peer progress).
//
// Function literals inherit the held set only when invoked on the
// spot; a literal passed as an argument or stored in a field is a
// callback that runs later, on whoever executes it — it is analyzed
// as a standalone root, like a goroutine body.
package lockgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"rmp/internal/analysis"
)

// Analyzer is the whole-program lock-order and blocking-reachability
// check.
var Analyzer = &analysis.ProgramAnalyzer{
	Name: "lockgraph",
	Doc: "report lock-acquisition cycles across the whole program, and " +
		"unbounded channel/network blocking reachable while a mutex is held",
	Run: run,
}

// kind of a recorded blocking operation.
type blockKind int

const (
	blockChan blockKind = iota // channel op, WaitGroup/Cond wait
	blockNet                   // network I/O with no deadline armed
)

// acqSite is one mu.Lock()/RLock() call and the locks already held.
type acqSite struct {
	pos  token.Pos
	lock string
	held []string
}

// callSite is one resolvable call and the locks held at it.
type callSite struct {
	pos    token.Pos
	callee string // types.Func.FullName
	held   []string
	armed  bool // a wire deadline was armed in the caller
}

// blockSite is one direct unbounded blocking operation.
type blockSite struct {
	pos  token.Pos
	kind blockKind
	desc string
	held []string
}

// blockEv is the fixpoint fact "this function (transitively) performs
// an unbounded blocking operation".
type blockEv struct {
	desc string
	path string // call chain below this function, "" when direct
}

// fnSum is one function's summary.
type fnSum struct {
	name     string
	acquires []acqSite
	calls    []callSite
	blocks   []blockSite

	// fixpoint results
	transAcq map[string]string // lock key -> callee it came through ("" = direct)
	chanEv   *blockEv
	netEv    *blockEv
}

// lockEdge is a lock-order relation: from is held when to is
// acquired.
type lockEdge struct{ from, to string }

// edgeEv is the first-seen evidence for a lock-order edge.
type edgeEv struct {
	pos token.Pos
	via string // callee FullName for transitive edges, "" for direct
}

func run(pass *analysis.ProgramPass) error {
	sums := map[string]*fnSum{}
	order := []string{} // deterministic iteration
	for _, u := range pass.Units {
		b := &builder{pass: pass, u: u, sums: sums, order: &order}
		b.typeHolds = collectTypeHolds(u)
		b.netConn = analysis.LookupIface(u.Pkg, "net", "Conn")
		for _, f := range u.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				b.funcDecl(fd)
			}
		}
	}

	fixpoint(sums, order)
	report(pass, sums, order)
	return nil
}

// collectTypeHolds maps a unit's type names to the rmpvet:holds
// entries in their declaration doc comments.
func collectTypeHolds(u *analysis.Unit) map[string][]string {
	out := map[string][]string{}
	for _, f := range u.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil {
					doc = gd.Doc
				}
				if holds := analysis.HoldsFromDoc(doc); len(holds) > 0 {
					out[ts.Name.Name] = holds
				}
			}
		}
	}
	return out
}

// builder walks one unit's functions into summaries.
type builder struct {
	pass      *analysis.ProgramPass
	u         *analysis.Unit
	sums      map[string]*fnSum
	order     *[]string
	typeHolds map[string][]string
	netConn   *types.Interface
}

func (b *builder) funcDecl(fd *ast.FuncDecl) {
	obj, ok := b.u.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return
	}
	held := map[string]bool{}
	holds := analysis.HoldsFromDoc(fd.Doc)
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		if named := analysis.NamedType(b.u.Info.TypeOf(fd.Recv.List[0].Type)); named != nil {
			holds = append(holds, b.typeHolds[named.Obj().Name()]...)
		}
	}
	for _, h := range holds {
		if key := b.resolveHold(h); key != "" {
			held[key] = true
		}
	}
	b.walkFn(obj.FullName(), fd.Body, held)
}

// walkFn creates the summary for name and walks body under the given
// initial held set.
func (b *builder) walkFn(name string, body *ast.BlockStmt, held map[string]bool) {
	sum := &fnSum{name: name}
	b.sums[name] = sum
	*b.order = append(*b.order, name)
	w := &walker{b: b, sum: sum, locals: map[types.Object]bool{}}
	w.armed = w.preArmed(body)
	w.stmts(body.List, held)
}

// resolveHold turns "Type.mu" into the program-wide lock key
// "pkgpath.Type.mu", or "" when Type is not in this unit's scope.
func (b *builder) resolveHold(h string) string {
	i := strings.LastIndex(h, ".")
	typeName, field := h[:i], h[i+1:]
	obj, ok := b.u.Pkg.Scope().Lookup(typeName).(*types.TypeName)
	if !ok {
		return ""
	}
	return obj.Pkg().Path() + "." + obj.Name() + "." + field
}

// walker threads a held-lock set through one function body.
type walker struct {
	b      *builder
	sum    *fnSum
	armed  bool
	locals map[types.Object]bool // channels and WaitGroups declared in this function
	goN    int
	fnN    int
}

// preArmed reports whether body arms a wire deadline anywhere outside
// goroutine bodies — matching lockcheck's function-wide armed rule.
func (w *walker) preArmed(body *ast.BlockStmt) bool {
	armed := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.GoStmt:
			if _, ok := v.Call.Fun.(*ast.FuncLit); ok {
				return false
			}
		case *ast.CallExpr:
			if sel, ok := v.Fun.(*ast.SelectorExpr); ok && isDeadlineName(sel.Sel.Name) {
				armed = true
			}
		}
		return !armed
	})
	return armed
}

func isDeadlineName(name string) bool {
	switch name {
	case "SetDeadline", "SetReadDeadline", "SetWriteDeadline":
		return true
	}
	return false
}

func copyHeld(h map[string]bool) map[string]bool {
	c := make(map[string]bool, len(h))
	for k := range h {
		c[k] = true
	}
	return c
}

func heldSlice(h map[string]bool) []string {
	out := make([]string, 0, len(h))
	for k := range h {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func (w *walker) stmts(list []ast.Stmt, held map[string]bool) map[string]bool {
	for _, s := range list {
		held = w.stmt(s, held)
	}
	return held
}

func (w *walker) stmt(s ast.Stmt, held map[string]bool) map[string]bool {
	switch v := s.(type) {
	case *ast.ExprStmt:
		if lock, op := w.lockOp(v.X); lock != "" {
			switch op {
			case "Lock", "RLock":
				w.sum.acquires = append(w.sum.acquires, acqSite{pos: v.Pos(), lock: lock, held: heldSlice(held)})
				held = copyHeld(held)
				held[lock] = true
			case "Unlock", "RUnlock":
				held = copyHeld(held)
				delete(held, lock)
			}
			return held
		}
		w.expr(v.X, held)
	case *ast.SendStmt:
		w.chanOp(v.Chan, v.Pos(), "channel send", held)
		w.expr(v.Chan, held)
		w.expr(v.Value, held)
	case *ast.AssignStmt:
		for _, rhs := range v.Rhs {
			w.expr(rhs, held)
		}
		w.trackLocalChans(v.Lhs, v.Rhs)
		for _, lhs := range v.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				w.trackLocalWGs([]*ast.Ident{id})
			}
			w.expr(lhs, held)
		}
	case *ast.DeclStmt:
		if gd, ok := v.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, val := range vs.Values {
						w.expr(val, held)
					}
					lhs := make([]ast.Expr, len(vs.Names))
					for i, n := range vs.Names {
						lhs[i] = n
					}
					w.trackLocalChans(lhs, vs.Values)
					w.trackLocalWGs(vs.Names)
				}
			}
		}
	case *ast.GoStmt:
		// The goroutine body is a standalone root: fresh held set,
		// fresh deadline state, but shared local-channel knowledge
		// (joins on the spawner's channels stay structured).
		if lit, ok := v.Call.Fun.(*ast.FuncLit); ok {
			w.goN++
			name := fmt.Sprintf("%s·go%d", w.sum.name, w.goN)
			sub := &fnSum{name: name}
			w.b.sums[name] = sub
			*w.b.order = append(*w.b.order, name)
			gw := &walker{b: w.b, sum: sub, locals: w.locals}
			gw.armed = gw.preArmed(lit.Body)
			gw.stmts(lit.Body.List, map[string]bool{})
		}
		for _, arg := range v.Call.Args {
			w.expr(arg, held)
		}
	case *ast.DeferStmt:
		if lock, op := w.lockOp(v.Call); lock != "" {
			// Deferred unlock: held to function end; nothing to do.
			_ = op
			return held
		}
		w.expr(v.Call, held)
	case *ast.BlockStmt:
		held = w.stmts(v.List, copyHeld(held))
	case *ast.IfStmt:
		if v.Init != nil {
			held = w.stmt(v.Init, held)
		}
		w.expr(v.Cond, held)
		w.stmts(v.Body.List, copyHeld(held))
		if v.Else != nil {
			w.stmt(v.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		inner := copyHeld(held)
		if v.Init != nil {
			inner = w.stmt(v.Init, inner)
		}
		if v.Cond != nil {
			w.expr(v.Cond, inner)
		}
		w.stmts(v.Body.List, copyHeld(inner))
		if v.Post != nil {
			w.stmt(v.Post, copyHeld(inner))
		}
	case *ast.RangeStmt:
		if tv, ok := w.b.u.Info.Types[v.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				w.chanOp(v.X, v.Pos(), "range over channel", held)
			}
		}
		w.expr(v.X, held)
		w.stmts(v.Body.List, copyHeld(held))
	case *ast.SelectStmt:
		if !w.selectBounded(v) {
			w.sum.blocks = append(w.sum.blocks, blockSite{
				pos: v.Pos(), kind: blockChan,
				desc: "select with no default or timer case",
				held: heldSlice(held),
			})
		}
		for _, cl := range v.Body.List {
			cc := cl.(*ast.CommClause)
			inner := copyHeld(held)
			if cc.Comm != nil {
				// The comm op itself is accounted by the select;
				// walk it only for nested calls.
				w.commExprs(cc.Comm, inner)
			}
			w.stmts(cc.Body, inner)
		}
	case *ast.SwitchStmt:
		if v.Init != nil {
			held = w.stmt(v.Init, held)
		}
		if v.Tag != nil {
			w.expr(v.Tag, held)
		}
		for _, cl := range v.Body.List {
			cc := cl.(*ast.CaseClause)
			inner := copyHeld(held)
			for _, e := range cc.List {
				w.expr(e, inner)
			}
			w.stmts(cc.Body, inner)
		}
	case *ast.TypeSwitchStmt:
		if v.Init != nil {
			held = w.stmt(v.Init, held)
		}
		w.stmt(v.Assign, held)
		for _, cl := range v.Body.List {
			cc := cl.(*ast.CaseClause)
			w.stmts(cc.Body, copyHeld(held))
		}
	case *ast.ReturnStmt:
		for _, r := range v.Results {
			w.expr(r, held)
		}
	case *ast.LabeledStmt:
		held = w.stmt(v.Stmt, held)
	case *ast.IncDecStmt:
		w.expr(v.X, held)
	}
	return held
}

// commExprs walks a select comm statement's sub-expressions without
// recording its top-level channel operation.
func (w *walker) commExprs(s ast.Stmt, held map[string]bool) {
	switch v := s.(type) {
	case *ast.ExprStmt:
		if u, ok := v.X.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			w.expr(u.X, held)
			return
		}
		w.expr(v.X, held)
	case *ast.SendStmt:
		w.expr(v.Chan, held)
		w.expr(v.Value, held)
	case *ast.AssignStmt:
		for _, rhs := range v.Rhs {
			if u, ok := rhs.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				w.expr(u.X, held)
				continue
			}
			w.expr(rhs, held)
		}
	}
}

// trackLocalWGs marks sync.WaitGroups declared in this function (Defs
// only — a := declaration or var statement, never an assignment to an
// outer variable). Joining one blocks only on goroutines this function
// launched: a structured join, bounded by local progress.
func (w *walker) trackLocalWGs(names []*ast.Ident) {
	for _, n := range names {
		obj := w.b.u.Info.Defs[n]
		if obj == nil {
			continue
		}
		named := analysis.NamedType(obj.Type())
		if named != nil && named.Obj().Pkg() != nil &&
			named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup" {
			w.locals[obj] = true
		}
	}
}

// trackLocalChans records channels created by make(chan ...) into the
// function's local set.
func (w *walker) trackLocalChans(lhs, rhs []ast.Expr) {
	if len(lhs) != len(rhs) {
		return
	}
	for i, r := range rhs {
		call, ok := r.(*ast.CallExpr)
		if !ok {
			continue
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "make" || len(call.Args) == 0 {
			continue
		}
		if tv, ok := w.b.u.Info.Types[r]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
				continue
			}
		}
		id, ok := lhs[i].(*ast.Ident)
		if !ok {
			continue
		}
		if obj := w.b.u.Info.Defs[id]; obj != nil {
			w.locals[obj] = true
		} else if obj := w.b.u.Info.Uses[id]; obj != nil {
			w.locals[obj] = true
		}
	}
}

// chanOp records an unbounded channel operation unless the channel is
// time-sourced or function-local.
func (w *walker) chanOp(ch ast.Expr, pos token.Pos, desc string, held map[string]bool) {
	if w.isTimeChan(ch) || w.isLocalChan(ch) {
		return
	}
	w.sum.blocks = append(w.sum.blocks, blockSite{pos: pos, kind: blockChan, desc: desc, held: heldSlice(held)})
}

func (w *walker) isLocalChan(e ast.Expr) bool { return w.isLocalOwned(e) }

// isLocalOwned reports whether e names a channel or WaitGroup declared
// in this function.
func (w *walker) isLocalOwned(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	obj := w.b.u.Info.Uses[id]
	if obj == nil {
		obj = w.b.u.Info.Defs[id]
	}
	return obj != nil && w.locals[obj]
}

// isTimeChan reports whether e is a channel of time.Time values
// (timer/ticker channels, time.After results, and variables holding
// them) — bounded by the clock, not by a peer.
func (w *walker) isTimeChan(e ast.Expr) bool {
	tv, ok := w.b.u.Info.Types[e]
	if !ok {
		return false
	}
	ch, ok := tv.Type.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	named := analysis.NamedType(ch.Elem())
	return named != nil && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "time" && named.Obj().Name() == "Time"
}

// selectBounded reports whether a select cannot park forever: it has
// a default case or a time-sourced receive case.
func (w *walker) selectBounded(v *ast.SelectStmt) bool {
	for _, cl := range v.Body.List {
		cc := cl.(*ast.CommClause)
		if cc.Comm == nil {
			return true // default
		}
		var recv ast.Expr
		switch s := cc.Comm.(type) {
		case *ast.ExprStmt:
			if u, ok := s.X.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				recv = u.X
			}
		case *ast.AssignStmt:
			if len(s.Rhs) == 1 {
				if u, ok := s.Rhs[0].(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					recv = u.X
				}
			}
		}
		if recv != nil && w.isTimeChan(recv) {
			return true
		}
	}
	return false
}

// lockOp recognizes x.<field>.Lock/Unlock/RLock/RUnlock() where field
// is a sync.Mutex or sync.RWMutex, returning the program-wide lock
// key and the method name.
func (w *walker) lockOp(e ast.Expr) (lock, op string) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", ""
	}
	field, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	if !isLockType(w.b.u.Info.TypeOf(field)) {
		return "", ""
	}
	named := analysis.NamedType(w.b.u.Info.TypeOf(field.X))
	if named == nil || named.Obj().Pkg() == nil {
		return "", ""
	}
	key := named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + field.Sel.Name
	return key, sel.Sel.Name
}

func isLockType(t types.Type) bool {
	named := analysis.NamedType(t)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Pkg().Path() != "sync" {
		return false
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
		return true
	}
	return false
}

// expr walks an expression recording calls, channel receives,
// blocking waits and network I/O.
func (w *walker) expr(e ast.Expr, held map[string]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit:
			// A literal that is not invoked on the spot (call() handles
			// that case before descending here) is a callback: it runs
			// later, on whoever executes it, not inside this critical
			// section. Analyze it as a standalone root, like a go body.
			w.fnN++
			name := fmt.Sprintf("%s·fn%d", w.sum.name, w.fnN)
			sub := &fnSum{name: name}
			w.b.sums[name] = sub
			*w.b.order = append(*w.b.order, name)
			fw := &walker{b: w.b, sum: sub, locals: w.locals}
			fw.armed = fw.preArmed(v.Body)
			fw.stmts(v.Body.List, map[string]bool{})
			return false
		case *ast.UnaryExpr:
			if v.Op == token.ARROW {
				w.chanOp(v.X, v.Pos(), "channel receive", held)
			}
		case *ast.CallExpr:
			w.call(v, held)
			return false
		}
		return true
	})
}

// call records one call expression: blocking waits, network I/O, and
// resolvable callees; then walks its sub-expressions.
func (w *walker) call(call *ast.CallExpr, held map[string]bool) {
	info := w.b.u.Info
	if fl, ok := call.Fun.(*ast.FuncLit); ok {
		// Immediately-invoked literal: runs right here, inside the
		// current critical section.
		w.stmts(fl.Body.List, copyHeld(held))
		for _, arg := range call.Args {
			w.expr(arg, held)
		}
		return
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		recvT := info.TypeOf(sel.X)
		if sel.Sel.Name == "Wait" && recvT != nil && !w.isLocalOwned(sel.X) {
			if named := analysis.NamedType(recvT); named != nil && named.Obj().Pkg() != nil &&
				named.Obj().Pkg().Path() == "sync" {
				w.sum.blocks = append(w.sum.blocks, blockSite{
					pos: call.Pos(), kind: blockChan,
					desc: "sync." + named.Obj().Name() + ".Wait",
					held: heldSlice(held),
				})
			}
		}
		if !w.armed && w.b.netConn != nil && recvT != nil && analysis.Implements(recvT, w.b.netConn) {
			switch sel.Sel.Name {
			case "Read", "Write", "ReadFrom", "WriteTo":
				w.sum.blocks = append(w.sum.blocks, blockSite{
					pos: call.Pos(), kind: blockNet,
					desc: "net.Conn." + sel.Sel.Name + " with no deadline armed",
					held: heldSlice(held),
				})
			}
		}
	}

	// Conn-typed argument to a call we cannot resolve in-program:
	// treat as potential network I/O (io.ReadFull(conn, ...) etc.).
	callee := w.resolveCallee(call)
	if callee == "" && !w.armed && w.b.netConn != nil {
		for _, arg := range call.Args {
			t := info.TypeOf(arg)
			if t != nil && analysis.Implements(t, w.b.netConn) {
				if !isNetSafeCall(call) {
					w.sum.blocks = append(w.sum.blocks, blockSite{
						pos: call.Pos(), kind: blockNet,
						desc: "call passing a net.Conn with no deadline armed",
						held: heldSlice(held),
					})
				}
				break
			}
		}
	}
	if callee != "" {
		w.sum.calls = append(w.sum.calls, callSite{pos: call.Pos(), callee: callee, held: heldSlice(held), armed: w.armed})
	}

	w.expr(call.Fun, held)
	for _, arg := range call.Args {
		w.expr(arg, held)
	}
}

// isNetSafeCall exempts non-blocking conn uses passed as arguments.
func isNetSafeCall(call *ast.CallExpr) bool {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		switch sel.Sel.Name {
		case "Close", "LocalAddr", "RemoteAddr":
			return true
		}
		if isDeadlineName(sel.Sel.Name) {
			return true
		}
	}
	return false
}

// resolveCallee returns the callee's FullName when the call target is
// a concrete function or method in the program, "" otherwise
// (builtins, interface methods, function values).
func (w *walker) resolveCallee(call *ast.CallExpr) string {
	info := w.b.u.Info
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	default:
		return ""
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if recv := sig.Recv(); recv != nil {
		if _, isIface := recv.Type().Underlying().(*types.Interface); isIface {
			return ""
		}
	}
	return fn.FullName()
}

// fixpoint propagates transitive acquisitions and blocking facts over
// the call graph until stable.
func fixpoint(sums map[string]*fnSum, order []string) {
	for _, name := range order {
		f := sums[name]
		f.transAcq = map[string]string{}
		for _, a := range f.acquires {
			f.transAcq[a.lock] = ""
		}
		for _, b := range f.blocks {
			switch b.kind {
			case blockChan:
				if f.chanEv == nil {
					f.chanEv = &blockEv{desc: b.desc}
				}
			case blockNet:
				if f.netEv == nil {
					f.netEv = &blockEv{desc: b.desc}
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, name := range order {
			f := sums[name]
			for _, c := range f.calls {
				g := sums[c.callee]
				if g == nil {
					continue
				}
				for lock := range g.transAcq {
					if _, ok := f.transAcq[lock]; !ok {
						f.transAcq[lock] = c.callee
						changed = true
					}
				}
				if g.chanEv != nil && f.chanEv == nil {
					f.chanEv = extend(g.chanEv, c.callee)
					changed = true
				}
				// A deadline armed before the call bounds the
				// callee's network I/O, not its channel waits.
				if g.netEv != nil && f.netEv == nil && !c.armed {
					f.netEv = extend(g.netEv, c.callee)
					changed = true
				}
			}
		}
	}
}

func extend(ev *blockEv, via string) *blockEv {
	path := shorten(via)
	if ev.path != "" {
		path += " → " + ev.path
	}
	return &blockEv{desc: ev.desc, path: path}
}

// report emits diagnostics: blocking under a lock (direct channel ops
// and transitive closures through calls), then lock-order cycles.
func report(pass *analysis.ProgramPass, sums map[string]*fnSum, order []string) {
	edges := map[lockEdge]edgeEv{}
	addEdge := func(from, to string, ev edgeEv) {
		e := lockEdge{from, to}
		if _, ok := edges[e]; !ok {
			edges[e] = ev
		}
	}

	for _, name := range order {
		f := sums[name]
		for _, b := range f.blocks {
			// Direct network I/O under a lock is lockcheck's
			// diagnostic; lockgraph adds the channel side.
			if b.kind == blockChan && len(b.held) > 0 {
				pass.Reportf(b.pos, "unbounded %s while holding %s — a stalled peer parks this goroutine inside the critical section",
					b.desc, shortenAll(b.held))
			}
		}
		for _, c := range f.calls {
			g := sums[c.callee]
			if g == nil {
				continue
			}
			for _, h := range c.held {
				for lock := range g.transAcq {
					addEdge(h, lock, edgeEv{pos: c.pos, via: c.callee})
				}
			}
			if len(c.held) > 0 {
				if g.chanEv != nil {
					pass.Reportf(c.pos, "call to %s while holding %s reaches an unbounded %s%s",
						shorten(c.callee), shortenAll(c.held), g.chanEv.desc, viaSuffix(g.chanEv.path))
				}
				if g.netEv != nil && !c.armed {
					pass.Reportf(c.pos, "call to %s while holding %s reaches %s%s",
						shorten(c.callee), shortenAll(c.held), g.netEv.desc, viaSuffix(g.netEv.path))
				}
			}
		}
		for _, a := range f.acquires {
			for _, h := range a.held {
				addEdge(h, a.lock, edgeEv{pos: a.pos})
			}
		}
	}

	reportCycles(pass, edges)
}

func viaSuffix(path string) string {
	if path == "" {
		return ""
	}
	return " (via " + path + ")"
}

// reportCycles finds strongly connected components in the lock-order
// graph and reports each cycle once, with per-edge evidence.
func reportCycles(pass *analysis.ProgramPass, edges map[lockEdge]edgeEv) {
	adj := map[string][]string{}
	nodes := map[string]bool{}
	for e := range edges {
		adj[e.from] = append(adj[e.from], e.to)
		nodes[e.from], nodes[e.to] = true, true
	}
	var names []string
	for n := range nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, outs := range adj {
		sort.Strings(outs)
	}

	// Self-loops: recursive acquisition.
	for _, n := range names {
		if ev, ok := edges[lockEdge{n, n}]; ok {
			msg := fmt.Sprintf("lock %s acquired while already held — recursive acquisition of a Go mutex deadlocks", shorten(n))
			if ev.via != "" {
				msg += " (via " + shorten(ev.via) + ")"
			}
			pass.Reportf(ev.pos, "%s", msg)
		}
	}

	// Tarjan SCC, iterative over sorted nodes for determinism.
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0
	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, to := range adj[v] {
			if _, seen := index[to]; !seen {
				strongconnect(to)
				if low[to] < low[v] {
					low[v] = low[to]
				}
			} else if onStack[to] && index[to] < low[v] {
				low[v] = index[to]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			if len(scc) > 1 {
				sccs = append(sccs, scc)
			}
		}
	}
	for _, n := range names {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}

	for _, scc := range sccs {
		sort.Strings(scc)
		in := map[string]bool{}
		for _, n := range scc {
			in[n] = true
		}
		// Walk one cycle through the SCC for the message: follow
		// sorted adjacency restricted to the component.
		var parts []string
		var firstEv *edgeEv
		cur := scc[0]
		seen := map[string]bool{}
		for !seen[cur] {
			seen[cur] = true
			nextNode := ""
			for _, to := range adj[cur] {
				if in[to] && to != cur {
					nextNode = to
					break
				}
			}
			if nextNode == "" {
				break
			}
			ev := edges[lockEdge{cur, nextNode}]
			if firstEv == nil {
				evCopy := ev
				firstEv = &evCopy
			}
			detail := fmt.Sprintf("%s → %s at %s", shorten(cur), shorten(nextNode), pass.Fset.Position(ev.pos))
			if ev.via != "" {
				detail += " (via " + shorten(ev.via) + ")"
			}
			parts = append(parts, detail)
			cur = nextNode
		}
		if firstEv == nil {
			continue
		}
		pass.Reportf(firstEv.pos, "lock-order cycle among %s — concurrent goroutines taking these locks in different orders deadlock: %s",
			shortenAll(scc), strings.Join(parts, "; "))
	}
}

// shorten drops import-path directories from a lock key or function
// FullName for readability: "rmp/internal/store.Tiered.mu" →
// "store.Tiered.mu".
var pathDirs = regexp.MustCompile(`[\w.\-~]+/`)

func shorten(s string) string {
	return pathDirs.ReplaceAllString(s, "")
}

func shortenAll(keys []string) string {
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = shorten(k)
	}
	return strings.Join(out, ", ")
}
