package escapegate_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rmp/internal/analysis/escapegate"
)

// writeModule lays out a throwaway module with one hotpath function
// that allocates (the returned slice escapes) and one cold function
// that also allocates but is not gated.
func writeModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module escfix\n\ngo 1.24\n",
		"esc.go": `package escfix

// Grab allocates; it is gated.
//
//rmpvet:hotpath
func Grab(n int) []byte {
	return make([]byte, n)
}

// Cold allocates too, but nobody marked it.
func Cold(n int) []byte {
	return make([]byte, n)
}
`,
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestGateCatchesHotpathAllocation(t *testing.T) {
	dir := writeModule(t)
	diags, err := escapegate.Check(dir, []string{"."}, escapegate.DefaultBaseline)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	d := diags[0]
	if !strings.Contains(d.Message, "hotpath Grab heap-allocates") {
		t.Errorf("unexpected message: %s", d.Message)
	}
	if !strings.Contains(d.Message, "make([]byte, n)") {
		t.Errorf("message does not name the allocation: %s", d.Message)
	}
	if filepath.Base(d.Pos.Filename) != "esc.go" || d.Pos.Line == 0 {
		t.Errorf("bad position: %v", d.Pos)
	}
}

func TestBaselineSilencesReviewedEscape(t *testing.T) {
	dir := writeModule(t)
	baseline := "# reviewed\nGrab: make([]byte, n) escapes to heap\n"
	if err := os.WriteFile(filepath.Join(dir, escapegate.DefaultBaseline), []byte(baseline), 0o644); err != nil {
		t.Fatal(err)
	}
	diags, err := escapegate.Check(dir, []string{"."}, escapegate.DefaultBaseline)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("baseline not honored, got: %v", diags)
	}
}

// TestRepoHotpathsClean is the repository's own allocation gate: the
// RS coder, the frame encoder, the mux writer/dispatcher, and the
// store accessors must produce no escapes beyond the committed
// baseline.
func TestRepoHotpathsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the whole tree")
	}
	root, err := filepath.Abs("../../..")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := escapegate.Check(root, []string{"./..."}, escapegate.DefaultBaseline)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
