// Package escapegate is the compiler-backed allocation gate for the
// paging fast path. Syntax-level analyzers cannot prove "this
// function does not heap-allocate" — escape analysis is a whole-
// compiler question — so the gate asks the compiler itself: it
// builds the packages under -gcflags='-m -m', parses the escape
// diagnostics, and fails if any lands inside a function marked
//
//	//rmpvet:hotpath
//
// in its doc comment. The hot path here is the 4 KB page-fault cycle
// the paper's numbers live and die by: RS parity arithmetic, frame
// encode into the mux batch writer, demux dispatch, and the hot-tier
// store accessors. One stray allocation per frame turns into GC
// pressure exactly when the pager is evicting because memory is
// scarce.
//
// Escapes that are inherent to an API (Decode returning a fresh
// payload) live in a committed, reviewed baseline file, one entry per
// line:
//
//	<funcname>: <compiler message>
//
// where funcname is the receiver-qualified name (e.g. (*Conn).
// dispatch) and the message is the compiler's text with positions
// stripped. '#' starts a comment. An escape in the baseline is
// tolerated; anything else fails the gate. Adding a baseline entry is
// a reviewed act: the diff to the file is the review trail.
package escapegate

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"rmp/internal/analysis"
)

// Doc describes the gate for rmpvet -list.
const Doc = "compile with -gcflags='-m -m' and reject heap allocations in //rmpvet:hotpath functions (modulo the reviewed baseline)"

// DefaultBaseline is the committed allow-list path, relative to the
// directory rmpvet runs in.
const DefaultBaseline = ".rmpvet-escapes"

// hotFunc is one //rmpvet:hotpath-marked function body.
type hotFunc struct {
	name      string // receiver-qualified: (*Conn).dispatch, AppendFrame
	file      string // absolute path
	from, to  int    // body line range, inclusive
	importPat string
}

// escLine matches one compiler diagnostic: file:line:col: message.
var escLine = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// Check compiles the packages matching patterns under dir with
// -gcflags='-m -m' and returns a diagnostic for every heap escape
// inside a hotpath function that the baseline does not cover.
func Check(dir string, patterns []string, baseline string) ([]analysis.Diagnostic, error) {
	hots, err := hotFuncs(dir, patterns)
	if err != nil {
		return nil, err
	}
	if len(hots) == 0 {
		return nil, nil
	}

	allowed, err := readBaseline(filepath.Join(dir, baseline))
	if err != nil {
		return nil, err
	}

	args := append([]string{"build", "-gcflags=-m -m"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	runErr := cmd.Run()

	var diags []analysis.Diagnostic
	sawAny := false
	dup := map[string]bool{}
	for _, line := range strings.Split(out.String(), "\n") {
		m := escLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		sawAny = true
		// At -m -m the compiler prints each escape twice: once bare
		// and once with a trailing colon introducing the flow trace.
		msg := strings.TrimSuffix(m[4], ":")
		if !isHeapEscape(msg) {
			continue
		}
		if key := m[1] + ":" + m[2] + ":" + m[3] + ":" + msg; dup[key] {
			continue
		} else {
			dup[key] = true
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(dir, file)
		}
		lineNo := atoi(m[2])
		fn := enclosing(hots, file, lineNo)
		if fn == nil {
			continue
		}
		if allowed[fn.name+": "+msg] {
			continue
		}
		diags = append(diags, analysis.Diagnostic{
			Pos:      token.Position{Filename: m[1], Line: lineNo, Column: atoi(m[3])},
			Analyzer: "escapegate",
			Message: fmt.Sprintf("hotpath %s heap-allocates: %s (reviewed escapes belong in %s)",
				fn.name, msg, baseline),
		})
	}
	if runErr != nil && !sawAny {
		// The build itself failed (not just chatty diagnostics).
		return nil, fmt.Errorf("go build: %w\n%s", runErr, out.String())
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags, nil
}

// isHeapEscape recognizes the -m diagnostics that mean "this
// expression allocated on the heap": escapes and stack-to-heap
// moves, but not the negative "does not escape" notes.
func isHeapEscape(msg string) bool {
	if strings.Contains(msg, "does not escape") {
		return false
	}
	return strings.Contains(msg, "escapes to heap") || strings.Contains(msg, "moved to heap")
}

// hotFuncs parses the source of every package matching patterns and
// returns the //rmpvet:hotpath-marked function bodies.
func hotFuncs(dir string, patterns []string) ([]*hotFunc, error) {
	dirs, err := packageDirs(dir, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var hots []*hotFunc
	for _, pdir := range dirs {
		entries, err := os.ReadDir(pdir)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			path := filepath.Join(pdir, e.Name())
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !isHotpath(fd.Doc) {
					continue
				}
				hots = append(hots, &hotFunc{
					name: funcName(fd),
					file: path,
					from: fset.Position(fd.Pos()).Line,
					to:   fset.Position(fd.Body.Rbrace).Line,
				})
			}
		}
	}
	return hots, nil
}

// isHotpath reports whether a doc comment carries the hotpath
// directive.
func isHotpath(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == "//rmpvet:hotpath" {
			return true
		}
	}
	return false
}

// funcName renders the receiver-qualified name used in baseline
// entries: AppendFrame, (*Conn).dispatch, (Code).K.
func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	return "(" + typeText(fd.Recv.List[0].Type) + ")." + fd.Name.Name
}

// typeText renders a receiver type expression (*Conn, Code, P[T]).
func typeText(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.StarExpr:
		return "*" + typeText(v.X)
	case *ast.IndexExpr:
		return typeText(v.X)
	case *ast.IndexListExpr:
		return typeText(v.X)
	}
	return ""
}

// enclosing finds the hotpath function containing file:line.
func enclosing(hots []*hotFunc, file string, line int) *hotFunc {
	for _, h := range hots {
		if h.file == file && line >= h.from && line <= h.to {
			return h
		}
	}
	return nil
}

// packageDirs expands patterns to package directories via go list.
func packageDirs(dir string, patterns []string) ([]string, error) {
	args := append([]string{"list", "-e", "-f", "{{.Dir}}"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %w", err)
	}
	var dirs []string
	for _, l := range strings.Split(string(out), "\n") {
		if l = strings.TrimSpace(l); l != "" {
			dirs = append(dirs, l)
		}
	}
	return dirs, nil
}

// readBaseline loads the reviewed allow-list; a missing file is an
// empty baseline.
func readBaseline(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	allowed := map[string]bool{}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		allowed[line] = true
	}
	return allowed, nil
}

func atoi(s string) int {
	n := 0
	for _, c := range s {
		n = n*10 + int(c-'0')
	}
	return n
}
