// Package lifecycle checks that goroutines cannot leak: any `go`
// statement whose body runs an unbounded loop must have a visible
// cancellation path. Accepted evidence, in the spirit of the
// codebase's conventions:
//
//   - a receive from (or select on) a non-ticker channel — the
//     stop/kick/done channel pattern;
//   - a read of a boolean field or method whose name signals
//     shutdown (closed, draining, stopped, ...);
//   - use of a context.Context (ctx.Done() et al.);
//   - blocking on Accept/Read of a net.Listener/net.Conn — closing
//     the connection is the cancellation, which is how every
//     session, relay, and accept loop here shuts down.
//
// Straight-line goroutines (no loop) terminate by themselves and
// pass. When the go statement calls a named function, that function's
// body is inspected if it is declared in the same package; calls into
// other packages are assumed bounded.
//
// Why this matters here: the pager spawns heartbeat probers, a
// rebalance ticker, a registry watcher, and a re-protection worker;
// the server spawns a session per connection. A worker with no stop
// path outlives Close, keeps a *Pager alive, and — worse — keeps
// mutating shared state during shutdown. PR 1's background workers
// all follow the stop-channel discipline; this analyzer keeps it that
// way.
package lifecycle

import (
	"go/ast"
	"go/types"
	"regexp"

	"rmp/internal/analysis"
)

// Analyzer is the lifecycle check with default settings.
var Analyzer = NewAnalyzer(false)

// NewAnalyzer builds the lifecycle check. With requireRecover, every
// goroutine body must also install a deferred recover handler —
// stricter than this repo's convention (a paging daemon should crash
// loudly, not swallow panics), so rmpvet gates it behind
// -strict-lifecycle.
func NewAnalyzer(requireRecover bool) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "lifecycle",
		Doc:  "goroutines running unbounded loops must be cancellable (ctx, stop channel, closed flag, or closable conn)",
	}
	a.Run = func(pass *analysis.Pass) error {
		return run(pass, a, requireRecover)
	}
	return a
}

// shutdownName matches identifiers whose read signals a shutdown
// check (fields, methods, channels).
var shutdownName = regexp.MustCompile(`(?i)^(stop|stopped|stopping|done|quit|exit|halt|shutdown|shutting|closed|closing|drain|draining|cancel|cancelled|canceled|kill)`)

func run(pass *analysis.Pass, a *analysis.Analyzer, requireRecover bool) error {
	// Index this package's function declarations so `go s.loop()` can
	// be traced into loop's body.
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
					decls[obj] = fd
				}
			}
		}
	}
	netConn := analysis.LookupIface(pass.Pkg, "net", "Conn")
	listener := analysis.LookupIface(pass.Pkg, "net", "Listener")

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := goBody(pass, gs, decls)
			if body == nil {
				return true // callee in another package; assume bounded
			}
			if requireRecover && !hasRecover(body) {
				pass.Reportf(gs.Pos(), "goroutine has no deferred recover handler")
			}
			if !hasLoop(body) {
				return true // straight-line goroutine; terminates by itself
			}
			if cancellable(pass, body, netConn, listener) {
				return true
			}
			pass.Reportf(gs.Pos(), "goroutine runs an unbounded loop with no cancellation path (ctx, stop channel, closed flag, or closable conn)")
			return true
		})
	}
	return nil
}

// goBody resolves the statement list a go statement executes: the
// function literal's body, or the body of a same-package named
// function/method.
func goBody(pass *analysis.Pass, gs *ast.GoStmt, decls map[*types.Func]*ast.FuncDecl) *ast.BlockStmt {
	switch fun := gs.Call.Fun.(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if obj, ok := pass.Info.Uses[fun].(*types.Func); ok {
			if fd := decls[obj]; fd != nil {
				return fd.Body
			}
		}
	case *ast.SelectorExpr:
		if obj, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok {
			if fd := decls[obj]; fd != nil {
				return fd.Body
			}
		}
	}
	return nil
}

// hasLoop reports whether body contains any for/range statement,
// not descending into nested function literals (their goroutines are
// analyzed at their own go statements; inline closures with loops
// still count via ast.Inspect... they run on this goroutine).
func hasLoop(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			found = true
		}
		return !found
	})
	return found
}

// hasRecover reports whether body installs a deferred recover: either
// `defer func() { ... recover() ... }()` or a deferred call to a
// function whose name mentions recover.
func hasRecover(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return !found
		}
		switch fun := d.Call.Fun.(type) {
		case *ast.FuncLit:
			ast.Inspect(fun.Body, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "recover" {
						found = true
					}
				}
				return !found
			})
		case *ast.Ident:
			if shutdownOrRecoverName(fun.Name) {
				found = true
			}
		case *ast.SelectorExpr:
			if shutdownOrRecoverName(fun.Sel.Name) {
				found = true
			}
		}
		return !found
	})
	return found
}

var recoverName = regexp.MustCompile(`(?i)recover`)

func shutdownOrRecoverName(name string) bool { return recoverName.MatchString(name) }

// cancellable scans body for any accepted cancellation evidence.
func cancellable(pass *analysis.Pass, body *ast.BlockStmt, netConn, listener *types.Interface) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch v := n.(type) {
		case *ast.UnaryExpr:
			// <-ch from anything that is not a time.Ticker/time.After
			// channel counts as waiting on a signal.
			if v.Op.String() == "<-" && !isTimeChan(pass, v.X) {
				found = true
			}
		case *ast.RangeStmt:
			// ranging over a channel ends when the channel closes.
			if tv, ok := pass.Info.Types[v.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan && !isTimeChan(pass, v.X) {
					found = true
				}
			}
		case *ast.Ident:
			if obj := pass.Info.Uses[v]; obj != nil {
				if isContext(obj.Type()) {
					found = true
				}
			}
			if shutdownName.MatchString(v.Name) && pass.Info.Uses[v] != nil {
				found = true
			}
		case *ast.SelectorExpr:
			if shutdownName.MatchString(v.Sel.Name) {
				found = true
			}
		case *ast.CallExpr:
			// Blocking on Accept/Read of a closable listener/conn.
			if sel, ok := v.Fun.(*ast.SelectorExpr); ok {
				name := sel.Sel.Name
				if name == "Accept" || name == "Read" || name == "ReadFull" || name == "Decode" {
					if tv, ok := pass.Info.Types[sel.X]; ok &&
						(analysis.Implements(tv.Type, netConn) || analysis.Implements(tv.Type, listener)) {
						found = true
					}
				}
			}
			// Or a helper that reads frames from a conn argument
			// (wire.Decode(conn), io.ReadFull(conn, ...)).
			for _, arg := range v.Args {
				if tv, ok := pass.Info.Types[arg]; ok && analysis.Implements(tv.Type, netConn) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// isTimeChan reports whether e is a channel sourced from the time
// package (ticker.C, time.After(...)) — periodic wakeups, not
// cancellation.
func isTimeChan(pass *analysis.Pass, e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.SelectorExpr:
		if tv, ok := pass.Info.Types[v.X]; ok {
			if named := analysis.NamedType(tv.Type); named != nil && named.Obj().Pkg() != nil {
				return named.Obj().Pkg().Path() == "time"
			}
		}
	case *ast.CallExpr:
		if sel, ok := v.Fun.(*ast.SelectorExpr); ok {
			if obj, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok && obj.Pkg() != nil {
				return obj.Pkg().Path() == "time"
			}
		}
	}
	return false
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	named := analysis.NamedType(t)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}
