package lifecycle_test

import (
	"testing"

	"rmp/internal/analysis/analysistest"
	"rmp/internal/analysis/lifecycle"
)

func TestLifecycle(t *testing.T) {
	analysistest.Run(t, ".", lifecycle.Analyzer, "a")
}

func TestLifecycleStrict(t *testing.T) {
	analysistest.Run(t, ".", lifecycle.NewAnalyzer(true), "strict")
}
