// Package strict exercises the -strict-lifecycle recover rule.
package strict

func fire(f func()) {
	go func() { // want "no deferred recover handler"
		f()
	}()
}

func guarded(f func()) {
	go func() {
		defer func() {
			_ = recover()
		}()
		f()
	}()
}
