// Package a is the lifecycle fixture.
package a

import (
	"context"
	"net"
	"time"
)

type worker struct {
	stop chan struct{}
	kick chan struct{}
}

func (w *worker) leak() {
	go func() { // want "unbounded loop with no cancellation path"
		for {
			time.Sleep(time.Millisecond)
		}
	}()
}

func (w *worker) tickerOnly() {
	go func() { // want "unbounded loop"
		t := time.NewTicker(time.Second)
		for range t.C {
			work()
		}
	}()
}

func (w *worker) stopChannel() {
	go func() {
		for {
			select {
			case <-w.stop:
				return
			case <-w.kick:
				work()
			}
		}
	}()
}

func (w *worker) contextual(ctx context.Context) {
	go func() {
		for {
			if ctx.Err() != nil {
				return
			}
			work()
		}
	}()
}

func relay(c net.Conn) {
	go func() {
		buf := make([]byte, 16)
		for {
			if _, err := c.Read(buf); err != nil {
				return
			}
		}
	}()
}

func straightLine(f func()) {
	go func() {
		f()
	}()
}

func (w *worker) spawnNamedGood() {
	go w.loop()
}

func (w *worker) loop() {
	for {
		select {
		case <-w.stop:
			return
		}
	}
}

func (w *worker) spawnNamedBad() {
	go w.spin() // want "unbounded loop"
}

func (w *worker) spin() {
	n := 0
	for {
		n++
	}
}

func work() {}
