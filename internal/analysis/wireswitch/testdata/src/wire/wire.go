// Package wire is a miniature stand-in for the real protocol package:
// the analyzer matches any package named wire with a Type enum.
package wire

// Type is the message opcode.
type Type uint8

// Opcodes.
const (
	THello   Type = 1
	TPageOut Type = 2
	TPageIn  Type = 3
)

// notAnOpcode has a different type and must not count.
const notAnOpcode uint8 = 9
