// Package a is the wireswitch fixture.
package a

import "wire"

func missing(t wire.Type) string {
	switch t { // want "not exhaustive and has no default: missing THello"
	case wire.TPageOut:
		return "out"
	case wire.TPageIn:
		return "in"
	}
	return ""
}

func defaulted(t wire.Type) string {
	switch t {
	case wire.TPageOut:
		return "out"
	default:
		return "?"
	}
}

func exhaustive(t wire.Type) string {
	switch t {
	case wire.THello, wire.TPageOut:
		return "a"
	case wire.TPageIn:
		return "b"
	}
	return ""
}

func unrelated(n int) int {
	switch n {
	case 1:
		return 1
	}
	return 0
}
