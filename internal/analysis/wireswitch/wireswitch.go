// Package wireswitch checks that every switch over the protocol
// opcode type (a type named Type declared in a package named wire) is
// exhaustive over all of that package's opcode constants or carries
// an explicit default clause.
//
// Why this matters here: both membership (PING/PONG/JOIN/DRAIN) and
// the bounded data path added opcodes after the seed. A server or
// trace decoder whose switch silently falls through for a new opcode
// drops messages without any error — the exact failure mode the
// paper's request/response framing cannot tolerate. The compiler does
// not check switch exhaustiveness; this analyzer does.
package wireswitch

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"rmp/internal/analysis"
)

// Analyzer is the wireswitch check.
var Analyzer = &analysis.Analyzer{
	Name: "wireswitch",
	Doc:  "switches over wire.Type must cover every opcode or have a default clause",
	Run:  run,
}

// opcodePkgName and opcodeTypeName identify the protocol enum. The
// match is by package name rather than full import path so the
// analyzer also fires on the analysistest fixtures' fake wire
// package.
const (
	opcodePkgName  = "wire"
	opcodeTypeName = "Type"
)

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tv, ok := pass.Info.Types[sw.Tag]
			if !ok {
				return true
			}
			named := analysis.NamedType(tv.Type)
			if named == nil || named.Obj().Name() != opcodeTypeName {
				return true
			}
			declPkg := named.Obj().Pkg()
			if declPkg == nil || declPkg.Name() != opcodePkgName {
				return true
			}

			all := opcodeConstants(declPkg, named)
			if len(all) == 0 {
				return true
			}
			covered := make(map[string]bool)
			hasDefault := false
			for _, clause := range sw.Body.List {
				cc, ok := clause.(*ast.CaseClause)
				if !ok {
					continue
				}
				if cc.List == nil {
					hasDefault = true
					continue
				}
				for _, e := range cc.List {
					if obj := constObj(pass, e); obj != nil {
						covered[obj.Name()] = true
					}
				}
			}
			if hasDefault {
				return true
			}
			var missing []string
			for _, name := range all {
				if !covered[name] {
					missing = append(missing, name)
				}
			}
			if len(missing) > 0 {
				pass.Reportf(sw.Pos(), "switch over %s.%s is not exhaustive and has no default: missing %s",
					opcodePkgName, opcodeTypeName, strings.Join(missing, ", "))
			}
			return true
		})
	}
	return nil
}

// opcodeConstants lists the exported constants of exactly type named
// declared in pkg, sorted by constant value so diagnostics read in
// protocol order.
func opcodeConstants(pkg *types.Package, named *types.Named) []string {
	type c struct {
		name  string
		order string
	}
	var consts []c
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		obj, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(obj.Type(), named) {
			continue
		}
		consts = append(consts, c{name: name, order: fmt.Sprintf("%020s", obj.Val().ExactString())})
	}
	sort.Slice(consts, func(i, j int) bool { return consts[i].order < consts[j].order })
	out := make([]string, len(consts))
	for i, cc := range consts {
		out[i] = cc.name
	}
	return out
}

// constObj resolves a case expression to the constant object it
// names, through plain identifiers and pkg.Name selectors.
func constObj(pass *analysis.Pass, e ast.Expr) *types.Const {
	switch v := e.(type) {
	case *ast.Ident:
		if obj, ok := pass.Info.Uses[v].(*types.Const); ok {
			return obj
		}
	case *ast.SelectorExpr:
		if obj, ok := pass.Info.Uses[v.Sel].(*types.Const); ok {
			return obj
		}
	}
	return nil
}
