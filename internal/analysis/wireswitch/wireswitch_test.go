package wireswitch_test

import (
	"testing"

	"rmp/internal/analysis/analysistest"
	"rmp/internal/analysis/wireswitch"
)

func TestWireswitch(t *testing.T) {
	analysistest.Run(t, ".", wireswitch.Analyzer, "a")
}
