// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against "// want" comments — a stdlib-only
// miniature of golang.org/x/tools/go/analysis/analysistest.
//
// Fixture layout, relative to the analyzer's package directory:
//
//	testdata/src/<pkg>/*.go
//
// A fixture file marks expected diagnostics on the line they occur:
//
//	p.count++ // want "without holding the lock"
//
// The quoted string is a regular expression matched against the
// diagnostic message. Every want must be matched by a diagnostic on
// its line, and every diagnostic must be claimed by a want; anything
// else fails the test. Fixture packages may import other fixture
// packages by bare name (e.g. a fake "wire") and standard-library
// packages, which are resolved from the real build cache.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"testing"

	"rmp/internal/analysis"
	"rmp/internal/analysis/load"
)

// Run analyzes the fixture package at testdata/src/<pkg> under dir
// and compares diagnostics with the fixture's want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkg string) {
	t.Helper()
	fset := token.NewFileSet()
	root := filepath.Join(dir, "testdata", "src")

	target, deps, err := loadFixtures(fset, root, pkg)
	if err != nil {
		t.Fatal(err)
	}

	imp, err := newFixtureImporter(fset, root, deps)
	if err != nil {
		t.Fatal(err)
	}
	info := load.NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkg, fset, target, info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", pkg, err)
	}

	diags, err := analysis.Run([]*analysis.Analyzer{a}, fset, target, tpkg, info)
	if err != nil {
		t.Fatal(err)
	}

	wants := collectWants(t, fset, target)
	checkDiagnostics(t, diags, wants)
}

// RunProgram analyzes the fixture packages at testdata/src/<pkg>
// under dir as one whole program and compares diagnostics against the
// want comments collected across every listed package. Every fixture
// package the program uses must be listed, dependencies before their
// importers; one shared importer keeps package identity (fixture and
// stdlib alike) consistent across the whole program.
func RunProgram(t *testing.T, dir string, a *analysis.ProgramAnalyzer, pkgs ...string) {
	t.Helper()
	fset := token.NewFileSet()
	root := filepath.Join(dir, "testdata", "src")

	imp, err := newFixtureImporter(fset, root, nil)
	if err != nil {
		t.Fatal(err)
	}
	var units []*analysis.Unit
	var allFiles []*ast.File
	for _, pkg := range pkgs {
		target, _, err := loadFixtures(fset, root, pkg)
		if err != nil {
			t.Fatal(err)
		}
		info := load.NewInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(pkg, fset, target, info)
		if err != nil {
			t.Fatalf("type-checking fixture %s: %v", pkg, err)
		}
		imp.local[pkg] = tpkg
		units = append(units, &analysis.Unit{ImportPath: pkg, Files: target, Pkg: tpkg, Info: info})
		allFiles = append(allFiles, target...)
	}

	diags, err := analysis.RunProgram([]*analysis.ProgramAnalyzer{a}, fset, units)
	if err != nil {
		t.Fatal(err)
	}

	wants := collectWants(t, fset, allFiles)
	checkDiagnostics(t, diags, wants)
}

// loadFixtures parses the target fixture package and records which
// sibling fixture packages it imports.
func loadFixtures(fset *token.FileSet, root, pkg string) (files []*ast.File, deps []string, err error) {
	dir := filepath.Join(root, pkg)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("fixture package %s: %w", pkg, err)
	}
	seen := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			if !seen[path] {
				seen[path] = true
				if _, statErr := os.Stat(filepath.Join(root, path)); statErr == nil {
					deps = append(deps, path)
				}
			}
		}
	}
	if len(files) == 0 {
		return nil, nil, fmt.Errorf("fixture package %s has no Go files", pkg)
	}
	sort.Strings(deps)
	return files, deps, nil
}

// fixtureImporter resolves sibling fixture packages from source and
// everything else from the real build cache's export data.
type fixtureImporter struct {
	fset  *token.FileSet
	root  string
	local map[string]*types.Package
	std   types.Importer
}

func newFixtureImporter(fset *token.FileSet, root string, deps []string) (*fixtureImporter, error) {
	i := &fixtureImporter{fset: fset, root: root, local: map[string]*types.Package{}}

	// Pre-check the sibling fixtures so their own stdlib imports are
	// known before building the fallback importer.
	var stdPaths []string
	collect := func(files []*ast.File) {
		for _, f := range files {
			for _, imp := range f.Imports {
				p, _ := strconv.Unquote(imp.Path.Value)
				if _, err := os.Stat(filepath.Join(root, p)); err != nil {
					stdPaths = append(stdPaths, p)
				}
			}
		}
	}
	parsed := map[string][]*ast.File{}
	for _, dep := range deps {
		files, _, err := loadFixtures(fset, root, dep)
		if err != nil {
			return nil, err
		}
		parsed[dep] = files
		collect(files)
	}

	// The target package's stdlib imports also need export data; the
	// cheap superset is "everything the fixtures could use" — list the
	// whole fixture tree.
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(path) != ".go" {
			return err
		}
		f, perr := parser.ParseFile(token.NewFileSet(), path, nil, parser.ImportsOnly)
		if perr != nil {
			return perr
		}
		for _, imp := range f.Imports {
			p, _ := strconv.Unquote(imp.Path.Value)
			if _, serr := os.Stat(filepath.Join(root, p)); serr != nil {
				stdPaths = append(stdPaths, p)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	repoRoot, err := moduleRoot()
	if err != nil {
		return nil, err
	}
	exports, err := load.ExportLookup(repoRoot, dedup(stdPaths))
	if err != nil {
		return nil, err
	}
	i.std = importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	})

	// Type-check sibling fixtures (they may import each other; deps is
	// sorted, and fixtures are kept simple enough for one pass each).
	for _, dep := range deps {
		info := load.NewInfo()
		conf := types.Config{Importer: i}
		pkg, err := conf.Check(dep, fset, parsed[dep], info)
		if err != nil {
			return nil, fmt.Errorf("type-checking fixture dep %s: %w", dep, err)
		}
		i.local[dep] = pkg
	}
	return i, nil
}

func (i *fixtureImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := i.local[path]; ok {
		return pkg, nil
	}
	return i.std.Import(path)
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

func dedup(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}

// want is one expected diagnostic.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// wantComment matches `// want "regex"`.
var wantComment = regexp.MustCompile(`//\s*want\s+("(?:[^"\\]|\\.)*")`)

// collectWants extracts want expectations from fixture comments.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantComment.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pattern, err := strconv.Unquote(m[1])
				if err != nil {
					t.Fatalf("bad want string %s: %v", m[1], err)
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", pattern, err)
				}
				pos := fset.Position(c.Pos())
				wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return wants
}

// checkDiagnostics matches diagnostics against wants 1:1 by line.
func checkDiagnostics(t *testing.T, diags []analysis.Diagnostic, wants []*want) {
	t.Helper()
	for _, d := range diags {
		claimed := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.matched = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}
