// Whole-program analysis support. A ProgramAnalyzer sees every loaded
// package at once instead of one package per pass — the shape needed
// by checks whose facts cross package boundaries, like the repo-wide
// lock-acquisition graph (lockgraph), where a client function holding
// a mutex can reach a blocking operation three calls away in another
// package.
//
// Cross-package identity: a target package type-checked from source
// and the same package seen through export data by its importers do
// NOT share types.Object identity. Whole-program analyzers therefore
// key functions and locks by stable strings — types.Func.FullName()
// for functions ("(*rmp/internal/store.Tiered).Get") and
// "pkgpath.Type.field" for locks — never by object pointer.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// ProgramAnalyzer is one named check over the whole loaded program.
type ProgramAnalyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// rmpvet:allow directives.
	Name string
	// Doc is a one-paragraph description (shown by rmpvet -list).
	Doc string
	// Run performs the check, reporting findings via prog.Reportf.
	Run func(prog *ProgramPass) error
}

// Unit is one type-checked package inside a ProgramPass.
type Unit struct {
	ImportPath string
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// ProgramPass carries every loaded package through one program
// analyzer.
type ProgramPass struct {
	Analyzer *ProgramAnalyzer
	Fset     *token.FileSet
	Units    []*Unit

	// report receives diagnostics; installed by the driver.
	report func(Diagnostic)

	// allow maps filename -> lines suppressed for this analyzer,
	// collected across every unit's files. Built lazily.
	allow map[string]map[int]bool
}

// Reportf records a finding at pos unless an rmpvet:allow directive
// suppresses this analyzer on that line.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allow == nil {
		p.allow = make(map[string]map[int]bool)
		for _, u := range p.Units {
			collectAllows(p.Fset, u.Files, p.Analyzer.Name, p.allow)
		}
	}
	if p.allow[position.Filename][position.Line] {
		return
	}
	p.report(Diagnostic{Pos: position, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// collectAllows records, into out, the suppressed lines (the
// directive's line and the line below) of every rmpvet:allow comment
// naming analyzer in files.
func collectAllows(fset *token.FileSet, files []*ast.File, analyzer string, out map[string]map[int]bool) {
	for _, f := range files {
		fname := fset.Position(f.Pos()).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !allowNames(c.Text, analyzer) {
					continue
				}
				lines := out[fname]
				if lines == nil {
					lines = make(map[int]bool)
					out[fname] = lines
				}
				line := fset.Position(c.Pos()).Line
				lines[line] = true
				lines[line+1] = true
			}
		}
	}
}

// RunProgram executes each whole-program analyzer over the loaded
// units, returning all diagnostics sorted by position. Duplicate
// diagnostics (same position, analyzer, and message — e.g. one
// blocking callee reachable through two recorded call forms) are
// collapsed.
func RunProgram(analyzers []*ProgramAnalyzer, fset *token.FileSet, units []*Unit) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &ProgramPass{
			Analyzer: a,
			Fset:     fset,
			Units:    units,
			report:   func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Message < diags[j].Message
	})
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out, nil
}
