package analysis_test

import (
	"os"
	"path/filepath"
	"testing"

	"rmp/internal/analysis"
	"rmp/internal/analysis/errwrap"
	"rmp/internal/analysis/goleak"
	"rmp/internal/analysis/lifecycle"
	"rmp/internal/analysis/load"
	"rmp/internal/analysis/lockcheck"
	"rmp/internal/analysis/lockgraph"
	"rmp/internal/analysis/wireswitch"
)

// TestRepoClean runs every rmpvet analyzer over the repository itself
// and requires zero findings: the invariants the analyzers encode are
// not aspirational, the tree actually satisfies them. A regression
// here means either a real bug (fix the code) or a new intentional
// exception (annotate it with rmpvet:allow / rmpvet:holds and a
// reason).
func TestRepoClean(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, fset, err := load.Packages(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	analyzers := []*analysis.Analyzer{
		lockcheck.Analyzer,
		wireswitch.Analyzer,
		errwrap.Analyzer,
		lifecycle.Analyzer,
	}
	for _, pkg := range pkgs {
		diags, err := analysis.Run(analyzers, fset, pkg.Files, pkg.Pkg, pkg.Info)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}

	// The whole-program passes see every package at once: lock-order
	// cycles and goroutine ownership cross package boundaries.
	units := make([]*analysis.Unit, len(pkgs))
	for i, pkg := range pkgs {
		units[i] = &analysis.Unit{ImportPath: pkg.ImportPath, Files: pkg.Files, Pkg: pkg.Pkg, Info: pkg.Info}
	}
	diags, err := analysis.RunProgram([]*analysis.ProgramAnalyzer{
		lockgraph.Analyzer,
		goleak.Analyzer,
	}, fset, units)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
