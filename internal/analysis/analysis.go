// Package analysis is rmpvet's minimal static-analysis framework: a
// stdlib-only reimplementation of the golang.org/x/tools/go/analysis
// API shape (Analyzer, Pass, Diagnostic) sized for this repository.
// The x/tools module is deliberately not a dependency — the repo
// builds with the standard library alone — so the framework loads
// packages itself (see the load sub-package) and hands each analyzer
// a fully type-checked package.
//
// The four analyzers under this package mechanically enforce the
// invariants the paper's reliability argument rests on but the Go
// compiler cannot see:
//
//   - lockcheck: fields documented "guarded by <mu>" are only touched
//     with that mutex held, and no blocking network I/O runs under a
//     mutex without a wire deadline armed first.
//   - wireswitch: every switch over wire.Type handles all opcodes or
//     has an explicit default, so new message types cannot be dropped
//     silently.
//   - errwrap: fmt.Errorf never flattens an error value with %v/%s —
//     sentinels like ErrReqTimeout must survive wrapping (%w) for the
//     retry/breaker fault classification to work.
//   - lifecycle: every goroutine that runs an unbounded loop has a
//     cancellation path (ctx, stop channel, closed flag, or a
//     closable connection it blocks on), so components cannot leak
//     workers.
//
// Two source directives tune the analyzers:
//
//	//rmpvet:allow <analyzer>[,<analyzer>...] [reason]
//	    on (or immediately above) a line suppresses that analyzer's
//	    diagnostics for the line.
//	//rmpvet:holds <Type>.<mu>[, <Type>.<mu>...]
//	    in a function's (or its receiver type's) doc comment asserts
//	    the caller already holds the named lock; lockcheck treats the
//	    lock as held throughout the function (or every method).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// rmpvet:allow directives.
	Name string
	// Doc is a one-paragraph description (shown by rmpvet -help).
	Doc string
	// Run performs the check, reporting findings via pass.Reportf.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// report receives diagnostics; installed by the driver.
	report func(Diagnostic)

	// allow maps filename -> set of lines carrying an
	// "rmpvet:allow <name>" directive for this analyzer (the
	// directive's own line and the line below it). Built lazily.
	allow map[string]map[int]bool
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos unless an rmpvet:allow directive
// suppresses this analyzer on that line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.allowedAt(position) {
		return
	}
	p.report(Diagnostic{Pos: position, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// allowDirective matches "rmpvet:allow name1,name2 optional reason".
var allowDirective = regexp.MustCompile(`^//\s*rmpvet:allow\s+([\w,\s]+?)(?:\s+--.*)?$`)

// allowNames reports whether the comment text is an rmpvet:allow
// directive naming analyzer.
func allowNames(text, analyzer string) bool {
	m := allowDirective.FindStringSubmatch(text)
	if m == nil {
		return false
	}
	for _, n := range strings.FieldsFunc(m[1], func(r rune) bool { return r == ',' || r == ' ' || r == '\t' }) {
		if n == analyzer {
			return true
		}
	}
	return false
}

func (p *Pass) allowedAt(pos token.Position) bool {
	if p.allow == nil {
		p.allow = make(map[string]map[int]bool)
		collectAllows(p.Fset, p.Files, p.Analyzer.Name, p.allow)
	}
	return p.allow[pos.Filename][pos.Line]
}

// holdsDirective matches "rmpvet:holds Type.mu[, Type.mu...]".
var holdsDirective = regexp.MustCompile(`rmpvet:holds\s+([\w.,\s]+)`)

// HoldsFromDoc extracts the (TypeName, lockField) pairs asserted by
// rmpvet:holds directives in a doc comment. Each entry is returned as
// "Type.lock".
func HoldsFromDoc(doc *ast.CommentGroup) []string {
	if doc == nil {
		return nil
	}
	var out []string
	for _, c := range doc.List {
		m := holdsDirective.FindStringSubmatch(c.Text)
		if m == nil {
			continue
		}
		for _, part := range strings.Split(m[1], ",") {
			part = strings.TrimSpace(part)
			if part != "" && strings.Contains(part, ".") {
				out = append(out, part)
			}
		}
	}
	return out
}

// Run executes each analyzer over the package described by fset,
// files, pkg and info, returning all diagnostics sorted by position.
func Run(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			report:   func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path(), err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, nil
}

// NamedType returns the named type (or nil) behind t, unwrapping
// pointers and aliases — the shape analyzers key lock ownership on.
func NamedType(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		case *types.Alias:
			t = types.Unalias(t)
		default:
			return nil
		}
	}
}

// Implements reports whether t (or *t) implements iface.
func Implements(t types.Type, iface *types.Interface) bool {
	if iface == nil || t == nil {
		return false
	}
	if types.Implements(t, iface) {
		return true
	}
	if _, ok := t.(*types.Pointer); !ok {
		return types.Implements(types.NewPointer(t), iface)
	}
	return false
}

// LookupIface finds the named interface type in an imported package
// (e.g. net.Conn) among pkg's direct and transitive imports. Returns
// nil when the package is not imported.
func LookupIface(pkg *types.Package, path, name string) *types.Interface {
	var find func(p *types.Package, seen map[*types.Package]bool) *types.Package
	find = func(p *types.Package, seen map[*types.Package]bool) *types.Package {
		if p == nil || seen[p] {
			return nil
		}
		seen[p] = true
		if p.Path() == path {
			return p
		}
		for _, imp := range p.Imports() {
			if found := find(imp, seen); found != nil {
				return found
			}
		}
		return nil
	}
	target := find(pkg, map[*types.Package]bool{})
	if target == nil {
		return nil
	}
	obj, ok := target.Scope().Lookup(name).(*types.TypeName)
	if !ok {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}
