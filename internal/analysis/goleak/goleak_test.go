package goleak_test

import (
	"testing"

	"rmp/internal/analysis/analysistest"
	"rmp/internal/analysis/goleak"
)

func TestGoleak(t *testing.T) {
	analysistest.RunProgram(t, ".", goleak.Analyzer, "gldep", "gl")
}
