package goleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"rmp/internal/analysis"
)

// checkAtomicMix flags struct fields that are accessed through
// sync/atomic functions in one place and by plain reads or writes in
// another. The plain access does not synchronize with the atomic one:
// under the memory model that is a data race even if a mutex guards
// the plain side, because the atomic side does not take it.
//
// Typed atomics (atomic.Uint64 fields) cannot mix — their value is
// unexported — so only the function-style API (atomic.AddUint64(&x.f,
// ...)) needs checking. Accesses inside the function that constructs
// the object (x := &T{...}) are exempt: nothing else can see it yet.
func checkAtomicMix(pass *analysis.ProgramPass) {
	// key -> position of one atomic access, program-wide.
	atomicAt := map[string]token.Pos{}
	// selector nodes consumed as &x.f arguments of atomic calls.
	consumed := map[*ast.SelectorExpr]bool{}

	type plainSite struct {
		key string
		pos token.Pos
	}
	var plains []plainSite

	for _, u := range pass.Units {
		for _, f := range u.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				owned := constructed(u, fd.Body)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					sel, ok := call.Fun.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					pkg, ok := u.Info.Uses[firstIdent(sel.X)].(*types.PkgName)
					if !ok || pkg.Imported().Path() != "sync/atomic" {
						return true
					}
					for _, arg := range call.Args {
						un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
						if !ok || un.Op != token.AND {
							continue
						}
						fsel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
						if !ok {
							continue
						}
						consumed[fsel] = true
						if key := fieldKey(u, fsel); key != "" && !ownedBase(u, fsel, owned) {
							if _, seen := atomicAt[key]; !seen {
								atomicAt[key] = fsel.Pos()
							}
						}
					}
					return true
				})
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					fsel, ok := n.(*ast.SelectorExpr)
					if !ok || consumed[fsel] {
						return true
					}
					// Only field selections, not method values/calls.
					v, ok := u.Info.Uses[fsel.Sel].(*types.Var)
					if !ok || !v.IsField() {
						return true
					}
					if ownedBase(u, fsel, owned) {
						return true
					}
					if key := fieldKey(u, fsel); key != "" {
						plains = append(plains, plainSite{key, fsel.Pos()})
					}
					return true
				})
			}
		}
	}

	for _, p := range plains {
		if at, ok := atomicAt[p.key]; ok {
			pass.Reportf(p.pos, "field %s is accessed with sync/atomic at %s but directly here — mixed atomic/plain access tears; pick one discipline",
				shorten(p.key), pass.Fset.Position(at))
		}
	}
}

// constructed returns the objects this function builds from composite
// literals (x := &T{...} or x := T{...}): accesses through them are
// pre-publication initialization.
func constructed(u *analysis.Unit, body *ast.BlockStmt) map[types.Object]bool {
	owned := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || i >= len(as.Rhs) {
				continue
			}
			rhs := ast.Unparen(as.Rhs[i])
			if un, ok := rhs.(*ast.UnaryExpr); ok && un.Op == token.AND {
				rhs = ast.Unparen(un.X)
			}
			if _, ok := rhs.(*ast.CompositeLit); ok {
				if obj := u.Info.Defs[id]; obj != nil {
					owned[obj] = true
				}
			}
		}
		return true
	})
	return owned
}

// ownedBase reports whether the root identifier of a selector chain
// is one of the function's constructed objects.
func ownedBase(u *analysis.Unit, sel *ast.SelectorExpr, owned map[types.Object]bool) bool {
	id := firstIdent(sel.X)
	if id == nil {
		return false
	}
	return owned[u.Info.Uses[id]]
}

// firstIdent unwraps a selector/star chain to its leftmost
// identifier.
func firstIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		default:
			return nil
		}
	}
}
