package goleak

import (
	"go/ast"
	"go/token"
	"go/types"

	"rmp/internal/analysis"
)

// index resolves go-statement callees and interface lookups across
// every unit of the program.
type index struct {
	pass  *analysis.ProgramPass
	decls map[string]declAt // types.Func.FullName -> declaration
}

type declAt struct {
	decl *ast.FuncDecl
	unit *analysis.Unit
}

func newIndex(pass *analysis.ProgramPass) *index {
	ix := &index{pass: pass, decls: map[string]declAt{}}
	for _, u := range pass.Units {
		for _, f := range u.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
					if obj, ok := u.Info.Defs[fd.Name].(*types.Func); ok {
						ix.decls[obj.FullName()] = declAt{fd, u}
					}
				}
			}
		}
	}
	return ix
}

// goBody resolves the body a go statement runs: the literal's body,
// or the declaration of a named function or method in any unit of the
// program. Unresolvable callees (interface methods, func values)
// return nil.
func (ix *index) goBody(u *analysis.Unit, gs *ast.GoStmt) (*ast.BlockStmt, *analysis.Unit) {
	switch fun := gs.Call.Fun.(type) {
	case *ast.FuncLit:
		return fun.Body, u
	case *ast.Ident:
		if obj, ok := u.Info.Uses[fun].(*types.Func); ok {
			if at, ok := ix.decls[obj.FullName()]; ok {
				return at.decl.Body, at.unit
			}
		}
	case *ast.SelectorExpr:
		if obj, ok := u.Info.Uses[fun.Sel].(*types.Func); ok {
			if at, ok := ix.decls[obj.FullName()]; ok {
				return at.decl.Body, at.unit
			}
		}
	}
	return nil, nil
}

// fieldKey resolves a selector x.f to "pkgpath.Type.field" when x has
// a named struct type declared in some package; "" otherwise.
func fieldKey(u *analysis.Unit, sel *ast.SelectorExpr) string {
	tv, ok := u.Info.Types[sel.X]
	if !ok {
		return ""
	}
	named := analysis.NamedType(tv.Type)
	if named == nil || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + sel.Sel.Name
}

// scanOwnership walks a go body collecting ownership evidence into
// site: either unconditional ownership (ctx, structured local
// channel/WaitGroup, closable conn in hand) or candidate field owners
// whose shutdown discipline run() verifies afterwards.
func scanOwnership(u *analysis.Unit, body *ast.BlockStmt, site *goSite, ix *index) {
	netConn := analysis.LookupIface(u.Pkg, "net", "Conn")
	listener := analysis.LookupIface(u.Pkg, "net", "Listener")
	seen := map[string]bool{}
	addField := func(key string, kind ownKind) {
		if key == "" || seen[key] {
			return
		}
		seen[key] = true
		site.fields = append(site.fields, fieldRef{key: key, typ: typOf(key), kind: kind})
	}
	// owner classifies the expression the body blocks on or signals
	// through: a bare identifier (local, param, captured, or
	// package-level) is structured ownership — the declaring scope is
	// the owner; a field selector becomes a candidate to verify.
	owner := func(e ast.Expr, kind ownKind) {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			if u.Info.Uses[v] != nil || u.Info.Defs[v] != nil {
				site.owned = true
			}
		case *ast.SelectorExpr:
			if key := fieldKey(u, v); key != "" {
				addField(key, kind)
			} else {
				site.owned = true // x.ch where x is a local struct literal, etc.
			}
		default:
			site.owned = true // call results, index exprs: not field-held
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if site.owned {
			return false
		}
		switch v := n.(type) {
		case *ast.UnaryExpr:
			if v.Op == token.ARROW && !isTimeChan(u, v.X) {
				owner(v.X, ownChan)
			}
		case *ast.RangeStmt:
			if tv, ok := u.Info.Types[v.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan && !isTimeChan(u, v.X) {
					owner(v.X, ownChan)
				}
			}
		case *ast.SendStmt:
			// A send into a channel in hand (result delivery) is a
			// completion signal only for non-field channels: sends
			// into a component's inbox are work, not ownership.
			if id, ok := ast.Unparen(v.Chan).(*ast.Ident); ok && u.Info.Uses[id] != nil {
				site.owned = true
			}
		case *ast.Ident:
			if obj := u.Info.Uses[v]; obj != nil && isContext(obj.Type()) {
				site.owned = true
			}
		case *ast.CallExpr:
			sel, ok := v.Fun.(*ast.SelectorExpr)
			if !ok {
				break
			}
			recv, hasRecv := u.Info.Types[sel.X]
			switch sel.Sel.Name {
			case "Done", "Wait":
				if hasRecv && isWaitGroup(recv.Type) {
					owner(sel.X, ownWG)
				}
			case "Load":
				// atomic.Bool shutdown flag.
				if hasRecv && isAtomicBool(recv.Type) && flagName.MatchString(fieldName(sel)) {
					owner(sel.X, ownFlag)
				}
			case "Accept", "Read", "ReadFull", "Decode", "ReadFrom", "Recv":
				if hasRecv && (analysis.Implements(recv.Type, netConn) || analysis.Implements(recv.Type, listener)) {
					owner(sel.X, ownConn)
				}
			}
			// A shutdown-state poll through a method (srv.Draining(),
			// s.isClosed()): lifecycle's convention, still honored.
			// WaitGroup.Done is a completion signal, not a poll — it
			// was classified as a wg owner above.
			if flagName.MatchString(sel.Sel.Name) && !(hasRecv && isWaitGroup(recv.Type)) {
				if _, isMethod := u.Info.Uses[sel.Sel].(*types.Func); isMethod {
					site.owned = true
				}
			}
			// Helpers that block on a conn argument: wire.Decode(conn),
			// io.ReadFull(conn, buf).
			for _, arg := range v.Args {
				if tv, ok := u.Info.Types[arg]; ok &&
					(analysis.Implements(tv.Type, netConn) || analysis.Implements(tv.Type, listener)) {
					owner(arg, ownConn)
				}
			}
		case *ast.SelectorExpr:
			// Polling a shutdown-named boolean field.
			if tv, ok := u.Info.Types[v]; ok && isBool(tv.Type) && flagName.MatchString(v.Sel.Name) {
				if _, isField := u.Info.Uses[v.Sel].(*types.Var); isField {
					owner(v, ownFlag)
				}
			}
		}
		return !site.owned
	})
}

// summarize builds the close/call summary of one function
// declaration for the shutdown-propagation fixpoint.
func summarize(u *analysis.Unit, fd *ast.FuncDecl, obj *types.Func) *fnSum {
	sum := &fnSum{name: obj.FullName(), closes: map[string]closeFact{}}
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		if tv, ok := u.Info.Types[fd.Recv.List[0].Type]; ok {
			if named := analysis.NamedType(tv.Type); named != nil && named.Obj().Pkg() != nil {
				sum.recvTyp = named.Obj().Pkg().Path() + "." + named.Obj().Name()
			}
		}
	}
	w := &sumWalker{u: u, sum: sum}
	w.stmts(fd.Body.List, false, nil)
	return sum
}

type sumWalker struct {
	u   *analysis.Unit
	sum *fnSum
}

func (w *sumWalker) close(key string, pos token.Pos, cond bool, lic map[string]bool) {
	if key == "" {
		return
	}
	provable := !cond || lic[key]
	if old, ok := w.sum.closes[key]; ok && (old.provable || !provable) {
		return
	}
	w.sum.closes[key] = closeFact{pos: pos, provable: provable}
}

func (w *sumWalker) stmts(list []ast.Stmt, cond bool, lic map[string]bool) {
	for _, s := range list {
		w.stmt(s, cond, lic)
	}
}

// stmt records close evidence and calls, tracking whether the
// statement runs conditionally. A defer registered at depth 0 runs on
// every return path, so it keeps the registration point's cond. lic
// holds field keys licensed by an enclosing nil-guard: inside
// `if x.f != nil { ... }`, cancelling x.f is as good as unconditional,
// because the guard exists only to skip a never-started worker (and
// close(nil) would panic).
func (w *sumWalker) stmt(s ast.Stmt, cond bool, lic map[string]bool) {
	switch v := s.(type) {
	case *ast.BlockStmt:
		w.stmts(v.List, cond, lic)
	case *ast.LabeledStmt:
		w.stmt(v.Stmt, cond, lic)
	case *ast.IfStmt:
		thenLic, elseLic := lic, lic
		if key, nonNilThen := nilGuard(w.u, v.Cond); key != "" {
			licd := map[string]bool{key: true}
			for k := range lic {
				licd[k] = true
			}
			if nonNilThen {
				thenLic = licd
			} else {
				elseLic = licd
			}
		}
		w.stmt(v.Body, true, thenLic)
		if v.Else != nil {
			w.stmt(v.Else, true, elseLic)
		}
	case *ast.ForStmt:
		w.stmt(v.Body, true, lic)
	case *ast.RangeStmt:
		w.stmt(v.Body, true, lic)
	case *ast.SwitchStmt:
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, true, lic)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.stmts(cc.Body, true, lic)
			}
		}
	case *ast.SelectStmt:
		for _, c := range v.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.stmts(cc.Body, true, lic)
			}
		}
	case *ast.DeferStmt:
		w.call(v.Call, cond, lic)
	case *ast.ExprStmt:
		if call, ok := v.X.(*ast.CallExpr); ok {
			w.call(call, cond, lic)
		}
	case *ast.ReturnStmt:
		for _, r := range v.Results {
			if call, ok := ast.Unparen(r).(*ast.CallExpr); ok {
				w.call(call, cond, lic)
			}
		}
	case *ast.AssignStmt:
		// s.closed = true — setting a shutdown flag.
		for i, lhs := range v.Lhs {
			sel, ok := lhs.(*ast.SelectorExpr)
			if !ok || i >= len(v.Rhs) {
				continue
			}
			if id, ok := v.Rhs[i].(*ast.Ident); ok && id.Name == "true" && flagName.MatchString(sel.Sel.Name) {
				w.close(fieldKey(w.u, sel), sel.Pos(), cond, lic)
			}
		}
		for _, rhs := range v.Rhs {
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
				w.call(call, cond, lic)
			}
		}
	}
}

// nilGuard recognizes `x.f != nil` (nonNilThen=true) and `x.f == nil`
// (nonNilThen=false) conditions, returning the guarded field key.
func nilGuard(u *analysis.Unit, cond ast.Expr) (key string, nonNilThen bool) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.NEQ && be.Op != token.EQL) {
		return "", false
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	if id, ok := y.(*ast.Ident); !ok || id.Name != "nil" {
		if id, ok := x.(*ast.Ident); !ok || id.Name != "nil" {
			return "", false
		}
		x = y
	}
	sel, ok := x.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	return fieldKey(u, sel), be.Op == token.NEQ
}

// call records one call expression: a direct cancellation (close,
// Wait, Close, Store(true)), a sync.Once.Do whose body executes with
// the Do's conditionality, or a resolvable callee for the fixpoint.
func (w *sumWalker) call(call *ast.CallExpr, cond bool, lic map[string]bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fun.Name == "close" && len(call.Args) == 1 {
			if sel, ok := ast.Unparen(call.Args[0]).(*ast.SelectorExpr); ok {
				w.close(fieldKey(w.u, sel), call.Pos(), cond, lic)
				return
			}
		}
		if obj, ok := w.u.Info.Uses[fun].(*types.Func); ok {
			w.sum.calls = append(w.sum.calls, callEv{callee: obj.FullName(), provable: !cond, pos: call.Pos()})
		}
	case *ast.FuncLit:
		// Immediately-invoked literal runs right here.
		w.stmts(fun.Body.List, cond, lic)
	case *ast.SelectorExpr:
		recv, hasRecv := w.u.Info.Types[fun.X]
		inner, innerIsSel := ast.Unparen(fun.X).(*ast.SelectorExpr)
		switch fun.Sel.Name {
		case "Wait":
			if hasRecv && isWaitGroup(recv.Type) && innerIsSel {
				w.close(fieldKey(w.u, inner), call.Pos(), cond, lic)
				return
			}
		case "Close":
			if innerIsSel {
				w.close(fieldKey(w.u, inner), call.Pos(), cond, lic)
				// fall through to also record the method call
			}
		case "Store":
			if hasRecv && isAtomicBool(recv.Type) && innerIsSel && len(call.Args) == 1 {
				if id, ok := call.Args[0].(*ast.Ident); ok && id.Name == "true" {
					w.close(fieldKey(w.u, inner), call.Pos(), cond, lic)
					return
				}
			}
		case "Do":
			if hasRecv && isOnce(recv.Type) && len(call.Args) == 1 {
				switch arg := ast.Unparen(call.Args[0]).(type) {
				case *ast.FuncLit:
					// once.Do(func(){...}) executes with Do's own
					// conditionality for shutdown purposes.
					w.stmts(arg.Body.List, cond, lic)
					return
				case *ast.Ident:
					if obj, ok := w.u.Info.Uses[arg].(*types.Func); ok {
						w.sum.calls = append(w.sum.calls, callEv{callee: obj.FullName(), provable: !cond, pos: call.Pos()})
						return
					}
				case *ast.SelectorExpr:
					if obj, ok := w.u.Info.Uses[arg.Sel].(*types.Func); ok {
						w.sum.calls = append(w.sum.calls, callEv{callee: obj.FullName(), provable: !cond, pos: call.Pos()})
						return
					}
				}
			}
		}
		if obj, ok := w.u.Info.Uses[fun.Sel].(*types.Func); ok {
			w.sum.calls = append(w.sum.calls, callEv{callee: obj.FullName(), provable: !cond, pos: call.Pos()})
		}
	}
}

// propagate spreads close facts up the call graph: a caller that
// unconditionally calls a function that unconditionally closes K
// itself provably closes K. Conditional anywhere on the chain makes
// the fact conditional.
func propagate(sums map[string]*fnSum, order []string) {
	for changed := true; changed; {
		changed = false
		for _, name := range order {
			sum := sums[name]
			for _, ev := range sum.calls {
				callee := sums[ev.callee]
				if callee == nil {
					continue
				}
				for key, cf := range callee.closes {
					prov := cf.provable && ev.provable
					if old, ok := sum.closes[key]; ok && (old.provable || !prov) {
						continue
					}
					sum.closes[key] = closeFact{pos: ev.pos, provable: prov}
					changed = true
				}
			}
		}
	}
}

func isWaitGroup(t types.Type) bool {
	named := analysis.NamedType(t)
	return named != nil && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup"
}

func isOnce(t types.Type) bool {
	named := analysis.NamedType(t)
	return named != nil && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "Once"
}

func isAtomicBool(t types.Type) bool {
	named := analysis.NamedType(t)
	return named != nil && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync/atomic" && named.Obj().Name() == "Bool"
}

func isBool(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Bool
}

func isContext(t types.Type) bool {
	named := analysis.NamedType(t)
	return named != nil && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}

// fieldName returns the selected field's name when sel.X is itself a
// selector (x.f.Load() → "f"); "" otherwise.
func fieldName(sel *ast.SelectorExpr) string {
	if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
		return inner.Sel.Name
	}
	return ""
}

// isTimeChan reports whether e is a channel sourced from the time
// package (ticker.C, time.After(...)): periodic wakeups, not owners.
func isTimeChan(u *analysis.Unit, e ast.Expr) bool {
	switch v := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if tv, ok := u.Info.Types[v.X]; ok {
			if named := analysis.NamedType(tv.Type); named != nil && named.Obj().Pkg() != nil {
				return named.Obj().Pkg().Path() == "time"
			}
		}
	case *ast.CallExpr:
		if sel, ok := v.Fun.(*ast.SelectorExpr); ok {
			if obj, ok := u.Info.Uses[sel.Sel].(*types.Func); ok && obj.Pkg() != nil {
				return obj.Pkg().Path() == "time"
			}
		}
	}
	return false
}
