// Package gl is the goleak fixture: every ownership kind (stop
// channel, WaitGroup, conn, flag, context, structured locals), every
// shutdown-proof shape (direct close, nil-guarded close, once.Do,
// delegation through a helper, cross-package), and the violations —
// missing owner, owner never cancelled, owner cancelled only
// conditionally, mixed atomic/plain field access.
package gl

import (
	"context"
	"net"
	"sync"
	"sync/atomic"

	"gldep"
)

func work() { _ = 1 }

// W is the canonical worker: loop selects on the stop field, Close
// closes it unconditionally.
type W struct {
	stop chan struct{}
}

func (w *W) Run() { go w.loop() }
func (w *W) loop() {
	for {
		select {
		case <-w.stop:
			return
		}
	}
}
func (w *W) Close() { close(w.stop) }

// NoClose's stop channel exists but nothing ever closes it.
type NoClose struct {
	stop chan struct{}
}

func (n *NoClose) Run() {
	go n.loop() // want "goroutine is owned by gl.NoClose.stop but no shutdown method of its type ever closed it"
}
func (n *NoClose) loop() { <-n.stop }

// Cond closes its stop channel only behind an unrelated condition:
// the path where really is false leaks the goroutine.
type Cond struct {
	stop   chan struct{}
	really bool
}

func (c *Cond) Run()  { go c.loop() }
func (c *Cond) loop() { <-c.stop }
func (c *Cond) Close() {
	if c.really {
		close(c.stop) // want "stop channel gl.Cond.stop is closed only on some paths of this shutdown method"
	}
}

// NG guards the close with the field's own nil check — the
// conditional-start idiom, required because close\(nil\) panics — so
// the close counts as unconditional.
type NG struct {
	stop chan struct{}
}

func (n *NG) Run()  { go n.loop() }
func (n *NG) loop() { <-n.stop }
func (n *NG) Close() {
	if n.stop != nil {
		close(n.stop)
	}
}

// Else closes the channel, but only in a method no shutdown method
// reaches.
type Else struct {
	stop chan struct{}
}

func (e *Else) Run() {
	go e.loop() // want "closed only in .*handle — no shutdown method of gl.Else provably reaches it"
}
func (e *Else) loop()   { <-e.stop }
func (e *Else) handle() { close(e.stop) }

// Del's Close delegates to a non-shutdown-named helper; the fixpoint
// carries the close fact up the call chain.
type Del struct {
	stop chan struct{}
}

func (d *Del) Run()     { go d.loop() }
func (d *Del) loop()    { <-d.stop }
func (d *Del) Close()   { d.cleanup() }
func (d *Del) cleanup() { close(d.stop) }

// OnceW closes through sync.Once.Do — idempotent shutdown still
// counts as provable.
type OnceW struct {
	stop chan struct{}
	once sync.Once
}

func (o *OnceW) Run()   { go o.loop() }
func (o *OnceW) loop()  { <-o.stop }
func (o *OnceW) Close() { o.once.Do(func() { close(o.stop) }) }

// WGer signals a field WaitGroup that Stop waits.
type WGer struct {
	wg sync.WaitGroup
}

func (g *WGer) Run() {
	g.wg.Add(1)
	go g.work()
}
func (g *WGer) work() { defer g.wg.Done(); work() }
func (g *WGer) Stop() { g.wg.Wait() }

// WGNo signals a field WaitGroup nobody ever waits.
type WGNo struct {
	wg sync.WaitGroup
}

func (n *WGNo) Run() {
	n.wg.Add(1)
	go n.work() // want "goroutine is owned by gl.WGNo.wg but no shutdown method of its type ever waited it"
}
func (n *WGNo) work() { defer n.wg.Done(); work() }

// Sess blocks on a conn field; Close closes the conn, which is the
// cancellation.
type Sess struct {
	c net.Conn
}

func (s *Sess) Run() { go s.readLoop() }
func (s *Sess) readLoop() {
	buf := make([]byte, 16)
	for {
		if _, err := s.c.Read(buf); err != nil {
			return
		}
	}
}
func (s *Sess) Close() error { return s.c.Close() }

// FB polls a shutdown-named boolean field that Close sets.
type FB struct {
	closed bool
}

func (f *FB) Run() { go f.loop() }
func (f *FB) loop() {
	for {
		if f.closed {
			return
		}
	}
}
func (f *FB) Close() { f.closed = true }

// AB polls an atomic.Bool flag that Close stores.
type AB struct {
	closing atomic.Bool
}

func (a *AB) Run() { go a.loop() }
func (a *AB) loop() {
	for {
		if a.closing.Load() {
			return
		}
	}
}
func (a *AB) Close() { a.closing.Store(true) }

// Structured concurrency: channels and WaitGroups in the spawning
// function own their goroutines.
func structured() {
	done := make(chan struct{})
	go func() {
		<-done
	}()
	close(done)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		wg.Done()
	}()
	wg.Wait()
}

// A context is an owner wherever it came from.
func withCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// Cross-package: the goroutine body and its shutdown proof both live
// in gldep.
func spawnRemote() {
	p := gldep.New()
	go p.Loop()
	p.Close()
}

// No owner at all — looping or not, nothing ties these to anything.
func noOwnerLoop() {
	go func() { // want "goroutine has no owner"
		for {
			work()
		}
	}()
}

func noOwnerLine() {
	go work() // want "goroutine has no owner"
}

// The escape hatch still works.
func allowed() {
	//rmpvet:allow goleak -- metrics flush, bounded by process exit
	go func() {
		for {
			work()
		}
	}()
}

// M mixes function-style atomics with plain access to the same
// field; the constructor's pre-publication write is exempt.
type M struct {
	n uint64
}

func NewM() *M {
	m := &M{}
	m.n = 1
	return m
}

func (m *M) Add() { atomic.AddUint64(&m.n, 1) }
func (m *M) Read() uint64 {
	return m.n // want "field gl.M.n is accessed with sync/atomic"
}
