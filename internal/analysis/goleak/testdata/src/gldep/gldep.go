// Package gldep hosts a worker whose goroutine is spawned from the
// gl fixture package: goleak must resolve the go callee and the
// shutdown evidence across the package boundary.
package gldep

type Pumper struct {
	stop chan struct{}
}

func New() *Pumper { return &Pumper{stop: make(chan struct{})} }

func (p *Pumper) Loop() {
	for {
		select {
		case <-p.stop:
			return
		}
	}
}

func (p *Pumper) Close() { close(p.stop) }
