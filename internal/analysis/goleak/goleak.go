// Package goleak upgrades lifecycle's per-function goroutine check
// into a whole-program ownership analysis. Every `go` statement must
// be tied to an owner — the thing whose shutdown makes the goroutine
// exit:
//
//   - a context.Context used in the body;
//   - a stop/done channel the body receives or selects on;
//   - a WaitGroup the body signals with Done;
//   - a closable net.Conn/Listener the body blocks on;
//   - a shutdown-named boolean flag the body polls;
//   - or, for structured concurrency, a channel/WaitGroup declared in
//     the spawning function (the spawner is the owner).
//
// And — the teeth lifecycle lacked — when the owner is a *field* of
// some component type T, a shutdown method of T (Close, Stop,
// Shutdown, ...) must *provably* cancel it on every return path:
// close the channel, Wait the WaitGroup, Close the conn, or set the
// flag, either directly in the method body (not nested inside a
// conditional), in a defer, inside a sync.Once.Do, or inside a helper
// the shutdown method calls unconditionally. A goroutine whose stop
// channel exists but is never closed, or is closed only on some paths
// of Close, leaks exactly when shutdown races a fault — the paper's
// recovery windows are where that bites.
//
// The body a `go` statement runs is resolved across package
// boundaries (functions are keyed by types.Func.FullName, see the
// analysis package's ProgramAnalyzer doc), so `go other.Worker(...)`
// is analyzed, not assumed bounded.
//
// goleak also reports mixed access disciplines: a struct field
// touched through sync/atomic functions in one place and by plain
// reads/writes (mutex-guarded or not) in another tears — the atomic
// access does not synchronize with the plain one. Constructor
// initialization (x := &T{...}; x.f = ...) is exempt.
package goleak

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"rmp/internal/analysis"
)

// Analyzer is the whole-program goroutine-ownership check.
var Analyzer = &analysis.ProgramAnalyzer{
	Name: "goleak",
	Doc: "every goroutine must be tied to an owner (ctx, stop channel, WaitGroup, closable conn) " +
		"that a shutdown method of its component provably cancels; mixed atomic/plain field access is flagged",
	Run: run,
}

// ownKind classifies what a field owner is and how shutdown must
// cancel it.
type ownKind int

const (
	ownChan ownKind = iota // close(T.f)
	ownWG                  // T.f.Wait()
	ownConn                // T.f.Close()
	ownFlag                // T.f = true
)

func (k ownKind) String() string {
	switch k {
	case ownChan:
		return "stop channel"
	case ownWG:
		return "WaitGroup"
	case ownConn:
		return "conn"
	case ownFlag:
		return "shutdown flag"
	}
	return "owner"
}

func (k ownKind) closeVerb() string {
	switch k {
	case ownChan:
		return "closed"
	case ownWG:
		return "waited"
	case ownConn:
		return "closed"
	case ownFlag:
		return "set"
	}
	return "cancelled"
}

// fieldRef is one candidate owner that is a struct field.
type fieldRef struct {
	key  string // pkgpath.Type.field
	typ  string // pkgpath.Type
	kind ownKind
}

// goSite is one `go` statement and the ownership evidence found in
// the body it runs.
type goSite struct {
	pos    token.Pos
	owned  bool       // ctx, structured chan/WaitGroup, closable conn/listener
	fields []fieldRef // field owners, valid if any is provably cancelled
}

// closeFact is the fixpoint fact "this function cancels owner key".
type closeFact struct {
	pos      token.Pos
	provable bool // on every return path (depth 0, defer, or once.Do)
}

// callEv is one resolvable call and whether it runs on every path.
type callEv struct {
	callee   string
	provable bool
	pos      token.Pos
}

// fnSum summarizes one function for the close-propagation fixpoint.
type fnSum struct {
	name    string
	recvTyp string // pkgpath.Type for methods, "" otherwise
	closes  map[string]closeFact
	calls   []callEv
}

// shutdownMethod matches method names that plausibly tear a component
// down; close evidence must be reachable from one of these.
var shutdownMethod = regexp.MustCompile(`(?i)^(close|shutdown|stop|halt|quit|drain|cancel|kill|terminate|abort|teardown|destroy|detach|disconnect|release|finish|end|exit|bye|wait)`)

// flagName matches boolean fields whose read signals shutdown
// (mirrors lifecycle's convention).
var flagName = regexp.MustCompile(`(?i)^(stop|stopped|stopping|done|quit|exit|halt|shutdown|shutting|closed|closing|drain|draining|cancel|cancelled|canceled|kill)`)

func run(pass *analysis.ProgramPass) error {
	ix := newIndex(pass)

	// Pass 1: summarize every function's close evidence and calls.
	sums := map[string]*fnSum{}
	var order []string
	for _, u := range pass.Units {
		for _, f := range u.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := u.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				sum := summarize(u, fd, obj)
				sums[sum.name] = sum
				order = append(order, sum.name)
			}
		}
	}
	propagate(sums, order)

	// Pass 2: collect go sites and their ownership evidence.
	var sites []goSite
	for _, u := range pass.Units {
		for _, f := range u.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				body, bodyUnit := ix.goBody(u, gs)
				if body == nil {
					return true // unresolvable (interface/func value); assume bounded
				}
				site := goSite{pos: gs.Pos()}
				scanOwnership(bodyUnit, body, &site, ix)
				sites = append(sites, site)
				return true
			})
		}
	}

	// Which owner keys are provably cancelled from a shutdown method
	// of their type?
	type keyFact struct {
		provable    bool
		conditional *closeFact // best non-provable evidence in a shutdown method
		anywhere    string     // some function with evidence, shutdown or not
	}
	facts := map[string]*keyFact{}
	fact := func(key string) *keyFact {
		kf := facts[key]
		if kf == nil {
			kf = &keyFact{}
			facts[key] = kf
		}
		return kf
	}
	for _, name := range order {
		sum := sums[name]
		for key, cf := range sum.closes {
			kf := fact(key)
			if kf.anywhere == "" {
				kf.anywhere = name
			}
			if sum.recvTyp != "" && sum.recvTyp == typOf(key) && shutdownMethod.MatchString(methodName(name)) {
				if cf.provable {
					kf.provable = true
				} else if kf.conditional == nil {
					cfCopy := cf
					kf.conditional = &cfCopy
				}
			}
		}
	}

	// Report.
	reportedCond := map[token.Pos]bool{}
	for _, site := range sites {
		if site.owned {
			continue
		}
		if len(site.fields) == 0 {
			pass.Reportf(site.pos, "goroutine has no owner: tie it to a ctx, stop channel, WaitGroup, or closable conn, and cancel it on shutdown")
			continue
		}
		ok := false
		var cond, elsewhere *fieldRef
		var condFact *closeFact
		elsewhereFn := ""
		for i := range site.fields {
			fr := &site.fields[i]
			kf := facts[fr.key]
			if kf == nil {
				continue
			}
			if kf.provable {
				ok = true
				break
			}
			if kf.conditional != nil && cond == nil {
				cond, condFact = fr, kf.conditional
			}
			if kf.anywhere != "" && elsewhere == nil {
				elsewhere, elsewhereFn = fr, kf.anywhere
			}
		}
		if ok {
			continue
		}
		if cond != nil {
			if !reportedCond[condFact.pos] {
				reportedCond[condFact.pos] = true
				pass.Reportf(condFact.pos, "%s %s is %s only on some paths of this shutdown method — hoist it (or use sync.Once) so the goroutine at %s always stops",
					cond.kind, shorten(cond.key), cond.kind.closeVerb(), pass.Fset.Position(site.pos))
			}
			continue
		}
		if elsewhere != nil {
			pass.Reportf(site.pos, "goroutine's %s %s is %s only in %s — no shutdown method of %s provably reaches it",
				elsewhere.kind, shorten(elsewhere.key), elsewhere.kind.closeVerb(), shorten(elsewhereFn), shorten(typOf(elsewhere.key)))
			continue
		}
		pass.Reportf(site.pos, "goroutine is owned by %s but no shutdown method of its type ever %s it (%s)",
			shorten(ownersList(site.fields)), site.fields[0].kind.closeVerb(), ownerAdvice(site.fields[0].kind))
	}

	checkAtomicMix(pass)
	return nil
}

func ownersList(frs []fieldRef) string {
	parts := make([]string, len(frs))
	for i, fr := range frs {
		parts[i] = fr.key
	}
	sort.Strings(parts)
	return strings.Join(parts, ", ")
}

func ownerAdvice(k ownKind) string {
	switch k {
	case ownChan:
		return "close it in Close/Stop"
	case ownWG:
		return "Wait it in Close/Stop"
	case ownConn:
		return "Close it in Close/Stop"
	case ownFlag:
		return "set it in Close/Stop"
	}
	return "cancel it in Close/Stop"
}

func typOf(key string) string {
	i := strings.LastIndex(key, ".")
	if i < 0 {
		return key
	}
	return key[:i]
}

// methodName extracts the bare method name from a FullName like
// "(*pkg.T).Close" or "pkg.F".
func methodName(full string) string {
	i := strings.LastIndex(full, ".")
	if i < 0 {
		return full
	}
	return full[i+1:]
}

var pathDirs = regexp.MustCompile(`[\w.\-~]+/`)

func shorten(s string) string { return pathDirs.ReplaceAllString(s, "") }
