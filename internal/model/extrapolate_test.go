package model

import (
	"math"
	"testing"
	"time"
)

// TestPaperWorkedExample reproduces §4.3's arithmetic exactly.
func TestPaperWorkedExample(t *testing.T) {
	d := PaperFFT24MB

	// Protocol time: 5452 * 1.6 ms = 8.7232 s (paper: "about 8.723 sec").
	if got := d.ProtocolTime(); abs(got-8723200*time.Microsecond) > time.Millisecond {
		t.Errorf("protocol time = %v, want 8.7232s", got)
	}
	// Measured elapsed: 130.76 s.
	if got := d.Elapsed(); abs(got-130760*time.Millisecond) > 10*time.Millisecond {
		t.Errorf("elapsed = %v, want 130.76s", got)
	}
	// ETHERNET*10 prediction: 83.459 s (paper: 66.138+3.133+0.21+8.723+5.255).
	if got := d.Predict(10); abs(got-83459*time.Millisecond) > 50*time.Millisecond {
		t.Errorf("Predict(10) = %v, want ~83.459s", got)
	}
	// Paging overhead under 17% on the 100 Mbps network.
	if frac := d.PagingFraction(10); frac >= 0.17 || frac < 0.15 {
		t.Errorf("paging fraction at X=10 = %.4f, want ~0.167 (<17%%)", frac)
	}
	// ALL MEMORY: 69.481 s.
	if got := d.AllMemory(); abs(got-69481*time.Millisecond) > time.Millisecond {
		t.Errorf("AllMemory = %v, want 69.481s", got)
	}
}

func TestFromMeasuredRoundTrip(t *testing.T) {
	d := PaperFFT24MB
	got, err := FromMeasured(d.Elapsed(), d.UTime, d.SysTime, d.InitTime, d.Transfers)
	if err != nil {
		t.Fatal(err)
	}
	if abs(got.BTime-d.BTime) > time.Millisecond {
		t.Fatalf("BTime = %v, want %v", got.BTime, d.BTime)
	}
}

func TestFromMeasuredRejectsNegativePTime(t *testing.T) {
	if _, err := FromMeasured(time.Second, 2*time.Second, 0, 0, 0); err == nil {
		t.Fatal("negative ptime accepted")
	}
}

func TestFromMeasuredRejectsProtocolOverflow(t *testing.T) {
	// 1000 transfers need 1.6s of protocol time, more than the 1s ptime.
	if _, err := FromMeasured(3*time.Second, 2*time.Second, 0, 0, 1000); err == nil {
		t.Fatal("protocol > ptime accepted")
	}
}

func TestPredictMonotonicInBandwidth(t *testing.T) {
	d := PaperFFT24MB
	prev := d.Predict(1)
	for _, x := range []float64{2, 5, 10, 100} {
		cur := d.Predict(x)
		if cur >= prev {
			t.Fatalf("Predict not decreasing: %v at lower X vs %v at %v", prev, cur, x)
		}
		prev = cur
	}
	// Infinite bandwidth approaches AllMemory + protocol time.
	limit := d.AllMemory() + d.ProtocolTime()
	if got := d.Predict(1e9); abs(got-limit) > time.Millisecond {
		t.Fatalf("Predict(inf) = %v, want %v", got, limit)
	}
}

func TestPredictX1IsMeasured(t *testing.T) {
	d := PaperFFT24MB
	if got := d.Predict(1); abs(got-d.Elapsed()) > time.Millisecond {
		t.Fatalf("Predict(1) = %v, want measured %v", got, d.Elapsed())
	}
	// Non-positive X treated as 1.
	if got := d.Predict(0); abs(got-d.Elapsed()) > time.Millisecond {
		t.Fatalf("Predict(0) = %v, want measured", got)
	}
}

func abs(d time.Duration) time.Duration {
	if d < 0 {
		return -d
	}
	return d
}

func TestPagingFractionBounds(t *testing.T) {
	d := PaperFFT24MB
	for _, x := range []float64{1, 2, 10, 1000} {
		f := d.PagingFraction(x)
		if f < 0 || f > 1 || math.IsNaN(f) {
			t.Fatalf("PagingFraction(%v) = %v out of range", x, f)
		}
	}
	if d.PagingFraction(1) <= d.PagingFraction(10) {
		t.Fatal("paging fraction should shrink with bandwidth")
	}
}
