// Package model implements the paper's analytic completion-time
// model (§4.3), used to predict performance on faster interconnects
// than the measured 10 Mbps Ethernet.
//
// From a measured run the paper derives:
//
//	inittime = etime_nopaging - utime - systime
//	ptime    = etime - utime - systime - inittime
//	pptime   = 1.6 ms per page transfer (measured for TCP/IP)
//	btime    = ptime - transfers*pptime
//
// and predicts, for a network with X times the bandwidth:
//
//	etime(X) = utime + systime + inittime + transfers*pptime + btime/X
//
// The worked example (FFT, 24 MB input, parity logging over 4+1
// servers): etime 130.76 s = 66.138 utime + 3.133 sys + 0.21 init +
// 61.279 ptime; 2718 pageouts and 2055 pageins make 3397+2055 = 5452
// transfers; protocol 8.723 s; btime 52.556 s; at X=10 the prediction
// is 83.459 s with paging under 17 % of execution time.
package model

import (
	"fmt"
	"time"
)

// PPTime is the measured per-page protocol processing time.
const PPTime = 1600 * time.Microsecond

// Decomposition is a measured run broken into the model's factors.
type Decomposition struct {
	UTime     time.Duration
	SysTime   time.Duration
	InitTime  time.Duration
	Transfers uint64
	BTime     time.Duration
}

// FromMeasured derives a decomposition from the quantities the paper
// measures with time(1): elapsed, user, system and init times plus
// the transfer count.
func FromMeasured(etime, utime, systime, inittime time.Duration, transfers uint64) (Decomposition, error) {
	ptime := etime - utime - systime - inittime
	if ptime < 0 {
		return Decomposition{}, fmt.Errorf("model: negative ptime (etime %v < components)", etime)
	}
	pp := time.Duration(transfers) * PPTime
	if pp > ptime {
		return Decomposition{}, fmt.Errorf("model: protocol time %v exceeds ptime %v", pp, ptime)
	}
	return Decomposition{
		UTime:     utime,
		SysTime:   systime,
		InitTime:  inittime,
		Transfers: transfers,
		BTime:     ptime - pp,
	}, nil
}

// ProtocolTime is transfers * pptime.
func (d Decomposition) ProtocolTime() time.Duration {
	return time.Duration(d.Transfers) * PPTime
}

// PTime is the total paging overhead.
func (d Decomposition) PTime() time.Duration { return d.ProtocolTime() + d.BTime }

// Elapsed reconstructs the measured completion time.
func (d Decomposition) Elapsed() time.Duration {
	return d.UTime + d.SysTime + d.InitTime + d.PTime()
}

// Predict returns the expected completion time on a network with X
// times the bandwidth (protocol processing does not scale; only the
// bandwidth-dependent blocking time does).
func (d Decomposition) Predict(x float64) time.Duration {
	if x <= 0 {
		x = 1
	}
	return d.UTime + d.SysTime + d.InitTime + d.ProtocolTime() +
		time.Duration(float64(d.BTime)/x)
}

// AllMemory predicts the completion time with the whole working set
// in RAM: no paging at all.
func (d Decomposition) AllMemory() time.Duration {
	return d.UTime + d.SysTime + d.InitTime
}

// PagingFraction returns ptime/etime at bandwidth factor X — the
// paper's "less than 17% of the total application execution time"
// claim for X = 10.
func (d Decomposition) PagingFraction(x float64) float64 {
	e := d.Predict(x)
	if e == 0 {
		return 0
	}
	paging := d.ProtocolTime() + time.Duration(float64(d.BTime)/x)
	return float64(paging) / float64(e)
}

// PaperFFT24MB is the worked example's decomposition, straight from
// the paper's numbers.
var PaperFFT24MB = Decomposition{
	UTime:     66138 * time.Millisecond,
	SysTime:   3133 * time.Millisecond,
	InitTime:  210 * time.Millisecond,
	Transfers: 5452,
	BTime:     52556 * time.Millisecond,
}
