package client

import (
	"errors"
	"fmt"
	"time"
)

// This file implements the per-server circuit breaker that sits under
// the pager's retry layer. A server that times out repeatedly — on the
// data path, across requests — is "opened": further requests fail fast
// instead of each burning a full retry budget against a black hole,
// and the membership failure detector is told immediately that the
// server is suspect rather than waiting for the next missed heartbeat.
// After a cooldown the breaker half-opens: exactly one trial request
// is let through, and its outcome decides between closing the breaker
// (server recovered) and re-opening it (still wedged).
//
// The breaker is a pure state machine; all transitions run under the
// pager's mutex, so one trial request at a time is guaranteed by the
// caller's serialization.

// ErrBreakerOpen is returned (wrapped) when a request is refused
// because the target server's circuit breaker is open.
var ErrBreakerOpen = errors.New("client: server circuit breaker open")

// breakerState is the classic three-state circuit-breaker machine.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("breakerState(%d)", int(s))
}

// breakerDefaults: open after 4 consecutive transport failures, try a
// probe after 1s.
const (
	defaultBreakerThreshold = 4
	defaultBreakerCooldown  = time.Second
)

// breaker tracks consecutive transport failures (timeouts, severed
// connections) to one server. Checksum faults and server-reported
// statuses do not count: a server that answers, even with an error, is
// not wedged.
//rmpvet:holds Pager.mu
type breaker struct {
	threshold int           // consecutive failures before opening
	cooldown  time.Duration // open → half-open delay

	// state is the current position in the three-state machine.
	// Guarded by Pager.mu.
	state breakerState
	// failures counts consecutive transport failures. Guarded by
	// Pager.mu.
	failures int
	// openedAt is when the breaker last opened. Guarded by Pager.mu.
	openedAt time.Time
}

func newBreaker(threshold int, cooldown time.Duration) breaker {
	if threshold <= 0 {
		threshold = defaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = defaultBreakerCooldown
	}
	return breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether a request may proceed now. An open breaker
// whose cooldown has elapsed transitions to half-open and admits that
// one call as the trial probe.
func (b *breaker) allow(now time.Time) bool {
	switch b.state {
	case breakerClosed, breakerHalfOpen:
		// Half-open admits the trial; the caller's serialization means
		// success/failure always lands before the next allow.
		return true
	case breakerOpen:
		if now.Sub(b.openedAt) >= b.cooldown {
			b.state = breakerHalfOpen
			return true
		}
		return false
	}
	return true
}

// success records a completed round trip (including one the server
// answered with a non-OK status): the server is responsive. Closes a
// half-open breaker and resets the failure run.
func (b *breaker) success() {
	b.state = breakerClosed
	b.failures = 0
}

// failure records a transport failure. Returns true when this failure
// opened the breaker (closed → open transition), so the caller can
// count it and report the server suspect exactly once per opening.
func (b *breaker) failure(now time.Time) bool {
	b.failures++
	switch b.state {
	case breakerHalfOpen:
		// The trial failed: back to open, restart the cooldown.
		b.state = breakerOpen
		b.openedAt = now
		return false
	case breakerClosed:
		if b.failures >= b.threshold {
			b.state = breakerOpen
			b.openedAt = now
			return true
		}
	}
	return false
}

// reset returns the breaker to closed (a revived or re-joined server
// starts with a clean slate).
func (b *breaker) reset() {
	b.state = breakerClosed
	b.failures = 0
	b.openedAt = time.Time{}
}

// describe reports the state for surveys, accounting for a cooldown
// that has elapsed but not yet been consumed by a request.
func (b *breaker) describe(now time.Time) string {
	if b.state == breakerOpen && now.Sub(b.openedAt) >= b.cooldown {
		return breakerHalfOpen.String()
	}
	return b.state.String()
}
