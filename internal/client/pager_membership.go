package client

import (
	"errors"
	"sync"
	"time"

	"rmp/internal/membership"
)

// This file binds the pager to the membership layer: the heartbeat
// prober (PING over a dedicated connection per server), the detector
// event/ack handlers, dynamic join (AddServer, registry watching,
// peer gossip), graceful drain, revival, and the Redundancy survey.

// hbProber implements membership.Prober over dedicated heartbeat
// connections, one per server, separate from the data path — so a
// data transfer in flight cannot delay a heartbeat into a false
// suspicion, and a heartbeat cannot queue behind a slow pageout.
type hbProber struct {
	clientName, token string
	// dial is the injected transport (nil = TCP) and forceV1 the
	// protocol cap; both mirror the pager's Config.
	dial    DialFunc
	forceV1 bool

	mu sync.Mutex
	// conns caches one heartbeat connection per server address.
	// Guarded by mu.
	conns map[string]*Conn
	// closed latches Close so in-flight probes stop caching
	// connections. Guarded by mu.
	closed bool
}

func newHBProber(clientName, token string, dial DialFunc, forceV1 bool) *hbProber {
	return &hbProber{clientName: clientName, token: token, dial: dial, forceV1: forceV1, conns: make(map[string]*Conn)}
}

var errProberClosed = errors.New("client: heartbeat prober closed")

// Probe dials (or reuses) the heartbeat connection to addr and sends
// one PING. Both the dial and the exchange are bounded by timeout. On
// any failure the cached connection is discarded so the next probe
// re-dials from scratch.
func (h *hbProber) Probe(addr string, timeout time.Duration) (membership.Ack, error) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return membership.Ack{}, errProberClosed
	}
	c := h.conns[addr]
	h.mu.Unlock()
	if c == nil {
		// The HELLO exchange must respect the probe timeout too: against
		// a black-holed server the TCP connect succeeds and only the
		// request deadline bounds the handshake.
		nc, err := DialWithOptions(addr, h.clientName, h.token, DialOptions{
			Timeout:   timeout,
			Deadlines: Deadlines{Floor: timeout, Ceil: timeout},
			Dial:      h.dial,
			ForceV1:   h.forceV1,
		})
		if err != nil {
			return membership.Ack{}, err
		}
		h.mu.Lock()
		if h.closed {
			h.mu.Unlock()
			nc.Close()
			return membership.Ack{}, errProberClosed
		}
		h.conns[addr] = nc
		h.mu.Unlock()
		c = nc
	}
	free, draining, peers, err := c.Ping(timeout)
	if err != nil {
		c.Close()
		h.mu.Lock()
		if h.conns[addr] == c {
			delete(h.conns, addr)
		}
		h.mu.Unlock()
		return membership.Ack{}, err
	}
	return membership.Ack{FreePages: free, Draining: draining, Peers: peers}, nil
}

func (h *hbProber) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.closed = true
	for _, c := range h.conns {
		c.Close()
	}
	h.conns = make(map[string]*Conn)
}

// serverIdx finds the index of addr in the server table (p.mu held).
//rmpvet:holds Pager.mu
func (p *Pager) serverIdx(addr string) int {
	for i, rs := range p.servers {
		if rs.addr == addr {
			return i
		}
	}
	return -1
}

// onMemberEvent reacts to failure-detector transitions. Runs on a
// probe goroutine, never with the detector lock held.
func (p *Pager) onMemberEvent(ev membership.Event) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	srv := p.serverIdx(ev.Addr)
	if srv < 0 {
		return
	}
	rs := p.servers[srv]
	switch ev.To {
	case membership.StateSuspect:
		rs.suspect = true
		p.logf("server %s suspect: %v", rs.addr, ev.Cause)
	case membership.StateDead:
		rs.suspect = true
		if rs.alive {
			// Death confirmed by missed heartbeats, not by a failed
			// data-path request — the detector's whole point.
			p.stats.HeartbeatDeaths++
			p.serverDied(srv, ev.Cause)
		}
	case membership.StateAlive:
		rs.suspect = false
		if !rs.alive && !rs.draining {
			p.reviveServer(srv)
		}
	}
}

// onMemberAck consumes successful probe results: drain advisories and
// gossiped peers. Runs on a probe goroutine.
func (p *Pager) onMemberAck(addr string, ack membership.Ack) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	if srv := p.serverIdx(addr); srv >= 0 {
		rs := p.servers[srv]
		rs.suspect = false
		switch {
		case ack.Draining && !rs.draining && rs.alive:
			// Mark immediately so pickFrom stops placing pages there,
			// then evacuate in the background.
			rs.draining = true
			p.rep.Enqueue(membership.Job{
				Kind: membership.JobDrain, Addr: rs.addr, ConfirmedAt: time.Now(),
				Run: func() error {
					p.mu.Lock()
					defer p.mu.Unlock()
					if p.closed {
						return nil
					}
					return p.finishDrain(srv)
				},
			})
		case !ack.Draining && rs.draining && !rs.alive:
			// The drain was cancelled (operator kept the server): it
			// answers heartbeats and no longer advises drain. Rejoin it.
			rs.draining = false
			p.reviveServer(srv)
		}
	}
	var unknown []string
	for _, peer := range ack.Peers {
		if p.serverIdx(peer) < 0 {
			unknown = append(unknown, peer)
		}
	}
	p.mu.Unlock()
	for _, peer := range unknown {
		if err := p.AddServer(peer); err != nil {
			p.logf("joining gossiped peer %s: %v", peer, err)
		}
	}
}

// onRegistryChange is the WatchRegistry callback: join-only — servers
// added to the file join the view; removals are ignored (leaving is
// the drain protocol's job, not an edit war's).
func (p *Pager) onRegistryChange(servers []string) {
	for _, addr := range servers {
		p.mu.Lock()
		known := p.serverIdx(addr) >= 0
		closed := p.closed
		p.mu.Unlock()
		if closed {
			return
		}
		if !known {
			if err := p.AddServer(addr); err != nil {
				p.logf("joining %s from registry: %v", addr, err)
			}
		}
	}
}

// AddServer adds a server to the live view at runtime (dynamic join)
// and makes it eligible for new placements. If the dial fails the
// server is still tracked — dead, with the dial error as cause — so
// the failure detector revives it once it becomes reachable. The
// error is the dial error, if any.
func (p *Pager) AddServer(addr string) error {
	p.addMu.Lock()
	defer p.addMu.Unlock()
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return errors.New("client: pager closed")
	}
	if p.serverIdx(addr) >= 0 {
		p.mu.Unlock()
		return nil
	}
	p.mu.Unlock()

	// Dial outside p.mu: a slow join must not stall the data path.
	// addMu keeps concurrent joins of the same address out.
	conn, dialErr := DialWithOptions(addr, p.cfg.ClientName, p.cfg.AuthToken, p.dialOpts(DialTimeout))

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		if conn != nil {
			conn.Close()
		}
		return errors.New("client: pager closed")
	}
	rs := &remoteServer{addr: addr, joinedAt: time.Now(),
		breaker: newBreaker(p.cfg.BreakerThreshold, p.cfg.BreakerCooldown)}
	if dialErr == nil {
		rs.conn = conn
		rs.alive = true
		rs.everConnected = true
	} else {
		rs.diedCause = dialErr
	}
	idx := len(p.servers)
	p.servers = append(p.servers, rs)
	p.stats.Joined++
	if rs.alive {
		p.pol.serverJoined(idx)
	}
	p.logf("server %s joined the view (alive=%v)", addr, rs.alive)
	p.mu.Unlock()

	if p.hb != nil {
		p.hb.Track(addr)
	}
	return dialErr
}

// reviveServer re-dials a dead server and hands it back to the policy
// (p.mu held). Any pending re-protection for it runs first, under the
// pre-revival layout — mixing a rebuild with a rejoin would let the
// policy hand reconstruction reads to the server that just lost
// everything.
//rmpvet:holds Pager.mu
func (p *Pager) reviveServer(srv int) bool {
	rs := p.servers[srv]
	if rs.alive || rs.draining {
		return false
	}
	// A server whose breaker opened (it kept timing out) is readmitted
	// only through the breaker's own schedule: wait out the cooldown,
	// then let the re-dial + HELLO below act as the half-open probe.
	if !rs.breaker.allow(time.Now()) {
		return false
	}
	p.ensureRecovered(srv)
	conn, err := DialWithOptions(rs.addr, p.cfg.ClientName, p.cfg.AuthToken, p.dialOpts(DialTimeout))
	if err != nil {
		rs.breaker.failure(time.Now())
		return false
	}
	rs.breaker.reset()
	rs.conn = conn
	rs.alive = true
	rs.everConnected = true
	rs.granted, rs.used = 0, 0
	rs.pressured = false
	rs.suspect = false
	rs.diedAt = time.Time{}
	rs.diedCause = nil
	p.pol.serverJoined(srv)
	p.logf("server %s rejoined", rs.addr)
	return true
}

// finishDrain completes a graceful leave (p.mu held): migrate every
// page off the draining server, say BYE (the server purges this
// client's pages and reservation once our last session closes), and
// retire it from the live view. The draining flag stays set so the
// server is neither picked nor re-dialed; a cancelled drain revives
// it via the heartbeat path.
//rmpvet:holds Pager.mu
func (p *Pager) finishDrain(srv int) error {
	rs := p.servers[srv]
	if !rs.alive {
		return nil // died mid-drain; crash recovery handled it
	}
	p.ensureAllRecovered()
	if err := p.pol.evacuate(srv); err != nil {
		return err
	}
	rs.conn.Bye()
	rs.alive = false
	rs.granted, rs.used = 0, 0
	p.stats.Drained++
	p.logf("server %s drained and released", rs.addr)
	return nil
}

// Redundancy classifies every paged-out page by what one more server
// crash would do to it.
type Redundancy struct {
	// Full pages survive any single additional server crash (a second
	// remote copy, an intact parity group, or a local-disk copy —
	// the disk does not die with a server).
	Full int
	// Degraded pages are currently readable but could be lost by one
	// more crash (single remote copy, broken parity group).
	Degraded int
	// Lost pages are already unrecoverable.
	Lost int
}

// Redundancy reports the current redundancy of every page. It is a
// pure observer — no recovery is triggered — so tests and operators
// can poll it to watch background re-protection converge.
func (p *Pager) Redundancy() Redundancy {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return Redundancy{}
	}
	return p.pol.redundancy()
}
