package client

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"time"

	"rmp/internal/wire"
)

// This file is the pager's bounded-retry layer: every data-path
// request to a server runs through withConn, which combines
//
//   - the connection's adaptive deadline (conn.go) turning a wedged
//     server into a prompt timeout,
//   - exponential backoff with full jitter between attempts,
//   - reconnection and replay of idempotent requests (PAGEIN always;
//     PAGEOUT/XORWRITE are keyed puts, so a replay lands the same
//     bytes under the same key; FREE/ALLOC/LOAD tolerate replay),
//   - a total per-fault budget, after which the caller degrades
//     (reads reconstruct through the redundancy policy or the disk,
//     writes fall back to the local swap store), and
//   - the per-server circuit breaker (breaker.go), which fail-fasts
//     requests to a server that keeps timing out and reports it
//     suspect to the membership detector immediately.
//
// Server pages and swap reservations survive a reconnect: the server
// purges a client's namespace only after BYE (server.go), so closing a
// poisoned connection and replaying on a fresh one is safe.

// Retry-layer defaults (overridable via Config).
const (
	defaultRetryBudget = 2 * time.Second
	defaultRetryBase   = 5 * time.Millisecond
	defaultRetryCap    = 200 * time.Millisecond
	// backoffMaxShift bounds the exponential doubling so the shift
	// cannot overflow; the cap dominates long before this.
	backoffMaxShift = 16
	// badChecksumRetries is how many times a BAD_CHECKSUM verdict is
	// replayed in place before it is treated as persistent corruption
	// and handed to the redundancy policy for reconstruction.
	badChecksumRetries = 2
)

// backoffDelay computes the delay before retry number attempt+1:
// exponential doubling of base, capped at max, with "equal jitter" —
// the result is uniform in [d/2, d] where d = min(cap, base·2^attempt).
// rnd must be in [0, 1); it is a parameter so tests can pin the bounds.
func backoffDelay(attempt int, base, max time.Duration, rnd float64) time.Duration {
	if base <= 0 {
		base = defaultRetryBase
	}
	if max <= 0 {
		max = defaultRetryCap
	}
	if max < base {
		max = base
	}
	if attempt > backoffMaxShift {
		attempt = backoffMaxShift
	}
	d := base << uint(attempt)
	if d <= 0 || d > max {
		d = max
	}
	half := d / 2
	return half + time.Duration(rnd*float64(half))
}

// retryBudget is the total time one fault may spend on a single
// server across attempts, backoffs, and re-dials. One in-flight
// request can overshoot it by at most its own deadline.
func (p *Pager) retryBudget() time.Duration {
	if p.cfg.RetryBudget > 0 {
		return p.cfg.RetryBudget
	}
	return defaultRetryBudget
}

// deadlines resolves the configured adaptive-deadline parameters.
func (p *Pager) deadlines() Deadlines {
	return Deadlines{Floor: p.cfg.ReqTimeoutFloor, Ceil: p.cfg.ReqTimeout}.withDefaults()
}

// dialOpts bundles the pager's connection knobs for a dial bounded by
// timeout: adaptive deadlines, the injected transport, and the
// protocol-version cap.
func (p *Pager) dialOpts(timeout time.Duration) DialOptions {
	return DialOptions{
		Timeout:   timeout,
		Deadlines: p.deadlines(),
		Dial:      p.cfg.Dial,
		ForceV1:   p.cfg.ForceWireV1,
	}
}

// isTimeoutErr reports whether err is a deadline miss (request or
// dial) as opposed to a fast transport failure (refused, reset, EOF).
// Only timeouts feed the circuit breaker: fast failures are cheap and
// need no fail-fast protection.
func isTimeoutErr(err error) bool {
	if errors.Is(err, ErrReqTimeout) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// isBadChecksum reports whether err is a checksum failure — either the
// server rejecting our frame or our verification of its response. The
// connection stays framed (the frame was fully read), so the exchange
// can simply be re-requested.
func isBadChecksum(err error) bool {
	var se *wire.StatusError
	return errors.As(err, &se) && se.Status == wire.StatusBadChecksum
}

// reportSuspect marks srv suspect in the pager's view and tells the
// membership detector immediately, so death confirmation starts now
// instead of at the next missed heartbeat. Runs with p.mu held; the
// detector callback re-enters the pager, so the report is dispatched
// asynchronously.
//rmpvet:holds Pager.mu
func (p *Pager) reportSuspect(srv int, cause error) {
	rs := p.servers[srv]
	rs.suspect = true
	p.logf("server %s suspect (circuit breaker open): %v", rs.addr, cause)
	if p.hb != nil {
		go p.hb.Suspect(rs.addr, cause)
	}
}

// sleepBackoff waits the jittered backoff before retry attempt+1 if
// that still fits in the budget; false means the budget is exhausted
// and the caller must degrade. Runs with p.mu held — the pager
// serializes requests like the paper's one paging daemon, so a fault
// in retry blocks its siblings at most for the remaining budget.
//rmpvet:holds Pager.mu
func (p *Pager) sleepBackoff(attempt int, budgetEnd time.Time) bool {
	d := backoffDelay(attempt, p.cfg.RetryBaseDelay, p.cfg.RetryMaxDelay, rand.Float64())
	if time.Now().Add(d).After(budgetEnd) {
		return false
	}
	time.Sleep(d)
	return true
}

// withConn runs op against server srv's connection under the retry
// layer. idempotent ops are re-issued (with backoff, on a fresh
// connection) until they succeed or the retry budget is exhausted;
// non-idempotent ops (XORDELTA) get exactly one bounded attempt.
// Checksum failures are retried in place (the stream stays framed),
// and so are deadline misses on a multiplexed (v2) session — the late
// ack is dropped by id, the session stays healthy; other transport
// failures poison the connection and re-dial.
//
// On return with a transport-level error the server's connection is
// closed; callers route such errors to serverDied, whose recovery
// (synchronous or background) is the guaranteed degradation path.
// Runs with p.mu held.
//rmpvet:holds Pager.mu
func (p *Pager) withConn(srv int, idempotent bool, op func(*Conn) error) error {
	rs := p.servers[srv]
	if !rs.alive || rs.conn == nil {
		return fmt.Errorf("client: server %s is down", rs.addr)
	}
	budgetEnd := time.Now().Add(p.retryBudget())
	broken := false // connection closed; next attempt must re-dial
	badSums := 0
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if !p.sleepBackoff(attempt-1, budgetEnd) {
				p.stats.DeadlineFallbacks++
				return lastErr
			}
			p.stats.Retries++
		}
		if !rs.breaker.allow(time.Now()) {
			if lastErr != nil {
				return fmt.Errorf("%w: %s (last: %w)", ErrBreakerOpen, rs.addr, lastErr)
			}
			return fmt.Errorf("%w: %s", ErrBreakerOpen, rs.addr)
		}
		if broken {
			remaining := time.Until(budgetEnd)
			if remaining > DialTimeout {
				remaining = DialTimeout
			}
			nc, derr := DialWithOptions(rs.addr, p.cfg.ClientName, p.cfg.AuthToken, p.dialOpts(remaining))
			if derr != nil {
				lastErr = derr
				p.noteTransportFailure(rs, derr)
				continue
			}
			rs.conn = nc
			broken = false
		}
		err := op(rs.conn)
		if err == nil {
			rs.breaker.success()
			return nil
		}
		if !isConnError(err) {
			// The server answered — transport is healthy even if the
			// verdict is not OK.
			rs.breaker.success()
			if isBadChecksum(err) && idempotent && badSums < badChecksumRetries {
				// Transient line corruption clears on a replay; if it
				// persists, the stored copy itself is bad — surface it
				// quickly so the policy can reconstruct from redundancy.
				badSums++
				p.stats.ChecksumFaults++
				lastErr = err
				continue
			}
			return err
		}
		lastErr = err
		p.noteTransportFailure(rs, err)
		if errors.Is(err, ErrReqTimeout) && rs.conn.Multiplexed() && !rs.conn.Broken() {
			// A multiplexed session survives a deadline miss: the late
			// ack is discarded by id, the stream stays framed. Keep
			// the connection and replay on it — the breaker still
			// counted the timeout, so a persistently wedged server
			// fail-fasts regardless.
		} else {
			rs.conn.Close()
			broken = true
		}
		if !idempotent {
			return err
		}
	}
}

// noteTransportFailure accounts a transport-level failure: timeouts
// are counted and fed to the circuit breaker; an opening breaker is
// counted and reported to the failure detector.
//rmpvet:holds Pager.mu
func (p *Pager) noteTransportFailure(rs *remoteServer, err error) {
	if !isTimeoutErr(err) {
		return
	}
	p.stats.Timeouts++
	if rs.breaker.failure(time.Now()) {
		p.stats.BreakerOpens++
		p.reportSuspect(p.indexOf(rs), err)
	}
}

// indexOf finds rs's index in the server table (p.mu held).
//rmpvet:holds Pager.mu
func (p *Pager) indexOf(rs *remoteServer) int {
	for i, s := range p.servers {
		if s == rs {
			return i
		}
	}
	return -1
}
