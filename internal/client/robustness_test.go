package client_test

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"rmp/internal/client"
	"rmp/internal/page"
)

// End-to-end tests for the bounded data path: adaptive request
// deadlines, bounded retry with backoff, per-server circuit breakers,
// and the guaranteed degradation paths (reconstruction for reads,
// local swap for writes) when a server wedges or corrupts responses.

// tightTimeouts is a Config fragment that shrinks the retry layer's
// time constants so a wedged server costs a test milliseconds, not the
// production seconds.
func tightTimeouts(cfg client.Config) client.Config {
	cfg.ReqTimeoutFloor = 30 * time.Millisecond
	cfg.ReqTimeout = 150 * time.Millisecond
	cfg.RetryBudget = 500 * time.Millisecond
	cfg.RetryBaseDelay = 2 * time.Millisecond
	cfg.RetryMaxDelay = 20 * time.Millisecond
	cfg.BreakerThreshold = 2
	cfg.BreakerCooldown = 300 * time.Millisecond
	return cfg
}

// noConnGoroutines asserts that no goroutine is still blocked inside a
// connection round trip — the "zero goroutines left behind by the
// stalled server" half of the bounded-data-path guarantee.
func noConnGoroutines(t *testing.T) {
	t.Helper()
	waitUntil(t, 3*time.Second, "conn goroutines to drain", func() bool {
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		return !strings.Contains(string(buf[:n]), "(*Conn).roundTrip")
	})
}

// TestStalledServerPageInBounded is the issue's acceptance scenario: a
// mirrored cluster where one server's network black-holes (TCP stays
// open, the daemon never answers — the wedged-process failure mode no
// connection error ever reports). Every page fault must still complete
// with correct contents within the retry budget, the breaker must open
// and report the server suspect, and no goroutine may stay blocked on
// the dead connection.
func TestStalledServerPageInBounded(t *testing.T) {
	pc := newProxiedCluster(t, 3, 512)
	p, err := client.New(tightTimeouts(client.Config{
		ClientName: "stall-test",
		Servers:    pc.via,
		Policy:     client.PolicyMirroring,
		Membership: hbConfig(),
		Dial:       pc.net.DialTimeout,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const n = 20
	for i := uint64(0); i < n; i++ {
		if err := p.PageOut(page.ID(i), mkPage(i)); err != nil {
			t.Fatalf("pageout %d: %v", i, err)
		}
	}

	// Black-hole server 0: nothing is forwarded any more, in either
	// direction, but every TCP connection (data path, re-dials, and
	// heartbeats alike) stays open.
	pc.proxies[0].Stall(0)

	// Each fault is individually bounded: retry budget, plus one
	// in-flight deadline of overshoot, plus recovery work — generous
	// slack for the race detector.
	perFault := 3 * time.Second
	for i := uint64(0); i < n; i++ {
		start := time.Now()
		got, err := p.PageIn(page.ID(i))
		if err != nil {
			t.Fatalf("pagein %d with one server stalled: %v", i, err)
		}
		if got.Checksum() != mkPage(i).Checksum() {
			t.Fatalf("pagein %d: wrong contents", i)
		}
		if el := time.Since(start); el > perFault {
			t.Fatalf("pagein %d took %v, want < %v", i, el, perFault)
		}
	}

	st := p.Stats()
	if st.Timeouts == 0 {
		t.Error("no request timeouts recorded against the stalled server")
	}
	if st.BreakerOpens == 0 {
		t.Error("circuit breaker never opened despite consecutive timeouts")
	}
	for _, info := range p.Survey() {
		if info.Addr == pc.via[0] && info.Alive {
			t.Error("stalled server still considered alive after budget exhaustion")
		}
	}

	// Redundancy converges back to full via background re-protection.
	waitUntil(t, 5*time.Second, "re-protection to restore redundancy", func() bool {
		r := p.Redundancy()
		return r.Full == n && p.Stats().RebuildPending == 0
	})

	// Shut down while one server is still black-holed: heartbeat
	// probes in flight must unblock via their deadlines, and nothing
	// may stay parked on the dead connection.
	p.Close()
	noConnGoroutines(t)
}

// TestStallMidPageInWritesFallBack stalls a server in the middle of a
// pagein response — the first kilobytes arrive, then the stream goes
// silent mid-frame. Reads must complete from the mirror replica within
// the budget, and subsequent pageouts must degrade to the local swap
// device (disk shadow) now that only one server remains.
func TestStallMidPageInWritesFallBack(t *testing.T) {
	pc := newProxiedCluster(t, 2, 256)
	p, err := client.New(tightTimeouts(client.Config{
		ClientName: "midstall-test",
		Servers:    pc.via,
		Policy:     client.PolicyMirroring,
		Dial:       pc.net.DialTimeout,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const n = 10
	for i := uint64(0); i < n; i++ {
		if err := p.PageOut(page.ID(i), mkPage(i)); err != nil {
			t.Fatalf("pageout %d: %v", i, err)
		}
	}

	// 2 KB of allowance: the next pagein request passes through, its
	// 8 KB response truncates mid-frame, and everything after is
	// black-holed.
	pc.proxies[0].Stall(2048)

	start := time.Now()
	for i := uint64(0); i < n; i++ {
		got, err := p.PageIn(page.ID(i))
		if err != nil {
			t.Fatalf("pagein %d: %v", i, err)
		}
		if got.Checksum() != mkPage(i).Checksum() {
			t.Fatalf("pagein %d: wrong contents", i)
		}
	}
	if el := time.Since(start); el > 15*time.Second {
		t.Fatalf("reads with one stalled server took %v", el)
	}
	if p.Stats().Timeouts == 0 {
		t.Error("mid-frame stall never produced a request timeout")
	}

	// Writes: with only one healthy server the mirror policy must fall
	// back to one replica plus the local swap shadow — and stay bounded.
	for i := uint64(100); i < 100+5; i++ {
		start := time.Now()
		if err := p.PageOut(page.ID(i), mkPage(i)); err != nil {
			t.Fatalf("pageout %d after stall: %v", i, err)
		}
		if el := time.Since(start); el > 3*time.Second {
			t.Fatalf("pageout %d took %v", i, el)
		}
	}
	if p.Stats().FallbackPageOuts == 0 {
		t.Error("degraded pageouts never fell back to the local swap device")
	}
	for i := uint64(100); i < 100+5; i++ {
		got, err := p.PageIn(page.ID(i))
		if err != nil || got.Checksum() != mkPage(i).Checksum() {
			t.Fatalf("degraded page %d unreadable: %v", i, err)
		}
	}
	noConnGoroutines(t)
}

// TestCorruptResponsesReconstructed: a proxy that flips a byte in
// every data-bearing response makes one server's reads fail checksum
// verification persistently. The pager must treat that as a transient
// fault of the copy — reconstruct through the active redundancy policy
// (mirror replica, parity group, parity log, or the write-through
// disk) — and never surface the corruption to the application.
func TestCorruptResponsesReconstructed(t *testing.T) {
	cases := []struct {
		pol     client.Policy
		servers int
	}{
		{client.PolicyMirroring, 2},
		{client.PolicyParity, 3},
		{client.PolicyParityLogging, 3},
		{client.PolicyWriteThrough, 2},
		{client.PolicyRS, 6}, // BAD_CHECKSUM repaired by decode-then-rewrite
	}
	for _, tc := range cases {
		t.Run(tc.pol.String(), func(t *testing.T) {
			pc := newProxiedCluster(t, tc.servers, 512)
			p, err := client.New(client.Config{
				ClientName: "corrupt-test",
				Servers:    pc.via,
				Policy:     tc.pol,
				Dial:       pc.net.DialTimeout,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()

			const n = 16
			for i := uint64(0); i < n; i++ {
				if err := p.PageOut(page.ID(i), mkPage(i)); err != nil {
					t.Fatalf("pageout %d: %v", i, err)
				}
			}

			// Corrupt every data-bearing response from server 0. Write
			// traffic and bare acks pass through intact.
			pc.proxies[0].CorruptResponses(1)
			for i := uint64(0); i < n; i++ {
				got, err := p.PageIn(page.ID(i))
				if err != nil {
					t.Fatalf("pagein %d through corruption: %v", i, err)
				}
				if got.Checksum() != mkPage(i).Checksum() {
					t.Fatalf("pagein %d: corruption reached the application", i)
				}
			}
			st := p.Stats()
			if st.ChecksumFaults == 0 {
				t.Error("no checksum faults recorded although every response was corrupted")
			}

			// The line heals; the repaired copies read back clean.
			pc.proxies[0].CorruptResponses(0)
			for i := uint64(0); i < n; i++ {
				got, err := p.PageIn(page.ID(i))
				if err != nil || got.Checksum() != mkPage(i).Checksum() {
					t.Fatalf("pagein %d after heal: %v", i, err)
				}
			}
		})
	}
}
