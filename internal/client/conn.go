// Package client implements the Remote Memory Pager (RMP): the
// client side of the paper's system. It connects to remote memory
// servers over TCP, forwards pagein/pageout requests to them under a
// configurable reliability policy, falls back to the local disk when
// no server has free memory, migrates pages away from loaded servers,
// and reconstructs lost pages after a server crash.
//
// This file holds Conn, the low-level request/response channel to one
// server. Conn is safe for concurrent use: requests are serialized on
// the wire (the protocol is strict request/response), so callers that
// want parallel transfers to the same server open several Conns.
package client

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rmp/internal/page"
	"rmp/internal/wire"
)

// Conn is one authenticated protocol connection to a remote memory
// server.
type Conn struct {
	mu   sync.Mutex
	conn net.Conn
	addr string

	// dl bounds every round trip with an adaptive deadline derived
	// from the RTT estimator (see Deadlines). Set before first use;
	// immutable afterwards.
	dl Deadlines

	// pressureMu protects the advisory state latched off acks; it is
	// separate from mu so the pager can poll advisories without
	// contending with an in-flight round trip.
	pressureMu sync.Mutex
	// pressured is latched when any ack arrives with FlagPressure set;
	// the pager polls and clears it to drive migration. Guarded by
	// pressureMu.
	pressured bool
	// draining is latched when any ack arrives with FlagDrain set: the
	// server asked to leave and wants its pages migrated out. Unlike
	// pressure it is not cleared on read — a draining server stays
	// draining until the pager finishes evacuating it. Guarded by
	// pressureMu.
	draining bool
	// serverFree is the last free-page count reported by the server
	// (HELLO_ACK and LOAD_ACK carry it). Guarded by pressureMu.
	serverFree uint32

	// rttNanos is an EWMA of request round-trip time (srtt). The
	// paper's §5 network-load adaptation ("measuring the time it takes
	// to satisfy a request and using a threshold") and its
	// heterogeneous-network placement both key off this.
	rttNanos atomic.Int64
	// rttvarNanos is the smoothed mean RTT deviation (Jacobson): the
	// request deadline is srtt + 4·rttvar, clamped and padded per byte.
	rttvarNanos atomic.Int64
}

// rttAlpha is the EWMA weight of a new sample (1/8, classic TCP).
const rttAlpha = 8

// rttBeta is the deviation-EWMA weight of a new sample (1/4, classic
// TCP/Jacobson).
const rttBeta = 4

// DialTimeout is how long Dial waits for TCP establishment.
const DialTimeout = 5 * time.Second

// Deadlines parametrizes the adaptive per-request deadline: every
// round trip is bounded by
//
//	clamp(srtt + 4·rttvar, Floor, Ceil) + PerByte·payloadBytes
//
// so a wedged server (TCP alive, process black-holed) turns into a
// bounded timeout error instead of an indefinitely hung page fault.
// The per-byte allowance keeps large transfers (8 KB pages, pipelined
// batches) from being strangled by an estimate learned on small
// requests. Before the first sample the deadline is Ceil.
type Deadlines struct {
	// Floor is the minimum deadline; it absorbs scheduler noise and
	// GC pauses that the EWMA has not seen. Default 50ms.
	Floor time.Duration
	// Ceil caps the adaptive deadline (and is the whole deadline while
	// the connection has no RTT estimate yet). Default 5s.
	Ceil time.Duration
	// PerByte is added per payload byte on top of the clamped
	// estimate. Default 1µs (≈8ms per 8 KB page, a 1996-class link).
	PerByte time.Duration
}

// DefaultDeadlines returns the default deadline parameters.
func DefaultDeadlines() Deadlines {
	return Deadlines{Floor: 50 * time.Millisecond, Ceil: 5 * time.Second, PerByte: time.Microsecond}
}

func (d Deadlines) withDefaults() Deadlines {
	def := DefaultDeadlines()
	if d.Floor <= 0 {
		d.Floor = def.Floor
	}
	if d.Ceil <= 0 {
		d.Ceil = def.Ceil
	}
	if d.Ceil < d.Floor {
		d.Ceil = d.Floor
	}
	if d.PerByte <= 0 {
		d.PerByte = def.PerByte
	}
	return d
}

// ErrReqTimeout marks a round trip that missed its adaptive deadline.
// The connection is poisoned (a late ack would desynchronize the
// framing); callers must discard it. errors.Is(err, ErrReqTimeout)
// identifies the case.
var ErrReqTimeout = errors.New("client: request deadline exceeded")

// Dial connects to a server, performs the HELLO handshake as
// clientName with the given auth token, and returns the ready Conn.
func Dial(addr, clientName, token string) (*Conn, error) {
	return DialWithTimeout(addr, clientName, token, DialTimeout)
}

// DialWithTimeout is Dial with an explicit TCP-establishment bound
// (the heartbeat prober uses the detector's probe timeout here, so a
// black-holed re-dial cannot outlive the probe deadline).
func DialWithTimeout(addr, clientName, token string, timeout time.Duration) (*Conn, error) {
	return DialWithDeadlines(addr, clientName, token, timeout, DefaultDeadlines())
}

// DialWithDeadlines is DialWithTimeout with explicit request-deadline
// parameters (the pager threads its configured floor/ceiling here).
func DialWithDeadlines(addr, clientName, token string, timeout time.Duration, dl Deadlines) (*Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	c := &Conn{conn: nc, addr: addr, dl: dl.withDefaults()}
	hello := &wire.Msg{Type: wire.THello, Host: clientName, Data: []byte(token)}
	ack, err := c.roundTrip(hello)
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("client: hello %s: %w", addr, err)
	}
	if err := ack.Status.Err(); err != nil {
		nc.Close()
		return nil, fmt.Errorf("client: hello %s: %w", addr, err)
	}
	c.serverFree = ack.N
	return c, nil
}

// Addr returns the server address this connection targets.
func (c *Conn) Addr() string { return c.addr }

// Close tears the connection down without the BYE exchange.
func (c *Conn) Close() error { return c.conn.Close() }

// reqPayloadBytes estimates the wire payload a request moves in each
// direction: its own data plus the expected response data (a PAGEIN
// ack carries a full page back).
func reqPayloadBytes(req *wire.Msg) int {
	n := len(req.Data)
	if req.Type == wire.TPageIn {
		n += page.Size
	}
	return n
}

// requestDeadline computes the adaptive bound for a round trip moving
// the given payload bytes: clamp(srtt + 4·rttvar, floor, ceil) plus
// the per-byte allowance. With no RTT estimate yet, the ceiling.
func (c *Conn) requestDeadline(payloadBytes int) time.Duration {
	srtt := c.rttNanos.Load()
	if srtt == 0 {
		return c.dl.Ceil + time.Duration(payloadBytes)*c.dl.PerByte
	}
	d := time.Duration(srtt + 4*c.rttvarNanos.Load())
	if d < c.dl.Floor {
		d = c.dl.Floor
	}
	if d > c.dl.Ceil {
		d = c.dl.Ceil
	}
	return d + time.Duration(payloadBytes)*c.dl.PerByte
}

// RequestDeadline is the adaptive deadline the connection would apply
// to a round trip moving payloadBytes (diagnostics: rmpctl, Survey).
func (c *Conn) RequestDeadline(payloadBytes int) time.Duration {
	return c.requestDeadline(payloadBytes)
}

// observeRTT folds one round-trip sample into the Jacobson
// srtt/rttvar estimators.
func (c *Conn) observeRTT(sample int64) {
	old := c.rttNanos.Load()
	if old == 0 {
		c.rttNanos.Store(sample)
		c.rttvarNanos.Store(sample / 2)
		return
	}
	dev := sample - old
	if dev < 0 {
		dev = -dev
	}
	oldVar := c.rttvarNanos.Load()
	c.rttvarNanos.Store(oldVar + (dev-oldVar)/rttBeta)
	c.rttNanos.Store(old + (sample-old)/rttAlpha)
}

// timeoutErr classifies an I/O failure: a miss of the adaptive
// deadline is wrapped in ErrReqTimeout so the retry layer can count
// it; everything else passes through.
func timeoutErr(err error, addr string, d time.Duration) error {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return fmt.Errorf("%w: no ack from %s within %v", ErrReqTimeout, addr, d)
	}
	return err
}

// roundTrip sends req and reads one ack under the adaptive deadline,
// latching pressure advisories and folding the measured service time
// into the RTT estimate. A deadline miss poisons the connection (a
// late ack would desynchronize the request/response framing) — the
// caller must discard the Conn after any error.
func (c *Conn) roundTrip(req *wire.Msg) (*wire.Msg, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d := c.requestDeadline(reqPayloadBytes(req))
	c.conn.SetDeadline(time.Now().Add(d))
	defer c.conn.SetDeadline(time.Time{})
	start := time.Now()
	if err := wire.Encode(c.conn, req); err != nil {
		return nil, timeoutErr(err, c.addr, d)
	}
	ack, err := wire.Decode(c.conn)
	if err != nil {
		return nil, timeoutErr(err, c.addr, d)
	}
	c.observeRTT(time.Since(start).Nanoseconds())
	if ack.Type != req.Type.Ack() {
		return nil, fmt.Errorf("client: got %v in reply to %v", ack.Type, req.Type)
	}
	c.latchFlags(ack.Flags)
	return ack, nil
}

// latchFlags records advisory flags carried on any ack.
func (c *Conn) latchFlags(flags uint8) {
	if flags&(wire.FlagPressure|wire.FlagDrain) == 0 {
		return
	}
	c.pressureMu.Lock()
	if flags&wire.FlagPressure != 0 {
		c.pressured = true
	}
	if flags&wire.FlagDrain != 0 {
		c.draining = true
	}
	c.pressureMu.Unlock()
}

// RTT returns the smoothed request round-trip estimate (0 before the
// first completed request).
func (c *Conn) RTT() time.Duration { return time.Duration(c.rttNanos.Load()) }

// RTTVar returns the smoothed mean deviation of the round-trip
// estimate (0 before the first completed request).
func (c *Conn) RTTVar() time.Duration { return time.Duration(c.rttvarNanos.Load()) }

// Stat fetches the server's state snapshot.
func (c *Conn) Stat() (wire.StatInfo, error) {
	ack, err := c.roundTrip(&wire.Msg{Type: wire.TStat})
	if err != nil {
		return wire.StatInfo{}, err
	}
	if err := ack.Status.Err(); err != nil {
		return wire.StatInfo{}, err
	}
	var info wire.StatInfo
	if err := json.Unmarshal(ack.Data, &info); err != nil {
		return wire.StatInfo{}, fmt.Errorf("client: stat: %w", err)
	}
	return info, nil
}

// PressureAdvised reports and clears the latched pressure advisory.
func (c *Conn) PressureAdvised() bool {
	c.pressureMu.Lock()
	defer c.pressureMu.Unlock()
	p := c.pressured
	c.pressured = false
	return p
}

// DrainAdvised reports (without clearing) the latched drain advisory.
func (c *Conn) DrainAdvised() bool {
	c.pressureMu.Lock()
	defer c.pressureMu.Unlock()
	return c.draining
}

// Alloc asks the server to promise n pages of swap space and returns
// the number granted (0 with a nil error means the server is full).
func (c *Conn) Alloc(n int) (int, error) {
	ack, err := c.roundTrip(&wire.Msg{Type: wire.TAlloc, N: uint32(n)})
	if err != nil {
		return 0, err
	}
	if ack.Status == wire.StatusNoSpace {
		return int(ack.N), nil
	}
	if err := ack.Status.Err(); err != nil {
		return 0, err
	}
	return int(ack.N), nil
}

// PageOut stores data under key on the server.
func (c *Conn) PageOut(key uint64, data page.Buf) error {
	if err := data.CheckLen(); err != nil {
		return err
	}
	req := (&wire.Msg{Type: wire.TPageOut, Key: key, Data: data}).WithChecksum()
	ack, err := c.roundTrip(req)
	if err != nil {
		return err
	}
	return ack.Status.Err()
}

// PageIn fetches the page stored under key.
func (c *Conn) PageIn(key uint64) (page.Buf, error) {
	ack, err := c.roundTrip(&wire.Msg{Type: wire.TPageIn, Key: key})
	if err != nil {
		return nil, err
	}
	if err := ack.Status.Err(); err != nil {
		return nil, err
	}
	if err := ack.VerifyData(); err != nil {
		return nil, err
	}
	buf := page.Buf(ack.Data)
	if err := buf.CheckLen(); err != nil {
		return nil, err
	}
	return buf, nil
}

// PageOutBatch stores several pages in one pipelined exchange: all
// requests are written back to back, then all acks are read. On a
// network with real latency this costs ~one round trip for the whole
// batch instead of one per page (used by bulk paths like recovery
// re-homing and VM flushes). Returns the first failure, after
// draining every ack so the connection stays framed.
func (c *Conn) PageOutBatch(keys []uint64, pages []page.Buf) error {
	if len(keys) != len(pages) {
		return fmt.Errorf("client: batch of %d keys with %d pages", len(keys), len(pages))
	}
	if len(keys) == 0 {
		return nil
	}
	for _, p := range pages {
		if err := p.CheckLen(); err != nil {
			return err
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// The whole batch shares one deadline: the per-request estimate
	// plus the per-byte allowance over every page in flight.
	d := c.requestDeadline(len(keys) * page.Size)
	c.conn.SetDeadline(time.Now().Add(d))
	defer c.conn.SetDeadline(time.Time{})
	start := time.Now()
	for i, key := range keys {
		req := (&wire.Msg{Type: wire.TPageOut, Key: key, Data: pages[i]}).WithChecksum()
		if err := wire.Encode(c.conn, req); err != nil {
			return timeoutErr(err, c.addr, d)
		}
	}
	var firstErr error
	for range keys {
		ack, err := wire.Decode(c.conn)
		if err != nil {
			return timeoutErr(err, c.addr, d) // stream broken; cannot drain further
		}
		c.latchFlags(ack.Flags)
		if e := ack.Status.Err(); e != nil && firstErr == nil {
			firstErr = e
		}
	}
	// One batch = one latency sample per page on average.
	c.observeRTT(time.Since(start).Nanoseconds() / int64(len(keys)))
	return firstErr
}

// Free releases the given keys on the server.
func (c *Conn) Free(keys ...uint64) error {
	if len(keys) == 0 {
		return nil
	}
	ack, err := c.roundTrip(&wire.Msg{Type: wire.TFree, Keys: keys})
	if err != nil {
		return err
	}
	return ack.Status.Err()
}

// Load polls the server's free-page count.
func (c *Conn) Load() (free int, err error) {
	ack, err := c.roundTrip(&wire.Msg{Type: wire.TLoad})
	if err != nil {
		return 0, err
	}
	c.pressureMu.Lock()
	c.serverFree = ack.N
	c.pressureMu.Unlock()
	return int(ack.N), ack.Status.Err()
}

// ServerFree returns the last free-page count the server reported
// (via HELLO_ACK or LOAD_ACK).
func (c *Conn) ServerFree() int {
	c.pressureMu.Lock()
	defer c.pressureMu.Unlock()
	return int(c.serverFree)
}

// XorWrite stores data under key and has the server forward
// old^new to parityAddr under parityKey (basic parity policy).
func (c *Conn) XorWrite(key uint64, data page.Buf, parityAddr string, parityKey uint64) error {
	if err := data.CheckLen(); err != nil {
		return err
	}
	req := (&wire.Msg{
		Type:      wire.TXorWrite,
		Key:       key,
		Data:      data,
		Host:      parityAddr,
		ParityKey: parityKey,
	}).WithChecksum()
	ack, err := c.roundTrip(req)
	if err != nil {
		return err
	}
	return ack.Status.Err()
}

// XorDelta merges data into the page at key on the server (used
// directly by parity-logging recovery tooling and tests; in normal
// operation servers send these to each other).
func (c *Conn) XorDelta(key uint64, data page.Buf) error {
	if err := data.CheckLen(); err != nil {
		return err
	}
	req := (&wire.Msg{Type: wire.TXorDelta, Key: key, Data: data}).WithChecksum()
	ack, err := c.roundTrip(req)
	if err != nil {
		return err
	}
	return ack.Status.Err()
}

// Ping performs one heartbeat probe bounded by timeout. It returns
// the server's free-page count, whether the server is draining, and
// any peer addresses the server gossips back. A Ping that misses its
// deadline poisons the connection (a late PONG would desynchronize
// the request/response framing), so callers must discard the Conn
// after an error.
func (c *Conn) Ping(timeout time.Duration) (free int, draining bool, peers []string, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(timeout))
		defer c.conn.SetDeadline(time.Time{})
	}
	// Heartbeats bypass the RTT estimate on purpose: PING skips the
	// server's service-delay model, so its latency is not a fair
	// sample of page-service time.
	if err = wire.Encode(c.conn, &wire.Msg{Type: wire.TPing}); err != nil {
		return 0, false, nil, err
	}
	ack, err := wire.Decode(c.conn)
	if err != nil {
		return 0, false, nil, err
	}
	if ack.Type != wire.TPong {
		return 0, false, nil, fmt.Errorf("client: got %v in reply to PING", ack.Type)
	}
	c.latchFlags(ack.Flags)
	if err := ack.Status.Err(); err != nil {
		return 0, false, nil, err
	}
	draining = ack.Flags&wire.FlagDrain != 0
	if len(ack.Data) > 0 {
		var info wire.PongInfo
		if err := json.Unmarshal(ack.Data, &info); err == nil {
			peers = info.Peers
		}
	}
	return int(ack.N), draining, peers, nil
}

// Join announces another server's address to this server, which will
// gossip it to clients via PONG. Returns the server's resulting peer
// count.
func (c *Conn) Join(addr string) (int, error) {
	ack, err := c.roundTrip(&wire.Msg{Type: wire.TJoin, Host: addr})
	if err != nil {
		return 0, err
	}
	return int(ack.N), ack.Status.Err()
}

// Drain asks the server to leave gracefully: it stops granting swap
// space and advises every client (via FlagDrain on all acks) to
// migrate pages out.
func (c *Conn) Drain() error {
	ack, err := c.roundTrip(&wire.Msg{Type: wire.TDrain})
	if err != nil {
		return err
	}
	return ack.Status.Err()
}

// Bye performs the graceful goodbye exchange and closes the
// connection. After the last BYE from a client, the server discards
// the client's pages and reservation.
func (c *Conn) Bye() error {
	_, err := c.roundTrip(&wire.Msg{Type: wire.TBye})
	c.conn.Close()
	return err
}
