// Package client implements the Remote Memory Pager (RMP): the
// client side of the paper's system. It connects to remote memory
// servers over TCP, forwards pagein/pageout requests to them under a
// configurable reliability policy, falls back to the local disk when
// no server has free memory, migrates pages away from loaded servers,
// and reconstructs lost pages after a server crash.
//
// This file holds Conn, the low-level request channel to one server.
// Conn is safe for concurrent use. On a protocol-v2 session
// (negotiated at HELLO) it is a multiplexer: a writer goroutine
// batches outbound tagged frames, a reader goroutine demuxes acks to
// per-request channels by id, so many requests are in flight on one
// connection and a late or timed-out ack is discarded by id instead
// of poisoning the stream. Against a v1 server it degrades to the
// original strict request/response discipline, serialized on the
// wire.
package client

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rmp/internal/page"
	"rmp/internal/wire"
)

// Conn is one authenticated protocol connection to a remote memory
// server.
type Conn struct {
	// mu serializes round trips on the wire for v1 sessions. v2
	// sessions do not take it: the mux owns the stream.
	mu   sync.Mutex
	conn net.Conn
	addr string

	// dl bounds every round trip with an adaptive deadline derived
	// from the RTT estimator (see Deadlines). Set before first use;
	// immutable afterwards.
	dl Deadlines

	// v2 is true when the HELLO exchange negotiated tagged framing
	// (wire.Version2) and the mux goroutines are running. Set before
	// the Conn is shared; immutable afterwards.
	v2 bool
	// sendCh feeds the writer goroutine. Created by startMux;
	// immutable afterwards.
	sendCh chan *wire.Msg
	// done is closed exactly once when the mux dies (transport error
	// or Close); it unblocks every waiter. Created by startMux;
	// immutable afterwards.
	done     chan struct{}
	doneOnce sync.Once

	// muxMu protects the demux table. It is never held across I/O.
	muxMu sync.Mutex
	// nextID is the last request id issued. Ids increase monotonically
	// and wrap at 2^32, so an id is never reused while 4 billion
	// requests are outstanding — a late ack for a timed-out request
	// finds no (or at worst a long-gone) entry and is dropped.
	// Guarded by muxMu.
	nextID uint32
	// pending maps in-flight request ids to their 1-buffered reply
	// channels. Guarded by muxMu.
	pending map[uint32]chan *wire.Msg
	// muxErr is the first transport error that killed the mux; nil
	// while healthy. Guarded by muxMu.
	muxErr error

	// lateDrops counts acks discarded because no request was pending
	// under their id (late replies to timed-out requests).
	lateDrops atomic.Uint64

	// pressureMu protects the advisory state latched off acks; it is
	// separate from mu so the pager can poll advisories without
	// contending with an in-flight round trip.
	pressureMu sync.Mutex
	// pressured is latched when any ack arrives with FlagPressure set;
	// the pager polls and clears it to drive migration. Guarded by
	// pressureMu.
	pressured bool
	// draining is latched when any ack arrives with FlagDrain set: the
	// server asked to leave and wants its pages migrated out. Unlike
	// pressure it is not cleared on read — a draining server stays
	// draining until the pager finishes evacuating it. Guarded by
	// pressureMu.
	draining bool
	// serverFree is the last free-page count reported by the server
	// (HELLO_ACK and LOAD_ACK carry it). Guarded by pressureMu.
	serverFree uint32

	// rttNanos is an EWMA of request round-trip time (srtt). The
	// paper's §5 network-load adaptation ("measuring the time it takes
	// to satisfy a request and using a threshold") and its
	// heterogeneous-network placement both key off this.
	rttNanos atomic.Int64
	// rttvarNanos is the smoothed mean RTT deviation (Jacobson): the
	// request deadline is srtt + 4·rttvar, clamped and padded per byte.
	rttvarNanos atomic.Int64
}

// rttAlpha is the EWMA weight of a new sample (1/8, classic TCP).
const rttAlpha = 8

// rttBeta is the deviation-EWMA weight of a new sample (1/4, classic
// TCP/Jacobson).
const rttBeta = 4

// DialTimeout is how long Dial waits for TCP establishment.
const DialTimeout = 5 * time.Second

// Deadlines parametrizes the adaptive per-request deadline: every
// round trip is bounded by
//
//	clamp(srtt + 4·rttvar, Floor, Ceil) + PerByte·payloadBytes
//
// so a wedged server (TCP alive, process black-holed) turns into a
// bounded timeout error instead of an indefinitely hung page fault.
// The per-byte allowance keeps large transfers (8 KB pages, pipelined
// batches) from being strangled by an estimate learned on small
// requests. Before the first sample the deadline is Ceil.
type Deadlines struct {
	// Floor is the minimum deadline; it absorbs scheduler noise and
	// GC pauses that the EWMA has not seen. Default 50ms.
	Floor time.Duration
	// Ceil caps the adaptive deadline (and is the whole deadline while
	// the connection has no RTT estimate yet). Default 5s.
	Ceil time.Duration
	// PerByte is added per payload byte on top of the clamped
	// estimate. Default 1µs (≈8ms per 8 KB page, a 1996-class link).
	PerByte time.Duration
}

// DefaultDeadlines returns the default deadline parameters.
func DefaultDeadlines() Deadlines {
	return Deadlines{Floor: 50 * time.Millisecond, Ceil: 5 * time.Second, PerByte: time.Microsecond}
}

func (d Deadlines) withDefaults() Deadlines {
	def := DefaultDeadlines()
	if d.Floor <= 0 {
		d.Floor = def.Floor
	}
	if d.Ceil <= 0 {
		d.Ceil = def.Ceil
	}
	if d.Ceil < d.Floor {
		d.Ceil = d.Floor
	}
	if d.PerByte <= 0 {
		d.PerByte = def.PerByte
	}
	return d
}

// ErrReqTimeout marks a round trip that missed its adaptive deadline.
// On a v1 session the connection is poisoned (a late ack would
// desynchronize the framing) and callers must discard it. On a v2
// (multiplexed) session the stream stays framed — the late ack is
// discarded by id when it eventually arrives — so the Conn remains
// usable. errors.Is(err, ErrReqTimeout) identifies the case.
var ErrReqTimeout = errors.New("client: request deadline exceeded")

// errMuxClosed reports a request issued on (or in flight over) a
// multiplexed connection that has been closed or has died; the
// original transport error, when there is one, is wrapped.
var errMuxClosed = errors.New("client: connection closed")

// DialFunc opens the transport connection to a server address within
// timeout. The default is TCP (net.DialTimeout); tests inject an
// in-memory transport (internal/memnet) here.
type DialFunc func(addr string, timeout time.Duration) (net.Conn, error)

// DialOptions bundles the optional knobs of DialWithOptions.
type DialOptions struct {
	// Timeout bounds transport establishment. 0 means DialTimeout.
	Timeout time.Duration
	// Deadlines parametrizes the adaptive per-request deadline.
	// Zero-valued fields take their defaults.
	Deadlines Deadlines
	// Dial replaces TCP dialing when non-nil.
	Dial DialFunc
	// ForceV1 suppresses the protocol-v2 advertisement in HELLO, so
	// the session stays on strict request/response framing even
	// against a v2-capable server.
	ForceV1 bool
}

// Dial connects to a server, performs the HELLO handshake as
// clientName with the given auth token, and returns the ready Conn.
func Dial(addr, clientName, token string) (*Conn, error) {
	return DialWithTimeout(addr, clientName, token, DialTimeout)
}

// DialWithTimeout is Dial with an explicit TCP-establishment bound
// (the heartbeat prober uses the detector's probe timeout here, so a
// black-holed re-dial cannot outlive the probe deadline).
func DialWithTimeout(addr, clientName, token string, timeout time.Duration) (*Conn, error) {
	return DialWithOptions(addr, clientName, token, DialOptions{Timeout: timeout})
}

// DialWithDeadlines is DialWithTimeout with explicit request-deadline
// parameters (the pager threads its configured floor/ceiling here).
func DialWithDeadlines(addr, clientName, token string, timeout time.Duration, dl Deadlines) (*Conn, error) {
	return DialWithOptions(addr, clientName, token, DialOptions{Timeout: timeout, Deadlines: dl})
}

// DialWithOptions is the full-control dial: transport establishment
// bound, deadline parameters, an injectable transport, and the
// protocol-version cap. The HELLO is always v1-framed and advertises
// v2 via FlagV2 (unless ForceV1); a v2-capable server echoes the flag
// on the HELLO_ACK and both sides switch to tagged framing, at which
// point the mux goroutines start. A v1 server ignores the flag and
// the session proceeds exactly as before this protocol revision.
func DialWithOptions(addr, clientName, token string, opts DialOptions) (*Conn, error) {
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = DialTimeout
	}
	dial := opts.Dial
	if dial == nil {
		dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	nc, err := dial(addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	c := &Conn{conn: nc, addr: addr, dl: opts.Deadlines.withDefaults()}
	hello := &wire.Msg{Type: wire.THello, Host: clientName, Data: []byte(token)}
	if !opts.ForceV1 {
		hello.Flags |= wire.FlagV2
	}
	ack, err := c.roundTripV1(hello)
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("client: hello %s: %w", addr, err)
	}
	if err := ack.Status.Err(); err != nil {
		nc.Close()
		return nil, fmt.Errorf("client: hello %s: %w", addr, err)
	}
	c.serverFree = ack.N
	v2 := !opts.ForceV1 && ack.Flags&wire.FlagV2 != 0
	wire.Recycle(ack)
	if v2 {
		c.startMux()
	}
	return c, nil
}

// Addr returns the server address this connection targets.
func (c *Conn) Addr() string { return c.addr }

// Multiplexed reports whether the session negotiated protocol v2 —
// i.e. whether requests pipeline on this Conn and a deadline miss
// leaves it usable.
func (c *Conn) Multiplexed() bool { return c.v2 }

// Broken reports whether a multiplexed session has died (transport
// error or Close). Always false for a live v1 session: a v1 Conn's
// health is only discovered by using it.
func (c *Conn) Broken() bool {
	if !c.v2 {
		return false
	}
	c.muxMu.Lock()
	defer c.muxMu.Unlock()
	return c.muxErr != nil
}

// LateAcksDropped counts acks that arrived after their request had
// timed out and was abandoned (diagnostics).
func (c *Conn) LateAcksDropped() uint64 { return c.lateDrops.Load() }

// Close tears the connection down without the BYE exchange.
func (c *Conn) Close() error {
	if c.v2 {
		c.failMux(errMuxClosed)
		return nil
	}
	return c.conn.Close()
}

// reqPayloadBytes estimates the wire payload a request moves in each
// direction: its own data plus the expected response data (a PAGEIN
// ack carries a full page back).
func reqPayloadBytes(req *wire.Msg) int {
	n := len(req.Data)
	if req.Type == wire.TPageIn {
		n += page.Size
	}
	return n
}

// requestDeadline computes the adaptive bound for a round trip moving
// the given payload bytes: clamp(srtt + 4·rttvar, floor, ceil) plus
// the per-byte allowance. With no RTT estimate yet, the ceiling.
func (c *Conn) requestDeadline(payloadBytes int) time.Duration {
	srtt := c.rttNanos.Load()
	if srtt == 0 {
		return c.dl.Ceil + time.Duration(payloadBytes)*c.dl.PerByte
	}
	d := time.Duration(srtt + 4*c.rttvarNanos.Load())
	if d < c.dl.Floor {
		d = c.dl.Floor
	}
	if d > c.dl.Ceil {
		d = c.dl.Ceil
	}
	return d + time.Duration(payloadBytes)*c.dl.PerByte
}

// RequestDeadline is the adaptive deadline the connection would apply
// to a round trip moving payloadBytes (diagnostics: rmpctl, Survey).
func (c *Conn) RequestDeadline(payloadBytes int) time.Duration {
	return c.requestDeadline(payloadBytes)
}

// observeRTT folds one round-trip sample into the Jacobson
// srtt/rttvar estimators.
func (c *Conn) observeRTT(sample int64) {
	old := c.rttNanos.Load()
	if old == 0 {
		c.rttNanos.Store(sample)
		c.rttvarNanos.Store(sample / 2)
		return
	}
	dev := sample - old
	if dev < 0 {
		dev = -dev
	}
	oldVar := c.rttvarNanos.Load()
	c.rttvarNanos.Store(oldVar + (dev-oldVar)/rttBeta)
	c.rttNanos.Store(old + (sample-old)/rttAlpha)
}

// timeoutErr classifies an I/O failure: a miss of the adaptive
// deadline is wrapped in ErrReqTimeout so the retry layer can count
// it; everything else passes through.
func timeoutErr(err error, addr string, d time.Duration) error {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return fmt.Errorf("%w: no ack from %s within %v", ErrReqTimeout, addr, d)
	}
	return err
}

// roundTrip sends req and reads its ack under the adaptive deadline,
// dispatching to the session's framing: v1 serializes on the wire, v2
// goes through the mux and may interleave with other in-flight
// requests.
func (c *Conn) roundTrip(req *wire.Msg) (*wire.Msg, error) {
	if c.v2 {
		return c.muxRoundTrip(req, c.requestDeadline(reqPayloadBytes(req)), true)
	}
	return c.roundTripV1(req)
}

// roundTripV1 sends req and reads one ack under the adaptive
// deadline, latching pressure advisories and folding the measured
// service time into the RTT estimate. A deadline miss poisons the
// connection (a late ack would desynchronize the request/response
// framing) — the caller must discard the Conn after any error.
func (c *Conn) roundTripV1(req *wire.Msg) (*wire.Msg, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d := c.requestDeadline(reqPayloadBytes(req))
	c.conn.SetDeadline(time.Now().Add(d))
	defer c.conn.SetDeadline(time.Time{})
	start := time.Now()
	if err := wire.Encode(c.conn, req); err != nil {
		return nil, timeoutErr(err, c.addr, d)
	}
	ack, err := wire.Decode(c.conn)
	if err != nil {
		return nil, timeoutErr(err, c.addr, d)
	}
	c.observeRTT(time.Since(start).Nanoseconds())
	if ack.Type != req.Type.Ack() {
		typ := ack.Type
		wire.Recycle(ack)
		return nil, fmt.Errorf("client: got %v in reply to %v", typ, req.Type)
	}
	c.latchFlags(ack.Flags)
	return ack, nil
}

// latchFlags records advisory flags carried on any ack.
func (c *Conn) latchFlags(flags uint8) {
	if flags&(wire.FlagPressure|wire.FlagDrain) == 0 {
		return
	}
	c.pressureMu.Lock()
	if flags&wire.FlagPressure != 0 {
		c.pressured = true
	}
	if flags&wire.FlagDrain != 0 {
		c.draining = true
	}
	c.pressureMu.Unlock()
}

// muxSendBuf is the depth of the writer goroutine's inbox. It only
// smooths bursts; a full inbox applies backpressure to callers, whose
// per-request deadlines still bound the wait.
const muxSendBuf = 128

// startMux switches the connection to v2 framing and starts the
// writer and reader goroutines. Called once, from the dial handshake,
// before the Conn is shared.
func (c *Conn) startMux() {
	c.v2 = true
	c.sendCh = make(chan *wire.Msg, muxSendBuf)
	c.done = make(chan struct{})
	c.muxMu.Lock()
	c.pending = make(map[uint32]chan *wire.Msg)
	c.muxMu.Unlock()
	go c.writeLoop()
	go c.readLoop()
}

// failMux records the first fatal error, closes the transport, and
// wakes every in-flight request. Idempotent; safe from any goroutine.
func (c *Conn) failMux(err error) {
	c.muxMu.Lock()
	if c.muxErr == nil {
		c.muxErr = err
	}
	// Drop the demux table: waiters are woken via done and will read
	// muxErr; a reply channel is never written after this point.
	c.pending = make(map[uint32]chan *wire.Msg)
	c.muxMu.Unlock()
	c.doneOnce.Do(func() { close(c.done) })
	c.conn.Close()
}

// muxError returns the error that killed the mux, wrapped so the
// retry layer classifies it as a transport failure.
func (c *Conn) muxError() error {
	c.muxMu.Lock()
	err := c.muxErr
	c.muxMu.Unlock()
	if err == nil || err == errMuxClosed {
		return fmt.Errorf("%w: %s", errMuxClosed, c.addr)
	}
	return fmt.Errorf("%w: %s: %w", errMuxClosed, c.addr, err)
}

// writeLoop drains the send channel onto the wire, batching every
// frame already queued into one vectored flush: the FrameWriter
// encodes only headers into scratch and ships header + payload (for
// the whole batch) through one writev, so a burst of pipelined
// pageouts leaves as a single scatter/gather write with the page
// bytes never copied. A queued request's Data is referenced until the
// flush completes — safe, because the requester blocks on its ack
// (and so cannot reuse the buffer) for at least that long. The loop
// exits when the mux dies; a blocked write is unblocked by failMux
// closing the transport.
func (c *Conn) writeLoop() {
	fw := wire.NewFrameWriter(c.conn)
	for {
		select {
		case m := <-c.sendCh:
			if err := fw.Queue(m); err != nil {
				c.failMux(err)
				return
			}
			for batched := true; batched; {
				select {
				case m2 := <-c.sendCh:
					if err := fw.Queue(m2); err != nil {
						c.failMux(err)
						return
					}
				default:
					batched = false
				}
			}
			if err := fw.Flush(); err != nil {
				c.failMux(err)
				return
			}
		case <-c.done:
			return
		}
	}
}

// readLoop decodes acks off the wire and resolves them against the
// demux table by id. Frames decode into pooled buffers (DecodePooled)
// and are recycled by whoever consumes the ack — the Conn method that
// unblocks, or dispatch itself for late acks — so a steady-state ack
// stream allocates nothing. An ack with no pending entry (the late
// reply to a timed-out, abandoned request) is counted, recycled, and
// dropped; the stream stays framed and every other in-flight request
// is unaffected. The loop exits on the first decode error (including
// the transport close performed by failMux).
func (c *Conn) readLoop() {
	for {
		m, err := wire.DecodePooled(c.conn)
		if err != nil {
			c.failMux(err)
			return
		}
		c.dispatch(m)
	}
}

// dispatch resolves one decoded ack against the demux table. It runs
// once per inbound frame on the read loop, so it must not allocate:
// a map lookup, a delete, and a send into a 1-buffered channel.
// Ownership of a delivered ack (and its pooled frame buffer) passes
// to the waiter; a late ack is recycled here.
//
//rmpvet:hotpath
func (c *Conn) dispatch(m *wire.Msg) {
	c.latchFlags(m.Flags)
	c.muxMu.Lock()
	ch, ok := c.pending[m.ID]
	if ok {
		delete(c.pending, m.ID)
	}
	c.muxMu.Unlock()
	if !ok {
		c.lateDrops.Add(1)
		wire.Recycle(m)
		return
	}
	ch <- m // 1-buffered; never blocks
}

// registerReq allocates a request id, stamps req as a tagged frame,
// and installs its reply channel in the demux table.
func (c *Conn) registerReq(req *wire.Msg) (uint32, chan *wire.Msg, error) {
	ch := make(chan *wire.Msg, 1)
	c.muxMu.Lock()
	if c.muxErr != nil {
		c.muxMu.Unlock()
		return 0, nil, c.muxError()
	}
	for {
		c.nextID++
		if _, busy := c.pending[c.nextID]; !busy {
			break
		}
	}
	id := c.nextID
	c.pending[id] = ch
	c.muxMu.Unlock()
	req.Version = wire.Version2
	req.ID = id
	return id, ch, nil
}

// unregister abandons a pending request (timeout or shutdown); its
// ack, if it ever arrives, will be dropped by the reader.
func (c *Conn) unregister(id uint32) {
	c.muxMu.Lock()
	delete(c.pending, id)
	c.muxMu.Unlock()
}

// muxRoundTrip issues one tagged request and waits for its ack under
// deadline d. A miss abandons only this request — the connection, and
// every other request in flight on it, carries on.
func (c *Conn) muxRoundTrip(req *wire.Msg, d time.Duration, sampleRTT bool) (*wire.Msg, error) {
	id, ch, err := c.registerReq(req)
	if err != nil {
		return nil, err
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	start := time.Now()
	select {
	case c.sendCh <- req:
	case <-c.done:
		c.unregister(id)
		return nil, c.muxError()
	case <-timer.C:
		c.unregister(id)
		return nil, fmt.Errorf("%w: no ack from %s within %v", ErrReqTimeout, c.addr, d)
	}
	select {
	case ack := <-ch:
		if sampleRTT {
			c.observeRTT(time.Since(start).Nanoseconds())
		}
		if ack.Type != req.Type.Ack() {
			typ := ack.Type
			wire.Recycle(ack)
			return nil, fmt.Errorf("client: got %v in reply to %v", typ, req.Type)
		}
		return ack, nil
	case <-c.done:
		c.unregister(id)
		return nil, c.muxError()
	case <-timer.C:
		c.unregister(id)
		return nil, fmt.Errorf("%w: no ack from %s within %v", ErrReqTimeout, c.addr, d)
	}
}

// RTT returns the smoothed request round-trip estimate (0 before the
// first completed request).
func (c *Conn) RTT() time.Duration { return time.Duration(c.rttNanos.Load()) }

// RTTVar returns the smoothed mean deviation of the round-trip
// estimate (0 before the first completed request).
func (c *Conn) RTTVar() time.Duration { return time.Duration(c.rttvarNanos.Load()) }

// Stat fetches the server's state snapshot.
func (c *Conn) Stat() (wire.StatInfo, error) {
	ack, err := c.roundTrip(&wire.Msg{Type: wire.TStat})
	if err != nil {
		return wire.StatInfo{}, err
	}
	if err := ack.Status.Err(); err != nil {
		wire.Recycle(ack)
		return wire.StatInfo{}, err
	}
	var info wire.StatInfo
	err = json.Unmarshal(ack.Data, &info)
	wire.Recycle(ack)
	if err != nil {
		return wire.StatInfo{}, fmt.Errorf("client: stat: %w", err)
	}
	return info, nil
}

// PressureAdvised reports and clears the latched pressure advisory.
func (c *Conn) PressureAdvised() bool {
	c.pressureMu.Lock()
	defer c.pressureMu.Unlock()
	p := c.pressured
	c.pressured = false
	return p
}

// DrainAdvised reports (without clearing) the latched drain advisory.
func (c *Conn) DrainAdvised() bool {
	c.pressureMu.Lock()
	defer c.pressureMu.Unlock()
	return c.draining
}

// Alloc asks the server to promise n pages of swap space and returns
// the number granted (0 with a nil error means the server is full).
func (c *Conn) Alloc(n int) (int, error) {
	ack, err := c.roundTrip(&wire.Msg{Type: wire.TAlloc, N: uint32(n)})
	if err != nil {
		return 0, err
	}
	n, status := int(ack.N), ack.Status
	wire.Recycle(ack)
	if status == wire.StatusNoSpace {
		return n, nil
	}
	if err := status.Err(); err != nil {
		return 0, err
	}
	return n, nil
}

// PageOut stores data under key on the server.
func (c *Conn) PageOut(key uint64, data page.Buf) error {
	if err := data.CheckLen(); err != nil {
		return err
	}
	req := (&wire.Msg{Type: wire.TPageOut, Key: key, Data: data}).WithChecksum()
	ack, err := c.roundTrip(req)
	if err != nil {
		return err
	}
	status := ack.Status
	wire.Recycle(ack)
	return status.Err()
}

// PageIn fetches the page stored under key. The returned buffer is a
// pooled page-class copy owned by the caller, who may page.Put it
// once done with the contents (and simply drop it otherwise).
func (c *Conn) PageIn(key uint64) (page.Buf, error) {
	ack, err := c.roundTrip(&wire.Msg{Type: wire.TPageIn, Key: key})
	if err != nil {
		return nil, err
	}
	if err := ack.Status.Err(); err != nil {
		wire.Recycle(ack)
		return nil, err
	}
	if err := ack.VerifyData(); err != nil {
		wire.Recycle(ack)
		return nil, err
	}
	if err := page.Buf(ack.Data).CheckLen(); err != nil {
		wire.Recycle(ack)
		return nil, err
	}
	// Copy out of the pooled frame so the frame recycles immediately:
	// one word-speed memcpy trades for keeping a 12 KB frame buffer
	// hostage to the caller's page lifetime.
	buf := page.Buf(ack.Data).ClonePooled()
	wire.Recycle(ack)
	return buf, nil
}

// PageOutBatch stores several pages in one pipelined exchange: all
// requests are written back to back, then all acks are read. On a
// network with real latency this costs ~one round trip for the whole
// batch instead of one per page (used by bulk paths like recovery
// re-homing and VM flushes). Returns the first failure, after
// draining every ack so the connection stays framed.
func (c *Conn) PageOutBatch(keys []uint64, pages []page.Buf) error {
	if len(keys) != len(pages) {
		return fmt.Errorf("client: batch of %d keys with %d pages", len(keys), len(pages))
	}
	if len(keys) == 0 {
		return nil
	}
	for _, p := range pages {
		if err := p.CheckLen(); err != nil {
			return err
		}
	}
	if c.v2 {
		return c.pageOutBatchMux(keys, pages)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	// The whole batch shares one deadline: the per-request estimate
	// plus the per-byte allowance over every page in flight.
	d := c.requestDeadline(len(keys) * page.Size)
	c.conn.SetDeadline(time.Now().Add(d))
	defer c.conn.SetDeadline(time.Time{})
	start := time.Now()
	for i, key := range keys {
		req := (&wire.Msg{Type: wire.TPageOut, Key: key, Data: pages[i]}).WithChecksum()
		if err := wire.Encode(c.conn, req); err != nil {
			return timeoutErr(err, c.addr, d)
		}
	}
	var firstErr error
	for range keys {
		ack, err := wire.Decode(c.conn)
		if err != nil {
			return timeoutErr(err, c.addr, d) // stream broken; cannot drain further
		}
		c.latchFlags(ack.Flags)
		if e := ack.Status.Err(); e != nil && firstErr == nil {
			firstErr = e
		}
		wire.Recycle(ack)
	}
	// One batch = one latency sample per page on average.
	c.observeRTT(time.Since(start).Nanoseconds() / int64(len(keys)))
	return firstErr
}

// pageOutBatchMux is PageOutBatch over a multiplexed session: every
// request is registered and enqueued up front, then the acks are
// collected in any order under one shared deadline. Unlike the v1
// batch, a deadline miss abandons only the unanswered requests — the
// connection stays healthy.
func (c *Conn) pageOutBatchMux(keys []uint64, pages []page.Buf) error {
	d := c.requestDeadline(len(keys) * page.Size)
	timer := time.NewTimer(d)
	defer timer.Stop()
	start := time.Now()
	ids := make([]uint32, 0, len(keys))
	chans := make([]chan *wire.Msg, 0, len(keys))
	abandon := func(from int) {
		for _, id := range ids[from:] {
			c.unregister(id)
		}
	}
	for i, key := range keys {
		req := (&wire.Msg{Type: wire.TPageOut, Key: key, Data: pages[i]}).WithChecksum()
		id, ch, err := c.registerReq(req)
		if err != nil {
			abandon(0)
			return err
		}
		ids = append(ids, id)
		chans = append(chans, ch)
		select {
		case c.sendCh <- req:
		case <-c.done:
			abandon(0)
			return c.muxError()
		case <-timer.C:
			abandon(0)
			return fmt.Errorf("%w: no ack from %s within %v", ErrReqTimeout, c.addr, d)
		}
	}
	var firstErr error
	for i, ch := range chans {
		select {
		case ack := <-ch:
			if e := ack.Status.Err(); e != nil && firstErr == nil {
				firstErr = e
			}
			wire.Recycle(ack)
		case <-c.done:
			abandon(i)
			return c.muxError()
		case <-timer.C:
			abandon(i)
			return fmt.Errorf("%w: no ack from %s within %v", ErrReqTimeout, c.addr, d)
		}
	}
	// One batch = one latency sample per page on average.
	c.observeRTT(time.Since(start).Nanoseconds() / int64(len(keys)))
	return firstErr
}

// Free releases the given keys on the server.
func (c *Conn) Free(keys ...uint64) error {
	if len(keys) == 0 {
		return nil
	}
	ack, err := c.roundTrip(&wire.Msg{Type: wire.TFree, Keys: keys})
	if err != nil {
		return err
	}
	status := ack.Status
	wire.Recycle(ack)
	return status.Err()
}

// Load polls the server's free-page count.
func (c *Conn) Load() (free int, err error) {
	ack, err := c.roundTrip(&wire.Msg{Type: wire.TLoad})
	if err != nil {
		return 0, err
	}
	c.pressureMu.Lock()
	c.serverFree = ack.N
	c.pressureMu.Unlock()
	n, status := int(ack.N), ack.Status
	wire.Recycle(ack)
	return n, status.Err()
}

// ServerFree returns the last free-page count the server reported
// (via HELLO_ACK or LOAD_ACK).
func (c *Conn) ServerFree() int {
	c.pressureMu.Lock()
	defer c.pressureMu.Unlock()
	return int(c.serverFree)
}

// XorWrite stores data under key and has the server forward
// old^new to parityAddr under parityKey (basic parity policy).
func (c *Conn) XorWrite(key uint64, data page.Buf, parityAddr string, parityKey uint64) error {
	if err := data.CheckLen(); err != nil {
		return err
	}
	req := (&wire.Msg{
		Type:      wire.TXorWrite,
		Key:       key,
		Data:      data,
		Host:      parityAddr,
		ParityKey: parityKey,
	}).WithChecksum()
	ack, err := c.roundTrip(req)
	if err != nil {
		return err
	}
	status := ack.Status
	wire.Recycle(ack)
	return status.Err()
}

// XorDelta merges data into the page at key on the server (used
// directly by parity-logging recovery tooling and tests; in normal
// operation servers send these to each other).
func (c *Conn) XorDelta(key uint64, data page.Buf) error {
	if err := data.CheckLen(); err != nil {
		return err
	}
	req := (&wire.Msg{Type: wire.TXorDelta, Key: key, Data: data}).WithChecksum()
	ack, err := c.roundTrip(req)
	if err != nil {
		return err
	}
	status := ack.Status
	wire.Recycle(ack)
	return status.Err()
}

// Ping performs one heartbeat probe bounded by timeout. It returns
// the server's free-page count, whether the server is draining, and
// any peer addresses the server gossips back. On a v1 session a Ping
// that misses its deadline poisons the connection (a late PONG would
// desynchronize the request/response framing), so callers must
// discard the Conn after an error; a multiplexed session drops the
// late PONG by id and stays usable.
func (c *Conn) Ping(timeout time.Duration) (free int, draining bool, peers []string, err error) {
	var ack *wire.Msg
	if c.v2 {
		d := timeout
		if d <= 0 {
			d = c.requestDeadline(0)
		}
		// Heartbeats bypass the RTT estimate on purpose: PING skips
		// the server's service-delay model, so its latency is not a
		// fair sample of page-service time.
		ack, err = c.muxRoundTrip(&wire.Msg{Type: wire.TPing}, d, false)
		if err != nil {
			return 0, false, nil, err
		}
	} else {
		ack, err = c.pingV1(timeout)
		if err != nil {
			return 0, false, nil, err
		}
	}
	if err := ack.Status.Err(); err != nil {
		wire.Recycle(ack)
		return 0, false, nil, err
	}
	draining = ack.Flags&wire.FlagDrain != 0
	if len(ack.Data) > 0 {
		var info wire.PongInfo
		if err := json.Unmarshal(ack.Data, &info); err == nil {
			peers = info.Peers
		}
	}
	free = int(ack.N)
	wire.Recycle(ack)
	return free, draining, peers, nil
}

// pingV1 is the strict request/response heartbeat exchange.
func (c *Conn) pingV1(timeout time.Duration) (*wire.Msg, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(timeout))
		defer c.conn.SetDeadline(time.Time{})
	}
	// No RTT sample here either; see Ping.
	if err := wire.Encode(c.conn, &wire.Msg{Type: wire.TPing}); err != nil {
		return nil, err
	}
	ack, err := wire.Decode(c.conn)
	if err != nil {
		return nil, err
	}
	if ack.Type != wire.TPong {
		return nil, fmt.Errorf("client: got %v in reply to PING", ack.Type)
	}
	c.latchFlags(ack.Flags)
	return ack, nil
}

// Join announces another server's address to this server, which will
// gossip it to clients via PONG. Returns the server's resulting peer
// count.
func (c *Conn) Join(addr string) (int, error) {
	ack, err := c.roundTrip(&wire.Msg{Type: wire.TJoin, Host: addr})
	if err != nil {
		return 0, err
	}
	n, status := int(ack.N), ack.Status
	wire.Recycle(ack)
	return n, status.Err()
}

// Drain asks the server to leave gracefully: it stops granting swap
// space and advises every client (via FlagDrain on all acks) to
// migrate pages out.
func (c *Conn) Drain() error {
	ack, err := c.roundTrip(&wire.Msg{Type: wire.TDrain})
	if err != nil {
		return err
	}
	status := ack.Status
	wire.Recycle(ack)
	return status.Err()
}

// Bye performs the graceful goodbye exchange and closes the
// connection. After the last BYE from a client, the server discards
// the client's pages and reservation.
func (c *Conn) Bye() error {
	ack, err := c.roundTrip(&wire.Msg{Type: wire.TBye})
	wire.Recycle(ack)
	c.Close()
	return err
}
