// Package client implements the Remote Memory Pager (RMP): the
// client side of the paper's system. It connects to remote memory
// servers over TCP, forwards pagein/pageout requests to them under a
// configurable reliability policy, falls back to the local disk when
// no server has free memory, migrates pages away from loaded servers,
// and reconstructs lost pages after a server crash.
//
// This file holds Conn, the low-level request/response channel to one
// server. Conn is safe for concurrent use: requests are serialized on
// the wire (the protocol is strict request/response), so callers that
// want parallel transfers to the same server open several Conns.
package client

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rmp/internal/page"
	"rmp/internal/wire"
)

// Conn is one authenticated protocol connection to a remote memory
// server.
type Conn struct {
	mu   sync.Mutex
	conn net.Conn
	addr string

	// pressured is latched when any ack arrives with FlagPressure set;
	// the pager polls and clears it to drive migration.
	pressureMu sync.Mutex
	pressured  bool
	// draining is latched when any ack arrives with FlagDrain set: the
	// server asked to leave and wants its pages migrated out. Unlike
	// pressure it is not cleared on read — a draining server stays
	// draining until the pager finishes evacuating it.
	draining bool

	// serverFree is the last free-page count reported by the server
	// (HELLO_ACK and LOAD_ACK carry it).
	serverFree uint32

	// rttNanos is an EWMA of request round-trip time. The paper's §5
	// network-load adaptation ("measuring the time it takes to
	// satisfy a request and using a threshold") and its heterogeneous-
	// network placement both key off this.
	rttNanos atomic.Int64
}

// rttAlpha is the EWMA weight of a new sample (1/8, classic TCP).
const rttAlpha = 8

// DialTimeout is how long Dial waits for TCP establishment.
const DialTimeout = 5 * time.Second

// Dial connects to a server, performs the HELLO handshake as
// clientName with the given auth token, and returns the ready Conn.
func Dial(addr, clientName, token string) (*Conn, error) {
	return DialWithTimeout(addr, clientName, token, DialTimeout)
}

// DialWithTimeout is Dial with an explicit TCP-establishment bound
// (the heartbeat prober uses the detector's probe timeout here, so a
// black-holed re-dial cannot outlive the probe deadline).
func DialWithTimeout(addr, clientName, token string, timeout time.Duration) (*Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	c := &Conn{conn: nc, addr: addr}
	hello := &wire.Msg{Type: wire.THello, Host: clientName, Data: []byte(token)}
	ack, err := c.roundTrip(hello)
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("client: hello %s: %w", addr, err)
	}
	if err := ack.Status.Err(); err != nil {
		nc.Close()
		return nil, fmt.Errorf("client: hello %s: %w", addr, err)
	}
	c.serverFree = ack.N
	return c, nil
}

// Addr returns the server address this connection targets.
func (c *Conn) Addr() string { return c.addr }

// Close tears the connection down without the BYE exchange.
func (c *Conn) Close() error { return c.conn.Close() }

// roundTrip sends req and reads one ack, latching pressure advisories
// and folding the measured service time into the RTT estimate.
func (c *Conn) roundTrip(req *wire.Msg) (*wire.Msg, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	start := time.Now()
	if err := wire.Encode(c.conn, req); err != nil {
		return nil, err
	}
	ack, err := wire.Decode(c.conn)
	if err != nil {
		return nil, err
	}
	sample := time.Since(start).Nanoseconds()
	if old := c.rttNanos.Load(); old == 0 {
		c.rttNanos.Store(sample)
	} else {
		c.rttNanos.Store(old + (sample-old)/rttAlpha)
	}
	if ack.Type != req.Type.Ack() {
		return nil, fmt.Errorf("client: got %v in reply to %v", ack.Type, req.Type)
	}
	c.latchFlags(ack.Flags)
	return ack, nil
}

// latchFlags records advisory flags carried on any ack.
func (c *Conn) latchFlags(flags uint8) {
	if flags&(wire.FlagPressure|wire.FlagDrain) == 0 {
		return
	}
	c.pressureMu.Lock()
	if flags&wire.FlagPressure != 0 {
		c.pressured = true
	}
	if flags&wire.FlagDrain != 0 {
		c.draining = true
	}
	c.pressureMu.Unlock()
}

// RTT returns the smoothed request round-trip estimate (0 before the
// first completed request).
func (c *Conn) RTT() time.Duration { return time.Duration(c.rttNanos.Load()) }

// Stat fetches the server's state snapshot.
func (c *Conn) Stat() (wire.StatInfo, error) {
	ack, err := c.roundTrip(&wire.Msg{Type: wire.TStat})
	if err != nil {
		return wire.StatInfo{}, err
	}
	if err := ack.Status.Err(); err != nil {
		return wire.StatInfo{}, err
	}
	var info wire.StatInfo
	if err := json.Unmarshal(ack.Data, &info); err != nil {
		return wire.StatInfo{}, fmt.Errorf("client: stat: %w", err)
	}
	return info, nil
}

// PressureAdvised reports and clears the latched pressure advisory.
func (c *Conn) PressureAdvised() bool {
	c.pressureMu.Lock()
	defer c.pressureMu.Unlock()
	p := c.pressured
	c.pressured = false
	return p
}

// DrainAdvised reports (without clearing) the latched drain advisory.
func (c *Conn) DrainAdvised() bool {
	c.pressureMu.Lock()
	defer c.pressureMu.Unlock()
	return c.draining
}

// Alloc asks the server to promise n pages of swap space and returns
// the number granted (0 with a nil error means the server is full).
func (c *Conn) Alloc(n int) (int, error) {
	ack, err := c.roundTrip(&wire.Msg{Type: wire.TAlloc, N: uint32(n)})
	if err != nil {
		return 0, err
	}
	if ack.Status == wire.StatusNoSpace {
		return int(ack.N), nil
	}
	if err := ack.Status.Err(); err != nil {
		return 0, err
	}
	return int(ack.N), nil
}

// PageOut stores data under key on the server.
func (c *Conn) PageOut(key uint64, data page.Buf) error {
	if err := data.CheckLen(); err != nil {
		return err
	}
	req := (&wire.Msg{Type: wire.TPageOut, Key: key, Data: data}).WithChecksum()
	ack, err := c.roundTrip(req)
	if err != nil {
		return err
	}
	return ack.Status.Err()
}

// PageIn fetches the page stored under key.
func (c *Conn) PageIn(key uint64) (page.Buf, error) {
	ack, err := c.roundTrip(&wire.Msg{Type: wire.TPageIn, Key: key})
	if err != nil {
		return nil, err
	}
	if err := ack.Status.Err(); err != nil {
		return nil, err
	}
	if err := ack.VerifyData(); err != nil {
		return nil, err
	}
	buf := page.Buf(ack.Data)
	if err := buf.CheckLen(); err != nil {
		return nil, err
	}
	return buf, nil
}

// PageOutBatch stores several pages in one pipelined exchange: all
// requests are written back to back, then all acks are read. On a
// network with real latency this costs ~one round trip for the whole
// batch instead of one per page (used by bulk paths like recovery
// re-homing and VM flushes). Returns the first failure, after
// draining every ack so the connection stays framed.
func (c *Conn) PageOutBatch(keys []uint64, pages []page.Buf) error {
	if len(keys) != len(pages) {
		return fmt.Errorf("client: batch of %d keys with %d pages", len(keys), len(pages))
	}
	if len(keys) == 0 {
		return nil
	}
	for _, p := range pages {
		if err := p.CheckLen(); err != nil {
			return err
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	start := time.Now()
	for i, key := range keys {
		req := (&wire.Msg{Type: wire.TPageOut, Key: key, Data: pages[i]}).WithChecksum()
		if err := wire.Encode(c.conn, req); err != nil {
			return err
		}
	}
	var firstErr error
	for range keys {
		ack, err := wire.Decode(c.conn)
		if err != nil {
			return err // stream broken; cannot drain further
		}
		c.latchFlags(ack.Flags)
		if e := ack.Status.Err(); e != nil && firstErr == nil {
			firstErr = e
		}
	}
	// One batch = one latency sample per page on average.
	sample := time.Since(start).Nanoseconds() / int64(len(keys))
	if old := c.rttNanos.Load(); old == 0 {
		c.rttNanos.Store(sample)
	} else {
		c.rttNanos.Store(old + (sample-old)/rttAlpha)
	}
	return firstErr
}

// Free releases the given keys on the server.
func (c *Conn) Free(keys ...uint64) error {
	if len(keys) == 0 {
		return nil
	}
	ack, err := c.roundTrip(&wire.Msg{Type: wire.TFree, Keys: keys})
	if err != nil {
		return err
	}
	return ack.Status.Err()
}

// Load polls the server's free-page count.
func (c *Conn) Load() (free int, err error) {
	ack, err := c.roundTrip(&wire.Msg{Type: wire.TLoad})
	if err != nil {
		return 0, err
	}
	c.serverFree = ack.N
	return int(ack.N), ack.Status.Err()
}

// XorWrite stores data under key and has the server forward
// old^new to parityAddr under parityKey (basic parity policy).
func (c *Conn) XorWrite(key uint64, data page.Buf, parityAddr string, parityKey uint64) error {
	if err := data.CheckLen(); err != nil {
		return err
	}
	req := (&wire.Msg{
		Type:      wire.TXorWrite,
		Key:       key,
		Data:      data,
		Host:      parityAddr,
		ParityKey: parityKey,
	}).WithChecksum()
	ack, err := c.roundTrip(req)
	if err != nil {
		return err
	}
	return ack.Status.Err()
}

// XorDelta merges data into the page at key on the server (used
// directly by parity-logging recovery tooling and tests; in normal
// operation servers send these to each other).
func (c *Conn) XorDelta(key uint64, data page.Buf) error {
	if err := data.CheckLen(); err != nil {
		return err
	}
	req := (&wire.Msg{Type: wire.TXorDelta, Key: key, Data: data}).WithChecksum()
	ack, err := c.roundTrip(req)
	if err != nil {
		return err
	}
	return ack.Status.Err()
}

// Ping performs one heartbeat probe bounded by timeout. It returns
// the server's free-page count, whether the server is draining, and
// any peer addresses the server gossips back. A Ping that misses its
// deadline poisons the connection (a late PONG would desynchronize
// the request/response framing), so callers must discard the Conn
// after an error.
func (c *Conn) Ping(timeout time.Duration) (free int, draining bool, peers []string, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(timeout))
		defer c.conn.SetDeadline(time.Time{})
	}
	// Heartbeats bypass the RTT estimate on purpose: PING skips the
	// server's service-delay model, so its latency is not a fair
	// sample of page-service time.
	if err = wire.Encode(c.conn, &wire.Msg{Type: wire.TPing}); err != nil {
		return 0, false, nil, err
	}
	ack, err := wire.Decode(c.conn)
	if err != nil {
		return 0, false, nil, err
	}
	if ack.Type != wire.TPong {
		return 0, false, nil, fmt.Errorf("client: got %v in reply to PING", ack.Type)
	}
	c.latchFlags(ack.Flags)
	if err := ack.Status.Err(); err != nil {
		return 0, false, nil, err
	}
	draining = ack.Flags&wire.FlagDrain != 0
	if len(ack.Data) > 0 {
		var info wire.PongInfo
		if err := json.Unmarshal(ack.Data, &info); err == nil {
			peers = info.Peers
		}
	}
	return int(ack.N), draining, peers, nil
}

// Join announces another server's address to this server, which will
// gossip it to clients via PONG. Returns the server's resulting peer
// count.
func (c *Conn) Join(addr string) (int, error) {
	ack, err := c.roundTrip(&wire.Msg{Type: wire.TJoin, Host: addr})
	if err != nil {
		return 0, err
	}
	return int(ack.N), ack.Status.Err()
}

// Drain asks the server to leave gracefully: it stops granting swap
// space and advises every client (via FlagDrain on all acks) to
// migrate pages out.
func (c *Conn) Drain() error {
	ack, err := c.roundTrip(&wire.Msg{Type: wire.TDrain})
	if err != nil {
		return err
	}
	return ack.Status.Err()
}

// Bye performs the graceful goodbye exchange and closes the
// connection. After the last BYE from a client, the server discards
// the client's pages and reservation.
func (c *Conn) Bye() error {
	_, err := c.roundTrip(&wire.Msg{Type: wire.TBye})
	c.conn.Close()
	return err
}
