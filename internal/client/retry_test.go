package client

import (
	"errors"
	"fmt"
	"io"
	"testing"
	"time"

	"rmp/internal/wire"
)

// --- backoff schedule ---------------------------------------------------

func TestBackoffDelaySchedule(t *testing.T) {
	base := 5 * time.Millisecond
	cap := 200 * time.Millisecond
	for attempt := 0; attempt <= 10; attempt++ {
		d := base << uint(attempt)
		if d > cap {
			d = cap
		}
		lo := backoffDelay(attempt, base, cap, 0)
		hi := backoffDelay(attempt, base, cap, 0.999999)
		if lo != d/2 {
			t.Errorf("attempt %d rnd=0: got %v, want exactly d/2 = %v", attempt, lo, d/2)
		}
		if hi < d/2 || hi > d {
			t.Errorf("attempt %d rnd→1: got %v, want in [%v, %v]", attempt, hi, d/2, d)
		}
		// Equal jitter never collapses to zero: at least half the
		// deterministic delay is always slept.
		if lo <= 0 {
			t.Errorf("attempt %d: non-positive delay %v", attempt, lo)
		}
	}
}

func TestBackoffDelayDoubles(t *testing.T) {
	base := 5 * time.Millisecond
	cap := time.Hour // out of the way
	for attempt := 1; attempt < 8; attempt++ {
		prev := backoffDelay(attempt-1, base, cap, 0)
		cur := backoffDelay(attempt, base, cap, 0)
		if cur != 2*prev {
			t.Fatalf("attempt %d: %v is not double of %v", attempt, cur, prev)
		}
	}
}

func TestBackoffDelayCapAndOverflow(t *testing.T) {
	base := 5 * time.Millisecond
	cap := 200 * time.Millisecond
	// Far past the cap, and far past any shift that could overflow.
	for _, attempt := range []int{6, 10, 16, 63, 1 << 20} {
		got := backoffDelay(attempt, base, cap, 0.999999)
		if got < cap/2 || got > cap {
			t.Errorf("attempt %d: got %v, want within [%v, %v]", attempt, got, cap/2, cap)
		}
	}
}

func TestBackoffDelayDefaults(t *testing.T) {
	// Zero/negative knobs fall back to the package defaults.
	got := backoffDelay(0, 0, 0, 0)
	if got != defaultRetryBase/2 {
		t.Errorf("zero knobs: got %v, want %v", got, defaultRetryBase/2)
	}
	// A cap below the base is raised to the base, not the other way
	// around.
	got = backoffDelay(4, 50*time.Millisecond, time.Millisecond, 0.999999)
	if got > 50*time.Millisecond {
		t.Errorf("cap<base: got %v, want <= base", got)
	}
}

// --- budget -------------------------------------------------------------

func TestSleepBackoffBudgetExhaustion(t *testing.T) {
	p := &Pager{}
	// Budget already in the past: no attempt may be admitted, and the
	// call must not sleep for the backoff it cannot afford.
	start := time.Now()
	if p.sleepBackoff(5, time.Now().Add(-time.Millisecond)) {
		t.Fatal("sleepBackoff admitted a retry past the budget")
	}
	if el := time.Since(start); el > 50*time.Millisecond {
		t.Fatalf("sleepBackoff slept %v although the budget was exhausted", el)
	}
	// Generous budget: the retry is admitted after the jittered delay.
	if !p.sleepBackoff(0, time.Now().Add(time.Second)) {
		t.Fatal("sleepBackoff refused a retry well inside the budget")
	}
}

// --- error classification ----------------------------------------------

type fakeNetTimeout struct{ timeout bool }

func (f fakeNetTimeout) Error() string   { return "fake net error" }
func (f fakeNetTimeout) Timeout() bool   { return f.timeout }
func (f fakeNetTimeout) Temporary() bool { return false }

func TestIsTimeoutErr(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{ErrReqTimeout, true},
		{fmt.Errorf("client: pagein: %w", ErrReqTimeout), true},
		{fakeNetTimeout{timeout: true}, true},
		{fmt.Errorf("dial: %w", fakeNetTimeout{timeout: true}), true},
		{fakeNetTimeout{timeout: false}, false},
		{io.EOF, false},
		{errors.New("connection refused"), false},
	}
	for _, c := range cases {
		if got := isTimeoutErr(c.err); got != c.want {
			t.Errorf("isTimeoutErr(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestIsBadChecksum(t *testing.T) {
	bad := &wire.StatusError{Status: wire.StatusBadChecksum}
	if !isBadChecksum(bad) {
		t.Error("bare StatusBadChecksum not recognized")
	}
	if !isBadChecksum(fmt.Errorf("client: pagein 7: %w", bad)) {
		t.Error("wrapped StatusBadChecksum not recognized")
	}
	if isBadChecksum(&wire.StatusError{Status: wire.StatusNotFound}) {
		t.Error("NOT_FOUND misclassified as checksum failure")
	}
	if isBadChecksum(io.EOF) {
		t.Error("EOF misclassified as checksum failure")
	}
}

// --- circuit breaker ----------------------------------------------------

func TestBreakerOpensAtThreshold(t *testing.T) {
	now := time.Now()
	b := newBreaker(3, time.Second)
	if !b.allow(now) {
		t.Fatal("fresh breaker must be closed")
	}
	if b.failure(now) {
		t.Fatal("failure 1/3 must not open")
	}
	if b.failure(now) {
		t.Fatal("failure 2/3 must not open")
	}
	if !b.failure(now) {
		t.Fatal("failure 3/3 must report the closed->open transition")
	}
	if b.failure(now) {
		t.Fatal("further failures must not re-report the opening")
	}
	if b.allow(now.Add(500 * time.Millisecond)) {
		t.Fatal("open breaker admitted a request inside the cooldown")
	}
	if b.describe(now.Add(500*time.Millisecond)) != "open" {
		t.Fatalf("describe = %q, want open", b.describe(now.Add(500*time.Millisecond)))
	}
}

func TestBreakerSuccessResetsRun(t *testing.T) {
	now := time.Now()
	b := newBreaker(3, time.Second)
	b.failure(now)
	b.failure(now)
	b.success()
	// The run restarts: three more failures are needed to open.
	if b.failure(now) || b.failure(now) {
		t.Fatal("breaker opened before a fresh run of threshold failures")
	}
	if !b.failure(now) {
		t.Fatal("breaker failed to open after a fresh run of threshold failures")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	now := time.Now()
	b := newBreaker(1, time.Second)
	if !b.failure(now) {
		t.Fatal("threshold-1 breaker must open on the first failure")
	}

	// Cooldown elapsed: exactly one trial is admitted.
	later := now.Add(time.Second)
	if b.describe(later) != "half-open" {
		t.Fatalf("describe after cooldown = %q, want half-open", b.describe(later))
	}
	if !b.allow(later) {
		t.Fatal("cooled-down breaker must admit the trial probe")
	}

	// Trial fails: back to open, cooldown restarts from the failure.
	if b.failure(later) {
		t.Fatal("a failed trial is a re-opening, not a fresh closed->open transition")
	}
	if b.allow(later.Add(500 * time.Millisecond)) {
		t.Fatal("re-opened breaker admitted a request inside the restarted cooldown")
	}

	// Second trial succeeds: closed, clean slate.
	again := later.Add(time.Second)
	if !b.allow(again) {
		t.Fatal("second trial refused")
	}
	b.success()
	if b.state != breakerClosed || b.failures != 0 {
		t.Fatalf("after successful trial: state=%v failures=%d, want closed/0", b.state, b.failures)
	}
	if !b.allow(again) {
		t.Fatal("closed breaker refused a request")
	}
}

func TestBreakerReset(t *testing.T) {
	now := time.Now()
	b := newBreaker(1, time.Hour)
	b.failure(now)
	if b.allow(now) {
		t.Fatal("open breaker with hour-long cooldown admitted a request")
	}
	b.reset()
	if !b.allow(now) || b.failures != 0 {
		t.Fatal("reset did not return the breaker to a clean closed state")
	}
}

func TestBreakerDefaults(t *testing.T) {
	b := newBreaker(0, 0)
	if b.threshold != defaultBreakerThreshold || b.cooldown != defaultBreakerCooldown {
		t.Fatalf("defaults: got threshold=%d cooldown=%v", b.threshold, b.cooldown)
	}
}
