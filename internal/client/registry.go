package client

import (
	"bufio"
	"fmt"
	"os"
	"strings"
)

// LoadRegistry reads the server registry file: the paper's "common
// file" in which "all workstations that participate in remote memory
// paging are registered" (§2.1).
//
// Format: one server address per line ("host:port"); blank lines and
// lines starting with '#' are ignored.
func LoadRegistry(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("client: registry: %w", err)
	}
	defer f.Close()

	var servers []string
	sc := bufio.NewScanner(f)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// Allow trailing comments after the address.
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if !strings.Contains(line, ":") {
			return nil, fmt.Errorf("client: registry %s:%d: %q is not host:port", path, lineno, line)
		}
		servers = append(servers, line)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("client: registry: %w", err)
	}
	if len(servers) == 0 {
		return nil, fmt.Errorf("client: registry %s lists no servers", path)
	}
	return servers, nil
}
