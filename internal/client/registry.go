package client

import (
	"bufio"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"
)

// LoadRegistry reads the server registry file: the paper's "common
// file" in which "all workstations that participate in remote memory
// paging are registered" (§2.1).
//
// Format: one server address per line ("host:port"); blank lines and
// lines starting with '#' are ignored.
func LoadRegistry(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("client: registry: %w", err)
	}
	defer f.Close()

	var servers []string
	sc := bufio.NewScanner(f)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// Allow trailing comments after the address.
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if !strings.Contains(line, ":") {
			return nil, fmt.Errorf("client: registry %s:%d: %q is not host:port", path, lineno, line)
		}
		servers = append(servers, line)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("client: registry: %w", err)
	}
	if len(servers) == 0 {
		return nil, fmt.Errorf("client: registry %s lists no servers", path)
	}
	return servers, nil
}

// WatchRegistry polls the registry file every interval and calls
// onChange with the full server list whenever its contents change
// (including once at start if the file is readable). It is the
// file-based join path: an operator appends a new server's address to
// the common file and every watching pager picks it up. Parse errors
// and a missing file are ignored — the previous view stays in effect
// until the file is whole again, so a half-written edit cannot empty
// the cluster. Returns a stop function.
func WatchRegistry(path string, interval time.Duration, onChange func([]string)) (stop func()) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	done := make(chan struct{})
	stopped := make(chan struct{})
	go func() {
		defer close(stopped)
		var last string
		check := func() {
			raw, err := os.ReadFile(path)
			if err != nil || string(raw) == last {
				return
			}
			servers, err := LoadRegistry(path)
			if err != nil {
				return
			}
			last = string(raw)
			onChange(servers)
		}
		check()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				check()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		<-stopped
	}
}
