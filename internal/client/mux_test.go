package client_test

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"rmp/internal/client"
	"rmp/internal/memnet"
	"rmp/internal/page"
	"rmp/internal/wire"
)

// End-to-end tests for the multiplexed (protocol v2) client session:
// version negotiation with v1 fallback, concurrent round trips on one
// Conn, and the acceptance scenario — a deliberately stalled response
// times out without poisoning the connection, and its late ack is
// discarded by request id when it finally arrives.

// stallServer is a scriptable v2 server: it performs the HELLO
// negotiation, answers PAGEOUT/PAGEIN from an in-memory map, and
// withholds the response to any request whose key is in stall until
// release is closed. Responses are written from per-request
// goroutines, so non-stalled requests keep completing — exactly the
// behaviour a pipelined session must exploit.
type stallServer struct {
	ln      net.Listener
	stall   map[uint64]bool
	release chan struct{}

	mu    sync.Mutex
	pages map[uint64][]byte // Guarded by mu.
	wg    sync.WaitGroup
}

func newStallServer(t *testing.T, ln net.Listener, stallKeys ...uint64) *stallServer {
	t.Helper()
	s := &stallServer{
		ln:      ln,
		stall:   make(map[uint64]bool),
		release: make(chan struct{}),
		pages:   make(map[uint64][]byte),
	}
	for _, k := range stallKeys {
		s.stall[k] = true
	}
	s.wg.Add(1)
	go s.acceptLoop()
	t.Cleanup(func() {
		s.ln.Close()
		select {
		case <-s.release:
		default:
			close(s.release)
		}
		s.wg.Wait()
	})
	return s
}

func (s *stallServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go s.serve(conn)
	}
}

func (s *stallServer) serve(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	hello, err := wire.Decode(conn)
	if err != nil || hello.Type != wire.THello {
		return
	}
	ack := &wire.Msg{Type: wire.THelloAck, Status: wire.StatusOK, N: 1 << 20}
	ack.Flags |= hello.Flags & wire.FlagV2 // echo = accept v2
	if err := wire.Encode(conn, ack); err != nil {
		return
	}
	// Replies race on the shared conn; wmu keeps frames whole.
	var wmu sync.Mutex
	for {
		m, err := wire.Decode(conn)
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func(m *wire.Msg) {
			defer s.wg.Done()
			// Only reads stall, so tests can seed stalled keys with a
			// normal PAGEOUT first.
			if m.Type == wire.TPageIn && s.stall[m.Key] {
				select {
				case <-s.release:
				case <-time.After(30 * time.Second):
				}
			}
			resp := s.respond(m)
			resp.Version = m.Version
			resp.ID = m.ID
			wmu.Lock()
			wire.Encode(conn, resp)
			wmu.Unlock()
		}(m)
	}
}

func (s *stallServer) respond(m *wire.Msg) *wire.Msg {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch m.Type {
	case wire.TPageOut:
		s.pages[m.Key] = append([]byte(nil), m.Data...)
		return &wire.Msg{Type: wire.TPageOutAck, Key: m.Key, Status: wire.StatusOK}
	case wire.TPageIn:
		data, ok := s.pages[m.Key]
		if !ok {
			return &wire.Msg{Type: wire.TPageInAck, Key: m.Key, Status: wire.StatusNotFound}
		}
		return (&wire.Msg{Type: wire.TPageInAck, Key: m.Key, Status: wire.StatusOK, Data: data}).WithChecksum()
	default:
		return &wire.Msg{Type: m.Type.Ack(), Key: m.Key, Status: wire.StatusOK}
	}
}

// dialStallServer connects a v2 client with tight, fixed request
// deadlines so a stalled request costs the test milliseconds.
func dialStallServer(t *testing.T, nw *memnet.Network, addr string) *client.Conn {
	t.Helper()
	c, err := client.DialWithOptions(addr, "mux-test", "", client.DialOptions{
		Dial:      nw.DialTimeout,
		Deadlines: client.Deadlines{Floor: 200 * time.Millisecond, Ceil: 200 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if !c.Multiplexed() {
		t.Fatal("v2 server did not negotiate a multiplexed session")
	}
	return c
}

// TestMuxStalledRequestDoesNotPoisonConn is the issue's acceptance
// scenario: one request's response is withheld; that request times out
// with ErrReqTimeout while concurrent requests on the SAME Conn keep
// completing, the connection stays usable afterwards, and the late ack
// is discarded by id once the server finally sends it.
func TestMuxStalledRequestDoesNotPoisonConn(t *testing.T) {
	nw := memnet.New()
	const stallKey = 999
	srv := newStallServer(t, nw.MustListen("stall:7077"), stallKey)
	c := dialStallServer(t, nw, "stall:7077")

	for i := uint64(0); i < 8; i++ {
		if err := c.PageOut(i, mkPage(i)); err != nil {
			t.Fatalf("pageout %d: %v", i, err)
		}
	}
	if err := c.PageOut(stallKey, mkPage(stallKey)); err != nil {
		t.Fatalf("pageout stall key: %v", err)
	}

	// Fire the stalled read and a burst of healthy reads concurrently.
	stallErr := make(chan error, 1)
	go func() {
		_, err := c.PageIn(stallKey)
		stallErr <- err
	}()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := uint64(0); i < 8; i++ {
		wg.Add(1)
		go func(i uint64) {
			defer wg.Done()
			got, err := c.PageIn(i)
			if err != nil {
				errs <- fmt.Errorf("pagein %d: %w", i, err)
				return
			}
			if got.Checksum() != mkPage(i).Checksum() {
				errs <- fmt.Errorf("pagein %d: wrong contents", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if err := <-stallErr; !errors.Is(err, client.ErrReqTimeout) {
		t.Fatalf("stalled pagein: got %v, want ErrReqTimeout", err)
	}
	if c.Broken() {
		t.Fatal("connection marked broken by a deadline miss")
	}

	// The same Conn keeps working after the miss — no redial happened.
	for i := uint64(0); i < 8; i++ {
		if _, err := c.PageIn(i); err != nil {
			t.Fatalf("pagein %d after stall: %v", i, err)
		}
	}

	// Release the withheld ack: it must be dropped by id, not crash the
	// demux or get delivered to some unrelated request.
	close(srv.release)
	waitUntil(t, 5*time.Second, "late ack to be discarded", func() bool {
		return c.LateAcksDropped() >= 1
	})
	if _, err := c.PageIn(3); err != nil {
		t.Fatalf("pagein after late ack: %v", err)
	}
}

// TestMuxForceV1Fallback: a client capped to protocol v1 gets a plain
// strict request/response session from a v2-capable server, and the
// data path still works.
func TestMuxForceV1Fallback(t *testing.T) {
	c := newCluster(t, 1, 64)
	conn, err := client.DialWithOptions(c.addrs[0], "v1-test", "", client.DialOptions{
		Dial:    c.net.DialTimeout,
		ForceV1: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if conn.Multiplexed() {
		t.Fatal("ForceV1 session negotiated v2 anyway")
	}
	if err := conn.PageOut(1, mkPage(1)); err != nil {
		t.Fatal(err)
	}
	got, err := conn.PageIn(1)
	if err != nil || got.Checksum() != mkPage(1).Checksum() {
		t.Fatalf("v1 round trip: %v", err)
	}
}

// TestMuxNegotiatedAgainstRealServer: the default dial against the
// real server negotiates v2 and survives concurrent traffic from many
// goroutines sharing one Conn.
func TestMuxNegotiatedAgainstRealServer(t *testing.T) {
	c := newCluster(t, 1, 1024)
	conn, err := client.DialWithOptions(c.addrs[0], "mux-real", "", client.DialOptions{
		Dial: c.net.DialTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if !conn.Multiplexed() {
		t.Fatal("real server did not negotiate v2")
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				key := uint64(g*100 + i)
				if err := conn.PageOut(key, mkPage(key)); err != nil {
					errs <- fmt.Errorf("pageout %d: %w", key, err)
					return
				}
				got, err := conn.PageIn(key)
				if err != nil {
					errs <- fmt.Errorf("pagein %d: %w", key, err)
					return
				}
				if got.Checksum() != mkPage(key).Checksum() {
					errs <- fmt.Errorf("page %d corrupted", key)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestPipelinedPageOutBatch: the v2 batch path registers every request
// before the first ack arrives, so a full batch round-trips through
// the real server and reads back intact.
func TestPipelinedPageOutBatch(t *testing.T) {
	c := newCluster(t, 1, 1024)
	conn, err := client.DialWithOptions(c.addrs[0], "batch-test", "", client.DialOptions{
		Dial: c.net.DialTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	const n = 64
	keys := make([]uint64, n)
	pages := make([]page.Buf, n)
	for i := range keys {
		keys[i] = uint64(i)
		pages[i] = mkPage(uint64(i))
	}
	if err := conn.PageOutBatch(keys, pages); err != nil {
		t.Fatalf("batch: %v", err)
	}
	for i := uint64(0); i < n; i++ {
		got, err := conn.PageIn(i)
		if err != nil || got.Checksum() != mkPage(i).Checksum() {
			t.Fatalf("pagein %d: %v", i, err)
		}
	}
}

// TestMuxRequestsFailFastOnDeadConn: when the transport dies with
// requests in flight, every waiter is released with the transport
// error instead of hanging until its deadline.
func TestMuxRequestsFailFastOnDeadConn(t *testing.T) {
	nw := memnet.New()
	const stallKey = 7
	newStallServer(t, nw.MustListen("die:7077"), stallKey)
	c, err := client.DialWithOptions("die:7077", "die-test", "", client.DialOptions{
		Dial:      nw.DialTimeout,
		Deadlines: client.Deadlines{Floor: 10 * time.Second, Ceil: 10 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.PageIn(stallKey)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the request get registered
	c.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("pagein on closed conn succeeded")
		}
		if errors.Is(err, client.ErrReqTimeout) {
			t.Fatalf("waiter hit its 10s deadline instead of failing fast: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("in-flight request not released by Close")
	}
}
