package client

import (
	"rmp/internal/page"
)

// writeThroughPolicy stores one copy on a remote server and writes
// every pageout to the local disk as well, treating remote memory as
// a write-through cache of the disk (paper §4.7, after [11]). The two
// transfers run in parallel; reads are served from remote memory, so
// the disk head never moves for reads. A server crash loses nothing —
// the disk holds everything — and the pager re-pushes the affected
// pages to a healthy server to restore read performance.
//rmpvet:holds Pager.mu
type writeThroughPolicy struct {
	p *Pager
}

func (w *writeThroughPolicy) pageOut(id page.ID, data page.Buf) error {
	p := w.p
	loc := p.table[id]
	if loc == nil {
		loc = &location{}
		p.table[id] = loc
	}

	// Disk write proceeds concurrently with the network transfer;
	// both must complete before the pageout is acknowledged.
	diskErr := make(chan error, 1)
	go func() { diskErr <- p.diskPut(id, data) }()

	w.sendRemote(id, loc, data)
	err := <-diskErr
	loc.onDisk = err == nil
	return err
}

// sendRemote best-effort places/overwrites the remote copy; failure
// is tolerable because the disk copy is authoritative.
func (w *writeThroughPolicy) sendRemote(id page.ID, loc *location, data page.Buf) {
	p := w.p
	if len(loc.replicas) == 1 {
		ref := loc.replicas[0]
		if p.servers[ref.srv].alive {
			if err := p.sendPage(ref.srv, ref.key, data, false); err == nil {
				return
			}
		}
		loc.replicas = nil
	}
	for tries := 0; tries < len(p.servers); tries++ {
		srv := p.pickServer()
		if srv < 0 {
			return
		}
		key := p.allocKey()
		if err := p.sendPage(srv, key, data, true); err != nil {
			continue
		}
		loc.replicas = []slotRef{{srv: srv, key: key}}
		return
	}
}

func (w *writeThroughPolicy) pageIn(id page.ID) (page.Buf, error) {
	p := w.p
	loc := p.table[id]
	if loc == nil {
		return nil, ErrNotPagedOut
	}
	if len(loc.replicas) == 1 && p.servers[loc.replicas[0].srv].alive {
		ref := loc.replicas[0]
		data, err := p.fetchPage(ref.srv, ref.key)
		if err == nil {
			return data, nil
		}
		// A corrupt remote read falls back to the authoritative disk
		// copy, which also repairs the remote cache in place.
		if isBadChecksum(err) && loc.onDisk {
			data, derr := p.diskGet(id)
			if derr == nil {
				if p.servers[ref.srv].alive {
					if serr := p.sendPage(ref.srv, ref.key, data, false); serr == nil {
						p.stats.Rehomed++
					}
				}
				return data, nil
			}
		}
	}
	return p.diskGet(id)
}

func (w *writeThroughPolicy) free(id page.ID) error {
	p := w.p
	loc := p.table[id]
	if loc == nil {
		return nil
	}
	for _, ref := range loc.replicas {
		p.freeSlots(ref.srv, ref.key)
	}
	p.swap.Delete(uint64(id))
	delete(p.table, id)
	return nil
}

// serverJoined: nothing to precompute — sendRemote picks the joiner
// up on the next placement.
func (w *writeThroughPolicy) serverJoined(int) {}

// tolerance: the local disk copy survives every server crashing at
// once; report a value that lands in ExposureAtTol's top bucket.
func (w *writeThroughPolicy) tolerance() int { return len(w.p.servers) }

// redundancy: the disk copy is authoritative and survives any server
// crash; a page whose disk write failed has only its remote copy.
func (w *writeThroughPolicy) redundancy() Redundancy {
	p := w.p
	var r Redundancy
	for _, loc := range p.table {
		switch {
		case loc.onDisk:
			r.Full++
		case len(loc.replicas) == 1 && p.servers[loc.replicas[0].srv].alive:
			r.Degraded++
		default:
			r.Lost++
		}
	}
	return r
}

// handleCrash re-pushes the dead server's pages from disk to a
// healthy server so reads stay at memory speed.
func (w *writeThroughPolicy) handleCrash(srv int) error {
	p := w.p
	var firstErr error
	for id, loc := range p.table {
		if len(loc.replicas) != 1 || loc.replicas[0].srv != srv {
			continue
		}
		loc.replicas = nil
		data, err := p.diskGet(id)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		w.sendRemote(id, loc, data)
		p.stats.Rehomed++
	}
	return firstErr
}

// evacuate re-pushes pages from disk to other servers and frees the
// pressured server's slots.
func (w *writeThroughPolicy) evacuate(srv int) error {
	p := w.p
	for id, loc := range p.table {
		if len(loc.replicas) != 1 || loc.replicas[0].srv != srv {
			continue
		}
		key := loc.replicas[0].key
		loc.replicas = nil
		p.freeSlots(srv, key)
		data, err := p.diskGet(id)
		if err != nil {
			return err
		}
		// Exclude the pressured server from re-placement.
		for tries := 0; tries < len(p.servers); tries++ {
			dst := p.pickServer(srv)
			if dst < 0 {
				break
			}
			nk := p.allocKey()
			if err := p.sendPage(dst, nk, data, true); err != nil {
				continue
			}
			loc.replicas = []slotRef{{srv: dst, key: nk}}
			break
		}
		p.stats.Migrated++
	}
	p.servers[srv].pressured = false
	return nil
}
