package client_test

import (
	"errors"
	"testing"

	"rmp/internal/client"
	"rmp/internal/page"
	"rmp/internal/server"
)

// TestDoubleCrashMirroring: losing both replica servers of a page is
// beyond mirroring's single-failure guarantee; the pager must report
// the loss rather than return wrong data.
func TestDoubleCrashMirroring(t *testing.T) {
	c := newCluster(t, 2, 512)
	p := c.pager(client.PolicyMirroring)
	for i := uint64(0); i < 10; i++ {
		if err := p.PageOut(page.ID(i), mkPage(i)); err != nil {
			t.Fatal(err)
		}
	}
	c.crash(0)
	c.crash(1)
	lost := 0
	for i := uint64(0); i < 10; i++ {
		if _, err := p.PageIn(page.ID(i)); err != nil {
			lost++
		}
	}
	if lost != 10 {
		t.Fatalf("double failure: %d/10 reads failed, want all (no silent corruption)", lost)
	}
}

// TestDoubleCrashMirroringWithSpare: with a third server the pager
// re-mirrors after the first crash, so a second crash later is
// survivable.
func TestDoubleCrashMirroringWithSpare(t *testing.T) {
	c := newCluster(t, 3, 512)
	p := c.pager(client.PolicyMirroring)
	for i := uint64(0); i < 10; i++ {
		if err := p.PageOut(page.ID(i), mkPage(i)); err != nil {
			t.Fatal(err)
		}
	}
	c.crash(0)
	// Touch every page: the crash handler re-mirrors onto the spare.
	for i := uint64(0); i < 10; i++ {
		if _, err := p.PageIn(page.ID(i)); err != nil {
			t.Fatalf("pagein %d after first crash: %v", i, err)
		}
	}
	c.crash(1)
	for i := uint64(0); i < 10; i++ {
		got, err := p.PageIn(page.ID(i))
		if err != nil || got.Checksum() != mkPage(i).Checksum() {
			t.Fatalf("pagein %d after second crash: %v", i, err)
		}
	}
}

// TestDoubleCrashParityLogging: two simultaneous data-column losses
// exceed single-parity protection; affected pages must error, and the
// LostPages stat must account for them.
func TestDoubleCrashParityLogging(t *testing.T) {
	c := newCluster(t, 5, 512)
	p := c.pager(client.PolicyParityLogging)
	const n = 40
	for i := uint64(0); i < n; i++ {
		if err := p.PageOut(page.ID(i), mkPage(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Two data columns die before the pager can react.
	c.crash(0)
	c.crash(1)
	lost, ok := 0, 0
	for i := uint64(0); i < n; i++ {
		got, err := p.PageIn(page.ID(i))
		switch {
		case err == nil:
			if got.Checksum() != mkPage(i).Checksum() {
				t.Fatalf("page %d silently corrupted after double crash", i)
			}
			ok++
		default:
			lost++
		}
	}
	if lost == 0 {
		t.Fatal("double crash lost nothing — test not exercising the limit")
	}
	if ok == 0 {
		t.Fatal("pages on surviving columns also lost")
	}
	if p.Stats().LostPages == 0 {
		t.Fatal("LostPages not accounted")
	}
	// The pager must remain usable for new pageouts.
	if err := p.PageOut(page.ID(1000), mkPage(1000)); err != nil {
		t.Fatalf("pageout after double crash: %v", err)
	}
	got, err := p.PageIn(page.ID(1000))
	if err != nil || got.Checksum() != mkPage(1000).Checksum() {
		t.Fatalf("pagein after double crash: %v", err)
	}
}

// TestAllServersCrashParityLogging: with every server gone, new
// pageouts fall back to the local disk and remain readable.
func TestAllServersCrashParityLogging(t *testing.T) {
	c := newCluster(t, 3, 512)
	p := c.pager(client.PolicyParityLogging)
	if err := p.PageOut(1, mkPage(1)); err != nil {
		t.Fatal(err)
	}
	for i := range c.servers {
		c.crash(i)
	}
	// The old page is gone (total loss is beyond any single-parity
	// scheme), but the pager keeps working via the disk.
	if err := p.PageOut(2, mkPage(2)); err != nil {
		t.Fatalf("pageout with no servers: %v", err)
	}
	got, err := p.PageIn(2)
	if err != nil || got.Checksum() != mkPage(2).Checksum() {
		t.Fatalf("disk-fallback pagein: %v", err)
	}
	if p.Stats().FallbackPageOuts == 0 {
		t.Fatal("no disk fallback counted")
	}
}

// TestFreeDiskFallbackPage: freeing a page that lives on the local
// disk must release its slot under every policy.
func TestFreeDiskFallbackPage(t *testing.T) {
	for _, pol := range allPolicies {
		t.Run(pol.String(), func(t *testing.T) {
			c := newCluster(t, 2, 4) // tiny: forces fallback
			if pol == client.PolicyParityLogging || pol == client.PolicyParity {
				c = newCluster(t, 3, 4)
			}
			p := c.pager(pol)
			for i := uint64(0); i < 30; i++ {
				if err := p.PageOut(page.ID(i), mkPage(i)); err != nil {
					t.Fatal(err)
				}
			}
			if p.Stats().FallbackPageOuts == 0 {
				t.Skip("policy kept everything remote at this size")
			}
			for i := uint64(0); i < 30; i++ {
				if err := p.Free(page.ID(i)); err != nil {
					t.Fatalf("free %d: %v", i, err)
				}
			}
			for i := uint64(0); i < 30; i++ {
				if _, err := p.PageIn(page.ID(i)); err == nil {
					t.Fatalf("freed page %d still readable", i)
				}
			}
		})
	}
}

// TestServerRejoinsAfterRestart: a crashed server that comes back
// (restarted daemon on the same address) is re-dialed by Rebalance
// and used for new placements.
func TestServerRejoinsAfterRestart(t *testing.T) {
	c := newCluster(t, 2, 256)
	p := c.pager(client.PolicyNone)
	for i := uint64(0); i < 8; i++ {
		if err := p.PageOut(page.ID(i), mkPage(i)); err != nil {
			t.Fatal(err)
		}
	}
	addr := c.addrs[0]
	c.crash(0)
	// Touch a page so the pager notices the death.
	for i := uint64(0); i < 8; i++ {
		p.PageIn(page.ID(i))
	}

	// Restart a daemon on the same address. On the in-memory network
	// the crashed listener's address is freed synchronously by Close,
	// so the restart can never hit a port-reuse race.
	ln, err := c.net.Listen(addr)
	if err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	srv2 := server.New(server.Config{CapacityPages: 256, Dial: c.net.DialTimeout})
	srv2.Serve(ln)
	t.Cleanup(func() { srv2.Close() })

	if err := p.Rebalance(); err != nil {
		t.Fatal(err)
	}
	// New pageouts spread over both servers again.
	for i := uint64(100); i < 140; i++ {
		if err := p.PageOut(page.ID(i), mkPage(i)); err != nil {
			t.Fatal(err)
		}
	}
	if srv2.Store().Len() == 0 {
		t.Fatal("rejoined server received no pages")
	}
}

// TestPageLostErrorIdentity: loss reports use ErrPageLost so callers
// can distinguish them from transient failures.
func TestPageLostErrorIdentity(t *testing.T) {
	c := newCluster(t, 2, 256)
	p := c.pager(client.PolicyNone)
	if err := p.PageOut(1, mkPage(1)); err != nil {
		t.Fatal(err)
	}
	c.crash(0)
	c.crash(1)
	_, err := p.PageIn(1)
	if err == nil {
		t.Fatal("pagein succeeded with all servers dead")
	}
	if !errors.Is(err, client.ErrPageLost) {
		// Either lost (if crash detected first) or a connection error;
		// force detection with a second attempt.
		if _, err2 := p.PageIn(1); err2 != nil && !errors.Is(err2, client.ErrPageLost) {
			t.Fatalf("loss not reported as ErrPageLost: %v / %v", err, err2)
		}
	}
}
