package client

import (
	"fmt"

	"rmp/internal/page"
)

// nonePolicy stores a single copy on one remote server (the paper's
// NO RELIABILITY configuration). It is the fastest policy — one
// transfer per pageout — but a server crash loses the pages stored
// there; PageIn then reports ErrPageLost.
//rmpvet:holds Pager.mu
type nonePolicy struct {
	p *Pager
}

func (n *nonePolicy) pageOut(id page.ID, data page.Buf) error {
	p := n.p
	loc := p.table[id]
	if loc == nil {
		loc = &location{}
		p.table[id] = loc
	}
	loc.lost = false

	// Overwrite in place when the page already has a remote home.
	if len(loc.replicas) == 1 {
		ref := loc.replicas[0]
		if p.servers[ref.srv].alive {
			if err := p.sendPage(ref.srv, ref.key, data, false); err == nil {
				return nil
			}
			// Server died mid-send; fall through to re-place. The crash
			// handler has already marked this page lost; un-mark it —
			// we hold the current contents right here.
			loc.lost = false
		}
		loc.replicas = nil
	}

	return n.place(id, loc, data)
}

// place finds a home for a fresh copy: best server first, local disk
// as the last resort (§2.1: "If no server having enough free memory
// can be found the client's local disk will be used").
func (n *nonePolicy) place(id page.ID, loc *location, data page.Buf) error {
	p := n.p
	for tries := 0; tries < len(p.servers); tries++ {
		srv := p.pickServer()
		if srv < 0 {
			break
		}
		key := p.allocKey()
		if err := p.sendPage(srv, key, data, true); err != nil {
			continue // that server just died; try the next
		}
		loc.replicas = []slotRef{{srv: srv, key: key}}
		if loc.onDisk {
			p.swap.Delete(uint64(id))
			loc.onDisk = false
		}
		return nil
	}
	p.stats.FallbackPageOuts++
	loc.replicas = nil
	loc.onDisk = true
	return p.diskPut(id, data)
}

func (n *nonePolicy) pageIn(id page.ID) (page.Buf, error) {
	p := n.p
	loc := p.table[id]
	if loc == nil {
		return nil, ErrNotPagedOut
	}
	if loc.lost {
		return nil, fmt.Errorf("%w: %v", ErrPageLost, id)
	}
	if len(loc.replicas) == 1 {
		data, err := p.fetchPage(loc.replicas[0].srv, loc.replicas[0].key)
		if err == nil {
			return data, nil
		}
		if loc.lost { // crash handler ran inside fetchPage
			return nil, fmt.Errorf("%w: %v", ErrPageLost, id)
		}
		return nil, err
	}
	if loc.onDisk {
		return p.diskGet(id)
	}
	return nil, fmt.Errorf("%w: %v", ErrPageLost, id)
}

func (n *nonePolicy) free(id page.ID) error {
	p := n.p
	loc := p.table[id]
	if loc == nil {
		return nil
	}
	for _, ref := range loc.replicas {
		p.freeSlots(ref.srv, ref.key)
	}
	if loc.onDisk {
		p.swap.Delete(uint64(id))
	}
	delete(p.table, id)
	return nil
}

// serverJoined: nothing to precompute — pickServer sees the new
// server on the next placement.
func (n *nonePolicy) serverJoined(int) {}

// tolerance: a single copy loses pages on the first crash.
func (n *nonePolicy) tolerance() int { return 0 }

// redundancy: a remote-only copy dies with its server (Degraded); a
// disk-fallback copy survives any server crash (Full).
func (n *nonePolicy) redundancy() Redundancy {
	p := n.p
	var r Redundancy
	for _, loc := range p.table {
		switch {
		case loc.lost:
			r.Lost++
		case loc.onDisk:
			r.Full++
		case len(loc.replicas) == 1 && p.servers[loc.replicas[0].srv].alive:
			r.Degraded++
		default:
			// Copy sits on a dead server awaiting crash handling.
			r.Lost++
		}
	}
	return r
}

// handleCrash marks every page homed on the dead server as lost.
func (n *nonePolicy) handleCrash(srv int) error {
	p := n.p
	for _, loc := range p.table {
		if len(loc.replicas) == 1 && loc.replicas[0].srv == srv {
			loc.replicas = nil
			loc.lost = true
			p.stats.LostPages++
		}
	}
	return nil
}

// evacuate moves every page off a pressured (but alive) server.
func (n *nonePolicy) evacuate(srv int) error {
	p := n.p
	var ids []page.ID
	for id, loc := range p.table {
		if len(loc.replicas) == 1 && loc.replicas[0].srv == srv {
			ids = append(ids, id)
		}
	}
	for _, id := range ids {
		loc := p.table[id]
		ref := loc.replicas[0]
		data, err := p.fetchPage(ref.srv, ref.key)
		if err != nil {
			return err
		}
		// New home, excluding the pressured server.
		placed := false
		for tries := 0; tries < len(p.servers); tries++ {
			dst := p.pickServer(srv)
			if dst < 0 {
				break
			}
			key := p.allocKey()
			if err := p.sendPage(dst, key, data, true); err != nil {
				continue
			}
			p.freeSlots(srv, ref.key)
			loc.replicas = []slotRef{{srv: dst, key: key}}
			placed = true
			break
		}
		if !placed {
			if err := p.diskPut(id, data); err != nil {
				return err
			}
			p.stats.FallbackPageOuts++
			p.freeSlots(srv, ref.key)
			loc.replicas = nil
			loc.onDisk = true
		}
		p.stats.Migrated++
	}
	p.servers[srv].pressured = false
	return nil
}
