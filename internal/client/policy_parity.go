package client

import (
	"errors"
	"fmt"

	"rmp/internal/page"
)

// parityPolicy is the basic parity scheme (paper §2.2 "Parity"):
// every page has a fixed home server and a fixed parity group — group
// g contains the page at slot g of each data server, and the parity
// server holds the XOR of the group. On pageout the client sends the
// new contents to the home server, which computes old XOR new and
// forwards the delta to the parity server (two page transfers per
// pageout). Memory overhead is only 1/S, but the runtime overhead is
// what motivated the paper to invent parity logging.
//rmpvet:holds Pager.mu
type parityPolicy struct {
	p *Pager

	parityIdx int   // server acting as the parity store
	dataIdx   []int // data servers

	homes  map[page.ID]parityHome
	groups map[int]*parityGroup
	slots  map[int]*srvSlots // per data server slot allocator
}

type parityHome struct {
	srv  int
	slot int
	key  uint64
}

type parityGroup struct {
	slot      int
	parityKey uint64
	members   map[int]page.ID // server index -> page
	// stale means the parity page no longer matches the registered
	// members: an unrecoverable member was dropped without XORing its
	// contribution out, or a recompute could not read every member.
	// Reconstructing through a stale group would XOR the leftover
	// contribution into the result — fabricated bytes with no checksum
	// to catch them — so reconstruction refuses stale groups (fail
	// closed) until freshenStaleGroups recomputes the parity.
	stale bool
}

type srvSlots struct {
	next int
	free []int
}

func (s *srvSlots) alloc() int {
	if n := len(s.free); n > 0 {
		slot := s.free[n-1]
		s.free = s.free[:n-1]
		return slot
	}
	slot := s.next
	s.next++
	return slot
}

func (s *srvSlots) release(slot int) { s.free = append(s.free, slot) }

// newParityPolicy dedicates the last alive server to parity, the rest
// to data — mirroring the paper's "S servers ... plus a parity
// server" arrangement.
func newParityPolicy(p *Pager) *parityPolicy {
	alive := p.aliveServers()
	pp := &parityPolicy{
		p:         p,
		parityIdx: alive[len(alive)-1],
		dataIdx:   alive[:len(alive)-1],
		homes:     make(map[page.ID]parityHome),
		groups:    make(map[int]*parityGroup),
		slots:     make(map[int]*srvSlots),
	}
	for _, i := range pp.dataIdx {
		pp.slots[i] = &srvSlots{}
	}
	return pp
}

func (pp *parityPolicy) parityAddr() string { return pp.p.servers[pp.parityIdx].addr }

// tolerance: one parity server covers any one crash.
func (pp *parityPolicy) tolerance() int { return 1 }

// xorWrite performs the two-transfer pageout: client -> home server
// (which stores the page) and home server -> parity server (the
// delta). Both count as network page transfers.
//
// A dead parity server surfaces here as a server-reported INTERNAL
// status (the home server could not forward the delta), not as a
// connection error — so that case probes the parity server directly
// and triggers its crash handling.
func (pp *parityPolicy) xorWrite(srv int, key uint64, data page.Buf, parityKey uint64, fresh bool) error {
	p := pp.p
	rs := p.servers[srv]
	if !rs.alive {
		return fmt.Errorf("client: server %s is down", rs.addr)
	}
	// XORWRITE is safe to replay: the home server stores the new
	// contents and forwards old^new, so a duplicate of a completed
	// write forwards a zero delta and the parity is unchanged.
	if err := p.withConn(srv, true, func(c *Conn) error {
		return c.XorWrite(key, data, pp.parityAddr(), parityKey)
	}); err != nil {
		if isConnError(err) {
			p.serverDied(srv, err)
		} else {
			pp.checkParityServer()
		}
		return err
	}
	p.stats.NetTransfers += 2
	if fresh {
		rs.used++
	}
	if rs.conn.PressureAdvised() {
		rs.pressured = true
	}
	return nil
}

func (pp *parityPolicy) pageOut(id page.ID, data page.Buf) error {
	p := pp.p
	// Close the asynchronous-recovery gap first: group bookkeeping
	// mutated before a pending crash rebuild would corrupt parity.
	p.ensureAllRecovered()
	// Overwrite in place; a mid-write crash triggers recovery (which
	// re-homes the page with its pre-crash contents), after which the
	// retry lands the new contents on the new home.
	for attempt := 0; attempt < 3; attempt++ {
		home, ok := pp.homes[id]
		if !ok {
			break
		}
		g := pp.groups[home.slot]
		if !p.servers[home.srv].alive {
			// Crash handler failed to clean this up (e.g. reconstruction
			// error); the version is gone, its contribution still folded
			// into the parity page.
			if g != nil {
				g.stale = true
			}
			pp.dropMemberBookkeeping(id)
			break
		}
		if err := pp.xorWrite(home.srv, home.key, data, g.parityKey, false); err == nil {
			return nil
		}
	}
	// Disk-fallback page being rewritten?
	if loc := p.table[id]; loc != nil && loc.onDisk {
		if pp.pickDataServer() < 0 {
			p.stats.FallbackPageOuts++
			return p.diskPut(id, data)
		}
		p.swap.Delete(uint64(id))
		delete(p.table, id)
	}
	return pp.place(id, data)
}

// pickDataServer selects the most promising data server, with the
// same latency-aware policy as the pager's general selection.
func (pp *parityPolicy) pickDataServer() int {
	return pp.p.pickFrom(pp.dataIdx)
}

// place assigns a fresh home (server, slot, group) and writes the page.
func (pp *parityPolicy) place(id page.ID, data page.Buf) error {
	p := pp.p
	for tries := 0; tries < len(pp.dataIdx)+1; tries++ {
		srv := pp.pickDataServer()
		if srv < 0 {
			break
		}
		slot := pp.slots[srv].alloc()
		g, ok := pp.groups[slot]
		if !ok {
			g = &parityGroup{slot: slot, parityKey: p.allocKey(), members: make(map[int]page.ID)}
			pp.groups[slot] = g
			p.servers[pp.parityIdx].used++
		}
		key := p.allocKey()
		if err := pp.xorWrite(srv, key, data, g.parityKey, true); err != nil {
			if s, ok := pp.slots[srv]; ok {
				s.release(slot)
			}
			// A transport failure leaves it ambiguous whether the delta
			// reached the parity page; since this member was never
			// registered, recompute the group's parity from its
			// registered members to close the write hole.
			if isConnError(err) {
				if g2, ok := pp.groups[slot]; ok {
					pp.repairGroup(g2)
				}
			}
			continue
		}
		g.members[srv] = id
		pp.homes[id] = parityHome{srv: srv, slot: slot, key: key}
		delete(p.table, id) // clear any stale disk/lost marker
		return nil
	}
	// No data server: local disk fallback.
	p.stats.FallbackPageOuts++
	loc := p.table[id]
	if loc == nil {
		loc = &location{}
		p.table[id] = loc
	}
	loc.onDisk = true
	return p.diskPut(id, data)
}

func (pp *parityPolicy) pageIn(id page.ID) (page.Buf, error) {
	p := pp.p
	p.ensureAllRecovered()
	if home, ok := pp.homes[id]; ok {
		data, err := p.fetchPage(home.srv, home.key)
		if err == nil {
			return data, nil
		}
		// Persistent checksum failure: the transfer (or the stored
		// copy) is corrupt but the server is up. Reconstruct through
		// the parity group and rewrite the home copy in place — the
		// reconstruction equals the stored contents, so the group's
		// parity stays consistent.
		if isBadChecksum(err) {
			if g := pp.groups[home.slot]; g != nil {
				if rec, rerr := pp.reconstruct(g, home.srv); rerr == nil {
					p.stats.Recovered++
					if p.servers[home.srv].alive {
						if serr := p.sendPage(home.srv, home.key, rec, false); serr == nil {
							p.stats.Rehomed++
						}
					}
					return rec, nil
				}
			}
		}
		// Home crashed mid-fetch; handleCrash reconstructed and
		// re-homed the page, so retry through the new home.
		if home2, ok := pp.homes[id]; ok && home2 != home {
			return p.fetchPage(home2.srv, home2.key)
		}
		if loc := p.table[id]; loc != nil {
			if loc.onDisk {
				return p.diskGet(id)
			}
			if loc.lost {
				return nil, fmt.Errorf("%w: %v", ErrPageLost, id)
			}
		}
		return nil, err
	}
	if loc := p.table[id]; loc != nil {
		if loc.onDisk {
			return p.diskGet(id)
		}
		if loc.lost {
			return nil, fmt.Errorf("%w: %v", ErrPageLost, id)
		}
	}
	return nil, ErrNotPagedOut
}

// dropMemberBookkeeping removes id from its group and slot tables
// without any I/O (used after a crash invalidated the home).
func (pp *parityPolicy) dropMemberBookkeeping(id page.ID) {
	home, ok := pp.homes[id]
	if !ok {
		return
	}
	delete(pp.homes, id)
	if g, ok := pp.groups[home.slot]; ok {
		delete(g.members, home.srv)
		if len(g.members) == 0 {
			pp.deleteGroup(g)
		}
	}
	if s, ok := pp.slots[home.srv]; ok {
		s.release(home.slot)
	}
}

// checkParityServer probes the parity server after a forwarding
// failure; if it is unreachable, its crash handling (re-election and
// parity recomputation) runs now instead of on some later direct use.
func (pp *parityPolicy) checkParityServer() {
	p := pp.p
	if pp.parityIdx < 0 || pp.parityIdx >= len(p.servers) {
		return
	}
	rs := p.servers[pp.parityIdx]
	if !rs.alive {
		return
	}
	err := p.withConn(pp.parityIdx, true, func(c *Conn) error {
		_, lerr := c.Load()
		return lerr
	})
	if err != nil && !errors.Is(err, ErrBreakerOpen) {
		p.serverDied(pp.parityIdx, err)
	}
}

// repairGroup recomputes g's parity from its registered members and
// installs it under a fresh key, discarding any ambiguous state left
// by a transport failure mid-XORWRITE.
func (pp *parityPolicy) repairGroup(g *parityGroup) {
	p := pp.p
	if !p.servers[pp.parityIdx].alive {
		return // a parity-server crash handler will rebuild everything
	}
	parityPage := page.GetZero()
	for srv, id := range g.members {
		home, ok := pp.homes[id]
		if !ok || !p.servers[srv].alive {
			page.Put(parityPage)
			return
		}
		data, err := p.fetchPage(srv, home.key)
		if err != nil {
			page.Put(parityPage)
			return
		}
		page.XORInto(parityPage, data)
		page.Put(data)
	}
	oldKey := g.parityKey
	g.parityKey = p.allocKey()
	if err := p.sendPage(pp.parityIdx, g.parityKey, parityPage, true); err != nil {
		// A failed (possibly timed-out) send may still be queued on the
		// write loop; the buffer leaks to the GC instead of the pool.
		g.parityKey = oldKey
		return
	}
	page.Put(parityPage)
	g.stale = false
	p.freeSlots(pp.parityIdx, oldKey)
}

// deleteGroup frees the group's parity slot.
func (pp *parityPolicy) deleteGroup(g *parityGroup) {
	delete(pp.groups, g.slot)
	pp.p.freeSlots(pp.parityIdx, g.parityKey)
}

// free releases the page: its contribution is XORed out of the group
// parity (by writing zeros, whose delta is the old contents), then
// the slot is freed.
func (pp *parityPolicy) free(id page.ID) error {
	p := pp.p
	p.ensureAllRecovered()
	home, ok := pp.homes[id]
	if !ok {
		if loc := p.table[id]; loc != nil {
			p.swap.Delete(uint64(id))
			delete(p.table, id)
		}
		return nil
	}
	g := pp.groups[home.slot]
	if p.servers[home.srv].alive {
		zero := page.GetZero()
		if err := pp.xorWrite(home.srv, home.key, zero, g.parityKey, false); err == nil {
			p.freeSlots(home.srv, home.key)
			page.Put(zero) // acked: the write loop no longer references it
		}
	}
	pp.dropMemberBookkeeping(id)
	return nil
}

// serverJoined folds a joined (or revived) server into the layout.
// If the layout is degraded — parity doubled up on a data server, or
// no live parity host at all — parity duty migrates onto the joiner,
// restoring single-failure tolerance for every group. Otherwise the
// joiner simply becomes another data server.
func (pp *parityPolicy) serverJoined(srv int) {
	p := pp.p
	if !p.servers[srv].alive || srv == pp.parityIdx {
		return
	}
	for _, i := range pp.dataIdx {
		if i == srv {
			return // already in the layout (revival after evacuation)
		}
	}
	degraded := pp.parityIdx < 0 || !p.servers[pp.parityIdx].alive
	for _, i := range pp.dataIdx {
		if i == pp.parityIdx {
			degraded = true
		}
	}
	if degraded {
		oldIdx := pp.parityIdx
		oldKeys := make([]uint64, 0, len(pp.groups))
		for _, g := range pp.groups {
			oldKeys = append(oldKeys, g.parityKey)
		}
		pp.parityIdx = srv
		if err := pp.recomputeGroups(); err != nil {
			p.logf("parity migration to joined server %s: %v", p.servers[srv].addr, err)
			return
		}
		if oldIdx >= 0 && oldIdx < len(p.servers) {
			p.freeSlots(oldIdx, oldKeys...)
		}
		p.logf("parity duty moved to joined server %s", p.servers[srv].addr)
		return
	}
	pp.dataIdx = append(pp.dataIdx, srv)
	if pp.slots[srv] == nil {
		pp.slots[srv] = &srvSlots{}
	}
}

// recomputeGroups writes fresh parity for every group onto the
// current parity server.
func (pp *parityPolicy) recomputeGroups() error {
	return pp.recomputeAndShipParity(false)
}

// recomputeAndShipParity recomputes every group's parity page from
// the live member data and ships the whole set to the parity server
// in ONE pipelined batch (sendPageBatch) instead of one round trip
// per group — on a v2 session the rebuild of an N-group layout costs
// roughly one parity-server round trip total. A member read that
// fails leaves that group's parity computed from the readable members
// and is reported as the first error; when recovered is set each
// group counts toward Stats.Recovered.
//rmpvet:holds Pager.mu
func (pp *parityPolicy) recomputeAndShipParity(recovered bool) error {
	p := pp.p
	var firstErr error
	keys := make([]uint64, 0, len(pp.groups))
	pages := make([]page.Buf, 0, len(pp.groups))
	shipped := make([]*parityGroup, 0, len(pp.groups))
	for _, g := range pp.groups {
		parityPage := page.GetZero()
		complete := true
		for srv, id := range g.members {
			home := pp.homes[id]
			data, err := p.fetchPage(srv, home.key)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				complete = false
				continue
			}
			page.XORInto(parityPage, data)
			page.Put(data)
		}
		// A parity page missing a registered member's contribution must
		// never serve reconstructions: it would fabricate bytes with no
		// checksum to catch them.
		g.stale = !complete
		g.parityKey = p.allocKey()
		keys = append(keys, g.parityKey)
		pages = append(pages, parityPage)
		shipped = append(shipped, g)
		if recovered {
			p.stats.Recovered++
		}
	}
	err := p.sendPageBatch(pp.parityIdx, keys, pages, true)
	if err == nil {
		for _, b := range pages {
			page.Put(b)
		}
	}
	if err != nil {
		for _, g := range shipped {
			g.stale = true
		}
		if firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// redundancy: a page survives one more crash iff its home is alive,
// its group's parity lives on a distinct live server, and every other
// member of the group is reachable for reconstruction.
func (pp *parityPolicy) redundancy() Redundancy {
	p := pp.p
	var r Redundancy
	parityOK := pp.parityIdx >= 0 && pp.parityIdx < len(p.servers) &&
		p.servers[pp.parityIdx].alive
	for _, home := range pp.homes {
		if !p.servers[home.srv].alive {
			// Awaiting reconstruction: still recoverable via parity,
			// but another crash could finish it off.
			r.Degraded++
			continue
		}
		full := parityOK && pp.parityIdx != home.srv
		if full {
			if g := pp.groups[home.slot]; g != nil {
				for msrv := range g.members {
					if !p.servers[msrv].alive {
						full = false
						break
					}
				}
			}
		}
		if full {
			r.Full++
		} else {
			r.Degraded++
		}
	}
	for _, loc := range p.table {
		switch {
		case loc.lost:
			r.Lost++
		case loc.onDisk:
			r.Full++
		}
	}
	return r
}

// handleCrash reconstructs the dead server's pages via the parity
// groups (or rebuilds the parity server's contents if it was the
// parity server that died).
//
// If the dead server was hosting parity *and* data (the degraded
// double-up after an earlier failure), its data pages cannot be
// reconstructed — their parity died with them. They are marked lost
// and the remaining groups get fresh parity.
func (pp *parityPolicy) handleCrash(srv int) error {
	if srv == pp.parityIdx {
		pp.dropDataServerLost(srv)
		return pp.rebuildParity()
	}
	in := false
	for _, i := range pp.dataIdx {
		if i == srv {
			in = true
		}
	}
	if !in {
		return nil
	}
	p := pp.p

	// Collect this server's members before mutating bookkeeping.
	type lost struct {
		id   page.ID
		g    *parityGroup
		home parityHome
	}
	var losses []lost
	for id, home := range pp.homes {
		if home.srv == srv {
			losses = append(losses, lost{id: id, g: pp.groups[home.slot], home: home})
		}
	}
	// Remove the dead server from the data set.
	kept := pp.dataIdx[:0]
	for _, i := range pp.dataIdx {
		if i != srv {
			kept = append(kept, i)
		}
	}
	pp.dataIdx = kept
	delete(pp.slots, srv)

	var firstErr error
	for _, l := range losses {
		data, err := pp.reconstruct(l.g, srv)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("reconstruct %v: %w", l.id, err)
			}
			// The member is dropped with its contribution still folded
			// into the parity page: the group must not serve further
			// reconstructions until its parity is recomputed.
			l.g.stale = true
			delete(pp.homes, l.id)
			delete(l.g.members, srv)
			if len(l.g.members) == 0 {
				pp.deleteGroup(l.g)
			}
			loc := p.table[l.id]
			if loc == nil {
				loc = &location{}
				p.table[l.id] = loc
			}
			loc.lost = true
			p.stats.LostPages++
			continue
		}
		// Subtract the lost page from its group's parity, then drop it
		// from the group and re-home it as a fresh pageout.
		if err := pp.xorOutOfParity(l.g, data); err != nil {
			// Ambiguous whether the delta landed; the parity can no
			// longer be trusted against its members.
			l.g.stale = true
			if firstErr == nil {
				firstErr = err
			}
		}
		delete(pp.homes, l.id)
		delete(l.g.members, srv)
		if len(l.g.members) == 0 {
			pp.deleteGroup(l.g)
		}
		if err := pp.place(l.id, data); err != nil && firstErr == nil {
			firstErr = err
		}
		p.stats.Recovered++
	}
	// Groups may still list the dead server from pages we never saw
	// (shouldn't happen, but keep the invariant tight).
	for _, g := range pp.groups {
		delete(g.members, srv)
	}
	pp.freshenStaleGroups()
	return firstErr
}

// freshenStaleGroups recomputes parity for every stale group whose
// members are all reachable again, restoring their reconstruction
// capability. Groups with a member on a still-dead server stay stale
// — reconstruct keeps refusing them — until a later crash handler
// removes or re-homes that member.
func (pp *parityPolicy) freshenStaleGroups() {
	for _, g := range pp.groups {
		if g.stale {
			pp.repairGroup(g)
		}
	}
}

// dropDataServerLost removes srv from the data set, marking every
// page homed there as lost (no reconstruction possible — used when
// the same host held the parity).
func (pp *parityPolicy) dropDataServerLost(srv int) {
	p := pp.p
	in := false
	for _, i := range pp.dataIdx {
		if i == srv {
			in = true
		}
	}
	if !in {
		return
	}
	var doomed []page.ID
	for id, home := range pp.homes {
		if home.srv == srv {
			doomed = append(doomed, id)
		}
	}
	for _, id := range doomed {
		pp.dropMemberBookkeeping(id)
		loc := p.table[id]
		if loc == nil {
			loc = &location{}
			p.table[id] = loc
		}
		loc.lost = true
		p.stats.LostPages++
	}
	kept := pp.dataIdx[:0]
	for _, i := range pp.dataIdx {
		if i != srv {
			kept = append(kept, i)
		}
	}
	pp.dataIdx = kept
	delete(pp.slots, srv)
	for _, g := range pp.groups {
		delete(g.members, srv)
	}
}

// reconstruct XORs the group's parity page with its surviving members
// to recover the member stored on dead.
func (pp *parityPolicy) reconstruct(g *parityGroup, dead int) (page.Buf, error) {
	p := pp.p
	if g.stale {
		return nil, fmt.Errorf("client: parity group %d is stale after an unrecovered loss", g.slot)
	}
	out, err := p.fetchPage(pp.parityIdx, g.parityKey)
	if err != nil {
		return nil, err
	}
	for srv, id := range g.members {
		if srv == dead {
			continue
		}
		home := pp.homes[id]
		data, err := p.fetchPage(srv, home.key)
		if err != nil {
			return nil, err
		}
		page.XORInto(out, data)
		page.Put(data)
	}
	return out, nil
}

// xorOutOfParity removes data's contribution from g's parity page.
func (pp *parityPolicy) xorOutOfParity(g *parityGroup, data page.Buf) error {
	p := pp.p
	rs := p.servers[pp.parityIdx]
	if !rs.alive {
		return fmt.Errorf("client: parity server %s is down", rs.addr)
	}
	// XORDELTA is NOT idempotent — a replay whose first attempt landed
	// would fold the delta in twice and corrupt the parity — so it gets
	// exactly one bounded attempt (withConn never replays it).
	if err := p.withConn(pp.parityIdx, false, func(c *Conn) error {
		return c.XorDelta(g.parityKey, data)
	}); err != nil {
		if isConnError(err) {
			p.serverDied(pp.parityIdx, err)
		}
		return err
	}
	p.stats.NetTransfers++
	return nil
}

// rebuildParity elects a new parity server and recomputes every
// group's parity from its members. Data pages are untouched.
func (pp *parityPolicy) rebuildParity() error {
	p := pp.p
	// Prefer an alive server that holds no data; otherwise double up
	// on the data server with the most headroom (degraded but live).
	newIdx := -1
	for _, i := range p.aliveServers() {
		isData := false
		for _, d := range pp.dataIdx {
			if d == i {
				isData = true
			}
		}
		if !isData {
			newIdx = i
			break
		}
	}
	if newIdx < 0 {
		best, bestRoom := -1, -1
		for _, i := range pp.dataIdx {
			if rs := p.servers[i]; rs.alive && rs.headroom() > bestRoom {
				best, bestRoom = i, rs.headroom()
			}
		}
		if best < 0 {
			return fmt.Errorf("client: no server left to host parity")
		}
		newIdx = best
		p.logf("parity server doubling up on data server %s (degraded)", p.servers[best].addr)
	}
	pp.parityIdx = newIdx
	return pp.recomputeAndShipParity(true)
}

// evacuate migrates pages (or parity pages) off a pressured or
// draining server. A doubled-up server (parity on a data server after
// an earlier failure) holds both roles, so the parity branch falls
// through to the data branch rather than returning.
func (pp *parityPolicy) evacuate(srv int) error {
	p := pp.p
	if srv == pp.parityIdx {
		// Move parity duty: re-elect and recompute. Mark the evacuated
		// server so rebuildParity skips it, then free its parity pages.
		oldKeys := make([]uint64, 0, len(pp.groups))
		for _, g := range pp.groups {
			oldKeys = append(oldKeys, g.parityKey)
		}
		oldIdx := pp.parityIdx
		pp.parityIdx = -1 // not a data server either; rebuild re-elects
		if err := pp.rebuildParityExcluding(oldIdx); err != nil {
			pp.parityIdx = oldIdx
			return err
		}
		p.freeSlots(oldIdx, oldKeys...)
		// pressured stays set until the data branch finishes, so the
		// re-homing below cannot pick this server again.
	}
	// Data server: re-home each of its pages.
	var ids []page.ID
	for id, home := range pp.homes {
		if home.srv == srv {
			ids = append(ids, id)
		}
	}
	for _, id := range ids {
		home := pp.homes[id]
		g := pp.groups[home.slot]
		data, err := p.fetchPage(srv, home.key)
		if err != nil {
			return err
		}
		if err := pp.xorOutOfParity(g, data); err != nil {
			return err
		}
		p.freeSlots(srv, home.key)
		pp.dropMemberBookkeeping(id)
		if err := pp.place(id, data); err != nil {
			return err
		}
		p.stats.Migrated++
	}
	p.servers[srv].pressured = false
	return nil
}

// rebuildParityExcluding is rebuildParity but never elects excluded.
// With no spare server it doubles parity up on the data server with
// the most headroom (degraded: groups with a member there lose
// single-failure tolerance), exactly like rebuildParity.
func (pp *parityPolicy) rebuildParityExcluding(excluded int) error {
	p := pp.p
	newIdx := -1
	for _, i := range p.aliveServers() {
		if i == excluded {
			continue
		}
		isData := false
		for _, d := range pp.dataIdx {
			if d == i {
				isData = true
			}
		}
		if !isData {
			newIdx = i
			break
		}
	}
	if newIdx < 0 {
		best, bestRoom := -1, -1
		for _, i := range pp.dataIdx {
			if i == excluded {
				continue
			}
			if rs := p.servers[i]; rs.alive && rs.headroom() > bestRoom {
				best, bestRoom = i, rs.headroom()
			}
		}
		if best < 0 {
			return fmt.Errorf("client: no server left for parity migration")
		}
		newIdx = best
		p.logf("parity migrating onto data server %s (degraded)", p.servers[best].addr)
	}
	pp.parityIdx = newIdx
	return pp.recomputeAndShipParity(false)
}
