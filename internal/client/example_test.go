package client_test

import (
	"fmt"
	"log"

	"rmp/internal/client"
	"rmp/internal/page"
	"rmp/internal/server"
)

// Example shows the smallest complete use of the pager: two in-process
// remote memory servers, mirrored pageout, pagein, verification.
func Example() {
	var addrs []string
	for i := 0; i < 2; i++ {
		srv := server.New(server.Config{CapacityPages: 1024})
		if err := srv.ListenAndServe("127.0.0.1:0"); err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		addrs = append(addrs, srv.Addr().String())
	}

	pager, err := client.New(client.Config{
		ClientName: "example",
		Servers:    addrs,
		Policy:     client.PolicyMirroring,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer pager.Close()

	out := page.NewBuf()
	out.Fill(42)
	if err := pager.PageOut(7, out); err != nil {
		log.Fatal(err)
	}
	in, err := pager.PageIn(7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("round trip ok:", in.Checksum() == out.Checksum())
	fmt.Println("transfers:", pager.Stats().NetTransfers) // 2 mirror writes + 1 read

	// Output:
	// round trip ok: true
	// transfers: 3
}
