package client_test

import (
	"testing"
	"time"

	"rmp/internal/client"
	"rmp/internal/page"
	"rmp/internal/server"
)

// End-to-end tests for the RS(k,m) erasure-coding policy: multi-crash
// survival, degraded-mode writes, graceful fallback, geometry
// restoration on join, and the transfer/overhead ratios.

// rsConfig is the baseline RS pager config against cluster c with an
// explicit (k,m) geometry.
func rsConfig(c *cluster, k, m int) client.Config {
	cfg := c.config(client.PolicyRS)
	cfg.RSDataShards = k
	cfg.RSParityShards = m
	return cfg
}

func TestCrashRSDataShardRecovers(t *testing.T) {
	// Servers 0..3 are data columns, 4..5 parity.
	reliableCrashTest(t, client.PolicyRS, 6, 1)
}

func TestCrashRSParityShardRecovers(t *testing.T) {
	reliableCrashTest(t, client.PolicyRS, 6, 4)
}

// TestRSTwoSimultaneousCrashes is the headline: with RS(4,2), two
// servers dying in the same instant — before the pager touches either
// — must cost nothing. Every page reconstructs byte-identically from
// the four survivors and the system stays writable.
func TestRSTwoSimultaneousCrashes(t *testing.T) {
	cases := []struct {
		name   string
		crash  [2]int
		within string
	}{
		{"two-data", [2]int{0, 2}, "data columns"},
		{"data-and-parity", [2]int{1, 4}, "one data one parity"},
		{"two-parity", [2]int{4, 5}, "parity columns"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := newCluster(t, 6, 512)
			p := c.pagerWith(rsConfig(c, 4, 2))
			const n = 30
			for i := uint64(0); i < n; i++ {
				if err := p.PageOut(page.ID(i), mkPage(i*7)); err != nil {
					t.Fatalf("pageout %d: %v", i, err)
				}
			}
			// Rewrites create inactive versions in sealed groups.
			for i := uint64(0); i < n; i += 3 {
				if err := p.PageOut(page.ID(i), mkPage(i*7+1)); err != nil {
					t.Fatal(err)
				}
			}
			// Both servers die before the pager notices either.
			c.crash(tc.crash[0])
			c.crash(tc.crash[1])
			for i := uint64(0); i < n; i++ {
				want := mkPage(i * 7)
				if i%3 == 0 {
					want = mkPage(i*7 + 1)
				}
				got, err := p.PageIn(page.ID(i))
				if err != nil {
					t.Fatalf("pagein %d after losing %s: %v", i, tc.within, err)
				}
				if got.Checksum() != want.Checksum() {
					t.Fatalf("page %d not byte-identical after double crash", i)
				}
			}
			// The rebuilt (degraded) layout must stay writable.
			for i := uint64(0); i < n; i++ {
				if err := p.PageOut(page.ID(i), mkPage(i+9000)); err != nil {
					t.Fatalf("post-recovery pageout %d: %v", i, err)
				}
			}
			for i := uint64(0); i < n; i++ {
				got, err := p.PageIn(page.ID(i))
				if err != nil || got.Checksum() != mkPage(i+9000).Checksum() {
					t.Fatalf("post-recovery pagein %d: %v", i, err)
				}
			}
		})
	}
}

// TestRSThreeCrashesExceedTolerance: losing m+1 servers at once is
// beyond RS(4,2); pages whose groups kept fewer than k shards must
// fail closed with ErrPageLost — a clean error, never garbage.
func TestRSThreeCrashesExceedTolerance(t *testing.T) {
	c := newCluster(t, 6, 512)
	p := c.pagerWith(rsConfig(c, 4, 2))
	const n = 24
	for i := uint64(0); i < n; i++ {
		if err := p.PageOut(page.ID(i), mkPage(i)); err != nil {
			t.Fatal(err)
		}
	}
	c.crash(0)
	c.crash(1)
	c.crash(2)
	lost, clean := 0, 0
	for i := uint64(0); i < n; i++ {
		got, err := p.PageIn(page.ID(i))
		switch {
		case err == nil:
			if got.Checksum() != mkPage(i).Checksum() {
				t.Fatalf("page %d returned garbage instead of an error", i)
			}
			clean++
		default:
			lost++
		}
	}
	if lost == 0 {
		t.Fatal("three simultaneous crashes lost nothing — tolerance accounting is wrong")
	}
	if p.Stats().LostPages == 0 {
		t.Fatal("LostPages not counted")
	}
	_ = clean // pages of groups with >= k surviving shards may still decode
}

// TestRSDegradedWritesCounted: with k+m-1 servers the policy writes
// at reduced parity width — counted, never denied — and every page
// still survives one crash.
func TestRSDegradedWritesCounted(t *testing.T) {
	c := newCluster(t, 5, 512) // k+m-1 for (4,2)
	p := c.pagerWith(rsConfig(c, 4, 2))
	const n = 20
	for i := uint64(0); i < n; i++ {
		if err := p.PageOut(page.ID(i), mkPage(i)); err != nil {
			t.Fatalf("degraded pageout %d denied: %v", i, err)
		}
	}
	st := p.Stats()
	if st.DegradedWrites != n {
		t.Fatalf("DegradedWrites = %d, want %d", st.DegradedWrites, n)
	}
	if st.FallbackPageOuts != 0 {
		t.Fatalf("degraded writes went to disk (%d) instead of the reduced layout", st.FallbackPageOuts)
	}
	// The reduced RS(4,1) layout still survives one crash.
	c.crash(2)
	for i := uint64(0); i < n; i++ {
		got, err := p.PageIn(page.ID(i))
		if err != nil || got.Checksum() != mkPage(i).Checksum() {
			t.Fatalf("pagein %d under degraded layout after crash: %v", i, err)
		}
	}
}

// TestRSNeverDeniesWrites: crash the cluster down server by server;
// every pageout along the way must succeed — reduced geometry first,
// the local disk at the end — and stay readable.
func TestRSNeverDeniesWrites(t *testing.T) {
	c := newCluster(t, 6, 512)
	p := c.pagerWith(rsConfig(c, 4, 2))
	id := uint64(0)
	writeBatch := func() {
		for end := id + 5; id < end; id++ {
			if err := p.PageOut(page.ID(id), mkPage(id)); err != nil {
				t.Fatalf("pageout %d denied while the cluster shrinks: %v", id, err)
			}
		}
	}
	writeBatch()
	for victim := 0; victim < 6; victim++ {
		c.crash(victim)
		writeBatch()
	}
	st := p.Stats()
	if st.DegradedWrites == 0 {
		t.Fatal("no degraded writes counted on the way down")
	}
	if st.FallbackPageOuts == 0 {
		t.Fatal("no disk fallback with every server dead")
	}
	for i := uint64(0); i < id; i++ {
		got, err := p.PageIn(page.ID(i))
		if err != nil || got.Checksum() != mkPage(i).Checksum() {
			t.Fatalf("pagein %d after the cluster died around it: %v", i, err)
		}
	}
}

// TestRSJoinRestoresGeometry: a cluster born with k+m-1 servers runs
// degraded; the missing server joining must re-plan back to the full
// RS(4,2) layout immediately, after which two simultaneous crashes
// cost nothing.
func TestRSJoinRestoresGeometry(t *testing.T) {
	c := newCluster(t, 5, 512)
	p := c.pagerWith(rsConfig(c, 4, 2))
	const n = 20
	for i := uint64(0); i < n; i++ {
		if err := p.PageOut(page.ID(i), mkPage(i)); err != nil {
			t.Fatal(err)
		}
	}
	if p.Stats().DegradedWrites == 0 {
		t.Fatal("setup: 5-server cluster not degraded for RS(4,2)")
	}

	c.addServer(server.Config{Name: "srv5", CapacityPages: 512, OverflowFrac: 0.10})
	if err := p.AddServer(c.addrs[5]); err != nil {
		t.Fatalf("join: %v", err)
	}

	// The join re-plans to full strength; new writes are no longer
	// degraded, and the re-protected layout survives a double crash.
	before := p.Stats().DegradedWrites
	for i := uint64(0); i < n; i++ {
		if err := p.PageOut(page.ID(i), mkPage(i+500)); err != nil {
			t.Fatal(err)
		}
	}
	if after := p.Stats().DegradedWrites; after != before {
		t.Fatalf("writes still degraded after join: %d -> %d", before, after)
	}
	c.crash(0)
	c.crash(3)
	for i := uint64(0); i < n; i++ {
		got, err := p.PageIn(page.ID(i))
		if err != nil || got.Checksum() != mkPage(i+500).Checksum() {
			t.Fatalf("pagein %d after double crash post-join: %v", i, err)
		}
	}
}

// TestRSFallsBackToWriteThrough: a single-server cluster cannot host
// any RS group; the pager must start anyway, degraded to the
// write-through policy, and count the fallback.
func TestRSFallsBackToWriteThrough(t *testing.T) {
	c := newCluster(t, 1, 256)
	p := c.pagerWith(rsConfig(c, 4, 2))
	if p.Stats().PolicyFallbacks != 1 {
		t.Fatalf("PolicyFallbacks = %d, want 1", p.Stats().PolicyFallbacks)
	}
	for i := uint64(0); i < 10; i++ {
		if err := p.PageOut(page.ID(i), mkPage(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Write-through semantics: the disk copy survives total server loss.
	c.crash(0)
	for i := uint64(0); i < 10; i++ {
		got, err := p.PageIn(page.ID(i))
		if err != nil || got.Checksum() != mkPage(i).Checksum() {
			t.Fatalf("pagein %d after total loss: %v", i, err)
		}
	}
}

// TestRSTransferRatio: unique pageouts cost (k+m)/k transfers
// amortized — for RS(4,2), 200 pageouts are 200 data + 100 parity
// shards, against 600 for 3-way mirroring at the same tolerance.
func TestRSTransferRatio(t *testing.T) {
	c := newCluster(t, 6, 1024)
	p := c.pagerWith(rsConfig(c, 4, 2))
	const outs = 200
	for i := 0; i < outs; i++ {
		if err := p.PageOut(page.ID(i), mkPage(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	want := uint64(outs + outs/4*2)
	if st := p.Stats(); st.NetTransfers != want {
		t.Fatalf("NetTransfers = %d for %d pageouts, want %d ((k+m)/k)", st.NetTransfers, outs, want)
	}
}

// TestRSCustomGeometry: RS(2,3) on five servers tolerates three
// simultaneous crashes.
func TestRSCustomGeometry(t *testing.T) {
	c := newCluster(t, 5, 512)
	p := c.pagerWith(rsConfig(c, 2, 3))
	const n = 16
	for i := uint64(0); i < n; i++ {
		if err := p.PageOut(page.ID(i), mkPage(i*11)); err != nil {
			t.Fatal(err)
		}
	}
	c.crash(0)
	c.crash(2)
	c.crash(3)
	for i := uint64(0); i < n; i++ {
		got, err := p.PageIn(page.ID(i))
		if err != nil || got.Checksum() != mkPage(i*11).Checksum() {
			t.Fatalf("pagein %d after triple crash under RS(2,3): %v", i, err)
		}
	}
}

// TestRSGC: heavy rewriting of a small working set must trigger
// garbage collection and keep server memory bounded, like parity
// logging.
func TestRSGC(t *testing.T) {
	c := newCluster(t, 6, 4096)
	p := c.pagerWith(rsConfig(c, 4, 2))
	const rounds = 60
	for k := uint64(0); k < rounds; k++ {
		if err := p.PageOut(page.ID(0), mkPage(10000+k)); err != nil {
			t.Fatal(err)
		}
		if err := p.PageOut(page.ID(100+k), mkPage(k)); err != nil {
			t.Fatal(err)
		}
	}
	if p.Stats().GCPasses == 0 {
		t.Fatal("GC never ran despite heavy fragmentation")
	}
	// Stored versions must stay near the live set: live pages, their
	// m/k parity share, the 10% overflow, and open-group slack.
	live := 1 + rounds
	total := 0
	for _, s := range c.servers {
		total += s.Store().Len()
	}
	bound := live + live/2 + live/5 + 12
	if total > bound {
		t.Fatalf("servers hold %d pages for %d live (bound %d): GC ineffective", total, live, bound)
	}
	got, err := p.PageIn(page.ID(0))
	if err != nil || got.Checksum() != mkPage(10000+rounds-1).Checksum() {
		t.Fatalf("hot page wrong after GC churn: %v", err)
	}
	for k := uint64(0); k < rounds; k++ {
		got, err := p.PageIn(page.ID(100 + k))
		if err != nil || got.Checksum() != mkPage(k).Checksum() {
			t.Fatalf("cold page %d wrong after GC churn: %v", k, err)
		}
	}
}

// TestRSExposurePerTolerance: with the membership layer, the window
// between a confirmed death and its re-protection pass must accrue in
// the ExposureAtTol bucket of the tolerance that remained — for
// RS(4,2) with one pending death, bucket m-1 = 1.
func TestRSExposurePerTolerance(t *testing.T) {
	pc := newProxiedCluster(t, 6, 512)
	cfg := client.Config{
		ClientName:     "rs-exposure-test",
		Servers:        pc.via,
		Policy:         client.PolicyRS,
		RSDataShards:   4,
		RSParityShards: 2,
		Membership:     hbConfig(),
		Dial:           pc.net.DialTimeout,
	}
	p, err := client.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	const n = 20
	for i := uint64(0); i < n; i++ {
		if err := p.PageOut(page.ID(i), mkPage(i)); err != nil {
			t.Fatal(err)
		}
	}
	pc.kill(1)
	waitUntil(t, 5*time.Second, "heartbeat death confirmation", func() bool {
		return p.Stats().HeartbeatDeaths >= 1
	})
	waitUntil(t, 10*time.Second, "re-protection to complete", func() bool {
		return p.Stats().RebuildPending == 0 && p.Stats().Rebuilds >= 1
	})
	st := p.Stats()
	if st.Exposure <= 0 {
		t.Fatalf("Exposure = %v, want > 0", st.Exposure)
	}
	// One pending death under an m=2 layout: remaining tolerance 1.
	if st.ExposureAtTol[1] <= 0 {
		t.Fatalf("ExposureAtTol = %v, want bucket 1 (m-failed) > 0", st.ExposureAtTol)
	}
	if st.ExposureAtTol[0] > 0 {
		t.Fatalf("ExposureAtTol[0] = %v accrued although tolerance remained", st.ExposureAtTol[0])
	}
	for i := uint64(0); i < n; i++ {
		got, err := p.PageIn(page.ID(i))
		if err != nil || got.Checksum() != mkPage(i).Checksum() {
			t.Fatalf("pagein %d after re-protection: %v", i, err)
		}
	}
}
