package client

import (
	"errors"
	"fmt"
	"sort"

	"rmp/internal/page"
	"rmp/internal/rs"
)

// rsPolicy generalizes parity logging to Reed-Solomon RS(k,m) coding:
// pageouts are appended round-robin into groups of k data shards
// spread over k servers; when a group completes, m parity shards
// (computed with the GF(256) Cauchy code in internal/rs) are shipped
// to m further servers. Any m simultaneous server crashes are
// survivable — every page decodes from any k of its group's k+m
// shards. Cost: (k+m)/k transfers and memory per pageout, amortized,
// against 1+1/S for single-parity logging and (1+m) for (m+1)-way
// mirroring at equal tolerance.
//
// The group bookkeeping follows parity.Log (versions are marked
// inactive rather than deleted, overflow triggers GC), but lives
// inline because a group carries m parity shards instead of one.
//
// Degraded mode: when fewer than k+m servers are alive the layout is
// re-planned with reduced parity width first (tolerance is cheapest
// to give up temporarily), then a narrowed stripe; writes are counted
// (Stats.DegradedWrites) but never denied. Below 2 usable servers
// pageouts fall back to the local disk.
//
// Crash handling is snapshot-and-rebuild like parity logging: decode
// every live page from the survivors (any k shards per group), then
// replay the lot into a fresh layout, shipping each server's new
// shards in one pipelined batch.
//rmpvet:holds Pager.mu
type rsPolicy struct {
	p *Pager

	// k, m is the configured full-strength geometry; the current
	// layout below may be narrower while servers are down.
	k, m int

	// cols[i] is the server holding member column i of every group;
	// parityIdx[j] holds parity shard j. code matches their widths.
	// code == nil means no usable layout (disk-only mode).
	cols      []int
	parityIdx []int
	code      *rs.Code

	groups  map[uint64]*rsGroup
	nextGID uint64
	// live maps a page to the group member holding its current version.
	live map[page.ID]rsRef

	// open is the group currently filling; openData keeps client-side
	// clones of its members, so unsealed pages never need decoding.
	open     *rsGroup
	openData []page.Buf

	// overflowBudget mirrors parity logging's server overflow: GC runs
	// when stored versions exceed live pages by more than this factor.
	overflowBudget float64

	// inflight is the pageout currently being transferred; crash
	// rebuilds read its contents from memory instead of the network.
	inflight struct {
		valid bool
		id    page.ID
		data  page.Buf
	}

	rebuilding bool
	retry      bool
}

// rsRef names one group member: group id + column.
type rsRef struct {
	gid uint64
	col int
}

// rsShard is one stored data shard (a page version).
type rsShard struct {
	id     page.ID
	key    uint64
	active bool
}

// rsGroup is one coding group. Members fill left to right; the group
// seals when it reaches the layout's stripe width and its parity
// shards are computed and shipped. Shard positions for decoding are
// members first (0..k-1), then parity (k..k+m-1).
type rsGroup struct {
	id         uint64
	members    []rsShard
	parityKeys []uint64 // allocated at seal; empty while open
	sealed     bool
	active     int // members whose version is current
}

func newRSPolicy(p *Pager) (*rsPolicy, error) {
	k, m := p.cfg.RSDataShards, p.cfg.RSParityShards
	if k <= 0 {
		k = 4
	}
	if m <= 0 {
		m = 2
	}
	if k+m > rs.MaxShards {
		return nil, fmt.Errorf("client: RS(%d,%d) exceeds %d total shards", k, m, rs.MaxShards)
	}
	budget := p.cfg.OverflowBudget
	if budget <= 0 {
		budget = 0.10 // match parity logging's 10% overflow
	}
	pol := &rsPolicy{
		p: p, k: k, m: m,
		groups:         make(map[uint64]*rsGroup),
		live:           make(map[page.ID]rsRef),
		overflowBudget: budget,
	}
	if err := pol.planLayout(p.aliveServers()); err != nil {
		return nil, err
	}
	return pol, nil
}

// planLayout picks data/parity columns over the usable servers and
// builds the matching code. With n < k+m servers the parity width
// shrinks first, then the stripe narrows; with n < 2 the layout is
// empty (code nil) and pageouts go to the local disk.
func (pl *rsPolicy) planLayout(usable []int) error {
	if len(usable) < 2 {
		pl.cols, pl.parityIdx, pl.code = nil, nil, nil
		return nil
	}
	k, m := pl.planShape(len(usable))
	code, err := rs.New(k, m)
	if err != nil {
		return err
	}
	pl.cols = append([]int(nil), usable[:k]...)
	pl.parityIdx = append([]int(nil), usable[k:k+m]...)
	pl.code = code
	return nil
}

// planShape degrades (k,m) to fit n usable servers.
func (pl *rsPolicy) planShape(n int) (int, int) {
	m := pl.m
	if n < pl.k+m {
		m = n - pl.k
	}
	if m < 1 {
		m = 1
	}
	k := pl.k
	if n-m < k {
		k = n - m
	}
	return k, m
}

// degraded reports whether the current layout is weaker than the
// configured geometry (fewer parity shards or a narrower stripe).
func (pl *rsPolicy) degraded() bool {
	return len(pl.cols) < pl.k || len(pl.parityIdx) < pl.m
}

// layoutAlive reports whether the current layout can accept pageouts.
func (pl *rsPolicy) layoutAlive() bool {
	p := pl.p
	if pl.code == nil {
		return false
	}
	for _, srv := range pl.cols {
		if !p.servers[srv].alive {
			return false
		}
	}
	for _, srv := range pl.parityIdx {
		if !p.servers[srv].alive {
			return false
		}
	}
	return true
}

// tolerance: a full group survives any len(parityIdx) simultaneous
// crashes; that is the policy's remaining tolerance while degraded.
func (pl *rsPolicy) tolerance() int { return len(pl.parityIdx) }

func (pl *rsPolicy) pageOut(id page.ID, data page.Buf) error {
	p := pl.p
	var lastErr error
	for attempt := 0; attempt <= maxRedispatch; attempt++ {
		// Close the asynchronous-recovery gap before touching group
		// state: appending through a dead layout corrupts groups.
		p.ensureAllRecovered()

		// Promote a disk-fallback page back through the groups if possible.
		if loc := p.table[id]; loc != nil && loc.onDisk {
			if !pl.layoutAlive() {
				p.stats.FallbackPageOuts++
				return p.diskPut(id, data)
			}
			p.swap.Delete(uint64(id))
			delete(p.table, id)
		}
		if !pl.layoutAlive() {
			return pl.diskFallback(id, data)
		}

		if lastErr = pl.appendAndSend(id, data); lastErr == nil {
			if pl.degraded() {
				// Write accepted at reduced tolerance — counted, never
				// denied; the next join re-plans back to full strength.
				p.stats.DegradedWrites++
			}
			pl.maybeGC()
			return nil
		}
	}
	// Every layout we were handed failed mid-transfer; keep the page
	// safe on the local disk instead.
	if err := pl.diskFallback(id, data); err != nil {
		return lastErr
	}
	return nil
}

// diskFallback records id as living on the local swap device and
// writes it there.
func (pl *rsPolicy) diskFallback(id page.ID, data page.Buf) error {
	p := pl.p
	p.stats.FallbackPageOuts++
	loc := p.table[id]
	if loc == nil {
		loc = &location{}
		p.table[id] = loc
	}
	loc.onDisk = true
	return p.diskPut(id, data)
}

// appendAndSend runs one pageout through the groups: supersede the
// previous version, place the data shard, and if the group completed,
// encode and ship its parity. A transport failure triggers the crash
// rebuild (via serverDied); the caller re-dispatches afterwards.
func (pl *rsPolicy) appendAndSend(id page.ID, data page.Buf) error {
	p := pl.p
	pl.inflight.valid = true
	pl.inflight.id = id
	pl.inflight.data = data
	defer func() { pl.inflight.valid = false }()

	pl.deactivate(id)

	if pl.open == nil {
		pl.nextGID++
		pl.open = &rsGroup{id: pl.nextGID}
		pl.groups[pl.open.id] = pl.open
		pl.openData = nil
	}
	g := pl.open
	col := len(g.members)
	key := p.allocKey()
	g.members = append(g.members, rsShard{id: id, key: key, active: true})
	g.active++
	pl.live[id] = rsRef{gid: g.id, col: col}
	pl.openData = append(pl.openData, data.ClonePooled())

	if len(g.members) < len(pl.cols) {
		// Group still filling: ship the data shard alone. Its contents
		// stay in openData, so no crash can strand it.
		return p.sendPage(pl.cols[col], key, data, true)
	}

	// The group is complete: encode the m parity shards and ship them
	// together with the closing data shard concurrently, so the seal
	// costs one round trip instead of 1+m serial ones.
	dataShards := make([][]byte, len(pl.openData))
	for i, b := range pl.openData {
		dataShards[i] = b
	}
	parity := make([]page.Buf, len(pl.parityIdx))
	parityShards := make([][]byte, len(parity))
	for j := range parity {
		// Encode overwrites every parity byte (mulAssign first), so a
		// dirty pooled buffer is fine.
		parity[j] = page.Get()
		parityShards[j] = parity[j]
	}
	if err := pl.code.Encode(dataShards, parityShards); err != nil {
		for _, b := range parity {
			page.Put(b)
		}
		return err
	}
	reqs := make([]sendReq, 0, 1+len(parity))
	reqs = append(reqs, sendReq{srv: pl.cols[col], key: key, data: data, fresh: true})
	g.parityKeys = make([]uint64, len(parity))
	for j := range parity {
		g.parityKeys[j] = p.allocKey()
		reqs = append(reqs, sendReq{srv: pl.parityIdx[j], key: g.parityKeys[j], data: parity[j], fresh: true})
	}
	g.sealed = true
	pl.open = nil
	// The client-side copies served their purpose (the encode above);
	// the sealed group is reconstructible from its shards.
	for _, b := range pl.openData {
		page.Put(b)
	}
	pl.openData = nil
	errs := p.sendPages(reqs)
	for j, b := range parity {
		if errs[1+j] == nil { // reqs[0] is the closing data shard
			page.Put(b)
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if g.active == 0 {
		pl.reclaim(g) // every member superseded before the seal landed
	}
	return nil
}

// deactivate marks the stored version of id inactive and reclaims its
// group once the group is sealed and fully superseded.
func (pl *rsPolicy) deactivate(id page.ID) {
	ref, ok := pl.live[id]
	if !ok {
		return
	}
	delete(pl.live, id)
	g := pl.groups[ref.gid]
	if g == nil || !g.members[ref.col].active {
		return
	}
	g.members[ref.col].active = false
	g.active--
	if g.sealed && g.active == 0 {
		pl.reclaim(g)
	}
}

// reclaim frees every slot of a fully-superseded sealed group on the
// servers that still live, and forgets the group.
func (pl *rsPolicy) reclaim(g *rsGroup) {
	p := pl.p
	delete(pl.groups, g.id)
	perSrv := make(map[int][]uint64)
	for col, s := range g.members {
		perSrv[pl.cols[col]] = append(perSrv[pl.cols[col]], s.key)
	}
	for j, key := range g.parityKeys {
		perSrv[pl.parityIdx[j]] = append(perSrv[pl.parityIdx[j]], key)
	}
	for srv, keys := range perSrv {
		if p.servers[srv].alive {
			p.freeSlots(srv, keys...)
		}
	}
}

func (pl *rsPolicy) pageIn(id page.ID) (page.Buf, error) {
	p := pl.p
	p.ensureAllRecovered()
	for attempt := 0; attempt < 2; attempt++ {
		if ref, ok := pl.live[id]; ok {
			g := pl.groups[ref.gid]
			data, err := p.fetchPage(pl.cols[ref.col], g.members[ref.col].key)
			if err == nil {
				return data, nil
			}
			if !isConnError(err) {
				// Persistent checksum failure with the server up:
				// decode this shard from the rest of its group and
				// repair the stored copy in place.
				if isBadChecksum(err) {
					if rec, ok := pl.reconstructOne(g, ref.col); ok {
						return rec, nil
					}
				}
				return nil, err
			}
			continue // crash rebuild ran; retry through the new layout
		}
		if loc := p.table[id]; loc != nil && loc.onDisk {
			return p.diskGet(id)
		}
		if loc := p.table[id]; loc != nil && loc.lost {
			return nil, fmt.Errorf("%w: %v", ErrPageLost, id)
		}
		return nil, ErrNotPagedOut
	}
	return nil, fmt.Errorf("client: pagein %v failed after crash recovery", id)
}

// reconstructOne repairs the shard at column col of group g after a
// persistent checksum failure: decode the group treating the corrupt
// shard as erased, rewrite the home slot in place, and hand the
// caller the recovered bytes. For the open group the client-side
// buffer is authoritative — no decode needed. ok=false means the
// group has too few healthy shards and the caller should surface the
// error.
func (pl *rsPolicy) reconstructOne(g *rsGroup, col int) (page.Buf, bool) {
	p := pl.p
	var rec page.Buf
	if !g.sealed {
		rec = pl.openData[col].ClonePooled()
	} else {
		shards, present, ok := pl.gatherShards(g, col)
		if !ok {
			return nil, false
		}
		if err := pl.code.Reconstruct(shards, present); err != nil {
			for _, sh := range shards {
				page.Put(sh)
			}
			return nil, false
		}
		rec = page.Buf(shards[col])
		for i, sh := range shards {
			if i != col {
				page.Put(sh)
			}
		}
	}
	p.stats.Recovered++
	if srv := pl.cols[col]; p.servers[srv].alive {
		if serr := p.sendPage(srv, g.members[col].key, rec, false); serr == nil {
			p.stats.Rehomed++
		}
	}
	return rec, true
}

// gatherShards fetches every reachable shard of a sealed group into
// positional order (members 0..k-1, parity k..k+m-1). exclude marks
// one position as erased regardless (-1 for none); dead servers and
// unreadable shards are likewise absent, backed by fresh buffers for
// Reconstruct to fill. The pageout in flight is served from memory —
// during a seal its shard may not have landed yet. ok=false means a
// server died mid-gather and the caller must re-plan. Every returned
// shard is a pooled buffer owned by the caller, who may page.Put the
// ones it does not keep.
func (pl *rsPolicy) gatherShards(g *rsGroup, exclude int) ([][]byte, []bool, bool) {
	p := pl.p
	n := len(g.members) + len(g.parityKeys)
	shards := make([][]byte, n)
	present := make([]bool, n)
	fetch := func(pos, srv int, key uint64) bool {
		if pos == exclude || !p.servers[srv].alive {
			shards[pos] = page.GetZero()
			return true
		}
		data, err := p.fetchPage(srv, key)
		if err != nil {
			if isConnError(err) {
				return false
			}
			shards[pos] = page.GetZero() // unreadable: treat as erased
			return true
		}
		shards[pos] = data
		present[pos] = true
		return true
	}
	for col, s := range g.members {
		if pl.inflight.valid && s.id == pl.inflight.id && pl.live[s.id] == (rsRef{g.id, col}) {
			// Copy rather than alias the inflight buffer, so every
			// gathered shard is uniformly caller-owned and poolable.
			shards[col] = pl.inflight.data.ClonePooled()
			present[col] = true
			continue
		}
		if !fetch(col, pl.cols[col], s.key) {
			return nil, nil, false
		}
	}
	for j, key := range g.parityKeys {
		if !fetch(len(g.members)+j, pl.parityIdx[j], key) {
			return nil, nil, false
		}
	}
	return shards, present, true
}

func (pl *rsPolicy) free(id page.ID) error {
	p := pl.p
	p.ensureAllRecovered()
	if loc := p.table[id]; loc != nil {
		p.swap.Delete(uint64(id))
		delete(p.table, id)
	}
	pl.deactivate(id)
	return nil
}

// --- overflow garbage collection ----------------------------------------

// maybeGC rewrites the live pages of the most fragmented sealed
// groups when inactive versions exceed the overflow budget; once a
// group's last active member is rewritten elsewhere, deactivate
// reclaims all its k+m slots.
func (pl *rsPolicy) maybeGC() {
	stored := 0
	for _, g := range pl.groups {
		stored += len(g.members)
	}
	budget := int(float64(len(pl.live))*(1+pl.overflowBudget)) + len(pl.cols)
	excess := stored - budget
	if excess <= 0 {
		return
	}
	p := pl.p
	p.stats.GCPasses++
	var cands []*rsGroup
	for _, g := range pl.groups {
		if g.sealed && g.active > 0 && g.active < len(g.members) {
			cands = append(cands, g)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].active != cands[j].active {
			return cands[i].active < cands[j].active
		}
		return cands[i].id < cands[j].id
	})
	for _, g := range cands {
		if excess <= 0 {
			return
		}
		excess -= len(g.members) - g.active
		var ids []page.ID
		for _, s := range g.members {
			if s.active {
				ids = append(ids, s.id)
			}
		}
		for _, id := range ids {
			ref, ok := pl.live[id]
			if !ok || ref.gid != g.id {
				continue
			}
			data, err := p.fetchPage(pl.cols[ref.col], g.members[ref.col].key)
			if err != nil {
				return // crash rebuild ran; GC will retrigger later
			}
			if err := pl.appendAndSend(id, data); err != nil {
				return
			}
		}
	}
}

// serverJoined: under a full-strength layout a joiner is left out
// until the next rebuild, like parity logging. Under a degraded
// layout the joiner may restore tolerance the cluster is currently
// missing, so the re-plan runs immediately.
func (pl *rsPolicy) serverJoined(int) {
	if pl.rebuilding || !pl.degraded() {
		return
	}
	if len(pl.p.aliveServers()) < 2 {
		return
	}
	if err := pl.rebuild(nil); err != nil {
		pl.p.logf("rs: re-protection after join: %v", err)
	}
}

// redundancy classifies every page by whether its group survives one
// more crash: a sealed group's page is Full when at least k+1 of its
// k+m shards sit on alive servers (any further single crash still
// leaves k), Degraded while it remains readable (own shard alive, or
// k shards somewhere), Lost otherwise. Open-group pages are Full —
// the client-side buffer survives any server crash.
func (pl *rsPolicy) redundancy() Redundancy {
	p := pl.p
	var r Redundancy
	for _, ref := range pl.live {
		g := pl.groups[ref.gid]
		if !g.sealed {
			r.Full++
			continue
		}
		avail := 0
		for col := range g.members {
			if p.servers[pl.cols[col]].alive {
				avail++
			}
		}
		for j := range g.parityKeys {
			if p.servers[pl.parityIdx[j]].alive {
				avail++
			}
		}
		k := len(g.members)
		own := p.servers[pl.cols[ref.col]].alive
		switch {
		case avail >= k+1:
			r.Full++
		case own || avail >= k:
			r.Degraded++
		default:
			r.Lost++
		}
	}
	for _, loc := range p.table {
		switch {
		case loc.lost:
			r.Lost++
		case loc.onDisk:
			r.Full++
		}
	}
	return r
}

// --- crash recovery and migration ----------------------------------------

func (pl *rsPolicy) handleCrash(srv int) error {
	if pl.rebuilding {
		pl.retry = true
		return nil
	}
	return pl.rebuild(nil)
}

func (pl *rsPolicy) evacuate(srv int) error {
	if pl.rebuilding {
		return nil
	}
	err := pl.rebuild(map[int]bool{srv: true})
	if err == nil {
		pl.p.servers[srv].pressured = false
	}
	return err
}

// rebuild snapshots every live page (decoding those on dead servers
// from any k surviving shards of their group) and replays them into a
// fresh layout over the alive servers not in exclude. It loops until
// a full replay completes without another server dying.
func (pl *rsPolicy) rebuild(exclude map[int]bool) error {
	p := pl.p
	pl.rebuilding = true
	defer func() { pl.rebuilding = false }()

	for attempt := 0; attempt <= len(p.servers)+1; attempt++ {
		pl.retry = false
		contents, ok := pl.snapshot()
		if !ok || pl.retry {
			continue // a server died during the snapshot; re-plan
		}
		if pl.writeback(contents, exclude) && !pl.retry {
			return nil
		}
	}
	return errors.New("client: RS rebuild did not converge")
}

// snapshot collects the contents of every live page: from the
// inflight buffer, from the open group's client-side copies, from
// healthy shards, or by RS decode for pages on dead (or corrupt)
// shards — each group decoded at most once. Pages whose group has
// fewer than k shards left (more crashes than parity width) are
// recorded as lost. ok=false means a server died mid-snapshot and the
// caller must re-plan.
func (pl *rsPolicy) snapshot() (map[page.ID]page.Buf, bool) {
	p := pl.p
	contents := make(map[page.ID]page.Buf)
	type decodeResult struct {
		shards [][]byte
		ok     bool
	}
	dec := make(map[uint64]decodeResult)

	for id, ref := range pl.live {
		if pl.inflight.valid && id == pl.inflight.id {
			contents[id] = pl.inflight.data.ClonePooled()
			continue
		}
		g := pl.groups[ref.gid]
		if !g.sealed {
			contents[id] = pl.openData[ref.col].ClonePooled()
			continue
		}
		if srv := pl.cols[ref.col]; p.servers[srv].alive {
			data, err := p.fetchPage(srv, g.members[ref.col].key)
			if err == nil {
				contents[id] = data
				continue
			}
			if isConnError(err) {
				return nil, false
			}
			// Unreadable shard on a live server: decode it below.
		}
		res, tried := dec[g.id]
		if !tried {
			shards, present, ok := pl.gatherShards(g, -1)
			if !ok {
				return nil, false
			}
			if err := pl.code.Reconstruct(shards, present); err == nil {
				res = decodeResult{shards: shards, ok: true}
			}
			dec[g.id] = res
		}
		if res.ok {
			contents[id] = page.Buf(res.shards[ref.col])
			p.stats.Recovered++
			continue
		}
		// Unrecoverable: more shards gone than the group's parity width.
		p.stats.LostPages++
		loc := p.table[id]
		if loc == nil {
			loc = &location{}
			p.table[id] = loc
		}
		loc.lost = true
	}
	return contents, true
}

// writeback replays contents into a fresh layout over the usable
// servers, shipping each server's shards in one pipelined batch, then
// frees the old layout's slots on whichever servers remain alive.
// Returns false if a server died mid-replay (caller loops).
func (pl *rsPolicy) writeback(contents map[page.ID]page.Buf, exclude map[int]bool) bool {
	p := pl.p

	oldGroups := pl.groups
	oldCols := append([]int(nil), pl.cols...)
	oldParity := append([]int(nil), pl.parityIdx...)

	var usable []int
	for _, i := range p.aliveServers() {
		if !exclude[i] {
			usable = append(usable, i)
		}
	}

	if len(usable) < 2 {
		// Not enough servers for data + parity: everything goes to the
		// local disk; reliability is preserved by the disk itself.
		for id, data := range contents {
			loc := p.table[id]
			if loc == nil {
				loc = &location{}
				p.table[id] = loc
			}
			loc.onDisk = true
			if err := p.diskPut(id, data); err != nil {
				p.logf("rebuild: disk fallback for %v: %v", id, err)
			}
			p.stats.FallbackPageOuts++
		}
		pl.groups = make(map[uint64]*rsGroup)
		pl.live = make(map[page.ID]rsRef)
		pl.open, pl.openData = nil, nil
		pl.cols, pl.parityIdx, pl.code = nil, nil, nil
		pl.freeLayout(oldGroups, oldCols, oldParity)
		return true
	}

	k, m := pl.planShape(len(usable))
	code, err := rs.New(k, m)
	if err != nil {
		return false
	}
	cols := usable[:k]
	parityIdx := usable[k : k+m]

	// Plan the whole new layout client-side first, then ship every
	// server's shards in one pipelined batch — the rebuild costs about
	// one round trip per server instead of one per page.
	newGroups := make(map[uint64]*rsGroup)
	newLive := make(map[page.ID]rsRef)
	var newOpen *rsGroup
	var newOpenData []page.Buf
	batchKeys := make(map[int][]uint64)
	batchPages := make(map[int][]page.Buf)

	// Deterministic replay order keeps rebuilds reproducible.
	ids := make([]page.ID, 0, len(contents))
	for id := range contents {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	for _, id := range ids {
		data := contents[id]
		if newOpen == nil {
			pl.nextGID++
			newOpen = &rsGroup{id: pl.nextGID}
			newGroups[newOpen.id] = newOpen
			newOpenData = nil
		}
		col := len(newOpen.members)
		key := p.allocKey()
		newOpen.members = append(newOpen.members, rsShard{id: id, key: key, active: true})
		newOpen.active++
		newLive[id] = rsRef{gid: newOpen.id, col: col}
		newOpenData = append(newOpenData, data.ClonePooled())
		batchKeys[cols[col]] = append(batchKeys[cols[col]], key)
		batchPages[cols[col]] = append(batchPages[cols[col]], data)
		if len(newOpen.members) < k {
			continue
		}
		dataShards := make([][]byte, k)
		for i, b := range newOpenData {
			dataShards[i] = b
		}
		parity := make([]page.Buf, m)
		parityShards := make([][]byte, m)
		for j := range parity {
			parity[j] = page.Get() // Encode overwrites every byte
			parityShards[j] = parity[j]
		}
		if err := code.Encode(dataShards, parityShards); err != nil {
			return false
		}
		newOpen.parityKeys = make([]uint64, m)
		for j := range parity {
			pk := p.allocKey()
			newOpen.parityKeys[j] = pk
			batchKeys[parityIdx[j]] = append(batchKeys[parityIdx[j]], pk)
			batchPages[parityIdx[j]] = append(batchPages[parityIdx[j]], parity[j])
		}
		newOpen.sealed = true
		newOpen = nil
		newOpenData = nil
	}

	// If this attempt dies midway (another server failing under us),
	// free whatever it managed to write before the caller retries with
	// yet another fresh layout.
	abort := func() bool {
		for srv, keys := range batchKeys {
			if p.servers[srv].alive {
				p.freeSlots(srv, keys...)
			}
		}
		return false
	}
	for srv, keys := range batchKeys {
		if err := p.sendPageBatch(srv, keys, batchPages[srv], true); err != nil {
			return abort() // serverDied set retry via handleCrash guard
		}
	}
	p.stats.Rehomed += uint64(len(contents))

	pl.groups = newGroups
	pl.live = newLive
	pl.open = newOpen
	pl.openData = newOpenData
	pl.cols = append([]int(nil), cols...)
	pl.parityIdx = append([]int(nil), parityIdx...)
	pl.code = code
	pl.freeLayout(oldGroups, oldCols, oldParity)
	return true
}

// freeLayout releases a previous layout's slots on servers that are
// still alive (dead servers' memory is gone with them).
func (pl *rsPolicy) freeLayout(groups map[uint64]*rsGroup, cols, parityIdx []int) {
	p := pl.p
	perSrv := make(map[int][]uint64)
	for _, g := range groups {
		for col, s := range g.members {
			if col < len(cols) {
				perSrv[cols[col]] = append(perSrv[cols[col]], s.key)
			}
		}
		for j, key := range g.parityKeys {
			if j < len(parityIdx) {
				perSrv[parityIdx[j]] = append(perSrv[parityIdx[j]], key)
			}
		}
	}
	for srv, keys := range perSrv {
		if srv >= 0 && srv < len(p.servers) && p.servers[srv].alive {
			p.freeSlots(srv, keys...)
		}
	}
}
